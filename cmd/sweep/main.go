// Command sweep runs open-loop injection-rate sweeps and prints
// latency/throughput series per flow-control kind — the data behind the
// paper's "Other results" saturation comparison and the drop-vs-deflect
// extension.
//
// Usage:
//
//	sweep [-kinds backpressured,backpressureless,afc] [-pattern uniform]
//	      [-min 0.05] [-max 0.6] [-step 0.05] [-seeds 2]
//	      [-warmup 10000] [-measure 30000] [-parallel N]
//
// -scenario replaces the rate sweep with a JSON scenario spec
// (internal/scenario): scheduled mid-run rate/pattern/burst changes,
// link throttling and fault injection, reported as per-phase
// completion-time percentiles.
//
// Sweep cells (kind × rate × seed) run on a worker pool sized by
// -parallel (or AFCSIM_PARALLEL; default all CPUs). Results are
// bit-for-bit independent of the worker count. -check (or
// AFCSIM_CHECK=1) attaches the internal/check invariant checker to
// every cell's network.
//
// Observability (internal/obs, all off by default and invisible to
// results): -manifest writes a JSON run record (config, per-cell wall
// times, worker utilization), -progress (or AFCSIM_PROGRESS=1) prints a
// live stderr progress line, -cpuprofile/-memprofile write pprof
// profiles, and -debug-addr serves net/http/pprof plus the simulator's
// counters as expvars.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/obs"
	"afcnet/internal/runner"
	"afcnet/internal/scenario"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// patterns maps the -pattern flag to constructors.
var patterns = map[string]func(topology.Mesh) traffic.Pattern{
	"uniform":   func(m topology.Mesh) traffic.Pattern { return traffic.Uniform{Mesh: m} },
	"transpose": func(m topology.Mesh) traffic.Pattern { return traffic.Transpose{Mesh: m} },
	"bitcomp":   func(m topology.Mesh) traffic.Pattern { return traffic.BitComplement{Mesh: m} },
	"neighbor":  func(m topology.Mesh) traffic.Pattern { return traffic.NearNeighbor{Mesh: m} },
	"hotspot": func(m topology.Mesh) traffic.Pattern {
		return traffic.Hotspot{Mesh: m, Hot: m.Node(m.Width/2, m.Height/2), Frac: 0.3}
	},
}

var kindsByName = map[string]network.Kind{
	"backpressured":    network.Backpressured,
	"ideal-bypass":     network.BackpressuredIdealBypass,
	"backpressureless": network.Bless,
	"drop":             network.BlessDrop,
	"afc":              network.AFC,
	"afc-always-bp":    network.AFCAlwaysBuffered,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		kindList   = flag.String("kinds", "backpressured,backpressureless,drop,afc", "comma-separated router kinds")
		pattern    = flag.String("pattern", "uniform", "traffic pattern: uniform|transpose|bitcomp|neighbor|hotspot")
		scenarioF  = flag.String("scenario", "", "instead of a rate sweep, run the JSON scenario spec at this path and report per-phase completion-time percentiles")
		minRate    = flag.Float64("min", 0.05, "minimum offered load (flits/node/cycle)")
		maxRate    = flag.Float64("max", 0.60, "maximum offered load")
		step       = flag.Float64("step", 0.05, "offered-load step")
		seeds      = flag.Int("seeds", 2, "repeated runs per point")
		warmup     = flag.Uint64("warmup", 10_000, "warmup cycles")
		measure    = flag.Uint64("measure", 30_000, "measurement cycles")
		parallel   = flag.Int("parallel", runner.FromEnv(), "worker-pool size; <=0 means all CPUs, 1 is serial (results are identical either way)")
		checked    = flag.Bool("check", check.FromEnv(), "attach the runtime invariant checker to every run (or set AFCSIM_CHECK=1); identical results, slower")
		dense      = flag.Bool("dense", network.DenseFromEnv(), "run the dense reference kernel instead of active-set scheduling (or set AFCSIM_DENSE=1); identical results, slower at low load")
		nopool     = flag.Bool("nopool", network.NoPoolFromEnv(), "heap-allocate flits instead of arena pooling (or set AFCSIM_NOPOOL=1); identical results, allocates in steady state")
		nocolumnar = flag.Bool("nocolumnar", network.NoColumnarFromEnv(), "read per-flit state from struct fields instead of the columnar banks (or set AFCSIM_NOCOLUMNAR=1); identical results")
		elide      = flag.Bool("elidepayload", network.ElidePayloadFromEnv(), "drop the arena's payload column (or set AFCSIM_ELIDEPAYLOAD=1); identical results, smaller columnar rows")
		shards     = flag.Int("shards", network.ShardsFromEnv(), "shard each network's tick across this many row bands of worker goroutines (or set AFCSIM_SHARDS=N); <=1 is the serial kernel, identical results")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (config, per-cell wall times, worker utilization) to this file")
		progress   = flag.Bool("progress", obs.ProgressFromEnv(), "print a live progress line to stderr (or set AFCSIM_PROGRESS=1)")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write a heap profile to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar simulator counters on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuprof)
	if err != nil {
		log.Fatal(err)
	}
	var metrics *obs.Metrics
	if *debugAddr != "" {
		metrics = &obs.Metrics{}
		addr, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint at http://%s/debug/vars (pprof under /debug/pprof/)", addr)
	}

	var kinds []network.Kind
	for _, name := range strings.Split(*kindList, ",") {
		k, ok := kindsByName[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("unknown kind %q", name)
		}
		kinds = append(kinds, k)
	}
	var rates []float64
	for r := *minRate; r <= *maxRate+1e-9; r += *step {
		rates = append(rates, r)
	}
	opt := experiments.Default()
	opt.Seeds = opt.Seeds[:0]
	for s := 0; s < *seeds; s++ {
		opt.Seeds = append(opt.Seeds, int64(s+1))
	}
	opt.OpenLoopWarmup = *warmup
	opt.OpenLoopMeasure = *measure
	opt.Parallelism = *parallel
	opt.Check = *checked
	opt.Dense = *dense
	opt.NoPool = *nopool
	opt.NoColumnar = *nocolumnar
	opt.ElidePayload = *elide
	opt.Shards = *shards

	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = k.String()
	}
	ob := obs.New(obs.Config{
		Command:  "sweep",
		Args:     os.Args[1:],
		Workers:  *parallel,
		Kinds:    kindNames,
		Seeds:    opt.Seeds,
		Manifest: *manifest != "",
		Progress: *progress,
		Metrics:  metrics,
	})
	opt.Obs = ob

	finish := func() {
		ob.Finish()
		if err := ob.WriteManifestFile(*manifest); err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteHeapProfile(*memprof); err != nil {
			log.Fatal(err)
		}
		stopCPU()
	}

	if *scenarioF != "" {
		spec, err := scenario.ParseFile(*scenarioF)
		if err != nil {
			log.Fatal(err)
		}
		if err := spec.ValidateFor(config.Default().Mesh); err != nil {
			log.Fatal(err)
		}
		rs, err := experiments.Scenario(kinds, spec, opt)
		if err != nil {
			finish()
			log.Fatal(err)
		}
		ob.RecordScenario(spec, rs)
		finish()
		experiments.WriteScenario(os.Stdout, spec.Name, rs)
		return
	}

	mk, ok := patterns[*pattern]
	if !ok {
		log.Fatalf("unknown pattern %q", *pattern)
	}
	pts := experiments.LatencySweepPattern(kinds, rates, mk, opt)
	finish()
	experiments.WriteSweep(os.Stdout, pts)
	fmt.Println("note: 'saturated' means mean total latency (including source queueing) exceeded the bound; see internal/experiments.")
}
