// Command figures regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results).
//
// Usage:
//
//	figures                      # everything (several minutes)
//	figures -fig 2a              # one artifact
//	figures -quick               # reduced runs for smoke checks
//	figures -parallel 1          # historical serial execution
//
// Simulation cells (benchmark × kind × seed) run on a worker pool;
// results are bit-for-bit independent of the worker count. -parallel
// (or the AFCSIM_PARALLEL environment variable) sets the pool size,
// defaulting to all CPUs. -check (or AFCSIM_CHECK=1) attaches the
// internal/check invariant checker to every cell's network.
//
// Observability (internal/obs, all off by default and invisible to
// results): -manifest writes a JSON run record with one entry per
// executed cell, -progress (or AFCSIM_PROGRESS=1) prints a live stderr
// progress line with an ETA, -cpuprofile/-memprofile write pprof
// profiles, and -debug-addr serves net/http/pprof plus the simulator's
// counters as expvars — useful to watch a multi-minute full run.
//
// Artifacts: 2a 2b 2c 2d 3a 3b duty rates sweep quadrant gossip
// lazyvca thresholds sizing pipeline metric ejectwidth
//
// -scenario <spec.json> additionally runs a scenario (internal/scenario)
// across the comparison kinds and prints per-phase completion-time
// percentiles; alone it runs just the scenario, with -fig it rides along.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	invcheck "afcnet/internal/check"
	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/obs"
	"afcnet/internal/runner"
	"afcnet/internal/scenario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig        = flag.String("fig", "all", "artifact to regenerate (see command doc)")
		scenarioF  = flag.String("scenario", "", "also run the JSON scenario spec at this path and print its per-phase completion-time percentiles")
		quick      = flag.Bool("quick", false, "reduced run lengths")
		svgDir     = flag.String("svg", "", "also render the main figures as SVG into this directory")
		jsonOut    = flag.String("json", "", "run the complete evaluation and write it as JSON to this file")
		parallel   = flag.Int("parallel", runner.FromEnv(), "worker-pool size; <=0 means all CPUs, 1 is serial (results are identical either way)")
		checked    = flag.Bool("check", invcheck.FromEnv(), "attach the runtime invariant checker to every run (or set AFCSIM_CHECK=1); identical results, slower")
		dense      = flag.Bool("dense", network.DenseFromEnv(), "run the dense reference kernel instead of active-set scheduling (or set AFCSIM_DENSE=1); identical results, slower at low load")
		nopool     = flag.Bool("nopool", network.NoPoolFromEnv(), "heap-allocate flits instead of arena pooling (or set AFCSIM_NOPOOL=1); identical results, allocates in steady state")
		nocolumnar = flag.Bool("nocolumnar", network.NoColumnarFromEnv(), "read per-flit state from struct fields instead of the columnar banks (or set AFCSIM_NOCOLUMNAR=1); identical results")
		elide      = flag.Bool("elidepayload", network.ElidePayloadFromEnv(), "drop the arena's payload column (or set AFCSIM_ELIDEPAYLOAD=1); identical results, smaller columnar rows")
		shards     = flag.Int("shards", network.ShardsFromEnv(), "shard each network's tick across this many row bands of worker goroutines (or set AFCSIM_SHARDS=N); <=1 is the serial kernel, identical results")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (config, per-cell wall times, worker utilization) to this file")
		progress   = flag.Bool("progress", obs.ProgressFromEnv(), "print a live progress line to stderr (or set AFCSIM_PROGRESS=1)")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write a heap profile to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar simulator counters on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	// -scenario alone runs just the scenario; combine with an explicit
	// -fig to regenerate artifacts in the same invocation.
	figSet := false
	flag.Visit(func(f *flag.Flag) { figSet = figSet || f.Name == "fig" })
	if *scenarioF != "" && !figSet {
		*fig = "none"
	}

	stopCPU, err := obs.StartCPUProfile(*cpuprof)
	if err != nil {
		log.Fatal(err)
	}
	var metrics *obs.Metrics
	if *debugAddr != "" {
		metrics = &obs.Metrics{}
		addr, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint at http://%s/debug/vars (pprof under /debug/pprof/)", addr)
	}

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	opt.Parallelism = *parallel
	opt.Check = *checked
	opt.Dense = *dense
	opt.NoPool = *nopool
	opt.NoColumnar = *nocolumnar
	opt.ElidePayload = *elide
	opt.Shards = *shards
	ob := obs.New(obs.Config{
		Command:  "figures",
		Args:     os.Args[1:],
		Workers:  *parallel,
		Seeds:    opt.Seeds,
		Manifest: *manifest != "",
		Progress: *progress,
		Metrics:  metrics,
	})
	opt.Obs = ob
	// check() runs this before log.Fatal (which skips defers), so a
	// failed run still leaves its manifest and profiles behind.
	finishObs = func() {
		ob.Finish()
		if err := ob.WriteManifestFile(*manifest); err != nil {
			log.Print(err)
		}
		if err := obs.WriteHeapProfile(*memprof); err != nil {
			log.Print(err)
		}
		stopCPU()
	}
	defer finishObs()

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name)
	}
	ran := false
	out := os.Stdout

	if want("2a") || want("2b") {
		ms, err := experiments.ClosedLoop(cmp.LowLoad(), experiments.Fig2EnergyKinds, opt)
		check(err)
		ms = append(ms, experiments.GeoMeans(ms)...)
		if want("2a") {
			experiments.WriteFig2(out, "Figure 2(a/b): low-load benchmarks (normalized to backpressured)", ms)
		} else {
			experiments.WriteFig2(out, "Figure 2(b): low-load energy (normalized to backpressured)", ms)
		}
		ran = true
	}
	if want("2c") || want("2d") {
		ms, err := experiments.ClosedLoop(cmp.HighLoad(), experiments.Fig2Kinds, opt)
		check(err)
		ms = append(ms, experiments.GeoMeans(ms)...)
		experiments.WriteFig2(out, "Figure 2(c/d): high-load benchmarks (normalized to backpressured)", ms)
		ran = true
	}
	if want("3a") {
		ms, err := experiments.ClosedLoop(cmp.LowLoad(), experiments.Fig2Kinds, opt)
		check(err)
		experiments.WriteFig3(out, "Figure 3(a): energy breakdown, low-load benchmarks", ms)
		ran = true
	}
	if want("3b") {
		ms, err := experiments.ClosedLoop(cmp.HighLoad(), experiments.Fig2Kinds, opt)
		check(err)
		experiments.WriteFig3(out, "Figure 3(b): energy breakdown, high-load benchmarks", ms)
		ran = true
	}
	if want("duty") {
		ms, err := experiments.ClosedLoop(cmp.AllBenchmarks(), []network.Kind{network.Backpressured, network.AFC}, opt)
		check(err)
		experiments.WriteDuty(out, ms)
		ran = true
	}
	if want("rates") {
		rows, err := experiments.Table3(opt)
		check(err)
		experiments.WriteTable3(out, rows)
		ran = true
	}
	if want("sweep") {
		rates := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6}
		pts := experiments.LatencySweep(
			[]network.Kind{network.Backpressured, network.Bless, network.BlessDrop, network.AFC},
			rates, opt)
		experiments.WriteSweep(out, pts)
		ran = true
	}
	if want("quadrant") {
		rs := experiments.Quadrant(
			[]network.Kind{network.Backpressured, network.Bless, network.AFC},
			0.9, 0.1, opt)
		experiments.WriteQuadrant(out, rs)
		ran = true
	}
	if want("gossip") {
		r := experiments.GossipHotspot(opt.Seeds[0], opt)
		experiments.WriteGossip(out, r)
		ran = true
	}
	if want("lazyvca") {
		rows, err := experiments.AblationLazyVCA(opt)
		check(err)
		experiments.WriteLazyVCA(out, rows)
		ran = true
	}
	if want("thresholds") {
		rows, err := experiments.AblationThresholds([]float64{0.5, 1.0, 2.0, 4.0}, opt)
		check(err)
		experiments.WriteThresholds(out, rows)
		ran = true
	}
	if want("sizing") {
		rows, err := experiments.AblationBaselineSizing(opt)
		check(err)
		experiments.WriteBaselineSizing(out, rows)
		ran = true
	}
	if want("pipeline") {
		rows, err := experiments.AblationPipeline(opt)
		check(err)
		experiments.WritePipeline(out, rows)
		ran = true
	}
	if want("metric") {
		rows := experiments.AblationContentionMetric(opt)
		experiments.WriteContentionMetric(out, rows)
		ran = true
	}
	if want("ejectwidth") {
		rows, err := experiments.AblationEjectWidth([]int{1, 2, 3}, opt)
		check(err)
		experiments.WriteEjectWidth(out, rows)
		ran = true
	}
	if *scenarioF != "" {
		spec, err := scenario.ParseFile(*scenarioF)
		check(err)
		check(spec.ValidateFor(config.Default().Mesh))
		kinds := []network.Kind{
			network.Backpressured, network.Bless, network.BlessDrop,
			network.AFCAlwaysBuffered, network.AFC,
		}
		rs, err := experiments.Scenario(kinds, spec, opt)
		check(err)
		ob.RecordScenario(spec, rs)
		experiments.WriteScenario(out, spec.Name, rs)
		ran = true
	}
	if *jsonOut != "" {
		res, err := experiments.CollectAll(opt)
		check(err)
		f, err := os.Create(*jsonOut)
		check(err)
		defer f.Close()
		check(res.WriteJSON(f))
		fmt.Printf("wrote JSON results to %s\n", *jsonOut)
		ran = true
	}
	if *svgDir != "" {
		if err := experiments.WriteSVGs(*svgDir, opt); err != nil {
			check(err)
		}
		fmt.Printf("wrote SVG figures to %s\n", *svgDir)
		ran = true
	}
	if !ran {
		check(fmt.Errorf("unknown artifact %q", *fig))
	}
}

// finishObs flushes the observability layer; set in main, called on the
// fatal-error path because log.Fatal does not run defers.
var finishObs = func() {}

func check(err error) {
	if err != nil {
		finishObs()
		log.Fatal(err)
	}
}
