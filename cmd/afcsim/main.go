// Command afcsim runs closed-loop workloads on network configurations and
// prints performance, energy, injection-rate and AFC mode statistics.
//
// Usage:
//
//	afcsim [-kind afc] [-bench apache] [-seed 1] [-warmup 2000] [-tx 6000]
//	afcsim -bench all -kind all          # full cross product
//
// The bench × kind matrix runs on a worker pool sized by -parallel (or
// AFCSIM_PARALLEL; default all CPUs); each run buffers its report and the
// rows print in matrix order, so output and results are identical to a
// serial run. Trace recording (-record) forces serial execution because
// every run writes the same trace file.
//
// -scenario runs a JSON scenario spec (internal/scenario) instead of a
// closed-loop workload: open-loop traffic whose rate, pattern, bursting,
// link throttling and fault state change at scheduled cycles, reported
// as per-phase completion-time percentiles.
//
// -check (or AFCSIM_CHECK=1) attaches the internal/check invariant
// checker to every network; results are identical, runs are slower, and
// any violation aborts with a diagnostic.
//
// Observability (internal/obs, all off by default and bit-for-bit
// invisible to results): -manifest writes a JSON run record (config,
// per-cell wall times, worker utilization), -progress (or
// AFCSIM_PROGRESS=1) prints a live stderr progress line,
// -cpuprofile/-memprofile write pprof profiles, and -debug-addr serves
// net/http/pprof plus the simulator's counters as expvars.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"afcnet/internal/check"
	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/obs"
	"afcnet/internal/router"
	"afcnet/internal/runner"
	"afcnet/internal/scenario"
	"afcnet/internal/topology"
	"afcnet/internal/trace"
)

var kindsByName = map[string]network.Kind{
	"backpressured":    network.Backpressured,
	"ideal-bypass":     network.BackpressuredIdealBypass,
	"backpressureless": network.Bless,
	"drop":             network.BlessDrop,
	"afc":              network.AFC,
	"afc-always-bp":    network.AFCAlwaysBuffered,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("afcsim: ")
	var (
		kindFlag   = flag.String("kind", "afc", "router kind: backpressured|ideal-bypass|backpressureless|drop|afc|afc-always-bp|all")
		benchFlag  = flag.String("bench", "apache", "workload: apache|oltp|specjbb|barnes|ocean|water|all")
		seed       = flag.Int64("seed", 1, "random seed")
		warmup     = flag.Uint64("warmup", 2000, "warmup transactions before measurement")
		tx         = flag.Uint64("tx", 6000, "measured transactions")
		limit      = flag.Uint64("limit", 20_000_000, "cycle limit")
		oldest     = flag.Bool("oldest", false, "use oldest-first deflection arbitration instead of randomized")
		prealloc   = flag.Bool("wb-prealloc", false, "use the writeback pre-allocation protocol variant (Section II)")
		realVCA    = flag.Bool("realistic-vca", false, "model the 3-stage backpressured pipeline (non-speculative VCA)")
		meshFlag   = flag.String("mesh", "3x3", "mesh dimensions WxH (the paper uses 3x3; Sec. V-B uses 8x8)")
		scenarioF  = flag.String("scenario", "", "instead of a workload, run the JSON scenario spec at this path open-loop and report per-phase completion-time percentiles")
		recordTo   = flag.String("record", "", "record the created packet trace to this file")
		replayOf   = flag.String("replay", "", "instead of a workload, replay a trace file recorded with -record")
		parallel   = flag.Int("parallel", runner.FromEnv(), "worker-pool size; <=0 means all CPUs, 1 is serial (results are identical either way)")
		checked    = flag.Bool("check", check.FromEnv(), "attach the runtime invariant checker (or set AFCSIM_CHECK=1); identical results, slower")
		dense      = flag.Bool("dense", network.DenseFromEnv(), "run the dense reference kernel instead of active-set scheduling (or set AFCSIM_DENSE=1); identical results, slower at low load")
		nopool     = flag.Bool("nopool", network.NoPoolFromEnv(), "heap-allocate flits instead of arena pooling (or set AFCSIM_NOPOOL=1); identical results, allocates in steady state")
		nocolumnar = flag.Bool("nocolumnar", network.NoColumnarFromEnv(), "read per-flit state from struct fields instead of the columnar banks (or set AFCSIM_NOCOLUMNAR=1); identical results")
		elide      = flag.Bool("elidepayload", network.ElidePayloadFromEnv(), "drop the arena's payload column (or set AFCSIM_ELIDEPAYLOAD=1); identical results, smaller columnar rows")
		shards     = flag.Int("shards", network.ShardsFromEnv(), "shard each network's tick across this many row bands of worker goroutines (or set AFCSIM_SHARDS=N); <=1 is the serial kernel, identical results")
		manifest   = flag.String("manifest", "", "write a JSON run manifest (config, per-cell wall times, worker utilization) to this file")
		progress   = flag.Bool("progress", obs.ProgressFromEnv(), "print a live progress line to stderr (or set AFCSIM_PROGRESS=1)")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write a heap profile to this file")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof and expvar simulator counters on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuprof)
	if err != nil {
		log.Fatal(err)
	}
	var metrics *obs.Metrics
	if *debugAddr != "" {
		metrics = &obs.Metrics{}
		addr, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("debug endpoint at http://%s/debug/vars (pprof under /debug/pprof/)", addr)
	}

	mesh, err := parseMesh(*meshFlag)
	if err != nil {
		log.Fatal(err)
	}

	var kinds []network.Kind
	if *kindFlag == "all" {
		kinds = []network.Kind{
			network.Backpressured, network.BackpressuredIdealBypass,
			network.Bless, network.AFCAlwaysBuffered, network.AFC,
		}
	} else {
		k, ok := kindsByName[*kindFlag]
		if !ok {
			log.Fatalf("unknown kind %q", *kindFlag)
		}
		kinds = []network.Kind{k}
	}

	var benches []cmp.Params
	if *benchFlag == "all" {
		benches = cmp.AllBenchmarks()
	} else {
		p, ok := cmp.ByName(*benchFlag)
		if !ok {
			log.Fatalf("unknown benchmark %q", *benchFlag)
		}
		benches = []cmp.Params{p}
	}

	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = k.String()
	}
	ob := obs.New(obs.Config{
		Command:  "afcsim",
		Args:     os.Args[1:],
		Workers:  *parallel,
		Kinds:    kindNames,
		Seeds:    []int64{*seed},
		Manifest: *manifest != "",
		Progress: *progress,
		Metrics:  metrics,
	})
	// finish flushes every enabled observer; it must run on the error
	// paths too, so the manifest of a failed sweep is still written.
	finish := func() {
		ob.Finish()
		if err := ob.WriteManifestFile(*manifest); err != nil {
			log.Print(err)
		}
		if err := obs.WriteHeapProfile(*memprof); err != nil {
			log.Print(err)
		}
		stopCPU()
	}

	if *scenarioF != "" {
		if err := runScenario(*scenarioF, kinds, mesh, *seed, *parallel, *checked, *dense, *nopool, *nocolumnar, *elide, *shards, ob); err != nil {
			finish()
			log.Fatal(err)
		}
		finish()
		return
	}

	if *replayOf != "" {
		for _, k := range kinds {
			if err := replayOne(*replayOf, k, *seed, *checked, *dense, *nopool, *nocolumnar, *elide, *shards, ob); err != nil {
				log.Fatal(err)
			}
		}
		finish()
		return
	}

	fmt.Printf("%-8s %-26s %8s %9s %9s %8s %10s %7s %7s %8s %6s\n",
		"bench", "kind", "inj", "cycles", "tx/cycle", "netlat",
		"energy", "buf%", "link%", "bufmode", "defl")
	pol := router.PolicyRandom
	if *oldest {
		pol = router.PolicyOldest
	}
	pool := runner.Options{Parallelism: *parallel}
	if *recordTo != "" {
		// Every run writes the same trace file; keep them ordered.
		pool.Parallelism = 1
	}
	ob.Hook(&pool)
	nk := len(kinds)
	reports, err := runner.Map(len(benches)*nk, pool, func(i int) (*bytes.Buffer, error) {
		p := benches[i/nk]
		k := kinds[i%nk]
		if *prealloc {
			p.WritebackPreAlloc = true
		}
		var buf bytes.Buffer
		if err := runOne(&buf, p, k, mesh, pol, *realVCA, *seed, *warmup, *tx, *limit, *recordTo, *checked, *dense, *nopool, *nocolumnar, *elide, *shards, ob); err != nil {
			return nil, err
		}
		return &buf, nil
	})
	finish()
	if err != nil {
		log.Print(err)
		os.Exit(1)
	}
	for _, r := range reports {
		os.Stdout.Write(r.Bytes())
	}
}

// runScenario runs a scenario spec across the selected kinds and prints
// the per-phase completion-time report. The spec's timeline replaces the
// closed-loop workload entirely.
func runScenario(path string, kinds []network.Kind, mesh topology.Mesh, seed int64, parallel int, checked, dense, nopool, nocolumnar, elide bool, shards int, ob *obs.Observer) error {
	spec, err := scenario.ParseFile(path)
	if err != nil {
		return err
	}
	if err := spec.ValidateFor(mesh); err != nil {
		return err
	}
	opt := experiments.Options{
		Seeds:        []int64{seed},
		Parallelism:  parallel,
		Check:        checked,
		Dense:        dense,
		NoPool:       nopool,
		NoColumnar:   nocolumnar,
		ElidePayload: elide,
		Shards:       shards,
		System:       config.DefaultWithMesh(mesh),
		Obs:          ob,
	}
	rs, err := experiments.Scenario(kinds, spec, opt)
	if err != nil {
		return err
	}
	ob.RecordScenario(spec, rs)
	experiments.WriteScenario(os.Stdout, spec.Name, rs)
	return nil
}

// parseMesh parses "WxH" into a mesh.
func parseMesh(s string) (topology.Mesh, error) {
	var w, h int
	if _, err := fmt.Sscanf(s, "%dx%d", &w, &h); err != nil || w < 2 || h < 2 {
		return topology.Mesh{}, fmt.Errorf("afcsim: bad mesh %q (want WxH, each >= 2)", s)
	}
	return topology.NewMesh(w, h), nil
}

// runOne executes one bench/kind cell and writes its report rows to w
// (a per-cell buffer under parallel execution, so rows never interleave).
func runOne(w io.Writer, p cmp.Params, k network.Kind, mesh topology.Mesh, pol router.DeflectPolicy, realVCA bool, seed int64, warmup, tx, limit uint64, recordTo string, checked, dense, nopool, nocolumnar, elide bool, shards int, ob *obs.Observer) error {
	sys := config.DefaultWithMesh(mesh)
	sys.Baseline.RealisticVCA = realVCA
	net := network.New(network.Config{System: sys, Kind: k, Seed: seed, MeterEnergy: true, Policy: pol, DenseKernel: dense, NoPool: nopool, NoColumnar: nocolumnar, ElidePayload: elide, Shards: shards})
	defer net.Close()
	if checked {
		check.Attach(net)
	}
	ob.Sample(net)
	var tr *trace.Trace
	if recordTo != "" {
		tr = trace.Record(net)
	}
	workload := cmp.NewSystem(net, p, net.RandStream)
	res, ok := workload.Measure(warmup, tx, limit)
	if !ok {
		return fmt.Errorf("%s on %s: cycle limit %d exceeded (completed %d transactions)",
			p.Name, k, limit, workload.CompletedTransactions())
	}
	e := net.TotalEnergy()
	ms := net.ModeStats()
	fmt.Fprintf(w, "%-8s %-26s %8.3f %9d %9.4f %8.1f %10.0f %6.1f%% %6.1f%% %8.2f %6d\n",
		p.Name, k, res.InjectionRate, res.Cycles, res.TransactionsPerCycle,
		res.MeanNetLatency, e.Total(), 100*e.Buffer()/e.Total(),
		100*e.Link/e.Total(), ms.BufferedFraction(), net.TotalDeflections())
	if ms.EscapeEvents > 0 {
		fmt.Fprintf(w, "  note: %d escape-latch events, %d gossip switches\n",
			ms.EscapeEvents, ms.GossipSwitches)
	}
	if tr != nil {
		f, err := os.Create(recordTo)
		if err != nil {
			return err
		}
		defer f.Close()
		tr.Sort()
		if err := tr.Write(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "  recorded %d packets (%d flits) to %s\n",
			len(tr.Events), tr.Flits(), recordTo)
	}
	return nil
}

// replayOne feeds a recorded trace open-loop into a fresh network of the
// given kind and reports the trace-driven (no-feedback) metrics.
func replayOne(path string, k network.Kind, seed int64, checked, dense, nopool, nocolumnar, elide bool, shards int, ob *obs.Observer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	net := network.New(network.Config{Kind: k, Seed: seed, MeterEnergy: true, DenseKernel: dense, NoPool: nopool, NoColumnar: nocolumnar, ElidePayload: elide, Shards: shards})
	defer net.Close()
	if checked {
		check.Attach(net)
	}
	ob.Sample(net)
	rp := trace.NewReplayer(net, tr)
	net.AddTicker(rp)
	limit := tr.Duration() + 500_000
	done := net.RunUntil(func() bool { return rp.Done() && net.Drained() }, limit)
	backlog := net.CreatedPackets() - net.DeliveredPackets()
	fmt.Printf("replay    %-26s packets=%d delivered=%d backlog=%d netlat=%.1f drained=%v\n",
		k, net.CreatedPackets(), net.DeliveredPackets(), backlog, net.MeanNetLatency(), done)
	return nil
}
