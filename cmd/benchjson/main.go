// Command benchjson measures the simulator's performance envelope and
// records it as a numbered BENCH_<n>.json snapshot, so the perf
// trajectory of the repo is tracked in-tree alongside the results it
// produces (EXPERIMENTS.md).
//
// Two kinds of numbers are captured:
//
//   - kernel microbenchmarks: ns/op and allocs/op of Network.Step under
//     moderate (0.3 flits/node/cycle) and near-idle (0.02) open-loop
//     load — the latter is the regime active-set scheduling targets;
//   - cell wall times: end-to-end wall-clock seconds of representative
//     closed-loop cells (the low-load Fig. 2a set, its single
//     lowest-load benchmark, and a saturation benchmark), each run
//     -runs times with the minimum recorded, since the minimum is the
//     least noisy wall-clock statistic.
//
// Usage:
//
//	benchjson                    # measure, write BENCH_<n>.json (next free n)
//	benchjson -dense             # measure the dense reference kernel
//	benchjson -o my.json         # explicit output path
//	benchjson -smoke             # reduced run, warn-only compare vs the
//	                             # newest BENCH_*.json (CI bench-smoke gate)
//
// -smoke performs a benchstat-style threshold comparison against the
// recorded baseline: each metric's delta is printed, regressions beyond
// the threshold are flagged as warnings, and the exit status stays zero
// (warn-only) — only harness errors fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"afcnet/internal/cmp"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/traffic"
)

// Snapshot is the recorded BENCH_<n>.json schema.
type Snapshot struct {
	Schema    string `json:"schema"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"goVersion"`
	Dense     bool   `json:"denseKernel"`
	Runs      int    `json:"runs"`

	Kernel struct {
		StepNsPerOp            float64 `json:"stepNsPerOp"`
		StepAllocsPerOp        float64 `json:"stepAllocsPerOp"`
		StepLowLoadNsPerOp     float64 `json:"stepLowLoadNsPerOp"`
		StepLowLoadAllocsPerOp float64 `json:"stepLowLoadAllocsPerOp"`
	} `json:"kernel"`

	Cells struct {
		LowLoadWallSeconds    float64 `json:"lowLoadWallSeconds"`
		LowLoadCellWallSecs   float64 `json:"lowLoadCellWallSeconds"`
		SaturationWallSeconds float64 `json:"saturationWallSeconds"`
	} `json:"cells"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		dense    = flag.Bool("dense", network.DenseFromEnv(), "measure the dense reference kernel instead of active-set scheduling (or set AFCSIM_DENSE=1)")
		out      = flag.String("o", "", "output path (default: next free BENCH_<n>.json in the current directory)")
		runs     = flag.Int("runs", 5, "repetitions per wall-time cell; the minimum is recorded")
		label    = flag.String("label", "", "free-text label recorded in the snapshot")
		smoke    = flag.Bool("smoke", false, "reduced measurement compared warn-only against -baseline; writes no file")
		baseline = flag.String("baseline", "", "baseline snapshot for -smoke (default: the highest-numbered BENCH_*.json)")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*dense, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	snap := measure(*dense, *runs, *label, false)
	path := *out
	if path == "" {
		path = nextBenchPath(".")
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// measure runs the benchmark suite. In smoke mode the wall cells drop to
// the single low-load cell and fewer repetitions, so CI stays fast.
func measure(dense bool, runs int, label string, smoke bool) Snapshot {
	var s Snapshot
	s.Schema = "afcnet-bench/v1"
	s.Label = label
	s.GoVersion = runtime.Version()
	s.Dense = dense
	s.Runs = runs

	r := testing.Benchmark(func(b *testing.B) { benchStep(b, 0.3, dense) })
	s.Kernel.StepNsPerOp = float64(r.NsPerOp())
	s.Kernel.StepAllocsPerOp = float64(r.AllocsPerOp())
	r = testing.Benchmark(func(b *testing.B) { benchStep(b, 0.02, dense) })
	s.Kernel.StepLowLoadNsPerOp = float64(r.NsPerOp())
	s.Kernel.StepLowLoadAllocsPerOp = float64(r.AllocsPerOp())

	opt := experiments.Quick()
	opt.Parallelism = 1 // wall times must not depend on machine width
	opt.Dense = dense
	s.Cells.LowLoadCellWallSecs = minWall(runs, func() {
		mustClosedLoop(cmp.LowLoad()[:1], opt)
	})
	if !smoke {
		s.Cells.LowLoadWallSeconds = minWall(runs, func() {
			mustClosedLoop(cmp.LowLoad(), opt)
		})
		s.Cells.SaturationWallSeconds = minWall(runs, func() {
			mustClosedLoop(cmp.HighLoad()[:1], opt)
		})
	}
	return s
}

// benchStep is the cmd-side mirror of BenchmarkKernelStep in
// bench_test.go (test files cannot be imported from a command).
func benchStep(b *testing.B, rate float64, dense bool) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 1, MeterEnergy: true, DenseKernel: dense})
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    rate,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

func mustClosedLoop(benches []cmp.Params, opt experiments.Options) {
	if _, err := experiments.ClosedLoop(benches, experiments.Fig2Kinds, opt); err != nil {
		log.Fatal(err)
	}
}

// minWall runs f n times and returns the fastest wall time in seconds.
func minWall(n int, f func()) float64 {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best.Seconds()
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath returns BENCH_<n>.json for the smallest n above every
// existing snapshot in dir.
func nextBenchPath(dir string) string {
	next := 0
	for _, p := range benchFiles(dir) {
		n, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(p))[1])
		if n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
}

// benchFiles lists the BENCH_<n>.json snapshots in dir, ordered by n.
func benchFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if benchName.MatchString(e.Name()) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(out[i]))[1])
		b, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(out[j]))[1])
		return a < b
	})
	return out
}

// runSmoke measures the reduced suite and prints a benchstat-style
// warn-only comparison against the baseline snapshot.
func runSmoke(dense bool, baselinePath string) error {
	if baselinePath == "" {
		files := benchFiles(".")
		if len(files) == 0 {
			fmt.Println("bench-smoke: no BENCH_*.json baseline recorded yet; measuring only")
		} else {
			baselinePath = files[len(files)-1]
		}
	}
	cur := measure(dense, 2, "", true)

	if baselinePath == "" {
		fmt.Printf("kernel step: %.0f ns/op (%.0f allocs); low load: %.0f ns/op; low-load cell: %.3fs\n",
			cur.Kernel.StepNsPerOp, cur.Kernel.StepAllocsPerOp,
			cur.Kernel.StepLowLoadNsPerOp, cur.Cells.LowLoadCellWallSecs)
		return nil
	}
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %v", baselinePath, err)
	}
	fmt.Printf("bench-smoke vs %s (warn-only)\n", baselinePath)
	warned := false
	// Wall-clock numbers swing far more than ns/op on shared machines,
	// so each metric carries its own threshold.
	compare := func(name string, baseV, curV, threshold float64) {
		if baseV == 0 {
			return
		}
		delta := (curV - baseV) / baseV * 100
		mark := ""
		if delta > threshold {
			mark = "  <-- WARN: exceeds +" + strconv.FormatFloat(threshold, 'f', -1, 64) + "% threshold"
			warned = true
		}
		fmt.Printf("  %-24s %12.1f -> %12.1f  (%+.1f%%)%s\n", name, baseV, curV, delta, mark)
	}
	compare("step ns/op", base.Kernel.StepNsPerOp, cur.Kernel.StepNsPerOp, 25)
	compare("step allocs/op", base.Kernel.StepAllocsPerOp, cur.Kernel.StepAllocsPerOp, 0)
	compare("step lowload ns/op", base.Kernel.StepLowLoadNsPerOp, cur.Kernel.StepLowLoadNsPerOp, 25)
	compare("lowload cell wall ms", base.Cells.LowLoadCellWallSecs*1000, cur.Cells.LowLoadCellWallSecs*1000, 50)
	if warned {
		fmt.Println("bench-smoke: perf regression warnings above (warn-only; not failing the build)")
	} else {
		fmt.Println("bench-smoke: within thresholds")
	}
	return nil
}
