// Command benchjson measures the simulator's performance envelope and
// records it as a numbered BENCH_<n>.json snapshot, so the perf
// trajectory of the repo is tracked in-tree alongside the results it
// produces (EXPERIMENTS.md).
//
// Two kinds of numbers are captured:
//
//   - kernel microbenchmarks: ns/op and allocs/op of Network.Step under
//     moderate (0.3 flits/node/cycle) and near-idle (0.02) open-loop
//     load — the latter is the regime active-set scheduling targets;
//   - cell wall times: end-to-end wall-clock seconds of representative
//     closed-loop cells (the low-load Fig. 2a set, its single
//     lowest-load benchmark, and a saturation benchmark), each run
//     -runs times with the minimum recorded, since the minimum is the
//     least noisy wall-clock statistic.
//
// Usage:
//
//	benchjson                    # measure, write BENCH_<n>.json (next free n)
//	benchjson -dense             # measure the dense reference kernel
//	benchjson -nocolumnar        # measure the struct-field reference path
//	benchjson -o my.json         # explicit output path
//	benchjson -smoke             # reduced run compared vs the newest
//	                             # BENCH_*.json (CI bench-smoke gate)
//
// -smoke performs a benchstat-style threshold comparison against the
// recorded baseline: each metric's delta is printed. Wall-clock
// regressions beyond the threshold are flagged as warnings (warn-only —
// shared machines make wall time noisy). Two metric classes FAIL the run
// with a non-zero exit: allocation regressions (allocs/op, per-cell heap
// bytes — the steady state is zero-allocation by construction, so any
// growth is a real leak of the pooling discipline, not noise), and the
// moderate-load kernel step ns/op when it exceeds 1.15x the recorded
// baseline (the repo's headline perf number; the generous ratio absorbs
// shared-machine noise while still catching real regressions).
//
// Snapshot schema: afcnet-bench/v2 adds the 16x16 large-radix kernel
// number (kernelStep16x16NsPerOp); afcnet-bench/v3 adds the sharded-tick
// variant of that cell (kernelStep16x16ShardedNsPerOp, measured at
// kernel.shards row bands) plus the host's core count, since the sharded
// number is only meaningful relative to the serial one on the same
// machine width; afcnet-bench/v4 adds the 32x32 kernel pair
// (kernelStep32x32NsPerOp / kernelStep32x32ShardedNsPerOp), recorded in
// full runs only — smoke runs skip the cell for CI speed;
// afcnet-bench/v5 adds the 64x64 kernel pair (kernelStep64x64NsPerOp /
// kernelStep64x64ShardedNsPerOp — the kilonode record, also full-run
// only) and the payloadElision flag recording whether the arena's
// payload column was elided for the measurement (-elidepayload).
// bench-smoke reads v1 through v4 snapshots backward-compatibly —
// metrics an older baseline lacks are skipped. The sharded ratios are
// judged on both ends of the machine-width spectrum: hosts with at
// least as many CPUs as shards must show a live >= 1.5x speedup on the
// 16x16 pair (the barrier must pay; the margin absorbs machine noise),
// and the baseline's recorded pairs must stay under per-pair
// single-core overhead bounds, judged deterministically from the file
// (with inline dispatch the sharded tick is the same work in a
// different order plus a fixed per-cycle tail; the bound is 1.15x for
// the 16x16 pair, where the tail is a real fraction of the
// slab-accelerated cycle, and 1.05x for the 32x32 pair, where it
// amortizes to parity within host noise). Kernel cells are recorded as
// the fastest of three
// repetitions — the same minimum statistic the wall cells use — so the
// recorded ratios are stable enough to gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// Snapshot is the recorded BENCH_<n>.json schema.
type Snapshot struct {
	Schema    string `json:"schema"`
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"goVersion"`
	// Cores/MaxProcs (schema v3) record the machine width the snapshot
	// was taken on: the sharded kernel number is a function of it.
	Cores      int  `json:"cores,omitempty"`
	MaxProcs   int  `json:"maxProcs,omitempty"`
	Dense      bool `json:"denseKernel"`
	NoPool     bool `json:"noPool"`
	NoColumnar bool `json:"noColumnar"`
	// ElidePayload (schema v5) records whether the arena's payload
	// column was elided for the measurement (-elidepayload): results are
	// bit-identical either way, but the per-row memory differs, so the
	// flag keeps snapshots comparable.
	ElidePayload bool `json:"payloadElision,omitempty"`
	Runs         int  `json:"runs"`

	Kernel struct {
		StepNsPerOp            float64 `json:"stepNsPerOp"`
		StepAllocsPerOp        float64 `json:"stepAllocsPerOp"`
		StepLowLoadNsPerOp     float64 `json:"stepLowLoadNsPerOp"`
		StepLowLoadAllocsPerOp float64 `json:"stepLowLoadAllocsPerOp"`
		// Step16x16NsPerOp (schema v2) is the large-radix kernel number:
		// one step of a 16x16 mesh under sub-saturation uniform load
		// (0.08 flits/node/cycle; see BenchmarkKernelStep16x16). Zero in
		// v1 snapshots, which predate the field.
		Step16x16NsPerOp     float64 `json:"kernelStep16x16NsPerOp"`
		Step16x16AllocsPerOp float64 `json:"kernelStep16x16AllocsPerOp"`
		// Shards and the sharded-step fields (schema v3) measure the same
		// 16x16 cell through the sharded two-phase tick at Shards row
		// bands. Bit-identical results to the serial cell by construction
		// (TestShardedEqualsSerial); the interesting quantities are the
		// ns/op ratio against Step16x16NsPerOp on a multi-core host and
		// the allocs/op, which the parallel arena must keep at zero. Zero
		// in v1/v2 snapshots, which predate the fields.
		Shards                      int     `json:"shards,omitempty"`
		Step16x16ShardedNsPerOp     float64 `json:"kernelStep16x16ShardedNsPerOp"`
		Step16x16ShardedAllocsPerOp float64 `json:"kernelStep16x16ShardedAllocsPerOp"`
		// The 32x32 pair (schema v4) is the same serial/sharded cell at
		// 1024 nodes and 0.04 flits/node/cycle (the bigger mesh's bisection
		// limit halves again; see BenchmarkKernelStep32x32). Zero in v1-v3
		// snapshots and in smoke runs, which skip the cell for CI speed.
		Step32x32NsPerOp            float64 `json:"kernelStep32x32NsPerOp,omitempty"`
		Step32x32AllocsPerOp        float64 `json:"kernelStep32x32AllocsPerOp,omitempty"`
		Step32x32ShardedNsPerOp     float64 `json:"kernelStep32x32ShardedNsPerOp,omitempty"`
		Step32x32ShardedAllocsPerOp float64 `json:"kernelStep32x32ShardedAllocsPerOp,omitempty"`
		// The 64x64 pair (schema v5) is the kilonode record: 4096 nodes
		// at 0.02 flits/node/cycle, the regime the slab-resident router
		// state targets (see BenchmarkKernelStep64x64). Full runs only,
		// like the 32x32 pair. Zero in v1-v4 snapshots and smoke runs.
		Step64x64NsPerOp            float64 `json:"kernelStep64x64NsPerOp,omitempty"`
		Step64x64AllocsPerOp        float64 `json:"kernelStep64x64AllocsPerOp,omitempty"`
		Step64x64ShardedNsPerOp     float64 `json:"kernelStep64x64ShardedNsPerOp,omitempty"`
		Step64x64ShardedAllocsPerOp float64 `json:"kernelStep64x64ShardedAllocsPerOp,omitempty"`
		// SteadyAllocsPerOp is the worst (max) of the steady-state
		// allocs/op measurements above — the single number the smoke
		// gate compares. With pooling on this is 0 by construction.
		SteadyAllocsPerOp float64 `json:"steadyAllocsPerOp"`
	} `json:"kernel"`

	// The per-cell TotalAllocBytes fields record the heap bytes
	// allocated during the fastest repetition of each wall-time cell
	// (runtime.MemStats.TotalAlloc delta; the minimum over -runs, like
	// the wall times). With pooling these are dominated by one-time
	// network construction; steady-state growth shows up here first.
	Cells struct {
		LowLoadWallSeconds         float64 `json:"lowLoadWallSeconds"`
		LowLoadCellWallSecs        float64 `json:"lowLoadCellWallSeconds"`
		SaturationWallSeconds      float64 `json:"saturationWallSeconds"`
		LowLoadTotalAllocBytes     uint64  `json:"lowLoadTotalAllocBytes"`
		LowLoadCellTotalAllocBytes uint64  `json:"lowLoadCellTotalAllocBytes"`
		SaturationTotalAllocBytes  uint64  `json:"saturationTotalAllocBytes"`
	} `json:"cells"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		dense      = flag.Bool("dense", network.DenseFromEnv(), "measure the dense reference kernel instead of active-set scheduling (or set AFCSIM_DENSE=1)")
		nopool     = flag.Bool("nopool", network.NoPoolFromEnv(), "measure with heap-allocated flits instead of arena pooling (or set AFCSIM_NOPOOL=1)")
		nocolumnar = flag.Bool("nocolumnar", network.NoColumnarFromEnv(), "measure the struct-field reference path instead of the columnar flit banks (or set AFCSIM_NOCOLUMNAR=1)")
		elide      = flag.Bool("elidepayload", false, "measure with the arena's payload column elided (bit-identical results, smaller rows)")
		out        = flag.String("o", "", "output path (default: next free BENCH_<n>.json in the current directory)")
		runs       = flag.Int("runs", 5, "repetitions per wall-time cell; the minimum is recorded")
		label      = flag.String("label", "", "free-text label recorded in the snapshot")
		smoke      = flag.Bool("smoke", false, "reduced measurement compared warn-only against -baseline; writes no file")
		baseline   = flag.String("baseline", "", "baseline snapshot for -smoke (default: the highest-numbered BENCH_*.json)")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(*dense, *nopool, *nocolumnar, *elide, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	snap := measure(*dense, *nopool, *nocolumnar, *elide, *runs, *label, false)
	path := *out
	if path == "" {
		path = nextBenchPath(".")
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// measure runs the benchmark suite. In smoke mode the wall cells drop to
// the single low-load cell and fewer repetitions, so CI stays fast.
func measure(dense, nopool, nocolumnar, elide bool, runs int, label string, smoke bool) Snapshot {
	var s Snapshot
	s.Schema = "afcnet-bench/v5"
	s.Label = label
	s.GoVersion = runtime.Version()
	s.Cores = runtime.NumCPU()
	s.MaxProcs = runtime.GOMAXPROCS(0)
	s.Dense = dense
	s.NoPool = nopool
	s.NoColumnar = nocolumnar
	s.ElidePayload = elide
	s.Runs = runs

	// Kernel cells are recorded as the fastest of three repetitions —
	// the same minimum statistic the wall cells use — because on a
	// shared host a single auto-scaled run swings ±10%, which is wider
	// than the serial/sharded ratios the snapshot exists to track.
	// Smoke runs keep one repetition: their thresholds absorb the noise.
	reps := 3
	if smoke {
		reps = 1
	}
	r := benchMin(reps, func(b *testing.B) { benchStep(b, 0.3, 3, 1000, 0, dense, nopool, nocolumnar, elide) })
	s.Kernel.StepNsPerOp = float64(r.NsPerOp())
	s.Kernel.StepAllocsPerOp = float64(r.AllocsPerOp())
	r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.02, 3, 1000, 0, dense, nopool, nocolumnar, elide) })
	s.Kernel.StepLowLoadNsPerOp = float64(r.NsPerOp())
	s.Kernel.StepLowLoadAllocsPerOp = float64(r.AllocsPerOp())
	// Large-radix cell: 16x16 under sub-saturation uniform load (0.3
	// would sit past the bisection limit of the bigger mesh, where queues
	// and allocations grow without bound; see BenchmarkKernelStep16x16).
	r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.08, 16, 5000, 0, dense, nopool, nocolumnar, elide) })
	s.Kernel.Step16x16NsPerOp = float64(r.NsPerOp())
	s.Kernel.Step16x16AllocsPerOp = float64(r.AllocsPerOp())
	// The same cell through the sharded tick, eight two-row bands
	// (see BenchmarkKernelStep16x16Sharded).
	s.Kernel.Shards = 8
	r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.08, 16, 5000, s.Kernel.Shards, dense, nopool, nocolumnar, elide) })
	s.Kernel.Step16x16ShardedNsPerOp = float64(r.NsPerOp())
	s.Kernel.Step16x16ShardedAllocsPerOp = float64(r.AllocsPerOp())
	// The 32x32 and 64x64 pairs are full-run records only: the cells
	// need long warmups (the meshes take thousands of cycles to fill)
	// and smoke runs gate on the cheaper 16x16 pair instead.
	if !smoke {
		r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.04, 32, 8000, 0, dense, nopool, nocolumnar, elide) })
		s.Kernel.Step32x32NsPerOp = float64(r.NsPerOp())
		s.Kernel.Step32x32AllocsPerOp = float64(r.AllocsPerOp())
		r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.04, 32, 8000, s.Kernel.Shards, dense, nopool, nocolumnar, elide) })
		s.Kernel.Step32x32ShardedNsPerOp = float64(r.NsPerOp())
		s.Kernel.Step32x32ShardedAllocsPerOp = float64(r.AllocsPerOp())
		r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.02, 64, 16000, 0, dense, nopool, nocolumnar, elide) })
		s.Kernel.Step64x64NsPerOp = float64(r.NsPerOp())
		s.Kernel.Step64x64AllocsPerOp = float64(r.AllocsPerOp())
		r = benchMin(reps, func(b *testing.B) { benchStep(b, 0.02, 64, 16000, s.Kernel.Shards, dense, nopool, nocolumnar, elide) })
		s.Kernel.Step64x64ShardedNsPerOp = float64(r.NsPerOp())
		s.Kernel.Step64x64ShardedAllocsPerOp = float64(r.AllocsPerOp())
	}
	s.Kernel.SteadyAllocsPerOp = s.Kernel.StepAllocsPerOp
	for _, a := range []float64{
		s.Kernel.StepLowLoadAllocsPerOp,
		s.Kernel.Step16x16AllocsPerOp, s.Kernel.Step16x16ShardedAllocsPerOp,
		s.Kernel.Step32x32AllocsPerOp, s.Kernel.Step32x32ShardedAllocsPerOp,
		s.Kernel.Step64x64AllocsPerOp, s.Kernel.Step64x64ShardedAllocsPerOp,
	} {
		if a > s.Kernel.SteadyAllocsPerOp {
			s.Kernel.SteadyAllocsPerOp = a
		}
	}

	opt := experiments.Quick()
	opt.Parallelism = 1 // wall times must not depend on machine width
	opt.Dense = dense
	opt.NoPool = nopool
	opt.NoColumnar = nocolumnar
	s.Cells.LowLoadCellWallSecs, s.Cells.LowLoadCellTotalAllocBytes = minWall(runs, func() {
		mustClosedLoop(cmp.LowLoad()[:1], opt)
	})
	if !smoke {
		s.Cells.LowLoadWallSeconds, s.Cells.LowLoadTotalAllocBytes = minWall(runs, func() {
			mustClosedLoop(cmp.LowLoad(), opt)
		})
		s.Cells.SaturationWallSeconds, s.Cells.SaturationTotalAllocBytes = minWall(runs, func() {
			mustClosedLoop(cmp.HighLoad()[:1], opt)
		})
	}
	return s
}

// benchMin runs f through testing.Benchmark reps times and returns the
// repetition with the fastest ns/op — on a shared host the fastest
// repetition is the one least perturbed by neighbors, the same reason
// the wall cells record their minimum. Allocs come from that same
// repetition; steady-state allocs are deterministic, so the choice
// cannot hide an allocation.
func benchMin(reps int, f func(b *testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(f)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// benchStep is the cmd-side mirror of BenchmarkKernelStep /
// BenchmarkKernelStep16x16 in bench_test.go (test files cannot be
// imported from a command).
func benchStep(b *testing.B, rate float64, side, warmup, shards int, dense, nopool, nocolumnar, elide bool) {
	net := network.New(network.Config{
		Kind: network.AFC, Seed: 1, MeterEnergy: true,
		System:      config.DefaultWithMesh(topology.NewMesh(side, side)),
		DenseKernel: dense, NoPool: nopool, NoColumnar: nocolumnar, Shards: shards,
		ElidePayload: elide,
	})
	defer net.Close()
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    rate,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(uint64(warmup))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

func mustClosedLoop(benches []cmp.Params, opt experiments.Options) {
	if _, err := experiments.ClosedLoop(benches, experiments.Fig2Kinds, opt); err != nil {
		log.Fatal(err)
	}
}

// minWall runs f n times and returns the fastest wall time in seconds
// plus the heap bytes allocated (TotalAlloc delta) during that fastest
// repetition — the least noisy statistic for each.
func minWall(n int, f func()) (float64, uint64) {
	best := time.Duration(0)
	var bestAlloc uint64
	var ms runtime.MemStats
	for i := 0; i < n; i++ {
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		start := time.Now()
		f()
		d := time.Since(start)
		runtime.ReadMemStats(&ms)
		if best == 0 || d < best {
			best = d
			bestAlloc = ms.TotalAlloc - before
		}
	}
	return best.Seconds(), bestAlloc
}

// knownSchemas lists every snapshot schema bench-smoke can read, oldest
// first. Fields are only ever added, so one decoder reads them all; the
// list exists to reject a snapshot from a future schema loudly instead
// of silently zero-filling the metrics it doesn't know about.
var knownSchemas = []string{
	"afcnet-bench/v1",
	"afcnet-bench/v2",
	"afcnet-bench/v3",
	"afcnet-bench/v4",
	"afcnet-bench/v5",
}

// parseSnapshot decodes a recorded BENCH_<n>.json of any known schema
// version. Metrics a version predates decode to zero, which every
// consumer treats as "skip".
func parseSnapshot(buf []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return Snapshot{}, err
	}
	for _, k := range knownSchemas {
		if s.Schema == k {
			return s, nil
		}
	}
	return Snapshot{}, fmt.Errorf("unknown schema %q", s.Schema)
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchPath returns BENCH_<n>.json for the smallest n above every
// existing snapshot in dir.
func nextBenchPath(dir string) string {
	next := 0
	for _, p := range benchFiles(dir) {
		n, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(p))[1])
		if n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
}

// benchFiles lists the BENCH_<n>.json snapshots in dir, ordered by n.
func benchFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if benchName.MatchString(e.Name()) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(out[i]))[1])
		b, _ := strconv.Atoi(benchName.FindStringSubmatch(filepath.Base(out[j]))[1])
		return a < b
	})
	return out
}

// runSmoke measures the reduced suite and prints a benchstat-style
// comparison against the baseline snapshot. Wall-clock metrics are
// warn-only; allocation metrics fail the run (non-zero exit) when they
// regress, because the steady state is zero-allocation by construction
// and any growth is a pooling leak, not measurement noise. The
// moderate-load kernel step ns/op also fails past 1.15x the baseline —
// it is the repo's headline perf number, and the generous ratio absorbs
// shared-machine noise. v1 baselines (no 16x16 field) are read
// backward-compatibly: metrics they lack are skipped.
func runSmoke(dense, nopool, nocolumnar, elide bool, baselinePath string) error {
	if baselinePath == "" {
		files := benchFiles(".")
		if len(files) == 0 {
			fmt.Println("bench-smoke: no BENCH_*.json baseline recorded yet; measuring only")
		} else {
			baselinePath = files[len(files)-1]
		}
	}
	cur := measure(dense, nopool, nocolumnar, elide, 2, "", true)

	if baselinePath == "" {
		fmt.Printf("kernel step: %.0f ns/op (%.0f allocs); low load: %.0f ns/op; low-load cell: %.3fs\n",
			cur.Kernel.StepNsPerOp, cur.Kernel.StepAllocsPerOp,
			cur.Kernel.StepLowLoadNsPerOp, cur.Cells.LowLoadCellWallSecs)
		return nil
	}
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	base, err := parseSnapshot(buf)
	if err != nil {
		return fmt.Errorf("%s: %v", baselinePath, err)
	}
	fmt.Printf("bench-smoke vs %s (wall warn-only; allocs and step ns/op failing)\n", baselinePath)
	warned, failed := false, false
	// Wall-clock numbers swing far more than ns/op on shared machines,
	// so each metric carries its own threshold. A baseline of 0 means
	// the field predates this schema addition (fields are only added);
	// skip it rather than divide by zero — except for allocation
	// metrics, where 0 is the contract: any current value above the
	// threshold regresses even against a zero baseline.
	deltaPct := func(baseV, curV float64) float64 {
		if baseV == 0 {
			if curV == 0 {
				return 0
			}
			return 100
		}
		return (curV - baseV) / baseV * 100
	}
	compare := func(name string, baseV, curV, threshold float64) {
		if baseV == 0 {
			return
		}
		delta := deltaPct(baseV, curV)
		mark := ""
		if delta > threshold {
			mark = "  <-- WARN: exceeds +" + strconv.FormatFloat(threshold, 'f', -1, 64) + "% threshold"
			warned = true
		}
		fmt.Printf("  %-24s %12.1f -> %12.1f  (%+.1f%%)%s\n", name, baseV, curV, delta, mark)
	}
	// compareAlloc is the failing variant: exceeding the threshold sets
	// failed, which becomes a non-zero exit. Comparisons against a
	// pre-pooling baseline (recorded with allocating flits) would
	// trivially pass, so the gate also enforces the absolute contract
	// when measuring the pooled configuration: see the gate below.
	compareAlloc := func(name string, baseV, curV, threshold float64) {
		delta := deltaPct(baseV, curV)
		mark := ""
		if curV > baseV && delta > threshold {
			mark = "  <-- FAIL: allocation regression beyond +" + strconv.FormatFloat(threshold, 'f', -1, 64) + "%"
			failed = true
		}
		fmt.Printf("  %-24s %12.1f -> %12.1f  (%+.1f%%)%s\n", name, baseV, curV, delta, mark)
	}
	// compareFail promotes a metric from warn to FAIL past its threshold:
	// the moderate-load step ns/op is the repo's headline number, gated
	// at 1.15x the recorded baseline.
	compareFail := func(name string, baseV, curV, threshold float64) {
		if baseV == 0 {
			return // field predates the baseline's schema
		}
		delta := deltaPct(baseV, curV)
		mark := ""
		if delta > threshold {
			mark = "  <-- FAIL: exceeds +" + strconv.FormatFloat(threshold, 'f', -1, 64) + "% threshold"
			failed = true
		}
		fmt.Printf("  %-24s %12.1f -> %12.1f  (%+.1f%%)%s\n", name, baseV, curV, delta, mark)
	}
	compareFail("step ns/op", base.Kernel.StepNsPerOp, cur.Kernel.StepNsPerOp, 15)
	compare("step lowload ns/op", base.Kernel.StepLowLoadNsPerOp, cur.Kernel.StepLowLoadNsPerOp, 25)
	compare("step 16x16 ns/op", base.Kernel.Step16x16NsPerOp, cur.Kernel.Step16x16NsPerOp, 25)
	compare("step 16x16 sharded ns/op", base.Kernel.Step16x16ShardedNsPerOp, cur.Kernel.Step16x16ShardedNsPerOp, 25)
	// The 32x32 and 64x64 pairs only exist in full runs; a smoke run
	// (curV == 0) has nothing to compare against the baseline's record.
	if cur.Kernel.Step32x32NsPerOp > 0 {
		compare("step 32x32 ns/op", base.Kernel.Step32x32NsPerOp, cur.Kernel.Step32x32NsPerOp, 25)
		compare("step 32x32 sharded ns/op", base.Kernel.Step32x32ShardedNsPerOp, cur.Kernel.Step32x32ShardedNsPerOp, 25)
	}
	if cur.Kernel.Step64x64NsPerOp > 0 {
		compare("step 64x64 ns/op", base.Kernel.Step64x64NsPerOp, cur.Kernel.Step64x64NsPerOp, 25)
		compare("step 64x64 sharded ns/op", base.Kernel.Step64x64ShardedNsPerOp, cur.Kernel.Step64x64ShardedNsPerOp, 25)
	}
	compare("lowload cell wall ms", base.Cells.LowLoadCellWallSecs*1000, cur.Cells.LowLoadCellWallSecs*1000, 50)
	compareAlloc("step allocs/op", base.Kernel.StepAllocsPerOp, cur.Kernel.StepAllocsPerOp, 0)
	compareAlloc("steady allocs/op", base.Kernel.SteadyAllocsPerOp, cur.Kernel.SteadyAllocsPerOp, 0)
	compareAlloc("lowload cell alloc KB", float64(base.Cells.LowLoadCellTotalAllocBytes)/1024,
		float64(cur.Cells.LowLoadCellTotalAllocBytes)/1024, 10)
	// Absolute gate: with pooling on, the kernel steady state allocates
	// nothing. This holds regardless of what the baseline recorded. The
	// sharded cell is included via SteadyAllocsPerOp: the parallel arena
	// must not allocate either.
	if !nopool && cur.Kernel.SteadyAllocsPerOp > 0 {
		fmt.Printf("  steady allocs/op is %.1f with pooling on (want 0)  <-- FAIL\n", cur.Kernel.SteadyAllocsPerOp)
		failed = true
	}
	// Sharded ratio gates. Two claims are enforced, on two different
	// measurements:
	//
	// Live, only when the host is wide enough (NumCPU >= shards): the
	// 16x16 sharded cell measured this run must show a >= 1.5x speedup
	// over serial — the two-phase barrier must pay for itself, and the
	// 1.5x margin is wide enough that shared-machine noise cannot fake
	// a failure. On narrower hosts the live ratio is printed for
	// information only: a live single-core overhead gate proved flaky
	// (a back-to-back auto-scaled pair swings ±10% on a busy host,
	// wider than the overhead being judged).
	//
	// Recorded, from the baseline snapshot: the checked-in pairs must
	// stay within a per-pair single-core overhead bound, judged with
	// the core count recorded alongside them — deterministic, since
	// both numbers are in the file. With inline dispatch the sharded
	// tick is the serial work in a different order plus a fixed
	// per-cycle tail (staged boundary commits, journal replay, band
	// dispatch); the bound is per pair because the tail is fixed while
	// the useful work scales with the band: at 32x32 it amortizes to
	// parity within host noise (1.05x), while at 16x16 the
	// slab-resident serial sweep is fast enough that the same tail is a
	// real ~7% of the cycle
	// (1.15x). A snapshot recorded beyond its bound fails every smoke
	// run until the structural tail is fixed and it is re-recorded.
	if cur.Kernel.Shards > 0 && cur.Kernel.Step16x16NsPerOp > 0 && cur.Kernel.Step16x16ShardedNsPerOp > 0 {
		speedup := cur.Kernel.Step16x16NsPerOp / cur.Kernel.Step16x16ShardedNsPerOp
		if runtime.NumCPU() >= cur.Kernel.Shards {
			if speedup < 1.5 {
				fmt.Printf("  sharded 16x16 live speedup %.2fx on %d CPUs (want >= 1.5x)  <-- FAIL\n", speedup, runtime.NumCPU())
				failed = true
			} else {
				fmt.Printf("  sharded 16x16 live speedup %.2fx on %d CPUs (gate: >= 1.5x)\n", speedup, runtime.NumCPU())
			}
		} else {
			fmt.Printf("  sharded 16x16 live ratio %.3fx on %d CPUs (informational; overhead judged on the recorded baseline)\n",
				cur.Kernel.Step16x16ShardedNsPerOp/cur.Kernel.Step16x16NsPerOp, runtime.NumCPU())
		}
	}
	judgeRecorded := func(label string, serial, sharded float64, shards, cores int, overheadMax float64) {
		if serial == 0 || sharded == 0 || shards == 0 {
			return
		}
		speedup := serial / sharded
		overhead := sharded / serial
		switch {
		case cores >= shards:
			if speedup < 1.5 {
				fmt.Printf("  sharded %s recorded speedup %.2fx on %d CPUs (want >= 1.5x)  <-- FAIL\n", label, speedup, cores)
				failed = true
			} else {
				fmt.Printf("  sharded %s recorded speedup %.2fx on %d CPUs (gate: >= 1.5x)\n", label, speedup, cores)
			}
		case cores == 1:
			if overhead > overheadMax {
				fmt.Printf("  sharded %s recorded overhead %.3fx on 1 CPU (want <= %.2fx)  <-- FAIL\n", label, overhead, overheadMax)
				failed = true
			} else {
				fmt.Printf("  sharded %s recorded overhead %.3fx on 1 CPU (gate: <= %.2fx)\n", label, overhead, overheadMax)
			}
		default:
			fmt.Printf("  sharded %s recorded speedup %.2fx on %d CPUs (speedup gate needs >= %d CPUs, overhead gate needs 1; recorded only)\n",
				label, speedup, cores, shards)
		}
	}
	judgeRecorded("16x16", base.Kernel.Step16x16NsPerOp, base.Kernel.Step16x16ShardedNsPerOp, base.Kernel.Shards, base.Cores, 1.15)
	judgeRecorded("32x32", base.Kernel.Step32x32NsPerOp, base.Kernel.Step32x32ShardedNsPerOp, base.Kernel.Shards, base.Cores, 1.05)
	if failed {
		return fmt.Errorf("bench-smoke regression (see above)")
	}
	if warned {
		fmt.Println("bench-smoke: wall-clock regression warnings above (warn-only; not failing the build)")
	} else {
		fmt.Println("bench-smoke: within thresholds")
	}
	return nil
}
