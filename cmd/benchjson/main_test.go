package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestParseSnapshotCompat pins the decoder's backward compatibility:
// one fixture per schema version v1 through v5 must parse, and the
// metrics each version introduced must be present from that version on
// and zero before it (every consumer treats zero as "skip"). A baseline
// from any recorded era must keep working as the schema grows — fields
// are only ever added.
func TestParseSnapshotCompat(t *testing.T) {
	cases := []struct {
		file      string
		schema    string
		step16    float64 // v2: large-radix 16x16 cell
		sharded16 float64 // v3: sharded-tick variant
		step32    float64 // v4: 32x32 pair (full runs only)
		step64    float64 // v5: 64x64 kilonode pair (full runs only)
		elide     bool    // v5: payload-elision flag
	}{
		{"v1.json", "afcnet-bench/v1", 0, 0, 0, 0, false},
		{"v2.json", "afcnet-bench/v2", 61000, 0, 0, 0, false},
		{"v3.json", "afcnet-bench/v3", 61000, 59000, 0, 0, false},
		{"v4.json", "afcnet-bench/v4", 61000, 59000, 453000, 0, false},
		{"v5.json", "afcnet-bench/v5", 61000, 59000, 350000, 1400000, true},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			buf, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			s, err := parseSnapshot(buf)
			if err != nil {
				t.Fatalf("parseSnapshot: %v", err)
			}
			if s.Schema != tc.schema {
				t.Errorf("schema = %q, want %q", s.Schema, tc.schema)
			}
			if got := s.Kernel.Step16x16NsPerOp; got != tc.step16 {
				t.Errorf("kernelStep16x16NsPerOp = %v, want %v", got, tc.step16)
			}
			if got := s.Kernel.Step16x16ShardedNsPerOp; got != tc.sharded16 {
				t.Errorf("kernelStep16x16ShardedNsPerOp = %v, want %v", got, tc.sharded16)
			}
			if got := s.Kernel.Step32x32NsPerOp; got != tc.step32 {
				t.Errorf("kernelStep32x32NsPerOp = %v, want %v", got, tc.step32)
			}
			if got := s.Kernel.Step64x64NsPerOp; got != tc.step64 {
				t.Errorf("kernelStep64x64NsPerOp = %v, want %v", got, tc.step64)
			}
			if got := s.ElidePayload; got != tc.elide {
				t.Errorf("payloadElision = %v, want %v", got, tc.elide)
			}
		})
	}
}

// TestParseSnapshotRejects pins the failure modes: a snapshot from a
// schema this binary does not know (a future version, or a typo) and
// plain garbage must both error instead of zero-filling silently.
func TestParseSnapshotRejects(t *testing.T) {
	if _, err := parseSnapshot([]byte(`{"schema":"afcnet-bench/v99"}`)); err == nil {
		t.Error("parseSnapshot accepted an unknown future schema")
	}
	if _, err := parseSnapshot([]byte(`not json`)); err == nil {
		t.Error("parseSnapshot accepted malformed JSON")
	}
}

// TestCheckedInSnapshotsParse runs the decoder over every BENCH_<n>.json
// actually recorded in the repo root — the fixtures above are
// hand-written; this keeps the real trajectory readable too.
func TestCheckedInSnapshotsParse(t *testing.T) {
	files := benchFiles("../..")
	if len(files) == 0 {
		t.Skip("no recorded snapshots found")
	}
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parseSnapshot(buf); err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
		}
	}
}
