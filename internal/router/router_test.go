package router

import (
	"math/rand"
	"testing"
	"testing/quick"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

func TestRoundRobinFairness(t *testing.T) {
	rr := NewRoundRobin(3)
	all := func(int) bool { return true }
	got := []int{rr.Pick(all), rr.Pick(all), rr.Pick(all), rr.Pick(all)}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIneligible(t *testing.T) {
	rr := NewRoundRobin(4)
	only2 := func(i int) bool { return i == 2 }
	for k := 0; k < 3; k++ {
		if got := rr.Pick(only2); got != 2 {
			t.Fatalf("pick = %d, want 2", got)
		}
	}
	if got := rr.Pick(func(int) bool { return false }); got != -1 {
		t.Fatalf("pick with none eligible = %d, want -1", got)
	}
}

func TestRoundRobinStartsAfterLastGrant(t *testing.T) {
	rr := NewRoundRobin(4)
	all := func(int) bool { return true }
	rr.Pick(all) // grants 0
	// 1 should be favored now even if 0 also eligible
	if got := rr.Pick(all); got != 1 {
		t.Fatalf("second grant = %d, want 1", got)
	}
}

func mkFlit(id uint64, dst topology.NodeID, vn flit.VN) *flit.Flit {
	return &flit.Flit{PacketID: id, Len: 1, Dst: dst, VN: vn}
}

func allUsable(mesh topology.Mesh, node topology.NodeID) func(*flit.Flit, topology.Dir) bool {
	return func(_ *flit.Flit, d topology.Dir) bool {
		_, ok := mesh.Neighbor(node, d)
		return ok
	}
}

// TestDeflectorAlwaysAssigns is the defining deflection invariant: with
// unrestricted outputs, every flit receives some port, for any number of
// flits up to the node degree plus ejections.
func TestDeflectorAlwaysAssigns(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	for _, policy := range []DeflectPolicy{PolicyRandom, PolicyOldest} {
		for node := topology.NodeID(0); node < 9; node++ {
			d := NewDeflector(mesh, node, policy, rand.New(rand.NewSource(int64(node))))
			deg := mesh.Degree(node)
			// worst case: deg network flits, none destined here
			flits := make([]*flit.Flit, deg)
			for i := range flits {
				dst := topology.NodeID((int(node) + i + 1) % 9)
				if dst == node {
					dst = (dst + 1) % 9
				}
				flits[i] = mkFlit(uint64(i), dst, flit.VNReq)
			}
			for trial := 0; trial < 50; trial++ {
				as := d.Assign(flits, allUsable(mesh, node), 1)
				seen := map[topology.Dir]bool{}
				for i, a := range as {
					if !a.OK {
						t.Fatalf("node %d policy %s: flit %d unassigned", node, policy, i)
					}
					if a.Dir == topology.Local {
						t.Fatalf("node %d: non-destined flit ejected", node)
					}
					if seen[a.Dir] {
						t.Fatalf("node %d: output %s double-assigned", node, a.Dir)
					}
					seen[a.Dir] = true
				}
			}
		}
	}
}

func TestDeflectorEjectsAtMostWidth(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	node := topology.NodeID(4)
	d := NewDeflector(mesh, node, PolicyRandom, rand.New(rand.NewSource(1)))
	flits := []*flit.Flit{
		mkFlit(1, node, flit.VNReq), mkFlit(2, node, flit.VNReq),
		mkFlit(3, node, flit.VNReq), mkFlit(4, node, flit.VNReq),
	}
	for _, width := range []int{1, 2} {
		as := d.Assign(flits, allUsable(mesh, node), width)
		ejected, deflected := 0, 0
		for _, a := range as {
			if !a.OK {
				t.Fatal("unassigned flit")
			}
			if a.Dir == topology.Local {
				ejected++
			} else if !a.Deflected {
				t.Error("non-ejected destination flit must count as deflected")
			} else {
				deflected++
			}
		}
		if ejected != width {
			t.Errorf("width %d: ejected %d", width, ejected)
		}
		if deflected != len(flits)-width {
			t.Errorf("width %d: deflected %d", width, deflected)
		}
	}
}

func TestDeflectorPrefersProductiveDirs(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	d := NewDeflector(mesh, 0, PolicyRandom, rand.New(rand.NewSource(2)))
	// single flit, no contention: must take the DOR direction (East for
	// 0 -> 2) and not be a deflection
	f := mkFlit(1, 2, flit.VNReq)
	for i := 0; i < 20; i++ {
		a := d.Assign([]*flit.Flit{f}, allUsable(mesh, 0), 1)[0]
		if !a.OK || a.Dir != topology.East || a.Deflected {
			t.Fatalf("assignment = %+v, want East productive", a)
		}
	}
}

func TestDeflectorOldestPriority(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	d := NewDeflector(mesh, 0, PolicyOldest, rand.New(rand.NewSource(3)))
	old := &flit.Flit{PacketID: 1, Len: 1, Dst: 2, VN: flit.VNReq, InjectedAt: 5}
	young := &flit.Flit{PacketID: 2, Len: 1, Dst: 2, VN: flit.VNReq, InjectedAt: 50}
	// Both want East; the old one must get it every time.
	for i := 0; i < 20; i++ {
		as := d.Assign([]*flit.Flit{young, old}, allUsable(mesh, 0), 1)
		if as[1].Dir != topology.East || as[1].Deflected {
			t.Fatalf("oldest flit lost its productive port: %+v", as[1])
		}
		if !as[0].Deflected {
			t.Fatalf("young flit should be deflected: %+v", as[0])
		}
	}
}

// TestDeflectorRespectsMasking: with restricted availability, assigned
// ports are always from the usable set and OK=false appears only when the
// usable set is exhausted.
func TestDeflectorRespectsMasking(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	node := topology.NodeID(4)
	f := func(mask uint8, nf uint8) bool {
		rng := rand.New(rand.NewSource(int64(mask)*31 + int64(nf)))
		d := NewDeflector(mesh, node, PolicyRandom, rng)
		usable := func(_ *flit.Flit, dir topology.Dir) bool {
			return mask&(1<<uint(dir)) != 0
		}
		nFlits := int(nf)%4 + 1
		flits := make([]*flit.Flit, nFlits)
		for i := range flits {
			flits[i] = mkFlit(uint64(i), 0, flit.VNReq) // dst 0 != node 4
		}
		as := d.Assign(flits, usable, 1)
		usableCount := 0
		for dir := topology.Dir(0); dir < topology.NumDirs; dir++ {
			if mask&(1<<uint(dir)) != 0 {
				usableCount++
			}
		}
		assigned := 0
		for _, a := range as {
			if a.OK {
				if a.Dir != topology.Local && mask&(1<<uint(a.Dir)) == 0 {
					return false // assigned a masked port
				}
				assigned++
			}
		}
		wantAssigned := nFlits
		if usableCount < nFlits {
			wantAssigned = usableCount
		}
		return assigned == wantAssigned
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyRandom.String() != "random" || PolicyOldest.String() != "oldest" {
		t.Error("policy strings wrong")
	}
}

// TestDeflectorExhaustiveSmallCases enumerates every availability mask and
// flit count at a center node and checks the matching is maximal: the
// number of assigned flits equals min(#flits, #usable outputs [+1 if a
// destined flit can eject]).
func TestDeflectorExhaustiveSmallCases(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	node := topology.NodeID(4)
	rng := rand.New(rand.NewSource(99))
	d := NewDeflector(mesh, node, PolicyRandom, rng)
	for mask := 0; mask < 16; mask++ {
		usable := func(_ *flit.Flit, dir topology.Dir) bool {
			return mask&(1<<uint(dir)) != 0
		}
		usableCount := 0
		for dir := topology.Dir(0); dir < topology.NumDirs; dir++ {
			if mask&(1<<uint(dir)) != 0 {
				usableCount++
			}
		}
		for nFlits := 0; nFlits <= 4; nFlits++ {
			for destined := 0; destined <= 1 && destined <= nFlits; destined++ {
				flits := make([]*flit.Flit, nFlits)
				for i := range flits {
					dst := topology.NodeID(0)
					if i < destined {
						dst = node
					}
					flits[i] = mkFlit(uint64(i), dst, flit.VNReq)
				}
				for trial := 0; trial < 5; trial++ {
					as := d.Assign(flits, usable, 1)
					assigned, ejected := 0, 0
					for _, a := range as {
						if a.OK {
							assigned++
							if a.Dir == topology.Local {
								ejected++
							}
						}
					}
					capacity := usableCount + min(destined, 1)
					want := nFlits
					if capacity < want {
						want = capacity
					}
					if assigned != want {
						t.Fatalf("mask=%04b flits=%d destined=%d: assigned %d, want %d",
							mask, nFlits, destined, assigned, want)
					}
					if ejected > 1 {
						t.Fatalf("ejected %d with width 1", ejected)
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
