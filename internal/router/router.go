// Package router defines the interfaces and helpers shared by all three
// router implementations (backpressured baseline, backpressureless
// deflection, and AFC): the Router interface, the link bundles that wire
// routers to their neighbors, the local-port interfaces to the network
// interface, round-robin arbitration, and the deflection port-assignment
// engine used by the BLESS router and by AFC's backpressureless mode.
package router

import (
	"fmt"
	"math/bits"

	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/sim"
	"afcnet/internal/topology"
)

// Router is one mesh router. Tick performs one cycle of operation:
// process arrivals latched in previous cycles, arbitrate, transmit, and
// latch this cycle's arrivals.
//
// Shard safety: the sharded tick (internal/network's two-phase barrier)
// runs whole row bands of routers concurrently within one cycle, so
// Tick must touch only state the router owns — its own registers and
// meters, its local NI, and the pipes it holds an end of. Anything
// network-global or belonging to another node must go through a staged
// pipe or the network's effect journals; see internal/network/shard.go.
// Implementations must also keep the Quiescer contract exact: whenever
// Quiescent reports true, Tick is bit-for-bit equivalent to
// FastForward(1) — the sharded skip decision is made from a
// start-of-cycle view of the pipe counters and leans on that
// equivalence to stay serial-identical.
type Router interface {
	sim.Ticker
	Node() topology.NodeID
}

// LocalSink receives flits ejected at this node. The network interface
// implements it; per the paper, receive-side buffering is provisioned by
// MSHRs so the sink always accepts.
type LocalSink interface {
	Deliver(now uint64, f *flit.Flit)
}

// LocalSource supplies flits awaiting injection, one FIFO per virtual
// network. Routers pull from it subject to their own injection policy
// (buffer space for backpressured routers; a free output port for
// backpressureless routers, which is the only backpressure they exert).
type LocalSource interface {
	// Peek returns the next flit to inject on vn without removing it, or
	// nil if the vn queue is empty.
	Peek(vn flit.VN) *flit.Flit
	// Pop removes and returns the next flit on vn, or nil.
	Pop(vn flit.VN) *flit.Flit
}

// PortLinks bundles the channels of one mesh port. For a port facing
// direction d at node n, Out/CreditIn/CtrlOut connect toward the neighbor
// in direction d and In/CreditOut/CtrlIn connect from it. Ports at mesh
// boundaries have all-nil links.
type PortLinks struct {
	Out *link.Data // flits we transmit
	In  *link.Data // flits arriving from the neighbor

	CreditOut *link.CreditLink // credits we return upstream (pairs with In)
	CreditIn  *link.CreditLink // credits arriving from downstream (pairs with Out)

	CtrlOut *link.CtrlLink // our mode notifications to the neighbor
	CtrlIn  *link.CtrlLink // the neighbor's mode notifications to us
}

// Exists reports whether this port is wired (false at mesh boundaries).
func (p PortLinks) Exists() bool { return p.Out != nil }

// Wires is the full set of mesh-port links of one router, indexed by
// direction.
type Wires struct {
	Ports [topology.NumDirs]PortLinks
}

// RoundRobin is a stateful round-robin pointer over n slots.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n slots.
func NewRoundRobin(n int) *RoundRobin {
	r := &RoundRobin{}
	r.Init(n)
	return r
}

// Init (re)initializes an arbiter over n slots in place, for arbiters
// embedded by value in slab-resident router state — the cursor then
// lives inside the router's own cache lines instead of behind a
// per-port heap pointer.
func (r *RoundRobin) Init(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("router: round-robin over %d slots", n))
	}
	r.n = n
	r.next = 0
}

// Pick returns the first index i (scanning round-robin from the pointer)
// for which ok(i) is true, advancing the pointer past the grant, or -1 if
// none qualifies.
func (r *RoundRobin) Pick(ok func(i int) bool) int {
	for off := 0; off < r.n; off++ {
		i := (r.next + off) % r.n
		if ok(i) {
			r.next = (i + 1) % r.n
			return i
		}
	}
	return -1
}

// Next grants the slot at the pointer unconditionally and advances it —
// the devirtualized equivalent of Pick with an always-true predicate
// (the deflection routers' per-cycle injection arbitration).
func (r *RoundRobin) Next() int {
	i := r.next
	if i+1 == r.n {
		r.next = 0
	} else {
		r.next = i + 1
	}
	return i
}

// PickMask is Pick restricted to the slots whose bit is set in mask
// (bit i = slot i; bits at or above n must be clear). It is exactly
// equivalent to Pick whenever ok(i) is false for every clear bit —
// the caller's contract — and scans only the set bits, round-robin from
// the pointer, via trailing-zero counts instead of walking every slot.
func (r *RoundRobin) PickMask(mask uint64, ok func(i int) bool) int {
	if mask == 0 {
		return -1
	}
	// Set bits at or after the pointer, in ascending order...
	for m := mask &^ (1<<uint(r.next) - 1); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if ok(i) {
			r.next = (i + 1) % r.n
			return i
		}
	}
	// ...then the wrapped-around set bits before it.
	for m := mask & (1<<uint(r.next) - 1); m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if ok(i) {
			r.next = (i + 1) % r.n
			return i
		}
	}
	return -1
}

// Advance rotates the pointer as if k consecutive always-granting Pick
// calls had run — each grants the slot at the pointer and moves it one
// position. The deflection routers arbitrate injection with an
// always-true predicate every cycle, so the active-set kernel replays k
// skipped idle cycles with Advance(k).
func (r *RoundRobin) Advance(k uint64) {
	r.next = int((uint64(r.next) + k%uint64(r.n)) % uint64(r.n))
}

// Reset rewinds the pointer to slot 0, the state of a fresh arbiter.
func (r *RoundRobin) Reset() { r.next = 0 }

// FaultInjectable is implemented by every router kind to support the
// scenario layer's fault injection (internal/scenario). All calls come
// from serial ticker context (never inside a sharded parallel phase).
type FaultInjectable interface {
	// SetPortBlocked marks (or clears) the data path of output d as
	// unusable: routing treats the link as missing. Used both for
	// permanent dead links and for duty-cycle link throttling.
	SetPortBlocked(d topology.Dir, blocked bool)
	// SetPortDead permanently kills output d: data is blocked and, on
	// kinds that carry them, credit/control traffic stops too.
	SetPortDead(d topology.Dir)
	// SetDead freezes the whole router: Tick and FastForward become
	// no-ops and Quiescent reports true. Held flits stay parked but
	// remain visible to ForEachFlit, so conservation ledgers balance.
	SetDead()
}

// QueuedCounter is implemented by local sources that can report their
// total queued flits in O(1) (the network interface does). Routers use
// it to cheapen the per-cycle quiescence check; they fall back to
// per-VN Peek calls for sources that do not implement it.
type QueuedCounter interface {
	QueuedFlits() int
}
