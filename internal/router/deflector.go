package router

import (
	"math/rand"
	"sort"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

// DeflectPolicy selects how contending flits are prioritized in a
// deflection router.
type DeflectPolicy uint8

// Deflection arbitration policies.
const (
	// PolicyRandom randomizes flit priority each cycle, Chaos-router
	// style. Livelock freedom is probabilistic (Section III-F: a strong
	// guarantee — the probability of non-delivery can be made arbitrarily
	// small). This is the paper's policy.
	PolicyRandom DeflectPolicy = iota
	// PolicyOldest gives priority to the oldest flit (BLESS-style
	// hardware priorities), which makes livelock freedom deterministic.
	// Provided for comparison/ablation.
	PolicyOldest
)

// String implements fmt.Stringer.
func (p DeflectPolicy) String() string {
	if p == PolicyOldest {
		return "oldest"
	}
	return "random"
}

// Assignment is the outcome of deflection port assignment for one flit.
type Assignment struct {
	// Dir is the assigned output; topology.Local means ejection.
	Dir topology.Dir
	// OK is false if no output could be assigned (only possible when the
	// caller restricts availability, e.g. AFC masking credit-exhausted
	// outputs; a pure deflection router always succeeds).
	OK bool
	// Deflected reports whether the assignment is a misroute (not a
	// productive direction and not an ejection).
	Deflected bool
}

// Deflector implements the port-assignment step of deflection
// (hot-potato) routing for one router: every contending flit receives some
// free output; at most one flit ejects per cycle; losers are misrouted.
type Deflector struct {
	mesh   topology.Mesh
	node   topology.NodeID
	policy DeflectPolicy
	rng    *rand.Rand
	// cols, when non-nil, is the columnar flit bank the deflector reads
	// destination, age and sequencing through (nil = struct reference
	// path; the accessors fall back themselves).
	cols *flit.Columns

	// routes is node's precomputed route table (per-destination DOR
	// next hop and productive-direction set).
	routes topology.RouteTable

	// scratch buffers reused across cycles to avoid allocation
	order []int
	free  []topology.Dir
	out   []Assignment
}

// NewDeflector returns a deflector for the router at node, building a
// private route table. Slab-resident routers use Init with the
// network's shared tables instead.
func NewDeflector(mesh topology.Mesh, node topology.NodeID, policy DeflectPolicy, rng *rand.Rand) *Deflector {
	d := &Deflector{}
	d.Init(mesh, node, policy, rng, mesh.Routes(node))
	return d
}

// Init (re)initializes a deflector in place for value embedding, with a
// caller-provided route table — typically a view into the network's
// shared topology.Tables, so the O(N²) table exists once per mesh
// rather than once per deflector.
func (d *Deflector) Init(mesh topology.Mesh, node topology.NodeID, policy DeflectPolicy, rng *rand.Rand, routes topology.RouteTable) {
	d.mesh = mesh
	d.node = node
	d.policy = policy
	d.rng = rng
	d.routes = routes
}

// DORTable exposes the deflector's per-destination DOR table (aliasing
// tests assert it shares the network's backing).
func (d *Deflector) DORTable() []topology.Dir { return d.routes.DOR }

// Reseed rewinds the deflector's arbitration randomness onto a fresh
// stream root. With the scratch buffers carrying no cross-cycle state,
// this restores a freshly constructed deflector bit for bit (the reused-
// network reset path).
func (d *Deflector) Reseed(seed int64) { d.rng.Seed(seed) }

// SetColumns attaches the columnar flit banks the deflector reads hot
// per-flit state through. Nil selects the struct-field reference path.
func (d *Deflector) SetColumns(c *flit.Columns) { d.cols = c }

// Assign assigns an output direction to every flit in flits.
//
// usable(f, dir) must report whether output dir can carry f this cycle:
// the link exists, and (for AFC) the downstream router has credits for
// f's virtual network if it is in backpressured mode. Assign itself masks
// ports already taken by higher-priority flits. ejectFree reports whether
// the single ejection port is available.
//
// The returned slice is parallel to flits and is only valid until the next
// call. Flits are prioritized per the policy; each flit takes, in order of
// preference: ejection (if destined here), a productive direction (the
// DOR direction first, so low-load paths match the baseline), any other
// usable direction (a deflection). OK=false marks flits for which no
// output remained; a caller that never masks outputs can treat that as an
// invariant violation.
func (d *Deflector) Assign(flits []*flit.Flit, usable func(f *flit.Flit, dir topology.Dir) bool, ejectSlots int) []Assignment {
	if cap(d.out) < len(flits) {
		d.out = make([]Assignment, len(flits))
	}
	out := d.out[:len(flits)]
	if len(flits) == 0 {
		return out
	}

	d.order = d.order[:0]
	for i := range flits {
		d.order = append(d.order, i)
	}
	switch d.policy {
	case PolicyOldest:
		sort.SliceStable(d.order, func(a, b int) bool {
			fa, fb := flits[d.order[a]], flits[d.order[b]]
			if aa, ab := d.cols.FlitAge(fa), d.cols.FlitAge(fb); aa != ab {
				return aa < ab
			}
			if pa, pb := d.cols.FlitPacketID(fa), d.cols.FlitPacketID(fb); pa != pb {
				return pa < pb
			}
			return d.cols.FlitSeq(fa) < d.cols.FlitSeq(fb)
		})
	default: // PolicyRandom
		d.rng.Shuffle(len(d.order), func(a, b int) {
			d.order[a], d.order[b] = d.order[b], d.order[a]
		})
	}

	taken := [topology.NumDirs]bool{}
	for _, idx := range d.order {
		f := flits[idx]
		a := d.assignOne(f, usable, &taken, &ejectSlots)
		out[idx] = a
	}
	return out
}

func (d *Deflector) assignOne(f *flit.Flit, avail func(*flit.Flit, topology.Dir) bool, taken *[topology.NumDirs]bool, ejectSlots *int) Assignment {
	usable := func(dir topology.Dir) bool {
		return avail(f, dir) && !taken[dir]
	}

	dst := d.cols.FlitDst(f)
	if dst == d.node {
		if *ejectSlots > 0 {
			*ejectSlots--
			return Assignment{Dir: topology.Local, OK: true}
		}
		// Ejection port busy: the flit must be deflected and return later.
	} else {
		// Prefer the DOR next hop, then the other productive direction.
		if dor := d.routes.DOR[dst]; usable(dor) {
			taken[dor] = true
			return Assignment{Dir: dor, OK: true}
		}
		ps := &d.routes.Prod[dst]
		for _, dir := range ps.D[:ps.N] {
			if usable(dir) {
				taken[dir] = true
				return Assignment{Dir: dir, OK: true}
			}
		}
	}

	// Deflect: pick uniformly among the remaining free outputs so hot
	// spots spread symmetrically.
	d.free = d.free[:0]
	for dir := topology.Dir(0); dir < topology.NumDirs; dir++ {
		if usable(dir) {
			d.free = append(d.free, dir)
		}
	}
	if len(d.free) == 0 {
		return Assignment{OK: false}
	}
	dir := d.free[0]
	if len(d.free) > 1 && d.policy == PolicyRandom {
		dir = d.free[d.rng.Intn(len(d.free))]
	}
	taken[dir] = true
	return Assignment{Dir: dir, OK: true, Deflected: true}
}
