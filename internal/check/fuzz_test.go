package check_test

import (
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// FuzzConfig derives a machine configuration from the fuzz input —
// ranging over and slightly past the Table II bounds — and runs a short
// checked simulation on every configuration Validate accepts. Invalid
// configurations must be rejected by Validate (returning an error, not
// panicking); valid ones must uphold every invariant.
func FuzzConfig(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint8(1), uint8(9), uint8(3), uint8(1), uint16(600))
	f.Add(int64(2), uint8(0), uint8(7), uint8(2), uint8(0), uint8(7), uint8(0), uint16(150))
	f.Add(int64(3), uint8(5), uint8(4), uint8(0), uint8(255), uint8(15), uint8(2), uint16(1200))
	f.Fuzz(func(t *testing.T, seed int64, kindB, meshB, linkB, vcB, depthB, ejectB uint8, cyclesB uint16) {
		kind := network.Kind(int(kindB) % network.NumKinds)
		w := 2 + int(meshB)%3
		h := 2 + int(meshB/4)%3
		sys := config.DefaultWithMesh(topology.NewMesh(w, h))
		sys.LinkLatency = 1 + int(linkB)%3
		sys.EjectWidth = 1 + int(ejectB)%3
		// Re-derive the latency-dependent parameters the way
		// config.Default does, but from ranges that can dip below the
		// legal minimum (2L slots per VN) so Validate's rejection path is
		// fuzzed too.
		sys.AFC.GossipFreeSlots = 2 * sys.LinkLatency
		for vn := range sys.AFC.VCsPerVN {
			sys.AFC.VCsPerVN[vn] = 2 + int(vcB>>(2*vn))%8
		}
		for vn := range sys.Baseline.VCsPerVN {
			sys.Baseline.VCsPerVN[vn] = 1 + int(vcB>>vn)%4
		}
		sys.Baseline.BufDepth = 1 + int(depthB)%8
		if err := sys.Validate(); err != nil {
			t.Skip("not a legal machine")
		}
		net := network.New(network.Config{System: sys, Kind: kind, Seed: seed, MeterEnergy: true})
		c := check.AttachWith(net, check.Config{})
		gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.3}, net.RandStream)
		net.AddTicker(gen)
		net.Run(200 + uint64(cyclesB)%600)
		gen.Stop()
		// Best-effort drain: saturated configurations may not finish, and
		// that is fine — the checker is the oracle, not drainage.
		net.RunUntil(net.Drained, 50_000)
		if err := c.Err(); err != nil {
			t.Fatalf("invariant violations: %v", err)
		}
	})
}

// FuzzNetworkStep steps every kind under fuzz-chosen traffic with the
// checker attached: a randomized search for schedules that break
// conservation, credit accounting, mode legality, or reassembly.
func FuzzNetworkStep(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(120), uint16(900))
	f.Add(int64(7), uint8(2), uint8(3), uint8(250), uint16(300))
	f.Add(int64(23), uint8(3), uint8(1), uint8(40), uint16(1700))
	f.Fuzz(func(t *testing.T, seed int64, kindB, patB, rateB uint8, cyclesB uint16) {
		kind := network.Kind(int(kindB) % network.NumKinds)
		rate := 0.05 + float64(rateB)/255*0.55
		net := network.New(network.Config{Kind: kind, Seed: seed, MeterEnergy: true})
		c := check.AttachWith(net, check.Config{})
		mesh := net.Mesh()
		var pat traffic.Pattern
		switch patB % 4 {
		case 0:
			pat = traffic.Uniform{Mesh: mesh}
		case 1:
			pat = traffic.Transpose{Mesh: mesh}
		case 2:
			pat = traffic.BitComplement{Mesh: mesh}
		default:
			pat = traffic.Hotspot{Mesh: mesh, Hot: mesh.Node(1, 1), Frac: 0.4}
		}
		gen := traffic.NewGenerator(net, traffic.Config{Pattern: pat, Rate: rate}, net.RandStream)
		net.AddTicker(gen)
		cycles := 200 + uint64(cyclesB)%1800
		for i := uint64(0); i < cycles; i++ {
			net.Step()
		}
		gen.Stop()
		net.RunUntil(net.Drained, 100_000)
		if err := c.Err(); err != nil {
			t.Fatalf("invariant violations: %v", err)
		}
	})
}
