// Package check is the simulation's standing correctness oracle: a
// Checker attaches to a network.Network as an end-of-cycle ticker and
// continuously verifies cross-cutting invariants that the per-router
// panics cannot see — global flit conservation, credit ledgers
// reconciled against actual downstream buffer state, a flit-age bound
// (the livelock oracle for deflection routing), AFC mode-transition
// legality, and reassembly integrity at every NI.
//
// The checker is pure observation: it never mutates network state, so a
// checked run produces bit-for-bit the same results as an unchecked
// one. One checker per network; under the parallel experiment runner
// each cell attaches its own.
package check

import (
	"fmt"
	"os"

	"afcnet/internal/config"
	"afcnet/internal/core"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/vcrouter"
)

// EnvVar enables checking in every harness that consults FromEnv
// (cmd/afcsim, cmd/figures, cmd/sweep).
const EnvVar = "AFCSIM_CHECK"

// FromEnv reports whether AFCSIM_CHECK requests checked runs. Any value
// other than empty, "0", "false", "no" or "off" enables checking.
func FromEnv() bool {
	switch os.Getenv(EnvVar) {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}

// DefaultMaxFlitAge bounds how long a flit may stay in the network.
// Deflection routing is only probabilistically livelock-free
// (Section III-F), so the bound is generous: a flit a hundred thousand
// cycles old is livelocked or leaked, not unlucky. Backlogged traffic
// waits in NI queues before injection and does not age against this
// bound.
const DefaultMaxFlitAge = 100_000

// Config parameterizes a Checker.
type Config struct {
	// MaxFlitAge is the in-network age bound; 0 selects
	// DefaultMaxFlitAge.
	MaxFlitAge uint64
	// Interval is the period of the heavyweight scans (conservation,
	// ledger reconciliation, reassembly); 0 checks every cycle. The
	// cheap per-cycle AFC mode and shadow-ledger checks always run
	// every cycle regardless.
	Interval uint64
	// FailFast panics on the first violation with the full message;
	// otherwise violations accumulate and are reported by Err.
	FailFast bool
}

// Checker verifies network-wide invariants at the end of every cycle.
type Checker struct {
	net  *network.Network
	cfg  Config
	kind network.Kind

	afcCap         [flit.NumVNs]int // per-VN SRAM capacity (AFC kinds)
	vcDepth        int              // per-VC buffer depth (backpressured kinds)
	numVCs         int              // VCs per port (backpressured kinds)
	ths            []config.Thresholds
	misroutePolicy bool
	steadyAfter    uint64 // tracked cycles before occupancy reconciliation

	cycles     uint64
	violations []string

	edges []edgeState
	modes []modeState

	scratchF []*flit.Flit
	scratchC []link.Credit
	vcFlits  []int
	vcCreds  []int
}

// edgeState is the checker's view of one directed link bundle, including
// the shadow credit ledger it maintains for AFC credit tracking.
type edgeState struct {
	from topology.NodeID
	dir  topology.Dir
	to   topology.NodeID

	tracking   bool
	shadow     [flit.NumVNs]int
	trackedFor uint64 // end-of-cycle observations since tracking began
	unsteady   bool   // downstream seen backpressureless this episode
	pending    []pendingCredit
}

// pendingCredit is a credit the downstream router sent but the upstream
// router has not received yet.
type pendingCredit struct {
	due uint64
	vn  flit.VN
}

// modeState is the previous end-of-cycle mode snapshot of one AFC
// router, used to validate transitions and switch counters.
type modeState struct {
	init       bool
	mode       core.Mode
	modeCycles [3]uint64
	forward    uint64
	reverse    uint64
	gossip     uint64
	escapes    uint64
}

// New builds a checker for net without attaching it. Most callers want
// Attach or AttachWith.
func New(net *network.Network, cfg Config) *Checker {
	if cfg.MaxFlitAge == 0 {
		cfg.MaxFlitAge = DefaultMaxFlitAge
	}
	if cfg.Interval == 0 {
		cfg.Interval = 1
	}
	c := &Checker{net: net, cfg: cfg, kind: net.Config().Kind}
	sys := net.Config().System
	c.afcCap = sys.AFC.VCsPerVN
	c.vcDepth = sys.Baseline.BufDepth
	c.numVCs = sys.Baseline.VCsPerPort()
	c.misroutePolicy = net.Config().MisrouteThreshold > 0
	// After a forward switch the link may still carry flits sent before
	// credit tracking began; give each episode a full round trip to
	// settle before reconciling occupancy against credits.
	c.steadyAfter = uint64(2*sys.LinkLatency + 3)
	c.vcFlits = make([]int, c.numVCs)
	c.vcCreds = make([]int, c.numVCs)
	mesh := net.Mesh()
	for node := topology.NodeID(0); node < topology.NodeID(mesh.Nodes()); node++ {
		c.ths = append(c.ths, sys.AFC.ThresholdsByPosition[mesh.Position(node)])
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			nb, ok := mesh.Neighbor(node, d)
			if !ok {
				continue
			}
			c.edges = append(c.edges, edgeState{from: node, dir: d, to: nb})
		}
	}
	if c.kind == network.AFC || c.kind == network.AFCAlwaysBuffered {
		c.modes = make([]modeState, mesh.Nodes())
	}
	return c
}

// Attach builds a fail-fast checker and registers it to tick at the end
// of every cycle. It must be called before the network's first cycle:
// the shadow ledgers assume observation from cycle 0.
func Attach(net *network.Network) *Checker {
	return AttachWith(net, Config{FailFast: true})
}

// AttachWith is Attach with an explicit configuration.
func AttachWith(net *network.Network, cfg Config) *Checker {
	if net.Now() != 0 {
		panic("check: checker must attach before the network's first cycle")
	}
	c := New(net, cfg)
	net.AddTicker(c)
	return c
}

// CheckedCycles returns how many cycles the checker has observed.
func (c *Checker) CheckedCycles() uint64 { return c.cycles }

// Violations returns the accumulated violation messages.
func (c *Checker) Violations() []string {
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err summarizes the violations as an error, nil if none.
func (c *Checker) Err() error {
	switch len(c.violations) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", c.violations[0])
	}
	return fmt.Errorf("%s (and %d more violations)", c.violations[0], len(c.violations)-1)
}

func (c *Checker) fail(now uint64, format string, args ...any) {
	msg := fmt.Sprintf("check[%v @%d]: %s", c.kind, now, fmt.Sprintf(format, args...))
	c.violations = append(c.violations, msg)
	if c.cfg.FailFast {
		panic(msg)
	}
}

// Tick implements sim.Ticker. The network registers routers first, so
// the checker observes a settled end-of-cycle state.
func (c *Checker) Tick(now uint64) {
	c.cycles++
	if c.modes != nil {
		c.checkModes(now)
		c.checkAFCEdges(now)
	}
	if now%c.cfg.Interval != 0 {
		return
	}
	c.checkConservationAndAges(now)
	c.checkReassembly(now)
	switch c.kind {
	case network.Backpressured, network.BackpressuredIdealBypass:
		c.checkVCLedgers(now)
	case network.AFC, network.AFCAlwaysBuffered:
		c.checkAFCOccupancy(now)
	}
}

// flitHolder is implemented by every router kind; it exposes the flits
// a router currently holds.
type flitHolder interface {
	ForEachFlit(func(*flit.Flit))
}

// checkConservationAndAges verifies global flit conservation — every
// flit ever injected is buffered, latched, in flight on a link, ejected,
// or (drop variant) dropped pending NACK retransmission — and bounds the
// age of every in-network flit (the livelock oracle).
func (c *Checker) checkConservationAndAges(now uint64) {
	var injected, ejected uint64
	inNet := 0
	// With dead links or routers in play, flits stranded behind them are
	// expected to age without bound — the age oracle would misreport the
	// intended fault as livelock. Conservation still holds (stranded
	// flits stay enumerable), so only the age check is suspended.
	ageChecked := !c.net.FaultsActive()
	countFlit := func(f *flit.Flit) {
		inNet++
		if age := now - f.InjectedAt; ageChecked && age > c.cfg.MaxFlitAge {
			c.fail(now, "age bound: flit pkt=%#x seq=%d src=%d dst=%d injected at %d is %d cycles old (bound %d) — livelock or leak",
				f.PacketID, f.Seq, f.Src, f.Dst, f.InjectedAt, age, c.cfg.MaxFlitAge)
		}
		if err := flit.CheckHandle(f); err != nil {
			c.fail(now, "arena lifecycle: %v", err)
		}
	}
	for node := 0; node < c.net.Nodes(); node++ {
		nif := c.net.NI(topology.NodeID(node))
		injected += nif.TotalInjectedFlits()
		ejected += nif.TotalEjectedFlits()
		c.net.Router(topology.NodeID(node)).(flitHolder).ForEachFlit(countFlit)
	}
	for ei := range c.edges {
		e := &c.edges[ei]
		c.scratchF = c.net.Wires(e.from).Ports[e.dir].Out.AppendInFlight(c.scratchF[:0])
		for _, f := range c.scratchF {
			countFlit(f)
		}
	}
	dropped := c.net.TotalDropped()
	if injected != ejected+uint64(inNet)+dropped {
		c.fail(now, "flit conservation: injected %d != ejected %d + in-network %d + dropped %d",
			injected, ejected, inNet, dropped)
	}
}

// checkReassembly asks every NI to self-verify its reassembly state.
func (c *Checker) checkReassembly(now uint64) {
	for node := 0; node < c.net.Nodes(); node++ {
		if err := c.net.NI(topology.NodeID(node)).CheckReassembly(); err != nil {
			c.fail(now, "reassembly at node %d: %v", node, err)
		}
	}
}

// checkVCLedgers reconciles the baseline router's per-VC credit counts
// against ground truth. At the end of any cycle, for each directed edge
// and VC: upstream credits + downstream occupancy + flits in flight
// toward downstream + credits in flight back upstream = buffer depth.
func (c *Checker) checkVCLedgers(now uint64) {
	for ei := range c.edges {
		e := &c.edges[ei]
		// A killed link loses credits for good: flits already in flight
		// when it died may still land downstream, but the return credit is
		// suppressed, so the ledger can never rebalance on this edge.
		if c.net.LinkDead(e.from, e.dir) {
			continue
		}
		a := c.net.Router(e.from).(*vcrouter.Router)
		b := c.net.Router(e.to).(*vcrouter.Router)
		pl := c.net.Wires(e.from).Ports[e.dir]
		op := e.dir.Opposite()
		for v := 0; v < c.numVCs; v++ {
			c.vcFlits[v], c.vcCreds[v] = 0, 0
		}
		c.scratchF = pl.Out.AppendInFlight(c.scratchF[:0])
		for _, f := range c.scratchF {
			c.vcFlits[f.VC]++
		}
		c.scratchC = pl.CreditIn.AppendInFlight(c.scratchC[:0])
		for _, cr := range c.scratchC {
			c.vcCreds[cr.VC]++
		}
		for v := 0; v < c.numVCs; v++ {
			got := a.Credits(e.dir, v) + b.Occupancy(op, v) + c.vcFlits[v] + c.vcCreds[v]
			if got != c.vcDepth {
				c.fail(now, "credit ledger: edge %d-%v->%d vc %d: credits %d + occupancy %d + flits in flight %d + credits in flight %d != depth %d",
					e.from, e.dir, e.to, v, a.Credits(e.dir, v), b.Occupancy(op, v), c.vcFlits[v], c.vcCreds[v], c.vcDepth)
			}
		}
	}
}

// checkAFCEdges maintains a shadow credit ledger per directed edge and
// compares it against the upstream router's tracked credits every cycle.
// The shadow replays exactly the protocol: start at full capacity when
// tracking begins (the downstream buffers are empty at a forward
// switch), debit when the upstream router launches a flit, and credit
// when a downstream-sent credit lands after the credit-link latency.
func (c *Checker) checkAFCEdges(now uint64) {
	for ei := range c.edges {
		e := &c.edges[ei]
		// A killed link stops carrying credits and control, and a dead
		// endpoint router stops consuming what is already in flight, so
		// the shadow ledger diverges from the frozen real one by design.
		if c.net.LinkDead(e.from, e.dir) {
			e.tracking = false
			e.pending = e.pending[:0]
			continue
		}
		a := c.net.Router(e.from).(*core.Router)
		_, tracking := a.Credits(e.dir, 0)
		if !tracking {
			e.tracking = false
			e.pending = e.pending[:0]
			continue
		}
		if !e.tracking {
			e.tracking = true
			e.shadow = c.afcCap
			e.pending = e.pending[:0]
			e.trackedFor = 0
			e.unsteady = false
		}
		e.trackedFor++
		keep := e.pending[:0]
		for _, pc := range e.pending {
			if pc.due <= now {
				e.shadow[pc.vn]++
			} else {
				keep = append(keep, pc)
			}
		}
		e.pending = keep
		pl := c.net.Wires(e.from).Ports[e.dir]
		// The value arriving at now+latency is exactly what was sent
		// this cycle (earlier arrivals were consumed by the routers). On
		// a sharded run a boundary pipe's current-cycle send is still
		// parked in its staged register — the owner commits it next
		// cycle — so it is only visible through StagedAt; the two reads
		// cannot both hit (staged pipes never enter the ring same-cycle).
		cr, ok := pl.CreditIn.Peek(now + uint64(pl.CreditIn.Latency()))
		if !ok {
			cr, ok = pl.CreditIn.StagedAt(now)
		}
		if ok {
			e.pending = append(e.pending, pendingCredit{due: now + uint64(pl.CreditIn.Latency()), vn: cr.VN})
		}
		f, ok := pl.Out.Peek(now + uint64(pl.Out.Latency()))
		if !ok {
			f, ok = pl.Out.StagedAt(now)
		}
		if ok {
			e.shadow[f.VN]--
		}
		if c.net.Router(e.to).(*core.Router).Mode() == core.ModeBless {
			e.unsteady = true
		}
		for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
			got, _ := a.Credits(e.dir, vn)
			if got != e.shadow[vn] {
				c.fail(now, "credit ledger: router %d toward %v vn %v holds %d credits, shadow ledger says %d",
					e.from, e.dir, vn, got, e.shadow[vn])
			}
			if got < 0 || got > c.afcCap[vn] {
				c.fail(now, "credit ledger: router %d toward %v vn %v credit count %d outside [0,%d]",
					e.from, e.dir, vn, got, c.afcCap[vn])
			}
		}
	}
}

// checkAFCOccupancy reconciles tracked credits against actual SRAM
// occupancy on edges whose credit-tracking episode has settled: once the
// pre-tracking flits have landed and while the downstream router stays
// backpressured, upstream credits + downstream SRAM occupancy + traffic
// in flight must equal the per-VN capacity. Escape latches are
// uncredited by design and drop out of the equation.
func (c *Checker) checkAFCOccupancy(now uint64) {
	for ei := range c.edges {
		e := &c.edges[ei]
		if !e.tracking || e.unsteady || e.trackedFor <= c.steadyAfter {
			continue
		}
		b := c.net.Router(e.to).(*core.Router)
		if b.Mode() != core.ModeBuffered {
			continue
		}
		a := c.net.Router(e.from).(*core.Router)
		pl := c.net.Wires(e.from).Ports[e.dir]
		op := e.dir.Opposite()
		var flitsFlight, credsFlight [flit.NumVNs]int
		c.scratchF = pl.Out.AppendInFlight(c.scratchF[:0])
		for _, f := range c.scratchF {
			flitsFlight[f.VN]++
		}
		c.scratchC = pl.CreditIn.AppendInFlight(c.scratchC[:0])
		for _, cr := range c.scratchC {
			credsFlight[cr.VN]++
		}
		for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
			credits, _ := a.Credits(e.dir, vn)
			got := credits + b.Occupancy(op, vn) + flitsFlight[vn] + credsFlight[vn]
			if got != c.afcCap[vn] {
				c.fail(now, "buffer slots leaked: edge %d-%v->%d vn %v: credits %d + occupancy %d + flits in flight %d + credits in flight %d != capacity %d",
					e.from, e.dir, e.to, vn, credits, b.Occupancy(op, vn), flitsFlight[vn], credsFlight[vn], c.afcCap[vn])
			}
		}
	}
}

// checkModes validates AFC mode-machine behavior cycle by cycle: duty
// cycles advance by exactly one in the bucket of the previous mode,
// transitions follow the legal graph, switch counters move only with
// their transitions, gossip only rides a forward switch, and the
// hysteresis thresholds order the threshold-policy switches.
//
// Legal transitions per cycle: backpressureless may stay or begin
// switching; switching may stay, complete to backpressured, or — when
// completion and an immediate reverse decision land in the same cycle —
// appear to jump back to backpressureless; backpressured may stay or
// reverse to backpressureless. Backpressureless never jumps straight to
// backpressured: the switching window is mandatory.
func (c *Checker) checkModes(now uint64) {
	for node := range c.modes {
		// A killed router freezes: its duty cycles stop advancing, which
		// the one-cycle accounting below would flag. Nothing to validate.
		if c.net.RouterDead(topology.NodeID(node)) {
			continue
		}
		r := c.net.Router(topology.NodeID(node)).(*core.Router)
		cur := modeState{
			init:       true,
			mode:       r.Mode(),
			modeCycles: r.ModeCycles(),
			forward:    r.ForwardSwitches(),
			reverse:    r.ReverseSwitches(),
			gossip:     r.GossipSwitches(),
			escapes:    r.EscapeEvents(),
		}
		prev := c.modes[node]
		c.modes[node] = cur
		if !prev.init {
			continue
		}
		var dmc uint64
		for m := range cur.modeCycles {
			dmc += cur.modeCycles[m] - prev.modeCycles[m]
		}
		if dmc != 1 {
			c.fail(now, "router %d: mode duty cycles advanced by %d in one cycle", node, dmc)
		} else if cur.modeCycles[prev.mode] != prev.modeCycles[prev.mode]+1 {
			c.fail(now, "router %d: cycle accounted to the wrong mode (was %v at end of previous cycle)", node, prev.mode)
		}
		dF := cur.forward - prev.forward
		dR := cur.reverse - prev.reverse
		dG := cur.gossip - prev.gossip
		dE := cur.escapes - prev.escapes
		if c.kind == network.AFCAlwaysBuffered {
			if cur.mode != core.ModeBuffered || dF != 0 || dR != 0 || dG != 0 {
				c.fail(now, "router %d: always-backpressured router left %v or switched (+%d forward, +%d reverse, +%d gossip)",
					node, core.ModeBuffered, dF, dR, dG)
			}
			continue
		}
		if prev.mode == core.ModeBless && cur.mode == core.ModeBuffered {
			c.fail(now, "router %d: illegal transition %v -> %v (skipped the switching window)", node, prev.mode, cur.mode)
		}
		if prev.mode == core.ModeBuffered && cur.mode == core.ModeSwitching {
			c.fail(now, "router %d: illegal transition %v -> %v", node, prev.mode, cur.mode)
		}
		var wantF, wantR uint64
		if prev.mode == core.ModeBless && cur.mode == core.ModeSwitching {
			wantF = 1
		}
		if prev.mode != core.ModeBless && cur.mode == core.ModeBless {
			wantR = 1
		}
		if dF != wantF {
			c.fail(now, "router %d: forward switches moved +%d on %v -> %v (want +%d)", node, dF, prev.mode, cur.mode, wantF)
		}
		if dR != wantR {
			c.fail(now, "router %d: reverse switches moved +%d on %v -> %v (want +%d)", node, dR, prev.mode, cur.mode, wantR)
		}
		if dG > dF {
			c.fail(now, "router %d: gossip switch without a forward switch", node)
		}
		th := c.ths[node]
		// A forward switch driven by the contention threshold must see
		// intensity above High; gossip- and escape-triggered switches
		// fire below it by design, and the misroute-policy ablation does
		// not use the thresholds at all.
		if wantF == 1 && dG == 0 && dE == 0 && !c.misroutePolicy && r.Intensity() <= th.High {
			c.fail(now, "router %d: forward switch at intensity %.3f <= high threshold %.3f", node, r.Intensity(), th.High)
		}
		if wantR == 1 {
			if r.Intensity() >= th.Low {
				c.fail(now, "router %d: reverse switch at intensity %.3f >= low threshold %.3f", node, r.Intensity(), th.Low)
			}
			if r.BufferedFlits() != 0 || r.LatchedFlits() != 0 {
				c.fail(now, "router %d: reverse switch with %d buffered and %d latched flits still held",
					node, r.BufferedFlits(), r.LatchedFlits())
			}
		}
	}
}
