package check_test

import (
	"strings"
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// kindRate picks an offered load that exercises the kind: AFC kinds run
// hot enough to switch modes both ways, the drop variant stays below its
// early saturation so the NACK/retransmission machinery cycles without
// an unbounded backlog.
func kindRate(k network.Kind) float64 {
	if k == network.BlessDrop {
		return 0.20
	}
	return 0.45
}

// TestAllKindsChecked is the standing CI smoke for the invariant layer:
// every network kind runs a few thousand cycles of open-loop uniform
// traffic with the checker attached, then drains, with zero violations.
func TestAllKindsChecked(t *testing.T) {
	for k := network.Kind(0); k < network.NumKinds; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			net := network.New(network.Config{Kind: k, Seed: 11, MeterEnergy: true})
			c := check.AttachWith(net, check.Config{})
			gen := traffic.NewGenerator(net, traffic.Config{Rate: kindRate(k)}, net.RandStream)
			net.AddTicker(gen)
			net.Run(4000)
			gen.Stop()
			if !net.RunUntil(net.Drained, 300_000) {
				t.Errorf("network did not drain after the generator stopped")
			}
			if err := c.Err(); err != nil {
				for _, v := range c.Violations() {
					t.Log(v)
				}
				t.Fatalf("invariant violations: %v", err)
			}
			if c.CheckedCycles() < 4000 {
				t.Fatalf("checker observed only %d cycles", c.CheckedCycles())
			}
		})
	}
}

// TestCheckerDetectsConjuredFlit verifies the oracle itself: delivering
// a flit that was never injected must trip flit conservation.
func TestCheckerDetectsConjuredFlit(t *testing.T) {
	net := network.New(network.Config{Kind: network.Bless, Seed: 1})
	c := check.AttachWith(net, check.Config{})
	p := flit.Packet{ID: 1, Src: 1, Dst: 0, VN: flit.VNReq, Len: 1, CreatedAt: 0}
	net.NI(0).Deliver(0, p.Flits()[0])
	net.Step()
	err := c.Err()
	if err == nil {
		t.Fatal("checker accepted a flit that was never injected")
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("expected a conservation violation, got: %v", err)
	}
}

// TestCheckerFailFastPanics verifies the fail-fast mode used by the
// experiment harnesses: the first violation must panic so the worker
// pool surfaces it as the cell's error.
func TestCheckerFailFastPanics(t *testing.T) {
	net := network.New(network.Config{Kind: network.Bless, Seed: 1})
	check.Attach(net)
	p := flit.Packet{ID: 1, Src: 1, Dst: 0, VN: flit.VNReq, Len: 1, CreatedAt: 0}
	net.NI(0).Deliver(0, p.Flits()[0])
	defer func() {
		if recover() == nil {
			t.Fatal("fail-fast checker did not panic on a violation")
		}
	}()
	net.Step()
}

// TestCheckerCatchesPrematureRecycle verifies the arena-lifecycle
// oracle: recycling a flit that is still in flight (the double-recycle /
// use-after-free failure mode of the pooling layer) must be flagged the
// next time the checker walks the network. The generator is stopped
// before the corruption so the freed slot cannot be reissued within the
// observed cycle — the checker then sees an in-network flit whose handle
// the arena says was already returned.
func TestCheckerCatchesPrematureRecycle(t *testing.T) {
	net := network.New(network.Config{Kind: network.Bless, Seed: 3})
	c := check.AttachWith(net, check.Config{})
	gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.45}, net.RandStream)
	net.AddTicker(gen)
	net.Run(200)
	gen.Stop()
	var victim *flit.Flit
	for node := 0; node < net.Nodes() && victim == nil; node++ {
		net.Router(topology.NodeID(node)).(interface {
			ForEachFlit(func(*flit.Flit))
		}).ForEachFlit(func(f *flit.Flit) {
			if victim == nil {
				victim = f
			}
		})
	}
	if victim == nil {
		t.Fatal("no flit in flight after 200 cycles at rate 0.45")
	}
	flit.Recycle(victim) // corrupt: the network still holds this flit
	net.Step()
	err := c.Err()
	if err == nil {
		t.Fatal("checker accepted an in-flight flit that was recycled under it")
	}
	if !strings.Contains(err.Error(), "arena lifecycle") {
		t.Fatalf("expected an arena lifecycle violation, got: %v", err)
	}
}

// TestAttachRequiresCycleZero: the shadow ledgers assume observation
// from the first cycle, so late attachment must be refused loudly.
func TestAttachRequiresCycleZero(t *testing.T) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 1})
	net.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("attach after the first cycle did not panic")
		}
	}()
	check.Attach(net)
}
