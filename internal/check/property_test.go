package check_test

import (
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// runSummary condenses every aggregate statistic the experiment
// harnesses read into one comparable value.
type runSummary struct {
	created, delivered uint64
	injected           uint64
	deflections        uint64
	dropped            uint64
	energy             float64
	netLat, totalLat   float64
	mode               network.ModeStats
}

func summarize(net *network.Network) runSummary {
	var injected uint64
	for n := 0; n < net.Nodes(); n++ {
		injected += net.NI(topology.NodeID(n)).InjectedFlits()
	}
	return runSummary{
		created:     net.CreatedPackets(),
		delivered:   net.DeliveredPackets(),
		injected:    injected,
		deflections: net.TotalDeflections(),
		dropped:     net.TotalDropped(),
		energy:      net.TotalEnergy().Total(),
		netLat:      net.MeanNetLatency(),
		totalLat:    net.MeanTotalLatency(),
		mode:        net.ModeStats(),
	}
}

// TestSeedDeterminism: two fresh networks with the same Config.Seed
// must produce identical statistics after N cycles, for every kind —
// the regression guard behind the parallel runner's bit-for-bit
// reproducibility and every recorded result in EXPERIMENTS.md.
func TestSeedDeterminism(t *testing.T) {
	const cycles = 3000
	run := func(k network.Kind, seed int64) runSummary {
		net := network.New(network.Config{Kind: k, Seed: seed, MeterEnergy: true})
		gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.35}, net.RandStream)
		net.AddTicker(gen)
		net.Run(cycles)
		return summarize(net)
	}
	for k := network.Kind(0); k < network.NumKinds; k++ {
		a, b := run(k, 12), run(k, 12)
		if a != b {
			t.Errorf("%v: same seed diverged:\n  %+v\n  %+v", k, a, b)
		}
		if c := run(k, 13); a == c {
			t.Errorf("%v: different seeds produced identical statistics", k)
		}
	}
}

// TestMeshSizeLatencyMonotonic is a metamorphic property needing no
// golden numbers: at a fixed low offered load, mean network latency must
// strictly increase with mesh size, because the mean hop count does.
func TestMeshSizeLatencyMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	for _, kind := range []network.Kind{network.Backpressured, network.Bless, network.AFC} {
		prev := 0.0
		for _, dim := range []int{3, 5, 7} {
			sys := config.DefaultWithMesh(topology.NewMesh(dim, dim))
			net := network.New(network.Config{System: sys, Kind: kind, Seed: 3})
			gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.08}, net.RandStream)
			net.AddTicker(gen)
			net.Run(1000)
			net.ResetStats()
			net.Run(4000)
			lat := net.MeanNetLatency()
			if lat <= prev {
				t.Errorf("%v: latency %.2f on %dx%d not above %.2f on the smaller mesh",
					kind, lat, dim, dim, prev)
			}
			prev = lat
		}
	}
}
