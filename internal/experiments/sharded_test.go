package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// shardedCell runs one open-loop (kind, seed, rate) cell on an 8x8 mesh
// with the given shard count (0 = the serial reference path), reusing
// the activeSetSnap capture so DeepEqual proves bit-for-bit equality of
// everything a cell measures. The mesh is 8x8 rather than the paper's
// 3x3 so shard count 8 is genuinely eight bands, not a clamp.
func shardedCell(kind network.Kind, seed int64, rate float64, shards int, opt Options) activeSetSnap {
	net := opt.newNetwork(network.Config{
		Kind: kind, Seed: seed, MeterEnergy: true, Shards: shards,
		System: config.DefaultWithMesh(topology.NewMesh(8, 8)),
	})
	defer net.Close()
	gen := traffic.NewGenerator(net, traffic.Config{Rate: rate}, net.RandStream)
	net.AddTicker(gen)
	net.Run(opt.OpenLoopWarmup)
	net.ResetStats()
	net.Run(opt.OpenLoopMeasure)
	gen.Stop()
	drained := net.RunUntil(net.Drained, 200_000)
	s := activeSetSnap{
		Now:        net.Now(),
		Drained:    drained,
		Counters:   net.Counters(),
		Created:    net.CreatedPackets(),
		Delivered:  net.DeliveredPackets(),
		Offered:    gen.OfferedFlits(),
		Latency:    net.MeanTotalLatency(),
		NetLatency: net.MeanNetLatency(),
		Throughput: net.ThroughputFlits(),
		Energy:     net.TotalEnergy(),
	}
	for n := 0; n < net.Nodes(); n++ {
		s.QueueLens = append(s.QueueLens, net.NI(topology.NodeID(n)).MeanQueueLen())
	}
	return s
}

// TestShardedEqualsSerial is the gate on the sharded tick: every network
// kind, four seeds, three load levels, at shard counts 2, 3 and 8, with
// the invariant checker attached, must produce measurements DeepEqual to
// the serial kernel's. Shard count 3 leaves uneven bands (8 rows over 3
// shards), 8 is one row per band — every boundary pipe staged; the
// post-measurement drain phase additionally exercises whole-kernel
// coasting composed with the barrier. make race-equality runs this under
// the race detector, where any unsynchronized cross-shard access in the
// two-phase barrier is a hard failure.
func TestShardedEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kind x seed x rate at four shard counts")
	}
	seeds := []int64{1, 2, 3, 5}
	rates := []float64{0.05, 0.30, 0.55}
	type cellKey struct {
		kind network.Kind
		seed int64
		rate float64
	}
	var cells []cellKey
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range seeds {
			for _, rate := range rates {
				cells = append(cells, cellKey{k, seed, rate})
			}
		}
	}
	run := func(shards int) []activeSetSnap {
		opt := Options{
			OpenLoopWarmup:  500,
			OpenLoopMeasure: 1500,
			Parallelism:     4,
			Check:           true,
		}
		outs, err := runner.Map(len(cells), opt.pool(), func(i int) (activeSetSnap, error) {
			c := cells[i]
			return shardedCell(c.kind, c.seed, c.rate, shards, opt), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	serial := run(0)
	for _, shards := range []int{2, 3, 8} {
		sharded := run(shards)
		for i, c := range cells {
			if !reflect.DeepEqual(serial[i], sharded[i]) {
				t.Errorf("%v seed %d rate %.2f: %d-shard tick diverged from serial:\nserial:  %+v\nsharded: %+v",
					c.kind, c.seed, c.rate, shards, serial[i], sharded[i])
			}
		}
	}
}

// TestShardCountInvarianceFig2a is the metamorphic gate on the paper's
// headline figure: the Fig2a closed-loop measurement (low-load workload,
// all Figure 2 kinds, CMP substrate in the loop) must be invariant under
// the shard count. This walks the sharded barrier through the full stack
// — delivery handlers firing inside the parallel phase, bank jobs and
// counters staged per shard, the drop variant's ACK/NACK journals — and
// demands the aggregated Measurements come out DeepEqual.
func TestShardCountInvarianceFig2a(t *testing.T) {
	if testing.Short() {
		t.Skip("three closed-loop Fig2a runs")
	}
	benches := cmp.LowLoad()[:1]
	run := func(shards int) []Measurement {
		opt := Quick()
		opt.Parallelism = 4
		opt.Check = true
		opt.Shards = shards
		ms, err := ClosedLoop(benches, Fig2Kinds, opt)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	serial := run(0)
	for _, shards := range []int{2, 3} {
		sharded := run(shards)
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("Fig2a measurements changed under %d shards:\nserial:  %+v\nsharded: %+v",
				shards, serial, sharded)
		}
	}
}
