package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// SweepPoint is one (kind, offered-rate) cell of the open-loop
// latency-throughput sweep ("Other results" in Section V-A: all kinds
// match at low load; AFC and backpressured reach near-identical
// saturation throughput; backpressureless saturates earlier; the drop
// variant earlier still).
type SweepPoint struct {
	Kind       network.Kind
	Offered    float64 // flits/node/cycle
	Throughput float64 // delivered flits/node/cycle
	Latency    float64 // mean total latency (queueing included), cycles
	Saturated  bool
}

// saturationLatency marks a sweep point saturated: total latency beyond
// this bound means source queues are growing without bound. A point is
// also saturated when deliveries fall visibly behind creations within the
// window (backlog growth), which detects saturation robustly even in
// short windows.
const saturationLatency = 400

// LatencySweep runs open-loop uniform-random traffic at each offered rate
// for each kind.
func LatencySweep(kinds []network.Kind, rates []float64, opt Options) []SweepPoint {
	return LatencySweepPattern(kinds, rates, func(m topology.Mesh) traffic.Pattern {
		return traffic.Uniform{Mesh: m}
	}, opt)
}

// LatencySweepPattern is LatencySweep with a custom destination pattern
// (cmd/sweep exposes transpose, bit-complement, hotspot and neighbor
// patterns).
func LatencySweepPattern(kinds []network.Kind, rates []float64,
	mkPattern func(topology.Mesh) traffic.Pattern, opt Options) []SweepPoint {
	type sweepOut struct {
		lat, thr float64
		sat      bool
	}
	ns := len(opt.Seeds)
	nr := len(rates)
	ro := opt.pool()
	ws := opt.workerStates(ro.Workers(len(kinds) * nr * ns))
	outs, err := runner.MapWorkers(len(kinds)*nr*ns, ro, func(worker, i int) (sweepOut, error) {
		k := kinds[i/(nr*ns)]
		rate := rates[i/ns%nr]
		seed := opt.Seeds[i%ns]
		e := ws[worker].acquire(network.Config{Kind: k, Seed: seed, MeterEnergy: false})
		net := e.net
		tcfg := traffic.Config{
			Pattern: mkPattern(net.Mesh()),
			Rate:    rate,
		}
		if e.gen == nil {
			e.gen = traffic.NewGenerator(net, tcfg, net.RandStream)
		} else {
			e.gen.Reattach(tcfg)
		}
		net.AddTicker(e.gen)
		net.Run(opt.OpenLoopWarmup)
		net.ResetStats()
		net.Run(opt.OpenLoopMeasure)
		o := sweepOut{lat: net.MeanTotalLatency(), thr: net.ThroughputFlits()}
		if o.lat > saturationLatency {
			o.sat = true
		}
		if c := net.CreatedPackets(); c > 100 &&
			float64(net.DeliveredPackets()) < 0.85*float64(c) {
			o.sat = true
		}
		return o, nil
	})
	if err != nil {
		// Cells cannot fail; only a recovered panic reaches here, which the
		// serial loop would have propagated as a panic too.
		panic(err)
	}
	var out []SweepPoint
	for ki, k := range kinds {
		for ri, rate := range rates {
			var lat, thr stats.Running
			sat := false
			for si := 0; si < ns; si++ {
				o := outs[(ki*nr+ri)*ns+si]
				lat.Add(o.lat)
				thr.Add(o.thr)
				sat = sat || o.sat
			}
			out = append(out, SweepPoint{
				Kind:       k,
				Offered:    rate,
				Throughput: thr.Mean(),
				Latency:    lat.Mean(),
				Saturated:  sat,
			})
		}
	}
	return out
}

// SaturationThroughput returns, per kind, the highest offered rate in pts
// that is not saturated (the paper's saturation-throughput comparison).
func SaturationThroughput(pts []SweepPoint) map[network.Kind]float64 {
	out := map[network.Kind]float64{}
	for _, p := range pts {
		if !p.Saturated && p.Offered > out[p.Kind] {
			out[p.Kind] = p.Offered
		}
	}
	return out
}

// WriteSweep renders the latency-throughput sweep.
func WriteSweep(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "Open-loop uniform-random latency/throughput sweep (3x3 mesh)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\toffered\tthroughput\tlatency\tsaturated")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.1f\t%v\n",
			p.Kind, p.Offered, p.Throughput, p.Latency, p.Saturated)
	}
	tw.Flush()
	sat := SaturationThroughput(pts)
	fmt.Fprintln(w, "saturation throughput (highest unsaturated offered load):")
	for _, k := range []network.Kind{network.Backpressured, network.Bless, network.BlessDrop, network.AFC} {
		if v, ok := sat[k]; ok {
			fmt.Fprintf(w, "  %-28s %.3f flits/node/cycle\n", k, v)
		}
	}
	fmt.Fprintln(w)
}

// QuadrantResult is the Section V-B spatial-variation experiment for one
// kind: an 8x8 mesh where one quadrant injects at a high rate and the
// other three at a low rate, with quadrant-local destinations.
type QuadrantResult struct {
	Kind            network.Kind
	Energy          float64 // total network energy over the window
	HotLatency      float64 // mean net latency of packets delivered in the hot quadrant
	ColdLatency     float64 // same for the three cold quadrants
	BufferedFrac    float64 // AFC only: buffered duty cycle
	GossipSwitches  uint64
	EscapeEvents    uint64
	DeliveredHot    uint64
	DeliveredCold   uint64
	ThroughputFlits float64
}

// Quadrant runs the consolidation experiment: hotRate in quadrant 0,
// coldRate elsewhere (the paper uses 0.9 and 0.1 flits/node/cycle).
func Quadrant(kinds []network.Kind, hotRate, coldRate float64, opt Options) []QuadrantResult {
	mesh := topology.NewMesh(8, 8)
	sys := config.DefaultWithMesh(mesh)
	type quadOut struct {
		energy, thr, hotLat, coldLat, bufFrac float64
		hotOK, coldOK                         bool
		gossip, escape, delHot, delCold       uint64
	}
	ns := len(opt.Seeds)
	ro := opt.pool()
	ws := opt.workerStates(ro.Workers(len(kinds) * ns))
	outs, err := runner.MapWorkers(len(kinds)*ns, ro, func(worker, i int) (quadOut, error) {
		k := kinds[i/ns]
		seed := opt.Seeds[i%ns]
		w := ws[worker]
		e := w.acquire(network.Config{System: sys, Kind: k, Seed: seed, MeterEnergy: true})
		net := e.net
		if len(w.rates) != net.Nodes() {
			w.rates = make([]float64, net.Nodes())
		}
		rates := w.rates
		for n := range rates {
			if traffic.QuadrantIndex(mesh, topology.NodeID(n)) == 0 {
				rates[n] = hotRate
			} else {
				rates[n] = coldRate
			}
		}
		tcfg := traffic.Config{
			Pattern:   traffic.Quadrant{Mesh: mesh},
			NodeRates: rates,
		}
		if e.gen == nil {
			e.gen = traffic.NewGenerator(net, tcfg, net.RandStream)
		} else {
			e.gen.Reattach(tcfg)
		}
		net.AddTicker(e.gen)
		net.Run(opt.OpenLoopWarmup)
		net.ResetStats()
		net.Run(opt.OpenLoopMeasure)

		var o quadOut
		o.energy = net.TotalEnergy().Total()
		o.thr = net.ThroughputFlits()
		var hSum, cSum float64
		var hN, cN uint64
		for n := 0; n < net.Nodes(); n++ {
			h := net.NI(topology.NodeID(n)).NetLatency()
			if traffic.QuadrantIndex(mesh, topology.NodeID(n)) == 0 {
				hSum += h.Mean() * float64(h.Count())
				hN += h.Count()
			} else {
				cSum += h.Mean() * float64(h.Count())
				cN += h.Count()
			}
		}
		if hN > 0 {
			o.hotLat, o.hotOK = hSum/float64(hN), true
		}
		if cN > 0 {
			o.coldLat, o.coldOK = cSum/float64(cN), true
		}
		ms := net.ModeStats()
		o.bufFrac = ms.BufferedFraction()
		o.gossip, o.escape = ms.GossipSwitches, ms.EscapeEvents
		o.delHot, o.delCold = hN, cN
		return o, nil
	})
	if err != nil {
		panic(err) // cells cannot fail; a recovered panic propagates as before
	}
	var out []QuadrantResult
	for ki, k := range kinds {
		var energy, hotLat, coldLat, thr, bufFrac stats.Running
		var gossip, escape, delHot, delCold uint64
		for si := 0; si < ns; si++ {
			o := outs[ki*ns+si]
			energy.Add(o.energy)
			thr.Add(o.thr)
			if o.hotOK {
				hotLat.Add(o.hotLat)
			}
			if o.coldOK {
				coldLat.Add(o.coldLat)
			}
			bufFrac.Add(o.bufFrac)
			gossip += o.gossip
			escape += o.escape
			delHot += o.delHot
			delCold += o.delCold
		}
		out = append(out, QuadrantResult{
			Kind:            k,
			Energy:          energy.Mean(),
			HotLatency:      hotLat.Mean(),
			ColdLatency:     coldLat.Mean(),
			BufferedFrac:    bufFrac.Mean(),
			GossipSwitches:  gossip,
			EscapeEvents:    escape,
			DeliveredHot:    delHot,
			DeliveredCold:   delCold,
			ThroughputFlits: thr.Mean(),
		})
	}
	return out
}

// WriteQuadrant renders the consolidation experiment, normalizing energy
// to AFC (the paper reports backpressured and backpressureless as +9% and
// +30% energy over AFC).
func WriteQuadrant(w io.Writer, rs []QuadrantResult) {
	fmt.Fprintln(w, "Section V-B: 8x8 consolidation, hot quadrant @0.9 + three cold @0.1 flits/node/cycle")
	var afcEnergy float64
	for _, r := range rs {
		if r.Kind == network.AFC {
			afcEnergy = r.Energy
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tenergy/AFC\thot lat\tcold lat\tbuffered%\tgossip\tescape")
	for _, r := range rs {
		norm := 0.0
		if afcEnergy > 0 {
			norm = r.Energy / afcEnergy
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.1f\t%.1f%%\t%d\t%d\n",
			r.Kind, norm, r.HotLatency, r.ColdLatency,
			100*r.BufferedFrac, r.GossipSwitches, r.EscapeEvents)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// GossipResult reports the open-loop hotspot experiment that exercises
// the gossip-induced mode switch (Section V-A: the paper saw them only in
// an open-loop hotspot experiment; they are a correctness safeguard).
type GossipResult struct {
	GossipSwitches  uint64
	ForwardSwitches uint64
	EscapeEvents    uint64
	Delivered       uint64
	Created         uint64
	Drained         bool
}

// GossipHotspot drives an AFC network with hotspot traffic tuned so that
// the hotspot's neighborhood switches to backpressured mode while outer
// routers stay backpressureless, then lets it drain and checks no flit
// was lost.
func GossipHotspot(seed int64, opt Options) GossipResult {
	net := opt.newNetwork(network.Config{Kind: network.AFC, Seed: seed, MeterEnergy: false})
	mesh := net.Mesh()
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Hotspot{Mesh: mesh, Hot: mesh.Node(1, 1), Frac: 0.7},
		Rate:    0.45,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(opt.OpenLoopMeasure)
	gen.Stop()
	drained := net.RunUntil(net.Drained, 200_000)
	ms := net.ModeStats()
	return GossipResult{
		GossipSwitches:  ms.GossipSwitches,
		ForwardSwitches: ms.ForwardSwitches,
		EscapeEvents:    ms.EscapeEvents,
		Delivered:       net.DeliveredPackets(),
		Created:         net.CreatedPackets(),
		Drained:         drained,
	}
}

// WriteGossip renders the gossip experiment.
func WriteGossip(w io.Writer, r GossipResult) {
	fmt.Fprintln(w, "Gossip-induced mode switching under an open-loop hotspot (AFC network)")
	fmt.Fprintf(w, "  forward switches: %d (gossip-induced: %d), escape events: %d\n",
		r.ForwardSwitches, r.GossipSwitches, r.EscapeEvents)
	fmt.Fprintf(w, "  packets delivered: %d of %d created (drained: %v)\n\n", r.Delivered, r.Created, r.Drained)
}
