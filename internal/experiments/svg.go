package experiments

import (
	"os"
	"path/filepath"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
	"afcnet/internal/viz"
)

// Fig2SVG renders a Figure 2 style grouped bar chart from closed-loop
// measurements. metric selects performance or energy.
func Fig2SVG(title, ylabel string, ms []Measurement, energy bool) string {
	var groups []string
	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.Bench] {
			seen[m.Bench] = true
			groups = append(groups, m.Bench)
		}
	}
	gi := map[string]int{}
	for i, g := range groups {
		gi[g] = i
	}
	var kinds []network.Kind
	seenK := map[network.Kind]bool{}
	for _, m := range ms {
		if !seenK[m.Kind] {
			seenK[m.Kind] = true
			kinds = append(kinds, m.Kind)
		}
	}
	var series []viz.BarSeries
	for _, k := range kinds {
		s := viz.BarSeries{
			Name: k.String(),
			Val:  make([]float64, len(groups)),
			Err:  make([]float64, len(groups)),
		}
		for _, m := range ms {
			if m.Kind != k {
				continue
			}
			if energy {
				s.Val[gi[m.Bench]] = m.Energy
				s.Err[gi[m.Bench]] = m.EnergyStd
			} else {
				s.Val[gi[m.Bench]] = m.Perf
				s.Err[gi[m.Bench]] = m.PerfStd
			}
		}
		series = append(series, s)
	}
	return viz.BarChart{
		Title:   title,
		YLabel:  ylabel,
		Groups:  groups,
		Series:  series,
		RefLine: 1,
	}.SVG()
}

// Fig3SVG renders a Figure 3 style stacked energy breakdown: one stacked
// bar per (bench, kind) pair.
func Fig3SVG(title string, ms []Measurement) string {
	var groups []string
	buffer := viz.StackSeries{Name: "buffer"}
	link := viz.StackSeries{Name: "link"}
	rest := viz.StackSeries{Name: "rest of router"}
	for _, m := range ms {
		groups = append(groups, m.Bench+"/"+shortKind(m.Kind))
		buffer.Val = append(buffer.Val, m.BufferE)
		link.Val = append(link.Val, m.LinkE)
		rest.Val = append(rest.Val, m.RestE)
	}
	return viz.StackedBarChart{
		Title:  title,
		YLabel: "energy (normalized to backpressured)",
		Groups: groups,
		Stacks: []viz.StackSeries{buffer, link, rest},
	}.SVG()
}

func shortKind(k network.Kind) string {
	switch k {
	case network.Backpressured:
		return "bp"
	case network.BackpressuredIdealBypass:
		return "bypass"
	case network.Bless:
		return "bless"
	case network.BlessDrop:
		return "drop"
	case network.AFC:
		return "afc"
	case network.AFCAlwaysBuffered:
		return "afc-abp"
	}
	return k.String()
}

// SweepSVG renders the open-loop latency curves.
func SweepSVG(pts []SweepPoint) string {
	byKind := map[network.Kind]*viz.LineSeries{}
	var order []network.Kind
	for _, p := range pts {
		s, ok := byKind[p.Kind]
		if !ok {
			s = &viz.LineSeries{Name: p.Kind.String()}
			byKind[p.Kind] = s
			order = append(order, p.Kind)
		}
		s.X = append(s.X, p.Offered)
		s.Y = append(s.Y, p.Latency)
	}
	var series []viz.LineSeries
	for _, k := range order {
		series = append(series, *byKind[k])
	}
	return viz.LineChart{
		Title:  "Open-loop latency vs. offered load (uniform random, 3x3)",
		XLabel: "offered load (flits/node/cycle)",
		YLabel: "mean total latency (cycles)",
		YCap:   250,
		Series: series,
	}.SVG()
}

// WriteSVGs renders the main figure set into dir (created if needed):
// fig2a/b/c/d, fig3a/b and the sweep. It reuses measurements so each
// closed-loop configuration runs once.
func WriteSVGs(dir string, opt Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lows, err := ClosedLoop(cmp.LowLoad(), Fig2EnergyKinds, opt)
	if err != nil {
		return err
	}
	highs, err := ClosedLoop(cmp.HighLoad(), Fig2Kinds, opt)
	if err != nil {
		return err
	}
	rates := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65}
	pts := LatencySweep([]network.Kind{
		network.Backpressured, network.Bless, network.BlessDrop, network.AFC,
	}, rates, opt)

	files := map[string]string{
		"fig2a.svg": Fig2SVG("Figure 2(a): performance, low load", "performance (normalized)", lows, false),
		"fig2b.svg": Fig2SVG("Figure 2(b): network energy, low load", "energy (normalized)", lows, true),
		"fig2c.svg": Fig2SVG("Figure 2(c): performance, high load", "performance (normalized)", highs, false),
		"fig2d.svg": Fig2SVG("Figure 2(d): network energy, high load", "energy (normalized)", highs, true),
		"fig3a.svg": Fig3SVG("Figure 3(a): energy breakdown, low load", lows),
		"fig3b.svg": Fig3SVG("Figure 3(b): energy breakdown, high load", highs),
		"sweep.svg": SweepSVG(pts),
	}
	for name, svg := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}
