package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

// checkedResults bundles the output of every harness loop so one
// DeepEqual covers the serial-vs-parallel comparison.
type checkedResults struct {
	closed []Measurement
	table3 []Table3Row
	sweep  []SweepPoint
	quad   []QuadrantResult
	gossip GossipResult
	lazy   []LazyVCARow
	thresh []ThresholdRow
	eject  []EjectRow
	sizing []BaselineConfigRow
	pipe   []PipelineRow
	metric []ContentionMetricRow
}

// runAllChecked runs a reduced pass of every experiment harness with
// Options.Check enabled. Any invariant violation panics inside its cell
// and surfaces here as an error.
func runAllChecked(t *testing.T, parallelism int) checkedResults {
	t.Helper()
	opt := Options{
		Seeds:           []int64{1},
		WarmupTx:        100,
		MeasureTx:       300,
		CycleLimit:      4_000_000,
		OpenLoopWarmup:  300,
		OpenLoopMeasure: 900,
		Parallelism:     parallelism,
		Check:           true,
	}
	var r checkedResults
	var err error
	low, _ := cmp.ByName("water")
	r.closed, err = ClosedLoop([]cmp.Params{low},
		[]network.Kind{network.BackpressuredIdealBypass, network.Bless, network.BlessDrop, network.AFCAlwaysBuffered, network.AFC}, opt)
	if err != nil {
		t.Fatalf("ClosedLoop: %v", err)
	}
	r.table3, err = Table3(opt)
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	r.sweep = LatencySweep(
		[]network.Kind{network.Backpressured, network.Bless, network.BlessDrop, network.AFC},
		[]float64{0.1, 0.3}, opt)
	r.quad = Quadrant([]network.Kind{network.Backpressured, network.Bless, network.AFC}, 0.9, 0.1, opt)
	r.gossip = GossipHotspot(1, opt)
	r.lazy, err = AblationLazyVCA(opt)
	if err != nil {
		t.Fatalf("AblationLazyVCA: %v", err)
	}
	r.thresh, err = AblationThresholds([]float64{1.0}, opt)
	if err != nil {
		t.Fatalf("AblationThresholds: %v", err)
	}
	r.eject, err = AblationEjectWidth([]int{2}, opt)
	if err != nil {
		t.Fatalf("AblationEjectWidth: %v", err)
	}
	r.sizing, err = AblationBaselineSizing(opt)
	if err != nil {
		t.Fatalf("AblationBaselineSizing: %v", err)
	}
	r.pipe, err = AblationPipeline(opt)
	if err != nil {
		t.Fatalf("AblationPipeline: %v", err)
	}
	r.metric = AblationContentionMetric(opt)
	return r
}

// TestAllHarnessesChecked runs every experiment harness with the
// invariant checker attached — serial and on eight workers — and
// requires zero violations plus bit-for-bit identical results across
// the two parallelism levels.
func TestAllHarnessesChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("checked full-harness smoke is a long test")
	}
	serial := runAllChecked(t, 1)
	parallel := runAllChecked(t, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("checked serial and parallel harness results diverged")
	}
}
