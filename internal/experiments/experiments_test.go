package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

// shapeOpt is even quicker than Quick(): these tests assert paper shapes,
// not precise values, so short windows suffice.
func shapeOpt() Options {
	o := Quick()
	o.WarmupTx = 500
	o.MeasureTx = 1500
	o.OpenLoopWarmup = 2000
	o.OpenLoopMeasure = 6000
	return o
}

func byKind(ms []Measurement, bench string) map[network.Kind]Measurement {
	out := map[network.Kind]Measurement{}
	for _, m := range ms {
		if m.Bench == bench {
			out[m.Kind] = m
		}
	}
	return out
}

// TestLowLoadShape pins Figure 2(a)/(b)'s qualitative claims on water:
// performance indifferent to flow control; backpressureless cheapest;
// ideal-bypass between backpressureless and backpressured; AFC close to
// backpressureless.
func TestLowLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop runs are slow")
	}
	low, _ := cmp.ByName("water")
	ms, err := ClosedLoop([]cmp.Params{low}, Fig2EnergyKinds, shapeOpt())
	if err != nil {
		t.Fatal(err)
	}
	m := byKind(ms, "water")

	for k, v := range m {
		if v.Perf < 0.9 || v.Perf > 1.1 {
			t.Errorf("%s: low-load perf %0.3f deviates from baseline", k, v.Perf)
		}
	}
	bless := m[network.Bless].Energy
	afc := m[network.AFC].Energy
	bypass := m[network.BackpressuredIdealBypass].Energy
	if !(bless < afc && afc < bypass && bypass < 1.0) {
		t.Errorf("low-load energy ordering broken: bless=%.3f afc=%.3f bypass=%.3f bp=1",
			bless, afc, afc)
	}
	if afc > bless*1.2 {
		t.Errorf("AFC %0.3f should be within ~10-20%% of backpressureless %0.3f", afc, bless)
	}
	if m[network.AFC].BufferedFraction > 0.1 {
		t.Errorf("AFC spent %.1f%% buffered at low load", 100*m[network.AFC].BufferedFraction)
	}
}

// TestHighLoadShape pins Figure 2(c)/(d) on apache: backpressureless
// degrades significantly; AFC tracks backpressured in both performance
// and energy; backpressureless costs the most energy.
func TestHighLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop runs are slow")
	}
	high, _ := cmp.ByName("apache")
	ms, err := ClosedLoop([]cmp.Params{high}, Fig2Kinds, shapeOpt())
	if err != nil {
		t.Fatal(err)
	}
	m := byKind(ms, "apache")

	if b := m[network.Bless]; b.Perf > 0.9 {
		t.Errorf("backpressureless perf %0.3f; expected significant degradation", b.Perf)
	}
	if a := m[network.AFC]; a.Perf < 0.93 {
		t.Errorf("AFC perf %0.3f; should track backpressured within a few %%", a.Perf)
	}
	if a := m[network.AFC]; a.Energy > 1.10 {
		t.Errorf("AFC energy %0.3f; paper reports within 2-3%% of backpressured", a.Energy)
	}
	if b := m[network.Bless]; b.Energy < 1.2 {
		t.Errorf("backpressureless energy %0.3f; expected substantial penalty", b.Energy)
	}
	if frac := m[network.AFC].BufferedFraction; frac < 0.7 {
		t.Errorf("AFC spent only %.1f%% buffered at high load", 100*frac)
	}
	if esc := m[network.AFC].EscapeEvents; esc != 0 {
		t.Errorf("escape events in closed loop: %g", esc)
	}
}

// TestSweepShape pins the saturation ordering: drop < bless <=
// backpressured ~= AFC.
func TestSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop sweeps are slow")
	}
	opt := shapeOpt()
	rates := []float64{0.2, 0.35, 0.5, 0.65}
	pts := LatencySweep([]network.Kind{
		network.Backpressured, network.Bless, network.BlessDrop, network.AFC,
	}, rates, opt)
	sat := SaturationThroughput(pts)
	if sat[network.BlessDrop] >= sat[network.Bless] {
		t.Errorf("drop variant saturation %.2f should be below deflection %.2f",
			sat[network.BlessDrop], sat[network.Bless])
	}
	if sat[network.AFC] < sat[network.Bless] {
		t.Errorf("AFC saturation %.2f below backpressureless %.2f",
			sat[network.AFC], sat[network.Bless])
	}
	if sat[network.Backpressured] < sat[network.Bless] {
		t.Errorf("backpressured saturation %.2f below backpressureless %.2f",
			sat[network.Backpressured], sat[network.Bless])
	}
}

// TestQuadrantShape pins Section V-B: AFC uses the least energy under
// spatial load variation and runs roughly one quadrant backpressured.
func TestQuadrantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 runs are slow")
	}
	rs := Quadrant([]network.Kind{network.Backpressured, network.Bless, network.AFC},
		0.9, 0.1, shapeOpt())
	var bp, bless, afc QuadrantResult
	for _, r := range rs {
		switch r.Kind {
		case network.Backpressured:
			bp = r
		case network.Bless:
			bless = r
		case network.AFC:
			afc = r
		}
	}
	if !(afc.Energy < bp.Energy && afc.Energy < bless.Energy) {
		t.Errorf("AFC not the best energy: afc=%.0f bp=%.0f bless=%.0f",
			afc.Energy, bp.Energy, bless.Energy)
	}
	if afc.BufferedFrac < 0.10 || afc.BufferedFrac > 0.45 {
		t.Errorf("AFC buffered fraction %.2f; expected ~0.25 (the hot quadrant)", afc.BufferedFrac)
	}
	if bless.ColdLatency < bp.ColdLatency {
		t.Errorf("expected misrouting pollution: bless cold latency %.1f < backpressured %.1f",
			bless.ColdLatency, bp.ColdLatency)
	}
}

// TestGossipHotspotShape pins the gossip demonstration: gossip switches
// occur, nothing is lost, the network drains.
func TestGossipHotspotShape(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop run is slow")
	}
	r := GossipHotspot(3, shapeOpt())
	if r.GossipSwitches == 0 {
		t.Error("hotspot produced no gossip-induced switches")
	}
	if !r.Drained || r.Delivered != r.Created {
		t.Errorf("hotspot lost traffic: %+v", r)
	}
}

// TestWriters exercises the table renderers (format smoke test).
func TestWriters(t *testing.T) {
	ms := []Measurement{{
		Bench: "x", Kind: network.AFC, Perf: 1, Energy: 0.8,
		BufferE: 0.1, LinkE: 0.2, RestE: 0.5, BufferedFraction: 0.5,
	}}
	var buf bytes.Buffer
	WriteFig2(&buf, "t", ms)
	WriteFig3(&buf, "t", ms)
	WriteDuty(&buf, ms)
	WriteTable3(&buf, []Table3Row{{Bench: "x", Paper: 0.1, Measured: 0.11}})
	WriteSweep(&buf, []SweepPoint{{Kind: network.AFC, Offered: 0.1, Throughput: 0.1, Latency: 15}})
	WriteQuadrant(&buf, []QuadrantResult{{Kind: network.AFC, Energy: 1}})
	WriteGossip(&buf, GossipResult{})
	WriteLazyVCA(&buf, []LazyVCARow{{Bench: "x"}})
	WriteThresholds(&buf, []ThresholdRow{{Scale: 1}})
	WriteEjectWidth(&buf, []EjectRow{{Width: 1}})
	out := buf.String()
	for _, want := range []string{"afc", "buffer", "gossip", "saturation"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q", want)
		}
	}
}

// TestGeoMeans checks the aggregation arithmetic.
func TestGeoMeans(t *testing.T) {
	ms := []Measurement{
		{Bench: "a", Kind: network.AFC, Perf: 0.5, Energy: 2},
		{Bench: "b", Kind: network.AFC, Perf: 2, Energy: 0.5},
	}
	g := GeoMeans(ms)
	if len(g) != 1 || g[0].Bench != "geomean" {
		t.Fatalf("geomeans = %+v", g)
	}
	if g[0].Perf != 1 || g[0].Energy != 1 {
		t.Errorf("geomean perf=%g energy=%g, want 1,1", g[0].Perf, g[0].Energy)
	}
}

// TestWriteSVGs renders the full SVG figure set into a temp dir (format
// smoke test over real, quick measurements).
func TestWriteSVGs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	opt := shapeOpt()
	if err := WriteSVGs(dir, opt); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2a.svg", "fig2b.svg", "fig2c.svg", "fig2d.svg", "fig3a.svg", "fig3b.svg", "sweep.svg"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := string(b)
		if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(s, "</svg>") {
			t.Errorf("%s is not an SVG document", name)
		}
	}
}

// TestJSONRoundTrip: the exported results bundle is valid JSON with
// self-describing kind names and survives a decode.
func TestJSONRoundTrip(t *testing.T) {
	r := Results{
		LowLoad:  []Measurement{{Bench: "water", Kind: network.AFC, Perf: 1, Energy: 0.78}},
		Table3:   []Table3Row{{Bench: "water", Paper: 0.09, Measured: 0.094}},
		Sweep:    []SweepPoint{{Kind: network.Bless, Offered: 0.3, Latency: 20}},
		Quadrant: []QuadrantResult{{Kind: network.Backpressured, Energy: 5}},
		Gossip:   GossipResult{GossipSwitches: 3, Drained: true},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"afc"`) {
		t.Error("kind not serialized by name")
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.LowLoad[0].Kind != network.AFC || back.Sweep[0].Kind != network.Bless {
		t.Errorf("kinds did not round-trip: %+v", back.LowLoad[0])
	}
}

// TestContentionMetricShape pins ablation A7's claim: the paper's metric
// localizes switches to the hot region better than the rejected
// cumulative-misroute metric.
func TestContentionMetricShape(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 runs are slow")
	}
	rows := AblationContentionMetric(shapeOpt())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	paper, rejected := rows[0], rows[1]
	if paper.Switches == 0 || rejected.Switches == 0 {
		t.Fatalf("policies did not switch: %+v", rows)
	}
	if paper.NearFraction <= rejected.NearFraction {
		t.Errorf("paper metric near-fraction %.2f not above rejected %.2f — localization argument not visible",
			paper.NearFraction, rejected.NearFraction)
	}
}
