// Package experiments implements the paper's evaluation: one harness per
// table/figure (see DESIGN.md's per-experiment index). cmd/figures and the
// repository's benchmarks both call into this package, so the printed
// rows and the bench-regenerated rows are the same code path.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"afcnet/internal/check"
	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/energy"
	"afcnet/internal/network"
	"afcnet/internal/obs"
	"afcnet/internal/runner"
	"afcnet/internal/stats"
	"afcnet/internal/traffic"
)

// Options controls run length and repetition.
type Options struct {
	// Seeds: one full run per seed; means and standard deviations across
	// seeds reproduce the paper's variance bars.
	Seeds []int64
	// WarmupTx / MeasureTx: closed-loop transactions before/inside the
	// measurement window.
	WarmupTx, MeasureTx uint64
	// CycleLimit aborts runaway runs.
	CycleLimit uint64
	// OpenLoopWarmup / OpenLoopMeasure: cycles for open-loop windows.
	OpenLoopWarmup, OpenLoopMeasure uint64
	// Parallelism is the worker count the harnesses fan their
	// (bench, kind, seed) cells across; <= 0 selects GOMAXPROCS.
	// Parallelism == 1 reproduces the historical serial execution exactly;
	// any value produces bit-for-bit identical results (each cell owns its
	// network and random substreams, and cells are merged in index order).
	Parallelism int
	// Check attaches an invariant checker (internal/check) to every
	// network the harnesses build. A violation panics inside the cell;
	// the worker pool surfaces it as that cell's error. The checker
	// only observes, so checked results are bit-for-bit identical to
	// unchecked ones — it just costs wall clock, hence off by default.
	Check bool
	// Obs, if non-nil, observes the run (internal/obs): per-cell
	// timings and batch progress flow to it through the runner
	// callbacks, and every network a harness builds gets a read-only
	// counter sampler when metrics are enabled. Like Check, it is
	// purely observational — results are bit-for-bit identical with or
	// without it.
	Obs *obs.Observer
	// Dense builds every network with the dense reference kernel
	// (network.Config.DenseKernel): every ticker runs every cycle instead
	// of active-set scheduling. Results are bit-for-bit identical either
	// way; the flag exists for equivalence tests and benchmark baselines.
	Dense bool
	// NoPool builds every network without the flit arena
	// (network.Config.NoPool): every packetization heap-allocates, as the
	// original reference path did. Results are bit-for-bit identical
	// either way; the flag exists for equivalence tests and allocation
	// baselines.
	NoPool bool
	// NoColumnar builds every network without the columnar flit banks
	// (network.Config.NoColumnar): routers and NIs read per-flit state
	// from the struct fields, as the original reference path did. Results
	// are bit-for-bit identical either way; the flag exists for
	// equivalence tests.
	NoColumnar bool
	// ElidePayload drops the payload column from the columnar banks
	// (network.Config.ElidePayload). Results are bit-for-bit identical
	// either way; the flag exists for the elision equivalence gate.
	ElidePayload bool
	// System overrides the machine configuration (mesh size, buffer
	// depths, …) for every network the harnesses build; the zero value
	// keeps config.Default(). A cell that sets its own System wins.
	System config.System
	// Shards builds every network with the sharded tick
	// (network.Config.Shards): each cycle's router bank splits across a
	// persistent worker group with a deterministic two-phase barrier.
	// Results match the serial kernel for any shard count; <= 1 keeps
	// the serial reference path.
	Shards int
}

// newNetwork builds one cell's network, attaching an invariant checker
// when opt.Check is set and a counter sampler when opt.Obs collects
// metrics. Each cell owns its attachments, so observed runs parallelize
// exactly like plain ones.
func (o Options) newNetwork(cfg network.Config) *network.Network {
	if cfg.System.Mesh.Width == 0 {
		cfg.System = o.System
	}
	cfg.DenseKernel = cfg.DenseKernel || o.Dense
	cfg.NoPool = cfg.NoPool || o.NoPool
	cfg.NoColumnar = cfg.NoColumnar || o.NoColumnar
	cfg.ElidePayload = cfg.ElidePayload || o.ElidePayload
	if cfg.Shards <= 1 {
		cfg.Shards = o.Shards
	}
	net := network.New(cfg)
	if o.Check {
		check.Attach(net)
	}
	o.Obs.Sample(net)
	o.Obs.ObserveBarrier(net)
	return net
}

// workerEnt is one worker's reusable simulation stack for one network
// kind: the network plus whichever traffic layer the harness attached.
// Consecutive cells of the same kind on the same worker rewind and reuse
// it instead of rebuilding, which is what makes the steady-state loop
// allocation-free across a sweep.
type workerEnt struct {
	net *network.Network
	sys *cmp.System
	gen *traffic.Generator
}

// workerState is the per-worker context of one harness batch: the
// reusable networks keyed by kind, and scratch the cells would otherwise
// reallocate. Each runner worker owns exactly one, so nothing here is
// synchronized.
type workerState struct {
	opt   Options
	ents  map[network.Kind]*workerEnt
	rates []float64 // per-node offered-rate scratch (Quadrant)
}

// workerStates returns one fresh workerState per pool worker.
func (o Options) workerStates(workers int) []*workerState {
	ws := make([]*workerState, workers)
	for i := range ws {
		ws[i] = &workerState{opt: o, ents: make(map[network.Kind]*workerEnt)}
	}
	return ws
}

// oneShot returns a workerState that will never see a second cell of the
// same kind — the harnesses that mix per-cell configurations (ablations)
// use it to share the cell code without the reuse path.
func (o Options) oneShot() *workerState {
	return &workerState{opt: o, ents: make(map[network.Kind]*workerEnt)}
}

// acquire returns a ready network for cfg: the worker's previous network
// of the same kind rewound in place when the configuration allows (same
// everything but Seed), a fresh build otherwise. Checker and sampler are
// attached in the same order as newNetwork, so the kernel's ticker list
// and the seed source's stream numbering are identical on both paths. A
// rebuilt entry has nil sys/gen — the caller's cue to construct its
// traffic layer instead of reattaching it.
func (w *workerState) acquire(cfg network.Config) *workerEnt {
	if cfg.System.Mesh.Width == 0 {
		cfg.System = w.opt.System
	}
	cfg.DenseKernel = cfg.DenseKernel || w.opt.Dense
	cfg.NoPool = cfg.NoPool || w.opt.NoPool
	cfg.NoColumnar = cfg.NoColumnar || w.opt.NoColumnar
	cfg.ElidePayload = cfg.ElidePayload || w.opt.ElidePayload
	if cfg.Shards <= 1 {
		cfg.Shards = w.opt.Shards
	}
	e := w.ents[cfg.Kind]
	if e == nil || !e.net.Reset(cfg) {
		e = &workerEnt{net: network.New(cfg)}
		w.ents[cfg.Kind] = e
	}
	if w.opt.Check {
		check.Attach(e.net)
	}
	w.opt.Obs.Sample(e.net)
	w.opt.Obs.ObserveBarrier(e.net)
	return e
}

// runCell runs one (bench, kind, seed) closed-loop measurement on this
// worker, reusing its network and CMP substrate when possible.
func (w *workerState) runCell(p cmp.Params, kind network.Kind, seed int64) (cmp.RunResult, *network.Network, error) {
	e := w.acquire(network.Config{Kind: kind, Seed: seed, MeterEnergy: true})
	if e.sys == nil {
		e.sys = cmp.NewSystem(e.net, p, e.net.RandStream)
	} else {
		e.sys.Reattach(p)
	}
	res, ok := e.sys.Measure(w.opt.WarmupTx, w.opt.MeasureTx, w.opt.CycleLimit)
	if !ok {
		return res, e.net, fmt.Errorf("experiments: %s on %s exceeded %d cycles",
			p.Name, kind, w.opt.CycleLimit)
	}
	return res, e.net, nil
}

// pool returns the runner options shared by every harness.
func (o Options) pool() runner.Options {
	ro := runner.Options{Parallelism: o.Parallelism}
	o.Obs.Hook(&ro)
	return ro
}

// Default returns the options used for the recorded results in
// EXPERIMENTS.md.
func Default() Options {
	return Options{
		Seeds:           []int64{1, 2, 3},
		WarmupTx:        2000,
		MeasureTx:       6000,
		CycleLimit:      30_000_000,
		OpenLoopWarmup:  10_000,
		OpenLoopMeasure: 30_000,
	}
}

// Quick returns reduced options for fast regression benches.
func Quick() Options {
	return Options{
		Seeds:           []int64{1},
		WarmupTx:        800,
		MeasureTx:       2500,
		CycleLimit:      10_000_000,
		OpenLoopWarmup:  4_000,
		OpenLoopMeasure: 10_000,
	}
}

// Fig2Kinds are the configurations compared in Figure 2, baseline first
// (normalization target).
var Fig2Kinds = []network.Kind{
	network.Backpressured,
	network.Bless,
	network.AFCAlwaysBuffered,
	network.AFC,
}

// Fig2EnergyKinds adds the ideal-bypass energy bound (shown only on the
// low-load energy graph in the paper).
var Fig2EnergyKinds = append([]network.Kind{network.BackpressuredIdealBypass}, Fig2Kinds...)

// Measurement is one closed-loop (bench, kind) cell aggregated over seeds.
type Measurement struct {
	Bench string
	Kind  network.Kind

	// Perf is performance normalized to the backpressured baseline
	// (transactions/cycle ratio; higher is better). Figure 2(a)/(c).
	Perf, PerfStd float64
	// Energy is network energy normalized to the baseline (lower is
	// better). Figure 2(b)/(d).
	Energy, EnergyStd float64

	// Breakdown components normalized to the baseline's total energy
	// (Figure 3): buffer, link, rest-of-router.
	BufferE, LinkE, RestE float64

	// Raw measurements (seed-averaged).
	TxPerCycle    float64
	InjectionRate float64
	NetLatency    float64

	// AFC mode statistics (zero for non-AFC kinds).
	BufferedFraction float64
	GossipSwitches   float64
	EscapeEvents     float64
}

// runCell runs one (bench, kind, seed) closed-loop measurement on a
// fresh network (the no-reuse path the ablations use).
func runCell(p cmp.Params, kind network.Kind, seed int64, opt Options) (cmp.RunResult, *network.Network, error) {
	return opt.oneShot().runCell(p, kind, seed)
}

// closedOut is the state a closed-loop cell hands back to the merge step:
// everything the aggregation reads, so the network itself need not be
// retained.
type closedOut struct {
	res    cmp.RunResult
	energy energy.Breakdown
	mode   network.ModeStats
}

func (w *workerState) runClosedCell(p cmp.Params, kind network.Kind, seed int64) (closedOut, error) {
	res, net, err := w.runCell(p, kind, seed)
	if err != nil {
		return closedOut{}, err
	}
	return closedOut{res: res, energy: net.TotalEnergy(), mode: net.ModeStats()}, nil
}

// ClosedLoop runs the Figure 2/3 measurement for the given benchmarks and
// kinds. The backpressured baseline is always run (it is the
// normalization target) even if absent from kinds. The (bench, kind,
// seed) cells execute on opt.Parallelism workers; each cell owns its
// network and random substreams, and cells are merged in the serial
// iteration order, so results are identical at any parallelism.
func ClosedLoop(benches []cmp.Params, kinds []network.Kind, opt Options) ([]Measurement, error) {
	type cellKey struct {
		bench, seed int
		kind        network.Kind
	}
	var cells []cellKey
	idx := make(map[cellKey]int)
	add := func(c cellKey) {
		idx[c] = len(cells)
		cells = append(cells, c)
	}
	for bi := range benches {
		for si := range opt.Seeds {
			// One baseline cell per (bench, seed); non-baseline kinds get
			// their own cells. A Backpressured entry in kinds reuses the
			// baseline cell (the serial loop re-ran and discarded it).
			add(cellKey{bi, si, network.Backpressured})
			for _, k := range kinds {
				if k != network.Backpressured {
					add(cellKey{bi, si, k})
				}
			}
		}
	}
	ro := opt.pool()
	ws := opt.workerStates(ro.Workers(len(cells)))
	outs, err := runner.MapWorkers(len(cells), ro, func(worker, i int) (closedOut, error) {
		c := cells[i]
		return ws[worker].runClosedCell(benches[c.bench], c.kind, opt.Seeds[c.seed])
	})
	if err != nil {
		return nil, err
	}

	var out []Measurement
	for bi, p := range benches {
		agg := make(map[network.Kind]*cellAgg, len(kinds))
		for _, k := range kinds {
			agg[k] = &cellAgg{}
		}
		for si := range opt.Seeds {
			base := outs[idx[cellKey{bi, si, network.Backpressured}]]
			baseEnergy := base.energy.Total()
			for _, k := range kinds {
				co := base
				if k != network.Backpressured {
					co = outs[idx[cellKey{bi, si, k}]]
				}
				e := co.energy
				ms := co.mode
				a := agg[k]
				a.perf.Add(co.res.TransactionsPerCycle / base.res.TransactionsPerCycle)
				a.energy.Add(e.Total() / baseEnergy)
				a.bufferE.Add(e.Buffer() / baseEnergy)
				a.linkE.Add(e.Link / baseEnergy)
				a.restE.Add(e.Rest() / baseEnergy)
				a.tx.Add(co.res.TransactionsPerCycle)
				a.inj.Add(co.res.InjectionRate)
				a.lat.Add(co.res.MeanNetLatency)
				a.bufFrac.Add(ms.BufferedFraction())
				a.gossip.Add(float64(ms.GossipSwitches))
				a.escape.Add(float64(ms.EscapeEvents))
			}
		}
		for _, k := range kinds {
			a := agg[k]
			out = append(out, Measurement{
				Bench: p.Name, Kind: k,
				Perf: a.perf.Mean(), PerfStd: a.perf.StdDev(),
				Energy: a.energy.Mean(), EnergyStd: a.energy.StdDev(),
				BufferE: a.bufferE.Mean(), LinkE: a.linkE.Mean(), RestE: a.restE.Mean(),
				TxPerCycle: a.tx.Mean(), InjectionRate: a.inj.Mean(), NetLatency: a.lat.Mean(),
				BufferedFraction: a.bufFrac.Mean(),
				GossipSwitches:   a.gossip.Mean(),
				EscapeEvents:     a.escape.Mean(),
			})
		}
	}
	return out, nil
}

type cellAgg struct {
	perf, energy, bufferE, linkE, restE   stats.Running
	tx, inj, lat, bufFrac, gossip, escape stats.Running
}

// GeoMeans appends per-kind geometric-mean rows (bench "geomean") over
// the normalized performance and energy of ms.
func GeoMeans(ms []Measurement) []Measurement {
	byKind := map[network.Kind][]Measurement{}
	var order []network.Kind
	for _, m := range ms {
		if _, ok := byKind[m.Kind]; !ok {
			order = append(order, m.Kind)
		}
		byKind[m.Kind] = append(byKind[m.Kind], m)
	}
	var out []Measurement
	for _, k := range order {
		rows := byKind[k]
		var perfs, energies []float64
		for _, r := range rows {
			perfs = append(perfs, r.Perf)
			energies = append(energies, r.Energy)
		}
		out = append(out, Measurement{
			Bench:  "geomean",
			Kind:   k,
			Perf:   stats.GeoMean(perfs),
			Energy: stats.GeoMean(energies),
		})
	}
	return out
}

// WriteFig2 renders the Figure 2 style table (normalized performance and
// energy, with variance) to w.
func WriteFig2(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tkind\tperf(norm)\t±\tenergy(norm)\t±\tinj rate\tnet lat")
	for _, m := range ms {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			m.Bench, m.Kind, m.Perf, m.PerfStd, m.Energy, m.EnergyStd,
			m.InjectionRate, m.NetLatency)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteFig3 renders the Figure 3 style energy breakdown (components
// normalized to the backpressured total per benchmark).
func WriteFig3(w io.Writer, title string, ms []Measurement) {
	fmt.Fprintf(w, "%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tkind\tbuffer\tlink\trest\ttotal")
	for _, m := range ms {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
			m.Bench, m.Kind, m.BufferE, m.LinkE, m.RestE, m.BufferE+m.LinkE+m.RestE)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteDuty renders the AFC mode duty-cycle report (Section V-A text).
func WriteDuty(w io.Writer, ms []Measurement) {
	fmt.Fprintln(w, "AFC mode duty cycle (fraction of router-cycles in backpressured mode)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tbackpressured-mode\tgossip switches\tescape events")
	for _, m := range ms {
		if m.Kind != network.AFC {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f\t%.1f\n",
			m.Bench, 100*m.BufferedFraction, m.GossipSwitches, m.EscapeEvents)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// Table3Row is a paper-vs-measured injection-rate calibration entry.
type Table3Row struct {
	Bench    string
	Paper    float64
	Measured float64
}

// Table3 measures the achieved injection rate of every workload preset on
// the backpressured baseline (the configuration the paper's Table III
// reports).
func Table3(opt Options) ([]Table3Row, error) {
	benches := cmp.AllBenchmarks()
	ns := len(opt.Seeds)
	ro := opt.pool()
	ws := opt.workerStates(ro.Workers(len(benches) * ns))
	rates, err := runner.MapWorkers(len(benches)*ns, ro, func(worker, i int) (float64, error) {
		res, _, err := ws[worker].runCell(benches[i/ns], network.Backpressured, opt.Seeds[i%ns])
		if err != nil {
			return 0, err
		}
		return res.InjectionRate, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Table3Row
	for bi, p := range benches {
		var r stats.Running
		for si := 0; si < ns; si++ {
			r.Add(rates[bi*ns+si])
		}
		out = append(out, Table3Row{
			Bench:    p.Name,
			Paper:    cmp.PaperInjectionRates[p.Name],
			Measured: r.Mean(),
		})
	}
	return out, nil
}

// WriteTable3 renders the calibration table.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table III: workload injection rates (flits/node/cycle), paper vs. measured")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tpaper\tmeasured")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\n", r.Bench, r.Paper, r.Measured)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
