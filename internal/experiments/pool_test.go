package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// pooledCell runs the same open-loop (kind, seed, rate) cell as
// activeSetCell, but through the worker-state reuse path: the network is
// acquired from ws — rewound in place when the worker's previous cell
// had the same kind — and the generator is reattached rather than
// rebuilt. This is the production steady-state path of every sweep
// harness, so equality against the fresh-build no-pool reference proves
// both halves of the memory engine at once (arena recycling and
// cross-cell reuse).
func pooledCell(ws *workerState, kind network.Kind, seed int64, rate float64) activeSetSnap {
	e := ws.acquire(network.Config{Kind: kind, Seed: seed, MeterEnergy: true})
	net := e.net
	if e.gen == nil {
		e.gen = traffic.NewGenerator(net, traffic.Config{Rate: rate}, net.RandStream)
	} else {
		e.gen.Reattach(traffic.Config{Rate: rate})
	}
	net.AddTicker(e.gen)
	gen := e.gen
	net.Run(ws.opt.OpenLoopWarmup)
	net.ResetStats()
	net.Run(ws.opt.OpenLoopMeasure)
	gen.Stop()
	drained := net.RunUntil(net.Drained, 200_000)
	s := activeSetSnap{
		Now:        net.Now(),
		Drained:    drained,
		Counters:   net.Counters(),
		Created:    net.CreatedPackets(),
		Delivered:  net.DeliveredPackets(),
		Offered:    gen.OfferedFlits(),
		Latency:    net.MeanTotalLatency(),
		NetLatency: net.MeanNetLatency(),
		Throughput: net.ThroughputFlits(),
		Energy:     net.TotalEnergy(),
	}
	for n := 0; n < net.Nodes(); n++ {
		s.QueueLens = append(s.QueueLens, net.NI(topology.NodeID(n)).MeanQueueLen())
	}
	return s
}

// TestPoolEqualsNoPool is the gate on the memory engine: every network
// kind, four seeds, and three load levels must produce DeepEqual
// measurements under (a) the no-pool reference path — heap-allocated
// flits, a fresh network per cell — and (b) the pooled production path —
// arena recycling plus worker-level network reuse — serial and 8-way
// parallel, with the invariant checker attached. The cell order is
// kind-major, so consecutive cells on a worker share a kind and the
// Reset/Reattach rewind path fires constantly; the drain phase is where
// every recycled flit must come home to the arena.
func TestPoolEqualsNoPool(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kind x seed x rate three times")
	}
	seeds := []int64{1, 2, 3, 5}
	rates := []float64{0.05, 0.30, 0.55}
	type cellKey struct {
		kind network.Kind
		seed int64
		rate float64
	}
	var cells []cellKey
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range seeds {
			for _, rate := range rates {
				cells = append(cells, cellKey{k, seed, rate})
			}
		}
	}
	base := Options{
		OpenLoopWarmup:  500,
		OpenLoopMeasure: 1500,
		Check:           true,
	}
	runRef := func(parallelism int) []activeSetSnap {
		opt := base
		opt.Parallelism = parallelism
		opt.NoPool = true
		outs, err := runner.Map(len(cells), opt.pool(), func(i int) (activeSetSnap, error) {
			c := cells[i]
			return activeSetCell(c.kind, c.seed, c.rate, opt), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	runPooled := func(parallelism int) []activeSetSnap {
		opt := base
		opt.Parallelism = parallelism
		ws := opt.workerStates(opt.pool().Workers(len(cells)))
		outs, err := runner.MapWorkers(len(cells), opt.pool(), func(worker, i int) (activeSetSnap, error) {
			c := cells[i]
			return pooledCell(ws[worker], c.kind, c.seed, c.rate), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	ref := runRef(8)
	pooled := runPooled(1)
	pooled8 := runPooled(8)
	for i, c := range cells {
		if !reflect.DeepEqual(ref[i], pooled[i]) {
			t.Errorf("%v seed %d rate %.2f: pooled (serial) diverged from no-pool reference:\nnopool: %+v\npooled: %+v",
				c.kind, c.seed, c.rate, ref[i], pooled[i])
		}
		if !reflect.DeepEqual(ref[i], pooled8[i]) {
			t.Errorf("%v seed %d rate %.2f: pooled (8-way) diverged from no-pool reference:\nnopool: %+v\npooled: %+v",
				c.kind, c.seed, c.rate, ref[i], pooled8[i])
		}
	}
}

// TestPoolLeakOracle is the arena's conservation law: after a cell
// drains, every flit the arena handed out must have been recycled back
// (Live() == 0). A leak here means some consumption point forgot to
// recycle — invisible to the equality tests (results stay correct, the
// pool just silently degrades to the allocator) but fatal to the
// zero-allocation steady state. The single worker state reuses one
// network per kind across seeds, so the oracle also covers Reset's
// Reclaim barrier.
func TestPoolLeakOracle(t *testing.T) {
	opt := Options{
		OpenLoopWarmup:  400,
		OpenLoopMeasure: 1200,
		Check:           true,
	}
	ws := opt.workerStates(1)[0]
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range []int64{1, 7} {
			snap := pooledCell(ws, k, seed, 0.30)
			if !snap.Drained {
				t.Errorf("%v seed %d: did not drain", k, seed)
				continue
			}
			a := ws.ents[k].net.Arena()
			if a == nil {
				t.Fatalf("%v seed %d: pooled network has no arena", k, seed)
			}
			if live := a.Live(); live != 0 {
				t.Errorf("%v seed %d: %d flits still checked out after drain (pool leak)", k, seed, live)
			}
		}
	}
}

// TestPoolLeakOracleSharded is the conservation law through the shard
// magazines: the same oracle at shard counts 2 and 8 on an 8x8 mesh (so
// 8 is genuinely eight one-row bands, not a clamp). Live() sums the
// per-magazine deltas — a flit packetized on one shard and recycled on
// another cancels across the sum — so a zero here proves the shard-local
// free lists conserve blocks under migration. The two seeds per kind
// reuse one network through Reset, which exercises Reclaim's
// magazine-aware path: parked shard stock and in-flight handles must
// both come home to the shared reserve, or the second cell leaks.
func TestPoolLeakOracleSharded(t *testing.T) {
	for _, shards := range []int{2, 8} {
		opt := Options{
			OpenLoopWarmup:  400,
			OpenLoopMeasure: 1200,
			Check:           true,
			Shards:          shards,
			System:          config.DefaultWithMesh(topology.NewMesh(8, 8)),
		}
		ws := opt.workerStates(1)[0]
		for k := network.Kind(0); k < network.NumKinds; k++ {
			for _, seed := range []int64{1, 7} {
				snap := pooledCell(ws, k, seed, 0.30)
				if !snap.Drained {
					t.Errorf("%v seed %d shards %d: did not drain", k, seed, shards)
					continue
				}
				net := ws.ents[k].net
				if net.ShardCount() != shards {
					t.Fatalf("%v seed %d: network runs %d shards, want %d", k, seed, net.ShardCount(), shards)
				}
				a := net.Arena()
				if a == nil {
					t.Fatalf("%v seed %d shards %d: pooled network has no arena", k, seed, shards)
				}
				if live := a.Live(); live != 0 {
					t.Errorf("%v seed %d shards %d: %d flits still checked out after drain (magazine leak)",
						k, seed, shards, live)
				}
			}
			ws.ents[k].net.Close()
		}
	}
}

// TestClosedLoopPoolEqualsNoPoolShort is the short-mode slice of the
// pool gate for the closed-loop path: ClosedLoop with two seeds per
// kind reuses each worker's network and CMP substrate (acquire +
// cmp.Reattach) for the second seed, and the pooled results must
// DeepEqual the no-pool run of the same cells. The full gate
// (TestPoolEqualsNoPool) covers every kind, seed and rate but is
// skipped under -short.
func TestClosedLoopPoolEqualsNoPoolShort(t *testing.T) {
	opt := Options{
		Seeds:       []int64{1, 2},
		WarmupTx:    100,
		MeasureTx:   300,
		CycleLimit:  2_000_000,
		Parallelism: 1,
		Check:       true,
	}
	benches := cmp.LowLoad()[:1]
	kinds := []network.Kind{network.Backpressured, network.AFC}
	pooled, err := ClosedLoop(benches, kinds, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.NoPool = true
	nopool, err := ClosedLoop(benches, kinds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pooled, nopool) {
		t.Errorf("pooled closed-loop run diverged from no-pool:\npooled: %+v\nnopool: %+v", pooled, nopool)
	}

	// The one-shot path the ablation harnesses use shares the same cell
	// code without cross-cell reuse; it must agree too.
	opt.NoPool = false
	res, net, err := runCell(benches[0], network.AFC, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("one-shot cell measured zero cycles")
	}
	if net.Arena() == nil {
		t.Error("one-shot pooled cell built a network without an arena")
	}
}
