package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/scenario"
	"afcnet/internal/traffic"
)

// ScenarioResult is one (kind, seed) run of a scenario spec: per-phase
// completion-time distributions plus whole-run totals. Results are
// bit-for-bit identical at any Options.Parallelism and any shard count,
// which TestScenarioEqualsSerial gates.
type ScenarioResult struct {
	Kind network.Kind
	Seed int64

	Phases []scenario.PhaseStats

	Created    uint64
	Delivered  uint64
	Dropped    uint64 // drop-variant drops over the run
	Throughput float64
}

// Scenario runs spec once per (kind, seed) cell. There is no separate
// warmup window: the spec's timeline is absolute (events fire at the
// cycles it names) and the phase structure itself separates transients
// from steady state.
func Scenario(kinds []network.Kind, spec *scenario.Spec, opt Options) ([]ScenarioResult, error) {
	ns := len(opt.Seeds)
	ro := opt.pool()
	ws := opt.workerStates(ro.Workers(len(kinds) * ns))
	outs, err := runner.MapWorkers(len(kinds)*ns, ro, func(worker, i int) (ScenarioResult, error) {
		k := kinds[i/ns]
		seed := opt.Seeds[i%ns]
		e := ws[worker].acquire(network.Config{Kind: k, Seed: seed, MeterEnergy: false})
		net := e.net
		tcfg := spec.TrafficConfig(net.Mesh())
		if e.gen == nil {
			e.gen = traffic.NewGenerator(net, tcfg, net.RandStream)
		} else {
			e.gen.Reattach(tcfg)
		}
		// The engine must tick before the generator so an event at cycle
		// c changes conditions ahead of cycle c's injections.
		eng := scenario.NewEngine(net, e.gen, spec)
		net.AddTicker(eng)
		net.AddTicker(e.gen)
		net.Run(spec.Duration)
		return ScenarioResult{
			Kind:       k,
			Seed:       seed,
			Phases:     eng.Phases(),
			Created:    net.CreatedPackets(),
			Delivered:  net.DeliveredPackets(),
			Dropped:    net.TotalDropped(),
			Throughput: net.ThroughputFlits(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// WriteScenario renders the per-phase scenario report.
func WriteScenario(w io.Writer, name string, rs []ScenarioResult) {
	if name == "" {
		name = "scenario"
	}
	fmt.Fprintf(w, "Scenario %q: per-phase packet completion times (cycles)\n", name)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tseed\tphase\tcycles\tdelivered\tnet p50/p99/p999\ttotal p50/p99/p999")
	for _, r := range rs {
		for _, p := range r.Phases {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d..%d\t%d\t%d/%d/%d\t%d/%d/%d\n",
				r.Kind, r.Seed, p.Label, p.Start, p.End, p.Delivered,
				p.NetP50, p.NetP99, p.NetP999, p.TotP50, p.TotP99, p.TotP999)
		}
		fmt.Fprintf(tw, "%s\t%d\ttotal\t\t%d of %d\t(dropped %d, %.3f flits/node/cycle)\t\n",
			r.Kind, r.Seed, r.Delivered, r.Created, r.Dropped, r.Throughput)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
