package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/scenario"
	"afcnet/internal/topology"
)

// detScenario is the determinism workload: every scheduled-change
// mechanism fires at least once (rate ramp, pattern move, bursting,
// dead link, dead router, throttling) on an 8x8 mesh so shard count 8
// is genuinely eight row bands.
func detScenario() *scenario.Spec {
	r := 0.22
	return &scenario.Spec{
		Name:     "det",
		Duration: 3000,
		Rate:     0.08,
		Events: []scenario.Event{
			{At: 500, Label: "ramp", Rate: &r},
			{At: 1000, Label: "burst", Pattern: "hotspot:27:0.5",
				Burst: &scenario.Burst{Period: 60, On: 20}},
			{At: 1500, Label: "fault",
				DeadLinks:   []scenario.LinkRef{{Node: 9, Dir: "E"}},
				DeadRouters: []int{36}},
			{At: 2200, Label: "throttle", Burst: &scenario.Burst{},
				Throttles: &[]scenario.Throttle{{Node: 18, Dir: "S", Period: 16, On: 8}}},
		},
	}
}

// TestScenarioEqualsSerial is the determinism gate on the scenario
// layer: the same spec, across experiment-level parallelism and every
// sharded-tick width, with the invariant checker attached, must produce
// bit-for-bit identical per-phase results. The engine mutates run
// conditions from serial ticker context and the NI delivered hooks
// record into per-node state only, so nothing here may depend on worker
// or shard count.
func TestScenarioEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration scenario runs are slow")
	}
	kinds := []network.Kind{network.Backpressured, network.Bless, network.BlessDrop, network.AFC}
	spec := detScenario()
	base := Options{
		Seeds:       []int64{1, 2},
		Parallelism: 1,
		Check:       true,
		System:      config.DefaultWithMesh(topology.NewMesh(8, 8)),
	}
	want, err := Scenario(kinds, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name        string
		parallelism int
		shards      int
	}{
		{"parallel8", 8, 0},
		{"shards2", 1, 2},
		{"shards8", 1, 8},
		{"parallel8-shards2", 8, 2},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			opt := base
			opt.Parallelism = v.parallelism
			opt.Shards = v.shards
			got, err := Scenario(kinds, spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("results diverge from serial reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestScenarioFaultShards16x16 is the scenario x shards x faults gate at
// the large radix: a 16x16 mesh scenario that kills links and a router
// and duty-cycles a throttle mid-run must produce bit-for-bit identical
// per-phase results through the sharded tick at 8 shards (two rows per
// band) as through the serial kernel, invariant checker attached. Fault
// mutation is what stresses the band-quiescence machinery: a dead link
// or throttle flips run conditions from serial ticker context, and the
// wake edge must reach every quiescent band before its next skipped
// tick — a stale quiet flag diverges here, not in the steady-state
// equality gates.
func TestScenarioFaultShards16x16(t *testing.T) {
	spec := &scenario.Spec{
		Name:     "faults-16x16",
		Duration: 2500,
		Rate:     0.05,
		Events: []scenario.Event{
			{At: 800, Label: "dead",
				DeadLinks:   []scenario.LinkRef{{Node: 55, Dir: "E"}, {Node: 150, Dir: "N"}},
				DeadRouters: []int{136}},
			{At: 1600, Label: "throttle",
				Throttles: &[]scenario.Throttle{{Node: 90, Dir: "S", Period: 16, On: 8}}},
		},
	}
	kinds := []network.Kind{network.Bless, network.AFC}
	base := Options{
		Seeds:       []int64{1},
		Parallelism: 1,
		Check:       true,
		System:      config.DefaultWithMesh(topology.NewMesh(16, 16)),
	}
	want, err := Scenario(kinds, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 8
	got, err := Scenario(kinds, spec, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded 16x16 fault scenario diverges from serial:\n got %+v\nwant %+v", got, want)
	}
	for _, r := range want {
		if len(r.Phases) != 3 {
			t.Fatalf("%s: got %d phases, want 3", r.Kind, len(r.Phases))
		}
		for i, p := range r.Phases {
			if p.Delivered == 0 {
				t.Errorf("%s phase %d (%s): no deliveries", r.Kind, i, p.Label)
			}
		}
	}
}

// TestScenarioFaultCompletion kills a center link mid-run on the default
// 3x3 mesh and checks graceful degradation per router kind: deflective
// kinds reroute around the dead link and keep delivering; buffered kinds
// keep delivering on unaffected routes (flits already XY-committed to
// the dead link strand, which the checker tolerates under active
// faults). The checker stays attached throughout — a conservation or
// ledger violation fails the run.
func TestScenarioFaultCompletion(t *testing.T) {
	spec := &scenario.Spec{
		Name:     "dead-link",
		Duration: 4000,
		Rate:     0.05,
		Events: []scenario.Event{
			{At: 2000, Label: "after-fault",
				DeadLinks: []scenario.LinkRef{{Node: 4, Dir: "E"}}},
		},
	}
	kinds := []network.Kind{
		network.Backpressured, network.Bless, network.BlessDrop, network.AFC, network.AFCAlwaysBuffered,
	}
	rs, err := Scenario(kinds, spec, Options{Seeds: []int64{3}, Parallelism: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Phases) != 2 {
			t.Fatalf("%s: got %d phases, want 2", r.Kind, len(r.Phases))
		}
		pre, post := r.Phases[0], r.Phases[1]
		if pre.Delivered == 0 || post.Delivered == 0 {
			t.Errorf("%s: deliveries pre=%d post=%d, want both positive", r.Kind, pre.Delivered, post.Delivered)
			continue
		}
		// Graceful degradation: the surviving links still carry most of
		// the offered low-load traffic after the fault.
		if post.Delivered*2 < pre.Delivered {
			t.Errorf("%s: post-fault deliveries collapsed: pre=%d post=%d", r.Kind, pre.Delivered, post.Delivered)
		}
		if post.NetP50 == 0 || post.NetP999 < post.NetP50 {
			t.Errorf("%s: post-fault percentiles malformed: %d/%d/%d", r.Kind, post.NetP50, post.NetP99, post.NetP999)
		}
	}
}

// TestScenarioDenseEqualsActiveSet pins the engine's Quiescer/Sleeper
// contract: coasting between scheduled actions must not change any
// result relative to the dense reference kernel.
func TestScenarioDenseEqualsActiveSet(t *testing.T) {
	spec := detScenario()
	kinds := []network.Kind{network.Bless, network.AFC}
	base := Options{
		Seeds:       []int64{5},
		Parallelism: 1,
		Check:       true,
		System:      config.DefaultWithMesh(topology.NewMesh(8, 8)),
	}
	want, err := Scenario(kinds, spec, base)
	if err != nil {
		t.Fatal(err)
	}
	dense := base
	dense.Dense = true
	got, err := Scenario(kinds, spec, dense)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dense kernel diverges:\n got %+v\nwant %+v", got, want)
	}
}
