package experiments

import (
	"encoding/json"
	"io"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

// Results bundles the full evaluation for machine consumption
// (cmd/figures -json).
type Results struct {
	// LowLoad / HighLoad are the Figure 2/3 measurements.
	LowLoad  []Measurement `json:"lowLoad"`
	HighLoad []Measurement `json:"highLoad"`
	// Table3 is the injection-rate calibration.
	Table3 []Table3Row `json:"table3"`
	// Sweep is the open-loop latency-throughput series.
	Sweep []SweepPoint `json:"sweep"`
	// Quadrant is the Section V-B consolidation experiment.
	Quadrant []QuadrantResult `json:"quadrant"`
	// Gossip is the hotspot mode-switch demonstration.
	Gossip GossipResult `json:"gossip"`
}

// CollectAll runs the complete evaluation once and returns it as a
// Results bundle.
func CollectAll(opt Options) (Results, error) {
	var r Results
	var err error
	if r.LowLoad, err = ClosedLoop(cmp.LowLoad(), Fig2EnergyKinds, opt); err != nil {
		return r, err
	}
	if r.HighLoad, err = ClosedLoop(cmp.HighLoad(), Fig2Kinds, opt); err != nil {
		return r, err
	}
	if r.Table3, err = Table3(opt); err != nil {
		return r, err
	}
	rates := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65}
	r.Sweep = LatencySweep([]network.Kind{
		network.Backpressured, network.Bless, network.BlessDrop, network.AFC,
	}, rates, opt)
	r.Quadrant = Quadrant([]network.Kind{
		network.Backpressured, network.Bless, network.AFC,
	}, 0.9, 0.1, opt)
	r.Gossip = GossipHotspot(opt.Seeds[0], opt)
	return r, nil
}

// WriteJSON emits the bundle as indented JSON.
func (r Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
