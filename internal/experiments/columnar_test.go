package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/network"
	"afcnet/internal/runner"
)

// TestColumnarEqualsReference is the gate on the columnar hot core:
// every network kind, four seeds, and three load levels must produce
// DeepEqual measurements (energy and per-node sampled queue lengths
// included) under (a) the -nocolumnar reference path — per-flit state
// read from the struct fields — and (b) the columnar production path —
// routers, deflectors and NIs reading the arena's struct-of-arrays
// banks — serial and 8-way parallel, with the invariant checker
// attached. The immutable columns are written once at packetization and
// the two mutable ones (injection age, deflection count) are
// mirror-written at every mutation site, so any missed site or row
// aliasing shows up here as a bit-level divergence.
func TestColumnarEqualsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kind x seed x rate three times")
	}
	seeds := []int64{1, 2, 3, 5}
	rates := []float64{0.05, 0.30, 0.55}
	type cellKey struct {
		kind network.Kind
		seed int64
		rate float64
	}
	var cells []cellKey
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range seeds {
			for _, rate := range rates {
				cells = append(cells, cellKey{k, seed, rate})
			}
		}
	}
	base := Options{
		OpenLoopWarmup:  500,
		OpenLoopMeasure: 1500,
		Check:           true,
	}
	run := func(parallelism int, noColumnar bool) []activeSetSnap {
		opt := base
		opt.Parallelism = parallelism
		opt.NoColumnar = noColumnar
		outs, err := runner.Map(len(cells), opt.pool(), func(i int) (activeSetSnap, error) {
			c := cells[i]
			return activeSetCell(c.kind, c.seed, c.rate, opt), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	ref := run(8, true)
	columnar := run(1, false)
	columnar8 := run(8, false)
	for i, c := range cells {
		if !reflect.DeepEqual(ref[i], columnar[i]) {
			t.Errorf("%v seed %d rate %.2f: columnar (serial) diverged from struct reference:\nref:      %+v\ncolumnar: %+v",
				c.kind, c.seed, c.rate, ref[i], columnar[i])
		}
		if !reflect.DeepEqual(ref[i], columnar8[i]) {
			t.Errorf("%v seed %d rate %.2f: columnar (8-way) diverged from struct reference:\nref:      %+v\ncolumnar: %+v",
				c.kind, c.seed, c.rate, ref[i], columnar8[i])
		}
	}
}

// TestPayloadElisionEqualsColumnar is the gate on the payload-elision
// mode: dropping the payload column must be behaviorally invisible —
// FlitPayload falls back to the struct field, which packetization
// always writes, so delivered payload tags (and everything downstream
// of them) stay bit-identical. Every kind, two seeds, two load levels,
// checker attached.
func TestPayloadElisionEqualsColumnar(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kind x seed x rate twice")
	}
	seeds := []int64{1, 3}
	rates := []float64{0.05, 0.45}
	type cellKey struct {
		kind network.Kind
		seed int64
		rate float64
	}
	var cells []cellKey
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range seeds {
			for _, rate := range rates {
				cells = append(cells, cellKey{k, seed, rate})
			}
		}
	}
	base := Options{
		OpenLoopWarmup:  500,
		OpenLoopMeasure: 1500,
		Check:           true,
		Parallelism:     8,
	}
	run := func(elide bool) []activeSetSnap {
		opt := base
		opt.ElidePayload = elide
		outs, err := runner.Map(len(cells), opt.pool(), func(i int) (activeSetSnap, error) {
			c := cells[i]
			return activeSetCell(c.kind, c.seed, c.rate, opt), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	full := run(false)
	elided := run(true)
	for i, c := range cells {
		if !reflect.DeepEqual(full[i], elided[i]) {
			t.Errorf("%v seed %d rate %.2f: payload elision diverged:\nfull:   %+v\nelided: %+v",
				c.kind, c.seed, c.rate, full[i], elided[i])
		}
	}
}
