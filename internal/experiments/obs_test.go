package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/obs"
	"afcnet/internal/topology"
)

// obsResults bundles the two harness outputs the observability
// regression compares.
type obsResults struct {
	closed []Measurement
	sweep  []SweepPoint
}

// runObserved runs a reduced ClosedLoop (3 cells: baseline + Bless +
// AFC on one bench/seed) and LatencySweep (2 kinds × 2 rates × 1 seed =
// 4 cells) with ob threaded through Options — 7 cells over 2 batches.
func runObserved(t *testing.T, parallelism int, ob *obs.Observer) obsResults {
	t.Helper()
	opt := Options{
		Seeds:           []int64{1},
		WarmupTx:        100,
		MeasureTx:       300,
		CycleLimit:      4_000_000,
		OpenLoopWarmup:  300,
		OpenLoopMeasure: 900,
		Parallelism:     parallelism,
		Obs:             ob,
	}
	var r obsResults
	water, _ := cmp.ByName("water")
	var err error
	r.closed, err = ClosedLoop([]cmp.Params{water},
		[]network.Kind{network.Bless, network.AFC}, opt)
	if err != nil {
		t.Fatalf("ClosedLoop: %v", err)
	}
	r.sweep = LatencySweep([]network.Kind{network.Bless, network.AFC},
		[]float64{0.1, 0.3}, opt)
	return r
}

// TestObserverInvisibleToResults is the obs analogue of
// TestAllHarnessesChecked: with every observer enabled (manifest,
// progress, metrics sampler) the harness results must be bit-for-bit
// identical to an unobserved run, serial and on eight workers.
func TestObserverInvisibleToResults(t *testing.T) {
	baseline := runObserved(t, 1, nil)
	for _, workers := range []int{1, 8} {
		var progressBuf bytes.Buffer
		ob := obs.New(obs.Config{
			Command:    "obs_test",
			Workers:    workers,
			Manifest:   true,
			Progress:   true,
			ProgressTo: &progressBuf,
			Metrics:    &obs.Metrics{},
		})
		observed := runObserved(t, workers, ob)
		ob.Finish()
		if !reflect.DeepEqual(baseline, observed) {
			t.Errorf("observed results diverged from unobserved baseline at parallelism %d", workers)
		}

		var buf bytes.Buffer
		if err := ob.WriteManifest(&buf); err != nil {
			t.Fatalf("WriteManifest: %v", err)
		}
		var m obs.Manifest
		if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
			t.Fatalf("manifest JSON: %v", err)
		}
		if m.CellsTotal != 7 || m.CellsDone != 7 || m.CellErrors != 0 {
			t.Errorf("parallelism %d: cellsTotal/done/errors = %d/%d/%d, want 7/7/0",
				workers, m.CellsTotal, m.CellsDone, m.CellErrors)
		}
		if len(m.Cells) != 7 {
			t.Errorf("parallelism %d: %d cell records, want one per executed cell (7)",
				workers, len(m.Cells))
		}
		perBatch := map[int]int{}
		for _, c := range m.Cells {
			perBatch[c.Batch]++
		}
		if perBatch[1] != 3 || perBatch[2] != 4 {
			t.Errorf("parallelism %d: cells per batch = %v, want map[1:3 2:4]", workers, perBatch)
		}

		if !strings.Contains(progressBuf.String(), "7/7 cells") {
			t.Errorf("parallelism %d: progress output %q never reached 7/7 cells",
				workers, progressBuf.String())
		}
		if ob.Metrics().CellsDone.Load() != 7 {
			t.Errorf("parallelism %d: metrics cellsDone = %d, want 7",
				workers, ob.Metrics().CellsDone.Load())
		}
		if ob.Metrics().InjectedFlits.Load() == 0 {
			t.Errorf("parallelism %d: sampler recorded no injected flits", workers)
		}
	}
}

// TestObserverBarrierRecord runs a sharded sweep under a full observer
// and checks the sharded tick's wall-time split lands in both sinks:
// the manifest's "barrier" record and the expvar metrics gauge, with
// per-cycle averages covering every shard — and that collecting it
// still changes no result (the sharded run must match the same sweep
// unobserved).
func TestObserverBarrierRecord(t *testing.T) {
	const shards = 4
	// Parallelism 4 with several seeds makes cells overlap, so the
	// per-cell gauge flush reads tallies of networks that are mid-cycle
	// on other workers — the concurrent-snapshot path the atomic tally
	// exists for (this test runs under -race in `make race`).
	run := func(ob *obs.Observer) []SweepPoint {
		opt := Options{
			Seeds:           []int64{1, 2, 3},
			OpenLoopWarmup:  300,
			OpenLoopMeasure: 900,
			Parallelism:     4,
			Shards:          shards,
			Obs:             ob,
			System:          config.DefaultWithMesh(topology.NewMesh(8, 8)),
		}
		return LatencySweep([]network.Kind{network.AFC}, []float64{0.1, 0.3}, opt)
	}
	baseline := run(nil)
	ob := obs.New(obs.Config{Command: "obs_test", Manifest: true, Metrics: &obs.Metrics{}})
	observed := run(ob)
	ob.Finish()
	if !reflect.DeepEqual(baseline, observed) {
		t.Error("barrier-observed sharded results diverged from unobserved baseline")
	}

	var buf bytes.Buffer
	if err := ob.WriteManifest(&buf); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest JSON: %v", err)
	}
	b := m.Barrier
	if b == nil {
		t.Fatal("sharded observed run produced no manifest barrier record")
	}
	if b.Shards != shards || b.Cycles == 0 {
		t.Errorf("barrier record shards/cycles = %d/%d, want %d/>0", b.Shards, b.Cycles, shards)
	}
	if b.PhaseAAvgNs <= 0 || b.PhaseBAvgNs <= 0 {
		t.Errorf("barrier per-cycle averages not positive: phaseA=%.1f phaseB=%.1f", b.PhaseAAvgNs, b.PhaseBAvgNs)
	}
	if len(b.ShardBusyAvgNs) != shards {
		t.Fatalf("barrier record has %d shard busy averages, want %d", len(b.ShardBusyAvgNs), shards)
	}
	for i, ns := range b.ShardBusyAvgNs {
		if ns <= 0 {
			t.Errorf("shard %d busy average not positive: %.1f", i, ns)
		}
	}

	snap := ob.Metrics().Snapshot()
	gauge, ok := snap["barrier"].(map[string]any)
	if !ok {
		t.Fatalf("metrics snapshot has no barrier gauge: %v", snap["barrier"])
	}
	if gauge["cycles"].(uint64) != b.Cycles {
		t.Errorf("gauge cycles %v != manifest cycles %d", gauge["cycles"], b.Cycles)
	}
}
