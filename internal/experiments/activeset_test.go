package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/energy"
	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// activeSetSnap captures everything a cell measures, so DeepEqual between
// a dense-kernel run and an active-set run proves bit-for-bit equality:
// cycle counts (RunUntil semantics), counters, float statistics (EWMA and
// energy accumulation order), and the sampled queue depths that the
// fast-forwarded housekeeping path maintains.
type activeSetSnap struct {
	Now        uint64
	Drained    bool
	Counters   network.Counters
	Created    uint64
	Delivered  uint64
	Offered    uint64
	Latency    float64
	NetLatency float64
	Throughput float64
	Energy     energy.Breakdown
	QueueLens  []float64
}

// activeSetCell runs one open-loop (kind, seed, rate) cell with a
// measurement window followed by a drain phase — the drain exercises
// whole-kernel fast-forward (RunUntil coasting between wake edges).
func activeSetCell(kind network.Kind, seed int64, rate float64, opt Options) activeSetSnap {
	net := opt.newNetwork(network.Config{Kind: kind, Seed: seed, MeterEnergy: true})
	gen := traffic.NewGenerator(net, traffic.Config{Rate: rate}, net.RandStream)
	net.AddTicker(gen)
	net.Run(opt.OpenLoopWarmup)
	net.ResetStats()
	net.Run(opt.OpenLoopMeasure)
	gen.Stop()
	drained := net.RunUntil(net.Drained, 200_000)
	s := activeSetSnap{
		Now:        net.Now(),
		Drained:    drained,
		Counters:   net.Counters(),
		Created:    net.CreatedPackets(),
		Delivered:  net.DeliveredPackets(),
		Offered:    gen.OfferedFlits(),
		Latency:    net.MeanTotalLatency(),
		NetLatency: net.MeanNetLatency(),
		Throughput: net.ThroughputFlits(),
		Energy:     net.TotalEnergy(),
	}
	for n := 0; n < net.Nodes(); n++ {
		s.QueueLens = append(s.QueueLens, net.NI(topology.NodeID(n)).MeanQueueLen())
	}
	return s
}

// TestActiveSetEqualsDense is the gate on the active-set kernel: every
// network kind, four seeds, and three load levels (low, mid, past
// saturation for the weaker kinds) must produce DeepEqual measurements
// and counter snapshots under the dense reference kernel and the
// active-set kernel — serial and 8-way parallel — with the invariant
// checker attached. Low rates are where skipping fires constantly;
// saturation is where it must never corrupt anything while buying
// nothing; the drain phase is where whole-kernel coasting jumps the
// clock.
func TestActiveSetEqualsDense(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kind x seed x rate three times")
	}
	seeds := []int64{1, 2, 3, 5}
	rates := []float64{0.05, 0.30, 0.55}
	type cellKey struct {
		kind network.Kind
		seed int64
		rate float64
	}
	var cells []cellKey
	for k := network.Kind(0); k < network.NumKinds; k++ {
		for _, seed := range seeds {
			for _, rate := range rates {
				cells = append(cells, cellKey{k, seed, rate})
			}
		}
	}
	run := func(dense bool, parallelism int) []activeSetSnap {
		opt := Options{
			OpenLoopWarmup:  500,
			OpenLoopMeasure: 1500,
			Parallelism:     parallelism,
			Check:           true,
			Dense:           dense,
		}
		outs, err := runner.Map(len(cells), opt.pool(), func(i int) (activeSetSnap, error) {
			c := cells[i]
			return activeSetCell(c.kind, c.seed, c.rate, opt), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	dense := run(true, 8)
	active := run(false, 1)
	active8 := run(false, 8)
	for i, c := range cells {
		if !reflect.DeepEqual(dense[i], active[i]) {
			t.Errorf("%v seed %d rate %.2f: active-set (serial) diverged from dense:\ndense:  %+v\nactive: %+v",
				c.kind, c.seed, c.rate, dense[i], active[i])
		}
		if !reflect.DeepEqual(dense[i], active8[i]) {
			t.Errorf("%v seed %d rate %.2f: active-set (8-way) diverged from dense:\ndense:  %+v\nactive: %+v",
				c.kind, c.seed, c.rate, dense[i], active8[i])
		}
	}
}
