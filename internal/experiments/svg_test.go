package experiments

import (
	"strings"
	"testing"

	"afcnet/internal/network"
)

func TestFig2SVGStructure(t *testing.T) {
	ms := []Measurement{
		{Bench: "water", Kind: network.Backpressured, Perf: 1, Energy: 1},
		{Bench: "water", Kind: network.Bless, Perf: 1.01, Energy: 0.70, EnergyStd: 0.01},
		{Bench: "ocean", Kind: network.Backpressured, Perf: 1, Energy: 1},
		{Bench: "ocean", Kind: network.Bless, Perf: 1.0, Energy: 0.73},
	}
	svg := Fig2SVG("t", "energy", ms, true)
	for _, want := range []string{"water", "ocean", "backpressureless", "<svg", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// performance variant uses Perf values
	perf := Fig2SVG("t", "perf", ms, false)
	if perf == svg {
		t.Error("perf and energy charts identical")
	}
}

func TestFig3SVGStructure(t *testing.T) {
	ms := []Measurement{
		{Bench: "apache", Kind: network.Backpressured, BufferE: 0.4, LinkE: 0.18, RestE: 0.42},
		{Bench: "apache", Kind: network.AFC, BufferE: 0.3, LinkE: 0.22, RestE: 0.51},
	}
	svg := Fig3SVG("t", ms)
	for _, want := range []string{"apache/bp", "apache/afc", "buffer", "rest of router"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestSweepSVGStructure(t *testing.T) {
	pts := []SweepPoint{
		{Kind: network.Backpressured, Offered: 0.1, Latency: 15},
		{Kind: network.Backpressured, Offered: 0.3, Latency: 18},
		{Kind: network.Bless, Offered: 0.1, Latency: 15},
		{Kind: network.Bless, Offered: 0.3, Latency: 900}, // clipped by YCap
	}
	svg := SweepSVG(pts)
	if c := strings.Count(svg, "<polyline"); c != 2 {
		t.Errorf("polylines = %d, want 2", c)
	}
}

func TestShortKindCoversAll(t *testing.T) {
	seen := map[string]bool{}
	for k := network.Kind(0); k < network.NumKinds; k++ {
		s := shortKind(k)
		if s == "" || seen[s] {
			t.Errorf("shortKind(%v) = %q (empty or duplicate)", k, s)
		}
		seen[s] = true
	}
}
