package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/core"
	"afcnet/internal/network"
	"afcnet/internal/runner"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// LazyVCARow compares the baseline backpressured router (64 flits/port)
// against AFC-always-backpressured (32 flits/port with lazy VC
// allocation) — the paper's Section III-E/V-A claim that lazy VC
// allocation halves buffering while matching performance and reducing
// buffer energy.
type LazyVCARow struct {
	Bench            string
	PerfRatio        float64 // AFC-always-BP / backpressured (≈1 expected)
	BufferEnergyCut  float64 // 1 - bufferE(AFC-aBP)/bufferE(BP)
	BufferSlotsRatio float64 // 32/64
}

// AblationLazyVCA runs the buffer-halving comparison on the high-load
// benchmarks (where buffering matters).
func AblationLazyVCA(opt Options) ([]LazyVCARow, error) {
	sys := config.Default()
	ratio := float64(sys.AFC.BufferSlotsPerPort()) / float64(sys.Baseline.BufferSlotsPerPort())
	benches := cmp.HighLoad()
	type lazyOut struct{ perf, cut float64 }
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(benches)*ns, opt.pool(), func(i int) (lazyOut, error) {
		p := benches[i/ns]
		seed := opt.Seeds[i%ns]
		base, baseNet, err := runCell(p, network.Backpressured, seed, opt)
		if err != nil {
			return lazyOut{}, err
		}
		ab, abNet, err := runCell(p, network.AFCAlwaysBuffered, seed, opt)
		if err != nil {
			return lazyOut{}, err
		}
		be := baseNet.TotalEnergy().Buffer()
		ae := abNet.TotalEnergy().Buffer()
		return lazyOut{
			perf: ab.TransactionsPerCycle / base.TransactionsPerCycle,
			cut:  1 - ae/be,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []LazyVCARow
	for bi, p := range benches {
		var perf, cut stats.Running
		for si := 0; si < ns; si++ {
			perf.Add(outs[bi*ns+si].perf)
			cut.Add(outs[bi*ns+si].cut)
		}
		out = append(out, LazyVCARow{
			Bench:            p.Name,
			PerfRatio:        perf.Mean(),
			BufferEnergyCut:  cut.Mean(),
			BufferSlotsRatio: ratio,
		})
	}
	return out, nil
}

// WriteLazyVCA renders the A1 ablation.
func WriteLazyVCA(w io.Writer, rows []LazyVCARow) {
	fmt.Fprintln(w, "Ablation A1: lazy VC allocation (AFC always-backpressured, half the buffers, vs. baseline)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\tperf ratio\tbuffer-energy cut\tbuffer slots ratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f%%\t%.2f\n",
			r.Bench, r.PerfRatio, 100*r.BufferEnergyCut, r.BufferSlotsRatio)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// ThresholdRow is one point of the contention-threshold sensitivity sweep
// (A2): the paper's thresholds scaled by Scale, measured on one low-load
// and one high-load workload.
type ThresholdRow struct {
	Scale float64
	// LowLoadEnergy: AFC energy on water normalized to backpressured
	// (lower is better; the right threshold keeps the router
	// backpressureless).
	LowLoadEnergy float64
	// HighLoadPerf: AFC performance on apache normalized to backpressured
	// (higher is better; the right threshold switches to backpressured).
	HighLoadPerf float64
	// BufferedFracLow/High: resulting duty cycles.
	BufferedFracLow, BufferedFracHigh float64
}

// AblationThresholds sweeps a multiplicative scale over the paper's
// position-specific thresholds.
func AblationThresholds(scales []float64, opt Options) ([]ThresholdRow, error) {
	low, _ := cmp.ByName("water")
	high, _ := cmp.ByName("apache")
	// One scaled system per scale, shared read-only by that scale's cells.
	systems := make([]config.System, len(scales))
	for i, sc := range scales {
		sys := config.Default()
		th := map[topology.Position]config.Thresholds{}
		for pos, t := range sys.AFC.ThresholdsByPosition {
			th[pos] = config.Thresholds{High: t.High * sc, Low: t.Low * sc}
		}
		sys.AFC.ThresholdsByPosition = th
		systems[i] = sys
	}
	type thOut struct{ le, bl, hp, bh float64 }
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(scales)*ns, opt.pool(), func(i int) (thOut, error) {
		sc := scales[i/ns]
		sys := systems[i/ns]
		seed := opt.Seeds[i%ns]
		var o thOut

		// low load
		_, baseNet, err := runCell(low, network.Backpressured, seed, opt)
		if err != nil {
			return o, err
		}
		net := opt.newNetwork(network.Config{System: sys, Kind: network.AFC, Seed: seed, MeterEnergy: true})
		s := cmp.NewSystem(net, low, net.RandStream)
		if _, ok := s.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit); !ok {
			return o, fmt.Errorf("threshold ablation: %s timed out at scale %g", low.Name, sc)
		}
		o.le = net.TotalEnergy().Total() / baseNet.TotalEnergy().Total()
		o.bl = net.ModeStats().BufferedFraction()

		// high load
		baseRes2, _, err := runCell(high, network.Backpressured, seed, opt)
		if err != nil {
			return o, err
		}
		net2 := opt.newNetwork(network.Config{System: sys, Kind: network.AFC, Seed: seed, MeterEnergy: true})
		s2 := cmp.NewSystem(net2, high, net2.RandStream)
		res2, ok := s2.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit)
		if !ok {
			return o, fmt.Errorf("threshold ablation: %s timed out at scale %g", high.Name, sc)
		}
		o.hp = res2.TransactionsPerCycle / baseRes2.TransactionsPerCycle
		o.bh = net2.ModeStats().BufferedFraction()
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	var out []ThresholdRow
	for sci, sc := range scales {
		var le, hp, bl, bh stats.Running
		for si := 0; si < ns; si++ {
			o := outs[sci*ns+si]
			le.Add(o.le)
			bl.Add(o.bl)
			hp.Add(o.hp)
			bh.Add(o.bh)
		}
		out = append(out, ThresholdRow{
			Scale:            sc,
			LowLoadEnergy:    le.Mean(),
			HighLoadPerf:     hp.Mean(),
			BufferedFracLow:  bl.Mean(),
			BufferedFracHigh: bh.Mean(),
		})
	}
	return out, nil
}

// WriteThresholds renders the A2 ablation.
func WriteThresholds(w io.Writer, rows []ThresholdRow) {
	fmt.Fprintln(w, "Ablation A2: contention-threshold sensitivity (scale x paper thresholds)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scale\twater energy/BP\tapache perf/BP\tbuffered% (water)\tbuffered% (apache)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.3f\t%.3f\t%.1f%%\t%.1f%%\n",
			r.Scale, r.LowLoadEnergy, r.HighLoadPerf,
			100*r.BufferedFracLow, 100*r.BufferedFracHigh)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// EjectRow is one point of the ejection-width ablation (A4): the width of
// the local ejection path is the binding constraint for deflection
// routers at high load (a flit that loses ejection must circle back).
type EjectRow struct {
	Width     int
	BlessPerf float64 // bless perf / backpressured perf on apache
}

// AblationEjectWidth sweeps the ejection width.
func AblationEjectWidth(widths []int, opt Options) ([]EjectRow, error) {
	high, _ := cmp.ByName("apache")
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(widths)*ns, opt.pool(), func(i int) (float64, error) {
		w := widths[i/ns]
		seed := opt.Seeds[i%ns]
		sys := config.Default()
		sys.EjectWidth = w
		baseNet := opt.newNetwork(network.Config{System: sys, Kind: network.Backpressured, Seed: seed, MeterEnergy: false})
		bs := cmp.NewSystem(baseNet, high, baseNet.RandStream)
		baseRes, ok := bs.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit)
		if !ok {
			return 0, fmt.Errorf("eject ablation: baseline timed out at width %d", w)
		}
		net := opt.newNetwork(network.Config{System: sys, Kind: network.Bless, Seed: seed, MeterEnergy: false})
		s := cmp.NewSystem(net, high, net.RandStream)
		res, ok := s.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit)
		if !ok {
			return 0, fmt.Errorf("eject ablation: bless timed out at width %d", w)
		}
		return res.TransactionsPerCycle / baseRes.TransactionsPerCycle, nil
	})
	if err != nil {
		return nil, err
	}
	var out []EjectRow
	for wi, w := range widths {
		var r stats.Running
		for si := 0; si < ns; si++ {
			r.Add(outs[wi*ns+si])
		}
		out = append(out, EjectRow{Width: w, BlessPerf: r.Mean()})
	}
	return out, nil
}

// WriteEjectWidth renders the A4 ablation.
func WriteEjectWidth(w io.Writer, rows []EjectRow) {
	fmt.Fprintln(w, "Ablation A4: ejection width vs. backpressureless high-load degradation (apache)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eject width\tbless perf / backpressured")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\n", r.Width, r.BlessPerf)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// BaselineConfigRow is one point of the baseline-sizing ablation (A5):
// the paper states its 2+2+4 VCs x 8-flit configuration is
// energy-optimized — "adding more VCs (or increasing buffer-depths)
// resulted in no significant performance improvement" — so extra buffers
// cost energy for nothing.
type BaselineConfigRow struct {
	Label     string
	VCsPerVN  [3]int
	BufDepth  int
	Perf      float64 // vs. the paper's baseline configuration
	Energy    float64 // vs. the paper's baseline configuration
	SlotsPort int
}

// AblationBaselineSizing measures apache on the paper's baseline, a
// double-VC variant and a double-depth variant.
func AblationBaselineSizing(opt Options) ([]BaselineConfigRow, error) {
	high, _ := cmp.ByName("apache")
	variants := []struct {
		label string
		vcs   [3]int
		depth int
	}{
		{"paper (2+2+4 x8)", [3]int{2, 2, 4}, 8},
		{"double VCs (4+4+8 x8)", [3]int{4, 4, 8}, 8},
		{"double depth (2+2+4 x16)", [3]int{2, 2, 4}, 16},
	}
	type sizeOut struct{ perf, energy float64 }
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(variants)*ns, opt.pool(), func(i int) (sizeOut, error) {
		v := variants[i/ns]
		seed := opt.Seeds[i%ns]
		sys := config.Default()
		sys.Baseline.VCsPerVN = v.vcs
		sys.Baseline.BufDepth = v.depth
		net := opt.newNetwork(network.Config{System: sys, Kind: network.Backpressured, Seed: seed, MeterEnergy: true})
		s := cmp.NewSystem(net, high, net.RandStream)
		res, ok := s.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit)
		if !ok {
			return sizeOut{}, fmt.Errorf("baseline sizing: %s timed out", v.label)
		}
		return sizeOut{perf: res.TransactionsPerCycle, energy: net.TotalEnergy().Total()}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []BaselineConfigRow
	var basePerf, baseEnergy stats.Running
	for vi, v := range variants {
		var perf, en stats.Running
		for si := 0; si < ns; si++ {
			perf.Add(outs[vi*ns+si].perf)
			en.Add(outs[vi*ns+si].energy)
		}
		if vi == 0 {
			basePerf, baseEnergy = perf, en
		}
		out = append(out, BaselineConfigRow{
			Label:     v.label,
			VCsPerVN:  v.vcs,
			BufDepth:  v.depth,
			Perf:      perf.Mean() / basePerf.Mean(),
			Energy:    en.Mean() / baseEnergy.Mean(),
			SlotsPort: (v.vcs[0] + v.vcs[1] + v.vcs[2]) * v.depth,
		})
	}
	return out, nil
}

// WriteBaselineSizing renders the A5 ablation.
func WriteBaselineSizing(w io.Writer, rows []BaselineConfigRow) {
	fmt.Fprintln(w, "Ablation A5: baseline buffer sizing on apache (paper: configuration is energy-optimized)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tslots/port\tperf\tenergy")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", r.Label, r.SlotsPort, r.Perf, r.Energy)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// PipelineRow is one point of the router-pipeline ablation (A6): the
// paper's baseline charitably assumes 0-cycle VC allocation; realistic
// backpressured routers degrade to a 3-stage pipeline at high load
// (Section II). AFC needs no VCA stage at all (lazy allocation), so the
// charitable assumption favors the baseline.
type PipelineRow struct {
	Bench string
	// RealisticPerf is the 3-stage baseline's performance relative to the
	// paper's ideal 2-stage baseline (< 1).
	RealisticPerf float64
	// AFCvsIdeal / AFCvsRealistic: AFC performance against each baseline.
	AFCvsIdeal     float64
	AFCvsRealistic float64
}

// AblationPipeline measures the ideal-vs-realistic baseline pipeline on
// one low-load and one high-load workload.
func AblationPipeline(opt Options) ([]PipelineRow, error) {
	names := []string{"water", "apache"}
	type pipeOut struct{ rp, ai, ar float64 }
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(names)*ns, opt.pool(), func(i int) (pipeOut, error) {
		name := names[i/ns]
		seed := opt.Seeds[i%ns]
		p, _ := cmp.ByName(name)
		ideal, _, err := runCell(p, network.Backpressured, seed, opt)
		if err != nil {
			return pipeOut{}, err
		}
		sys := config.Default()
		sys.Baseline.RealisticVCA = true
		net := opt.newNetwork(network.Config{System: sys, Kind: network.Backpressured, Seed: seed, MeterEnergy: false})
		s := cmp.NewSystem(net, p, net.RandStream)
		realistic, ok := s.Measure(opt.WarmupTx, opt.MeasureTx, opt.CycleLimit)
		if !ok {
			return pipeOut{}, fmt.Errorf("pipeline ablation: %s timed out", name)
		}
		afc, _, err := runCell(p, network.AFC, seed, opt)
		if err != nil {
			return pipeOut{}, err
		}
		return pipeOut{
			rp: realistic.TransactionsPerCycle / ideal.TransactionsPerCycle,
			ai: afc.TransactionsPerCycle / ideal.TransactionsPerCycle,
			ar: afc.TransactionsPerCycle / realistic.TransactionsPerCycle,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []PipelineRow
	for ni, name := range names {
		var rp, ai, ar stats.Running
		for si := 0; si < ns; si++ {
			o := outs[ni*ns+si]
			rp.Add(o.rp)
			ai.Add(o.ai)
			ar.Add(o.ar)
		}
		out = append(out, PipelineRow{
			Bench:          name,
			RealisticPerf:  rp.Mean(),
			AFCvsIdeal:     ai.Mean(),
			AFCvsRealistic: ar.Mean(),
		})
	}
	return out, nil
}

// WritePipeline renders the A6 ablation.
func WritePipeline(w io.Writer, rows []PipelineRow) {
	fmt.Fprintln(w, "Ablation A6: ideal (0-cycle VCA) vs. realistic (3-stage) backpressured pipeline")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bench\trealistic/ideal\tAFC/ideal\tAFC/realistic")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n",
			r.Bench, r.RealisticPerf, r.AFCvsIdeal, r.AFCvsRealistic)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// ContentionMetricRow compares where forward switches happen under the
// paper's local contention thresholds versus the rejected
// cumulative-misroute policy (ablation A7, Section III-B): with misroute
// counting, "high contention may be detected in an incorrect network
// region" because a deflected flit trips its threshold only after leaving
// the hot region.
type ContentionMetricRow struct {
	Policy string
	// NearFraction is the fraction of forward switches at routers within
	// two hops of the hotspot.
	NearFraction float64
	// Switches is the total forward-switch count.
	Switches uint64
}

// AblationContentionMetric runs an 8x8 hotspot under both policies.
func AblationContentionMetric(opt Options) []ContentionMetricRow {
	mesh := topology.NewMesh(8, 8)
	sys := config.DefaultWithMesh(mesh)
	hot := mesh.Node(1, 1)
	policies := []struct {
		name      string
		threshold int
	}{
		{"local contention thresholds (paper)", 0},
		{"cumulative misroutes (rejected)", 3},
	}
	type metricOut struct{ near, total uint64 }
	ns := len(opt.Seeds)
	outs, err := runner.Map(len(policies)*ns, opt.pool(), func(i int) (metricOut, error) {
		misroute := policies[i/ns].threshold
		seed := opt.Seeds[i%ns]
		net := opt.newNetwork(network.Config{
			System: sys, Kind: network.AFC, Seed: seed,
			MisrouteThreshold: misroute,
		})
		gen := traffic.NewGenerator(net, traffic.Config{
			Pattern: traffic.Hotspot{Mesh: mesh, Hot: hot, Frac: 0.5},
			Rate:    0.22,
		}, net.RandStream)
		net.AddTicker(gen)
		net.Run(opt.OpenLoopWarmup + opt.OpenLoopMeasure)
		var o metricOut
		for n := 0; n < net.Nodes(); n++ {
			r, ok := net.Router(topology.NodeID(n)).(*core.Router)
			if !ok {
				continue
			}
			f := r.ForwardSwitches()
			o.total += f
			if mesh.Distance(topology.NodeID(n), hot) <= 2 {
				o.near += f
			}
		}
		return o, nil
	})
	if err != nil {
		panic(err) // cells cannot fail; a recovered panic propagates as before
	}
	var out []ContentionMetricRow
	for pi, p := range policies {
		var near, total uint64
		for si := 0; si < ns; si++ {
			near += outs[pi*ns+si].near
			total += outs[pi*ns+si].total
		}
		frac := 0.0
		if total > 0 {
			frac = float64(near) / float64(total)
		}
		out = append(out, ContentionMetricRow{Policy: p.name, NearFraction: frac, Switches: total})
	}
	return out
}

// WriteContentionMetric renders the A7 ablation.
func WriteContentionMetric(w io.Writer, rows []ContentionMetricRow) {
	fmt.Fprintln(w, "Ablation A7: where forward switches fire under an 8x8 hotspot (within 2 hops = correct region)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tswitches\tnear-hotspot fraction")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f%%\n", r.Policy, r.Switches, 100*r.NearFraction)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
