package experiments

import (
	"reflect"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

// detOpt keeps the determinism runs cheap: the point is bit-for-bit
// equality, not paper shapes, so very short windows suffice. Two seeds
// exercise the merge ordering (seed-major aggregation into stats.Running).
func detOpt(parallelism int) Options {
	return Options{
		Seeds:           []int64{1, 2},
		WarmupTx:        200,
		MeasureTx:       600,
		CycleLimit:      5_000_000,
		OpenLoopWarmup:  500,
		OpenLoopMeasure: 1500,
		Parallelism:     parallelism,
	}
}

// TestClosedLoopParallelDeterminism: ClosedLoop at Parallelism 1 (the
// historical serial loop) and Parallelism 8 must produce identical
// Measurement values field-by-field. Each cell owns its network and
// random substreams and cells merge in index order, so the float
// arithmetic happens in the same order regardless of worker count.
func TestClosedLoopParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop runs are slow")
	}
	low, _ := cmp.ByName("water")
	kinds := []network.Kind{network.Backpressured, network.Bless, network.AFC}
	serial, err := ClosedLoop([]cmp.Params{low}, kinds, detOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ClosedLoop([]cmp.Params{low}, kinds, detOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ClosedLoop diverged from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestAblationParallelDeterminism: same bit-for-bit requirement for an
// ablation harness (A4, the cheapest: two runs per cell).
func TestAblationParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop runs are slow")
	}
	widths := []int{1, 2}
	serial, err := AblationEjectWidth(widths, detOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AblationEjectWidth(widths, detOpt(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel AblationEjectWidth diverged from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestSweepParallelDeterminism covers the open-loop path (no error
// return, shared read-only pattern constructor).
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop runs are slow")
	}
	kinds := []network.Kind{network.Bless, network.AFC}
	rates := []float64{0.2, 0.4}
	serial := LatencySweep(kinds, rates, detOpt(1))
	parallel := LatencySweep(kinds, rates, detOpt(8))
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel LatencySweep diverged from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
