// Package ni implements the network interface at each node: packetization
// of messages into flits, per-virtual-network injection queues, and
// MSHR-style reassembly of (possibly out-of-order) flits back into
// packets.
//
// Reassembly is receive-side buffering: per the paper it is provisioned by
// MSHRs, is required for backpressured and backpressureless networks
// alike, and is excluded from network energy. The NI therefore always
// accepts ejected flits.
package ni

import (
	"fmt"
	"math/bits"

	"afcnet/internal/flit"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
)

// Delivered describes a fully reassembled packet handed to the traffic
// layer.
type Delivered struct {
	ID        uint64
	Src, Dst  topology.NodeID
	VN        flit.VN
	Len       int
	Payload   uint64
	CreatedAt uint64
	// NetLatency is delivery cycle minus first-flit injection cycle.
	NetLatency uint64
	// TotalLatency is delivery cycle minus packet creation cycle
	// (includes source queueing — the saturation signal).
	TotalLatency uint64
}

// Handler consumes delivered packets (the closed-loop CMP substrate
// registers one; open-loop traffic only reads the aggregate stats).
type Handler func(now uint64, d Delivered)

// pending is per-packet reassembly state. It is stored by value and
// tracks received sequence numbers in a bitmask (packets are at most 17
// flits; a slice covers the pathological >64 case), so reassembling a
// packet costs no allocations on the delivery path.
type pending struct {
	got         uint64 // bitmask of received seqs, Len <= 64
	gotBig      []bool // fallback for Len > 64
	received    int
	createdAt   uint64
	firstInject uint64
	src         topology.NodeID
	vn          flit.VN
	length      int
	payload     uint64
}

// mark records seq as received, reporting false for a duplicate.
func (p *pending) mark(seq int) bool {
	if p.gotBig != nil {
		if p.gotBig[seq] {
			return false
		}
		p.gotBig[seq] = true
		return true
	}
	bit := uint64(1) << uint(seq)
	if p.got&bit != 0 {
		return false
	}
	p.got |= bit
	return true
}

// NI is the network interface of one node. It implements
// router.LocalSource and router.LocalSink.
//
// The leading fields are the per-cycle working set (the router's
// Peek/Pop/QueuedFlits calls and the wake flag); NIs are normally
// carved from a Slab in ascending node order so those fields of
// adjacent nodes share cache lines during the housekeeping sweep.
type NI struct {
	node topology.NodeID

	queuedFlits int // total across all VN queues, maintained O(1)
	queues      [flit.NumVNs][]*flit.Flit

	// arena, when set, supplies recycled flit blocks for packetization;
	// nil means plain heap allocation (the -nopool reference path).
	arena *flit.Arena
	// cols is the arena's columnar flit bank; delivery gathers a flit's
	// routing metadata through it. Nil (no arena, or columns disabled)
	// falls back to the struct fields inside the accessors.
	cols *flit.Columns
	// ashard, on sharded networks, is the allocation magazine of the
	// shard this NI's node belongs to; packetize and recycle go through
	// it (lock-free shard-local fast path) instead of the serial arena
	// entry points. Nil on serial networks.
	ashard *flit.ArenaShard
	// wake, on sharded networks, points at the owning shard's band-wake
	// flag: enqueueing injection work un-quiesces the band. Nil
	// otherwise.
	wake *bool

	nextPkt uint64

	reassembly map[uint64]pending
	handler    Handler
	ackHook    Handler // network-internal delivery hook (drop-variant ACKs)
	createHook func(flit.Packet)
	// deliveredHook is an extra per-delivery callback alongside the user
	// handler (the scenario layer records per-phase completion-time
	// samples through it). On sharded runs it fires on a worker
	// goroutine during the parallel phase, so it must only touch
	// per-node state. Cleared by Reset, like the user handler.
	deliveredHook Handler

	// Create-hook deferral for the sharded tick: while *createDeferOn is
	// true (the network's parallel phase), SendPacket hands the packet to
	// createDefer — which journals it shard-locally — instead of invoking
	// the user's createHook inline, because that hook (trace recording)
	// writes state shared across shards. The drain replays the journal in
	// serial node order via InvokeCreateHook. Network-owned wiring, like
	// retain and ackHook, so it survives Reset.
	createDeferOn *bool
	createDefer   func(flit.Packet)

	// retained packets for the drop-based backpressureless variant, and
	// the set of already-delivered packet IDs (so stray duplicate flits
	// from retransmitted copies are discarded instead of re-delivered)
	retain    bool
	retained  map[uint64]flit.Packet
	completed map[uint64]struct{}
	epoch     map[uint64]int // current transmission epoch per retained packet
	queued    map[uint64]int // flits of the packet still awaiting injection

	// Stats
	injectedFlits    uint64
	injectedPackets  uint64
	createdPackets   uint64
	deliveredFlits   uint64
	deliveredPackets uint64
	netLatency       *stats.Histogram
	totalLatency     *stats.Histogram
	deflections      *stats.Histogram
	queueLenSum      uint64
	queueLenSamples  uint64

	// Lifetime accounting for the invariant checker. Unlike the stats
	// above these survive ResetStats: conservation must hold over the
	// whole run, warmup included.
	totalInjected  uint64 // flits popped into the network
	totalEjected   uint64 // flits the network handed back via Deliver
	totalCompleted uint64 // ejected flits consumed by completed packets
	totalDiscarded uint64 // ejected flits discarded as duplicates/strays
}

// Slab is a contiguous bank of network interfaces, carved in ascending
// node order (matching the network's housekeeping sweep, and band-major
// for the sharded tick's row bands).
type Slab struct {
	nis  []NI
	next int
}

// NewSlab returns a slab with room for count NIs.
func NewSlab(count int) *Slab {
	return &Slab{nis: make([]NI, count)}
}

// New carves the next NI from the slab and initializes it for node.
func (s *Slab) New(node topology.NodeID) *NI {
	if s.next >= len(s.nis) {
		panic("ni: slab exhausted")
	}
	n := &s.nis[s.next]
	s.next++
	n.node = node
	n.reassembly = make(map[uint64]pending)
	n.retained = make(map[uint64]flit.Packet)
	n.completed = make(map[uint64]struct{})
	n.epoch = make(map[uint64]int)
	n.queued = make(map[uint64]int)
	n.netLatency = stats.NewHistogram(4096)
	n.totalLatency = stats.NewHistogram(4096)
	n.deflections = stats.NewHistogram(4096)
	return n
}

// New returns the network interface for node (a slab of one).
func New(node topology.NodeID) *NI {
	return NewSlab(1).New(node)
}

// Node returns the node this NI serves.
func (n *NI) Node() topology.NodeID { return n.node }

// SetArena attaches the flit arena used for packetization. The network
// sets it at construction; passing nil selects heap allocation. The
// arena's columnar banks (if enabled) come along for delivery-side reads.
func (n *NI) SetArena(a *flit.Arena) {
	n.arena = a
	n.cols = a.Columns()
}

// SetArenaShard routes this NI's packetize/recycle traffic through a
// shard-local arena magazine (see flit.ArenaShard). The network sets it
// when building a sharded tick; nil keeps the serial arena paths.
func (n *NI) SetArenaShard(s *flit.ArenaShard) { n.ashard = s }

// SetWakeFlag points the NI at its shard's band-wake flag: any enqueue
// of injection work sets it, so a quiescence-skipped band is re-ticked
// the next cycle. Network-owned wiring; nil disables.
func (n *NI) SetWakeFlag(w *bool) { n.wake = w }

// packetize expands p through the shard magazine when one is attached,
// through the serial arena otherwise.
func (n *NI) packetize(p flit.Packet) []*flit.Flit {
	if n.ashard != nil {
		return n.ashard.Packetize(p)
	}
	return n.arena.Packetize(p)
}

// SetHandler registers the delivered-packet callback.
func (n *NI) SetHandler(h Handler) { n.handler = h }

// SetDeliveredHook registers an additional delivered-packet callback,
// independent of the user handler (see the deliveredHook field for the
// shard-safety contract). Pass nil to clear.
func (n *NI) SetDeliveredHook(h Handler) { n.deliveredHook = h }

// SetAckHook registers a network-internal delivery callback, invoked in
// addition to the user handler. The drop-based variant uses it to ACK the
// source so it stops retransmitting (retention is at the source; delivery
// happens at the destination).
func (n *NI) SetAckHook(h Handler) { n.ackHook = h }

// SetCreateHook registers a callback invoked for every packet handed to
// this NI (trace recording).
func (n *NI) SetCreateHook(h func(flit.Packet)) { n.createHook = h }

// SetCreateDefer wires the sharded-tick deferral of the create hook:
// while *active, packets are journaled through deferFn instead of
// reaching the hook inline. The network owns this wiring.
func (n *NI) SetCreateDefer(active *bool, deferFn func(flit.Packet)) {
	n.createDeferOn = active
	n.createDefer = deferFn
}

// InvokeCreateHook replays a deferred create against the registered
// hook; the network's drain calls it in serial node order. No-op when
// no hook is registered.
func (n *NI) InvokeCreateHook(p flit.Packet) {
	if n.createHook != nil {
		n.createHook(p)
	}
}

// ClearRetained drops the retransmission state of a packet (called on the
// source NI when the destination ACKs delivery).
func (n *NI) ClearRetained(packetID uint64) {
	delete(n.retained, packetID)
	delete(n.epoch, packetID)
	delete(n.queued, packetID)
}

// SetRetain controls whether packets are retained until delivery for
// retransmission (used by the drop-based backpressureless variant).
func (n *NI) SetRetain(retain bool) { n.retain = retain }

// SendPacket packetizes and enqueues a packet for injection, returning its
// ID. length is the flit count; vn selects the virtual network.
func (n *NI) SendPacket(now uint64, dst topology.NodeID, vn flit.VN, length int, payload uint64) uint64 {
	if length < 1 {
		panic(fmt.Sprintf("ni: packet length must be >= 1, got %d", length))
	}
	if dst == n.node {
		panic("ni: self-addressed packet")
	}
	n.nextPkt++
	p := flit.Packet{
		ID:        uint64(n.node)<<40 | n.nextPkt,
		Src:       n.node,
		Dst:       dst,
		VN:        vn,
		Len:       length,
		CreatedAt: now,
		Payload:   payload,
	}
	n.createdPackets++
	if n.createHook != nil {
		if n.createDeferOn != nil && *n.createDeferOn {
			n.createDefer(p)
		} else {
			n.createHook(p)
		}
	}
	if n.retain {
		n.retained[p.ID] = p
		n.epoch[p.ID] = 0
		n.queued[p.ID] = p.Len
	}
	n.enqueue(p)
	return p.ID
}

func (n *NI) enqueue(p flit.Packet) {
	fs := n.packetize(p)
	n.queues[p.VN] = append(n.queues[p.VN], fs...)
	n.queuedFlits += len(fs)
	if n.wake != nil {
		*n.wake = true
	}
}

// RetransmitStatus reports the outcome of a Retransmit call.
type RetransmitStatus uint8

// Retransmit outcomes.
const (
	// RetransmitDone: the packet was already delivered; nothing to do.
	RetransmitDone RetransmitStatus = iota
	// Retransmitted: a fresh copy (new epoch) was enqueued.
	Retransmitted
	// RetransmitDeferred: flits of the current copy are still awaiting
	// injection; the caller must retry later or the packet can stall
	// (its drop NACKs were already consumed).
	RetransmitDeferred
)

// Retransmit re-enqueues a retained packet after a drop NACK, starting a
// new transmission epoch. At most one copy per packet is outstanding: the
// call is deferred while the current copy is still awaiting injection
// (the source holds the packet until the current transmission resolves).
// Retransmitted flits keep the original creation time, so total latency
// reflects the drop penalty.
func (n *NI) Retransmit(now uint64, packetID uint64) RetransmitStatus {
	p, ok := n.retained[packetID]
	if !ok {
		return RetransmitDone
	}
	if n.queued[packetID] > 0 {
		return RetransmitDeferred
	}
	n.epoch[packetID]++
	e := n.epoch[packetID]
	fs := n.packetize(p)
	for _, f := range fs {
		f.Retransmits = e
	}
	n.queued[packetID] = p.Len
	n.queues[p.VN] = append(n.queues[p.VN], fs...)
	n.queuedFlits += len(fs)
	if n.wake != nil {
		*n.wake = true
	}
	return Retransmitted
}

// Epoch returns the current transmission epoch of a retained packet, or
// -1 once it has been delivered. NACKs carrying an older epoch are stale
// (they refer to flits of a superseded copy) and must be ignored.
func (n *NI) Epoch(packetID uint64) int {
	if _, ok := n.retained[packetID]; !ok {
		return -1
	}
	return n.epoch[packetID]
}

// Peek implements router.LocalSource.
func (n *NI) Peek(vn flit.VN) *flit.Flit {
	q := n.queues[vn]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// Pop implements router.LocalSource. The popped flit is stamped with its
// injection cycle; callers must only pop flits they immediately inject.
func (n *NI) Pop(vn flit.VN) *flit.Flit {
	q := n.queues[vn]
	if len(q) == 0 {
		return nil
	}
	f := q[0]
	// Slide instead of re-slicing so the backing array is reused.
	copy(q, q[1:])
	n.queues[vn] = q[:len(q)-1]
	n.queuedFlits--
	if n.retain {
		if c := n.queued[f.PacketID]; c > 0 {
			n.queued[f.PacketID] = c - 1
		}
	}
	n.injectedFlits++
	n.totalInjected++
	if f.Head() {
		n.injectedPackets++
	}
	return f
}

// StampInjection records the flit's entry into the network. Routers call
// it at the injection cycle (separate from Pop so tests can pop without
// injecting).
func (n *NI) StampInjection(now uint64, f *flit.Flit) { f.SetInjected(now) }

// Deliver implements router.LocalSink: accept an ejected flit, reassemble,
// and hand completed packets to the handler. Ejection consumes the flit —
// reassembly retains only packet metadata — so the flit is recycled to
// the arena on every path out of delivery.
func (n *NI) Deliver(now uint64, f *flit.Flit) {
	n.deliver(now, f)
	if n.ashard != nil {
		n.ashard.Recycle(f)
	} else {
		flit.Recycle(f)
	}
}

func (n *NI) deliver(now uint64, f *flit.Flit) {
	// Gather the flit's routing metadata up front — through the columnar
	// banks when the flit has a row there, through the struct otherwise.
	pid := n.cols.FlitPacketID(f)
	length := n.cols.FlitLen(f)
	injectedAt := n.cols.FlitAge(f)
	if n.cols.FlitDst(f) != n.node {
		panic(fmt.Sprintf("ni: node %d received flit for %d: %v", n.node, f.Dst, f))
	}
	n.totalEjected++
	if n.retain {
		if _, done := n.completed[pid]; done {
			n.totalDiscarded++
			return // stray flit of a retransmitted, already-delivered packet
		}
	}
	n.deliveredFlits++
	n.deflections.Add(uint64(n.cols.FlitDeflections(f)))
	p, ok := n.reassembly[pid]
	if !ok {
		p = pending{
			createdAt:   n.cols.FlitCreatedAt(f),
			firstInject: injectedAt,
			src:         n.cols.FlitSrc(f),
			vn:          n.cols.FlitVN(f),
			length:      length,
			payload:     n.cols.FlitPayload(f),
		}
		if length > 64 {
			p.gotBig = make([]bool, length)
		}
	}
	if !p.mark(n.cols.FlitSeq(f)) {
		// Duplicate delivery can only happen with retransmission after a
		// partially-delivered drop; ignore the duplicate flit.
		n.totalDiscarded++
		return
	}
	p.received++
	if injectedAt < p.firstInject {
		p.firstInject = injectedAt
	}
	if p.received < p.length {
		n.reassembly[pid] = p
		return
	}
	n.totalCompleted += uint64(p.length)
	delete(n.reassembly, pid)
	delete(n.retained, pid)
	if n.retain {
		n.completed[pid] = struct{}{}
		delete(n.epoch, pid)
		delete(n.queued, pid)
	}
	n.deliveredPackets++
	d := Delivered{
		ID:           pid,
		Src:          p.src,
		Dst:          n.node,
		VN:           p.vn,
		Len:          p.length,
		Payload:      p.payload,
		CreatedAt:    p.createdAt,
		NetLatency:   now - p.firstInject,
		TotalLatency: now - p.createdAt,
	}
	n.netLatency.Add(d.NetLatency)
	n.totalLatency.Add(d.TotalLatency)
	if n.deliveredHook != nil {
		n.deliveredHook(now, d)
	}
	if n.ackHook != nil {
		n.ackHook(now, d)
	}
	if n.handler != nil {
		n.handler(now, d)
	}
}

// SampleQueues records the current injection-queue occupancy (called once
// per cycle by the network for average-occupancy stats).
func (n *NI) SampleQueues() {
	n.queueLenSum += uint64(n.queuedFlits)
	n.queueLenSamples++
}

// SampleQueuesIdle records k consecutive empty-queue samples, identical
// to k SampleQueues calls with nothing queued. The active-set kernel
// uses it to fast-forward skipped housekeeping cycles.
func (n *NI) SampleQueuesIdle(k uint64) {
	n.queueLenSamples += k
}

// QueueLen returns the flits currently waiting for injection.
func (n *NI) QueueLen() int { return n.queuedFlits }

// QueuedFlits implements router.QueuedCounter: the O(1) total of flits
// waiting for injection across all virtual networks.
func (n *NI) QueuedFlits() int { return n.queuedFlits }

// MeanQueueLen returns the average sampled injection-queue occupancy.
func (n *NI) MeanQueueLen() float64 {
	if n.queueLenSamples == 0 {
		return 0
	}
	return float64(n.queueLenSum) / float64(n.queueLenSamples)
}

// InjectedFlits returns the number of flits injected into the network.
func (n *NI) InjectedFlits() uint64 { return n.injectedFlits }

// InjectedPackets returns the number of packets whose head flit entered
// the network.
func (n *NI) InjectedPackets() uint64 { return n.injectedPackets }

// CreatedPackets returns the number of packets handed to the NI.
func (n *NI) CreatedPackets() uint64 { return n.createdPackets }

// DeliveredPackets returns the number of fully reassembled packets at this
// node.
func (n *NI) DeliveredPackets() uint64 { return n.deliveredPackets }

// DeliveredFlits returns the number of flits ejected at this node.
func (n *NI) DeliveredFlits() uint64 { return n.deliveredFlits }

// PendingReassembly returns how many packets are partially received.
func (n *NI) PendingReassembly() int { return len(n.reassembly) }

// NetLatency returns the histogram of network latencies (injection to
// delivery) of packets delivered at this node.
func (n *NI) NetLatency() *stats.Histogram { return n.netLatency }

// TotalLatency returns the histogram of total latencies (creation to
// delivery, source queueing included).
func (n *NI) TotalLatency() *stats.Histogram { return n.totalLatency }

// Deflections returns the per-delivered-flit misroute histogram — the
// observable behind the probabilistic livelock-freedom argument
// (Section III-F): the tail must stay bounded even at high load.
func (n *NI) Deflections() *stats.Histogram { return n.deflections }

// TotalInjectedFlits returns the lifetime count of flits popped into the
// network. Unlike InjectedFlits it is never reset.
func (n *NI) TotalInjectedFlits() uint64 { return n.totalInjected }

// TotalEjectedFlits returns the lifetime count of flits the network
// ejected at this node. Unlike DeliveredFlits it is never reset.
func (n *NI) TotalEjectedFlits() uint64 { return n.totalEjected }

// CheckReassembly verifies the internal consistency of the reassembly
// state: every pending packet's bitmask agrees with its received count,
// no out-of-range sequence bit is set, and the lifetime ejected flits are
// fully accounted as completed, discarded, or still pending. The
// invariant checker calls it; it returns the first inconsistency found.
func (n *NI) CheckReassembly() error {
	var pendingFlits uint64
	for id, p := range n.reassembly {
		if p.received < 1 || p.received >= p.length {
			return fmt.Errorf("packet %#x pending with %d of %d flits", id, p.received, p.length)
		}
		got := 0
		if p.gotBig != nil {
			for _, b := range p.gotBig {
				if b {
					got++
				}
			}
		} else {
			got = bits.OnesCount64(p.got)
			if p.length < 64 && p.got>>uint(p.length) != 0 {
				return fmt.Errorf("packet %#x has sequence bits beyond length %d (mask %#x)", id, p.length, p.got)
			}
		}
		if got != p.received {
			return fmt.Errorf("packet %#x marked %d sequences but counted %d", id, got, p.received)
		}
		pendingFlits += uint64(p.received)
	}
	if want := n.totalCompleted + n.totalDiscarded + pendingFlits; n.totalEjected != want {
		return fmt.Errorf("ejected %d flits but accounted %d (completed %d + discarded %d + pending %d)",
			n.totalEjected, want, n.totalCompleted, n.totalDiscarded, pendingFlits)
	}
	if !n.retain && n.totalDiscarded != 0 {
		return fmt.Errorf("discarded %d flits without retransmission in play", n.totalDiscarded)
	}
	return nil
}

// ResetStats clears counters and histograms (used to discard warmup)
// without touching in-flight state. Histograms are reset in place so
// their backing arrays survive into the measurement window.
func (n *NI) ResetStats() {
	n.injectedFlits = 0
	n.injectedPackets = 0
	n.createdPackets = 0
	n.deliveredFlits = 0
	n.deliveredPackets = 0
	n.netLatency.Reset()
	n.totalLatency.Reset()
	n.deflections.Reset()
	n.queueLenSum = 0
	n.queueLenSamples = 0
}

// Reset rewinds the NI to its freshly constructed state, keeping the
// queue backing arrays, map storage, and histogram capacity. The retain
// flag and ack hook are network-owned configuration and survive; the
// user handler and create hook are cleared — whoever reattaches the
// traffic layer registers them again, exactly as on a fresh build.
func (n *NI) Reset() {
	n.nextPkt = 0
	for vn := range n.queues {
		n.queues[vn] = n.queues[vn][:0]
	}
	n.queuedFlits = 0
	clear(n.reassembly)
	n.handler = nil
	n.createHook = nil
	n.deliveredHook = nil
	clear(n.retained)
	clear(n.completed)
	clear(n.epoch)
	clear(n.queued)
	n.ResetStats()
	n.totalInjected = 0
	n.totalEjected = 0
	n.totalCompleted = 0
	n.totalDiscarded = 0
}
