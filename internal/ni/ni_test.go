package ni

import (
	"math/rand"
	"testing"
	"testing/quick"

	"afcnet/internal/flit"
)

func TestPacketizationAndQueues(t *testing.T) {
	n := New(0)
	n.SendPacket(10, 3, flit.VNData, 4, 77)
	if n.QueueLen() != 4 {
		t.Fatalf("queue len = %d, want 4", n.QueueLen())
	}
	for i := 0; i < 4; i++ {
		f := n.Pop(flit.VNData)
		if f == nil || f.Seq != i || f.Dst != 3 || f.CreatedAt != 10 || f.Payload != 77 {
			t.Fatalf("flit %d wrong: %v", i, f)
		}
	}
	if n.Pop(flit.VNData) != nil {
		t.Error("pop from empty queue should be nil")
	}
	if n.InjectedFlits() != 4 || n.InjectedPackets() != 1 {
		t.Errorf("injected counts: %d flits, %d packets", n.InjectedFlits(), n.InjectedPackets())
	}
}

func TestQueuesArePerVN(t *testing.T) {
	n := New(2)
	n.SendPacket(0, 0, flit.VNReq, 1, 0)
	n.SendPacket(0, 0, flit.VNData, 2, 0)
	if n.Peek(flit.VNResp) != nil {
		t.Error("VNResp queue should be empty")
	}
	if f := n.Peek(flit.VNReq); f == nil || f.VN != flit.VNReq {
		t.Error("VNReq head missing")
	}
	if f := n.Peek(flit.VNData); f == nil || f.VN != flit.VNData {
		t.Error("VNData head missing")
	}
}

func TestSelfAddressedPanics(t *testing.T) {
	n := New(4)
	defer func() {
		if recover() == nil {
			t.Error("self-addressed packet did not panic")
		}
	}()
	n.SendPacket(0, 4, flit.VNReq, 1, 0)
}

// TestReassemblyAnyOrder is the property deflection routing depends on:
// flits arriving in any permutation reassemble into exactly one delivered
// packet with correct latency accounting.
func TestReassemblyAnyOrder(t *testing.T) {
	f := func(permSeed int64, lenRaw uint8) bool {
		l := int(lenRaw)%20 + 1
		src := New(1)
		dst := New(0)
		var got []Delivered
		dst.SetHandler(func(_ uint64, d Delivered) { got = append(got, d) })
		src.SendPacket(100, 0, flit.VNData, l, 5)
		flits := make([]*flit.Flit, 0, l)
		for i := 0; i < l; i++ {
			fl := src.Pop(flit.VNData)
			fl.InjectedAt = 100 + uint64(i)
			flits = append(flits, fl)
		}
		rng := rand.New(rand.NewSource(permSeed))
		rng.Shuffle(len(flits), func(a, b int) { flits[a], flits[b] = flits[b], flits[a] })
		for i, fl := range flits {
			dst.Deliver(200+uint64(i), fl)
		}
		if len(got) != 1 {
			return false
		}
		d := got[0]
		deliveredAt := 200 + uint64(l-1)
		return d.Len == l && d.Src == 1 && d.Payload == 5 &&
			d.TotalLatency == deliveredAt-100 &&
			d.NetLatency == deliveredAt-100 && // first flit injected at 100
			dst.PendingReassembly() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedReassembly(t *testing.T) {
	src := New(1)
	dst := New(0)
	delivered := 0
	dst.SetHandler(func(_ uint64, d Delivered) { delivered++ })
	src.SendPacket(0, 0, flit.VNData, 3, 0)
	src.SendPacket(0, 0, flit.VNData, 3, 0)
	var a, b []*flit.Flit
	for i := 0; i < 3; i++ {
		a = append(a, src.Pop(flit.VNData))
	}
	for i := 0; i < 3; i++ {
		b = append(b, src.Pop(flit.VNData))
	}
	// interleave across packets, out of order within packets
	order := []*flit.Flit{a[2], b[0], a[0], b[2], b[1], a[1]}
	for i, fl := range order {
		dst.Deliver(uint64(i), fl)
	}
	if delivered != 2 || dst.DeliveredPackets() != 2 {
		t.Errorf("delivered = %d packets", delivered)
	}
}

func TestWrongDestinationPanics(t *testing.T) {
	src := New(1)
	dst := New(0)
	src.SendPacket(0, 3, flit.VNReq, 1, 0)
	fl := src.Pop(flit.VNReq)
	defer func() {
		if recover() == nil {
			t.Error("misdelivered flit did not panic")
		}
	}()
	dst.Deliver(5, fl)
}

func TestRetransmitLifecycle(t *testing.T) {
	src := New(1)
	dst := New(0)
	src.SetRetain(true)
	id := src.SendPacket(0, 0, flit.VNReq, 1, 0)

	if src.Epoch(id) != 0 {
		t.Fatalf("initial epoch = %d", src.Epoch(id))
	}
	// Deferred while the original copy is still queued.
	if st := src.Retransmit(5, id); st != RetransmitDeferred {
		t.Fatalf("retransmit while queued = %v, want deferred", st)
	}
	f0 := src.Pop(flit.VNReq)
	if st := src.Retransmit(6, id); st != Retransmitted {
		t.Fatalf("retransmit after drain = %v", st)
	}
	if src.Epoch(id) != 1 {
		t.Fatalf("epoch after retransmit = %d", src.Epoch(id))
	}
	f1 := src.Pop(flit.VNReq)
	if f1.Retransmits != 1 {
		t.Fatalf("retransmitted flit epoch = %d", f1.Retransmits)
	}

	// The new copy delivers; the stale original must be discarded.
	dst.SetRetain(true)
	dst.Deliver(10, f1)
	if dst.DeliveredPackets() != 1 {
		t.Fatal("packet not delivered")
	}
	dst.Deliver(11, f0)
	if dst.DeliveredPackets() != 1 {
		t.Error("stale duplicate re-delivered the packet")
	}
	// After delivery + ack, retransmission is a no-op.
	src.ClearRetained(id)
	if src.Epoch(id) != -1 {
		t.Errorf("epoch after clear = %d, want -1", src.Epoch(id))
	}
	if st := src.Retransmit(20, id); st != RetransmitDone {
		t.Errorf("retransmit after delivery = %v", st)
	}
}

func TestStatsAndReset(t *testing.T) {
	src := New(1)
	dst := New(0)
	src.SendPacket(0, 0, flit.VNReq, 1, 0)
	fl := src.Pop(flit.VNReq)
	fl.InjectedAt = 2
	dst.Deliver(9, fl)
	if dst.NetLatency().Mean() != 7 {
		t.Errorf("net latency = %g, want 7", dst.NetLatency().Mean())
	}
	if dst.TotalLatency().Mean() != 9 {
		t.Errorf("total latency = %g, want 9", dst.TotalLatency().Mean())
	}
	src.SampleQueues()
	dst.ResetStats()
	src.ResetStats()
	if src.InjectedFlits() != 0 || dst.DeliveredPackets() != 0 || src.MeanQueueLen() != 0 {
		t.Error("ResetStats left residuals")
	}
}

func TestQueueSampling(t *testing.T) {
	n := New(0)
	n.SendPacket(0, 1, flit.VNData, 4, 0)
	n.SampleQueues() // 4 queued
	n.Pop(flit.VNData)
	n.SampleQueues() // 3 queued
	if got := n.MeanQueueLen(); got != 3.5 {
		t.Errorf("mean queue length = %g, want 3.5", got)
	}
}

func TestDeflectionHistogram(t *testing.T) {
	src := New(1)
	dst := New(0)
	src.SendPacket(0, 0, flit.VNReq, 1, 0)
	f := src.Pop(flit.VNReq)
	f.Deflections = 7
	dst.Deliver(5, f)
	if dst.Deflections().Max() != 7 {
		t.Errorf("deflection histogram max = %d, want 7", dst.Deflections().Max())
	}
}
