package network

import (
	"testing"

	"afcnet/internal/topology"
)

// TestRouteTablesAliasSharedStorage is the memory guard on the shared
// route tables: every router kind's per-destination DOR table and
// neighbor-direction list must be views into the network's one
// topology.Tables backing, not private copies. The check is slice
// identity (same first element address), so a regression that quietly
// rebuilds a private table — reintroducing O(N²) memory per router,
// gigabytes at 64×64 — fails here on a 3×3 mesh.
func TestRouteTablesAliasSharedStorage(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet(t, kind, 3)
			for node := 0; node < n.Nodes(); node++ {
				id := topology.NodeID(node)
				r := n.Router(id)
				rt, ok := r.(interface {
					DORTable() []topology.Dir
					NeighborDirs() []topology.Dir
				})
				if !ok {
					t.Fatalf("node %d: %T exposes no route-table accessors", node, r)
				}
				want := n.tables.Routes(id)
				dor := rt.DORTable()
				if len(dor) != len(want.DOR) || &dor[0] != &want.DOR[0] {
					t.Errorf("node %d: DOR table is a private copy, not a view of the shared tables", node)
				}
				wantNbr := n.tables.Neighbors(id)
				nbr := rt.NeighborDirs()
				if len(nbr) != len(wantNbr) || &nbr[0] != &wantNbr[0] {
					t.Errorf("node %d: neighbor list is a private copy, not a view of the shared tables", node)
				}
				// AFC routers carry a second consumer of the same table:
				// their embedded deflector must alias it too, not copy it.
				if d, ok := r.(interface{ DeflectorDORTable() []topology.Dir }); ok {
					dd := d.DeflectorDORTable()
					if len(dd) != len(want.DOR) || &dd[0] != &want.DOR[0] {
						t.Errorf("node %d: deflector DOR table is a private copy, not a view of the shared tables", node)
					}
				}
			}
		})
	}
}
