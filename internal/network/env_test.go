package network

import "testing"

// TestEnvFlags pins the shared semantics of the AFCSIM_DENSE and
// AFCSIM_NOPOOL environment switches: empty and the usual "off"
// spellings disable, anything else enables.
func TestEnvFlags(t *testing.T) {
	cases := []struct {
		val  string
		want bool
	}{
		{"", false},
		{"0", false},
		{"false", false},
		{"no", false},
		{"off", false},
		{"1", true},
		{"true", true},
		{"yes", true},
	}
	for _, c := range cases {
		t.Setenv(DenseEnvVar, c.val)
		if got := DenseFromEnv(); got != c.want {
			t.Errorf("DenseFromEnv with %s=%q = %v, want %v", DenseEnvVar, c.val, got, c.want)
		}
		t.Setenv(NoPoolEnvVar, c.val)
		if got := NoPoolFromEnv(); got != c.want {
			t.Errorf("NoPoolFromEnv with %s=%q = %v, want %v", NoPoolEnvVar, c.val, got, c.want)
		}
	}
}
