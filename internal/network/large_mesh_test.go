package network_test

import (
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// TestLargeMesh16x16Smoke is the large-radix smoke cell `make ci` runs in
// short mode: a 16x16 AFC network (the regime the columnar flit banks
// target; the paper's own evaluation stops at 3x3) under brief
// sub-saturation uniform load, with the invariant checker attached, must
// deliver and drain without losing a flit. The cycle counts are kept
// small so the cell stays cheap enough to run on every CI invocation.
func TestLargeMesh16x16Smoke(t *testing.T) {
	largeMesh16x16Smoke(t, 0)
}

// TestLargeMesh16x16ShardedSmoke is the same cell through the sharded
// tick at 8 shards (two rows per band): every boundary behavior — staged
// pipes, effect journals, the parallel arena — under the checker, cheap
// enough for every CI invocation. TestShardedEqualsSerial proves
// bit-equality to serial exhaustively; this cell just keeps the sharded
// path exercised in short mode.
func TestLargeMesh16x16ShardedSmoke(t *testing.T) {
	largeMesh16x16Smoke(t, 8)
}

func largeMesh16x16Smoke(t *testing.T, shards int) {
	largeMeshSmoke(t, 16, 0.08, 1500, shards)
}

// TestLargeMesh32x32Smoke scales the smoke cell to a 32x32 mesh (1024
// nodes) — the first record at this size, matching the
// BenchmarkKernelStep32x32 regime (0.04 flits/node/cycle: the bigger
// mesh's bisection limit halves again). Too heavy for -short CI runs;
// `make smoke-32x32` runs it on demand.
func TestLargeMesh32x32Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("32x32 cell is too heavy for -short")
	}
	largeMeshSmoke(t, 32, 0.04, 2500, 0)
}

// TestLargeMesh32x32ShardedSmoke is the 32x32 cell through the sharded
// tick at 8 shards (four rows per band), checker attached: every
// boundary behavior at the coarsest parallel grain the repo records.
func TestLargeMesh32x32ShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("32x32 cell is too heavy for -short")
	}
	largeMeshSmoke(t, 32, 0.04, 2500, 8)
}

// TestLargeMesh64x64Smoke is the kilonode record cell: a 64x64 AFC
// network (4096 nodes), the regime the slab-resident router state
// targets, under brief sub-saturation uniform load (0.02
// flits/node/cycle — the bisection limit halves again from 32x32) with
// the invariant checker attached. It runs in short mode so `make
// smoke-64x64` can gate CI; the cycle count is kept low because a
// serial 64x64 cycle costs ~4x the 32x32 cell's.
func TestLargeMesh64x64Smoke(t *testing.T) {
	largeMeshSmoke(t, 64, 0.02, 1200, 0)
}

// TestLargeMesh64x64ShardedSmoke is the 64x64 cell through the sharded
// tick at 8 shards (eight rows per band), checker attached: the
// coarsest parallel grain the repo records, where each band's working
// set spans 512 routers and the slab layout matters most.
func TestLargeMesh64x64ShardedSmoke(t *testing.T) {
	largeMeshSmoke(t, 64, 0.02, 1200, 8)
}

func largeMeshSmoke(t *testing.T, side int, rate float64, cycles uint64, shards int) {
	n := network.New(network.Config{
		Kind: network.AFC, Seed: 7, MeterEnergy: true, Shards: shards,
		System: config.DefaultWithMesh(topology.NewMesh(side, side)),
	})
	defer n.Close()
	check.Attach(n)
	gen := traffic.NewGenerator(n, traffic.Config{
		Pattern: traffic.Uniform{Mesh: n.Mesh()},
		Rate:    rate,
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(cycles)
	if n.CreatedPackets() == 0 || n.DeliveredPackets() == 0 {
		t.Fatalf("%dx%d cell moved no traffic: created %d, delivered %d",
			side, side, n.CreatedPackets(), n.DeliveredPackets())
	}
	gen.Stop()
	if !n.RunUntil(n.Drained, 100_000) {
		t.Fatalf("%dx%d network failed to drain: delivered %d/%d",
			side, side, n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("%dx%d cell lost packets: %d/%d",
			side, side, n.DeliveredPackets(), n.CreatedPackets())
	}
}
