package network_test

import (
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// TestLargeMesh16x16Smoke is the large-radix smoke cell `make ci` runs in
// short mode: a 16x16 AFC network (the regime the columnar flit banks
// target; the paper's own evaluation stops at 3x3) under brief
// sub-saturation uniform load, with the invariant checker attached, must
// deliver and drain without losing a flit. The cycle counts are kept
// small so the cell stays cheap enough to run on every CI invocation.
func TestLargeMesh16x16Smoke(t *testing.T) {
	largeMesh16x16Smoke(t, 0)
}

// TestLargeMesh16x16ShardedSmoke is the same cell through the sharded
// tick at 8 shards (two rows per band): every boundary behavior — staged
// pipes, effect journals, the parallel arena — under the checker, cheap
// enough for every CI invocation. TestShardedEqualsSerial proves
// bit-equality to serial exhaustively; this cell just keeps the sharded
// path exercised in short mode.
func TestLargeMesh16x16ShardedSmoke(t *testing.T) {
	largeMesh16x16Smoke(t, 8)
}

func largeMesh16x16Smoke(t *testing.T, shards int) {
	n := network.New(network.Config{
		Kind: network.AFC, Seed: 7, MeterEnergy: true, Shards: shards,
		System: config.DefaultWithMesh(topology.NewMesh(16, 16)),
	})
	defer n.Close()
	check.Attach(n)
	gen := traffic.NewGenerator(n, traffic.Config{
		Pattern: traffic.Uniform{Mesh: n.Mesh()},
		Rate:    0.08,
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(1500)
	if n.CreatedPackets() == 0 || n.DeliveredPackets() == 0 {
		t.Fatalf("16x16 cell moved no traffic: created %d, delivered %d",
			n.CreatedPackets(), n.DeliveredPackets())
	}
	gen.Stop()
	if !n.RunUntil(n.Drained, 100_000) {
		t.Fatalf("16x16 network failed to drain: delivered %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("16x16 cell lost packets: %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
}
