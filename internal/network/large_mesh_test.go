package network_test

import (
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// TestLargeMesh16x16Smoke is the large-radix smoke cell `make ci` runs in
// short mode: a 16x16 AFC network (the regime the columnar flit banks
// target; the paper's own evaluation stops at 3x3) under brief
// sub-saturation uniform load, with the invariant checker attached, must
// deliver and drain without losing a flit. The cycle counts are kept
// small so the cell stays cheap enough to run on every CI invocation.
func TestLargeMesh16x16Smoke(t *testing.T) {
	n := network.New(network.Config{
		Kind: network.AFC, Seed: 7, MeterEnergy: true,
		System: config.DefaultWithMesh(topology.NewMesh(16, 16)),
	})
	check.Attach(n)
	gen := traffic.NewGenerator(n, traffic.Config{
		Pattern: traffic.Uniform{Mesh: n.Mesh()},
		Rate:    0.08,
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(1500)
	if n.CreatedPackets() == 0 || n.DeliveredPackets() == 0 {
		t.Fatalf("16x16 cell moved no traffic: created %d, delivered %d",
			n.CreatedPackets(), n.DeliveredPackets())
	}
	gen.Stop()
	if !n.RunUntil(n.Drained, 100_000) {
		t.Fatalf("16x16 network failed to drain: delivered %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("16x16 cell lost packets: %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
}
