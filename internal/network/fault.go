package network

import (
	"fmt"

	"afcnet/internal/router"
	"afcnet/internal/topology"
)

// Fault injection: the scenario layer (internal/scenario) kills links
// and routers mid-run and throttles link capacity over duty windows. All
// mutators here must be called from serial ticker context — the scenario
// engine is registered with AddTicker and therefore runs after the
// router bank, outside any sharded parallel phase — so no journaling is
// needed even on sharded runs.
//
// Semantics per element:
//
//   - Dead link: both directed halves stop carrying data, credits and
//     control. Flits already in flight on the pipe when it dies are
//     stranded there forever (they stay visible to the pipe's in-flight
//     scans, so conservation ledgers still balance). The invariant
//     checker excludes dead edges from its credit ledgers.
//   - Dead router: frozen entirely — Tick and FastForward no-op and
//     Quiescent reports true, so held flits stay parked but enumerable.
//     All of its links die with it.
//   - Throttled link: data blocked only; credits and control still flow,
//     so credit ledgers hold without checker exclusions. Reversible —
//     the scenario engine toggles it at duty-window boundaries.

// faultEdge is one directed half of a mesh link, identified by the
// sending router and its output direction.
type faultEdge struct {
	Node topology.NodeID
	Dir  topology.Dir
}

// faultable returns node's router as a fault-injection target. Every
// kind the network constructs implements router.FaultInjectable.
func (n *Network) faultable(node topology.NodeID) router.FaultInjectable {
	fi, ok := n.routers[node].(router.FaultInjectable)
	if !ok {
		panic(fmt.Sprintf("network: router kind %T at node %d does not support fault injection", n.routers[node], node))
	}
	return fi
}

// KillLink permanently kills the bidirectional link between node and its
// neighbor in direction d. A no-op at mesh boundaries (no link) and for
// already-dead links; idempotent.
func (n *Network) KillLink(node topology.NodeID, d topology.Dir) {
	nb, ok := n.mesh.Neighbor(node, d)
	if !ok {
		return
	}
	n.killHalf(node, d)
	n.killHalf(nb, d.Opposite())
}

func (n *Network) killHalf(node topology.NodeID, d topology.Dir) {
	if n.deadLinks == nil {
		n.deadLinks = make(map[faultEdge]bool)
	}
	e := faultEdge{Node: node, Dir: d}
	if n.deadLinks[e] {
		return
	}
	n.deadLinks[e] = true
	n.haveFault = true
	n.faultable(node).SetPortDead(d)
	n.wakeShards()
}

// KillRouter permanently freezes node's router and kills all of its
// links. Idempotent.
func (n *Network) KillRouter(node topology.NodeID) {
	if n.deadNodes == nil {
		n.deadNodes = make([]bool, n.mesh.Nodes())
	}
	if n.deadNodes[node] {
		return
	}
	n.deadNodes[node] = true
	n.haveFault = true
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		n.KillLink(node, d)
	}
	n.faultable(node).SetDead()
	n.wakeShards()
}

// SetLinkBlocked sets (or clears) the throttled state of both directions
// of the link between node and its neighbor in direction d: data stops
// flowing but credits and control still do. Dead link halves are left
// dead — unblocking never resurrects a killed link. A no-op at mesh
// boundaries.
func (n *Network) SetLinkBlocked(node topology.NodeID, d topology.Dir, blocked bool) {
	nb, ok := n.mesh.Neighbor(node, d)
	if !ok {
		return
	}
	if !n.LinkDead(node, d) {
		n.faultable(node).SetPortBlocked(d, blocked)
	}
	if opp := d.Opposite(); !n.LinkDead(nb, opp) {
		n.faultable(nb).SetPortBlocked(opp, blocked)
	}
	n.wakeShards()
}

// wakeShards raises every band's wake edge after a fault mutation, so a
// band that was skipping itself as quiescent re-evaluates its routers
// against the new port masks. Serial-context only (all mutators are);
// a no-op on serial networks.
func (n *Network) wakeShards() {
	if n.shardBank != nil {
		n.shardBank.wakeAll()
	}
}

// LinkDead reports whether the directed link half from node toward d has
// been killed. The invariant checker uses it to exclude dead edges from
// its credit ledgers.
func (n *Network) LinkDead(node topology.NodeID, d topology.Dir) bool {
	return n.deadLinks[faultEdge{Node: node, Dir: d}]
}

// RouterDead reports whether node's router has been killed.
func (n *Network) RouterDead(node topology.NodeID) bool {
	return n.deadNodes != nil && n.deadNodes[node]
}

// FaultsActive reports whether any dead link or dead router exists. The
// invariant checker relaxes its flit-age bound when true: flits stranded
// behind dead elements are expected, not livelock.
func (n *Network) FaultsActive() bool { return n.haveFault }
