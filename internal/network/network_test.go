package network

import (
	"fmt"
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

var allKinds = []Kind{
	Backpressured, BackpressuredIdealBypass, Bless, BlessDrop, AFC, AFCAlwaysBuffered,
}

func newTestNet(t *testing.T, kind Kind, seed int64) *Network {
	t.Helper()
	return New(Config{System: config.Default(), Kind: kind, Seed: seed, MeterEnergy: true})
}

// TestAllToAllDelivery sends a control and a data packet from every node
// to every other node under every flow-control kind and checks complete,
// loss-free delivery.
func TestAllToAllDelivery(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet(t, kind, 42)
			nodes := n.Nodes()
			want := 0
			for s := 0; s < nodes; s++ {
				for d := 0; d < nodes; d++ {
					if s == d {
						continue
					}
					src, dst := topology.NodeID(s), topology.NodeID(d)
					n.NI(src).SendPacket(n.Now(), dst, flit.VNReq, flit.ControlPacketFlits, 0)
					n.NI(src).SendPacket(n.Now(), dst, flit.VNData, flit.DataPacketFlits, 0)
					want += 2
				}
			}
			if !n.RunUntil(n.Drained, 200_000) {
				t.Fatalf("network did not drain: delivered %d/%d packets",
					n.DeliveredPackets(), want)
			}
			if got := int(n.DeliveredPackets()); got != want {
				t.Fatalf("delivered %d packets, want %d", got, want)
			}
		})
	}
}

// TestZeroLoadLatency checks the Table I pipeline model: a single-flit
// packet traversing h hops through an idle network takes h*(2+L) cycles of
// network latency under every flow-control kind (all routers present the
// same 2-cycle pipeline; ejection happens at switch-allocation time of the
// final router).
func TestZeroLoadLatency(t *testing.T) {
	sys := config.Default()
	L := sys.LinkLatency
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			for _, tc := range []struct {
				src, dst topology.NodeID
			}{
				{0, 1}, // 1 hop
				{0, 2}, // 2 hops
				{0, 8}, // 4 hops (corner to corner)
			} {
				n := newTestNet(t, kind, 7)
				hops := n.Mesh().Distance(tc.src, tc.dst)
				n.NI(tc.src).SendPacket(n.Now(), tc.dst, flit.VNReq, 1, 0)
				if !n.RunUntil(n.Drained, 1000) {
					t.Fatalf("%d->%d: no delivery", tc.src, tc.dst)
				}
				got := n.NI(tc.dst).NetLatency().Mean()
				// Per hop: one cycle from buffer/latch write to switch
				// allocation, then L+1 cycles of switch+link traversal;
				// the final router's ejection consumes its SA stage (+1).
				want := float64(hops*(L+2) + 1)
				if got != want {
					t.Errorf("%d->%d (%d hops): net latency %.0f, want %.0f",
						tc.src, tc.dst, hops, got, want)
				}
			}
		})
	}
}

// TestFlitConservation checks that every injected flit is eventually
// delivered exactly once (reassembly counts match).
func TestFlitConservation(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet(t, kind, 99)
			nodes := n.Nodes()
			wantFlits := uint64(0)
			for i := 0; i < 200; i++ {
				src := topology.NodeID(i % nodes)
				dst := topology.NodeID((i*7 + 1) % nodes)
				if src == dst {
					dst = (dst + 1) % topology.NodeID(nodes)
				}
				vn := flit.VN(i % int(flit.NumVNs))
				l := flit.LenForVN(vn)
				n.NI(src).SendPacket(n.Now(), dst, vn, l, uint64(i))
				wantFlits += uint64(l)
				n.Step()
			}
			if !n.RunUntil(n.Drained, 500_000) {
				t.Fatalf("did not drain; delivered %d packets of %d created",
					n.DeliveredPackets(), n.CreatedPackets())
			}
			var delivered uint64
			for node := 0; node < nodes; node++ {
				delivered += n.NI(topology.NodeID(node)).DeliveredFlits()
			}
			if kind == BlessDrop {
				// Retransmissions may deliver duplicate flits; packets are
				// still exactly once.
				if n.DeliveredPackets() != n.CreatedPackets() {
					t.Fatalf("delivered %d packets, want %d", n.DeliveredPackets(), n.CreatedPackets())
				}
				return
			}
			if delivered != wantFlits {
				t.Fatalf("delivered %d flits, want %d", delivered, wantFlits)
			}
		})
	}
}

// TestEnergyAccounted checks that a run accrues energy in the expected
// components per kind (e.g. no buffer dynamic energy for deflection or
// ideal-bypass networks; zero static buffer energy only for bufferless).
func TestEnergyAccounted(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			n := newTestNet(t, kind, 5)
			n.NI(0).SendPacket(n.Now(), 8, flit.VNData, flit.DataPacketFlits, 0)
			if !n.RunUntil(n.Drained, 10_000) {
				t.Fatal("did not drain")
			}
			b := n.TotalEnergy()
			if b.Link <= 0 {
				t.Errorf("no link energy accrued: %+v", b)
			}
			if b.RouterStatic <= 0 {
				t.Errorf("no router static energy accrued: %+v", b)
			}
			switch kind {
			case Bless, BlessDrop:
				if b.BufferDynamic != 0 || b.BufferStatic != 0 {
					t.Errorf("bufferless kind accrued buffer energy: %+v", b)
				}
			case BackpressuredIdealBypass:
				if b.BufferDynamic != 0 {
					t.Errorf("ideal bypass accrued buffer dynamic energy: %+v", b)
				}
				if b.BufferStatic <= 0 {
					t.Errorf("ideal bypass lost buffer static energy: %+v", b)
				}
			case Backpressured:
				if b.BufferDynamic <= 0 || b.BufferStatic <= 0 {
					t.Errorf("backpressured missing buffer energy: %+v", b)
				}
			}
		})
	}
}

func ExampleKind_String() {
	fmt.Println(Backpressured, Bless, AFC)
	// Output: backpressured backpressureless afc
}

func TestKindJSON(t *testing.T) {
	cases := []struct {
		k    Kind
		json string
	}{
		{Backpressured, `"backpressured"`},
		{BackpressuredIdealBypass, `"backpressured-ideal-bypass"`},
		{Bless, `"backpressureless"`},
		{BlessDrop, `"backpressureless-drop"`},
		{AFC, `"afc"`},
		{AFCAlwaysBuffered, `"afc-always-backpressured"`},
	}
	if len(cases) != NumKinds {
		t.Fatalf("table covers %d kinds, NumKinds is %d", len(cases), NumKinds)
	}
	for _, tc := range cases {
		b, err := tc.k.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", tc.k, err)
		}
		if string(b) != tc.json {
			t.Errorf("kind %v marshals to %s, want %s", tc.k, b, tc.json)
		}
		var back Kind
		if err := back.UnmarshalJSON([]byte(tc.json)); err != nil {
			t.Fatalf("unmarshal %s: %v", tc.json, err)
		}
		if back != tc.k {
			t.Errorf("%s unmarshals to %v, want %v", tc.json, back, tc.k)
		}
	}
	for _, bad := range []string{`"nonesuch"`, `""`, `"Kind(17)"`, `"AFC"`, `"6"`, `"backpressured "`} {
		var k Kind
		if err := k.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("unknown kind %s accepted as %v", bad, k)
		}
	}
}
