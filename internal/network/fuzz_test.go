package network

import "testing"

// FuzzKindJSON checks the Kind JSON codec against arbitrary inputs:
// anything UnmarshalJSON accepts must be an in-range kind that survives
// a marshal/unmarshal round trip; everything else must be rejected with
// an error, never a panic or an out-of-range value.
func FuzzKindJSON(f *testing.F) {
	for k := Kind(0); k < NumKinds; k++ {
		b, _ := k.MarshalJSON()
		f.Add(string(b))
	}
	f.Add(`"nonesuch"`)
	f.Add(`backpressured`)
	f.Fuzz(func(t *testing.T, s string) {
		var k Kind
		if err := k.UnmarshalJSON([]byte(s)); err != nil {
			return // rejected input; nothing to round-trip
		}
		if k < 0 || k >= NumKinds {
			t.Fatalf("accepted %q as out-of-range kind %d", s, int(k))
		}
		b, err := k.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := back.UnmarshalJSON(b); err != nil || back != k {
			t.Fatalf("round trip %q -> %v -> %s -> %v (err %v)", s, k, b, back, err)
		}
	})
}
