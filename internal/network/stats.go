package network

import (
	"afcnet/internal/core"
	"afcnet/internal/deflect"
	"afcnet/internal/energy"
)

// TotalEnergy sums the energy of all routers and their links since the
// last ResetStats.
func (n *Network) TotalEnergy() energy.Breakdown {
	var b energy.Breakdown
	for _, m := range n.meters {
		if m != nil {
			b.Add(m.Breakdown())
		}
	}
	return b
}

// InjectedFlits sums flits injected across all nodes since ResetStats.
func (n *Network) InjectedFlits() uint64 {
	var t uint64
	for _, nif := range n.nis {
		t += nif.InjectedFlits()
	}
	return t
}

// DeliveredPackets sums reassembled packets across all nodes.
func (n *Network) DeliveredPackets() uint64 {
	var t uint64
	for _, nif := range n.nis {
		t += nif.DeliveredPackets()
	}
	return t
}

// CreatedPackets sums packets handed to NIs.
func (n *Network) CreatedPackets() uint64 {
	var t uint64
	for _, nif := range n.nis {
		t += nif.CreatedPackets()
	}
	return t
}

// MeanNetLatency is the delivery-weighted mean network latency
// (first-flit injection to reassembly) in cycles.
func (n *Network) MeanNetLatency() float64 {
	var sum float64
	var cnt uint64
	for _, nif := range n.nis {
		h := nif.NetLatency()
		sum += h.Mean() * float64(h.Count())
		cnt += h.Count()
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// MeanTotalLatency is the mean creation-to-delivery latency in cycles,
// source queueing included (the saturation signal).
func (n *Network) MeanTotalLatency() float64 {
	var sum float64
	var cnt uint64
	for _, nif := range n.nis {
		h := nif.TotalLatency()
		sum += h.Mean() * float64(h.Count())
		cnt += h.Count()
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// CyclesSinceReset returns the measurement-window length.
func (n *Network) CyclesSinceReset() uint64 { return n.kernel.Now() - n.resetCycle }

// InjectionRate returns achieved flits/node/cycle since ResetStats — the
// metric Table III reports per workload.
func (n *Network) InjectionRate() float64 {
	c := n.CyclesSinceReset()
	if c == 0 {
		return 0
	}
	return float64(n.InjectedFlits()) / float64(n.Nodes()) / float64(c)
}

// ThroughputFlits returns delivered flits/node/cycle since ResetStats.
func (n *Network) ThroughputFlits() float64 {
	c := n.CyclesSinceReset()
	if c == 0 {
		return 0
	}
	var t uint64
	for _, nif := range n.nis {
		t += nif.DeliveredFlits()
	}
	return float64(t) / float64(n.Nodes()) / float64(c)
}

// ResetStats zeroes energy meters and NI statistics, starting a fresh
// measurement window (warmup discard). Router mode/duty counters are
// cumulative and not reset.
func (n *Network) ResetStats() {
	for _, m := range n.meters {
		if m != nil {
			m.Reset()
		}
	}
	for _, nif := range n.nis {
		nif.ResetStats()
	}
	n.resetCycle = n.kernel.Now()
}

// Drained reports whether no flit remains anywhere: injection queues,
// links, router buffers/latches, reassembly, or pending NACK
// retransmissions.
func (n *Network) Drained() bool {
	for _, nif := range n.nis {
		if nif.QueueLen() > 0 || nif.PendingReassembly() > 0 {
			return false
		}
	}
	for _, l := range n.links {
		// A staged send parked on a boundary data pipe is a flit in
		// flight that the ring counter cannot see yet (it commits at the
		// head of the owner's next pass) — serial would have counted it.
		// Parked credit/ctrl sends are deliberately NOT consulted here:
		// serial ignores in-ring credits too, and Drained must stay
		// bit-identical across shard counts.
		if l.InFlight() > 0 || l.PendingStaged() {
			return false
		}
	}
	for _, e := range n.nacks {
		// Pending NACKs matter only if their packet is still undelivered;
		// stale entries fire as no-ops.
		if n.nis[e.src].Epoch(e.pkt) >= 0 {
			return false
		}
	}
	for _, r := range n.routers {
		if h, ok := r.(interface{ BufferedFlits() int }); ok && h.BufferedFlits() > 0 {
			return false
		}
		if h, ok := r.(interface{ LatchedFlits() int }); ok && h.LatchedFlits() > 0 {
			return false
		}
	}
	return true
}

// MaxFlitDeflections returns the largest misroute count observed on any
// delivered flit since ResetStats — the livelock-freedom observable.
func (n *Network) MaxFlitDeflections() uint64 {
	var m uint64
	for _, nif := range n.nis {
		if v := nif.Deflections().Max(); v > m {
			m = v
		}
	}
	return m
}

// TotalDeflections sums misroutes across routers (cumulative).
func (n *Network) TotalDeflections() uint64 {
	var t uint64
	for _, r := range n.routers {
		if d, ok := r.(interface{ Deflections() uint64 }); ok {
			t += d.Deflections()
		}
	}
	return t
}

// TotalDropped sums dropped flits (drop variant, cumulative).
func (n *Network) TotalDropped() uint64 {
	var t uint64
	for _, r := range n.routers {
		if d, ok := r.(*deflect.DropRouter); ok {
			t += d.DroppedFlits()
		}
	}
	return t
}

// ModeStats aggregates AFC mode behavior across all routers.
type ModeStats struct {
	BlessCycles     uint64
	SwitchingCycles uint64
	BufferedCycles  uint64
	ForwardSwitches uint64
	ReverseSwitches uint64
	GossipSwitches  uint64
	EscapeEvents    uint64
}

// BufferedFraction is the fraction of router-cycles spent in
// backpressured mode (the paper's duty-cycle metric; the brief switching
// windows count with backpressureless operation, matching the datapath).
func (m ModeStats) BufferedFraction() float64 {
	total := m.BlessCycles + m.SwitchingCycles + m.BufferedCycles
	if total == 0 {
		return 0
	}
	return float64(m.BufferedCycles) / float64(total)
}

// Counters is a snapshot of the network's headline counters, taken by
// the observability sampler (internal/obs) to feed the expvar debug
// endpoint. NI-backed counters (injected/delivered) reset with
// ResetStats at measurement-window boundaries; deflections and mode
// cycles are cumulative.
type Counters struct {
	InjectedFlits    uint64
	DeliveredFlits   uint64
	DeliveredPackets uint64
	Deflections      uint64
	Mode             ModeStats
}

// Counters returns the current counter snapshot. Pure observation: it
// only reads, so sampling cannot perturb results.
func (n *Network) Counters() Counters {
	c := Counters{
		InjectedFlits:    n.InjectedFlits(),
		DeliveredPackets: n.DeliveredPackets(),
		Deflections:      n.TotalDeflections(),
		Mode:             n.ModeStats(),
	}
	for _, nif := range n.nis {
		c.DeliveredFlits += nif.DeliveredFlits()
	}
	return c
}

// ModeStats returns aggregate AFC mode statistics (zero for non-AFC
// networks).
func (n *Network) ModeStats() ModeStats {
	var m ModeStats
	for _, r := range n.routers {
		a, ok := r.(*core.Router)
		if !ok {
			continue
		}
		mc := a.ModeCycles()
		m.BlessCycles += mc[core.ModeBless]
		m.SwitchingCycles += mc[core.ModeSwitching]
		m.BufferedCycles += mc[core.ModeBuffered]
		m.ForwardSwitches += a.ForwardSwitches()
		m.ReverseSwitches += a.ReverseSwitches()
		m.GossipSwitches += a.GossipSwitches()
		m.EscapeEvents += a.EscapeEvents()
	}
	return m
}
