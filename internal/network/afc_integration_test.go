package network_test

import (
	"fmt"
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/core"
	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/router"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

var allKindsX = []network.Kind{
	network.Backpressured, network.BackpressuredIdealBypass,
	network.Bless, network.BlessDrop, network.AFC, network.AFCAlwaysBuffered,
}

func newTestNetX(t *testing.T, kind network.Kind, seed int64) *network.Network {
	t.Helper()
	return network.New(network.Config{System: config.Default(), Kind: kind, Seed: seed, MeterEnergy: true})
}

// TestAFCAdaptsToLoad drives an AFC network through a low-high-low load
// profile and checks the whole network follows: backpressureless when
// idle, backpressured under saturation, and back — with conservation
// throughout (router panics are the invariant oracle).
func TestAFCAdaptsToLoad(t *testing.T) {
	n := newTestNetX(t, network.AFC, 31)
	modes := func() (bless, buffered int) {
		for i := 0; i < n.Nodes(); i++ {
			switch n.Router(topology.NodeID(i)).(*core.Router).Mode() {
			case core.ModeBless:
				bless++
			case core.ModeBuffered:
				buffered++
			}
		}
		return
	}

	// Phase 1: light traffic — everything stays backpressureless.
	gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.08}, n.RandStream)
	n.AddTicker(gen)
	n.Run(5_000)
	if bless, _ := modes(); bless != n.Nodes() {
		t.Fatalf("phase 1: %d/%d routers backpressureless", bless, n.Nodes())
	}

	// Phase 2: heavy traffic — the network must switch to backpressured.
	gen.Stop()
	heavy := traffic.NewGenerator(n, traffic.Config{Rate: 0.7}, n.RandStream)
	n.AddTicker(heavy)
	n.Run(12_000)
	if _, buffered := modes(); buffered < n.Nodes()/2 {
		t.Fatalf("phase 2: only %d routers backpressured under heavy load", buffered)
	}

	// Phase 3: idle — reverse switches bring everything back, and the
	// network drains without losing a flit.
	heavy.Stop()
	if !n.RunUntil(n.Drained, 300_000) {
		t.Fatalf("network failed to drain: delivered %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
	n.Run(3_000) // EWMA decay
	if bless, _ := modes(); bless != n.Nodes() {
		t.Fatalf("phase 3: %d/%d routers backpressureless after idling", bless, n.Nodes())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	ms := n.ModeStats()
	if ms.ForwardSwitches == 0 || ms.ReverseSwitches == 0 {
		t.Errorf("load profile did not exercise switches: %+v", ms)
	}
}

// TestAFCMixedModeSteadyState holds a sustained hotspot so part of the
// network is backpressured while the rest stays backpressureless, and
// verifies traffic flows correctly across the mode boundary in both
// directions (the Section III-D interaction cases).
func TestAFCMixedModeSteadyState(t *testing.T) {
	n := newTestNetX(t, network.AFC, 33)
	mesh := n.Mesh()
	gen := traffic.NewGenerator(n, traffic.Config{
		Pattern: traffic.Hotspot{Mesh: mesh, Hot: mesh.Node(1, 1), Frac: 0.5},
		Rate:    0.28,
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(20_000)

	bless, buffered := 0, 0
	for i := 0; i < n.Nodes(); i++ {
		switch n.Router(topology.NodeID(i)).(*core.Router).Mode() {
		case core.ModeBless:
			bless++
		case core.ModeBuffered:
			buffered++
		}
	}
	if buffered == 0 {
		t.Skip("hotspot did not create a backpressured region at this seed")
	}
	// Mixed steady state reached at least transiently; what matters is
	// correctness: drain with zero loss.
	gen.Stop()
	if !n.RunUntil(n.Drained, 300_000) {
		t.Fatalf("mixed-mode network failed to drain: %d/%d delivered",
			n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("lost packets across mode boundary: %d/%d",
			n.DeliveredPackets(), n.CreatedPackets())
	}
}

// TestAFCDataPacketsAcrossModes sends multi-flit data packets while the
// network flaps between modes; out-of-order flit arrival (deflection),
// lazy VC reassignment (buffered) and reassembly must all compose.
func TestAFCDataPacketsAcrossModes(t *testing.T) {
	n := newTestNetX(t, network.AFC, 35)
	gen := traffic.NewGenerator(n, traffic.Config{
		Rate:         0.5,
		DataFraction: 0.8, // mostly 17-flit packets
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(8_000)
	gen.Stop()
	if !n.RunUntil(n.Drained, 300_000) {
		t.Fatalf("failed to drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("data packets lost: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.ModeStats().EscapeEvents != 0 {
		t.Logf("note: %d escape events (allowed, but expected rare)", n.ModeStats().EscapeEvents)
	}
}

// TestEveryKindSurvivesSaturation pushes offered load well past
// saturation for a while and checks each network recovers and conserves
// flits (backpressure/deflection/drop all have different failure modes;
// none may lose traffic).
func TestEveryKindSurvivesSaturation(t *testing.T) {
	for _, kind := range allKindsX {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			n := newTestNetX(t, kind, 37)
			gen := traffic.NewGenerator(n, traffic.Config{Rate: 1.2}, n.RandStream)
			n.AddTicker(gen)
			n.Run(6_000)
			gen.Stop()
			limit := uint64(400_000)
			if kind == network.BlessDrop {
				limit = 3_000_000 // exponential backoff stretches the tail
			}
			if !n.RunUntil(n.Drained, limit) {
				t.Fatalf("failed to drain after saturation: %d/%d delivered",
					n.DeliveredPackets(), n.CreatedPackets())
			}
			if n.DeliveredPackets() != n.CreatedPackets() {
				t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
			}
		})
	}
}

// TestDeterminism: identical seeds produce identical runs; different
// seeds differ.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) (uint64, float64) {
		n := network.New(network.Config{System: config.Default(), Kind: network.AFC, Seed: seed, MeterEnergy: true})
		gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.4}, n.RandStream)
		n.AddTicker(gen)
		n.Run(10_000)
		return n.DeliveredPackets(), n.TotalEnergy().Total()
	}
	p1, e1 := run(42)
	p2, e2 := run(42)
	if p1 != p2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%g) vs (%d,%g)", p1, e1, p2, e2)
	}
	p3, _ := run(43)
	if p3 == p1 {
		t.Log("different seeds produced identical delivery counts (possible but unlikely)")
	}
}

// TestInjectionSustainsFullLocalPortBandwidth: with both control and
// data queues saturated, the local input port must stream one flit per
// cycle through the crossbar (the per-VN NI pulls keep its buffers
// primed; the crossbar port itself is one flit wide by design).
func TestInjectionSustainsFullLocalPortBandwidth(t *testing.T) {
	n := newTestNetX(t, network.Backpressured, 39)
	for i := 0; i < 300; i++ {
		n.NI(0).SendPacket(n.Now(), 1, flit.VNReq, 1, 0)
		n.NI(0).SendPacket(n.Now(), 3, flit.VNData, 1, 0)
	}
	n.Run(400)
	inj := n.NI(0).InjectedFlits()
	// Near-perfect utilization: one flit/cycle minus pipeline fill.
	if inj < 390 {
		t.Fatalf("injected only %d flits in 400 cycles; local port underutilized", inj)
	}
}

// TestProbabilisticLivelockFreedom (Section III-F): under randomized
// deflection arbitration with no priorities, delivery is probabilistic —
// but the probability of a flit wandering decays per hop, so even near
// saturation the worst observed misroute count must stay far below the
// run length, and every packet must arrive.
func TestProbabilisticLivelockFreedom(t *testing.T) {
	for _, kind := range []network.Kind{network.Bless, network.AFC} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			n := newTestNetX(t, kind, 41)
			gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.5}, n.RandStream)
			n.AddTicker(gen)
			n.Run(20_000)
			gen.Stop()
			if !n.RunUntil(n.Drained, 400_000) {
				t.Fatalf("did not drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
			}
			if n.DeliveredPackets() != n.CreatedPackets() {
				t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
			}
			maxDefl := n.MaxFlitDeflections()
			if maxDefl > 2_000 {
				t.Errorf("a flit suffered %d misroutes — livelock tail far too heavy", maxDefl)
			}
			t.Logf("%s: worst-case flit misroutes = %d (total %d)",
				kind, maxDefl, n.TotalDeflections())
		})
	}
}

// TestOldestFirstBoundsAge: with the oldest-first ablation policy,
// deterministic livelock freedom holds; the worst misroute count should
// not exceed the randomized policy's by much, and nothing is lost.
func TestOldestFirstBoundsAge(t *testing.T) {
	n := network.New(network.Config{
		System: config.Default(), Kind: network.Bless, Seed: 43,
		MeterEnergy: false, Policy: router.PolicyOldest,
	})
	gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.5}, n.RandStream)
	n.AddTicker(gen)
	n.Run(15_000)
	gen.Stop()
	if !n.RunUntil(n.Drained, 400_000) {
		t.Fatalf("did not drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	t.Logf("oldest-first worst-case flit misroutes = %d", n.MaxFlitDeflections())
}

// TestLargerMeshes: the simulator is not hard-coded to 3x3 — delivery
// and conservation hold on rectangular and larger meshes for every kind.
func TestLargerMeshes(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {5, 3}, {8, 8}} {
		for _, kind := range []network.Kind{network.Backpressured, network.Bless, network.AFC} {
			dims, kind := dims, kind
			t.Run(fmt.Sprintf("%dx%d/%s", dims[0], dims[1], kind), func(t *testing.T) {
				t.Parallel()
				sys := config.DefaultWithMesh(topology.NewMesh(dims[0], dims[1]))
				n := network.New(network.Config{System: sys, Kind: kind, Seed: 51, MeterEnergy: true})
				gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.15}, n.RandStream)
				n.AddTicker(gen)
				n.Run(6_000)
				gen.Stop()
				if !n.RunUntil(n.Drained, 300_000) {
					t.Fatalf("did not drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
				}
				if n.DeliveredPackets() != n.CreatedPackets() {
					t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
				}
			})
		}
	}
}

// TestAdversarialPatterns runs permutation and hotspot patterns at
// moderate load through every kind: deterministic DOR networks must not
// deadlock, deflection networks must not livelock, and everything must
// drain loss-free.
func TestAdversarialPatterns(t *testing.T) {
	patterns := []struct {
		name string
		mk   func(n *network.Network) traffic.Pattern
	}{
		{"transpose", func(n *network.Network) traffic.Pattern { return traffic.Transpose{Mesh: n.Mesh()} }},
		{"bitcomp", func(n *network.Network) traffic.Pattern { return traffic.BitComplement{Mesh: n.Mesh()} }},
		{"neighbor", func(n *network.Network) traffic.Pattern { return traffic.NearNeighbor{Mesh: n.Mesh()} }},
		{"hotspot", func(n *network.Network) traffic.Pattern {
			return traffic.Hotspot{Mesh: n.Mesh(), Hot: 4, Frac: 0.4}
		}},
	}
	for _, kind := range []network.Kind{network.Backpressured, network.Bless, network.AFC} {
		for _, pat := range patterns {
			kind, pat := kind, pat
			t.Run(kind.String()+"/"+pat.name, func(t *testing.T) {
				t.Parallel()
				n := newTestNetX(t, kind, 61)
				gen := traffic.NewGenerator(n, traffic.Config{
					Pattern: pat.mk(n),
					Rate:    0.35,
				}, n.RandStream)
				n.AddTicker(gen)
				n.Run(8_000)
				gen.Stop()
				if !n.RunUntil(n.Drained, 400_000) {
					t.Fatalf("did not drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
				}
				if n.DeliveredPackets() != n.CreatedPackets() {
					t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
				}
			})
		}
	}
}

// TestNearNeighborDoesNotFalseSwitch checks the Section III-B discussion:
// "easy" near-neighbor traffic can show decent flit throughput without
// contention. At moderate neighbor-only load the AFC network should stay
// mostly backpressureless (intensity below the thresholds) — and whatever
// it does, it must stay correct.
func TestNearNeighborDoesNotFalseSwitch(t *testing.T) {
	n := newTestNetX(t, network.AFC, 63)
	gen := traffic.NewGenerator(n, traffic.Config{
		Pattern:      traffic.NearNeighbor{Mesh: n.Mesh()},
		Rate:         0.30,
		DataFraction: 0.1, // mostly short control packets
	}, n.RandStream)
	n.AddTicker(gen)
	n.Run(15_000)
	ms := n.ModeStats()
	if f := ms.BufferedFraction(); f > 0.5 {
		t.Errorf("near-neighbor traffic pushed AFC %.0f%% backpressured", 100*f)
	}
	gen.Stop()
	if !n.RunUntil(n.Drained, 200_000) {
		t.Fatal("did not drain")
	}
}

// TestRealisticVCANetworkStillCorrect: the 3-stage baseline option works
// end-to-end (integration coverage for ablation A6).
func TestRealisticVCANetworkStillCorrect(t *testing.T) {
	sys := config.Default()
	sys.Baseline.RealisticVCA = true
	n := network.New(network.Config{System: sys, Kind: network.Backpressured, Seed: 67, MeterEnergy: true})
	gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.4}, n.RandStream)
	n.AddTicker(gen)
	n.Run(8_000)
	gen.Stop()
	if !n.RunUntil(n.Drained, 300_000) {
		t.Fatalf("did not drain: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
	if n.DeliveredPackets() != n.CreatedPackets() {
		t.Fatalf("lost packets: %d/%d", n.DeliveredPackets(), n.CreatedPackets())
	}
}
