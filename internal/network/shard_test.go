package network

import (
	"testing"

	"afcnet/internal/topology"
)

// TestBandsExactCover is the partitioner property test: for every mesh
// from 2x2 to 16x16 and every requested shard count from 1 up past the
// row count, Bands must return ascending, contiguous, non-empty
// whole-row bands that cover every node exactly once. The drain's
// ordering argument (shard-ascending journal replay == serial node
// order) rests on exactly these properties.
func TestBandsExactCover(t *testing.T) {
	for w := 2; w <= 16; w++ {
		for h := 2; h <= 16; h++ {
			mesh := topology.NewMesh(w, h)
			for shards := 1; shards <= h+3; shards++ {
				bands := Bands(mesh, shards)
				want := shards
				if want > h {
					want = h
				}
				if len(bands) != want {
					t.Fatalf("%dx%d shards=%d: got %d bands, want %d",
						w, h, shards, len(bands), want)
				}
				next := topology.NodeID(0)
				for s, b := range bands {
					if b.Lo != next {
						t.Fatalf("%dx%d shards=%d band %d: Lo=%d, want %d (gap or overlap)",
							w, h, shards, s, b.Lo, next)
					}
					if b.Hi <= b.Lo {
						t.Fatalf("%dx%d shards=%d band %d: empty band [%d,%d)",
							w, h, shards, s, b.Lo, b.Hi)
					}
					if int(b.Hi-b.Lo)%w != 0 {
						t.Fatalf("%dx%d shards=%d band %d: [%d,%d) is not whole rows",
							w, h, shards, s, b.Lo, b.Hi)
					}
					next = b.Hi
				}
				if int(next) != mesh.Nodes() {
					t.Fatalf("%dx%d shards=%d: bands end at %d, want %d",
						w, h, shards, next, mesh.Nodes())
				}
				// Band sizes must differ by at most one row (balance).
				minRows, maxRows := h, 0
				for _, b := range bands {
					rows := int(b.Hi-b.Lo) / w
					if rows < minRows {
						minRows = rows
					}
					if rows > maxRows {
						maxRows = rows
					}
				}
				if maxRows-minRows > 1 {
					t.Fatalf("%dx%d shards=%d: unbalanced bands (%d..%d rows)",
						w, h, shards, minRows, maxRows)
				}
			}
		}
	}
}

// TestBandsDegenerate pins the partitioner's clamping edges.
func TestBandsDegenerate(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	if got := Bands(mesh, 0); len(got) != 1 || got[0].Lo != 0 || int(got[0].Hi) != mesh.Nodes() {
		t.Fatalf("shards=0 should clamp to one full band, got %+v", got)
	}
	if got := Bands(mesh, 100); len(got) != 4 {
		t.Fatalf("shards=100 on 4 rows should clamp to 4 bands, got %d", len(got))
	}
}

// TestShardOfMatchesBands checks the node->shard index a built network
// derives from its bands.
func TestShardOfMatchesBands(t *testing.T) {
	n := New(Config{Kind: AFC, Seed: 1, Shards: 3})
	defer n.Close()
	if n.ShardCount() != 3 {
		t.Fatalf("ShardCount=%d, want 3", n.ShardCount())
	}
	for s, b := range n.ShardBands() {
		for v := b.Lo; v < b.Hi; v++ {
			if n.ShardOf(v) != s {
				t.Fatalf("ShardOf(%d)=%d, want %d", v, n.ShardOf(v), s)
			}
		}
	}
}
