package network

// The sharded tick: one network's cycle split across a persistent worker
// group, bit-identical to the serial kernel for any shard count.
//
// The mesh is partitioned into contiguous row bands (Bands), one shard
// per band. Each cycle the router bank runs one parallel pass with a
// near-empty serial tail:
//
//   Owner commit (parallel, head of each shard's pass): sends that
//   crossed a shard boundary last cycle sit parked in parity-indexed
//   registers on their pipes (link.Pipe staged mode), each registered in
//   the StagedBucket of its directed boundary. The *receiving* shard
//   commits its inbound buckets — lower neighbor's first, then the
//   upper's, each in the sender's deterministic tick order — before
//   ticking its own routers. Link latency >= 1 means a send parked at
//   cycle t arrives no earlier than t+1, so committing it at the head of
//   t+1 is indistinguishable from serial's same-cycle send; and because
//   each boundary bucket has exactly one writing shard and one draining
//   shard, separated by the kernel barrier and by register parity, no
//   phase of the protocol shares memory across shards.
//
//   Phase A (parallel): every shard ticks its own routers in node order,
//   with the per-router quiescence skip of the serial banks — or, when
//   the whole band was quiescent last cycle and nothing arrived or woke
//   it (band-level quiescence), a straight FastForward of the band that
//   skips even the per-router checks. All state a router touches is
//   shard-local by construction — its own latches and meters, its NI,
//   the shard's arena magazine (flit.ArenaShard), and the pipes it owns
//   an end of — except for the journaled effects below.
//
//   Serial tail (same cycle, inside the bank's Tick): the arena
//   reconciles starved magazines (a branch per shard in steady state),
//   then the per-shard effect journals replay shard-ascending — bands
//   are ascending node ranges and each journal is in tick order, so the
//   concatenation is exactly the serial kernel's node order — then the
//   registered drain hooks (the CMP substrate) merge their own staged
//   state. The journals stay serial deliberately: a drop-NACK must
//   reach the global NACK heap before this cycle's housekeeping pops
//   due entries (same-cycle timing), ACK clears touch another shard's
//   NI maps, and create hooks feed a network-global trace — all cheap,
//   all order-sensitive, none per-pipe.
//
// Everything else — housekeeping, traffic, CMP ticker, probes, the
// invariant checker — stays a serial kernel ticker and runs after the
// bank, observing fully committed state, exactly as in the serial path.
// The one observable the parked registers could skew — "is anything
// still in flight?" — is handled by counting parked sends as in-flight
// (Pipe.AppendInFlight) and by stagedPending gating Drained and the
// bank's own quiescence.

import (
	"runtime"
	"sync/atomic"
	"time"

	"afcnet/internal/core"
	"afcnet/internal/deflect"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/sim"
	"afcnet/internal/topology"
	"afcnet/internal/vcrouter"
)

// Band is one shard's node range [Lo, Hi): a contiguous run of whole
// mesh rows.
type Band struct {
	Lo, Hi topology.NodeID
}

// Bands partitions a mesh's rows into contiguous bands, one per shard.
// The shard count clamps to [1, Height]; when the height does not divide
// evenly the first Height%shards bands get one extra row. The bands
// cover every node exactly once, in ascending node order — the property
// the drain's ordering argument rests on (and that the partitioner
// property test asserts).
func Bands(mesh topology.Mesh, shards int) []Band {
	if shards < 1 {
		shards = 1
	}
	if shards > mesh.Height {
		shards = mesh.Height
	}
	bands := make([]Band, shards)
	base := mesh.Height / shards
	extra := mesh.Height % shards
	row := 0
	for s := range bands {
		rows := base
		if s < extra {
			rows++
		}
		bands[s] = Band{
			Lo: topology.NodeID(row * mesh.Width),
			Hi: topology.NodeID((row + rows) * mesh.Width),
		}
		row += rows
	}
	return bands
}

// initShards resolves cfg.Shards into the partition, the effect
// journals, the boundary buckets, the arena magazines and the worker
// group. Serial (Shards <= 1) leaves everything nil so the rest of the
// network pays nothing for the feature.
func (n *Network) initShards() {
	n.shards = 1
	if n.cfg.Shards <= 1 {
		return
	}
	n.bands = Bands(n.mesh, n.cfg.Shards)
	n.shards = len(n.bands)
	if n.shards <= 1 {
		n.bands = nil
		return
	}
	n.shardOf = make([]int, n.mesh.Nodes())
	for s, b := range n.bands {
		for v := b.Lo; v < b.Hi; v++ {
			n.shardOf[v] = s
		}
	}
	n.journals = make([][]shardEffect, n.shards)
	// One inbound bucket per directed boundary of each shard: [0] is fed
	// by the lower-numbered neighbor band, [1] by the upper. Row bands in
	// a mesh only ever exchange pipes with adjacent bands, which is what
	// gives each bucket its single writing shard.
	n.inBuckets = make([][2]*link.StagedBucket, n.shards)
	for s := range n.inBuckets {
		if s > 0 {
			n.inBuckets[s][0] = &link.StagedBucket{}
		}
		if s < n.shards-1 {
			n.inBuckets[s][1] = &link.StagedBucket{}
		}
	}
	n.arena.SetShards(n.shards)
	n.group = sim.NewShardGroup(n.shards)
	// Inline dispatch (single-P runtime) runs every shard on one
	// goroutine, so the magazines can skip their cross-shard atomics.
	n.arena.SetShardsSerial(n.group.Inline())
	// Backstop for abandoned networks: the workers reference only their
	// channels, so they cannot keep the network alive, and this finalizer
	// (which captures the group, not the network) reaps them when the
	// network is collected without an explicit Close.
	g := n.group
	runtime.SetFinalizer(n, func(*Network) { g.Close() })
}

// Close stops the sharded tick's worker goroutines. Optional — an
// abandoned network's finalizer does the same — but deterministic for
// tests that build many sharded networks. The network must not be
// stepped afterwards.
func (n *Network) Close() {
	if n.group != nil {
		n.group.Close()
		runtime.SetFinalizer(n, nil)
	}
}

// ShardCount returns the effective number of shards (1 = serial).
func (n *Network) ShardCount() int { return n.shards }

// ShardOf returns the shard owning node.
func (n *Network) ShardOf(node topology.NodeID) int {
	if n.shards <= 1 {
		return 0
	}
	return n.shardOf[node]
}

// ShardBands returns the partition, nil when serial.
func (n *Network) ShardBands() []Band { return n.bands }

// AddDrainHook registers a callback run at the end of every sharded
// drain, after journals replay. Components that stage their own
// cross-shard state during the parallel phase (the CMP substrate) merge
// it here. Like tickers, hooks are dropped by Reset and re-registered
// on reattach.
func (n *Network) AddDrainHook(h func(now uint64)) {
	n.drainHooks = append(n.drainHooks, h)
}

// stagePipes switches the three pipes of the directed edge node->nb into
// staged-send mode when the endpoints straddle a shard boundary, wiring
// each to the bucket of its own direction of flow. The data and ctrl
// pipes are sent by node; the credit pipe flows the other way.
func (n *Network) stagePipes(node, nb topology.NodeID, data *link.Data, credit *link.CreditLink, ctrl *link.CtrlLink) {
	if n.shards <= 1 || n.shardOf[node] == n.shardOf[nb] {
		return
	}
	s, d := n.shardOf[node], n.shardOf[nb]
	data.SetStaged(n.bucketFor(s, d))
	credit.SetStaged(n.bucketFor(d, s))
	ctrl.SetStaged(n.bucketFor(s, d))
}

// bucketFor returns the inbound bucket of shard dst that shard src
// writes. Bands only border adjacent bands, so src is dst-1 or dst+1.
func (n *Network) bucketFor(src, dst int) *link.StagedBucket {
	if src < dst {
		return n.inBuckets[dst][0]
	}
	return n.inBuckets[dst][1]
}

// commitInbound commits the sends parked for shard's routers in the
// given parity slot — the owner-commit step at the head of the shard's
// parallel pass. Lower neighbor's boundary first, then the upper's:
// ascending source shard, matching the old serial drain order (commit
// order across pipes cannot affect results — each commit touches only
// its own pipe — but a fixed order keeps runs byte-for-byte
// reproducible under any interleaving). Reports whether anything
// arrived, so the caller can un-quiesce the band.
func (n *Network) commitInbound(shard, par int) bool {
	committed := false
	for _, b := range n.inBuckets[shard] {
		if b != nil && b.Commit(par) {
			committed = true
		}
	}
	return committed
}

// stagedPending reports whether any boundary bucket still holds
// uncommitted sends. Serial-side read between cycles: Drained and the
// bank's quiescence consult it, because a parked send is in-flight
// traffic that no ring counter sees yet.
func (n *Network) stagedPending() bool {
	for i := range n.inBuckets {
		for _, b := range n.inBuckets[i] {
			if b != nil && b.Pending() {
				return true
			}
		}
	}
	return false
}

// effKind tags a journaled cross-shard effect.
type effKind uint8

const (
	// effAck: delivery ACK — clear retransmission state at the source NI.
	effAck effKind = iota
	// effNack: drop NACK — schedule a source retransmission.
	effNack
	// effCreate: replay a deferred NI create hook (trace recording).
	effCreate
)

// shardEffect is one journaled effect, fields captured by value at the
// staging site (the flit that carried them may be recycled before the
// drain runs).
type shardEffect struct {
	kind   effKind
	node   topology.NodeID // NACK drop site / create-hook NI
	src    topology.NodeID // packet source (ack, nack)
	pkt    uint64
	retx   int
	packet flit.Packet // create
}

// drain is the serial tail of a sharded cycle: replay the effect
// journals in serial node order, run the drain hooks. Runs on the
// caller's goroutine after the barrier; nothing here allocates in steady
// state (journals keep their capacity across cycles). Boundary pipes no
// longer appear here — their owners committed them inside the parallel
// pass.
func (n *Network) drain(now uint64) {
	for s := range n.journals {
		j := n.journals[s]
		for i := range j {
			e := &j[i]
			switch e.kind {
			case effAck:
				n.nis[e.src].ClearRetained(e.pkt)
			case effNack:
				n.scheduleNack(now, e.node, e.src, e.pkt, e.retx)
			case effCreate:
				n.nis[e.node].InvokeCreateHook(e.packet)
			}
		}
		n.journals[s] = j[:0]
	}
	for _, h := range n.drainHooks {
		h(now)
	}
}

// BarrierStats is the sharded tick's accumulated wall-time split,
// collected only while SetBarrierTiming is on: how long the parallel
// pass and the serial tail take per cycle on average, and how busy each
// shard's worker is. The observability layer folds it into run
// manifests and the expvar endpoint.
type BarrierStats struct {
	// Cycles counts the ticks the tallies below cover.
	Cycles uint64
	// PhaseANs is wall time inside the parallel pass (barrier included);
	// PhaseBNs is wall time in the serial tail (arena reconcile, journal
	// replay, drain hooks).
	PhaseANs uint64
	PhaseBNs uint64
	// ShardBusyNs is per-shard wall time actually spent inside tickShard
	// (each worker times its own slot). The gap between max(ShardBusyNs)
	// and PhaseANs is dispatch plus imbalance.
	ShardBusyNs []uint64
}

// barrierTally is the network's internal accumulator behind
// BarrierStats. The fields are atomic so the obs layer can snapshot a
// network that is mid-cycle on another goroutine (the expvar gauge
// refreshes on every cell completion of a parallel sweep); the
// serial-phase fields are written only by the barrier goroutine and
// each ShardBusyNs slot only by its own worker, so the atomics cost a
// few uncontended RMWs per cycle, paid only while timing is on. A
// concurrent snapshot may catch PhaseANs updated before Cycles —
// per-cycle averages can be off by one cycle's worth mid-run, which is
// fine for telemetry.
type barrierTally struct {
	cycles      atomic.Uint64
	phaseANs    atomic.Uint64
	phaseBNs    atomic.Uint64
	shardBusyNs []atomic.Uint64
}

// SetBarrierTiming enables (or disables) barrier wall-time collection.
// Off by default — the timestamps cost a few clock reads per cycle —
// and a no-op on serial networks. Serial-phase only.
func (n *Network) SetBarrierTiming(on bool) {
	if n.shards <= 1 {
		return
	}
	n.timing = on
	if on && n.btally.shardBusyNs == nil {
		n.btally.shardBusyNs = make([]atomic.Uint64, n.shards)
	}
}

// BarrierTally returns a snapshot of the accumulated barrier timing
// (zero value when timing was never enabled). The tally is cumulative
// over the network's lifetime — Reset does not zero it, so a reused
// sweep network reports the sum over all its cells — and safe to call
// from another goroutine while the network ticks (see barrierTally).
func (n *Network) BarrierTally() BarrierStats {
	t := BarrierStats{
		Cycles:   n.btally.cycles.Load(),
		PhaseANs: n.btally.phaseANs.Load(),
		PhaseBNs: n.btally.phaseBNs.Load(),
	}
	for i := range n.btally.shardBusyNs {
		t.ShardBusyNs = append(t.ShardBusyNs, n.btally.shardBusyNs[i].Load())
	}
	return t
}

// ShardDispatchInline reports whether the sharded tick runs its shards
// inline on the caller goroutine (the single-P dispatch mode of
// sim.ShardGroup) rather than on spawned workers. False on serial
// networks. The obs layer records it so a manifest's barrier timings
// say which dispatch path they measured.
func (n *Network) ShardDispatchInline() bool {
	return n.group != nil && n.group.Inline()
}

// shardedBank is the sharded counterpart of the per-kind serial banks in
// active.go: one kernel entry ticking the whole mesh, but through the
// worker group. Exactly one of the per-kind slices is non-nil (networks
// are homogeneous); each holds one sub-slice of concrete routers per
// shard, so the hot loops stay devirtualized.
type shardedBank struct {
	n     *Network
	dense bool
	vc    [][]*vcrouter.Router
	defl  [][]*deflect.Router
	drop  [][]*deflect.DropRouter
	afc   [][]*core.Router
	// tick is the stored tickShard method value, so group.Run closes over
	// nothing per cycle.
	tick func(shard int, now uint64)

	// Band-level quiescence. quiet[s] means every router of shard s
	// fast-forwarded in its last pass; wake[s] is the edge that
	// invalidates the conclusion from outside the band — an NI enqueue
	// into the band (traffic, retransmission; set through ni.SetWakeFlag)
	// or a fault mutation. While quiet and unwoken and with no inbound
	// commit, tickShard fast-forwards the whole band without even the
	// per-router Quiescent polls. Each worker reads and writes only its
	// own elements during a phase; serial-side writers (housekeeping,
	// traffic, faults) are ordered by the kernel barrier.
	quiet []bool
	wake  []bool
}

// newShardedBank slices n.routers by band into a shardedBank, or returns
// nil for a kind without a concrete bank (the caller falls back to the
// serial per-router registration). It also wires the per-node shard
// plumbing that only makes sense once the bank exists: each NI's arena
// magazine and band-wake flag, and each drop router's magazine for drop
// retirement.
func (n *Network) newShardedBank() *shardedBank {
	b := &shardedBank{n: n, dense: n.cfg.DenseKernel}
	switch n.cfg.Kind {
	case Backpressured, BackpressuredIdealBypass:
		b.vc = make([][]*vcrouter.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.vc[s] = append(b.vc[s], n.routers[v].(*vcrouter.Router))
			}
		}
	case Bless:
		b.defl = make([][]*deflect.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.defl[s] = append(b.defl[s], n.routers[v].(*deflect.Router))
			}
		}
	case BlessDrop:
		b.drop = make([][]*deflect.DropRouter, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.drop[s] = append(b.drop[s], n.routers[v].(*deflect.DropRouter))
			}
		}
	case AFC, AFCAlwaysBuffered:
		b.afc = make([][]*core.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.afc[s] = append(b.afc[s], n.routers[v].(*core.Router))
			}
		}
	default:
		return nil
	}
	b.tick = b.tickShard
	b.quiet = make([]bool, n.shards)
	b.wake = make([]bool, n.shards)
	for s, band := range n.bands {
		for v := band.Lo; v < band.Hi; v++ {
			n.nis[v].SetArenaShard(n.arena.Shard(s))
			n.nis[v].SetWakeFlag(&b.wake[s])
			if dr, ok := n.routers[v].(*deflect.DropRouter); ok {
				dr.SetArenaShard(n.arena.Shard(s))
			}
		}
	}
	return b
}

// wakeAll raises every band's wake edge (fault mutations, reset).
func (b *shardedBank) wakeAll() {
	for i := range b.wake {
		b.wake[i] = true
	}
}

// reset clears the band-quiescence state for a fresh cell.
func (b *shardedBank) reset() {
	for i := range b.quiet {
		b.quiet[i] = false
		b.wake[i] = false
	}
}

// Tick implements sim.Ticker: one sharded cycle — parallel pass
// (owner commits + router ticks) and the serial tail.
func (b *shardedBank) Tick(now uint64) {
	n := b.n
	var t0, t1 time.Time
	if n.timing {
		t0 = time.Now()
	}
	n.inParallel = true
	n.group.Run(now, b.tick)
	n.inParallel = false
	if n.timing {
		t1 = time.Now()
	}
	n.arena.Reconcile()
	n.drain(now)
	if n.timing {
		t2 := time.Now()
		n.btally.cycles.Add(1)
		n.btally.phaseANs.Add(uint64(t1.Sub(t0)))
		n.btally.phaseBNs.Add(uint64(t2.Sub(t1)))
	}
}

// tickShard is one shard's parallel pass: commit last cycle's inbound
// boundary sends, then tick the band — with the per-router quiescence
// skip of the serial banks, or a band-level fast-forward when the whole
// band proved quiescent last pass and nothing arrived or woke it.
//
// The per-router skip stays bit-identical to serial even though a
// shard's view of the pipe in-flight counters is not serial's. In
// serial node order a router's Quiescent sees same-cycle sends from
// lower-numbered routers; with row bands the only lower-numbered
// cross-shard sender is the North neighbor (v-Width) of the band's
// first row, and its same-cycle sends sit parked in staged boundary
// registers — invisible to the counters until the owner commits them
// next cycle. A first-row router can therefore fast-forward where
// serial ticked. That is harmless because of the Quiescent contract
// (documented on each router's Quiescent): whenever Quiescent is true,
// Tick is bit-for-bit equivalent to FastForward(1). The in-flight flit
// serial saw arrives no earlier than the next cycle (link latency >=
// 1), so serial's Tick received nothing and changed nothing FastForward
// does not replay; and at the arrival cycle the send has been
// committed — before this band ticks — visible to both views, and both
// tick.
//
// The band-level skip leans on the same contract plus an induction:
// quiet[shard] was set because every router fast-forwarded last pass,
// fast-forwards preserve quiescence (idle cycles keep AFC mode windows
// clear and draw no randomness), and the only events that can make a
// quiescent router non-quiescent from outside are an inbound boundary
// commit (the committed flag), an NI enqueue into the band or a fault
// mutation (the wake flag). None of those → every router is still
// quiescent → fast-forward them without polling.
func (b *shardedBank) tickShard(shard int, now uint64) {
	if b.n.timing {
		t0 := time.Now()
		b.runShard(shard, now)
		b.n.btally.shardBusyNs[shard].Add(uint64(time.Since(t0)))
		return
	}
	b.runShard(shard, now)
}

// runShard is tickShard minus the timing shell, so the untimed hot path
// carries no clock reads and no time.Time locals.
func (b *shardedBank) runShard(shard int, now uint64) {
	n := b.n
	// Sends parked last cycle carry the opposite parity of now.
	committed := false
	if n.inBuckets != nil {
		committed = n.commitInbound(shard, int(now+1)&1)
	}
	if !b.dense && b.quiet[shard] && !committed && !b.wake[shard] {
		switch {
		case b.vc != nil:
			ffBandVC(b.vc[shard])
		case b.defl != nil:
			ffBandDefl(b.defl[shard])
		case b.drop != nil:
			ffBandDrop(b.drop[shard])
		case b.afc != nil:
			ffBandAFC(b.afc[shard])
		}
		return
	}
	b.wake[shard] = false
	quiet := false
	switch {
	case b.vc != nil:
		quiet = tickBandVC(b.vc[shard], now, b.dense)
	case b.defl != nil:
		quiet = tickBandDefl(b.defl[shard], now, b.dense)
	case b.drop != nil:
		quiet = tickBandDrop(b.drop[shard], now, b.dense)
	case b.afc != nil:
		quiet = tickBandAFC(b.afc[shard], now, b.dense)
	}
	b.quiet[shard] = !b.dense && quiet
}

// The band loops live in their own small functions — the same shape as
// the serial banks' Tick loops in active.go, and for the same reason:
// inside one big tickShard body the compiler spilled its way through
// four switch arms, and the hot loop measurably lost to the serial
// bank. Each returns whether every router of the band fast-forwarded.

func tickBandVC(rs []*vcrouter.Router, now uint64, dense bool) bool {
	quiet := true
	for _, r := range rs {
		if !dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
			quiet = false
		}
	}
	return quiet
}

func tickBandDefl(rs []*deflect.Router, now uint64, dense bool) bool {
	quiet := true
	for _, r := range rs {
		if !dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
			quiet = false
		}
	}
	return quiet
}

func tickBandDrop(rs []*deflect.DropRouter, now uint64, dense bool) bool {
	quiet := true
	for _, r := range rs {
		if !dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
			quiet = false
		}
	}
	return quiet
}

func tickBandAFC(rs []*core.Router, now uint64, dense bool) bool {
	quiet := true
	for _, r := range rs {
		if !dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
			quiet = false
		}
	}
	return quiet
}

func ffBandVC(rs []*vcrouter.Router) {
	for _, r := range rs {
		r.FastForward(1)
	}
}

func ffBandDefl(rs []*deflect.Router) {
	for _, r := range rs {
		r.FastForward(1)
	}
}

func ffBandDrop(rs []*deflect.DropRouter) {
	for _, r := range rs {
		r.FastForward(1)
	}
}

func ffBandAFC(rs []*core.Router) {
	for _, r := range rs {
		r.FastForward(1)
	}
}

// Quiescent implements sim.Quiescer. Serial-side call between cycles, so
// the plain reads race with nothing. Pending boundary commits veto
// quiescence outright — a parked send is in-flight traffic — and bands
// that proved quiescent last pass (and were not woken since) are
// skipped without polling their routers, the serial-side mirror of the
// band-level fast-forward.
func (b *shardedBank) Quiescent(now uint64) bool {
	if b.n.stagedPending() {
		return false
	}
	switch {
	case b.vc != nil:
		for s, rs := range b.vc {
			if b.quiet[s] && !b.wake[s] {
				continue
			}
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.defl != nil:
		for s, rs := range b.defl {
			if b.quiet[s] && !b.wake[s] {
				continue
			}
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.drop != nil:
		for s, rs := range b.drop {
			if b.quiet[s] && !b.wake[s] {
				continue
			}
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.afc != nil:
		for s, rs := range b.afc {
			if b.quiet[s] && !b.wake[s] {
				continue
			}
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	}
	return true
}

// FastForward implements sim.Quiescer: skipped cycles advance serially —
// fast-forward bodies are cheap static bookkeeping, not worth a barrier.
func (b *shardedBank) FastForward(cycles uint64) {
	switch {
	case b.vc != nil:
		for _, rs := range b.vc {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.defl != nil:
		for _, rs := range b.defl {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.drop != nil:
		for _, rs := range b.drop {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.afc != nil:
		for _, rs := range b.afc {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	}
}
