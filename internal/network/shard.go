package network

// The sharded tick: one network's cycle split across a persistent worker
// group, bit-identical to the serial kernel for any shard count.
//
// The mesh is partitioned into contiguous row bands (Bands), one shard
// per band. Each cycle the router bank runs a two-phase barrier:
//
//   Phase A (parallel): every shard ticks its own routers in node order,
//   with the per-router quiescence skip of the serial banks. All state a
//   router touches is shard-local by construction — its own latches and
//   meters, its NI, and the pipes it owns an end of — except for three
//   cross-shard effects, which are intercepted:
//     - sends on pipes whose other end lives in another shard park in a
//       sender-owned register (link.Pipe staged mode);
//     - drop-NACK scheduling, delivery ACK clears and create hooks,
//       which touch network-global or another shard's state, append to
//       the ticking shard's effect journal instead of acting.
//   The flit arena is the one genuinely shared structure; its free lists
//   go behind a mutex for the duration (flit.Arena.BeginParallel), and
//   it never mints mid-phase so the columnar banks cannot move under
//   concurrent readers.
//
//   Phase B (serial drain, same cycle, inside the bank's Tick): journals
//   replay shard-ascending — bands are ascending node ranges and each
//   journal is in tick order, so the concatenation is exactly the serial
//   kernel's node order — then the staged boundary pipes commit in fixed
//   (src-shard, dst-shard) mailbox order, then registered drain hooks
//   (the CMP substrate) merge their own staged state. Pipe-commit order
//   cannot affect results (a committed value becomes visible no earlier
//   than the next cycle), but keeping it fixed makes every run of every
//   interleaving byte-for-byte reproducible.
//
// Everything else — housekeeping, traffic, CMP ticker, probes, the
// invariant checker — stays a serial kernel ticker and runs after the
// bank, observing fully committed state, exactly as in the serial path.

import (
	"runtime"
	"sort"

	"afcnet/internal/core"
	"afcnet/internal/deflect"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/sim"
	"afcnet/internal/topology"
	"afcnet/internal/vcrouter"
)

// Band is one shard's node range [Lo, Hi): a contiguous run of whole
// mesh rows.
type Band struct {
	Lo, Hi topology.NodeID
}

// Bands partitions a mesh's rows into contiguous bands, one per shard.
// The shard count clamps to [1, Height]; when the height does not divide
// evenly the first Height%shards bands get one extra row. The bands
// cover every node exactly once, in ascending node order — the property
// the drain's ordering argument rests on (and that the partitioner
// property test asserts).
func Bands(mesh topology.Mesh, shards int) []Band {
	if shards < 1 {
		shards = 1
	}
	if shards > mesh.Height {
		shards = mesh.Height
	}
	bands := make([]Band, shards)
	base := mesh.Height / shards
	extra := mesh.Height % shards
	row := 0
	for s := range bands {
		rows := base
		if s < extra {
			rows++
		}
		bands[s] = Band{
			Lo: topology.NodeID(row * mesh.Width),
			Hi: topology.NodeID((row + rows) * mesh.Width),
		}
		row += rows
	}
	return bands
}

// initShards resolves cfg.Shards into the partition, the effect
// journals and the worker group. Serial (Shards <= 1) leaves everything
// nil so the rest of the network pays nothing for the feature.
func (n *Network) initShards() {
	n.shards = 1
	if n.cfg.Shards <= 1 {
		return
	}
	n.bands = Bands(n.mesh, n.cfg.Shards)
	n.shards = len(n.bands)
	if n.shards <= 1 {
		n.bands = nil
		return
	}
	n.shardOf = make([]int, n.mesh.Nodes())
	for s, b := range n.bands {
		for v := b.Lo; v < b.Hi; v++ {
			n.shardOf[v] = s
		}
	}
	n.journals = make([][]shardEffect, n.shards)
	n.group = sim.NewShardGroup(n.shards)
	// Backstop for abandoned networks: the workers reference only their
	// channels, so they cannot keep the network alive, and this finalizer
	// (which captures the group, not the network) reaps them when the
	// network is collected without an explicit Close.
	g := n.group
	runtime.SetFinalizer(n, func(*Network) { g.Close() })
}

// Close stops the sharded tick's worker goroutines. Optional — an
// abandoned network's finalizer does the same — but deterministic for
// tests that build many sharded networks. The network must not be
// stepped afterwards.
func (n *Network) Close() {
	if n.group != nil {
		n.group.Close()
		runtime.SetFinalizer(n, nil)
	}
}

// ShardCount returns the effective number of shards (1 = serial).
func (n *Network) ShardCount() int { return n.shards }

// ShardOf returns the shard owning node.
func (n *Network) ShardOf(node topology.NodeID) int {
	if n.shards <= 1 {
		return 0
	}
	return n.shardOf[node]
}

// ShardBands returns the partition, nil when serial.
func (n *Network) ShardBands() []Band { return n.bands }

// AddDrainHook registers a callback run at the end of every sharded
// drain, after journals replay and pipes commit. Components that stage
// their own cross-shard state during the parallel phase (the CMP
// substrate) merge it here. Like tickers, hooks are dropped by Reset
// and re-registered on reattach.
func (n *Network) AddDrainHook(h func(now uint64)) {
	n.drainHooks = append(n.drainHooks, h)
}

// stagedPipe is one boundary pipe — a (src-shard, dst-shard) mailbox
// slot — with its sort keys for the fixed drain order.
type stagedPipe struct {
	srcShard, dstShard int
	seq                int
	c                  link.Committer
}

// stagePipes switches the three pipes of the directed edge node->nb into
// staged-send mode when the endpoints straddle a shard boundary, and
// records them for the drain. The data and ctrl pipes are sent by node;
// the credit pipe flows the other way.
func (n *Network) stagePipes(node, nb topology.NodeID, data *link.Data, credit *link.CreditLink, ctrl *link.CtrlLink) {
	if n.shards <= 1 || n.shardOf[node] == n.shardOf[nb] {
		return
	}
	s, d := n.shardOf[node], n.shardOf[nb]
	data.SetStaged(true)
	credit.SetStaged(true)
	ctrl.SetStaged(true)
	n.committers = append(n.committers,
		stagedPipe{srcShard: s, dstShard: d, seq: len(n.committers), c: data},
		stagedPipe{srcShard: d, dstShard: s, seq: len(n.committers) + 1, c: credit},
		stagedPipe{srcShard: s, dstShard: d, seq: len(n.committers) + 2, c: ctrl},
	)
}

// sortCommitters fixes the global drain order of the boundary pipes:
// grouped by (src-shard, dst-shard) mailbox, build order within a group.
func (n *Network) sortCommitters() {
	sort.Slice(n.committers, func(i, j int) bool {
		a, b := &n.committers[i], &n.committers[j]
		if a.srcShard != b.srcShard {
			return a.srcShard < b.srcShard
		}
		if a.dstShard != b.dstShard {
			return a.dstShard < b.dstShard
		}
		return a.seq < b.seq
	})
}

// effKind tags a journaled cross-shard effect.
type effKind uint8

const (
	// effAck: delivery ACK — clear retransmission state at the source NI.
	effAck effKind = iota
	// effNack: drop NACK — schedule a source retransmission.
	effNack
	// effCreate: replay a deferred NI create hook (trace recording).
	effCreate
)

// shardEffect is one journaled effect, fields captured by value at the
// staging site (the flit that carried them may be recycled before the
// drain runs).
type shardEffect struct {
	kind   effKind
	node   topology.NodeID // NACK drop site / create-hook NI
	src    topology.NodeID // packet source (ack, nack)
	pkt    uint64
	retx   int
	packet flit.Packet // create
}

// drain is phase B: replay the effect journals in serial node order,
// commit the boundary-pipe mailboxes, run the drain hooks. Runs on the
// caller's goroutine after the barrier; nothing here allocates in steady
// state (journals keep their capacity across cycles).
func (n *Network) drain(now uint64) {
	for s := range n.journals {
		j := n.journals[s]
		for i := range j {
			e := &j[i]
			switch e.kind {
			case effAck:
				n.nis[e.src].ClearRetained(e.pkt)
			case effNack:
				n.scheduleNack(now, e.node, e.src, e.pkt, e.retx)
			case effCreate:
				n.nis[e.node].InvokeCreateHook(e.packet)
			}
		}
		n.journals[s] = j[:0]
	}
	for i := range n.committers {
		n.committers[i].c.CommitStaged()
	}
	for _, h := range n.drainHooks {
		h(now)
	}
}

// shardedBank is the sharded counterpart of the per-kind serial banks in
// active.go: one kernel entry ticking the whole mesh, but through the
// worker group with the two-phase barrier. Exactly one of the per-kind
// slices is non-nil (networks are homogeneous); each holds one sub-slice
// of concrete routers per shard, so the hot loops stay devirtualized.
type shardedBank struct {
	n     *Network
	dense bool
	vc    [][]*vcrouter.Router
	defl  [][]*deflect.Router
	drop  [][]*deflect.DropRouter
	afc   [][]*core.Router
	// tick is the stored tickShard method value, so group.Run closes over
	// nothing per cycle.
	tick func(shard int, now uint64)
}

// newShardedBank slices n.routers by band into a shardedBank, or returns
// nil for a kind without a concrete bank (the caller falls back to the
// serial per-router registration).
func (n *Network) newShardedBank() *shardedBank {
	b := &shardedBank{n: n, dense: n.cfg.DenseKernel}
	switch n.cfg.Kind {
	case Backpressured, BackpressuredIdealBypass:
		b.vc = make([][]*vcrouter.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.vc[s] = append(b.vc[s], n.routers[v].(*vcrouter.Router))
			}
		}
	case Bless:
		b.defl = make([][]*deflect.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.defl[s] = append(b.defl[s], n.routers[v].(*deflect.Router))
			}
		}
	case BlessDrop:
		b.drop = make([][]*deflect.DropRouter, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.drop[s] = append(b.drop[s], n.routers[v].(*deflect.DropRouter))
			}
		}
	case AFC, AFCAlwaysBuffered:
		b.afc = make([][]*core.Router, n.shards)
		for s, band := range n.bands {
			for v := band.Lo; v < band.Hi; v++ {
				b.afc[s] = append(b.afc[s], n.routers[v].(*core.Router))
			}
		}
	default:
		return nil
	}
	b.tick = b.tickShard
	return b
}

// Tick implements sim.Ticker: the full two-phase barrier for one cycle.
func (b *shardedBank) Tick(now uint64) {
	n := b.n
	n.inParallel = true
	n.arena.BeginParallel()
	n.group.Run(now, b.tick)
	n.arena.EndParallel()
	n.inParallel = false
	n.drain(now)
}

// tickShard is phase A for one shard: the same per-router quiescence
// skip as the serial banks, in node order within the band.
//
// The skip stays bit-identical to serial even though a shard's view of
// the pipe in-flight counters is not serial's. In serial node order a
// router's Quiescent sees same-cycle sends from lower-numbered routers;
// with row bands the only lower-numbered cross-shard sender is the North
// neighbor (v-Width) of the band's first row, and its same-cycle sends
// sit parked in staged boundary registers — invisible to the counters
// until the drain. A first-row router can therefore fast-forward where
// serial ticked. That is harmless because of the Quiescent contract
// (documented on each router's Quiescent): whenever Quiescent is true,
// Tick is bit-for-bit equivalent to FastForward(1). The in-flight flit
// serial saw arrives no earlier than the next cycle (link latency >= 1),
// so serial's Tick received nothing and changed nothing FastForward does
// not replay; and at the arrival cycle the send is committed, visible to
// both views, and both tick. Every other router's view matches serial
// exactly: same-shard upstreams tick in serial relative order before it,
// and South-side senders are higher-numbered, so serial did not see
// their same-cycle sends either.
func (b *shardedBank) tickShard(shard int, now uint64) {
	switch {
	case b.vc != nil:
		for _, r := range b.vc[shard] {
			if !b.dense && r.Quiescent(now) {
				r.FastForward(1)
			} else {
				r.Tick(now)
			}
		}
	case b.defl != nil:
		for _, r := range b.defl[shard] {
			if !b.dense && r.Quiescent(now) {
				r.FastForward(1)
			} else {
				r.Tick(now)
			}
		}
	case b.drop != nil:
		for _, r := range b.drop[shard] {
			if !b.dense && r.Quiescent(now) {
				r.FastForward(1)
			} else {
				r.Tick(now)
			}
		}
	case b.afc != nil:
		for _, r := range b.afc[shard] {
			if !b.dense && r.Quiescent(now) {
				r.FastForward(1)
			} else {
				r.Tick(now)
			}
		}
	}
}

// Quiescent implements sim.Quiescer. Serial-side call between cycles, so
// the plain reads race with nothing.
func (b *shardedBank) Quiescent(now uint64) bool {
	switch {
	case b.vc != nil:
		for _, rs := range b.vc {
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.defl != nil:
		for _, rs := range b.defl {
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.drop != nil:
		for _, rs := range b.drop {
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	case b.afc != nil:
		for _, rs := range b.afc {
			for _, r := range rs {
				if !r.Quiescent(now) {
					return false
				}
			}
		}
	}
	return true
}

// FastForward implements sim.Quiescer: skipped cycles advance serially —
// fast-forward bodies are cheap static bookkeeping, not worth a barrier.
func (b *shardedBank) FastForward(cycles uint64) {
	switch {
	case b.vc != nil:
		for _, rs := range b.vc {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.defl != nil:
		for _, rs := range b.defl {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.drop != nil:
		for _, rs := range b.drop {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	case b.afc != nil:
		for _, rs := range b.afc {
			for _, r := range rs {
				r.FastForward(cycles)
			}
		}
	}
}
