package network

import (
	"math"
	"testing"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

// TestInjectionRateWindow: the rate metric counts only flits injected
// since the last ResetStats, over the window length.
func TestInjectionRateWindow(t *testing.T) {
	n := newTestNet(t, Backpressured, 71)
	// 100 single-flit packets from node 0.
	for i := 0; i < 100; i++ {
		n.NI(0).SendPacket(n.Now(), 1, flit.VNReq, 1, 0)
	}
	n.RunUntil(n.Drained, 10_000)
	if n.InjectedFlits() != 100 {
		t.Fatalf("injected = %d", n.InjectedFlits())
	}
	n.ResetStats()
	if n.InjectedFlits() != 0 || n.InjectionRate() != 0 {
		t.Fatal("ResetStats did not clear injection accounting")
	}
	start := n.Now()
	n.NI(0).SendPacket(n.Now(), 1, flit.VNReq, 1, 0)
	n.RunUntil(n.Drained, 1_000)
	wantRate := 1.0 / float64(n.Nodes()) / float64(n.Now()-start)
	if got := n.InjectionRate(); math.Abs(got-wantRate) > 1e-12 {
		t.Errorf("rate = %g, want %g", got, wantRate)
	}
}

// TestThroughputCountsDeliveredFlits: throughput is delivered flits per
// node per cycle within the window.
func TestThroughputCountsDeliveredFlits(t *testing.T) {
	n := newTestNet(t, Backpressured, 72)
	n.ResetStats()
	start := n.Now()
	n.NI(0).SendPacket(n.Now(), 8, flit.VNData, flit.DataPacketFlits, 0)
	n.RunUntil(n.Drained, 5_000)
	want := float64(flit.DataPacketFlits) / float64(n.Nodes()) / float64(n.Now()-start)
	if got := n.ThroughputFlits(); math.Abs(got-want) > 1e-12 {
		t.Errorf("throughput = %g, want %g", got, want)
	}
}

// TestMeanLatenciesEmptyNetwork: metrics on an idle network are zero, not
// NaN.
func TestMeanLatenciesEmptyNetwork(t *testing.T) {
	n := newTestNet(t, AFC, 73)
	n.Run(100)
	if v := n.MeanNetLatency(); v != 0 || math.IsNaN(v) {
		t.Errorf("net latency on idle network = %g", v)
	}
	if v := n.MeanTotalLatency(); v != 0 || math.IsNaN(v) {
		t.Errorf("total latency on idle network = %g", v)
	}
	if n.InjectionRate() != 0 || n.ThroughputFlits() != 0 {
		t.Error("idle network reports nonzero rates")
	}
	if !n.Drained() {
		t.Error("idle network not drained")
	}
}

// TestEnergyResetsWithWindow: ResetStats clears accumulated energy so
// warmup does not leak into measurements.
func TestEnergyResetsWithWindow(t *testing.T) {
	n := newTestNet(t, Backpressured, 74)
	n.NI(0).SendPacket(n.Now(), 8, flit.VNData, flit.DataPacketFlits, 0)
	n.RunUntil(n.Drained, 5_000)
	if n.TotalEnergy().Total() <= 0 {
		t.Fatal("no energy accrued")
	}
	n.ResetStats()
	if got := n.TotalEnergy().Total(); got != 0 {
		t.Fatalf("energy after reset = %g", got)
	}
	n.Run(10)
	if n.TotalEnergy().RouterStatic <= 0 {
		t.Error("static energy not accruing after reset")
	}
}

// TestModeStatsZeroForNonAFC: mode statistics are empty on networks
// without AFC routers.
func TestModeStatsZeroForNonAFC(t *testing.T) {
	n := newTestNet(t, Backpressured, 75)
	n.Run(200)
	if ms := n.ModeStats(); ms != (ModeStats{}) {
		t.Errorf("mode stats on backpressured network = %+v", ms)
	}
}

// TestRouterAccessors: Router() returns the per-node router and Mesh()
// the topology.
func TestRouterAccessors(t *testing.T) {
	n := newTestNet(t, AFC, 76)
	if n.Nodes() != 9 || n.Mesh().Width != 3 {
		t.Fatalf("unexpected topology: %d nodes", n.Nodes())
	}
	for i := 0; i < n.Nodes(); i++ {
		r := n.Router(topology.NodeID(i))
		if r == nil || r.Node() != topology.NodeID(i) {
			t.Fatalf("router %d accessor broken", i)
		}
	}
	if n.Config().Kind != AFC {
		t.Error("Config() lost the kind")
	}
}
