// Package network assembles a complete on-chip network: a mesh of routers
// of a chosen flow-control kind, the links between them, one network
// interface per node, and per-router energy meters, driven by a
// synchronous cycle kernel.
package network

import (
	"container/heap"
	"fmt"
	"math/rand"
	"reflect"
	"strings"

	"afcnet/internal/config"
	"afcnet/internal/core"
	"afcnet/internal/deflect"
	"afcnet/internal/energy"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/ni"
	"afcnet/internal/router"
	"afcnet/internal/sim"
	"afcnet/internal/topology"
	"afcnet/internal/vcrouter"
)

// Kind selects the flow-control mechanism of every router in the network
// (networks are homogeneous in kind; AFC routers adapt their mode
// individually).
type Kind int

// Network kinds, matching the configurations compared in Section V.
const (
	// Backpressured is the baseline credit-based VC router.
	Backpressured Kind = iota
	// BackpressuredIdealBypass is the baseline with all buffer dynamic
	// energy elided — the lower bound for buffer-bypass techniques.
	// Timing is identical to Backpressured.
	BackpressuredIdealBypass
	// Bless is the backpressureless flit-by-flit deflection router.
	Bless
	// BlessDrop is the drop-based backpressureless variant (extension).
	BlessDrop
	// AFC is the adaptive flow control router.
	AFC
	// AFCAlwaysBuffered pins every AFC router in backpressured mode,
	// isolating lazy VC allocation from adaptivity.
	AFCAlwaysBuffered

	NumKinds = 6
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Backpressured:
		return "backpressured"
	case BackpressuredIdealBypass:
		return "backpressured-ideal-bypass"
	case Bless:
		return "backpressureless"
	case BlessDrop:
		return "backpressureless-drop"
	case AFC:
		return "afc"
	case AFCAlwaysBuffered:
		return "afc-always-backpressured"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// FlitWidthBits returns the total flit width of the kind (Section IV).
func (k Kind) FlitWidthBits() int {
	switch k {
	case Backpressured, BackpressuredIdealBypass:
		return flit.WidthBackpressured
	case Bless, BlessDrop:
		return flit.WidthBackpressureless
	default:
		return flit.WidthAFC
	}
}

// Config parameterizes a network build.
type Config struct {
	// System is the machine configuration (Table II); config.Default()
	// if zero-valued fields are detected.
	System config.System
	// Kind selects the flow-control mechanism.
	Kind Kind
	// Seed roots all randomness (deflection arbitration, traffic).
	Seed int64
	// Energy holds the energy-model parameters; energy.DefaultParams()
	// when zero. MeterEnergy=false disables energy accounting entirely.
	Energy      energy.Params
	MeterEnergy bool
	// Policy selects deflection arbitration (PolicyRandom by default).
	Policy router.DeflectPolicy
	// MisrouteThreshold > 0 switches AFC routers with the rejected
	// cumulative-misroute policy instead of local contention thresholds
	// (ablation A7; see core.Options.MisrouteThreshold).
	MisrouteThreshold int
	// DenseKernel disables active-set scheduling: every ticker runs every
	// cycle, as the original reference kernel did. Results are bit-for-bit
	// identical either way; the dense path exists as the baseline for
	// equivalence tests and benchmarks (see also DenseEnvVar).
	DenseKernel bool
	// NoPool disables the flit arena: every packetization heap-allocates,
	// as the original reference path did. Results are bit-for-bit
	// identical either way; the heap path exists as the baseline for
	// equivalence tests and allocation benchmarks (see also NoPoolEnvVar).
	NoPool bool
	// NoColumnar disables the arena's columnar struct-of-arrays flit
	// banks: routers and NIs read per-flit state from the struct fields,
	// as the original reference path did. Results are bit-for-bit
	// identical either way (the mutable columns are mirror-written at
	// every mutation site); the struct path exists as the baseline for
	// equivalence tests (see also NoColumnarEnvVar). NoPool implies it:
	// without an arena there are no columnar rows to read.
	NoColumnar bool
	// ElidePayload drops the payload column from the columnar banks:
	// the opaque payload tag is never read on the hot datapath (only
	// delivery hands it back to the traffic layer, through a struct
	// field packetization always writes), so eliding the column shrinks
	// every columnar row by 8 bytes. Results are bit-for-bit identical
	// either way. No effect with NoPool or NoColumnar.
	ElidePayload bool
	// Shards splits the router bank's tick across a persistent worker
	// group: the mesh is partitioned into contiguous row bands, each
	// band's routers tick in parallel with all cross-shard effects staged
	// and drained in a fixed global order, so results match the serial
	// kernel for any shard count (see internal/network/shard.go). Values
	// above the mesh height clamp to one shard per row. Shards <= 1 is
	// the untouched serial reference path (see also ShardsEnvVar).
	Shards int
}

// Network is a fully wired mesh NoC.
type Network struct {
	cfg    Config
	mesh   topology.Mesh
	kernel *sim.Kernel
	source *sim.Source
	arena  *flit.Arena // nil when cfg.NoPool

	routers []router.Router
	nis     []*ni.NI
	meters  []*energy.Meter
	links   []*link.Data
	wires   []router.Wires

	// tables is the shared per-mesh route-table/neighbor-list storage
	// every router (and deflector) aliases — one O(N²) block per
	// network instead of one per consumer.
	tables *topology.Tables
	// inbox is the per-node aggregate in-flight slab: inbox[v] mirrors
	// the summed InFlight of every pipe inbound to v's router
	// (link.Pipe.SetTally), split by pipe class — [0] data, [1] credit,
	// [2] ctrl — so the quiescence probe reads one cache line and each
	// receive scan skips outright when its class is idle (in bless-mode
	// steady state the credit and ctrl counters stay zero). Node-ordered,
	// so it is band-major for the sharded tick and each shard touches a
	// private range.
	inbox [][3]int32
	// coreSlab is the contiguous router bank for AFC kinds (nil for the
	// others); its counterparts for the remaining kinds live below.
	coreSlab *core.Slab
	vcSlab   *vcrouter.Slab
	deflSlab *deflect.Slab
	dropSlab *deflect.DropSlab

	// baseTickers marks the kernel registrations made by build itself
	// (router bank + housekeeping); Reset truncates back to it, dropping
	// whatever probes, checkers or traffic layers the previous cell added.
	baseTickers int

	nacks       nackHeap
	nackPending map[uint64]bool

	resetCycle uint64

	// Sharded-tick state (see shard.go). shards is the effective shard
	// count (1 = serial); shardOf maps node to shard; group is the
	// persistent worker set; inBuckets holds each shard's inbound
	// boundary buckets ([0] fed by the lower neighbor band, [1] by the
	// upper), committed by the owning shard at the head of its parallel
	// pass; journals stages the per-shard cross-shard effects of one
	// parallel phase; drainHooks run at the end of each drain (the CMP
	// substrate registers one); inParallel is true exactly while the
	// worker group is inside a compute phase — shared-state mutators
	// (NACK scheduling, ACK clears, create hooks) consult it to decide
	// between acting inline and journaling; shardBank is the registered
	// router bank (band-quiescence wake edges and reset reach it here);
	// timing/btally are the opt-in barrier wall-time tallies.
	shards     int
	shardOf    []int
	bands      []Band
	group      *sim.ShardGroup
	inBuckets  [][2]*link.StagedBucket
	journals   [][]shardEffect
	drainHooks []func(now uint64)
	inParallel bool
	shardBank  *shardedBank
	timing     bool
	btally     barrierTally

	// Fault-injection state (see fault.go). deadLinks records the
	// directed halves of killed links; deadNodes the frozen routers.
	// Lazily allocated — nil until the first fault — and cleared by
	// Reset (the routers' own Reset clears their port masks).
	deadLinks map[faultEdge]bool
	deadNodes []bool
	haveFault bool
}

// New builds a network. It panics on an invalid system configuration
// (construction is programmer-facing; experiments validate configs first).
func New(cfg Config) *Network {
	if cfg.System.Mesh.Width == 0 {
		cfg.System = config.Default()
	}
	if err := cfg.System.Validate(); err != nil {
		panic(err)
	}
	if cfg.Energy.RefWidthBits == 0 {
		cfg.Energy = energy.DefaultParams()
	}

	n := &Network{
		cfg:         cfg,
		mesh:        cfg.System.Mesh,
		kernel:      sim.NewKernel(),
		source:      sim.NewSource(cfg.Seed),
		nackPending: make(map[uint64]bool),
	}
	if !cfg.NoPool {
		n.arena = flit.NewArena()
		if !cfg.NoColumnar {
			n.arena.EnableColumns()
			if cfg.ElidePayload {
				n.arena.ElidePayloadColumn()
			}
		}
	}
	n.build()
	n.baseTickers = n.kernel.Mark()
	return n
}

func (n *Network) build() {
	sys := n.cfg.System
	nodes := n.mesh.Nodes()
	n.wires = make([]router.Wires, nodes)
	wires := n.wires
	n.initShards()

	dataLat := sys.LinkLatency + 1 // switch traversal folded into the link
	sideLat := sys.LinkLatency

	// Shared route tables and the per-node in-flight slab (see the
	// field comments).
	n.tables = n.mesh.NewTables()
	n.inbox = make([][3]int32, nodes)

	// Create one set of channels per directed edge, carved from three
	// contiguous pipe slabs in wiring order (ascending node = band-major
	// for the sharded tick). Pipes whose endpoints land in different
	// shards go into staged-send mode: their sends park sender-side
	// during the parallel phase and commit in the drain (see shard.go);
	// stagePipes collects them in fixed drain order.
	edges := 0
	for node := topology.NodeID(0); node < topology.NodeID(nodes); node++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if _, ok := n.mesh.Neighbor(node, d); ok {
				edges++
			}
		}
	}
	dataSlab := link.NewSlab[*flit.Flit](edges, dataLat)
	creditSlab := link.NewSlab[link.Credit](edges, sideLat)
	ctrlSlab := link.NewSlab[link.Ctrl](edges, sideLat)
	for node := topology.NodeID(0); node < topology.NodeID(nodes); node++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			nb, ok := n.mesh.Neighbor(node, d)
			if !ok {
				continue
			}
			data := dataSlab.New()
			credit := creditSlab.New()
			ctrl := ctrlSlab.New()
			n.links = append(n.links, data)

			// Sender side at node, direction d.
			wires[node].Ports[d].Out = data
			wires[node].Ports[d].CreditIn = credit
			wires[node].Ports[d].CtrlOut = ctrl
			// Receiver side at the neighbor, on the opposite port.
			op := d.Opposite()
			wires[nb].Ports[op].In = data
			wires[nb].Ports[op].CreditOut = credit
			wires[nb].Ports[op].CtrlIn = ctrl

			// Each pipe tallies into its receiver's inbox slot, in its
			// class column: data and ctrl flow node -> nb, credit flows
			// back.
			data.SetTally(&n.inbox[nb][0])
			ctrl.SetTally(&n.inbox[nb][2])
			credit.SetTally(&n.inbox[node][1])

			n.stagePipes(node, nb, data, credit, ctrl)
		}
	}

	// One contiguous router bank per kind, carved in ascending node
	// order below — band-major for the sharded tick's row bands, so each
	// shard's phase-A sweep walks a private contiguous range.
	switch n.cfg.Kind {
	case Backpressured, BackpressuredIdealBypass:
		n.vcSlab = vcrouter.NewSlab(nodes, sys.Baseline)
	case Bless:
		n.deflSlab = deflect.NewSlab(nodes)
	case BlessDrop:
		n.dropSlab = deflect.NewDropSlab(nodes)
	case AFC, AFCAlwaysBuffered:
		n.coreSlab = core.NewSlab(nodes, sys.AFC, sys.LinkLatency)
	}

	n.nis = make([]*ni.NI, nodes)
	n.meters = make([]*energy.Meter, nodes)
	n.routers = make([]router.Router, nodes)
	// NIs live in one contiguous slab carved in node order, so the
	// housekeeping sweep (SampleQueues over all nodes) walks memory
	// sequentially instead of chasing per-node heap objects.
	niSlab := ni.NewSlab(nodes)
	for node := topology.NodeID(0); node < topology.NodeID(nodes); node++ {
		n.nis[node] = niSlab.New(node)
		n.nis[node].SetArena(n.arena)
		if n.shards > 1 {
			// Create hooks (trace recording) write cross-shard state, so
			// while a parallel phase is running the NI journals the packet
			// shard-locally; the drain replays it in serial node order.
			sh := n.shardOf[node]
			nd := node
			n.nis[node].SetCreateDefer(&n.inParallel, func(p flit.Packet) {
				n.journals[sh] = append(n.journals[sh], shardEffect{kind: effCreate, node: nd, packet: p})
			})
		}
		var meter *energy.Meter
		if n.cfg.MeterEnergy {
			meter = n.newMeter()
		}
		n.meters[node] = meter
		n.routers[node] = n.newRouter(node, wires[node], meter)
		if ib, ok := n.routers[node].(interface{ SetInbox(*[3]int32) }); ok {
			ib.SetInbox(&n.inbox[node])
		}
	}
	// Hand the columnar banks to every router; a nil result (NoPool or
	// NoColumnar) selects the struct-field reference path everywhere.
	if cols := n.arena.Columns(); cols != nil {
		for _, r := range n.routers {
			if cr, ok := r.(interface{ SetColumns(*flit.Columns) }); ok {
				cr.SetColumns(cols)
			}
		}
	}
	// One bank entry + housekeeping + a handful of AddTicker clients
	// (generator or CMP, probe, checker, observer).
	n.kernel.Reserve(8)
	n.kernel.SetDense(n.cfg.DenseKernel)
	n.registerRouterBank()
	n.kernel.Register(&houseKeeper{n: n})
}

func (n *Network) newMeter() *energy.Meter {
	k := n.cfg.Kind
	slots := 0
	dynBuf := true
	switch k {
	case Backpressured:
		slots = n.cfg.System.Baseline.BufferSlotsPerPort()
	case BackpressuredIdealBypass:
		slots = n.cfg.System.Baseline.BufferSlotsPerPort()
		dynBuf = false
	case AFC, AFCAlwaysBuffered:
		slots = n.cfg.System.AFC.BufferSlotsPerPort()
	}
	return energy.NewMeter(n.cfg.Energy, k.FlitWidthBits(), slots, topology.NumPorts, dynBuf)
}

func (n *Network) newRouter(node topology.NodeID, w router.Wires, meter *energy.Meter) router.Router {
	sys := n.cfg.System
	nif := n.nis[node]
	switch n.cfg.Kind {
	case Backpressured, BackpressuredIdealBypass:
		return n.vcSlab.New(n.mesh, node, sys.Baseline, sys.EjectWidth, w, nif, nif, meter, n.tables)
	case Bless:
		return n.deflSlab.New(n.mesh, node, n.cfg.Policy, sys.EjectWidth, n.source.Stream(), w, nif, nif, meter, n.tables)
	case BlessDrop:
		nif.SetRetain(true)
		// ACK the source on delivery so it stops retransmitting; the
		// paper's drop designs carry ACKs on the dedicated NACK fabric.
		// During a sharded parallel phase the clear targets another
		// shard's NI, so it is journaled and replayed in the drain.
		nif.SetAckHook(func(_ uint64, d ni.Delivered) {
			if n.inParallel {
				sh := n.shardOf[node]
				n.journals[sh] = append(n.journals[sh], shardEffect{kind: effAck, src: d.Src, pkt: d.ID})
				return
			}
			n.nis[d.Src].ClearRetained(d.ID)
		})
		return n.dropSlab.New(n.mesh, node, sys.EjectWidth, n.source.Stream(), w, nif, nif, meter,
			&nodeNacker{net: n, node: node}, n.tables)
	case AFC:
		return n.coreSlab.New(n.mesh, node, sys.AFC, sys.LinkLatency, sys.EjectWidth, n.source.Stream(), w, nif, nif, meter,
			core.Options{Policy: n.cfg.Policy, MisrouteThreshold: n.cfg.MisrouteThreshold, Tables: n.tables})
	case AFCAlwaysBuffered:
		return n.coreSlab.New(n.mesh, node, sys.AFC, sys.LinkLatency, sys.EjectWidth, n.source.Stream(), w, nif, nif, meter,
			core.Options{AlwaysBuffered: true, Policy: n.cfg.Policy, Tables: n.tables})
	}
	panic(fmt.Sprintf("network: unknown kind %v", n.cfg.Kind))
}

// houseKeep runs once per cycle after the routers: NI queue sampling and
// due NACK retransmissions.
func (n *Network) houseKeep(now uint64) {
	for _, nif := range n.nis {
		nif.SampleQueues()
	}
	for len(n.nacks) > 0 && n.nacks[0].due <= now {
		e := heap.Pop(&n.nacks).(nackEntry)
		switch n.nis[e.src].Retransmit(now, e.pkt) {
		case ni.RetransmitDeferred:
			// The current copy is still draining out of the source; retry
			// shortly — dropping this NACK would stall the packet.
			heap.Push(&n.nacks, nackEntry{due: now + 32, src: e.src, pkt: e.pkt})
		default:
			delete(n.nackPending, e.pkt)
		}
	}
}

// Arena returns the network's flit arena (nil with NoPool). Tests use it
// as the leak oracle: a drained network must have zero live flits.
func (n *Network) Arena() *flit.Arena { return n.arena }

// Reset rewinds the network to the state New(cfg) would have produced,
// reusing every buffer, map, ring and histogram already sized by the
// previous run. cfg may differ from the build configuration only in
// Seed; any other difference makes reuse unsound (routers, meters and
// banks bake the rest of the configuration in at construction) and
// Reset reports false without touching anything, telling the caller to
// build fresh. Tickers registered after construction (probes, checkers,
// traffic layers) are dropped and must be re-registered, in the same
// order as on a fresh build, for stream numbering to line up.
func (n *Network) Reset(cfg Config) bool {
	if cfg.System.Mesh.Width == 0 {
		cfg.System = config.Default()
	}
	if cfg.Energy.RefWidthBits == 0 {
		cfg.Energy = energy.DefaultParams()
	}
	want, have := cfg, n.cfg
	want.Seed, have.Seed = 0, 0
	if !reflect.DeepEqual(want, have) {
		return false
	}
	n.cfg = cfg

	// Any flit still in flight when the previous cell stopped (closed-loop
	// measurement windows end mid-traffic) is force-reclaimed; the
	// generation stamps catch stragglers that somehow resurface.
	n.arena.Reclaim()
	n.source.Reset(cfg.Seed)
	n.kernel.Truncate(n.baseTickers)
	n.kernel.Rewind()

	// Walk each pipe exactly once via its sender-side handle.
	for node := range n.wires {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			p := &n.wires[node].Ports[d]
			if p.Out != nil {
				p.Out.Reset()
			}
			if p.CreditIn != nil {
				p.CreditIn.Reset()
			}
			if p.CtrlOut != nil {
				p.CtrlOut.Reset()
			}
		}
	}
	for _, nif := range n.nis {
		nif.Reset()
	}
	for _, m := range n.meters {
		if m != nil {
			m.Reset()
		}
	}
	// Routers reset in node order, consuming one stream number each for
	// the kinds whose constructors do — the same numbering a fresh build
	// would have produced.
	for _, r := range n.routers {
		switch rt := r.(type) {
		case *vcrouter.Router:
			rt.Reset()
		case *deflect.Router:
			rt.Reset(n.source.StreamSeed())
		case *deflect.DropRouter:
			rt.Reset(n.source.StreamSeed())
		case *core.Router:
			rt.Reset(n.source.StreamSeed())
		}
	}
	n.nacks = n.nacks[:0]
	clear(n.nackPending)
	n.resetCycle = 0
	// Sharded-tick state: journals are drained every cycle and hooks are
	// re-registered by whoever reattaches (like tickers), but clear both
	// so a cell abandoned mid-cycle cannot leak effects into the next.
	// Boundary buckets likewise: the pipes' own Reset above discarded any
	// parked values. The band-quiescence flags restart cold (quiet=false
	// forces a full first pass). The barrier tally deliberately survives:
	// it is lifetime telemetry, not simulation state, and the obs layer
	// folds it into the run manifest once at the end of a sweep — zeroing
	// here would drop every cell but the last from a reused network.
	for i := range n.journals {
		n.journals[i] = n.journals[i][:0]
	}
	for i := range n.inBuckets {
		for _, b := range n.inBuckets[i] {
			if b != nil {
				b.Reset()
			}
		}
	}
	if n.shardBank != nil {
		n.shardBank.reset()
	}
	n.drainHooks = n.drainHooks[:0]
	n.inParallel = false
	clear(n.deadLinks)
	clear(n.deadNodes)
	n.haveFault = false
	return true
}

// Kernel exposes the cycle kernel so traffic generators and the CMP
// substrate can register their own tickers.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// ReseedStream rewinds an existing random stream to the state the next
// RandStream call would mint, consuming the same stream number. Reattach
// paths use it to restore generator and workload randomness without
// allocating fresh generators.
func (n *Network) ReseedStream(r *rand.Rand) { n.source.Reseed(r) }

// RandStream mints a deterministic random stream rooted at the network's
// seed, for traffic generators and workload models.
func (n *Network) RandStream() *rand.Rand { return n.source.Stream() }

// AddTicker registers an additional per-cycle component (traffic
// generator, CMP model). It runs after the routers each cycle.
func (n *Network) AddTicker(t sim.Ticker) { n.kernel.Register(t) }

// Wires returns the link endpoints of node. Routers own the wires;
// the invariant checker reads link state through this accessor.
func (n *Network) Wires(node topology.NodeID) router.Wires { return n.wires[node] }

// Mesh returns the network's mesh.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() uint64 { return n.kernel.Now() }

// Step advances one cycle.
func (n *Network) Step() { n.kernel.Step() }

// Run advances c cycles.
func (n *Network) Run(c uint64) { n.kernel.Run(c) }

// RunUntil steps until pred holds or limit cycles pass.
func (n *Network) RunUntil(pred func() bool, limit uint64) bool {
	return n.kernel.RunUntil(pred, limit)
}

// NI returns the network interface of node.
func (n *Network) NI(node topology.NodeID) *ni.NI { return n.nis[node] }

// Router returns the router of node (callers type-assert for
// kind-specific stats).
func (n *Network) Router(node topology.NodeID) router.Router { return n.routers[node] }

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.mesh.Nodes() }

// nodeNacker adapts the drop router's NACK port to scheduled source
// retransmission. The NACK flight time models the paper's dedicated,
// guaranteed-delivery NACK fabric: proportional to the drop site's
// distance from the source.
type nodeNacker struct {
	net  *Network
	node topology.NodeID
}

// Nack implements deflect.Nacker. The drop site recycles the flit right
// after this call, so the staged path captures the fields it needs by
// value; scheduling itself touches network-global state (pending set,
// source-NI epoch, NACK heap) and therefore runs inline only outside a
// parallel phase, journaled otherwise.
func (nk *nodeNacker) Nack(now uint64, f *flit.Flit) {
	n := nk.net
	if n.inParallel {
		sh := n.shardOf[nk.node]
		n.journals[sh] = append(n.journals[sh], shardEffect{
			kind: effNack, node: nk.node, src: f.Src, pkt: f.PacketID, retx: f.Retransmits,
		})
		return
	}
	n.scheduleNack(now, nk.node, f.Src, f.PacketID, f.Retransmits)
}

// scheduleNack schedules a source retransmission for a flit dropped at
// node, unless a retransmission is already pending or the NACK is stale.
func (n *Network) scheduleNack(now uint64, node, src topology.NodeID, pkt uint64, retransmits int) {
	if n.nackPending[pkt] {
		return // a retransmission of this packet is already scheduled
	}
	epoch := n.nis[src].Epoch(pkt)
	if retransmits != epoch {
		return // stale NACK from a superseded or delivered copy
	}
	// NACK flight time back to the source plus exponential backoff per
	// retransmission: without backoff, synchronized retransmitted copies
	// contend forever (congestion livelock).
	dist := n.mesh.Distance(node, src)
	delay := uint64((dist + 1) * (n.cfg.System.LinkLatency + 2))
	if epoch > 8 {
		epoch = 8
	}
	delay <<= uint(epoch)
	n.nackPending[pkt] = true
	heap.Push(&n.nacks, nackEntry{due: now + delay, src: src, pkt: pkt})
}

type nackEntry struct {
	due uint64
	src topology.NodeID
	pkt uint64
}

type nackHeap []nackEntry

func (h nackHeap) Len() int            { return len(h) }
func (h nackHeap) Less(i, j int) bool  { return h[i].due < h[j].due }
func (h nackHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nackHeap) Push(x interface{}) { *h = append(*h, x.(nackEntry)) }
func (h *nackHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MarshalJSON encodes the kind as its string name, so exported experiment
// results are self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i := Kind(0); i < NumKinds; i++ {
		if i.String() == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("network: unknown kind %q", s)
}
