package network_test

import (
	"reflect"
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/config"
	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/topology"
)

// FuzzShardBarrier drives a sharded network and its serial twin through
// an identical byte-programmed schedule of injections, single steps,
// multi-cycle runs and drain attempts, with the invariant checker
// attached to both, and demands bit-identical outcomes. The fuzzer's job
// is to find an interleaving of boundary-crossing traffic and kernel
// coasting that the two-phase barrier orders differently from the serial
// kernel; any such input fails the DeepEqual below (and checker
// violations panic outright). make fuzz-smoke gives it a short budget on
// every CI run; longer local runs just raise -fuzztime.
func FuzzShardBarrier(f *testing.F) {
	f.Add([]byte{0, 2, 9, 1, 17, 33, 2, 0, 3})
	f.Add([]byte{4, 3, 6, 14, 6, 41, 1, 7, 6, 22, 3, 3})
	f.Add([]byte{2, 1, 5, 0, 5, 63, 5, 127, 1, 15, 3})
	f.Add([]byte{5, 2, 9, 9, 9, 9, 1, 200, 3, 9, 48, 1, 30, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 64 {
			t.Skip("schedule out of bounds")
		}
		kind := network.Kind(int(data[0]) % int(network.NumKinds))
		shards := []int{2, 3, 4}[int(data[1])%3]
		data = data[2:]

		build := func(shards int) *network.Network {
			n := network.New(network.Config{
				Kind: kind, Seed: 11, Shards: shards,
				System: config.DefaultWithMesh(topology.NewMesh(4, 4)),
			})
			check.Attach(n)
			return n
		}
		run := func(shards int) (snap struct {
			Now                uint64
			Counters           network.Counters
			Created, Delivered uint64
			Drained            bool
		}) {
			n := build(shards)
			defer n.Close()
			nodes := uint64(n.Nodes())
			var budget uint64 = 4096 // cap total simulated cycles per twin
			for i := 0; i < len(data); i++ {
				op := data[i]
				switch op % 4 {
				case 0: // one cycle
					if budget == 0 {
						continue
					}
					budget--
					n.Step()
				case 1: // burst of cycles
					c := uint64(op/4) + 1
					if c > budget {
						c = budget
					}
					budget -= c
					n.Run(c)
				case 2: // inject one packet src->dst
					src := topology.NodeID(uint64(op/4) % nodes)
					var b byte
					if i+1 < len(data) {
						i++
						b = data[i]
					}
					dst := topology.NodeID(uint64(b) % nodes)
					if dst == src {
						dst = topology.NodeID((uint64(dst) + 1) % nodes)
					}
					vn := flit.VN(uint64(b/16) % flit.NumVNs)
					length := int(uint64(b/4)%4) + 1
					n.NI(src).SendPacket(n.Now(), dst, vn, length, uint64(op))
				default: // drain attempt (bounded; may time out, twin must too)
					n.RunUntil(n.Drained, 2048)
				}
			}
			n.RunUntil(n.Drained, 8192)
			snap.Now = n.Now()
			snap.Counters = n.Counters()
			snap.Created = n.CreatedPackets()
			snap.Delivered = n.DeliveredPackets()
			snap.Drained = n.Drained()
			return snap
		}

		serial := run(0)
		sharded := run(shards)
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("%v at %d shards diverged from serial:\nserial:  %+v\nsharded: %+v",
				kind, shards, serial, sharded)
		}
	})
}
