package network

import (
	"os"
	"strconv"

	"afcnet/internal/core"
	"afcnet/internal/deflect"
	"afcnet/internal/vcrouter"
)

// DenseEnvVar forces the dense reference kernel in every harness that
// consults DenseFromEnv (cmd/afcsim, cmd/figures, cmd/sweep).
const DenseEnvVar = "AFCSIM_DENSE"

// DenseFromEnv reports whether AFCSIM_DENSE requests dense-kernel runs.
// Any value other than empty, "0", "false", "no" or "off" disables
// active-set scheduling.
func DenseFromEnv() bool {
	return envSet(DenseEnvVar)
}

// NoPoolEnvVar forces heap-allocated flits (no arena) in every harness
// that consults NoPoolFromEnv (cmd/afcsim, cmd/figures, cmd/sweep).
const NoPoolEnvVar = "AFCSIM_NOPOOL"

// NoPoolFromEnv reports whether AFCSIM_NOPOOL requests the heap
// reference path. Any value other than empty, "0", "false", "no" or
// "off" disables the flit arena.
func NoPoolFromEnv() bool {
	return envSet(NoPoolEnvVar)
}

// NoColumnarEnvVar forces struct-field flit reads (no columnar banks) in
// every harness that consults NoColumnarFromEnv (cmd/afcsim,
// cmd/figures, cmd/sweep, cmd/benchjson).
const NoColumnarEnvVar = "AFCSIM_NOCOLUMNAR"

// NoColumnarFromEnv reports whether AFCSIM_NOCOLUMNAR requests the
// struct-field reference path. Any value other than empty, "0", "false",
// "no" or "off" disables the columnar flit banks.
func NoColumnarFromEnv() bool {
	return envSet(NoColumnarEnvVar)
}

// ElidePayloadEnvVar drops the arena's payload column in every harness
// that consults ElidePayloadFromEnv (cmd/afcsim, cmd/figures,
// cmd/sweep, cmd/benchjson).
const ElidePayloadEnvVar = "AFCSIM_ELIDEPAYLOAD"

// ElidePayloadFromEnv reports whether AFCSIM_ELIDEPAYLOAD requests
// payload-column elision. Any value other than empty, "0", "false",
// "no" or "off" drops the column; results are bit-for-bit identical.
func ElidePayloadFromEnv() bool {
	return envSet(ElidePayloadEnvVar)
}

// ShardsEnvVar sets the default shard count of the sharded tick in every
// harness that consults ShardsFromEnv (cmd/afcsim, cmd/figures,
// cmd/sweep, cmd/benchjson). Values <= 1 (or anything unparseable) keep
// the serial reference path.
const ShardsEnvVar = "AFCSIM_SHARDS"

// ShardsFromEnv returns the shard count requested via AFCSIM_SHARDS, or
// 0 (serial) when unset or not a positive integer.
func ShardsFromEnv() int {
	v, err := strconv.Atoi(os.Getenv(ShardsEnvVar))
	if err != nil || v < 0 {
		return 0
	}
	return v
}

func envSet(name string) bool {
	switch os.Getenv(name) {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}

// The router banks below register a whole mesh's routers as ONE kernel
// entry per network. This buys two things over per-router registration:
// the hot per-cycle loop dispatches Tick/Quiescent/FastForward on a
// concrete type (devirtualized, inlinable) instead of through the
// router.Router interface, and the active-set skip happens per router
// inside the bank, so one busy router does not force its 63 idle
// neighbors through full Tick bodies. Routers tick in node order, exactly
// as the previous one-entry-per-router registration did.
//
// The banks are written out per concrete type on purpose: a generic bank
// would route every call through the type parameter's dictionary and give
// the devirtualization back.

type vcBank struct {
	rs    []*vcrouter.Router
	dense bool
}

func (b *vcBank) Tick(now uint64) {
	for _, r := range b.rs {
		if !b.dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
		}
	}
}

func (b *vcBank) Quiescent(now uint64) bool {
	for _, r := range b.rs {
		if !r.Quiescent(now) {
			return false
		}
	}
	return true
}

func (b *vcBank) FastForward(cycles uint64) {
	for _, r := range b.rs {
		r.FastForward(cycles)
	}
}

type deflectBank struct {
	rs    []*deflect.Router
	dense bool
}

func (b *deflectBank) Tick(now uint64) {
	for _, r := range b.rs {
		if !b.dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
		}
	}
}

func (b *deflectBank) Quiescent(now uint64) bool {
	for _, r := range b.rs {
		if !r.Quiescent(now) {
			return false
		}
	}
	return true
}

func (b *deflectBank) FastForward(cycles uint64) {
	for _, r := range b.rs {
		r.FastForward(cycles)
	}
}

type dropBank struct {
	rs    []*deflect.DropRouter
	dense bool
}

func (b *dropBank) Tick(now uint64) {
	for _, r := range b.rs {
		if !b.dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
		}
	}
}

func (b *dropBank) Quiescent(now uint64) bool {
	for _, r := range b.rs {
		if !r.Quiescent(now) {
			return false
		}
	}
	return true
}

func (b *dropBank) FastForward(cycles uint64) {
	for _, r := range b.rs {
		r.FastForward(cycles)
	}
}

type coreBank struct {
	rs    []*core.Router
	dense bool
}

func (b *coreBank) Tick(now uint64) {
	for _, r := range b.rs {
		if !b.dense && r.Quiescent(now) {
			r.FastForward(1)
		} else {
			r.Tick(now)
		}
	}
}

func (b *coreBank) Quiescent(now uint64) bool {
	for _, r := range b.rs {
		if !r.Quiescent(now) {
			return false
		}
	}
	return true
}

func (b *coreBank) FastForward(cycles uint64) {
	for _, r := range b.rs {
		r.FastForward(cycles)
	}
}

// registerRouterBank wraps n.routers in the concrete bank for the
// network's kind and registers it as a single kernel entry. With the
// sharded tick enabled the bank is the sharded one (shard.go), which
// runs the same per-router loops through the worker-group barrier.
func (n *Network) registerRouterBank() {
	if n.shards > 1 {
		if b := n.newShardedBank(); b != nil {
			n.shardBank = b
			n.kernel.Register(b)
			return
		}
	}
	switch n.cfg.Kind {
	case Backpressured, BackpressuredIdealBypass:
		b := &vcBank{dense: n.cfg.DenseKernel}
		for _, r := range n.routers {
			b.rs = append(b.rs, r.(*vcrouter.Router))
		}
		n.kernel.Register(b)
	case Bless:
		b := &deflectBank{dense: n.cfg.DenseKernel}
		for _, r := range n.routers {
			b.rs = append(b.rs, r.(*deflect.Router))
		}
		n.kernel.Register(b)
	case BlessDrop:
		b := &dropBank{dense: n.cfg.DenseKernel}
		for _, r := range n.routers {
			b.rs = append(b.rs, r.(*deflect.DropRouter))
		}
		n.kernel.Register(b)
	case AFC, AFCAlwaysBuffered:
		b := &coreBank{dense: n.cfg.DenseKernel}
		for _, r := range n.routers {
			b.rs = append(b.rs, r.(*core.Router))
		}
		n.kernel.Register(b)
	default:
		// Unknown kind: keep the generic per-router registration so tests
		// exercising future kinds still run (no active-set skipping).
		for _, r := range n.routers {
			n.kernel.Register(r)
		}
	}
}

// houseKeeper is the per-cycle housekeeping entry (NI queue sampling, due
// NACK retransmissions), as a Quiescer/Sleeper so NACK backoff waits and
// drained stretches fast-forward instead of scanning every NI each cycle.
type houseKeeper struct{ n *Network }

// Tick implements sim.Ticker.
func (h *houseKeeper) Tick(now uint64) { h.n.houseKeep(now) }

// Quiescent implements sim.Quiescer: with every NI source queue empty the
// sampling pass accumulates only zeros, and with no due NACK the
// retransmission loop does not run.
func (h *houseKeeper) Quiescent(now uint64) bool {
	for _, nif := range h.n.nis {
		if nif.QueuedFlits() != 0 {
			return false
		}
	}
	return len(h.n.nacks) == 0 || h.n.nacks[0].due > now
}

// FastForward implements sim.Quiescer: record the skipped cycles' zero
// queue-depth samples in bulk.
func (h *houseKeeper) FastForward(cycles uint64) {
	for _, nif := range h.n.nis {
		nif.SampleQueuesIdle(cycles)
	}
}

// NextWake implements sim.Sleeper: the earliest scheduled NACK
// retransmission. While the system is frozen no new NACKs are scheduled,
// so the heap head is the only future state change.
func (h *houseKeeper) NextWake(now uint64) (uint64, bool) {
	if len(h.n.nacks) == 0 {
		return 0, false
	}
	return h.n.nacks[0].due, true
}
