package deflect

import (
	"math/rand"
	"testing"

	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

type fakeNI struct {
	queues    [flit.NumVNs][]*flit.Flit
	delivered []*flit.Flit
}

func (f *fakeNI) Peek(vn flit.VN) *flit.Flit {
	if len(f.queues[vn]) == 0 {
		return nil
	}
	return f.queues[vn][0]
}

func (f *fakeNI) Pop(vn flit.VN) *flit.Flit {
	fl := f.Peek(vn)
	if fl != nil {
		f.queues[vn] = f.queues[vn][1:]
	}
	return fl
}

func (f *fakeNI) Deliver(_ uint64, fl *flit.Flit) { f.delivered = append(f.delivered, fl) }

const testLinkLat = 2

// harness drives a single deflection router at the center of a 3x3 mesh,
// holding the far end of all four links.
type harness struct {
	r     *Router
	ni    *fakeNI
	now   uint64
	wires router.Wires
}

func newHarness(t *testing.T, node topology.NodeID) *harness {
	t.Helper()
	mesh := topology.NewMesh(3, 3)
	h := &harness{ni: &fakeNI{}}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if _, ok := mesh.Neighbor(node, d); !ok {
			continue
		}
		h.wires.Ports[d] = router.PortLinks{
			Out:       link.NewData(testLinkLat + 1),
			In:        link.NewData(testLinkLat + 1),
			CreditOut: link.NewCredit(testLinkLat),
			CreditIn:  link.NewCredit(testLinkLat),
			CtrlOut:   link.NewCtrl(testLinkLat),
			CtrlIn:    link.NewCtrl(testLinkLat),
		}
	}
	h.r = New(mesh, node, router.PolicyRandom, 1, rand.New(rand.NewSource(9)),
		h.wires, h.ni, h.ni, nil)
	return h
}

func (h *harness) tick() {
	h.r.Tick(h.now)
	h.now++
}

func (h *harness) recvAll() map[topology.Dir]*flit.Flit {
	out := map[topology.Dir]*flit.Flit{}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if h.wires.Ports[d].Out == nil {
			continue
		}
		if f, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
			out[d] = f
		}
	}
	return out
}

func mk(id uint64, src, dst topology.NodeID) *flit.Flit {
	return &flit.Flit{PacketID: id, Len: 1, Src: src, Dst: dst, VN: flit.VNReq}
}

// TestEveryLatchedFlitDepartsNextCycle is the defining deflection
// invariant: flits never wait in the router.
func TestEveryLatchedFlitDepartsNextCycle(t *testing.T) {
	h := newHarness(t, 4)
	// Saturate: one flit on every input every cycle for 200 cycles.
	sent, out := 0, 0
	for c := 0; c < 200; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			f := mk(uint64(c*10+int(d)), 0, 8) // none destined here
			if h.wires.Ports[d].In.CanSend(h.now) {
				h.wires.Ports[d].In.Send(h.now, f)
				sent++
			}
		}
		h.tick()
		out += len(h.recvAll())
		if h.r.LatchedFlits() > topology.NumDirs {
			t.Fatalf("latch occupancy %d exceeds port count", h.r.LatchedFlits())
		}
	}
	// Everything in must come out (minus what is still in flight in the
	// last couple of cycles).
	for c := 0; c < 10; c++ {
		h.tick()
		out += len(h.recvAll())
	}
	if out+len(h.ni.delivered) != sent {
		t.Fatalf("in %d, out %d + delivered %d", sent, out, len(h.ni.delivered))
	}
}

// TestContendingFlitsOneWinsOthersDeflect: four flits all wanting East
// must all depart, exactly one on East.
func TestContendingFlitsOneWinsOthersDeflect(t *testing.T) {
	h := newHarness(t, 4)
	// node 4 center, dst 5 is directly East
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		h.wires.Ports[d].In.Send(h.now, mk(uint64(d), 0, 5))
	}
	got := map[topology.Dir]*flit.Flit{}
	for c := 0; c < 10; c++ {
		h.tick()
		for d, f := range h.recvAll() {
			got[d] = f
		}
	}
	if len(got) != 4 {
		t.Fatalf("dispatched %d flits, want 4", len(got))
	}
	if got[topology.East] == nil {
		t.Fatal("no flit took the productive East port")
	}
	defl := 0
	for d, f := range got {
		if d != topology.East && f.Deflections != 1 {
			t.Errorf("flit on %s has %d deflections, want 1", d, f.Deflections)
		}
		if d != topology.East {
			defl++
		}
	}
	if defl != 3 || h.r.Deflections() != 3 {
		t.Errorf("deflections = %d (router says %d), want 3", defl, h.r.Deflections())
	}
}

// TestEjectionContention: two flits destined here, one ejects, the other
// is deflected and must not be lost.
func TestEjectionContention(t *testing.T) {
	h := newHarness(t, 4)
	h.wires.Ports[topology.East].In.Send(h.now, mk(1, 0, 4))
	h.wires.Ports[topology.West].In.Send(h.now, mk(2, 0, 4))
	sentOut := 0
	for c := 0; c < 10; c++ {
		h.tick()
		sentOut += len(h.recvAll())
	}
	if len(h.ni.delivered) != 1 {
		t.Fatalf("ejected %d flits in one cycle, want 1", len(h.ni.delivered))
	}
	if sentOut != 1 {
		t.Fatalf("deflected %d flits, want 1", sentOut)
	}
}

// TestInjectionBackpressure: with all output ports taken by network
// flits, the router must not inject (footnote 3).
func TestInjectionBackpressure(t *testing.T) {
	h := newHarness(t, 4)
	h.ni.queues[flit.VNReq] = append(h.ni.queues[flit.VNReq], mk(99, 4, 8))
	// Keep all four inputs busy so all four outputs are taken every cycle.
	// (The first few cycles cover link latency before the squeeze is on;
	// the injection register also needs one arming cycle, so check only
	// the steady state from cycle 5 on.)
	for c := 0; c < 5; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].In.CanSend(h.now) {
				h.wires.Ports[d].In.Send(h.now, mk(uint64(500+c*10+int(d)), 0, 8))
			}
		}
		h.tick()
		h.recvAll()
	}
	h.ni.queues[flit.VNReq] = h.ni.queues[flit.VNReq][:0]
	h.ni.queues[flit.VNReq] = append(h.ni.queues[flit.VNReq], mk(99, 4, 8))
	for c := 0; c < 20; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].In.CanSend(h.now) {
				h.wires.Ports[d].In.Send(h.now, mk(uint64(100+c*10+int(d)), 0, 8))
			}
		}
		h.tick()
		h.recvAll()
	}
	if len(h.ni.queues[flit.VNReq]) != 1 {
		t.Fatal("router injected despite full output ports")
	}
	// Once inputs quiesce, the flit injects.
	for c := 0; c < 10; c++ {
		h.tick()
		h.recvAll()
	}
	if len(h.ni.queues[flit.VNReq]) != 0 {
		t.Fatal("router failed to inject after ports freed")
	}
}

// TestInjectionPipelineLatency: an injected flit spends one cycle in the
// injection register before port assignment (2-cycle router for injected
// flits too).
func TestInjectionPipelineLatency(t *testing.T) {
	h := newHarness(t, 4)
	h.ni.queues[flit.VNReq] = append(h.ni.queues[flit.VNReq], mk(7, 4, 5))
	h.tick() // cycle 0: arming only
	if got := h.recvAll(); len(got) != 0 {
		t.Fatal("flit dispatched in arming cycle")
	}
	h.tick() // cycle 1: injected + sent
	h.tick()
	h.tick()
	h.tick() // arrives at out link after lat+1 = 3 cycles (sent at 1 -> visible at 4)
	if f, ok := h.wires.Ports[topology.East].Out.Peek(h.now - 1); ok && f != nil {
		t.Log("flit visible one early — timing drift")
	}
	got, ok := h.wires.Ports[topology.East].Out.Recv(4)
	if !ok || got.PacketID != 7 {
		t.Fatalf("injected flit not on East at cycle 4: %v %v", got, ok)
	}
	if got.InjectedAt != 0 {
		t.Errorf("InjectedAt = %d, want 0 (register entry)", got.InjectedAt)
	}
}

// TestCornerRouterNeverStuck: corner routers have only 2 links; even
// fully loaded they must dispatch everything.
func TestCornerRouterNeverStuck(t *testing.T) {
	h := newHarness(t, 0) // corner: East and South only
	sent, out := 0, 0
	for c := 0; c < 100; c++ {
		for _, d := range []topology.Dir{topology.East, topology.South} {
			if h.wires.Ports[d].In.CanSend(h.now) {
				h.wires.Ports[d].In.Send(h.now, mk(uint64(c*10+int(d)), 8, 8))
				sent++
			}
		}
		h.tick()
		for _, d := range []topology.Dir{topology.East, topology.South} {
			if _, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
				out++
			}
		}
	}
	for c := 0; c < 10; c++ {
		h.tick()
		for _, d := range []topology.Dir{topology.East, topology.South} {
			if _, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
				out++
			}
		}
	}
	if out != sent {
		t.Fatalf("corner router lost flits: in %d out %d", sent, out)
	}
}
