package deflect

import (
	"math/rand"
	"testing"

	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

type recordingNacker struct {
	nacks []*flit.Flit
}

func (r *recordingNacker) Nack(_ uint64, f *flit.Flit) { r.nacks = append(r.nacks, f) }

type dropHarness struct {
	r     *DropRouter
	ni    *fakeNI
	nack  *recordingNacker
	now   uint64
	wires router.Wires
}

func newDropHarness(t *testing.T, node topology.NodeID) *dropHarness {
	t.Helper()
	mesh := topology.NewMesh(3, 3)
	h := &dropHarness{ni: &fakeNI{}, nack: &recordingNacker{}}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if _, ok := mesh.Neighbor(node, d); !ok {
			continue
		}
		h.wires.Ports[d] = router.PortLinks{
			Out: link.NewData(testLinkLat + 1),
			In:  link.NewData(testLinkLat + 1),
		}
	}
	h.r = NewDrop(mesh, node, 1, rand.New(rand.NewSource(3)), h.wires, h.ni, h.ni, nil, h.nack)
	return h
}

func (h *dropHarness) tick() {
	h.r.Tick(h.now)
	h.now++
}

func (h *dropHarness) recvAll() int {
	n := 0
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if h.wires.Ports[d].Out == nil {
			continue
		}
		if _, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
			n++
		}
	}
	return n
}

// TestDropOnProductiveContention: two flits contending for the same
// productive port — one advances, the other is dropped and NACKed (never
// deflected).
func TestDropOnProductiveContention(t *testing.T) {
	h := newDropHarness(t, 4)
	// Both flits at center node 4 want East (dst 5).
	h.wires.Ports[topology.North].In.Send(h.now, mk(1, 1, 5))
	h.wires.Ports[topology.South].In.Send(h.now, mk(2, 7, 5))
	sent := 0
	for c := 0; c < 10; c++ {
		h.tick()
		sent += h.recvAll()
	}
	if sent != 1 {
		t.Fatalf("forwarded %d flits, want exactly 1 (no deflection)", sent)
	}
	if len(h.nack.nacks) != 1 {
		t.Fatalf("nacks = %d, want 1", len(h.nack.nacks))
	}
	if h.r.DroppedFlits() != 1 {
		t.Fatalf("dropped = %d", h.r.DroppedFlits())
	}
}

// TestDropEjectionContention: a destination flit that loses the ejection
// port is dropped (not misrouted) and NACKed.
func TestDropEjectionContention(t *testing.T) {
	h := newDropHarness(t, 4)
	h.wires.Ports[topology.East].In.Send(h.now, mk(1, 0, 4))
	h.wires.Ports[topology.West].In.Send(h.now, mk(2, 0, 4))
	for c := 0; c < 10; c++ {
		h.tick()
		h.recvAll()
	}
	if len(h.ni.delivered) != 1 {
		t.Fatalf("delivered = %d, want 1", len(h.ni.delivered))
	}
	if len(h.nack.nacks) != 1 {
		t.Fatalf("nacks = %d, want 1", len(h.nack.nacks))
	}
}

// TestDropNeverMisroutes: under saturation, every forwarded flit moved
// strictly closer to its destination (productive-only routing).
func TestDropNeverMisroutes(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	h := newDropHarness(t, 4)
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 300; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].In.CanSend(h.now) {
				dst := topology.NodeID(rng.Intn(9))
				if dst == 4 {
					dst = 0
				}
				h.wires.Ports[d].In.Send(h.now, mk(uint64(c*10+int(d)), 4, dst))
			}
		}
		h.tick()
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].Out == nil {
				continue
			}
			if f, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
				nb, _ := mesh.Neighbor(4, d)
				if mesh.Distance(nb, f.Dst) >= mesh.Distance(4, f.Dst) {
					t.Fatalf("drop router misrouted flit %v via %s", f, d)
				}
			}
		}
	}
	if h.r.DroppedFlits() == 0 {
		t.Error("saturation produced no drops; test not exercising contention")
	}
}
