// Package deflect implements the backpressureless routers of the paper.
//
// Router is the flit-by-flit deflection (hot-potato) router the paper
// evaluates as "backpressureless": on link contention all but one flit are
// misrouted rather than buffered, so the router never exerts backpressure
// on network ports and needs no input buffers (only pipeline latches).
// Arbitration is randomized Chaos-style by default (Section II: priorities
// are not fundamental; randomization gives a probabilistic — and strong —
// livelock-freedom guarantee), with an oldest-first policy available for
// ablation.
//
// DropRouter is the drop-based variant (SCARAB-like): contending flits
// that cannot take a productive port are dropped and NACKed to the source
// for retransmission. The paper notes this variant saturates at lower
// loads than deflection, which the open-loop sweep reproduces.
//
// Pipeline (Table I): stage 1 is combined routing + port-priority switch
// arbitration, stage 2 is switch traversal plus link traversal with the
// latch write absorbed into link traversal — the same 2-cycle router as
// the baseline. The only backpressure is at the injection port: a new flit
// is accepted only if an output port remains free after all network flits
// are dispatched (footnote 3 of the paper).
package deflect

import (
	"fmt"
	"math/rand"

	"afcnet/internal/energy"
	"afcnet/internal/flit"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

type latched struct {
	f         *flit.Flit
	arrivedAt uint64
}

// Router is a backpressureless deflection router for one node.
//
// The field order is a deliberate hot/cold split (see core.Router): the
// leading fields are what the quiescence probe and FastForward touch
// every cycle; the tail is cold configuration/fault/stats state.
// Routers are normally carved from a Slab in ascending node order —
// band-major for the sharded tick's row bands.
type Router struct {
	// --- hot tick-path core (Quiescent + FastForward) ---

	// dead freezes the router entirely (fault injection): Tick and
	// FastForward become no-ops and Quiescent reports true; latched
	// flits stay parked and countable.
	dead    bool
	latches []latched
	// inbox, when non-nil, is this router's slot of the network's
	// per-node aggregate in-flight slab (link.Pipe.SetTally): one load
	// replaces Quiescent's pipe scan. Nil falls back to the scan.
	inbox *[3]int32
	meter *energy.Meter
	// srcCount is src when it can report its queue total in O(1).
	srcCount router.QueuedCounter
	injArb   router.RoundRobin

	// injArmedAt models the per-VN injection-stage registers: a flit at
	// the head of a VN's NI queue becomes eligible for port assignment
	// one cycle after it reaches the head, so injected flits see the same
	// 2-cycle router pipeline as network flits.
	injArmedAt [flit.NumVNs]uint64

	// --- active-tick working set ---

	defl  router.Deflector
	flits []*flit.Flit // scratch, parallel prefix of latches
	// nbr lists the directions with a wired inbound data pipe, so the
	// per-cycle receive and quiescence loops skip the empty ports of edge
	// and corner routers. A view into the network's shared
	// topology.Tables under slab construction.
	nbr []topology.Dir

	// blockedOut marks output ports whose data link is fault-blocked
	// (dead, or throttled closed this duty window); port assignment
	// treats them like missing links and deflects around the fault.
	blockedOut   [topology.NumDirs]bool
	blockedCount int
	// parked counts overflow flits held back by the fault transient
	// (more latched flits than surviving outputs). While backlog is
	// draining the no-output condition stays legitimate even after a
	// throttled link reopens and blockedCount returns to zero.
	parked int

	wires router.Wires
	src   router.LocalSource
	sink  router.LocalSink

	// --- cold config/stats tail ---

	mesh       topology.Mesh
	node       topology.NodeID
	ejectWidth int

	// Stats
	routedFlits  uint64
	deflections  uint64
	ejectedFlits uint64
	injected     uint64
}

// Slab is a contiguous bank of deflection routers, carved in ascending
// node order (band-major for the sharded tick's row bands).
type Slab struct {
	routers []Router
	next    int
}

// NewSlab returns a slab with room for count routers.
func NewSlab(count int) *Slab {
	return &Slab{routers: make([]Router, count)}
}

// New returns a standalone deflection router at node (a slab of one).
// rng drives the randomized arbitration policy.
func New(mesh topology.Mesh, node topology.NodeID, policy router.DeflectPolicy,
	ejectWidth int, rng *rand.Rand, wires router.Wires, src router.LocalSource,
	sink router.LocalSink, meter *energy.Meter) *Router {
	return NewSlab(1).New(mesh, node, policy, ejectWidth, rng, wires, src, sink, meter, nil)
}

// New carves the next router from the slab and initializes it at node.
// tables, when non-nil, provides the shared route tables and neighbor
// lists; nil builds private copies from the mesh.
func (s *Slab) New(mesh topology.Mesh, node topology.NodeID, policy router.DeflectPolicy,
	ejectWidth int, rng *rand.Rand, wires router.Wires, src router.LocalSource,
	sink router.LocalSink, meter *energy.Meter, tables *topology.Tables) *Router {

	if s.next >= len(s.routers) {
		panic("deflect: router slab exhausted")
	}
	r := &s.routers[s.next]
	r.mesh = mesh
	r.node = node
	r.wires = wires
	r.src = src
	r.sink = sink
	r.meter = meter
	r.ejectWidth = ejectWidth
	r.injArb.Init(flit.NumVNs)
	var routes topology.RouteTable
	if tables != nil {
		routes = tables.Routes(node)
		r.nbr = tables.Neighbors(node)
	} else {
		routes = mesh.Routes(node)
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if wires.Ports[d].In != nil {
				r.nbr = append(r.nbr, d)
			}
		}
	}
	r.defl.Init(mesh, node, policy, rng, routes)
	r.srcCount, _ = src.(router.QueuedCounter)
	s.next++
	return r
}

// SetInbox attaches the router's slot of the network's per-node
// aggregate in-flight slab (see link.Pipe.SetTally). Build-time wiring,
// kept across Reset.
func (r *Router) SetInbox(t *[3]int32) { r.inbox = t }

// DORTable exposes the deflector's per-destination DOR table and
// NeighborDirs the wired-direction list (aliasing tests assert they
// share the network's topology.Tables backing).
func (r *Router) DORTable() []topology.Dir { return r.defl.DORTable() }

// NeighborDirs reports the router's wired mesh directions.
func (r *Router) NeighborDirs() []topology.Dir { return r.nbr }

// Node implements router.Router.
func (r *Router) Node() topology.NodeID { return r.node }

// SetColumns attaches the columnar flit banks deflection arbitration
// reads destinations and ages through. Nil selects the struct-field
// reference path.
func (r *Router) SetColumns(c *flit.Columns) { r.defl.SetColumns(c) }

// Reset rewinds the router to its freshly constructed state (empty
// latches, arbiters at slot 0, stats zeroed), reseeding the arbitration
// randomness with seed — the root of the same stream number a fresh
// construction would have consumed. Part of the cross-cell
// network-reuse path.
func (r *Router) Reset(seed int64) {
	r.defl.Reseed(seed)
	r.injArb.Reset()
	r.latches = r.latches[:0]
	r.flits = r.flits[:0]
	r.injArmedAt = [flit.NumVNs]uint64{}
	r.blockedOut = [topology.NumDirs]bool{}
	r.blockedCount = 0
	r.parked = 0
	r.dead = false
	r.routedFlits = 0
	r.deflections = 0
	r.ejectedFlits = 0
	r.injected = 0
}

// SetPortBlocked marks (or clears) output d as fault-blocked: port
// assignment then treats the link as missing and deflects around it.
// Scenario link throttling toggles this at duty-window boundaries.
func (r *Router) SetPortBlocked(d topology.Dir, blocked bool) {
	if r.blockedOut[d] != blocked {
		r.blockedOut[d] = blocked
		if blocked {
			r.blockedCount++
		} else {
			r.blockedCount--
		}
	}
}

// SetPortDead marks output d permanently dead. Deflection routers carry
// neither credits nor control on their links, so dead and blocked
// coincide here.
func (r *Router) SetPortDead(d topology.Dir) { r.SetPortBlocked(d, true) }

// SetDead freezes the router entirely (scenario dead-router fault):
// Tick and FastForward become no-ops and Quiescent reports true, so
// latched flits stay parked — still visible to ForEachFlit, keeping the
// checker's conservation ledger balanced.
func (r *Router) SetDead() { r.dead = true }

// RoutedFlits returns the number of flits dispatched by this router.
func (r *Router) RoutedFlits() uint64 { return r.routedFlits }

// Deflections returns the number of misroutes issued by this router.
func (r *Router) Deflections() uint64 { return r.deflections }

// Tick implements one cycle: dispatch every latched flit (the defining
// deflection-router invariant), inject if a port remains, then latch this
// cycle's arrivals.
func (r *Router) Tick(now uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTick()
	}

	r.flits = r.flits[:0]
	for _, l := range r.latches {
		if l.arrivedAt >= now {
			panic(fmt.Sprintf("deflect %d: latch holds current-cycle flit", r.node))
		}
		r.flits = append(r.flits, l.f)
	}
	r.latches = r.latches[:0]
	carried := r.parked
	r.parked = 0

	assignments := r.defl.Assign(r.flits, r.usable, r.ejectWidth)
	var taken [topology.NumDirs]bool
	for i, a := range assignments {
		f := r.flits[i]
		if !a.OK {
			// Impossible on a healthy mesh (outputs >= latched inputs).
			// With fault-blocked links the transient after a fault can
			// leave more latched flits than surviving outputs — and the
			// backlog can outlive the block itself when a throttled link
			// reopens. Park the overflow for next cycle instead of
			// panicking — the graceful-degradation half of scenario
			// fault injection.
			if r.blockedCount > 0 || carried > 0 {
				r.latches = append(r.latches, latched{f: f, arrivedAt: now})
				r.parked++
				continue
			}
			panic(fmt.Sprintf("deflect %d: no output for flit %v", r.node, f))
		}
		if a.Dir == topology.Local {
			r.eject(now, f)
			continue
		}
		taken[a.Dir] = true
		if a.Deflected {
			f.BumpDeflections()
			r.deflections++
		}
		r.send(now, a.Dir, f)
	}

	r.inject(now, &taken)
	r.receive(now)
}

// usable reports whether output d can carry a flit: the link must be
// wired and not fault-blocked.
func (r *Router) usable(_ *flit.Flit, d topology.Dir) bool {
	return r.wires.Ports[d].Exists() && !r.blockedOut[d]
}

func (r *Router) eject(now uint64, f *flit.Flit) {
	r.routedFlits++
	r.ejectedFlits++
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
	}
	r.sink.Deliver(now, f)
}

func (r *Router) send(now uint64, d topology.Dir, f *flit.Flit) {
	r.routedFlits++
	f.Hops++
	r.wires.Ports[d].Out.Send(now, f)
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
		r.meter.LinkHop()
	}
}

// inject admits at most one new flit if an output port remains free after
// the network flits — the only backpressure a backpressureless router
// exerts.

// armInjection advances vn's injection-stage register and reports whether
// its head flit may be injected this cycle.
func (r *Router) armInjection(now uint64, vn flit.VN) bool {
	if r.src.Peek(vn) == nil {
		r.injArmedAt[vn] = 0
		return false
	}
	if r.injArmedAt[vn] == 0 {
		r.injArmedAt[vn] = now + 1
	}
	return now >= r.injArmedAt[vn]
}
func (r *Router) inject(now uint64, taken *[topology.NumDirs]bool) {
	// Round-robin over virtual networks for fairness; each VN may inject
	// one flit per cycle, but every injection still needs a free output
	// port after the network flits (footnote 3 of the paper).
	start := r.injArb.Next()
	// Empty NI: every armInjection would peek nil, zero its register and
	// decline, so zeroing them all and returning is bit-for-bit identical.
	if r.srcCount != nil && r.srcCount.QueuedFlits() == 0 {
		r.injArmedAt = [flit.NumVNs]uint64{}
		return
	}
	for i := 0; i < flit.NumVNs; i++ {
		vn := flit.VN((start + i) % flit.NumVNs)
		if !r.armInjection(now, vn) {
			continue
		}
		free := false
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if r.usable(nil, d) && !taken[d] {
				free = true
				break
			}
		}
		if !free {
			return
		}
		f := r.src.Pop(vn)
		// The flit entered the injection register the cycle before it
		// became eligible; latency accounting starts there, like a
		// buffer write.
		entered := r.injArmedAt[vn] - 1
		r.injArmedAt[vn] = now + 1
		r.stamp(entered, f)
		r.injected++

		one := []*flit.Flit{f}
		a := r.defl.Assign(one, func(ff *flit.Flit, d topology.Dir) bool {
			return r.usable(ff, d) && !taken[d]
		}, 0)[0]
		if !a.OK {
			panic(fmt.Sprintf("deflect %d: injection with no free port", r.node))
		}
		taken[a.Dir] = true
		if a.Deflected {
			f.BumpDeflections()
			r.deflections++
		}
		r.send(now, a.Dir, f)
	}
}

func (r *Router) stamp(now uint64, f *flit.Flit) {
	if st, ok := r.src.(interface {
		StampInjection(uint64, *flit.Flit)
	}); ok {
		st.StampInjection(now, f)
	} else {
		f.SetInjected(now)
	}
}

// receive latches this cycle's arrivals for dispatch next cycle.
func (r *Router) receive(now uint64) {
	// inbox is the aggregate in-flight count toward this node: zero
	// means every Recv below would miss, so skip the scan outright.
	if r.inbox != nil && r.inbox[0] == 0 {
		return
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if f, ok := pl.In.Recv(now); ok {
			r.latches = append(r.latches, latched{f: f, arrivedAt: now})
			if r.meter != nil {
				r.meter.Latch()
			}
		}
	}
}

// Quiescent implements the kernel's active-set contract (sim.Quiescer):
// ticking is a provable no-op when no flit is latched, in flight toward
// this router, or awaiting injection. Deflection routers use neither
// credits nor the control line, so data pipes are the only wake source.
// An idle tick draws no randomness (Assign returns early on an empty
// flit set) and mutates only the meter, the injection round-robin
// pointer, and the idle injection registers — all replayed exactly by
// FastForward. The sharded tick (internal/network/shard.go) depends on
// that Tick == FastForward(1) equivalence being exact: its skip
// decision cannot see same-cycle sends parked in staged boundary
// registers, which is only sound because skipping such a router
// changes nothing.
func (r *Router) Quiescent(now uint64) bool {
	if r.dead {
		return true
	}
	if len(r.latches) != 0 {
		return false
	}
	if r.inbox != nil {
		// One aggregate load (maintained by the inbound pipes' tally
		// hooks) replaces the per-direction InFlight scan. Deflection
		// networks carry no credit/control traffic, so the aggregate
		// equals the data-pipe sum exactly.
		if r.inbox[0] != 0 {
			return false
		}
	} else {
		for _, d := range r.nbr {
			if r.wires.Ports[d].In.InFlight() != 0 {
				return false
			}
		}
	}
	if r.srcCount != nil {
		return r.srcCount.QueuedFlits() == 0
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		if r.src.Peek(vn) != nil {
			return false
		}
	}
	return true
}

// FastForward applies k skipped idle cycles (sim.Quiescer). Each idle
// tick accrues static energy, rotates the injection arbiter by one (its
// Pick predicate is always true), and zeroes every idle VN's injection
// register via armInjection's empty-queue branch — the register is
// already zero after the first idle cycle, so zeroing now is exact.
func (r *Router) FastForward(k uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTicks(k)
	}
	r.injArb.Advance(k)
	r.injArmedAt = [flit.NumVNs]uint64{}
}

// LatchedFlits returns the number of flits currently held in pipeline
// latches (drain checks).
func (r *Router) LatchedFlits() int { return len(r.latches) }

// ForEachFlit calls fn for every flit currently latched in this router
// (invariant checker's conservation and age scans).
func (r *Router) ForEachFlit(fn func(*flit.Flit)) {
	for _, l := range r.latches {
		fn(l.f)
	}
}
