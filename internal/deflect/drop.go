package deflect

import (
	"fmt"
	"math/rand"

	"afcnet/internal/energy"
	"afcnet/internal/flit"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

// Nacker carries drop notifications back to packet sources. The paper's
// drop-based designs (e.g. SCARAB) use a dedicated low-cost NACK network
// with guaranteed delivery; the network layer implements this interface by
// scheduling a source retransmission after the NACK's flight time.
type Nacker interface {
	Nack(now uint64, f *flit.Flit)
}

// DropRouter is the drop-based backpressureless variant: a contending
// flit that cannot take a productive output port is dropped and NACKed
// instead of deflected. Included as the paper's Section II comparison
// point (it saturates at lower loads than deflection, which the open-loop
// sweep bench reproduces).
type DropRouter struct {
	// --- hot tick-path core (Quiescent + FastForward; see Router) ---

	// dead freezes the router entirely (fault injection); see
	// Router.SetDead.
	dead    bool
	latches []latched
	// inbox, when non-nil, replaces Quiescent's pipe scan with one
	// aggregate load (see Router.inbox).
	inbox *[3]int32
	meter *energy.Meter
	// srcCount is src when it can report its queue total in O(1).
	srcCount   router.QueuedCounter
	injArb     router.RoundRobin
	injArmedAt [flit.NumVNs]uint64

	// --- active-tick working set ---

	rng *rand.Rand
	// cols, when non-nil, is the columnar flit bank destinations are read
	// through (nil = struct reference path).
	cols *flit.Columns
	// ashard, on sharded networks, is the shard-local arena magazine
	// dropped flits retire through (drop retirement is the one recycle
	// site outside the NI). Nil keeps the serial flit.Recycle path.
	ashard *flit.ArenaShard

	order []int
	// routes is node's precomputed route table — a view into the
	// network's shared topology.Tables under slab construction, a
	// private copy otherwise.
	routes topology.RouteTable
	// nbr lists the directions with a wired inbound data pipe (see
	// Router.nbr).
	nbr []topology.Dir

	// blockedOut marks output ports whose data link is fault-blocked;
	// productiveFree treats them like missing links, so a flit whose
	// productive ports all died is dropped and NACKed — the drop kind's
	// natural fault response.
	blockedOut [topology.NumDirs]bool

	wires router.Wires
	src   router.LocalSource
	sink  router.LocalSink
	nack  Nacker

	// --- cold config/stats tail ---

	mesh       topology.Mesh
	node       topology.NodeID
	ejectWidth int

	// Stats
	routedFlits  uint64
	droppedFlits uint64
	ejectedFlits uint64
}

// DropSlab is a contiguous bank of drop routers, carved in ascending
// node order (band-major for the sharded tick's row bands).
type DropSlab struct {
	routers []DropRouter
	next    int
}

// NewDropSlab returns a slab with room for count routers.
func NewDropSlab(count int) *DropSlab {
	return &DropSlab{routers: make([]DropRouter, count)}
}

// NewDrop returns a standalone drop-based backpressureless router at
// node (a slab of one).
func NewDrop(mesh topology.Mesh, node topology.NodeID, ejectWidth int, rng *rand.Rand,
	wires router.Wires, src router.LocalSource, sink router.LocalSink,
	meter *energy.Meter, nack Nacker) *DropRouter {
	return NewDropSlab(1).New(mesh, node, ejectWidth, rng, wires, src, sink, meter, nack, nil)
}

// New carves the next router from the slab and initializes it at node.
// tables, when non-nil, provides the shared route tables and neighbor
// lists; nil builds private copies from the mesh.
func (s *DropSlab) New(mesh topology.Mesh, node topology.NodeID, ejectWidth int, rng *rand.Rand,
	wires router.Wires, src router.LocalSource, sink router.LocalSink,
	meter *energy.Meter, nack Nacker, tables *topology.Tables) *DropRouter {

	if s.next >= len(s.routers) {
		panic("deflect: drop-router slab exhausted")
	}
	r := &s.routers[s.next]
	r.mesh = mesh
	r.node = node
	r.wires = wires
	r.src = src
	r.sink = sink
	r.meter = meter
	r.nack = nack
	r.rng = rng
	r.ejectWidth = ejectWidth
	r.injArb.Init(flit.NumVNs)
	if tables != nil {
		r.routes = tables.Routes(node)
		r.nbr = tables.Neighbors(node)
	} else {
		r.routes = mesh.Routes(node)
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if wires.Ports[d].In != nil {
				r.nbr = append(r.nbr, d)
			}
		}
	}
	r.srcCount, _ = src.(router.QueuedCounter)
	s.next++
	return r
}

// SetInbox attaches the router's slot of the network's per-node
// aggregate in-flight slab (see link.Pipe.SetTally).
func (r *DropRouter) SetInbox(t *[3]int32) { r.inbox = t }

// DORTable exposes the per-destination DOR table and NeighborDirs the
// wired-direction list (aliasing tests assert they share the network's
// topology.Tables backing).
func (r *DropRouter) DORTable() []topology.Dir { return r.routes.DOR }

// NeighborDirs reports the router's wired mesh directions.
func (r *DropRouter) NeighborDirs() []topology.Dir { return r.nbr }

// Node implements router.Router.
func (r *DropRouter) Node() topology.NodeID { return r.node }

// SetColumns attaches the columnar flit banks destinations are read
// through. Nil selects the struct-field reference path.
func (r *DropRouter) SetColumns(c *flit.Columns) { r.cols = c }

// SetArenaShard routes drop-retirement recycling through a shard-local
// arena magazine (see flit.ArenaShard). The network sets it when
// building a sharded tick; nil keeps the serial flit.Recycle path.
func (r *DropRouter) SetArenaShard(s *flit.ArenaShard) { r.ashard = s }

// Reset rewinds the router to its freshly constructed state, reseeding
// the drop-priority randomness with seed (the root of the stream number
// a fresh construction would have consumed). Part of the cross-cell
// network-reuse path.
func (r *DropRouter) Reset(seed int64) {
	r.rng.Seed(seed)
	r.injArb.Reset()
	r.latches = r.latches[:0]
	r.order = r.order[:0]
	r.injArmedAt = [flit.NumVNs]uint64{}
	r.blockedOut = [topology.NumDirs]bool{}
	r.dead = false
	r.routedFlits = 0
	r.droppedFlits = 0
	r.ejectedFlits = 0
}

// SetPortBlocked marks (or clears) output d as fault-blocked: flits
// whose remaining productive ports are all blocked get dropped and
// NACKed for retransmission.
func (r *DropRouter) SetPortBlocked(d topology.Dir, blocked bool) { r.blockedOut[d] = blocked }

// SetPortDead marks output d permanently dead (no credits or control
// exist on this kind, so dead and blocked coincide).
func (r *DropRouter) SetPortDead(d topology.Dir) { r.blockedOut[d] = true }

// SetDead freezes the router entirely (scenario dead-router fault); see
// Router.SetDead.
func (r *DropRouter) SetDead() { r.dead = true }

// DroppedFlits returns the number of flits dropped by this router.
func (r *DropRouter) DroppedFlits() uint64 { return r.droppedFlits }

// RoutedFlits returns the number of flits dispatched or ejected.
func (r *DropRouter) RoutedFlits() uint64 { return r.routedFlits }

// LatchedFlits returns the number of flits currently in pipeline latches.
func (r *DropRouter) LatchedFlits() int { return len(r.latches) }

// Quiescent implements the kernel's active-set contract (sim.Quiescer);
// see Router.Quiescent — the drop variant has the same wake sources
// (data pipes and the injection queue; retransmissions enqueue into the
// NI queue, so NACK wakeups arrive through the source check). An idle
// tick draws no randomness: rand.Shuffle over zero latched flits makes
// no swaps and no calls into the generator.
func (r *DropRouter) Quiescent(now uint64) bool {
	if r.dead {
		return true
	}
	if len(r.latches) != 0 {
		return false
	}
	if r.inbox != nil {
		if r.inbox[0] != 0 {
			return false
		}
	} else {
		for _, d := range r.nbr {
			if r.wires.Ports[d].In.InFlight() != 0 {
				return false
			}
		}
	}
	if r.srcCount != nil {
		return r.srcCount.QueuedFlits() == 0
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		if r.src.Peek(vn) != nil {
			return false
		}
	}
	return true
}

// FastForward applies k skipped idle cycles (sim.Quiescer); see
// Router.FastForward — identical idle-tick side effects.
func (r *DropRouter) FastForward(k uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTicks(k)
	}
	r.injArb.Advance(k)
	r.injArmedAt = [flit.NumVNs]uint64{}
}

// ForEachFlit calls fn for every flit currently latched in this router
// (invariant checker's conservation and age scans).
func (r *DropRouter) ForEachFlit(fn func(*flit.Flit)) {
	for _, l := range r.latches {
		fn(l.f)
	}
}

// Tick implements one cycle: every latched flit either ejects, advances on
// a productive port, or is dropped with a NACK; then at most one flit is
// injected if a productive port remains.
func (r *DropRouter) Tick(now uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTick()
	}

	var taken [topology.NumDirs]bool
	ejectSlots := r.ejectWidth

	// Randomize priority among latched flits (drop fairness).
	r.order = r.order[:0]
	for i := range r.latches {
		r.order = append(r.order, i)
	}
	r.rng.Shuffle(len(r.order), func(a, b int) { r.order[a], r.order[b] = r.order[b], r.order[a] })

	for _, idx := range r.order {
		l := r.latches[idx]
		if l.arrivedAt >= now {
			panic(fmt.Sprintf("deflect(drop) %d: latch holds current-cycle flit", r.node))
		}
		f := l.f
		if r.cols.FlitDst(f) == r.node && ejectSlots > 0 {
			ejectSlots--
			r.routedFlits++
			r.ejectedFlits++
			if r.meter != nil {
				r.meter.SwArb()
				r.meter.Xbar()
			}
			r.sink.Deliver(now, f)
			continue
		}
		if d, ok := r.productiveFree(f, &taken); ok {
			taken[d] = true
			r.send(now, d, f)
			continue
		}
		r.droppedFlits++
		r.nack.Nack(now, f)
		// The NACK path retains only the packet description, never the
		// flit itself: the retransmission re-packetizes from scratch, so
		// the dropped flit is consumed here.
		if r.ashard != nil {
			r.ashard.Recycle(f)
		} else {
			flit.Recycle(f)
		}
	}
	r.latches = r.latches[:0]

	r.inject(now, &taken)
	r.receive(now)
}

func (r *DropRouter) productiveFree(f *flit.Flit, taken *[topology.NumDirs]bool) (topology.Dir, bool) {
	dst := r.cols.FlitDst(f)
	if dst == r.node {
		return 0, false // ejection port busy; dst flits cannot be misrouted here
	}
	if d := r.routes.DOR[dst]; !taken[d] && r.wires.Ports[d].Exists() && !r.blockedOut[d] {
		return d, true
	}
	ps := &r.routes.Prod[dst]
	for _, d := range ps.D[:ps.N] {
		if !taken[d] && r.wires.Ports[d].Exists() && !r.blockedOut[d] {
			return d, true
		}
	}
	return 0, false
}

func (r *DropRouter) send(now uint64, d topology.Dir, f *flit.Flit) {
	r.routedFlits++
	f.Hops++
	r.wires.Ports[d].Out.Send(now, f)
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
		r.meter.LinkHop()
	}
}

func (r *DropRouter) armInjection(now uint64, vn flit.VN) bool {
	if r.src.Peek(vn) == nil {
		r.injArmedAt[vn] = 0
		return false
	}
	if r.injArmedAt[vn] == 0 {
		r.injArmedAt[vn] = now + 1
	}
	return now >= r.injArmedAt[vn]
}

func (r *DropRouter) inject(now uint64, taken *[topology.NumDirs]bool) {
	start := r.injArb.Next()
	// Empty NI: every armInjection would peek nil, zero its register and
	// decline, so zeroing them all and returning is bit-for-bit identical.
	if r.srcCount != nil && r.srcCount.QueuedFlits() == 0 {
		r.injArmedAt = [flit.NumVNs]uint64{}
		return
	}
	for i := 0; i < flit.NumVNs; i++ {
		vn := flit.VN((start + i) % flit.NumVNs)
		if !r.armInjection(now, vn) {
			continue
		}
		f := r.src.Peek(vn)
		d, ok := r.productiveFree(f, taken)
		if !ok {
			continue
		}
		f = r.src.Pop(vn)
		entered := r.injArmedAt[vn] - 1
		r.injArmedAt[vn] = now + 1
		if st, ok := r.src.(interface {
			StampInjection(uint64, *flit.Flit)
		}); ok {
			st.StampInjection(entered, f)
		} else {
			f.SetInjected(entered)
		}
		taken[d] = true
		r.send(now, d, f)
	}
}

func (r *DropRouter) receive(now uint64) {
	// See Router.receive: zero aggregate in-flight means every Recv
	// below would miss.
	if r.inbox != nil && r.inbox[0] == 0 {
		return
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if f, ok := pl.In.Recv(now); ok {
			r.latches = append(r.latches, latched{f: f, arrivedAt: now})
			if r.meter != nil {
				r.meter.Latch()
			}
		}
	}
}
