package energy

import (
	"math"
	"testing"
)

func testParams() Params {
	p := DefaultParams()
	return p
}

func TestWidthScaling(t *testing.T) {
	p := testParams()
	narrow := NewMeter(p, p.RefWidthBits, 64, 5, true)
	wide := NewMeter(p, 2*p.RefWidthBits, 64, 5, true)
	narrow.Xbar()
	wide.Xbar()
	narrow.LinkHop()
	wide.LinkHop()
	n, w := narrow.Breakdown(), wide.Breakdown()
	if math.Abs(w.Xbar-2*n.Xbar) > 1e-12 || math.Abs(w.Link-2*n.Link) > 1e-12 {
		t.Errorf("dynamic energy not linear in width: %+v vs %+v", n, w)
	}
}

func TestBufferAccessScalesWithSqrtCapacity(t *testing.T) {
	p := testParams()
	big := NewMeter(p, 41, 64, 5, true)
	small := NewMeter(p, 41, 16, 5, true)
	big.BufWrite()
	small.BufWrite()
	ratio := big.Breakdown().BufferDynamic / small.Breakdown().BufferDynamic
	if math.Abs(ratio-2) > 1e-9 { // sqrt(64/16) = 2
		t.Errorf("buffer access ratio = %g, want 2", ratio)
	}
}

func TestIdealBypassElidesBufferDynamic(t *testing.T) {
	p := testParams()
	m := NewMeter(p, 41, 64, 5, false)
	m.BufWrite()
	m.BufRead()
	if got := m.Breakdown().BufferDynamic; got != 0 {
		t.Errorf("ideal bypass accrued %g buffer dynamic energy", got)
	}
	m.StaticTick()
	if m.Breakdown().BufferStatic <= 0 {
		t.Error("ideal bypass must still leak buffer static power")
	}
}

func TestGatingEffectiveness(t *testing.T) {
	p := testParams()
	on := NewMeter(p, 49, 32, 5, true)
	off := NewMeter(p, 49, 32, 5, true)
	off.SetGated(true)
	on.StaticTick()
	off.StaticTick()
	wantRatio := 1 - p.GatingEffectiveness // 0.1
	got := off.Breakdown().BufferStatic / on.Breakdown().BufferStatic
	if math.Abs(got-wantRatio) > 1e-9 {
		t.Errorf("gated leakage ratio = %g, want %g", got, wantRatio)
	}
	if off.Breakdown().RouterStatic != on.Breakdown().RouterStatic {
		t.Error("gating must not affect non-buffer router leakage")
	}
	if !off.Gated() || on.Gated() {
		t.Error("Gated() state wrong")
	}
}

func TestBufferlessMeterHasNoBufferEnergy(t *testing.T) {
	p := testParams()
	m := NewMeter(p, 45, 0, 5, true)
	m.BufWrite() // should still charge nothing meaningful? writes scale by slots... it charges per event
	m.StaticTick()
	b := m.Breakdown()
	if b.BufferStatic != 0 {
		t.Errorf("bufferless meter leaked buffer static energy: %g", b.BufferStatic)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{BufferDynamic: 1, BufferStatic: 2, Link: 3, Xbar: 4, Arb: 5, Latch: 6, Credit: 7, RouterStatic: 8}
	if b.Buffer() != 3 {
		t.Errorf("Buffer = %g", b.Buffer())
	}
	if b.Rest() != 4+5+6+7+8 {
		t.Errorf("Rest = %g", b.Rest())
	}
	if b.Total() != 36 {
		t.Errorf("Total = %g", b.Total())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 72 {
		t.Errorf("Add: total = %g", acc.Total())
	}
	if s := b.Scale(0.5); s.Total() != 18 {
		t.Errorf("Scale: total = %g", s.Total())
	}
}

func TestResetClearsAccumulation(t *testing.T) {
	m := NewMeter(testParams(), 41, 64, 5, true)
	m.BufWrite()
	m.LinkHop()
	m.StaticTick()
	m.Reset()
	if m.Breakdown().Total() != 0 {
		t.Error("Reset left residual energy")
	}
}

// TestDefaultParamsAnchors sanity-checks the calibration invariants the
// experiments rely on: one flit-hop's buffer dynamic energy is less than
// its non-buffer dynamic energy (so buffer share stays in the paper's
// 30-40% band at high load), and per-cycle leakage dominates per-hop
// dynamic energy at very low utilization (static-dominated low load).
func TestDefaultParamsAnchors(t *testing.T) {
	p := DefaultParams()
	bufPerHop := p.BufWrite + p.BufRead
	restPerHop := p.LinkHop + p.Xbar + p.SwArb
	if bufPerHop >= restPerHop {
		t.Errorf("buffer dynamic per hop (%g) should be below non-buffer (%g)", bufPerHop, restPerHop)
	}
	leakPerCycle := p.BufLeakPerBitPerCycle*64*5*41 + p.RouterLeakPerCycle
	if leakPerCycle <= bufPerHop+restPerHop {
		t.Errorf("per-cycle leakage (%g) should dominate one flit-hop's dynamic energy (%g) for static-dominated low load",
			leakPerCycle, bufPerHop+restPerHop)
	}
}
