// Package energy implements the event-based network energy model standing
// in for Orion (Section IV of the paper).
//
// Dynamic energy is charged per micro-architectural event (buffer write,
// buffer read, crossbar traversal, arbitration, pipeline-latch write,
// credit signaling, link-stage traversal). Static (leakage) energy accrues
// every cycle in proportion to the powered buffer bits and the rest of the
// router, with 90%-effective power gating when an AFC router parks its
// buffers in backpressureless mode.
//
// All dynamic event energies scale linearly with the flit width of the
// flow-control mechanism (41/45/49 bits; wider AFC flits are the paper's
// key energy overhead) and buffer access energy additionally scales with
// the square root of the per-port buffer capacity (smaller SRAMs have
// cheaper accesses — how lazy VC allocation claws back energy).
//
// The absolute constants are calibrated, not measured: they are chosen so
// the backpressured baseline matches the paper's qualitative anchors
// (buffers ~30-40% of network energy, static power dominant at low load).
// Every comparison in the paper is relative, and relative shapes are what
// this model reproduces.
package energy

import "math"

// Params holds the per-event energies (picojoules at the reference flit
// width and reference buffer size) and leakage powers (picojoules per
// cycle).
type Params struct {
	// RefWidthBits is the flit width all event energies are quoted at.
	RefWidthBits int
	// RefBufSlotsPerPort is the per-port buffer capacity the buffer
	// access energies are quoted at.
	RefBufSlotsPerPort int

	BufWrite  float64 // buffer (SRAM) write, per flit
	BufRead   float64 // buffer (SRAM) read, per flit
	Xbar      float64 // crossbar traversal, per flit
	SwArb     float64 // switch arbitration, per granted request
	VCArb     float64 // VC allocation, per allocation (baseline router only)
	Latch     float64 // pipeline latch write (deflection datapath)
	CreditSig float64 // credit backflow signaling, per credit
	LinkHop   float64 // one inter-router link traversal, per flit (2.5mm)

	// BufLeakPerBitPerCycle is buffer leakage power per buffer bit.
	BufLeakPerBitPerCycle float64
	// RouterLeakPerCycle is leakage of the rest of the router (crossbar,
	// allocators, latches), scaled linearly by flit width.
	RouterLeakPerCycle float64
	// GatingEffectiveness is the fraction of buffer leakage removed by
	// power gating (the paper assumes 90%).
	GatingEffectiveness float64
}

// DefaultParams returns the calibrated 70nm-class parameter set used by
// all experiments. See the package comment for the calibration anchors.
func DefaultParams() Params {
	return Params{
		RefWidthBits:       41,
		RefBufSlotsPerPort: 64,

		BufWrite:  0.90,
		BufRead:   0.84,
		Xbar:      0.95,
		SwArb:     0.12,
		VCArb:     0.10,
		Latch:     0.22,
		CreditSig: 0.05,
		LinkHop:   2.10,

		BufLeakPerBitPerCycle: 0.000142,
		RouterLeakPerCycle:    3.30,
		GatingEffectiveness:   0.90,
	}
}

// Breakdown partitions network energy the way Figure 3 of the paper does:
// buffer energy, link energy, and the rest of the router (crossbar,
// arbiters, latches, credit lines, router leakage).
type Breakdown struct {
	BufferDynamic float64
	BufferStatic  float64
	Link          float64
	Xbar          float64
	Arb           float64
	Latch         float64
	Credit        float64
	RouterStatic  float64
}

// Buffer returns total buffer energy (dynamic + static).
func (b Breakdown) Buffer() float64 { return b.BufferDynamic + b.BufferStatic }

// Rest returns the "rest of router" component of Figure 3 (everything that
// is neither buffer nor link energy).
func (b Breakdown) Rest() float64 { return b.Xbar + b.Arb + b.Latch + b.Credit + b.RouterStatic }

// Total returns total network energy.
func (b Breakdown) Total() float64 {
	return b.Buffer() + b.Link + b.Rest()
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.BufferDynamic += o.BufferDynamic
	b.BufferStatic += o.BufferStatic
	b.Link += o.Link
	b.Xbar += o.Xbar
	b.Arb += o.Arb
	b.Latch += o.Latch
	b.Credit += o.Credit
	b.RouterStatic += o.RouterStatic
}

// Scale returns b with every component multiplied by k.
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		BufferDynamic: b.BufferDynamic * k,
		BufferStatic:  b.BufferStatic * k,
		Link:          b.Link * k,
		Xbar:          b.Xbar * k,
		Arb:           b.Arb * k,
		Latch:         b.Latch * k,
		Credit:        b.Credit * k,
		RouterStatic:  b.RouterStatic * k,
	}
}

// Meter accumulates the energy of one router and its outgoing links.
type Meter struct {
	p Params

	widthScale     float64 // flitWidth / RefWidthBits
	bufAccessScale float64 // sqrt(slotsPerPort / RefBufSlotsPerPort) * widthScale
	bufBits        float64 // total powered buffer bits across all ports

	// dynBufEnabled is false for the "Backpressured ideal-bypass" bound,
	// which elides all buffer dynamic energy (Section V-A).
	dynBufEnabled bool
	gated         bool

	acc Breakdown
}

// NewMeter returns a meter for a router with the given flit width (bits)
// and per-port buffer capacity (flit slots) across ports router ports.
// dynBuf=false models the ideal-bypass energy bound.
func NewMeter(p Params, flitWidthBits, slotsPerPort, ports int, dynBuf bool) *Meter {
	ws := float64(flitWidthBits) / float64(p.RefWidthBits)
	bas := ws
	if slotsPerPort > 0 {
		bas *= math.Sqrt(float64(slotsPerPort) / float64(p.RefBufSlotsPerPort))
	}
	return &Meter{
		p:              p,
		widthScale:     ws,
		bufAccessScale: bas,
		bufBits:        float64(slotsPerPort*ports) * float64(flitWidthBits),
		dynBufEnabled:  dynBuf,
	}
}

// SetGated marks the router's buffers as power-gated (AFC in
// backpressureless mode gates all buffers at whole-physical-port
// granularity) or active.
func (m *Meter) SetGated(gated bool) { m.gated = gated }

// Gated reports whether the buffers are currently power-gated.
func (m *Meter) Gated() bool { return m.gated }

// BufWrite charges one buffer write.
func (m *Meter) BufWrite() {
	if m.dynBufEnabled {
		m.acc.BufferDynamic += m.p.BufWrite * m.bufAccessScale
	}
}

// BufRead charges one buffer read.
func (m *Meter) BufRead() {
	if m.dynBufEnabled {
		m.acc.BufferDynamic += m.p.BufRead * m.bufAccessScale
	}
}

// Xbar charges one crossbar traversal.
func (m *Meter) Xbar() { m.acc.Xbar += m.p.Xbar * m.widthScale }

// SwArb charges one switch-arbitration grant.
func (m *Meter) SwArb() { m.acc.Arb += m.p.SwArb }

// VCArb charges one VC allocation.
func (m *Meter) VCArb() { m.acc.Arb += m.p.VCArb }

// Latch charges one pipeline-latch write (deflection datapath).
func (m *Meter) Latch() { m.acc.Latch += m.p.Latch * m.widthScale }

// Credit charges one credit-backflow event.
func (m *Meter) Credit() { m.acc.Credit += m.p.CreditSig }

// LinkHop charges one inter-router link traversal.
func (m *Meter) LinkHop() { m.acc.Link += m.p.LinkHop * m.widthScale }

// StaticTick accrues one cycle of leakage. Buffer leakage is reduced by
// the gating effectiveness while gated.
func (m *Meter) StaticTick() {
	leak := m.bufBits * m.p.BufLeakPerBitPerCycle
	if m.gated {
		leak *= 1 - m.p.GatingEffectiveness
	}
	m.acc.BufferStatic += leak
	m.acc.RouterStatic += m.p.RouterLeakPerCycle * m.widthScale
}

// StaticTicks accrues k cycles of leakage, bit-for-bit identical to k
// StaticTick calls (a literal loop, not closed-form multiplication, so
// float rounding matches the dense reference kernel exactly). Used by
// the active-set kernel to fast-forward skipped idle cycles.
func (m *Meter) StaticTicks(k uint64) {
	for ; k > 0; k-- {
		m.StaticTick()
	}
}

// Breakdown returns the accumulated energy.
func (m *Meter) Breakdown() Breakdown { return m.acc }

// Reset clears accumulated energy (used to discard warmup).
func (m *Meter) Reset() { m.acc = Breakdown{} }
