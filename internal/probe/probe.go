// Package probe samples time series from a running network — mode duty
// cycles, buffer occupancy, queue depths, deflection counts — for
// plotting and for tests that assert on temporal behavior (e.g., "the
// backpressured region forms within N cycles of the load step").
package probe

import (
	"fmt"
	"io"
	"sort"

	"afcnet/internal/core"
	"afcnet/internal/network"
	"afcnet/internal/topology"
)

// Series is one sampled metric over time.
type Series struct {
	Name string
	At   []uint64
	Val  []float64
}

// Reset drops the recorded samples while keeping the backing arrays, so
// a probe reused across cells records into the same storage.
func (s *Series) Reset() {
	s.At = s.At[:0]
	s.Val = s.Val[:0]
}

// Last returns the most recent sample (0 if empty).
func (s *Series) Last() float64 {
	if len(s.Val) == 0 {
		return 0
	}
	return s.Val[len(s.Val)-1]
}

// Max returns the largest sample (0 if empty). The maximum is seeded
// from the first sample, so an all-negative series (e.g. an energy-delta
// metric) reports its true maximum rather than 0.
func (s *Series) Max() float64 {
	if len(s.Val) == 0 {
		return 0
	}
	m := s.Val[0]
	for _, v := range s.Val[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Metric computes one sample from the network.
type Metric func(n *network.Network) float64

// Probe samples registered metrics every interval cycles. Register it
// with net.AddTicker.
type Probe struct {
	net      *network.Network
	interval uint64
	names    []string
	metrics  map[string]Metric
	series   map[string]*Series
}

// New returns a probe sampling every interval cycles (>= 1).
func New(net *network.Network, interval uint64) *Probe {
	if interval < 1 {
		interval = 1
	}
	p := &Probe{
		net:      net,
		interval: interval,
		metrics:  map[string]Metric{},
		series:   map[string]*Series{},
	}
	net.AddTicker(p)
	return p
}

// Track registers a metric under name. Tracking the same name twice
// replaces the metric but keeps the recorded series.
func (p *Probe) Track(name string, m Metric) {
	if _, ok := p.metrics[name]; !ok {
		p.names = append(p.names, name)
		p.series[name] = &Series{Name: name}
	}
	p.metrics[name] = m
}

// Series returns the recorded series for name (nil if never tracked).
func (p *Probe) Series(name string) *Series { return p.series[name] }

// Names returns the tracked metric names in registration order.
func (p *Probe) Names() []string { return append([]string(nil), p.names...) }

// Tick implements sim.Ticker.
func (p *Probe) Tick(now uint64) {
	if now%p.interval != 0 {
		return
	}
	for _, name := range p.names {
		s := p.series[name]
		s.At = append(s.At, now)
		s.Val = append(s.Val, p.metrics[name](p.net))
	}
}

// Quiescent implements sim.Quiescer: ticking between sample stamps is a
// pure no-op. Sample cycles themselves must run Tick — metrics read live
// network state and the kernel only fast-forwards across cycles where the
// whole system is provably frozen, so the sampled values are identical to
// the dense kernel's.
func (p *Probe) Quiescent(now uint64) bool { return now%p.interval != 0 }

// FastForward implements sim.Quiescer (no state to advance).
func (p *Probe) FastForward(cycles uint64) {}

// NextWake implements sim.Sleeper: the next sample stamp.
func (p *Probe) NextWake(now uint64) (uint64, bool) {
	return now + (p.interval - now%p.interval), true
}

// WriteCSV emits all series as CSV: a cycle column plus one column per
// metric. Rows cover the union of sample stamps across series, and each
// value is placed on the row matching its own At stamp, so a metric
// Tracked after sampling began stays aligned with its cycle — the cells
// before its first sample are simply empty.
func (p *Probe) WriteCSV(w io.Writer) error {
	if len(p.names) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w, "cycle"); err != nil {
		return err
	}
	for _, n := range p.names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	// Merge the per-series stamp streams (each is already sorted): every
	// row is the smallest not-yet-emitted stamp, and a series contributes
	// a value only when its cursor sits exactly on that stamp.
	cursors := make([]int, len(p.names))
	for {
		cycle, any := uint64(0), false
		for ci, n := range p.names {
			s := p.series[n]
			if cursors[ci] < len(s.At) && (!any || s.At[cursors[ci]] < cycle) {
				cycle, any = s.At[cursors[ci]], true
			}
		}
		if !any {
			return nil
		}
		if _, err := fmt.Fprintf(w, "%d", cycle); err != nil {
			return err
		}
		for ci, n := range p.names {
			s := p.series[n]
			if cursors[ci] < len(s.At) && s.At[cursors[ci]] == cycle {
				if _, err := fmt.Fprintf(w, ",%g", s.Val[cursors[ci]]); err != nil {
					return err
				}
				cursors[ci]++
			} else if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
}

// BufferedFraction is a Metric: the fraction of AFC routers currently in
// backpressured mode.
func BufferedFraction(n *network.Network) float64 {
	total, buffered := 0, 0
	for i := 0; i < n.Nodes(); i++ {
		r, ok := n.Router(topology.NodeID(i)).(*core.Router)
		if !ok {
			continue
		}
		total++
		if r.Mode() == core.ModeBuffered {
			buffered++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(buffered) / float64(total)
}

// MeanIntensity is a Metric: the mean smoothed traffic intensity across
// AFC routers.
func MeanIntensity(n *network.Network) float64 {
	total, sum := 0, 0.0
	for i := 0; i < n.Nodes(); i++ {
		if r, ok := n.Router(topology.NodeID(i)).(*core.Router); ok {
			total++
			sum += r.Intensity()
		}
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// BufferedFlits is a Metric: flits currently held in router buffers
// network-wide.
func BufferedFlits(n *network.Network) float64 {
	total := 0
	for i := 0; i < n.Nodes(); i++ {
		if r, ok := n.Router(topology.NodeID(i)).(interface{ BufferedFlits() int }); ok {
			total += r.BufferedFlits()
		}
	}
	return float64(total)
}

// QueueLen is a Metric: flits waiting in injection queues network-wide.
func QueueLen(n *network.Network) float64 {
	total := 0
	for i := 0; i < n.Nodes(); i++ {
		total += n.NI(topology.NodeID(i)).QueueLen()
	}
	return float64(total)
}

// CrossedAt returns the first sample time at which the series reached or
// exceeded threshold, and whether it ever did.
func (s *Series) CrossedAt(threshold float64) (uint64, bool) {
	for i, v := range s.Val {
		if v >= threshold {
			return s.At[i], true
		}
	}
	return 0, false
}

// Quantile returns the q-quantile (0..1) of the samples.
func (s *Series) Quantile(q float64) float64 {
	if len(s.Val) == 0 {
		return 0
	}
	vals := append([]float64(nil), s.Val...)
	sort.Float64s(vals)
	idx := int(q * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
