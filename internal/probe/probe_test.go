package probe

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"afcnet/internal/core"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

func newNet(kind network.Kind) *network.Network {
	return network.New(network.Config{Kind: kind, Seed: 23, MeterEnergy: false})
}

func TestSamplingGridAndSeries(t *testing.T) {
	n := newNet(network.AFC)
	p := New(n, 10)
	p.Track("queue", QueueLen)
	p.Track("buffered", BufferedFraction)
	n.Run(101)
	s := p.Series("queue")
	if s == nil || len(s.At) != 11 { // cycles 0,10,...,100
		t.Fatalf("samples = %v", s)
	}
	for i, at := range s.At {
		if at != uint64(i*10) {
			t.Fatalf("sample grid wrong: %v", s.At)
		}
	}
	if got := p.Names(); len(got) != 2 || got[0] != "queue" {
		t.Fatalf("names = %v", got)
	}
	if p.Series("nonesuch") != nil {
		t.Error("unknown series should be nil")
	}
}

// TestModeFormationTiming uses the probe the way the experiments do:
// after a heavy load step, the buffered fraction must cross 1/2 within a
// bounded time, and intensity must rise first.
func TestModeFormationTiming(t *testing.T) {
	n := newNet(network.AFC)
	p := New(n, 25)
	p.Track("buffered", BufferedFraction)
	p.Track("intensity", MeanIntensity)
	gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.7}, n.RandStream)
	n.AddTicker(gen)
	n.Run(10_000)

	at, ok := p.Series("buffered").CrossedAt(0.5)
	if !ok {
		t.Fatalf("buffered fraction never crossed 0.5 (last %.2f)", p.Series("buffered").Last())
	}
	if at > 6_000 {
		t.Errorf("backpressured region took %d cycles to form", at)
	}
	if p.Series("intensity").Max() < 1.7 {
		t.Errorf("intensity peak %.2f below the center low threshold", p.Series("intensity").Max())
	}
}

// TestModeDutyCyclesCoverWallClock checks that AFC mode accounting is a
// partition of time: every router charges exactly one mode per cycle, so
// per-router mode cycles sum to the wall clock and the network aggregate
// sums to cycles × routers. Load is heavy enough to force mode switches,
// so the sum covers bless, switching and backpressured residency.
func TestModeDutyCyclesCoverWallClock(t *testing.T) {
	const cycles = 8_000
	n := newNet(network.AFC)
	gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.6}, n.RandStream)
	n.AddTicker(gen)
	n.Run(cycles)

	for node := 0; node < n.Nodes(); node++ {
		r, ok := n.Router(topology.NodeID(node)).(*core.Router)
		if !ok {
			t.Fatalf("node %d: AFC network has non-AFC router %T", node, n.Router(topology.NodeID(node)))
		}
		mc := r.ModeCycles()
		if sum := mc[core.ModeBless] + mc[core.ModeSwitching] + mc[core.ModeBuffered]; sum != cycles {
			t.Errorf("node %d: mode cycles %v sum to %d, want %d", node, mc, sum, cycles)
		}
	}
	ms := n.ModeStats()
	total := ms.BlessCycles + ms.SwitchingCycles + ms.BufferedCycles
	if want := uint64(cycles) * uint64(n.Nodes()); total != want {
		t.Errorf("aggregate mode cycles %d, want %d", total, want)
	}
	if ms.ForwardSwitches == 0 || ms.BufferedCycles == 0 {
		t.Errorf("load never forced a forward switch (forward=%d buffered=%d); duty-cycle sum untested under switching",
			ms.ForwardSwitches, ms.BufferedCycles)
	}
}

func TestMetricsOnNonAFCNetwork(t *testing.T) {
	n := newNet(network.Bless)
	p := New(n, 50)
	p.Track("buffered", BufferedFraction)
	p.Track("bufFlits", BufferedFlits)
	n.Run(200)
	if p.Series("buffered").Max() != 0 {
		t.Error("bless network reported AFC buffered fraction")
	}
	if p.Series("bufFlits").Max() != 0 {
		t.Error("bufferless network reported buffered flits")
	}
}

func TestWriteCSV(t *testing.T) {
	n := newNet(network.AFC)
	p := New(n, 20)
	p.Track("queue", QueueLen)
	n.Run(61)
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,queue" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+4 { // header + samples at 0,20,40,60
		t.Fatalf("csv rows = %d: %q", len(lines), buf.String())
	}
}

// TestWriteCSVMidRunTrackAligned: a metric registered after sampling has
// begun yields a shorter series; its CSV column must stay aligned with
// the cycle column (empty cells before its first sample) instead of
// being zero-padded from row 0. The parsed CSV must round-trip every
// series' (At, Val) pairs exactly.
func TestWriteCSVMidRunTrackAligned(t *testing.T) {
	n := newNet(network.AFC)
	p := New(n, 10)
	p.Track("queue", QueueLen)
	n.Run(31) // queue sampled at 0,10,20,30
	p.Track("buffered", BufferedFraction)
	n.Run(30) // both sampled at 40,50,60

	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,queue,buffered" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+7 { // cycles 0..60 step 10
		t.Fatalf("csv rows = %d: %q", len(lines), buf.String())
	}
	// Reconstruct each series from the CSV and compare against the probe.
	got := map[string]*Series{"queue": {}, "buffered": {}}
	cols := []string{"queue", "buffered"}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		var cycle uint64
		if _, err := fmt.Sscanf(fields[0], "%d", &cycle); err != nil {
			t.Fatalf("bad cycle in row %q: %v", line, err)
		}
		for ci, name := range cols {
			cell := fields[1+ci]
			if cell == "" {
				continue // no sample for this series at this cycle
			}
			var v float64
			if _, err := fmt.Sscanf(cell, "%g", &v); err != nil {
				t.Fatalf("bad value %q in row %q: %v", cell, line, err)
			}
			got[name].At = append(got[name].At, cycle)
			got[name].Val = append(got[name].Val, v)
		}
	}
	for _, name := range cols {
		want := p.Series(name)
		if !reflect.DeepEqual(got[name].At, want.At) {
			t.Errorf("%s stamps: csv %v != series %v", name, got[name].At, want.At)
		}
		if !reflect.DeepEqual(got[name].Val, want.Val) {
			t.Errorf("%s values: csv %v != series %v", name, got[name].Val, want.Val)
		}
	}
	if want := []uint64{40, 50, 60}; !reflect.DeepEqual(p.Series("buffered").At, want) {
		t.Errorf("mid-run series stamps = %v, want %v", p.Series("buffered").At, want)
	}
}

// TestSeriesMaxAllNegative: Max must report the true maximum of an
// all-negative series (e.g. an energy-delta metric), not the historical
// zero seed.
func TestSeriesMaxAllNegative(t *testing.T) {
	s := &Series{At: []uint64{0, 1, 2}, Val: []float64{-5, -2, -9}}
	if got := s.Max(); got != -2 {
		t.Errorf("Max of all-negative series = %g, want -2", got)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{At: []uint64{0, 10, 20, 30}, Val: []float64{1, 3, 2, 4}}
	if s.Last() != 4 || s.Max() != 4 {
		t.Errorf("Last/Max = %g/%g", s.Last(), s.Max())
	}
	if at, ok := s.CrossedAt(3); !ok || at != 10 {
		t.Errorf("CrossedAt(3) = %d,%v", at, ok)
	}
	if _, ok := s.CrossedAt(5); ok {
		t.Error("CrossedAt above max should fail")
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Errorf("median = %g", q)
	}
	empty := &Series{}
	if empty.Last() != 0 || empty.Max() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty series helpers should return zeros")
	}
}

type fakeProgress struct {
	progress uint64
	pending  bool
}

func (f *fakeProgress) Progress() uint64 { return f.progress }
func (f *fakeProgress) Pending() bool    { return f.pending }

func TestWatchdogFiresOnStall(t *testing.T) {
	fp := &fakeProgress{pending: true}
	w := NewWatchdog(fp, 100)
	for c := uint64(0); c < 50; c++ {
		fp.progress++ // making progress
		w.Tick(c)
	}
	if _, fired := w.Stalled(); fired {
		t.Fatal("fired while progressing")
	}
	// Stall with pending work.
	for c := uint64(50); c < 200; c++ {
		w.Tick(c)
	}
	// Last progress was observed at cycle 49; the window elapses at 149.
	at, fired := w.Stalled()
	if !fired || at != 149 {
		t.Fatalf("fired=%v at=%d, want fired at 149", fired, at)
	}
	w.Reset()
	if _, fired := w.Stalled(); fired {
		t.Fatal("Reset did not clear")
	}
}

func TestWatchdogIgnoresIdleNetwork(t *testing.T) {
	fp := &fakeProgress{pending: false}
	w := NewWatchdog(fp, 10)
	for c := uint64(0); c < 100; c++ {
		w.Tick(c)
	}
	if _, fired := w.Stalled(); fired {
		t.Fatal("fired with no pending work (idle is not a stall)")
	}
}

// TestWatchdogQuietOnRealNetworks: every router kind makes continuous
// progress under load — the watchdog must stay silent.
func TestWatchdogQuietOnRealNetworks(t *testing.T) {
	for _, kind := range []network.Kind{network.Backpressured, network.Bless, network.AFC} {
		n := newNet(kind)
		w := NewWatchdog(NetProgress{Net: n}, 3000)
		n.AddTicker(w)
		gen := traffic.NewGenerator(n, traffic.Config{Rate: 0.4}, n.RandStream)
		n.AddTicker(gen)
		n.Run(15_000)
		if at, fired := w.Stalled(); fired {
			t.Errorf("%s: watchdog fired at cycle %d on a healthy network", kind, at)
		}
	}
}

// TestSeriesReset: Reset drops the samples but keeps the backing
// arrays, so a probe reused across cells records into the same storage.
func TestSeriesReset(t *testing.T) {
	s := &Series{Name: "m"}
	s.At = append(s.At, 1, 2, 3)
	s.Val = append(s.Val, 0.5, 1.5, 2.5)
	atCap, valCap := cap(s.At), cap(s.Val)
	s.Reset()
	if len(s.At) != 0 || len(s.Val) != 0 {
		t.Fatalf("Reset left %d/%d samples", len(s.At), len(s.Val))
	}
	if cap(s.At) != atCap || cap(s.Val) != valCap {
		t.Errorf("Reset dropped the backing arrays (cap %d/%d -> %d/%d)",
			atCap, valCap, cap(s.At), cap(s.Val))
	}
	if s.Last() != 0 || s.Max() != 0 {
		t.Errorf("reset series still reports samples: last=%g max=%g", s.Last(), s.Max())
	}
}
