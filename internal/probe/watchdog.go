package probe

import (
	"afcnet/internal/network"
)

// Progressor abstracts what the watchdog observes: a monotonically
// increasing progress counter and whether undelivered work remains.
// *network.Network satisfies it via the NetProgress adapter.
type Progressor interface {
	// Progress returns a counter that increases whenever useful work
	// happens (e.g., packets delivered).
	Progress() uint64
	// Pending reports whether work remains outstanding.
	Pending() bool
}

// NetProgress adapts a network to the Progressor interface: progress is
// delivered packets; pending is any undrained traffic.
type NetProgress struct{ Net *network.Network }

// Progress implements Progressor.
func (n NetProgress) Progress() uint64 { return n.Net.DeliveredPackets() }

// Pending implements Progressor.
func (n NetProgress) Pending() bool { return !n.Net.Drained() }

// Watchdog flags deadlock/livelock suspects: work is pending but the
// progress counter has not moved for at least Window cycles. The
// simulator's networks are deadlock-free by construction (DOR +
// consumption guarantees; deflection never blocks), so a firing watchdog
// in a test or experiment points at a protocol bug, not an expected
// state. Register with net.AddTicker.
type Watchdog struct {
	p      Progressor
	window uint64

	last       uint64
	lastMoveAt uint64
	fired      bool
	firedAt    uint64
}

// NewWatchdog returns a watchdog with the given stall window (cycles).
// A window below twice the network diameter's worth of hop latency will
// false-positive on ordinary in-flight gaps; a few thousand cycles is a
// safe default for the 3x3 mesh.
func NewWatchdog(p Progressor, window uint64) *Watchdog {
	if window == 0 {
		window = 5000
	}
	return &Watchdog{p: p, window: window}
}

// Tick implements sim.Ticker.
func (w *Watchdog) Tick(now uint64) {
	cur := w.p.Progress()
	if cur != w.last || !w.p.Pending() {
		w.last = cur
		w.lastMoveAt = now
		return
	}
	if now-w.lastMoveAt >= w.window && !w.fired {
		w.fired = true
		w.firedAt = now
	}
}

// Stalled reports whether the watchdog has fired, and at which cycle.
func (w *Watchdog) Stalled() (uint64, bool) { return w.firedAt, w.fired }

// Reset clears a fired watchdog (after the caller has handled it).
func (w *Watchdog) Reset() {
	w.fired = false
}
