// Package sim provides the synchronous, cycle-driven simulation kernel:
// a clock, a deterministic random-number source with independent
// substreams, and the Ticker registry the network steps each cycle.
//
// All inter-component communication in the simulator flows through latched
// links (package link), so components registered with a Kernel may be
// ticked in any order within a cycle without changing results.
//
// # Active-set scheduling
//
// The kernel understands an optional Quiescent contract: a Ticker that
// also implements Quiescer tells the kernel when ticking it would be a
// provable no-op, and the kernel skips it, calling FastForward instead to
// apply whatever per-cycle bookkeeping an idle tick still performs
// (static-energy accrual, EWMA decay, sample counters). Skipped
// components re-arm through wake edges: quiescence is defined over the
// component's observable inputs (link pipes, injection queues), so any
// write into those inputs makes the next Quiescent call return false.
// When every registered ticker is quiescent at once the simulation state
// is provably frozen, and Run/RunUntil jump the clock to the next wake
// time (Sleeper) or the end of the run in one step.
//
// The contract is exact, not approximate: a skipped cycle must leave the
// component in the bit-identical state a real Tick would have, so active-
// set runs produce bit-for-bit the same results as dense runs. SetDense
// keeps the dense reference kernel available behind a flag.
package sim

import (
	"math/rand"
	"sync/atomic"
)

// Clock is the global cycle counter. The zero value starts at cycle 0.
type Clock struct {
	now uint64
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Tick advances the clock by one cycle and returns the new time.
func (c *Clock) Tick() uint64 {
	c.now++
	return c.now
}

// Ticker is anything that performs work once per simulated cycle.
type Ticker interface {
	Tick(now uint64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(now uint64) { f(now) }

// Quiescer is an optional refinement of Ticker for components that can
// prove a tick would be a no-op. The contract is strict:
//
//   - Quiescent(now) may return true only when Tick(now) would leave the
//     component bit-identical to FastForward(1) — no flits anywhere, no
//     pending input (link pipes, credits, control lines, injection
//     queues), no mode or smoothing state about to change on its own,
//     and no random-number draws.
//   - FastForward(k) applies exactly the state k consecutive idle ticks
//     would have produced (static energy, EWMA decay, idle counters,
//     arbiter rotation). It must compose: FastForward(a) then
//     FastForward(b) equals FastForward(a+b), and both equal k idle
//     Ticks bit for bit.
//
// A component whose quiescence can expire with time alone (scheduled
// retransmissions, periodic sampling) must also implement Sleeper, or
// the whole-simulation fast-forward could jump past its wake cycle.
type Quiescer interface {
	Ticker
	Quiescent(now uint64) bool
	FastForward(cycles uint64)
}

// Sleeper is an optional refinement of Quiescer for components that are
// quiescent now but know the future cycle at which they next need to
// tick (a due retransmission, the next probe sample, the next trace
// event). NextWake returns that cycle; ok=false means the component
// stays quiescent until an external wake edge. The contract: while the
// component's inputs stay frozen, Quiescent(t) must hold for every
// t < wake.
type Sleeper interface {
	Quiescer
	NextWake(now uint64) (wake uint64, ok bool)
}

// entry is one registered ticker with its cached capability assertions
// (done once at Register so Step performs no per-cycle type asserts).
type entry struct {
	t Ticker
	q Quiescer // nil if t does not implement Quiescer
	s Sleeper  // nil if t does not implement Sleeper
}

// Kernel owns the clock and the ordered set of tickers making up a
// simulation. Components are ticked in registration order; determinism is
// guaranteed because all cross-component state is latched in links.
type Kernel struct {
	clock   Clock
	entries []entry
	dense   bool
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Register adds a ticker to the kernel. Registration order is the tick
// order within a cycle. Quiescer/Sleeper implementations are detected
// here, once, so the per-cycle loop is assertion-free.
func (k *Kernel) Register(t Ticker) {
	e := entry{t: t}
	if q, ok := t.(Quiescer); ok {
		e.q = q
	}
	if s, ok := t.(Sleeper); ok {
		e.s = s
	}
	k.entries = append(k.entries, e)
}

// Reserve pre-sizes the ticker registry for n registrations, avoiding
// append growth during network construction.
func (k *Kernel) Reserve(n int) {
	if cap(k.entries)-len(k.entries) >= n {
		return
	}
	grown := make([]entry, len(k.entries), len(k.entries)+n)
	copy(grown, k.entries)
	k.entries = grown
}

// Mark returns the current registration count. Pair with Truncate to
// drop tickers registered after a known-good prefix (Network.Reset keeps
// the construction-time registrations and sheds the per-cell ones).
func (k *Kernel) Mark() int { return len(k.entries) }

// Truncate unregisters every ticker added after mark, in preparation for
// re-registering a new cell's tickers in the same slots. The dropped
// entries are zeroed so the kernel does not pin them.
func (k *Kernel) Truncate(mark int) {
	for i := mark; i < len(k.entries); i++ {
		k.entries[i] = entry{}
	}
	k.entries = k.entries[:mark]
}

// Rewind resets the clock to cycle 0 without touching the registry; the
// caller is responsible for having rewound every registered component to
// its cycle-0 state.
func (k *Kernel) Rewind() { k.clock.now = 0 }

// SetDense selects the dense reference kernel: every ticker runs every
// cycle and Quiescent is never consulted. Results are bit-for-bit
// identical either way; dense mode exists as the trusted baseline the
// active-set path is regression-tested against.
func (k *Kernel) SetDense(dense bool) { k.dense = dense }

// Dense reports whether the dense reference kernel is selected.
func (k *Kernel) Dense() bool { return k.dense }

// Now returns the current cycle.
func (k *Kernel) Now() uint64 { return k.clock.Now() }

// Step runs one cycle: every registered ticker runs at the current time,
// then the clock advances. Quiescent tickers are skipped (fast-forwarded
// by one cycle) unless the kernel is in dense mode.
func (k *Kernel) Step() { k.step() }

// step is Step, additionally reporting whether every ticker was skipped
// as quiescent — in which case no component performed any work, so the
// simulation state is provably frozen and the caller may jump the clock.
func (k *Kernel) step() bool {
	now := k.clock.Now()
	idle := true
	for i := range k.entries {
		e := &k.entries[i]
		if e.q != nil && !k.dense && e.q.Quiescent(now) {
			// FastForward eagerly (per cycle, not batched) so that any
			// state read between steps — predicates, probes, stats —
			// always sees fully up-to-date counters.
			e.q.FastForward(1)
			continue
		}
		idle = false
		e.t.Tick(now)
	}
	k.clock.Tick()
	return idle
}

// nextWake returns the earliest future cycle any Sleeper reports needing
// to tick, if one exists. Only meaningful while all tickers are
// quiescent (otherwise wake edges can occur at any cycle).
func (k *Kernel) nextWake(now uint64) (uint64, bool) {
	var wake uint64
	have := false
	for i := range k.entries {
		s := k.entries[i].s
		if s == nil {
			continue
		}
		if w, ok := s.NextWake(now); ok && (!have || w < wake) {
			wake, have = w, true
		}
	}
	return wake, have
}

// coast jumps the clock toward end while the simulation is frozen: the
// caller just observed a fully quiescent step, so no state can change
// until the earliest Sleeper wake. Every entry's FastForward covers the
// jumped cycles, keeping per-cycle accounting exact.
func (k *Kernel) coast(end uint64) {
	now := k.clock.Now()
	target := end
	if w, ok := k.nextWake(now); ok && w < target {
		target = w
	}
	if target <= now {
		return
	}
	j := target - now
	for i := range k.entries {
		k.entries[i].q.FastForward(j)
	}
	k.clock.now += j
}

// Run executes n cycles.
func (k *Kernel) Run(n uint64) {
	end := k.clock.Now() + n
	for k.clock.Now() < end {
		if k.step() && !k.dense && k.clock.Now() < end {
			k.coast(end)
		}
	}
}

// RunUntil steps the kernel until pred returns true or limit cycles have
// elapsed, and reports whether pred was satisfied. pred is evaluated
// before each step so a pre-satisfied predicate runs zero cycles.
//
// When every ticker is quiescent the simulation state is frozen, so pred
// cannot change until the next wake edge; RunUntil then evaluates pred
// once and jumps the clock to that wake (or the limit) instead of
// re-evaluating an unchangeable predicate every cycle. Cycle-count
// semantics are exact — the clock advances by precisely the cycles an
// unsatisfied predicate would have run. pred must therefore be a
// function of simulation state (packets, flits, queues, drain status),
// not of the raw clock value or of per-cycle accrual counters such as
// accumulated energy; every predicate in this repository qualifies.
func (k *Kernel) RunUntil(pred func() bool, limit uint64) bool {
	end := k.clock.Now() + limit
	for k.clock.Now() < end {
		if pred() {
			return true
		}
		if k.step() && !k.dense && k.clock.Now() < end {
			k.coast(end)
		}
	}
	return pred()
}

// Source is a deterministic random source that can mint independent
// substreams, so that (for example) each router's arbitration randomness
// is independent of each traffic generator's.
//
// A Source (and every *rand.Rand it mints) is single-goroutine state: one
// simulation cell owns it for the cell's whole lifetime. Parallel sweeps
// must build one network — and therefore one Source — per cell
// (internal/runner enforces nothing; the per-cell construction in
// internal/experiments does). Stream carries a cheap concurrent-use check
// that panics on overlapping calls; determinism of stream numbering is
// only defined for the single-goroutine contract anyway.
type Source struct {
	seed int64
	next int64
	busy atomic.Bool // concurrent-misuse detector, not a synchronization
}

// NewSource returns a Source rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Stream returns a new deterministic *rand.Rand. Streams are numbered in
// creation order; the i-th stream of two Sources with equal seeds are
// identical. Stream panics if it observes an overlapping call from
// another goroutine (which would make stream numbering nondeterministic).
func (s *Source) Stream() *rand.Rand {
	return rand.New(rand.NewSource(s.StreamSeed()))
}

// StreamSeed consumes the next stream number and returns its root seed.
// rand.New(rand.NewSource(seed)) and r.Seed(seed) produce identical
// generator state, so minting a fresh stream and re-seeding an existing
// one (Reseed) are interchangeable — reused networks rely on this to
// stay bit-for-bit identical to freshly built ones.
func (s *Source) StreamSeed() int64 {
	if !s.busy.CompareAndSwap(false, true) {
		panic("sim: Source.Stream called concurrently; a Source is single-goroutine — use one Source per simulation cell")
	}
	defer s.busy.Store(false)
	s.next++
	// SplitMix-style stream derivation keeps substreams decorrelated.
	z := uint64(s.seed) + uint64(s.next)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Reseed rewinds an existing generator onto the next stream, the
// allocation-free equivalent of replacing it with Stream().
func (s *Source) Reseed(r *rand.Rand) { r.Seed(s.StreamSeed()) }

// Reset re-roots the source at seed with stream numbering restarted, so
// a reused component mints the same stream sequence as a fresh one.
func (s *Source) Reset(seed int64) {
	s.seed = seed
	s.next = 0
}
