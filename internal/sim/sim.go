// Package sim provides the synchronous, cycle-driven simulation kernel:
// a clock, a deterministic random-number source with independent
// substreams, and the Ticker registry the network steps each cycle.
//
// All inter-component communication in the simulator flows through latched
// links (package link), so components registered with a Kernel may be
// ticked in any order within a cycle without changing results.
package sim

import (
	"math/rand"
	"sync/atomic"
)

// Clock is the global cycle counter. The zero value starts at cycle 0.
type Clock struct {
	now uint64
}

// Now returns the current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Tick advances the clock by one cycle and returns the new time.
func (c *Clock) Tick() uint64 {
	c.now++
	return c.now
}

// Ticker is anything that performs work once per simulated cycle.
type Ticker interface {
	Tick(now uint64)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now uint64)

// Tick implements Ticker.
func (f TickFunc) Tick(now uint64) { f(now) }

// Kernel owns the clock and the ordered set of tickers making up a
// simulation. Components are ticked in registration order; determinism is
// guaranteed because all cross-component state is latched in links.
type Kernel struct {
	clock   Clock
	tickers []Ticker
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Register adds a ticker to the kernel. Registration order is the tick
// order within a cycle.
func (k *Kernel) Register(t Ticker) { k.tickers = append(k.tickers, t) }

// Now returns the current cycle.
func (k *Kernel) Now() uint64 { return k.clock.Now() }

// Step runs one cycle: every registered ticker runs at the current time,
// then the clock advances.
func (k *Kernel) Step() {
	now := k.clock.Now()
	for _, t := range k.tickers {
		t.Tick(now)
	}
	k.clock.Tick()
}

// Run executes n cycles.
func (k *Kernel) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until pred returns true or limit cycles have
// elapsed, and reports whether pred was satisfied. pred is evaluated
// before each step so a pre-satisfied predicate runs zero cycles.
func (k *Kernel) RunUntil(pred func() bool, limit uint64) bool {
	for i := uint64(0); i < limit; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// Source is a deterministic random source that can mint independent
// substreams, so that (for example) each router's arbitration randomness
// is independent of each traffic generator's.
//
// A Source (and every *rand.Rand it mints) is single-goroutine state: one
// simulation cell owns it for the cell's whole lifetime. Parallel sweeps
// must build one network — and therefore one Source — per cell
// (internal/runner enforces nothing; the per-cell construction in
// internal/experiments does). Stream carries a cheap concurrent-use check
// that panics on overlapping calls; determinism of stream numbering is
// only defined for the single-goroutine contract anyway.
type Source struct {
	seed int64
	next int64
	busy atomic.Bool // concurrent-misuse detector, not a synchronization
}

// NewSource returns a Source rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed}
}

// Stream returns a new deterministic *rand.Rand. Streams are numbered in
// creation order; the i-th stream of two Sources with equal seeds are
// identical. Stream panics if it observes an overlapping call from
// another goroutine (which would make stream numbering nondeterministic).
func (s *Source) Stream() *rand.Rand {
	if !s.busy.CompareAndSwap(false, true) {
		panic("sim: Source.Stream called concurrently; a Source is single-goroutine — use one Source per simulation cell")
	}
	defer s.busy.Store(false)
	s.next++
	// SplitMix-style stream derivation keeps substreams decorrelated.
	z := uint64(s.seed) + uint64(s.next)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
