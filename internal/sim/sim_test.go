package sim

import (
	"sync"
	"testing"
)

func TestKernelTickOrderAndTime(t *testing.T) {
	k := NewKernel()
	var log []int
	var times []uint64
	k.Register(TickFunc(func(now uint64) { log = append(log, 1); times = append(times, now) }))
	k.Register(TickFunc(func(now uint64) { log = append(log, 2) }))
	k.Run(3)
	if k.Now() != 3 {
		t.Errorf("Now = %d, want 3", k.Now())
	}
	want := []int{1, 2, 1, 2, 1, 2}
	for i, v := range want {
		if log[i] != v {
			t.Fatalf("tick order %v, want %v", log, want)
		}
	}
	for i, tm := range times {
		if tm != uint64(i) {
			t.Errorf("ticker saw time %d at cycle %d", tm, i)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	count := 0
	k.Register(TickFunc(func(uint64) { count++ }))
	if !k.RunUntil(func() bool { return count >= 5 }, 100) {
		t.Fatal("RunUntil failed")
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if k.RunUntil(func() bool { return false }, 10) {
		t.Error("RunUntil should report failure at limit")
	}
	// Pre-satisfied predicate runs zero cycles.
	before := k.Now()
	if !k.RunUntil(func() bool { return true }, 10) || k.Now() != before {
		t.Error("pre-satisfied RunUntil should not step")
	}
}

func TestSourceStreamsAreDeterministic(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 5; i++ {
		ra, rb := a.Stream(), b.Stream()
		for j := 0; j < 20; j++ {
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("stream %d diverged at draw %d", i, j)
			}
		}
	}
}

func TestSourceStreamsAreIndependent(t *testing.T) {
	s := NewSource(7)
	r1, r2 := s.Stream(), s.Stream()
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams correlated: %d/100 equal draws", same)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	r1 := NewSource(1).Stream()
	r2 := NewSource(2).Stream()
	same := 0
	for i := 0; i < 100; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds correlated: %d/100 equal draws", same)
	}
}

// TestSourcePerCellAcrossGoroutines pins the concurrency contract the
// parallel experiment engine relies on: one Source per cell, each owned
// by a single goroutine, is race-free (run under -race) and every cell's
// streams are identical to a serial run with the same seed.
func TestSourcePerCellAcrossGoroutines(t *testing.T) {
	const cells = 16
	want := make([]uint64, cells)
	for i := range want {
		want[i] = NewSource(int64(i)).Stream().Uint64()
	}
	got := make([]uint64, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := NewSource(int64(i)) // the cell owns its Source
			for k := 0; k < 100; k++ {
				s.Stream()
			}
			got[i] = NewSource(int64(i)).Stream().Uint64()
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: stream diverged across goroutines", i)
		}
	}
}
