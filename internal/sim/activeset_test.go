package sim

import "testing"

// fakeQuiescer is quiescent whenever quiet reports true; it counts dense
// ticks and fast-forwarded cycles so tests can assert exactly which path
// the kernel took each cycle.
type fakeQuiescer struct {
	quiet func(now uint64) bool
	ticks []uint64
	ffwd  uint64
}

func (f *fakeQuiescer) Tick(now uint64)           { f.ticks = append(f.ticks, now) }
func (f *fakeQuiescer) Quiescent(now uint64) bool { return f.quiet(now) }
func (f *fakeQuiescer) FastForward(cycles uint64) { f.ffwd += cycles }

// fakeSleeper adds a wake schedule: quiescent except at multiples of
// period.
type fakeSleeper struct {
	fakeQuiescer
	period uint64
}

func newFakeSleeper(period uint64) *fakeSleeper {
	s := &fakeSleeper{period: period}
	s.quiet = func(now uint64) bool { return now%period != 0 }
	return s
}

func (s *fakeSleeper) NextWake(now uint64) (uint64, bool) {
	return now + (s.period - now%s.period), true
}

func TestKernelSkipsQuiescentTickers(t *testing.T) {
	k := NewKernel()
	busy := &fakeQuiescer{quiet: func(uint64) bool { return false }}
	idle := &fakeQuiescer{quiet: func(uint64) bool { return true }}
	k.Register(busy)
	k.Register(idle)
	k.Run(10)
	if len(busy.ticks) != 10 || busy.ffwd != 0 {
		t.Errorf("busy: %d ticks, %d ffwd cycles; want 10, 0", len(busy.ticks), busy.ffwd)
	}
	if len(idle.ticks) != 0 || idle.ffwd != 10 {
		t.Errorf("idle: %d ticks, %d ffwd cycles; want 0, 10", len(idle.ticks), idle.ffwd)
	}
	if k.Now() != 10 {
		t.Errorf("Now = %d, want 10", k.Now())
	}
}

func TestKernelDenseDisablesSkipping(t *testing.T) {
	k := NewKernel()
	k.SetDense(true)
	idle := &fakeQuiescer{quiet: func(uint64) bool { return true }}
	k.Register(idle)
	k.Run(7)
	if len(idle.ticks) != 7 || idle.ffwd != 0 {
		t.Errorf("dense kernel skipped: %d ticks, %d ffwd; want 7, 0", len(idle.ticks), idle.ffwd)
	}
}

func TestKernelCoastsToWakeEdge(t *testing.T) {
	k := NewKernel()
	s := newFakeSleeper(100)
	k.Register(s)
	k.Run(250)
	if k.Now() != 250 {
		t.Fatalf("Now = %d, want 250", k.Now())
	}
	// Dense ticks only at the wake edges 0, 100, 200; every other cycle is
	// fast-forwarded (the cycle after each wake via the per-entry skip, the
	// rest via whole-kernel coasting).
	want := []uint64{0, 100, 200}
	if len(s.ticks) != len(want) {
		t.Fatalf("dense ticks at %v, want %v", s.ticks, want)
	}
	for i, w := range want {
		if s.ticks[i] != w {
			t.Fatalf("dense ticks at %v, want %v", s.ticks, want)
		}
	}
	if s.ffwd != 250-3 {
		t.Errorf("fast-forwarded %d cycles, want %d", s.ffwd, 250-3)
	}
}

func TestKernelCoastStopsAtRunBoundary(t *testing.T) {
	k := NewKernel()
	s := newFakeSleeper(1000)
	k.Register(s)
	k.Run(30)
	if k.Now() != 30 {
		t.Errorf("coast overshot the Run boundary: Now = %d, want 30", k.Now())
	}
	if got := uint64(len(s.ticks)) + s.ffwd; got != 30 {
		t.Errorf("ticks+ffwd = %d, want every cycle accounted (30)", got)
	}
}

func TestKernelPlainTickerBlocksCoast(t *testing.T) {
	k := NewKernel()
	s := newFakeSleeper(1000)
	plain := 0
	k.Register(s)
	k.Register(TickFunc(func(uint64) { plain++ }))
	k.Run(50)
	if plain != 50 {
		t.Errorf("plain ticker ran %d times, want 50 (non-Quiescer must tick every cycle)", plain)
	}
	if k.Now() != 50 {
		t.Errorf("Now = %d, want 50", k.Now())
	}
}

func TestRunUntilExactCycleCountsWhileCoasting(t *testing.T) {
	k := NewKernel()
	s := newFakeSleeper(64)
	k.Register(s)
	// Predicate over simulation state: the sleeper has ticked 3 times
	// (cycles 0, 64, 128 — satisfied once the cycle-128 tick ran, checked
	// at now = 129).
	ok := k.RunUntil(func() bool { return len(s.ticks) >= 3 }, 10_000)
	if !ok {
		t.Fatal("RunUntil did not reach the predicate")
	}
	if k.Now() != 129 {
		t.Errorf("Now = %d, want 129 (coast must stop at each wake edge for the predicate)", k.Now())
	}

	// A predicate that never holds must still consume exactly the limit.
	k2 := NewKernel()
	k2.Register(newFakeSleeper(64))
	if k2.RunUntil(func() bool { return false }, 777) {
		t.Error("RunUntil reported success on a false predicate")
	}
	if k2.Now() != 777 {
		t.Errorf("Now = %d, want exactly the 777-cycle limit", k2.Now())
	}
}

func TestReserveKeepsRegistrationOrder(t *testing.T) {
	k := NewKernel()
	var log []int
	k.Register(TickFunc(func(uint64) { log = append(log, 0) }))
	k.Reserve(16)
	k.Register(TickFunc(func(uint64) { log = append(log, 1) }))
	k.Run(1)
	if len(log) != 2 || log[0] != 0 || log[1] != 1 {
		t.Errorf("tick order %v, want [0 1]", log)
	}
}
