package sim

import (
	"runtime"
	"sync"
)

// shardJob is one parallel phase handed to the workers: every worker
// runs fn on its own shard index at the given cycle. The function value
// travels through the channel (rather than living in the worker's
// closure) so parked workers hold no reference to the simulation they
// serve — a ShardGroup's goroutines must not keep an abandoned network
// reachable, or the finalizer that shuts them down could never run.
type shardJob struct {
	now uint64
	fn  func(shard int, now uint64)
}

// ShardGroup is a persistent worker group for the sharded network tick:
// Run dispatches one function invocation per shard, executes shard 0 on
// the calling goroutine, and returns only when every shard has finished
// (a full barrier). The channel hand-off into each worker orders the
// caller's preceding writes before the worker's reads, and the WaitGroup
// join orders every worker's writes before the caller's subsequent
// reads, so the serial phases around a Run see a consistent picture
// without any other synchronization.
//
// On a single-P runtime (GOMAXPROCS=1) the workers could never overlap:
// every cycle would pay the channel hand-offs and goroutine switches
// only to execute the same instructions sequentially. NewShardGroup
// detects that case and runs all shards inline on the calling goroutine
// instead. That is not a different algorithm — sequential ascending
// order is one of the legal schedules of the concurrent protocol (the
// phase functions may not share mutable state across shard indexes
// within a Run, so any execution order gives the same result) — it just
// skips the dispatch. Race-detector builds always keep real workers so
// the detector observes genuine cross-goroutine execution; without
// that, a single-core race run would silently validate nothing.
//
// A group owns n-1 goroutines that park between cycles. They exit when
// Close is called; the network installs a finalizer as a backstop so an
// unclosed group does not leak its workers past the network's lifetime.
type ShardGroup struct {
	n      int
	inline bool
	chans  []chan shardJob
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewShardGroup returns a group able to run n shards per cycle: n-1
// parked workers plus the calling goroutine, or a dispatch-free inline
// group when the runtime has a single P (decided once, here — a later
// GOMAXPROCS change does not re-shape an existing group). n must be at
// least 1.
func NewShardGroup(n int) *ShardGroup {
	g := &ShardGroup{n: n}
	if runtime.GOMAXPROCS(0) == 1 && !raceEnabled {
		g.inline = true
		return g
	}
	for i := 1; i < n; i++ {
		ch := make(chan shardJob, 1)
		g.chans = append(g.chans, ch)
		go func(shard int, ch chan shardJob) {
			for j := range ch {
				j.fn(shard, j.now)
				g.wg.Done()
			}
		}(i, ch)
	}
	return g
}

// Shards returns the number of shards the group runs per cycle.
func (g *ShardGroup) Shards() int { return g.n }

// Inline reports whether the group runs its shards on the calling
// goroutine instead of dispatching to workers (single-P runtimes). The
// observability layer records it so benchmark artifacts say which
// dispatch path they measured.
func (g *ShardGroup) Inline() bool { return g.inline }

// Run executes fn(shard, now) for every shard concurrently and waits for
// all of them. Shard 0 runs on the calling goroutine, so a single-shard
// group degenerates to a plain call. Steady state allocates nothing: the
// job struct travels the channels by value and fn is the same function
// value every cycle.
func (g *ShardGroup) Run(now uint64, fn func(shard int, now uint64)) {
	if g.inline {
		for i := 0; i < g.n; i++ {
			fn(i, now)
		}
		return
	}
	g.wg.Add(len(g.chans))
	for _, ch := range g.chans {
		ch <- shardJob{now: now, fn: fn}
	}
	fn(0, now)
	g.wg.Wait()
}

// Close shuts the workers down. Idempotent; safe to use as a finalizer
// alongside an explicit call.
func (g *ShardGroup) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.chans {
		close(ch)
	}
}
