//go:build race

package sim

// raceEnabled reports whether the race detector is compiled into this
// build. The shard group consults it so race-mode tests always exercise
// real worker goroutines (see NewShardGroup).
const raceEnabled = true
