// Package viz renders the paper's figures as standalone SVG files: the
// grouped bar charts of Figures 2 and 3 (normalized performance/energy
// per benchmark and configuration, with variance whiskers and stacked
// energy components) and the latency-throughput curves of the open-loop
// sweep. Pure stdlib; cmd/figures -svg writes one file per artifact.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Palette used for series, in order.
var Palette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
}

const (
	chartW   = 760
	chartH   = 420
	marginL  = 70
	marginR  = 20
	marginT  = 48
	marginB  = 88
	fontFam  = "Helvetica, Arial, sans-serif"
	axisGray = "#444444"
)

func plotW() float64 { return float64(chartW - marginL - marginR) }
func plotH() float64 { return float64(chartH - marginT - marginB) }

type svgBuilder struct {
	b strings.Builder
}

func newSVG(title string) *svgBuilder {
	s := &svgBuilder{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`, chartW, chartH)
	s.text(float64(chartW)/2, 24, title, 16, "middle", "bold")
	return s
}

func (s *svgBuilder) text(x, y float64, t string, size int, anchor, weight string) {
	fmt.Fprintf(&s.b,
		`<text x="%.1f" y="%.1f" font-family="%s" font-size="%d" text-anchor="%s" font-weight="%s" fill="%s">%s</text>`,
		x, y, fontFam, size, anchor, weight, axisGray, escape(t))
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		x1, y1, x2, y2, color, width)
}

func (s *svgBuilder) rect(x, y, w, h float64, color string) {
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
		x, y, w, h, color)
}

func (s *svgBuilder) finish() string {
	s.b.WriteString(`</svg>`)
	return s.b.String()
}

func escape(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(t)
}

// niceMax rounds v up to a pleasant axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 1.2, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10} {
		if m*mag >= v {
			return m * mag
		}
	}
	return 10 * mag
}

// yAxis draws the vertical axis with ~5 ticks up to max and returns the
// value-to-pixel mapping.
func (s *svgBuilder) yAxis(max float64, label string) func(v float64) float64 {
	toY := func(v float64) float64 {
		return float64(marginT) + plotH()*(1-v/max)
	}
	s.line(marginL, marginT, marginL, float64(marginT)+plotH(), axisGray, 1)
	ticks := 5
	for i := 0; i <= ticks; i++ {
		v := max * float64(i) / float64(ticks)
		y := toY(v)
		s.line(marginL-4, y, marginL, y, axisGray, 1)
		s.line(marginL, y, float64(chartW-marginR), y, "#e5e5e5", 0.5)
		s.text(marginL-8, y+4, trimFloat(v), 11, "end", "normal")
	}
	// vertical label
	fmt.Fprintf(&s.b,
		`<text x="16" y="%.1f" font-family="%s" font-size="12" text-anchor="middle" fill="%s" transform="rotate(-90 16 %.1f)">%s</text>`,
		float64(marginT)+plotH()/2, fontFam, axisGray, float64(marginT)+plotH()/2, escape(label))
	return toY
}

func trimFloat(v float64) string {
	t := fmt.Sprintf("%.2f", v)
	t = strings.TrimRight(t, "0")
	return strings.TrimRight(t, ".")
}

// legend draws a horizontal legend at the bottom.
func (s *svgBuilder) legend(names []string) {
	x := float64(marginL)
	y := float64(chartH - 16)
	for i, n := range names {
		c := Palette[i%len(Palette)]
		s.rect(x, y-9, 10, 10, c)
		s.text(x+14, y, n, 11, "start", "normal")
		x += 14 + float64(len(n))*6.6 + 18
	}
}

// BarSeries is one configuration's values across the groups (one value
// per group; optional Err whiskers, one per group or nil).
type BarSeries struct {
	Name string
	Val  []float64
	Err  []float64
}

// BarChart is a grouped bar chart (Figure 2 style).
type BarChart struct {
	Title  string
	YLabel string
	Groups []string // benchmark names along X
	Series []BarSeries
	// RefLine draws a horizontal reference (e.g., 1.0 for normalized
	// plots); 0 disables it.
	RefLine float64
}

// SVG renders the chart.
func (c BarChart) SVG() string {
	s := newSVG(c.Title)
	max := c.RefLine
	for _, sr := range c.Series {
		for i, v := range sr.Val {
			e := 0.0
			if sr.Err != nil && i < len(sr.Err) {
				e = sr.Err[i]
			}
			if v+e > max {
				max = v + e
			}
		}
	}
	toY := s.yAxis(niceMax(max*1.05), c.YLabel)
	groupW := plotW() / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*float64(gi)
		s.text(gx+groupW/2, float64(chartH-marginB)+18, g, 12, "middle", "normal")
		for si, sr := range c.Series {
			if gi >= len(sr.Val) {
				continue
			}
			v := sr.Val[gi]
			x := gx + groupW*0.1 + barW*float64(si)
			y := toY(v)
			s.rect(x, y, barW-2, float64(marginT)+plotH()-y, Palette[si%len(Palette)])
			if sr.Err != nil && gi < len(sr.Err) && sr.Err[gi] > 0 {
				e := sr.Err[gi]
				cx := x + (barW-2)/2
				s.line(cx, toY(v+e), cx, toY(v-e), axisGray, 1)
				s.line(cx-3, toY(v+e), cx+3, toY(v+e), axisGray, 1)
				s.line(cx-3, toY(v-e), cx+3, toY(v-e), axisGray, 1)
			}
		}
	}
	if c.RefLine > 0 {
		y := toY(c.RefLine)
		fmt.Fprintf(&s.b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="5,3"/>`,
			marginL, y, chartW-marginR, y, "#888888")
	}
	var names []string
	for _, sr := range c.Series {
		names = append(names, sr.Name)
	}
	s.legend(names)
	return s.finish()
}

// StackSeries is one stacked component across the groups (Figure 3
// style: buffer/link/rest per configuration).
type StackSeries struct {
	Name string
	Val  []float64
}

// StackedBarChart draws one stacked bar per group.
type StackedBarChart struct {
	Title  string
	YLabel string
	Groups []string
	Stacks []StackSeries // bottom-up
}

// SVG renders the chart.
func (c StackedBarChart) SVG() string {
	s := newSVG(c.Title)
	max := 0.0
	for gi := range c.Groups {
		sum := 0.0
		for _, st := range c.Stacks {
			if gi < len(st.Val) {
				sum += st.Val[gi]
			}
		}
		if sum > max {
			max = sum
		}
	}
	toY := s.yAxis(niceMax(max*1.05), c.YLabel)
	groupW := plotW() / float64(len(c.Groups))
	barW := groupW * 0.55
	for gi, g := range c.Groups {
		gx := float64(marginL) + groupW*float64(gi)
		// rotate long labels
		fmt.Fprintf(&s.b,
			`<text x="%.1f" y="%.1f" font-family="%s" font-size="10" text-anchor="end" fill="%s" transform="rotate(-30 %.1f %.1f)">%s</text>`,
			gx+groupW/2, float64(chartH-marginB)+16, fontFam, axisGray,
			gx+groupW/2, float64(chartH-marginB)+16, escape(g))
		base := 0.0
		for si, st := range c.Stacks {
			if gi >= len(st.Val) {
				continue
			}
			v := st.Val[gi]
			yTop := toY(base + v)
			yBot := toY(base)
			s.rect(gx+(groupW-barW)/2, yTop, barW, yBot-yTop, Palette[si%len(Palette)])
			base += v
		}
	}
	var names []string
	for _, st := range c.Stacks {
		names = append(names, st.Name)
	}
	s.legend(names)
	return s.finish()
}

// LineSeries is one curve of a line chart.
type LineSeries struct {
	Name string
	X, Y []float64
}

// LineChart draws latency-throughput style curves.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []LineSeries
	// YCap clips the vertical axis (saturated latencies explode); 0 =
	// auto.
	YCap float64
}

// SVG renders the chart.
func (c LineChart) SVG() string {
	s := newSVG(c.Title)
	maxX, maxY := 0.0, 0.0
	for _, sr := range c.Series {
		for i := range sr.X {
			if sr.X[i] > maxX {
				maxX = sr.X[i]
			}
			y := sr.Y[i]
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	yMax := niceMax(maxY * 1.05)
	toY := s.yAxis(yMax, c.YLabel)
	xMax := niceMax(maxX)
	toX := func(v float64) float64 { return float64(marginL) + plotW()*v/xMax }
	// x axis
	s.line(marginL, float64(marginT)+plotH(), float64(chartW-marginR), float64(marginT)+plotH(), axisGray, 1)
	for i := 0; i <= 6; i++ {
		v := xMax * float64(i) / 6
		x := toX(v)
		s.line(x, float64(marginT)+plotH(), x, float64(marginT)+plotH()+4, axisGray, 1)
		s.text(x, float64(marginT)+plotH()+16, trimFloat(v), 11, "middle", "normal")
	}
	s.text(float64(marginL)+plotW()/2, float64(chartH-marginB)+36, c.XLabel, 12, "middle", "normal")

	for si, sr := range c.Series {
		color := Palette[si%len(Palette)]
		var pts []string
		for i := range sr.X {
			y := sr.Y[i]
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(sr.X[i]), toY(y)))
		}
		fmt.Fprintf(&s.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for i := range sr.X {
			y := sr.Y[i]
			if c.YCap > 0 && y > c.YCap {
				y = c.YCap
			}
			fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`,
				toX(sr.X[i]), toY(y), color)
		}
	}
	var names []string
	for _, sr := range c.Series {
		names = append(names, sr.Name)
	}
	s.legend(names)
	return s.finish()
}
