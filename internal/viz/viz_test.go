package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:  "Figure 2(c)",
		YLabel: "normalized performance",
		Groups: []string{"apache", "oltp", "specjbb"},
		Series: []BarSeries{
			{Name: "backpressured", Val: []float64{1, 1, 1}},
			{Name: "backpressureless", Val: []float64{0.73, 0.77, 0.71}, Err: []float64{0.01, 0.01, 0.01}},
			{Name: "afc", Val: []float64{0.99, 1.0, 0.98}},
		},
		RefLine: 1,
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if n := strings.Count(svg, "<rect"); n < 10 {
		t.Errorf("expected at least 10 rects (bars+bg+legend), got %d", n)
	}
	for _, want := range []string{"apache", "backpressureless", "Figure 2(c)", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 3 series x 3 groups of bars + background + 3 legend swatches = 13 rects.
	if n := strings.Count(svg, "<rect"); n != 13 {
		t.Errorf("rect count = %d, want 13", n)
	}
}

func TestBarChartWhiskers(t *testing.T) {
	c := BarChart{
		Groups: []string{"a"},
		Series: []BarSeries{{Name: "x", Val: []float64{1}, Err: []float64{0.2}}},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	// whisker = 3 lines beyond axis/grid lines
	if n := strings.Count(svg, "<line"); n < 10 {
		t.Errorf("whiskers missing: %d lines", n)
	}
}

func TestStackedBarChartSVG(t *testing.T) {
	c := StackedBarChart{
		Title:  "Figure 3(a)",
		YLabel: "normalized energy",
		Groups: []string{"bp", "bless", "afc"},
		Stacks: []StackSeries{
			{Name: "buffer", Val: []float64{0.37, 0, 0.02}},
			{Name: "link", Val: []float64{0.06, 0.07, 0.08}},
			{Name: "rest", Val: []float64{0.57, 0.64, 0.69}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	// 3 groups x up to 3 segments (one zero-height still drawn) + bg + 3 legend.
	if n := strings.Count(svg, "<rect"); n < 10 {
		t.Errorf("rect count = %d", n)
	}
	if !strings.Contains(svg, "rotate(-30") {
		t.Error("group labels should be rotated")
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "latency vs offered load",
		XLabel: "offered (flits/node/cycle)",
		YLabel: "latency (cycles)",
		YCap:   300,
		Series: []LineSeries{
			{Name: "backpressured", X: []float64{0.1, 0.3, 0.5}, Y: []float64{15, 18, 25}},
			{Name: "bless", X: []float64{0.1, 0.3, 0.5}, Y: []float64{15, 20, 900}},
		},
	}
	svg := c.SVG()
	wellFormed(t, svg)
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Errorf("polyline count = %d, want 2", n)
	}
	if n := strings.Count(svg, "<circle"); n != 6 {
		t.Errorf("marker count = %d, want 6", n)
	}
	// YCap: the 900 point must be clipped, so no y coordinate above the
	// plot area (y < marginT) may appear on the bless polyline.
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("SVG contains invalid coordinates")
	}
}

func TestNiceMax(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.9, 1}, {1.1, 1.2}, {1.7, 2}, {37, 40}, {0, 1}, {99, 100},
	}
	for _, c := range cases {
		if got := niceMax(c.in); got != c.want {
			t.Errorf("niceMax(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestEscape(t *testing.T) {
	if got := escape("a<b&c>d"); got != "a&lt;b&amp;c&gt;d" {
		t.Errorf("escape = %q", got)
	}
}
