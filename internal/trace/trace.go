// Package trace records packet traffic from one run and replays it into
// another network — trace-driven evaluation. The paper's methodology
// section argues against relying on it: "trace-driven evaluations do not
// include the feedback effect of the network on execution time", so a
// trace recorded on a fast network over-drives a slow one (its queues
// grow without the MSHR throttling that a real system would apply). The
// TraceVsExecution experiment quantifies exactly that effect.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/topology"
)

// Event is one recorded packet creation.
type Event struct {
	At      uint64
	Src     topology.NodeID
	Dst     topology.NodeID
	VN      flit.VN
	Len     int
	Payload uint64
}

// Trace is a time-ordered sequence of packet creations.
type Trace struct {
	Events []Event
}

// Record installs creation hooks on every NI of net; events accumulate in
// the returned Trace until StopRecording.
func Record(net *network.Network) *Trace {
	tr := &Trace{}
	for i := 0; i < net.Nodes(); i++ {
		node := topology.NodeID(i)
		net.NI(node).SetCreateHook(func(p flit.Packet) {
			tr.Events = append(tr.Events, Event{
				At:      p.CreatedAt,
				Src:     p.Src,
				Dst:     p.Dst,
				VN:      p.VN,
				Len:     p.Len,
				Payload: p.Payload,
			})
		})
	}
	return tr
}

// StopRecording removes the hooks installed by Record.
func StopRecording(net *network.Network) {
	for i := 0; i < net.Nodes(); i++ {
		net.NI(topology.NodeID(i)).SetCreateHook(nil)
	}
}

// Sort orders events by creation time (stable on src for determinism).
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].At != t.Events[j].At {
			return t.Events[i].At < t.Events[j].At
		}
		return t.Events[i].Src < t.Events[j].Src
	})
}

// Window returns the sub-trace with creation times in [from, to), shifted
// so the first cycle is 0.
func (t *Trace) Window(from, to uint64) *Trace {
	out := &Trace{}
	for _, e := range t.Events {
		if e.At >= from && e.At < to {
			e.At -= from
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// Flits returns the total flit count of the trace.
func (t *Trace) Flits() uint64 {
	var n uint64
	for _, e := range t.Events {
		n += uint64(e.Len)
	}
	return n
}

// Duration returns the creation-time span of the (sorted) trace.
func (t *Trace) Duration() uint64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At - t.Events[0].At + 1
}

// Write serializes the trace as one line per event
// ("cycle src dst vn len payload").
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d\n",
			e.At, e.Src, e.Dst, e.VN, e.Len, e.Payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		var vn int
		if _, err := fmt.Sscanf(text, "%d %d %d %d %d %d",
			&e.At, &e.Src, &e.Dst, &vn, &e.Len, &e.Payload); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if vn < 0 || vn >= int(flit.NumVNs) {
			return nil, fmt.Errorf("trace: line %d: bad VN %d", line, vn)
		}
		if e.Len < 1 {
			return nil, fmt.Errorf("trace: line %d: bad length %d", line, e.Len)
		}
		e.VN = flit.VN(vn)
		tr.Events = append(tr.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Replayer feeds a trace into a network open-loop: each event's packet is
// created at its recorded (shifted) cycle regardless of network state —
// exactly the missing-feedback property the paper warns about. Register
// with net.AddTicker.
type Replayer struct {
	net   *network.Network
	trace *Trace
	next  int
	start uint64
	began bool
}

// NewReplayer returns a replayer for tr (which it sorts).
func NewReplayer(net *network.Network, tr *Trace) *Replayer {
	tr.Sort()
	return &Replayer{net: net, trace: tr}
}

// Done reports whether every event has been injected.
func (r *Replayer) Done() bool { return r.next >= len(r.trace.Events) }

// Tick implements sim.Ticker.
func (r *Replayer) Tick(now uint64) {
	if !r.began {
		r.began = true
		r.start = now
	}
	rel := now - r.start
	for r.next < len(r.trace.Events) && r.trace.Events[r.next].At <= rel {
		e := r.trace.Events[r.next]
		r.next++
		if e.Src == e.Dst {
			continue // defensive: self-addressed events are dropped
		}
		r.net.NI(e.Src).SendPacket(now, e.Dst, e.VN, e.Len, e.Payload)
	}
}

// Quiescent implements sim.Quiescer: nothing to inject before the next
// event's stamp (or ever again, once the trace is exhausted). The first
// Tick must run densely because it latches the start cycle.
func (r *Replayer) Quiescent(now uint64) bool {
	if !r.began {
		return false
	}
	return r.Done() || r.start+r.trace.Events[r.next].At > now
}

// FastForward implements sim.Quiescer (no per-cycle state to advance).
func (r *Replayer) FastForward(cycles uint64) {}

// NextWake implements sim.Sleeper: the absolute cycle of the next event.
func (r *Replayer) NextWake(now uint64) (uint64, bool) {
	if !r.began || r.Done() {
		return 0, false
	}
	return r.start + r.trace.Events[r.next].At, true
}
