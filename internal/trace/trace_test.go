package trace

import (
	"bytes"
	"testing"

	"afcnet/internal/cmp"
	"afcnet/internal/flit"
	"afcnet/internal/network"
)

func TestRecordCapturesClosedLoopTraffic(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 3})
	tr := Record(net)
	sys := cmp.NewSystem(net, cmp.Ocean(), net.RandStream)
	if _, ok := sys.Measure(100, 500, 3_000_000); !ok {
		t.Fatal("timeout")
	}
	StopRecording(net)
	before := len(tr.Events)
	if before == 0 {
		t.Fatal("nothing recorded")
	}
	net.Run(500)
	if len(tr.Events) != before {
		t.Error("recording continued after StopRecording")
	}
	// Requests, responses and (usually) writebacks should all appear.
	perVN := map[flit.VN]int{}
	for _, e := range tr.Events {
		perVN[e.VN]++
		if e.Src == e.Dst {
			t.Fatal("self-addressed event recorded")
		}
	}
	if perVN[flit.VNReq] == 0 || perVN[flit.VNData] == 0 {
		t.Errorf("VN mix missing classes: %v", perVN)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 5, Src: 0, Dst: 8, VN: flit.VNData, Len: 17, Payload: 42},
		{At: 2, Src: 3, Dst: 1, VN: flit.VNReq, Len: 1, Payload: 7},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 || got.Events[0] != tr.Events[0] {
		t.Fatalf("round trip = %+v", got.Events)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"1 2 3\n",       // too few fields
		"1 2 3 9 1 0\n", // bad VN
		"1 2 3 0 0 0\n", // zero length
		"x y z a b c\n", // not numbers
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("accepted garbage %q", c)
		}
	}
}

func TestWindowAndHelpers(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 10, Src: 0, Dst: 1, VN: flit.VNReq, Len: 1},
		{At: 20, Src: 1, Dst: 2, VN: flit.VNData, Len: 17},
		{At: 30, Src: 2, Dst: 3, VN: flit.VNReq, Len: 1},
	}}
	w := tr.Window(15, 30)
	if len(w.Events) != 1 || w.Events[0].At != 5 {
		t.Fatalf("window = %+v", w.Events)
	}
	if tr.Flits() != 19 {
		t.Errorf("flits = %d", tr.Flits())
	}
	tr.Sort()
	if tr.Duration() != 21 {
		t.Errorf("duration = %d", tr.Duration())
	}
}

// TestReplayReproducesInjections: replaying a recorded window into an
// identical network creates the same packets (count and flit volume).
func TestReplayReproducesInjections(t *testing.T) {
	src := network.New(network.Config{Kind: network.Backpressured, Seed: 5})
	tr := Record(src)
	sys := cmp.NewSystem(src, cmp.Ocean(), src.RandStream)
	if _, ok := sys.Measure(100, 600, 3_000_000); !ok {
		t.Fatal("timeout")
	}
	StopRecording(src)
	tr.Sort()

	dst := network.New(network.Config{Kind: network.Backpressured, Seed: 6})
	rp := NewReplayer(dst, tr)
	dst.AddTicker(rp)
	limit := tr.Duration() + 200_000
	if !dst.RunUntil(func() bool { return rp.Done() && dst.Drained() }, limit) {
		t.Fatalf("replay did not complete: %d/%d events", rp.next, len(tr.Events))
	}
	if got := dst.CreatedPackets(); got != uint64(len(tr.Events)) {
		t.Fatalf("replayed %d packets, trace has %d", got, len(tr.Events))
	}
	if dst.DeliveredPackets() != dst.CreatedPackets() {
		t.Fatalf("replay lost packets: %d/%d", dst.DeliveredPackets(), dst.CreatedPackets())
	}
}

// TestTraceDrivenMissesFeedback demonstrates the paper's methodology
// argument: a trace recorded on the backpressured network, replayed
// open-loop into a backpressureless network, over-drives it — source
// queues grow far beyond anything the closed loop (whose MSHRs throttle
// issue) would produce.
func TestTraceDrivenMissesFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Record a high-load window on the fast (backpressured) network.
	src := network.New(network.Config{Kind: network.Backpressured, Seed: 7})
	tr := Record(src)
	sys := cmp.NewSystem(src, cmp.Apache(), src.RandStream)
	if _, ok := sys.Measure(500, 4000, 10_000_000); !ok {
		t.Fatal("timeout")
	}
	StopRecording(src)
	tr.Sort()
	win := tr.Window(tr.Events[0].At, tr.Events[0].At+8000)

	// Replay into a backpressureless network and watch the backlog.
	dst := network.New(network.Config{Kind: network.Bless, Seed: 8})
	rp := NewReplayer(dst, win)
	dst.AddTicker(rp)
	dst.RunUntil(rp.Done, 100_000)
	backlog := dst.CreatedPackets() - dst.DeliveredPackets()

	// The closed loop on the same network never accumulates anything
	// comparable: MSHRs bound outstanding misses.
	closed := network.New(network.Config{Kind: network.Bless, Seed: 8})
	csys := cmp.NewSystem(closed, cmp.Apache(), closed.RandStream)
	if _, ok := csys.Measure(500, 2000, 10_000_000); !ok {
		t.Fatal("timeout")
	}
	closedBacklog := closed.CreatedPackets() - closed.DeliveredPackets()

	if backlog < 2*closedBacklog {
		t.Errorf("trace replay backlog %d not clearly above closed-loop backlog %d — feedback effect not visible",
			backlog, closedBacklog)
	}
	t.Logf("open-loop replay backlog %d vs closed-loop %d", backlog, closedBacklog)
}
