package obs

import (
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"

	"afcnet/internal/network"
)

// SampleInterval is the counter-sampler period in cycles. Sampling is a
// handful of atomic adds per network, so the interval only bounds how
// stale the expvar counters can be, not simulation cost.
const SampleInterval = 1024

// Metrics aggregates simulator counters across every sampled network —
// all cells of a sweep feed one Metrics — for the -debug-addr expvar
// endpoint. Counters only grow; consumers diff successive scrapes.
type Metrics struct {
	CellsDone        atomic.Uint64
	InjectedFlits    atomic.Uint64
	DeliveredFlits   atomic.Uint64
	DeliveredPackets atomic.Uint64
	Deflections      atomic.Uint64
	BlessCycles      atomic.Uint64
	SwitchingCycles  atomic.Uint64
	BufferedCycles   atomic.Uint64

	// barrier is the sharded tick's wall-time gauge (last flushed
	// summary, not a cumulative counter — averages don't accumulate).
	bmu     sync.Mutex
	barrier *barrierGauge
}

// barrierGauge mirrors the manifest's BarrierRecord for the expvar
// endpoint (obs keeps the two decoupled so Metrics stays marshal-free).
type barrierGauge struct {
	shards         int
	inline         bool
	cycles         uint64
	phaseAAvgNs    float64
	phaseBAvgNs    float64
	shardBusyAvgNs []float64
}

// SetBarrier replaces the sharded-tick timing gauge shown under
// "barrier" in Snapshot. Gauge semantics: per-cycle averages are set,
// not accumulated.
func (m *Metrics) SetBarrier(shards int, inline bool, cycles uint64, phaseAAvgNs, phaseBAvgNs float64, shardBusyAvgNs []float64) {
	m.bmu.Lock()
	m.barrier = &barrierGauge{
		shards: shards, inline: inline, cycles: cycles,
		phaseAAvgNs: phaseAAvgNs, phaseBAvgNs: phaseBAvgNs,
		shardBusyAvgNs: append([]float64(nil), shardBusyAvgNs...),
	}
	m.bmu.Unlock()
}

// Snapshot returns the current counters as a JSON-friendly map, plus
// the derived backpressured-mode duty cycle and, when a sharded run
// flushed one, the barrier timing gauge.
func (m *Metrics) Snapshot() map[string]any {
	bless := m.BlessCycles.Load()
	switching := m.SwitchingCycles.Load()
	buffered := m.BufferedCycles.Load()
	duty := 0.0
	if total := bless + switching + buffered; total > 0 {
		duty = float64(buffered) / float64(total)
	}
	s := map[string]any{
		"cellsDone":         m.CellsDone.Load(),
		"injectedFlits":     m.InjectedFlits.Load(),
		"deliveredFlits":    m.DeliveredFlits.Load(),
		"deliveredPackets":  m.DeliveredPackets.Load(),
		"deflections":       m.Deflections.Load(),
		"blessCycles":       bless,
		"switchingCycles":   switching,
		"bufferedCycles":    buffered,
		"bufferedDutyCycle": duty,
	}
	m.bmu.Lock()
	if b := m.barrier; b != nil {
		s["barrier"] = map[string]any{
			"shards":         b.shards,
			"inlineDispatch": b.inline,
			"cycles":         b.cycles,
			"phaseAAvgNs":    b.phaseAAvgNs,
			"phaseBAvgNs":    b.phaseBAvgNs,
			"shardBusyAvgNs": append([]float64(nil), b.shardBusyAvgNs...),
		}
	}
	m.bmu.Unlock()
	return s
}

// add accumulates a counter delta.
func (m *Metrics) add(d network.Counters) {
	m.InjectedFlits.Add(d.InjectedFlits)
	m.DeliveredFlits.Add(d.DeliveredFlits)
	m.DeliveredPackets.Add(d.DeliveredPackets)
	m.Deflections.Add(d.Deflections)
	m.BlessCycles.Add(d.Mode.BlessCycles)
	m.SwitchingCycles.Add(d.Mode.SwitchingCycles)
	m.BufferedCycles.Add(d.Mode.BufferedCycles)
}

// sampler is a read-only end-of-cycle ticker: every SampleInterval
// cycles it snapshots the network's counters and feeds the delta since
// its previous snapshot into the shared Metrics. Per-network last-seen
// state makes deltas correct with many concurrent cells.
type sampler struct {
	net  *network.Network
	m    *Metrics
	last network.Counters
}

func newSampler(net *network.Network, m *Metrics) *sampler {
	return &sampler{net: net, m: m}
}

// Tick implements sim.Ticker.
func (s *sampler) Tick(now uint64) {
	if now%SampleInterval != 0 {
		return
	}
	cur := s.net.Counters()
	s.m.add(network.Counters{
		InjectedFlits:    counterDelta(cur.InjectedFlits, s.last.InjectedFlits),
		DeliveredFlits:   counterDelta(cur.DeliveredFlits, s.last.DeliveredFlits),
		DeliveredPackets: counterDelta(cur.DeliveredPackets, s.last.DeliveredPackets),
		Deflections:      counterDelta(cur.Deflections, s.last.Deflections),
		Mode: network.ModeStats{
			BlessCycles:     counterDelta(cur.Mode.BlessCycles, s.last.Mode.BlessCycles),
			SwitchingCycles: counterDelta(cur.Mode.SwitchingCycles, s.last.Mode.SwitchingCycles),
			BufferedCycles:  counterDelta(cur.Mode.BufferedCycles, s.last.Mode.BufferedCycles),
		},
	})
	s.last = cur
}

// counterDelta diffs two observations of a counter, treating a shrink
// as a reset (ResetStats zeroes the NI-backed counters at measurement
// boundaries) so the delta never wraps.
func counterDelta(cur, last uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// debugMetrics is what the expvar closure publishes. expvar.Publish is
// process-global and rejects duplicate names, so the closure registers
// once and indirects through this pointer.
var (
	debugMetrics atomic.Pointer[Metrics]
	publishOnce  sync.Once
)

// ServeDebug serves net/http/pprof under /debug/pprof/ and expvar under
// /debug/vars (m published as the "afcsim" var) on addr, in a
// background goroutine for the life of the process. It returns the
// bound address, so addr may use port 0.
func ServeDebug(addr string, m *Metrics) (string, error) {
	debugMetrics.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("afcsim", expvar.Func(func() any {
			if cur := debugMetrics.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go http.Serve(ln, mux) //nolint:errcheck // debug endpoint dies with the process
	return ln.Addr().String(), nil
}
