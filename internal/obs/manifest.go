package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Manifest is the JSON run record written by -manifest: what was run
// (command, args, kinds, seeds), on what (Go version, GOMAXPROCS,
// worker count), and how it went (per-cell wall times, errors,
// aggregate worker utilization). The schema below is the documented
// contract (see README "Observability"); fields are only added, never
// renamed.
type Manifest struct {
	Command    string   `json:"command"`
	Args       []string `json:"args"`
	GoVersion  string   `json:"goVersion"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	// Workers is the resolved worker-pool size the run was configured
	// with (a batch with fewer cells than workers uses fewer).
	Workers int       `json:"workers"`
	Kinds   []string  `json:"kinds,omitempty"`
	Seeds   []int64   `json:"seeds,omitempty"`
	Start   time.Time `json:"start"`
	// WallSeconds is observer-construction to manifest-write wall time.
	WallSeconds float64 `json:"wallSeconds"`
	// CellsTotal counts cells submitted across all batches; CellsDone
	// counts cells that executed (they differ when a failure drains a
	// batch early).
	CellsTotal int `json:"cellsTotal"`
	CellsDone  int `json:"cellsDone"`
	CellErrors int `json:"cellErrors"`
	// BusySeconds is the sum of per-cell durations; WorkerUtilization
	// is BusySeconds / (WallSeconds × Workers) — how busy the pool was.
	BusySeconds       float64 `json:"busySeconds"`
	WorkerUtilization float64 `json:"workerUtilization"`
	// Cells has one entry per executed cell, in completion order. Batch
	// numbers separate the engine's sequential runner invocations (e.g.
	// cmd/figures runs one batch per harness).
	Cells []CellRecord `json:"cells"`
	// Scenario and ScenarioResults record a -scenario run: the spec the
	// run was driven by and the per-(kind, seed) per-phase metrics. Typed
	// as any so obs stays free of a scenario-package dependency; the
	// values marshal with the scenario package's JSON schema.
	Scenario        any `json:"scenario,omitempty"`
	ScenarioResults any `json:"scenarioResults,omitempty"`
	// Barrier summarizes the sharded tick's wall-time split when the run
	// used -shards and barrier timing was collected; absent otherwise.
	Barrier *BarrierRecord `json:"barrier,omitempty"`
}

// BarrierRecord is the manifest's summary of the sharded tick's barrier
// timing, summed over every observed network of the run and averaged
// per cycle. PhaseAAvgNs is the parallel pass (router bands plus the
// barrier itself), PhaseBAvgNs the serial tail (journal replay, arena
// reconcile, drain hooks); ShardBusyAvgNs[i] is how much of a cycle
// shard i actually spent ticking, so the gap between max(ShardBusyAvgNs)
// and PhaseAAvgNs is dispatch overhead plus load imbalance.
type BarrierRecord struct {
	// Shards is the shard count of the observed networks; InlineDispatch
	// records whether they ran the single-P inline dispatch mode (one
	// goroutine, no channel handoff) or spawned workers.
	Shards         int       `json:"shards"`
	InlineDispatch bool      `json:"inlineDispatch"`
	Cycles         uint64    `json:"cycles"`
	PhaseAAvgNs    float64   `json:"phaseAAvgNs"`
	PhaseBAvgNs    float64   `json:"phaseBAvgNs"`
	ShardBusyAvgNs []float64 `json:"shardBusyAvgNs"`
}

// CellRecord is one executed cell's manifest entry. The memory fields
// are runtime.MemStats deltas between the cell's start and finish:
// process-global, so under a parallel pool they attribute concurrent
// cells' allocations to each other — best-effort telemetry for spotting
// allocation regressions, not an exact per-cell accounting (run with
// one worker for exact numbers).
type CellRecord struct {
	Batch   int     `json:"batch"`
	Index   int     `json:"index"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
	// TotalAllocBytes is the delta of cumulative heap bytes allocated.
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// NumGC is the number of garbage-collection cycles during the cell.
	NumGC uint32 `json:"numGC"`
	// PauseTotalNs is the GC stop-the-world pause time during the cell.
	PauseTotalNs uint64 `json:"pauseTotalNs"`
}

// finalize stamps the wall-clock aggregates. Idempotent: it recomputes
// from scratch each call.
func (m *Manifest) finalize(wall time.Duration) {
	m.WallSeconds = wall.Seconds()
	m.WorkerUtilization = 0
	if m.WallSeconds > 0 && m.Workers > 0 {
		m.WorkerUtilization = m.BusySeconds / (m.WallSeconds * float64(m.Workers))
	}
}

// write emits the manifest as indented JSON.
func (m *Manifest) write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
