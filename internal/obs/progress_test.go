package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// lastLine returns the most recent '\r'-rewritten progress frame.
func lastLine(buf *bytes.Buffer) string {
	frames := strings.Split(buf.String(), "\r")
	return strings.TrimRight(frames[len(frames)-1], " \n")
}

func TestProgressLine(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf)
	clock := time.Unix(1000, 0)
	p.now = func() time.Time { return clock }

	p.addBatch(4, 2)
	if got := lastLine(&buf); got != "0/4 cells  2w" {
		t.Errorf("initial line = %q, want %q", got, "0/4 cells  2w")
	}

	p.start(0)
	p.start(1)
	clock = clock.Add(2 * time.Second)
	p.finish(0, nil, 2*time.Second)
	got := lastLine(&buf)
	// mean 2s over 3 remaining cells on 2 workers → eta 3s; cell #1 has
	// been in flight for the full 2s.
	for _, want := range []string{"1/4 cells", "2w", "mean 2s", "eta 3s", "slowest #1 2s"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q does not contain %q", got, want)
		}
	}

	p.finish(1, errors.New("boom"), time.Second)
	got = lastLine(&buf)
	if !strings.Contains(got, "2/4 cells (1 failed)") {
		t.Errorf("line %q does not report the failure", got)
	}
	if strings.Contains(got, "slowest") {
		t.Errorf("line %q mentions an in-flight cell after all finished", got)
	}

	p.close()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("close did not terminate the progress line with a newline")
	}
}

// TestProgressPadsShrinkingLines: a shorter frame must blank out the
// remnants of a longer previous frame.
func TestProgressPadsShrinkingLines(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(&buf)
	clock := time.Unix(1000, 0)
	p.now = func() time.Time { return clock }

	p.addBatch(2, 1)
	p.start(0)
	clock = clock.Add(90 * time.Second)
	p.finish(0, nil, 90*time.Second) // long frame: mean/eta/…
	long := lastLine(&buf)
	p.finish(1, nil, time.Second) // shorter frame
	frames := strings.Split(buf.String(), "\r")
	last := frames[len(frames)-1]
	if len(last) < len(long) {
		t.Errorf("frame %q is not padded to cover previous %q", last, long)
	}
}

func TestFmtSeconds(t *testing.T) {
	for _, tc := range []struct {
		s    float64
		want string
	}{
		{1.23, "1.2s"},
		{45, "45s"},
		{200, "3m20s"},
	} {
		if got := fmtSeconds(tc.s); got != tc.want {
			t.Errorf("fmtSeconds(%g) = %q, want %q", tc.s, got, tc.want)
		}
	}
}
