package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileHelpersNoop(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil {
		t.Fatalf("StartCPUProfile(\"\"): %v", err)
	}
	stop() // must be callable
	if err := WriteHeapProfile(""); err != nil {
		t.Fatalf("WriteHeapProfile(\"\"): %v", err)
	}
}

func TestProfileHelpersWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// A second profile while one is running must fail cleanly.
	if _, err := StartCPUProfile(filepath.Join(dir, "dup.pprof")); err == nil {
		t.Error("second concurrent StartCPUProfile did not error")
	}
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}

	if _, err := StartCPUProfile(filepath.Join(dir, "no", "such", "dir.pprof")); err == nil {
		t.Error("StartCPUProfile into a missing directory did not error")
	}
	if err := WriteHeapProfile(filepath.Join(dir, "no", "such", "dir.pprof")); err == nil {
		t.Error("WriteHeapProfile into a missing directory did not error")
	}
}
