package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"afcnet/internal/network"
	"afcnet/internal/traffic"
)

func TestCounterDelta(t *testing.T) {
	for _, tc := range []struct {
		cur, last, want uint64
	}{
		{5, 3, 2},
		{3, 3, 0},
		{2, 5, 2}, // shrink = reset (ResetStats), not a wrap
		{0, 0, 0},
	} {
		if got := counterDelta(tc.cur, tc.last); got != tc.want {
			t.Errorf("counterDelta(%d, %d) = %d, want %d", tc.cur, tc.last, got, tc.want)
		}
	}
}

// TestSamplerAccumulates drives real traffic through an AFC network with
// the sampler attached and checks the shared Metrics converge on the
// network's own counters once traffic stops.
func TestSamplerAccumulates(t *testing.T) {
	m := &Metrics{}
	ob := New(Config{Metrics: m})
	if ob.Metrics() != m {
		t.Fatal("Metrics() did not return the configured sink")
	}
	net := network.New(network.Config{Kind: network.AFC, Seed: 7})
	ob.Sample(net)
	gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.3}, net.RandStream)
	net.AddTicker(gen)
	net.Run(4 * SampleInterval)
	gen.Stop()
	if !net.RunUntil(net.Drained, 300_000) {
		t.Fatal("network did not drain")
	}
	// Cross one more sample boundary so the final delta lands. The
	// flit/packet counters are stable after the drain, so the sampler's
	// running totals must now equal the network's.
	net.Run(SampleInterval)
	cur := net.Counters()
	if got := m.InjectedFlits.Load(); got != cur.InjectedFlits || got == 0 {
		t.Errorf("sampled injected flits = %d, want %d (> 0)", got, cur.InjectedFlits)
	}
	if got := m.DeliveredFlits.Load(); got != cur.DeliveredFlits {
		t.Errorf("sampled delivered flits = %d, want %d", got, cur.DeliveredFlits)
	}
	if got := m.DeliveredPackets.Load(); got != cur.DeliveredPackets {
		t.Errorf("sampled delivered packets = %d, want %d", got, cur.DeliveredPackets)
	}
	if got := m.Deflections.Load(); got != cur.Deflections {
		t.Errorf("sampled deflections = %d, want %d", got, cur.Deflections)
	}
	// Mode cycles keep accruing after the last sample, so only require
	// that the AFC network reported some.
	if m.BlessCycles.Load()+m.SwitchingCycles.Load()+m.BufferedCycles.Load() == 0 {
		t.Error("sampler recorded no mode cycles on an AFC network")
	}
}

// TestSamplerSurvivesReset: ResetStats shrinks the NI-backed counters
// mid-run; the deltas must not wrap into huge values.
func TestSamplerSurvivesReset(t *testing.T) {
	m := &Metrics{}
	ob := New(Config{Metrics: m})
	net := network.New(network.Config{Kind: network.Bless, Seed: 3})
	ob.Sample(net)
	gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.2}, net.RandStream)
	net.AddTicker(gen)
	net.Run(2 * SampleInterval)
	net.ResetStats()
	net.Run(2 * SampleInterval)
	gen.Stop()
	net.RunUntil(net.Drained, 300_000)
	net.Run(SampleInterval)
	// ~0.2 flits/node/cycle over ~5k cycles on 9 nodes is well under a
	// million flits; a wrapped delta would be ~2^64.
	if got := m.InjectedFlits.Load(); got == 0 || got > 10_000_000 {
		t.Errorf("injected flits = %d, want small and positive (delta wrapped?)", got)
	}
}

func TestSnapshotDutyCycle(t *testing.T) {
	m := &Metrics{}
	if duty := m.Snapshot()["bufferedDutyCycle"].(float64); duty != 0 {
		t.Errorf("empty duty cycle = %g, want 0", duty)
	}
	m.BlessCycles.Store(75)
	m.BufferedCycles.Store(25)
	s := m.Snapshot()
	if duty := s["bufferedDutyCycle"].(float64); duty != 0.25 {
		t.Errorf("duty cycle = %g, want 0.25", duty)
	}
	if s["blessCycles"].(uint64) != 75 || s["bufferedCycles"].(uint64) != 25 {
		t.Errorf("snapshot cycles = %v/%v, want 75/25", s["blessCycles"], s["bufferedCycles"])
	}
}

// TestServeDebug starts the debug endpoint twice (expvar.Publish is
// process-global, so the second call must swap the sink, not panic) and
// scrapes /debug/vars over HTTP each time.
func TestServeDebug(t *testing.T) {
	scrape := func(addr string) map[string]any {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
		if err != nil {
			t.Fatalf("GET /debug/vars: %v", err)
		}
		defer resp.Body.Close()
		var vars map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
			t.Fatalf("decode /debug/vars: %v", err)
		}
		snap, ok := vars["afcsim"].(map[string]any)
		if !ok {
			t.Fatalf("/debug/vars has no afcsim object: %v", vars["afcsim"])
		}
		return snap
	}

	m1 := &Metrics{}
	m1.CellsDone.Store(3)
	addr1, err := ServeDebug("127.0.0.1:0", m1)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	if got := scrape(addr1)["cellsDone"].(float64); got != 3 {
		t.Errorf("cellsDone = %g, want 3", got)
	}

	m2 := &Metrics{}
	m2.CellsDone.Store(9)
	addr2, err := ServeDebug("127.0.0.1:0", m2)
	if err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
	if got := scrape(addr2)["cellsDone"].(float64); got != 9 {
		t.Errorf("cellsDone after swap = %g, want 9", got)
	}
}
