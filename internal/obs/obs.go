// Package obs is the simulator's observability layer: run manifests
// (a JSON record of what a sweep ran and how long every cell took),
// live progress reporting for long sweeps, counter export for an
// expvar/pprof debug endpoint, and CPU/heap profiling helpers.
//
// Everything here is off by default and purely observational — the same
// contract as internal/check: an observed run produces bit-for-bit the
// same results as an unobserved one, it just also tells you what
// happened. The Observer plugs into the experiment engine through the
// runner.Options callbacks (OnBatch/OnCellStart/OnCell) and into each
// cell's network as a read-only end-of-cycle ticker.
package obs

import (
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"afcnet/internal/network"
	"afcnet/internal/runner"
)

// ProgressEnvVar enables -progress in every command that consults
// ProgressFromEnv (cmd/afcsim, cmd/figures, cmd/sweep).
const ProgressEnvVar = "AFCSIM_PROGRESS"

// ProgressFromEnv reports whether AFCSIM_PROGRESS requests live
// progress. Any value other than empty, "0", "false", "no" or "off"
// enables it (the same semantics as AFCSIM_CHECK).
func ProgressFromEnv() bool {
	switch os.Getenv(ProgressEnvVar) {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}

// Config selects which observers New enables and supplies the run
// metadata recorded in the manifest.
type Config struct {
	// Command and Args identify the invocation in the manifest
	// (typically the command name and os.Args[1:]).
	Command string
	Args    []string
	// Workers is the configured pool parallelism; <= 0 records
	// GOMAXPROCS, matching runner.Options semantics.
	Workers int
	// Kinds and Seeds are optional run metadata for the manifest.
	Kinds []string
	Seeds []int64

	// Manifest enables the run-manifest recorder (WriteManifest).
	Manifest bool
	// Progress enables the live progress line on ProgressTo.
	Progress bool
	// ProgressTo is the progress destination; nil means os.Stderr.
	ProgressTo io.Writer
	// Metrics, if non-nil, receives counter samples from every network
	// passed to Sample (the expvar debug endpoint reads it).
	Metrics *Metrics
}

// Observer bundles the enabled observers behind the runner callbacks.
// A nil *Observer is valid and does nothing, so call sites can thread
// one unconditionally.
type Observer struct {
	mu       sync.Mutex
	start    time.Time
	batch    int
	manifest *Manifest
	progress *progress
	metrics  *Metrics

	// memAt holds each in-flight cell's MemStats snapshot, taken at
	// OnCellStart and diffed at OnCell (see CellRecord for the caveats).
	memAt map[int]memSnap

	// barrierNets are the sharded networks ObserveBarrier enabled timing
	// on. Their tallies are cumulative for the network's lifetime
	// (Network.Reset keeps them), so the summary is folded once, at
	// Finish/WriteManifest, by reading each network's current tally.
	barrierNets []*network.Network
}

// memSnap is the slice of runtime.MemStats a cell's manifest record
// diffs.
type memSnap struct {
	totalAlloc   uint64
	numGC        uint32
	pauseTotalNs uint64
}

func readMemSnap() memSnap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSnap{totalAlloc: ms.TotalAlloc, numGC: ms.NumGC, pauseTotalNs: ms.PauseTotalNs}
}

// New returns an Observer with the observers selected by cfg enabled.
func New(cfg Config) *Observer {
	o := &Observer{start: time.Now(), metrics: cfg.Metrics}
	if cfg.Manifest {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		o.manifest = &Manifest{
			Command:    cfg.Command,
			Args:       cfg.Args,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Workers:    workers,
			Kinds:      cfg.Kinds,
			Seeds:      cfg.Seeds,
			Start:      o.start,
		}
	}
	if cfg.Progress {
		w := cfg.ProgressTo
		if w == nil {
			w = os.Stderr
		}
		o.progress = newProgress(w)
	}
	return o
}

// RecordScenario attaches a scenario spec and its per-phase results to
// the manifest (no-op without one). The values are stored as-is and
// marshal when the manifest is written.
func (o *Observer) RecordScenario(spec, results any) {
	if o == nil || o.manifest == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.manifest.Scenario = spec
	o.manifest.ScenarioResults = results
}

// Hook installs the observer's callbacks on a runner.Options. Nil-safe;
// existing callbacks are overwritten (the engine builds fresh Options
// per batch).
func (o *Observer) Hook(ro *runner.Options) {
	if o == nil {
		return
	}
	ro.OnBatch = o.onBatch
	ro.OnCellStart = o.onCellStart
	ro.OnCell = o.onCell
}

// Sample attaches a read-only counter sampler for net when metrics are
// enabled. Nil-safe. The sampler is an ordinary end-of-cycle ticker
// that only reads network stats, so results are unchanged.
func (o *Observer) Sample(net *network.Network) {
	if o == nil || o.metrics == nil {
		return
	}
	net.AddTicker(newSampler(net, o.metrics))
}

// ObserveBarrier enables barrier wall-time collection on a sharded
// network and registers it for the end-of-run summary (manifest
// "barrier" record and the expvar gauge). Nil-safe; a no-op on serial
// networks, when neither manifest nor metrics is enabled, and on a
// network already registered (sweep workers re-acquire the same
// network every cell). Timing costs a few clock reads per cycle and
// never changes results — same contract as the counter sampler.
func (o *Observer) ObserveBarrier(net *network.Network) {
	if o == nil || net == nil || net.ShardCount() <= 1 {
		return
	}
	if o.manifest == nil && o.metrics == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, n := range o.barrierNets {
		if n == net {
			return
		}
	}
	net.SetBarrierTiming(true)
	o.barrierNets = append(o.barrierNets, net)
}

// flushBarrier folds the registered networks' cumulative tallies into
// the manifest record and the metrics gauge. Idempotent — it recomputes
// the summary from the live tallies each call, and the tallies are
// atomic, so flushing mid-sweep while other workers tick is safe.
// Caller holds o.mu.
func (o *Observer) flushBarrier() {
	if len(o.barrierNets) == 0 {
		return
	}
	shards := o.barrierNets[0].ShardCount()
	inline := o.barrierNets[0].ShardDispatchInline()
	var cycles, phaseA, phaseB uint64
	var busy []uint64
	for _, n := range o.barrierNets {
		t := n.BarrierTally()
		cycles += t.Cycles
		phaseA += t.PhaseANs
		phaseB += t.PhaseBNs
		for len(busy) < len(t.ShardBusyNs) {
			busy = append(busy, 0)
		}
		for i, ns := range t.ShardBusyNs {
			busy[i] += ns
		}
	}
	if cycles == 0 {
		return
	}
	rec := &BarrierRecord{
		Shards:         shards,
		InlineDispatch: inline,
		Cycles:         cycles,
		PhaseAAvgNs:    float64(phaseA) / float64(cycles),
		PhaseBAvgNs:    float64(phaseB) / float64(cycles),
	}
	for _, ns := range busy {
		rec.ShardBusyAvgNs = append(rec.ShardBusyAvgNs, float64(ns)/float64(cycles))
	}
	if o.manifest != nil {
		o.manifest.Barrier = rec
	}
	if o.metrics != nil {
		o.metrics.SetBarrier(rec.Shards, rec.InlineDispatch, rec.Cycles,
			rec.PhaseAAvgNs, rec.PhaseBAvgNs, rec.ShardBusyAvgNs)
	}
}

// Metrics returns the metrics sink (nil when not enabled).
func (o *Observer) Metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

func (o *Observer) onBatch(cells, workers int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.batch++
	if o.manifest != nil {
		o.manifest.CellsTotal += cells
	}
	if o.progress != nil {
		o.progress.addBatch(cells, workers)
	}
}

func (o *Observer) onCellStart(index int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.manifest != nil {
		if o.memAt == nil {
			o.memAt = make(map[int]memSnap)
		}
		o.memAt[index] = readMemSnap()
	}
	if o.progress != nil {
		o.progress.start(index)
	}
}

func (o *Observer) onCell(index int, err error, elapsed time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.manifest != nil {
		rec := CellRecord{Batch: o.batch, Index: index, Seconds: elapsed.Seconds()}
		if at, ok := o.memAt[index]; ok {
			now := readMemSnap()
			rec.TotalAllocBytes = now.totalAlloc - at.totalAlloc
			rec.NumGC = now.numGC - at.numGC
			rec.PauseTotalNs = now.pauseTotalNs - at.pauseTotalNs
			delete(o.memAt, index)
		}
		if err != nil {
			rec.Error = err.Error()
			o.manifest.CellErrors++
		}
		o.manifest.Cells = append(o.manifest.Cells, rec)
		o.manifest.CellsDone++
		o.manifest.BusySeconds += elapsed.Seconds()
	}
	if o.progress != nil {
		o.progress.finish(index, err, elapsed)
	}
	if o.metrics != nil {
		o.metrics.CellsDone.Add(1)
	}
	// Refresh the barrier summary on every cell completion so the expvar
	// gauge (and a manifest written after a crash) is live during a long
	// sweep, not only after Finish. Safe while other cells tick: the
	// network tallies are atomic snapshots.
	o.flushBarrier()
}

// Finish closes the progress line (if any) and finalizes the manifest's
// wall-clock fields. Call it once, after the last batch.
func (o *Observer) Finish() {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.progress != nil {
		o.progress.close()
	}
	o.flushBarrier()
	if o.manifest != nil {
		o.manifest.finalize(time.Since(o.start))
	}
}

// WriteManifest writes the run manifest as indented JSON. It finalizes
// wall-clock fields first, so calling Finish beforehand is optional.
// Returns nil without writing when the manifest was not enabled.
func (o *Observer) WriteManifest(w io.Writer) error {
	if o == nil || o.manifest == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.flushBarrier()
	o.manifest.finalize(time.Since(o.start))
	return o.manifest.write(w)
}

// WriteManifestFile writes the manifest to path (no-op when the
// manifest was not enabled or path is empty).
func (o *Observer) WriteManifestFile(path string) error {
	if o == nil || o.manifest == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.WriteManifest(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
