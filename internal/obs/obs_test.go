package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"afcnet/internal/runner"
)

// driveTwoBatches pushes two runner batches through ob the way the
// experiment engine does: batch one is four clean cells on two workers,
// batch two is three serial cells whose last cell fails.
func driveTwoBatches(t *testing.T, ob *Observer) {
	t.Helper()
	ro := runner.Options{Parallelism: 2}
	ob.Hook(&ro)
	if err := runner.Run(4, ro, func(i int) error { return nil }); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	ro = runner.Options{Parallelism: 1}
	ob.Hook(&ro)
	boom := errors.New("boom")
	if err := runner.Run(3, ro, func(i int) error {
		if i == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("batch 2 error = %v, want %v", err, boom)
	}
}

func TestManifestRecordsEveryCell(t *testing.T) {
	ob := New(Config{
		Command:  "test",
		Args:     []string{"-x", "1"},
		Workers:  2,
		Kinds:    []string{"afc", "backpressureless"},
		Seeds:    []int64{1, 2},
		Manifest: true,
	})
	driveTwoBatches(t, ob)
	ob.Finish()

	var buf bytes.Buffer
	if err := ob.WriteManifest(&buf); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Command != "test" || len(m.Args) != 2 {
		t.Errorf("command/args = %q/%v, want test/[-x 1]", m.Command, m.Args)
	}
	if m.GoVersion != runtime.Version() {
		t.Errorf("goVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.Workers != 2 {
		t.Errorf("workers = %d, want 2", m.Workers)
	}
	if m.CellsTotal != 7 || m.CellsDone != 7 || m.CellErrors != 1 {
		t.Errorf("cellsTotal/done/errors = %d/%d/%d, want 7/7/1",
			m.CellsTotal, m.CellsDone, m.CellErrors)
	}
	if len(m.Cells) != 7 {
		t.Fatalf("len(cells) = %d, want 7 (one record per executed cell)", len(m.Cells))
	}
	perBatch := map[int]int{}
	for _, c := range m.Cells {
		perBatch[c.Batch]++
		if c.Seconds <= 0 {
			t.Errorf("cell %d/%d has non-positive duration %g", c.Batch, c.Index, c.Seconds)
		}
	}
	if perBatch[1] != 4 || perBatch[2] != 3 {
		t.Errorf("cells per batch = %v, want map[1:4 2:3]", perBatch)
	}
	var failed *CellRecord
	for i := range m.Cells {
		if m.Cells[i].Error != "" {
			failed = &m.Cells[i]
		}
	}
	if failed == nil || failed.Batch != 2 || failed.Index != 2 || failed.Error != "boom" {
		t.Errorf("failed cell record = %+v, want batch 2 index 2 error boom", failed)
	}
	if m.WallSeconds <= 0 || m.BusySeconds <= 0 {
		t.Errorf("wall/busy seconds = %g/%g, want both > 0", m.WallSeconds, m.BusySeconds)
	}
	if m.WorkerUtilization <= 0 || m.WorkerUtilization > 1 {
		t.Errorf("workerUtilization = %g, want in (0, 1]", m.WorkerUtilization)
	}
}

// TestManifestSchemaKeys pins the documented JSON schema: every key the
// README lists must be present under exactly that name.
func TestManifestSchemaKeys(t *testing.T) {
	ob := New(Config{
		Command: "test", Workers: 1,
		Kinds: []string{"afc"}, Seeds: []int64{1},
		Manifest: true,
	})
	ro := runner.Options{Parallelism: 1}
	ob.Hook(&ro)
	if err := runner.Run(1, ro, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ob.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"command", "args", "goVersion", "gomaxprocs", "workers",
		"kinds", "seeds", "start", "wallSeconds",
		"cellsTotal", "cellsDone", "cellErrors",
		"busySeconds", "workerUtilization", "cells",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("manifest JSON is missing documented key %q", key)
		}
	}
	cells, ok := raw["cells"].([]any)
	if !ok || len(cells) != 1 {
		t.Fatalf("cells = %v, want one record", raw["cells"])
	}
	rec := cells[0].(map[string]any)
	for _, key := range []string{"batch", "index", "seconds"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("cell record is missing documented key %q", key)
		}
	}
	if _, ok := rec["error"]; ok {
		t.Error("clean cell record should omit the error key")
	}
}

func TestWriteManifestFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	ob := New(Config{Command: "test", Workers: 1, Manifest: true})
	ro := runner.Options{Parallelism: 1}
	ob.Hook(&ro)
	if err := runner.Run(2, ro, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ob.Finish()
	if err := ob.WriteManifestFile(path); err != nil {
		t.Fatalf("WriteManifestFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest file is not valid JSON: %v", err)
	}
	if m.CellsDone != 2 {
		t.Errorf("cellsDone = %d, want 2", m.CellsDone)
	}
}

// TestObserverNilAndDisabled: a nil Observer and an all-disabled one are
// both inert, so call sites can thread them unconditionally.
func TestObserverNilAndDisabled(t *testing.T) {
	var nilOb *Observer
	nilOb.Hook(&runner.Options{})
	nilOb.Sample(nil)
	nilOb.Finish()
	if m := nilOb.Metrics(); m != nil {
		t.Errorf("nil observer Metrics() = %v, want nil", m)
	}
	if err := nilOb.WriteManifest(io.Discard); err != nil {
		t.Errorf("nil observer WriteManifest: %v", err)
	}
	if err := nilOb.WriteManifestFile("/nonexistent/dir/x.json"); err != nil {
		t.Errorf("nil observer WriteManifestFile: %v", err)
	}

	off := New(Config{})
	driveTwoBatches(t, off)
	off.Finish()
	var buf bytes.Buffer
	if err := off.WriteManifest(&buf); err != nil {
		t.Errorf("disabled WriteManifest: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled observer wrote %d bytes, want none", buf.Len())
	}
	if err := off.WriteManifestFile(filepath.Join(t.TempDir(), "x.json")); err != nil {
		t.Errorf("disabled WriteManifestFile: %v", err)
	}
}

func TestProgressFromEnv(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want bool
	}{
		{"", false}, {"0", false}, {"false", false}, {"no", false}, {"off", false},
		{"1", true}, {"true", true}, {"yes", true},
	} {
		t.Setenv(ProgressEnvVar, tc.val)
		if got := ProgressFromEnv(); got != tc.want {
			t.Errorf("ProgressFromEnv with %s=%q = %v, want %v",
				ProgressEnvVar, tc.val, got, tc.want)
		}
	}
}
