package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops it and closes the file. An empty path is a no-op
// (the returned stop function is still non-nil), so commands can call
// it unconditionally with their flag value.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC (so the
// profile reflects live memory, not garbage). An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write heap profile: %w", err)
	}
	return f.Close()
}
