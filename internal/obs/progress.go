package obs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"afcnet/internal/stats"
)

// progress renders a single live status line for a running sweep:
// cells done/total, an ETA extrapolated from a running mean of cell
// durations, and the longest-running in-flight cell. The Observer
// serializes all calls, so no locking here. Lines are rewritten in
// place with '\r' and padded to cover the previous line, which degrades
// gracefully to one line per update when the destination is a file.
type progress struct {
	w       io.Writer
	total   int
	done    int
	errs    int
	workers int
	dur     stats.Running     // completed-cell durations drive the ETA
	started map[int]time.Time // in-flight cells by index
	width   int               // widest line written so far, for clearing
	now     func() time.Time  // injectable clock for tests
}

func newProgress(w io.Writer) *progress {
	return &progress{w: w, workers: 1, started: map[int]time.Time{}, now: time.Now}
}

func (p *progress) addBatch(cells, workers int) {
	p.total += cells
	if workers > 0 {
		p.workers = workers
	}
	p.render()
}

func (p *progress) start(index int) {
	p.started[index] = p.now()
}

func (p *progress) finish(index int, err error, elapsed time.Duration) {
	delete(p.started, index)
	p.done++
	if err != nil {
		p.errs++
	}
	p.dur.Add(elapsed.Seconds())
	p.render()
}

func (p *progress) render() {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d cells", p.done, p.total)
	if p.errs > 0 {
		fmt.Fprintf(&b, " (%d failed)", p.errs)
	}
	fmt.Fprintf(&b, "  %dw", p.workers)
	if p.dur.N() > 0 {
		mean := p.dur.Mean()
		fmt.Fprintf(&b, "  mean %s", fmtSeconds(mean))
		if remaining := p.total - p.done; remaining > 0 {
			fmt.Fprintf(&b, "  eta %s", fmtSeconds(mean*float64(remaining)/float64(p.workers)))
		}
	}
	if idx, since, ok := p.slowest(); ok {
		fmt.Fprintf(&b, "  slowest #%d %s", idx, fmtSeconds(since.Seconds()))
	}
	line := b.String()
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, strings.Repeat(" ", pad))
}

// slowest returns the in-flight cell that has been running longest.
func (p *progress) slowest() (index int, running time.Duration, ok bool) {
	var oldest time.Time
	for i, at := range p.started {
		if !ok || at.Before(oldest) || (at.Equal(oldest) && i < index) {
			index, oldest, ok = i, at, true
		}
	}
	if !ok {
		return 0, 0, false
	}
	return index, p.now().Sub(oldest), true
}

// close terminates the in-place line so subsequent output starts fresh.
func (p *progress) close() {
	if p.width > 0 || p.done > 0 {
		fmt.Fprintln(p.w)
	}
}

// fmtSeconds renders a duration in seconds compactly (1.2s, 45s, 3m20s).
func fmtSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < 10*time.Second:
		return d.Round(100 * time.Millisecond).String()
	case d < time.Minute:
		return d.Round(time.Second).String()
	default:
		return d.Round(time.Second).String()
	}
}
