package config_test

import (
	"fmt"

	"afcnet/internal/config"
)

func ExampleDefault() {
	s := config.Default()
	fmt.Printf("mesh %dx%d, link latency %d\n", s.Mesh.Width, s.Mesh.Height, s.LinkLatency)
	fmt.Printf("baseline buffers/port: %d flits\n", s.Baseline.BufferSlotsPerPort())
	fmt.Printf("AFC buffers/port: %d flits (lazy VC allocation)\n", s.AFC.BufferSlotsPerPort())
	// Output:
	// mesh 3x3, link latency 2
	// baseline buffers/port: 64 flits
	// AFC buffers/port: 32 flits (lazy VC allocation)
}
