package config

import (
	"testing"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

func TestDefaultMatchesPaper(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Table II: 3x3 mesh, 2-cycle links.
	if s.Mesh.Width != 3 || s.Mesh.Height != 3 {
		t.Errorf("mesh = %dx%d, want 3x3", s.Mesh.Width, s.Mesh.Height)
	}
	if s.LinkLatency != 2 {
		t.Errorf("link latency = %d, want 2", s.LinkLatency)
	}
	// Baseline: 2+2+4 VCs x 8 flits = 64 flits/port.
	if s.Baseline.VCsPerVN != [flit.NumVNs]int{2, 2, 4} || s.Baseline.BufDepth != 8 {
		t.Errorf("baseline = %+v", s.Baseline)
	}
	if s.Baseline.BufferSlotsPerPort() != 64 {
		t.Errorf("baseline slots/port = %d, want 64", s.Baseline.BufferSlotsPerPort())
	}
	// AFC: 8+8+16 single-flit VCs = 32 flits/port — half the baseline
	// (the lazy-VCA buffer reduction).
	if s.AFC.VCsPerVN != [flit.NumVNs]int{8, 8, 16} {
		t.Errorf("AFC VCs = %v", s.AFC.VCsPerVN)
	}
	if s.AFC.BufferSlotsPerPort() != 32 {
		t.Errorf("AFC slots/port = %d, want 32", s.AFC.BufferSlotsPerPort())
	}
	if 2*s.AFC.BufferSlotsPerPort() != s.Baseline.BufferSlotsPerPort() {
		t.Error("AFC buffering is not half the baseline")
	}
	// Section IV thresholds: 1.8/1.2 corner, 2.1/1.3 edge, 2.2/1.7 center.
	want := map[topology.Position]Thresholds{
		topology.Corner: {1.8, 1.2},
		topology.Edge:   {2.1, 1.3},
		topology.Center: {2.2, 1.7},
	}
	for pos, th := range want {
		if got := s.AFC.ThresholdsByPosition[pos]; got != th {
			t.Errorf("%s thresholds = %+v, want %+v", pos, got, th)
		}
	}
	if s.AFC.EWMAWeight != 0.99 {
		t.Errorf("EWMA weight = %g, want 0.99", s.AFC.EWMAWeight)
	}
	// X = 2L.
	if s.AFC.GossipFreeSlots != 2*s.LinkLatency {
		t.Errorf("gossip watermark = %d, want %d", s.AFC.GossipFreeSlots, 2*s.LinkLatency)
	}
}

func TestDefaultWithMesh(t *testing.T) {
	s := DefaultWithMesh(topology.NewMesh(8, 8))
	if err := s.Validate(); err != nil {
		t.Fatalf("8x8 config invalid: %v", err)
	}
	if s.Mesh.Nodes() != 64 {
		t.Errorf("nodes = %d", s.Mesh.Nodes())
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"zero link latency", func(s *System) { s.LinkLatency = 0 }},
		{"zero eject width", func(s *System) { s.EjectWidth = 0 }},
		{"no baseline VCs", func(s *System) { s.Baseline.VCsPerVN[0] = 0 }},
		{"zero buffer depth", func(s *System) { s.Baseline.BufDepth = 0 }},
		{"AFC VN below 2L", func(s *System) { s.AFC.VCsPerVN[0] = 1 }},
		{"gossip watermark below 2L", func(s *System) { s.AFC.GossipFreeSlots = 1 }},
		{"bad EWMA weight", func(s *System) { s.AFC.EWMAWeight = 1 }},
		{"inverted thresholds", func(s *System) {
			s.AFC.ThresholdsByPosition[topology.Center] = Thresholds{High: 1, Low: 2}
		}},
		{"missing thresholds", func(s *System) {
			delete(s.AFC.ThresholdsByPosition, topology.Edge)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Default()
			// Deep-copy the map so mutations do not leak across cases.
			th := map[topology.Position]Thresholds{}
			for k, v := range s.AFC.ThresholdsByPosition {
				th[k] = v
			}
			s.AFC.ThresholdsByPosition = th
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}
