// Package config holds the simulated-machine configuration from Table II
// of the paper and the AFC parameter set from Section IV, as reusable
// presets.
package config

import (
	"fmt"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

// Thresholds is a hysteresis pair of local contention thresholds in
// flits/cycle of smoothed traffic intensity: the forward mode-switch
// (backpressureless -> backpressured) triggers above High, the reverse
// switch below Low, and the mode is held in between.
type Thresholds struct {
	High float64
	Low  float64
}

// AFC collects the AFC router parameters (Section IV, "AFC Parameters").
type AFC struct {
	// VCsPerVN is the number of single-flit VCs per virtual network
	// (8 VCs for each control network, 16 for the data network — half the
	// baseline's total buffering, enabled by lazy VC allocation).
	VCsPerVN [flit.NumVNs]int
	// ThresholdsByPosition maps router position to its contention
	// thresholds; routers at edges and corners have fewer ports and
	// scaled-down thresholds.
	ThresholdsByPosition map[topology.Position]Thresholds
	// EWMAWeight is the traffic-intensity smoothing weight (0.99).
	EWMAWeight float64
	// GossipFreeSlots is X, the downstream free-buffer watermark below
	// which a backpressureless AFC router is gossip-switched to
	// backpressured mode. Must be at least 2L; the paper uses 2L.
	GossipFreeSlots int
	// Policy-independent deflection arbitration seed lives in the network
	// config; the mode machinery itself is deterministic.
}

// BufferSlotsPerPort returns the total single-flit VC slots per physical
// port (32 in the paper's configuration).
func (a AFC) BufferSlotsPerPort() int {
	n := 0
	for _, v := range a.VCsPerVN {
		n += v
	}
	return n
}

// Baseline collects the backpressured baseline router parameters: 2 VCs
// per control network and 4 on the data network, each with 8-flit-deep
// buffers (64 flits per port).
type Baseline struct {
	VCsPerVN [flit.NumVNs]int
	BufDepth int
	// RealisticVCA models the paper's Section II caveat: the 2-stage
	// baseline charitably assumes 0-cycle VC allocation ("realistically,
	// VCA delay can be hidden only by successful speculation, which is
	// more likely at low loads"). When set, a head flit spends one extra
	// cycle in VC allocation before it may request the switch — the
	// 3-stage router that real backpressured designs degrade to. Default
	// false: the paper's charitable baseline.
	RealisticVCA bool
}

// VCsPerPort returns the total number of VCs per physical port.
func (b Baseline) VCsPerPort() int {
	n := 0
	for _, v := range b.VCsPerVN {
		n += v
	}
	return n
}

// BufferSlotsPerPort returns total buffer slots per physical port.
func (b Baseline) BufferSlotsPerPort() int { return b.VCsPerPort() * b.BufDepth }

// System is the simulated machine configuration (network portion of
// Table II plus the router parameter sets).
type System struct {
	Mesh        topology.Mesh
	LinkLatency int // L; the paper uses 2-cycle links
	// EjectWidth is the local (ejection) port bandwidth in flits/cycle,
	// identical for every router kind. The default is 1, like the mesh
	// ports; the ejection-width ablation sweeps it.
	EjectWidth int

	Baseline Baseline
	AFC      AFC
}

// Default returns the paper's configuration: 3x3 mesh, 2-cycle links,
// baseline 2+2+4 VCs x 8-flit buffers, AFC 8+8+16 single-flit VCs,
// thresholds 1.8/1.2 (corner), 2.1/1.3 (edge), 2.2/1.7 (center),
// EWMA weight 0.99, gossip watermark X = 2L.
func Default() System {
	return withMesh(topology.NewMesh(3, 3))
}

// DefaultWithMesh returns the default configuration on a custom mesh
// (the Section V-B consolidation experiment uses 8x8).
func DefaultWithMesh(m topology.Mesh) System {
	return withMesh(m)
}

func withMesh(m topology.Mesh) System {
	const linkLatency = 2
	return System{
		Mesh:        m,
		LinkLatency: linkLatency,
		EjectWidth:  1,
		Baseline: Baseline{
			VCsPerVN: [flit.NumVNs]int{2, 2, 4},
			BufDepth: 8,
		},
		AFC: AFC{
			VCsPerVN: [flit.NumVNs]int{8, 8, 16},
			ThresholdsByPosition: map[topology.Position]Thresholds{
				topology.Corner: {High: 1.8, Low: 1.2},
				topology.Edge:   {High: 2.1, Low: 1.3},
				topology.Center: {High: 2.2, Low: 1.7},
			},
			EWMAWeight:      0.99,
			GossipFreeSlots: 2 * linkLatency,
		},
	}
}

// Validate checks internal consistency and returns a descriptive error on
// the first violation.
func (s System) Validate() error {
	if s.LinkLatency < 1 {
		return fmt.Errorf("config: link latency must be >= 1, got %d", s.LinkLatency)
	}
	if s.EjectWidth < 1 {
		return fmt.Errorf("config: eject width must be >= 1, got %d", s.EjectWidth)
	}
	if s.Mesh.Width < 2 || s.Mesh.Height < 2 {
		return fmt.Errorf("config: mesh must be at least 2x2, got %dx%d", s.Mesh.Width, s.Mesh.Height)
	}
	for vn, n := range s.Baseline.VCsPerVN {
		if n < 1 {
			return fmt.Errorf("config: baseline needs >= 1 VC on vn %d", vn)
		}
	}
	if s.Baseline.BufDepth < 1 {
		return fmt.Errorf("config: baseline buffer depth must be >= 1, got %d", s.Baseline.BufDepth)
	}
	for vn, n := range s.AFC.VCsPerVN {
		if n < 2*s.LinkLatency {
			// The gossip watermark X=2L must be reachable without the VN
			// already being full, and the switch window must be covered.
			return fmt.Errorf("config: AFC needs >= 2L VCs on vn %d, got %d", vn, n)
		}
	}
	if s.AFC.GossipFreeSlots < 2*s.LinkLatency {
		return fmt.Errorf("config: gossip watermark X must be >= 2L=%d, got %d",
			2*s.LinkLatency, s.AFC.GossipFreeSlots)
	}
	if w := s.AFC.EWMAWeight; w <= 0 || w >= 1 {
		return fmt.Errorf("config: EWMA weight must be in (0,1), got %g", w)
	}
	for _, pos := range []topology.Position{topology.Corner, topology.Edge, topology.Center} {
		th, ok := s.AFC.ThresholdsByPosition[pos]
		if !ok {
			return fmt.Errorf("config: missing AFC thresholds for %s routers", pos)
		}
		if th.Low <= 0 || th.High <= th.Low {
			return fmt.Errorf("config: %s thresholds must satisfy 0 < low < high, got %+v", pos, th)
		}
	}
	return nil
}
