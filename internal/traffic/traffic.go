// Package traffic provides open-loop synthetic traffic for network
// characterization: the destination patterns and Bernoulli packet
// generators used by the latency-throughput sweeps ("Other results" in
// Section V-A), the hotspot experiment that exercises gossip-induced mode
// switching, and the Section V-B quadrant-consolidation workload.
package traffic

import (
	"fmt"
	"math/rand"

	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/topology"
)

// Pattern maps a source node to a random destination.
type Pattern interface {
	// Dest returns a destination for a packet from src; it must never
	// return src itself.
	Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends to a uniformly random other node. On a degenerate
// one-node mesh there is no other node; Dest then returns src itself and
// the generator skips the injection (see Generator.Tick).
type Uniform struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (u Uniform) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	n := u.Mesh.Nodes()
	if n <= 1 {
		return src
	}
	d := topology.NodeID(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Transpose sends from (x, y) to (y, x); nodes on the diagonal fall back
// to uniform. Requires a square mesh.
type Transpose struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (t Transpose) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	x, y := t.Mesh.Coord(src)
	if x == y {
		return Uniform{Mesh: t.Mesh}.Dest(src, rng)
	}
	return t.Mesh.Node(y, x)
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// BitComplement sends from (x, y) to (W-1-x, H-1-y); the center node of an
// odd mesh falls back to uniform.
type BitComplement struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (b BitComplement) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	x, y := b.Mesh.Coord(src)
	d := b.Mesh.Node(b.Mesh.Width-1-x, b.Mesh.Height-1-y)
	if d == src {
		return Uniform{Mesh: b.Mesh}.Dest(src, rng)
	}
	return d
}

// Name implements Pattern.
func (b BitComplement) Name() string { return "bitcomp" }

// Hotspot sends to a single hot node with probability Frac and uniformly
// otherwise; the hot node itself sends uniformly.
type Hotspot struct {
	Mesh topology.Mesh
	Hot  topology.NodeID
	Frac float64
}

// Dest implements Pattern.
func (h Hotspot) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if src != h.Hot && rng.Float64() < h.Frac {
		return h.Hot
	}
	return Uniform{Mesh: h.Mesh}.Dest(src, rng)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.0f%%)", h.Hot, h.Frac*100) }

// NearNeighbor sends to a uniformly random mesh neighbor — the "easy"
// pattern discussed in Section III-B (high flit throughput without link
// contention).
type NearNeighbor struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (nn NearNeighbor) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	var opts [topology.NumDirs]topology.NodeID
	n := 0
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if nb, ok := nn.Mesh.Neighbor(src, d); ok {
			opts[n] = nb
			n++
		}
	}
	return opts[rng.Intn(n)]
}

// Name implements Pattern.
func (nn NearNeighbor) Name() string { return "neighbor" }

// Quadrant keeps traffic inside the source's quadrant of the mesh
// (Section V-B: an 8x8 consolidation workload where a different
// application runs in each quadrant and traffic stays within it, except
// for misrouting).
type Quadrant struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (q Quadrant) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	qw, qh := q.Mesh.Width/2, q.Mesh.Height/2
	if qw < 1 || qh < 1 {
		// A mesh narrower than 2 in either dimension has no quadrants;
		// rng.Intn(0) below would panic. Fall back to uniform like the
		// other patterns do for their degenerate sources.
		return Uniform{Mesh: q.Mesh}.Dest(src, rng)
	}
	x, y := q.Mesh.Coord(src)
	x0, y0 := (x/qw)*qw, (y/qh)*qh
	// On odd meshes the last row/column of quadrants is clipped by the
	// mesh boundary; clamp so the draw below never leaves the mesh.
	w, h := qw, qh
	if x0+w > q.Mesh.Width {
		w = q.Mesh.Width - x0
	}
	if y0+h > q.Mesh.Height {
		h = q.Mesh.Height - y0
	}
	if w*h < 2 {
		// The quadrant degenerates to src alone: the redraw loop would
		// never terminate. Fall back to uniform.
		return Uniform{Mesh: q.Mesh}.Dest(src, rng)
	}
	for {
		dx := x0 + rng.Intn(w)
		dy := y0 + rng.Intn(h)
		d := q.Mesh.Node(dx, dy)
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (q Quadrant) Name() string { return "quadrant" }

// QuadrantIndex returns which quadrant (0..3, row-major) a node is in.
func QuadrantIndex(m topology.Mesh, n topology.NodeID) int {
	x, y := m.Coord(n)
	qi := 0
	if x >= m.Width/2 {
		qi = 1
	}
	if y >= m.Height/2 {
		qi += 2
	}
	return qi
}

// Config parameterizes an open-loop generator.
type Config struct {
	// Pattern picks destinations.
	Pattern Pattern
	// Rate is the offered load in flits/node/cycle, used for every node
	// unless NodeRates overrides it.
	Rate float64
	// NodeRates optionally gives a per-node offered load (the quadrant
	// experiment injects 0.9 in the hot quadrant and 0.1 elsewhere).
	NodeRates []float64
	// DataFraction is the fraction of packets that are data packets
	// (17 flits); the rest are single-flit control packets alternating
	// between the two control VNs. The default 0.25 approximates the
	// closed-loop request/response mix.
	DataFraction float64
}

// Generator injects open-loop traffic into a network. Register it with
// net.AddTicker.
type Generator struct {
	net  *network.Network
	cfg  Config
	rngs []*rand.Rand
	flip []bool // alternates control packets across the two control VNs

	offered uint64
	stopped bool
	maxRate float64

	// scale multiplies every node's configured rate; the scenario
	// engine's bursty phases toggle it between 1 and an off-phase value
	// without disturbing the per-node rate configuration.
	scale float64
	// dead marks nodes whose routers have been fault-injected away:
	// they stop sourcing traffic and the destination draw redirects away
	// from them. Nil until the first MarkDead.
	dead      []bool
	deadCount int
}

// validateNodeRates rejects a NodeRates slice whose length does not match
// the network. Without this check the mismatch surfaces much later as an
// opaque index panic inside Tick (or silently under-drives the mesh when
// the slice is too long).
func validateNodeRates(cfg Config, nodes int) {
	if cfg.NodeRates != nil && len(cfg.NodeRates) != nodes {
		panic(fmt.Sprintf("traffic: Config.NodeRates has %d entries for a %d-node network",
			len(cfg.NodeRates), nodes))
	}
}

// NewGenerator returns a generator for net. Each node gets an independent
// random stream derived from the network's seed via seeds.
func NewGenerator(net *network.Network, cfg Config, seeds func() *rand.Rand) *Generator {
	if cfg.DataFraction == 0 {
		cfg.DataFraction = 0.25
	}
	if cfg.Pattern == nil {
		cfg.Pattern = Uniform{Mesh: net.Mesh()}
	}
	validateNodeRates(cfg, net.Nodes())
	g := &Generator{
		net:   net,
		cfg:   cfg,
		rngs:  make([]*rand.Rand, net.Nodes()),
		flip:  make([]bool, net.Nodes()),
		scale: 1,
	}
	for i := range g.rngs {
		g.rngs[i] = seeds()
	}
	g.recomputeMaxRate()
	return g
}

// Reattach rebinds the generator to its (freshly Reset) network as
// NewGenerator would: same per-node stream numbering, same defaults —
// but reusing the existing generators and flip state. Like NewGenerator
// it does not register a ticker; the caller does.
func (g *Generator) Reattach(cfg Config) {
	if cfg.DataFraction == 0 {
		cfg.DataFraction = 0.25
	}
	if cfg.Pattern == nil {
		cfg.Pattern = Uniform{Mesh: g.net.Mesh()}
	}
	validateNodeRates(cfg, g.net.Nodes())
	g.cfg = cfg
	for i := range g.rngs {
		g.net.ReseedStream(g.rngs[i])
		g.flip[i] = false
	}
	g.offered = 0
	g.stopped = false
	g.scale = 1
	g.dead = nil
	g.deadCount = 0
	g.recomputeMaxRate()
}

func (g *Generator) recomputeMaxRate() {
	g.maxRate = g.cfg.Rate
	if g.cfg.NodeRates != nil {
		g.maxRate = 0
		for _, r := range g.cfg.NodeRates {
			if r > g.maxRate {
				g.maxRate = r
			}
		}
	}
}

// SetRate replaces the offered load with a single uniform rate, clearing
// any per-node rates (scenario ramps).
func (g *Generator) SetRate(rate float64) {
	g.cfg.Rate = rate
	g.cfg.NodeRates = nil
	g.recomputeMaxRate()
}

// SetNodeRates replaces the offered load with a per-node rate vector
// (scenario hotspot relocation / quadrant phases). The slice is copied.
func (g *Generator) SetNodeRates(rates []float64) {
	if len(rates) != g.net.Nodes() {
		panic(fmt.Sprintf("traffic: SetNodeRates got %d entries for a %d-node network",
			len(rates), g.net.Nodes()))
	}
	g.cfg.NodeRates = append([]float64(nil), rates...)
	g.recomputeMaxRate()
}

// SetPattern replaces the destination pattern mid-run (scenario hotspot
// relocation). A nil pattern restores uniform.
func (g *Generator) SetPattern(p Pattern) {
	if p == nil {
		p = Uniform{Mesh: g.net.Mesh()}
	}
	g.cfg.Pattern = p
}

// SetScale sets the burst scale factor applied to every node's rate.
// Scale 0 silences the generator (and makes it quiescent) without
// forgetting the configured rates; scale 1 restores them.
func (g *Generator) SetScale(s float64) { g.scale = s }

// MarkDead removes node n from the workload: it stops sourcing packets
// and destination draws that land on it are redirected to a live node
// (fault injection; dead routers neither inject nor eject).
func (g *Generator) MarkDead(n topology.NodeID) {
	if g.dead == nil {
		g.dead = make([]bool, g.net.Nodes())
	}
	if !g.dead[n] {
		g.dead[n] = true
		g.deadCount++
	}
}

// MeanPacketLen returns the expected packet length under the configured
// mix.
func (g *Generator) MeanPacketLen() float64 {
	return g.cfg.DataFraction*flit.DataPacketFlits + (1-g.cfg.DataFraction)*flit.ControlPacketFlits
}

// rate returns the effective flit rate of node i.
func (g *Generator) rate(i int) float64 {
	if g.dead != nil && g.dead[i] {
		return 0
	}
	r := g.cfg.Rate
	if g.cfg.NodeRates != nil {
		r = g.cfg.NodeRates[i]
	}
	return r * g.scale
}

// OfferedFlits returns the number of flits offered so far.
func (g *Generator) OfferedFlits() uint64 { return g.offered }

// Stop halts further packet generation (drain phases of experiments).
func (g *Generator) Stop() { g.stopped = true }

// Quiescent implements sim.Quiescer: an active generator draws randomness
// for every node every cycle, so it is quiescent only once stopped (or
// configured with no positive rate). This is what makes drain phases
// skippable by the active-set kernel.
func (g *Generator) Quiescent(now uint64) bool {
	return g.stopped || g.maxRate*g.scale <= 0
}

// FastForward implements sim.Quiescer. A quiescent generator's Tick is a
// pure no-op (it returns before touching any RNG), so there is nothing to
// batch-advance.
func (g *Generator) FastForward(cycles uint64) {}

// Tick implements sim.Ticker: per node, create a packet with probability
// rate/meanLen, so offered load in flits matches the configured rate.
func (g *Generator) Tick(now uint64) {
	if g.stopped {
		return
	}
	meanLen := g.MeanPacketLen()
	for i := 0; i < g.net.Nodes(); i++ {
		r := g.rate(i)
		if r <= 0 {
			continue
		}
		rng := g.rngs[i]
		if rng.Float64() >= r/meanLen {
			continue
		}
		src := topology.NodeID(i)
		dst := g.cfg.Pattern.Dest(src, rng)
		if g.deadCount > 0 {
			dst = g.redirect(src, dst, rng)
		}
		if dst == src {
			// Degenerate pattern (one-node mesh) or no live
			// destination remains: skip this injection.
			continue
		}
		vn := flit.VNData
		length := flit.DataPacketFlits
		if rng.Float64() >= g.cfg.DataFraction {
			length = flit.ControlPacketFlits
			if g.flip[i] {
				vn = flit.VNReq
			} else {
				vn = flit.VNResp
			}
			g.flip[i] = !g.flip[i]
		}
		g.net.NI(src).SendPacket(now, dst, vn, length, 0)
		g.offered += uint64(length)
	}
}

// redirect steers a destination draw away from dead nodes: a few
// pattern-shaped redraws first (so e.g. uniform traffic stays uniform
// over the live nodes), then a deterministic scan for the first live
// node. Returns src when no live destination exists.
func (g *Generator) redirect(src, dst topology.NodeID, rng *rand.Rand) topology.NodeID {
	if !g.dead[dst] {
		return dst
	}
	for try := 0; try < 4; try++ {
		d := g.cfg.Pattern.Dest(src, rng)
		if !g.dead[d] {
			return d
		}
	}
	n := topology.NodeID(g.net.Nodes())
	for off := topology.NodeID(1); off < n; off++ {
		d := (dst + off) % n
		if d != src && !g.dead[d] {
			return d
		}
	}
	return src
}
