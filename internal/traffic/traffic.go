// Package traffic provides open-loop synthetic traffic for network
// characterization: the destination patterns and Bernoulli packet
// generators used by the latency-throughput sweeps ("Other results" in
// Section V-A), the hotspot experiment that exercises gossip-induced mode
// switching, and the Section V-B quadrant-consolidation workload.
package traffic

import (
	"fmt"
	"math/rand"

	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/topology"
)

// Pattern maps a source node to a random destination.
type Pattern interface {
	// Dest returns a destination for a packet from src; it must never
	// return src itself.
	Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends to a uniformly random other node.
type Uniform struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (u Uniform) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	n := u.Mesh.Nodes()
	d := topology.NodeID(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Transpose sends from (x, y) to (y, x); nodes on the diagonal fall back
// to uniform. Requires a square mesh.
type Transpose struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (t Transpose) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	x, y := t.Mesh.Coord(src)
	if x == y {
		return Uniform{Mesh: t.Mesh}.Dest(src, rng)
	}
	return t.Mesh.Node(y, x)
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// BitComplement sends from (x, y) to (W-1-x, H-1-y); the center node of an
// odd mesh falls back to uniform.
type BitComplement struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (b BitComplement) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	x, y := b.Mesh.Coord(src)
	d := b.Mesh.Node(b.Mesh.Width-1-x, b.Mesh.Height-1-y)
	if d == src {
		return Uniform{Mesh: b.Mesh}.Dest(src, rng)
	}
	return d
}

// Name implements Pattern.
func (b BitComplement) Name() string { return "bitcomp" }

// Hotspot sends to a single hot node with probability Frac and uniformly
// otherwise; the hot node itself sends uniformly.
type Hotspot struct {
	Mesh topology.Mesh
	Hot  topology.NodeID
	Frac float64
}

// Dest implements Pattern.
func (h Hotspot) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if src != h.Hot && rng.Float64() < h.Frac {
		return h.Hot
	}
	return Uniform{Mesh: h.Mesh}.Dest(src, rng)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.0f%%)", h.Hot, h.Frac*100) }

// NearNeighbor sends to a uniformly random mesh neighbor — the "easy"
// pattern discussed in Section III-B (high flit throughput without link
// contention).
type NearNeighbor struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (nn NearNeighbor) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	var opts [topology.NumDirs]topology.NodeID
	n := 0
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if nb, ok := nn.Mesh.Neighbor(src, d); ok {
			opts[n] = nb
			n++
		}
	}
	return opts[rng.Intn(n)]
}

// Name implements Pattern.
func (nn NearNeighbor) Name() string { return "neighbor" }

// Quadrant keeps traffic inside the source's quadrant of the mesh
// (Section V-B: an 8x8 consolidation workload where a different
// application runs in each quadrant and traffic stays within it, except
// for misrouting).
type Quadrant struct{ Mesh topology.Mesh }

// Dest implements Pattern.
func (q Quadrant) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	qw, qh := q.Mesh.Width/2, q.Mesh.Height/2
	x, y := q.Mesh.Coord(src)
	x0, y0 := (x/qw)*qw, (y/qh)*qh
	for {
		dx := x0 + rng.Intn(qw)
		dy := y0 + rng.Intn(qh)
		d := q.Mesh.Node(dx, dy)
		if d != src {
			return d
		}
	}
}

// Name implements Pattern.
func (q Quadrant) Name() string { return "quadrant" }

// QuadrantIndex returns which quadrant (0..3, row-major) a node is in.
func QuadrantIndex(m topology.Mesh, n topology.NodeID) int {
	x, y := m.Coord(n)
	qi := 0
	if x >= m.Width/2 {
		qi = 1
	}
	if y >= m.Height/2 {
		qi += 2
	}
	return qi
}

// Config parameterizes an open-loop generator.
type Config struct {
	// Pattern picks destinations.
	Pattern Pattern
	// Rate is the offered load in flits/node/cycle, used for every node
	// unless NodeRates overrides it.
	Rate float64
	// NodeRates optionally gives a per-node offered load (the quadrant
	// experiment injects 0.9 in the hot quadrant and 0.1 elsewhere).
	NodeRates []float64
	// DataFraction is the fraction of packets that are data packets
	// (17 flits); the rest are single-flit control packets alternating
	// between the two control VNs. The default 0.25 approximates the
	// closed-loop request/response mix.
	DataFraction float64
}

// Generator injects open-loop traffic into a network. Register it with
// net.AddTicker.
type Generator struct {
	net  *network.Network
	cfg  Config
	rngs []*rand.Rand
	flip []bool // alternates control packets across the two control VNs

	offered uint64
	stopped bool
	maxRate float64
}

// NewGenerator returns a generator for net. Each node gets an independent
// random stream derived from the network's seed via seeds.
func NewGenerator(net *network.Network, cfg Config, seeds func() *rand.Rand) *Generator {
	if cfg.DataFraction == 0 {
		cfg.DataFraction = 0.25
	}
	if cfg.Pattern == nil {
		cfg.Pattern = Uniform{Mesh: net.Mesh()}
	}
	g := &Generator{
		net:  net,
		cfg:  cfg,
		rngs: make([]*rand.Rand, net.Nodes()),
		flip: make([]bool, net.Nodes()),
	}
	for i := range g.rngs {
		g.rngs[i] = seeds()
	}
	g.maxRate = cfg.Rate
	if cfg.NodeRates != nil {
		g.maxRate = 0
		for _, r := range cfg.NodeRates {
			if r > g.maxRate {
				g.maxRate = r
			}
		}
	}
	return g
}

// Reattach rebinds the generator to its (freshly Reset) network as
// NewGenerator would: same per-node stream numbering, same defaults —
// but reusing the existing generators and flip state. Like NewGenerator
// it does not register a ticker; the caller does.
func (g *Generator) Reattach(cfg Config) {
	if cfg.DataFraction == 0 {
		cfg.DataFraction = 0.25
	}
	if cfg.Pattern == nil {
		cfg.Pattern = Uniform{Mesh: g.net.Mesh()}
	}
	g.cfg = cfg
	for i := range g.rngs {
		g.net.ReseedStream(g.rngs[i])
		g.flip[i] = false
	}
	g.offered = 0
	g.stopped = false
	g.maxRate = cfg.Rate
	if cfg.NodeRates != nil {
		g.maxRate = 0
		for _, r := range cfg.NodeRates {
			if r > g.maxRate {
				g.maxRate = r
			}
		}
	}
}

// MeanPacketLen returns the expected packet length under the configured
// mix.
func (g *Generator) MeanPacketLen() float64 {
	return g.cfg.DataFraction*flit.DataPacketFlits + (1-g.cfg.DataFraction)*flit.ControlPacketFlits
}

// rate returns the configured flit rate of node i.
func (g *Generator) rate(i int) float64 {
	if g.cfg.NodeRates != nil {
		return g.cfg.NodeRates[i]
	}
	return g.cfg.Rate
}

// OfferedFlits returns the number of flits offered so far.
func (g *Generator) OfferedFlits() uint64 { return g.offered }

// Stop halts further packet generation (drain phases of experiments).
func (g *Generator) Stop() { g.stopped = true }

// Quiescent implements sim.Quiescer: an active generator draws randomness
// for every node every cycle, so it is quiescent only once stopped (or
// configured with no positive rate). This is what makes drain phases
// skippable by the active-set kernel.
func (g *Generator) Quiescent(now uint64) bool { return g.stopped || g.maxRate <= 0 }

// FastForward implements sim.Quiescer. A quiescent generator's Tick is a
// pure no-op (it returns before touching any RNG), so there is nothing to
// batch-advance.
func (g *Generator) FastForward(cycles uint64) {}

// Tick implements sim.Ticker: per node, create a packet with probability
// rate/meanLen, so offered load in flits matches the configured rate.
func (g *Generator) Tick(now uint64) {
	if g.stopped {
		return
	}
	meanLen := g.MeanPacketLen()
	for i := 0; i < g.net.Nodes(); i++ {
		r := g.rate(i)
		if r <= 0 {
			continue
		}
		rng := g.rngs[i]
		if rng.Float64() >= r/meanLen {
			continue
		}
		src := topology.NodeID(i)
		dst := g.cfg.Pattern.Dest(src, rng)
		vn := flit.VNData
		length := flit.DataPacketFlits
		if rng.Float64() >= g.cfg.DataFraction {
			length = flit.ControlPacketFlits
			if g.flip[i] {
				vn = flit.VNReq
			} else {
				vn = flit.VNResp
			}
			g.flip[i] = !g.flip[i]
		}
		g.net.NI(src).SendPacket(now, dst, vn, length, 0)
		g.offered += uint64(length)
	}
}
