package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"afcnet/internal/network"
	"afcnet/internal/topology"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(17)) }

// TestPatternsNeverReturnSource is the contract every Pattern must obey.
func TestPatternsNeverReturnSource(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	patterns := []Pattern{
		Uniform{Mesh: mesh},
		Transpose{Mesh: mesh},
		BitComplement{Mesh: mesh},
		Hotspot{Mesh: mesh, Hot: 5, Frac: 0.8},
		NearNeighbor{Mesh: mesh},
		Quadrant{Mesh: mesh},
	}
	r := rng()
	for _, p := range patterns {
		for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
			for i := 0; i < 50; i++ {
				d := p.Dest(src, r)
				if d == src {
					t.Fatalf("%s returned the source %d", p.Name(), src)
				}
				if !mesh.Contains(d) {
					t.Fatalf("%s returned out-of-mesh node %d", p.Name(), d)
				}
			}
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	u := Uniform{Mesh: mesh}
	r := rng()
	seen := map[topology.NodeID]int{}
	const draws = 9000
	for i := 0; i < draws; i++ {
		seen[u.Dest(0, r)]++
	}
	if len(seen) != mesh.Nodes()-1 {
		t.Fatalf("uniform covered %d destinations, want %d", len(seen), mesh.Nodes()-1)
	}
	want := float64(draws) / float64(mesh.Nodes()-1)
	for d, n := range seen {
		if math.Abs(float64(n)-want) > want/2 {
			t.Errorf("destination %d drawn %d times, expected ~%.0f", d, n, want)
		}
	}
}

func TestTransposeMapsCoordinates(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	tr := Transpose{Mesh: mesh}
	r := rng()
	src := mesh.Node(1, 3)
	if got := tr.Dest(src, r); got != mesh.Node(3, 1) {
		t.Errorf("transpose(1,3) = %d, want %d", got, mesh.Node(3, 1))
	}
	// Diagonal nodes fall back to uniform, never self.
	diag := mesh.Node(2, 2)
	for i := 0; i < 20; i++ {
		if tr.Dest(diag, r) == diag {
			t.Fatal("transpose returned self for diagonal node")
		}
	}
}

func TestBitComplement(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	bc := BitComplement{Mesh: mesh}
	if got := bc.Dest(mesh.Node(0, 0), rng()); got != mesh.Node(3, 3) {
		t.Errorf("bitcomp(0,0) = %d, want %d", got, mesh.Node(3, 3))
	}
}

func TestHotspotBias(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	h := Hotspot{Mesh: mesh, Hot: 4, Frac: 0.7}
	r := rng()
	hits := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		if h.Dest(0, r) == 4 {
			hits++
		}
	}
	frac := float64(hits) / draws
	// 0.7 direct plus 1/8 of the uniform remainder
	want := 0.7 + 0.3/8
	if math.Abs(frac-want) > 0.05 {
		t.Errorf("hotspot fraction = %.3f, want ~%.3f", frac, want)
	}
}

func TestNearNeighborDistanceOne(t *testing.T) {
	mesh := topology.NewMesh(5, 5)
	nn := NearNeighbor{Mesh: mesh}
	r := rng()
	f := func(srcRaw uint8) bool {
		src := topology.NodeID(int(srcRaw) % mesh.Nodes())
		d := nn.Dest(src, r)
		return mesh.Distance(src, d) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng()}); err != nil {
		t.Error(err)
	}
}

func TestQuadrantStaysLocal(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	q := Quadrant{Mesh: mesh}
	r := rng()
	for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
		for i := 0; i < 20; i++ {
			d := q.Dest(src, r)
			if QuadrantIndex(mesh, d) != QuadrantIndex(mesh, src) {
				t.Fatalf("quadrant traffic escaped: %d (q%d) -> %d (q%d)",
					src, QuadrantIndex(mesh, src), d, QuadrantIndex(mesh, d))
			}
		}
	}
}

func TestQuadrantIndex(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	cases := []struct {
		x, y, q int
	}{
		{0, 0, 0}, {3, 3, 0}, {4, 0, 1}, {7, 3, 1},
		{0, 4, 2}, {3, 7, 2}, {4, 4, 3}, {7, 7, 3},
	}
	for _, c := range cases {
		if got := QuadrantIndex(mesh, mesh.Node(c.x, c.y)); got != c.q {
			t.Errorf("QuadrantIndex(%d,%d) = %d, want %d", c.x, c.y, got, c.q)
		}
	}
}

// TestGeneratorOfferedRate checks that the Bernoulli generator offers
// approximately the configured flit rate.
func TestGeneratorOfferedRate(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 5})
	const rate = 0.2
	gen := NewGenerator(net, Config{Rate: rate}, net.RandStream)
	net.AddTicker(gen)
	const cycles = 30_000
	net.Run(cycles)
	offered := float64(gen.OfferedFlits()) / float64(net.Nodes()) / cycles
	if math.Abs(offered-rate) > 0.03 {
		t.Errorf("offered rate = %.3f, want ~%.2f", offered, rate)
	}
}

func TestGeneratorPerNodeRates(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 6})
	rates := make([]float64, net.Nodes())
	rates[3] = 0.3 // only node 3 injects
	gen := NewGenerator(net, Config{NodeRates: rates}, net.RandStream)
	net.AddTicker(gen)
	net.Run(5000)
	for i := 0; i < net.Nodes(); i++ {
		n := net.NI(topology.NodeID(i))
		if i == 3 && n.CreatedPackets() == 0 {
			t.Error("node 3 created no packets")
		}
		if i != 3 && n.CreatedPackets() != 0 {
			t.Errorf("node %d created packets with zero rate", i)
		}
	}
}

func TestGeneratorStop(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 7})
	gen := NewGenerator(net, Config{Rate: 0.3}, net.RandStream)
	net.AddTicker(gen)
	net.Run(2000)
	gen.Stop()
	before := gen.OfferedFlits()
	net.Run(2000)
	if gen.OfferedFlits() != before {
		t.Error("generator kept offering after Stop")
	}
	if !net.RunUntil(net.Drained, 100_000) {
		t.Error("network did not drain after Stop")
	}
}

func TestMeanPacketLen(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 8})
	gen := NewGenerator(net, Config{Rate: 0.1, DataFraction: 0.25}, net.RandStream)
	want := 0.25*17 + 0.75*1
	if got := gen.MeanPacketLen(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanPacketLen = %g, want %g", got, want)
	}
}

// TestPatternsSmallAndOddMeshes drives every pattern over meshes whose
// quadrants or symmetry points degenerate (2-wide, odd, non-square):
// destinations must stay in-mesh and never equal the source. This pins
// the Quadrant fix (rng.Intn(0) panic / infinite redraw on one-node
// quadrants, out-of-range Node on clipped odd-mesh quadrants) and the
// Uniform guard behind it.
func TestPatternsSmallAndOddMeshes(t *testing.T) {
	dims := [][2]int{{2, 2}, {2, 3}, {3, 2}, {3, 3}, {5, 3}, {3, 5}, {5, 5}, {8, 8}}
	for _, wh := range dims {
		mesh := topology.NewMesh(wh[0], wh[1])
		patterns := []Pattern{
			Uniform{Mesh: mesh},
			BitComplement{Mesh: mesh},
			Hotspot{Mesh: mesh, Hot: topology.NodeID(mesh.Nodes() - 1), Frac: 0.7},
			NearNeighbor{Mesh: mesh},
			Quadrant{Mesh: mesh},
		}
		if wh[0] == wh[1] {
			// Transpose is only defined on square meshes.
			patterns = append(patterns, Transpose{Mesh: mesh})
		}
		r := rng()
		for _, p := range patterns {
			for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
				for i := 0; i < 100; i++ {
					d := p.Dest(src, r)
					if !mesh.Contains(d) {
						t.Fatalf("%dx%d %s: out-of-mesh destination %d from %d",
							wh[0], wh[1], p.Name(), d, src)
					}
					if d == src {
						t.Fatalf("%dx%d %s: returned the source %d", wh[0], wh[1], p.Name(), src)
					}
				}
			}
		}
	}
}

// TestQuadrantDegenerateFallsBackToUniform: on a 3x3 mesh every
// quadrant clips to a single node, so Quadrant must behave exactly like
// Uniform rather than spin or panic.
func TestQuadrantDegenerateFallsBackToUniform(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	q := Quadrant{Mesh: mesh}
	r := rng()
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 2000; i++ {
		seen[q.Dest(4, r)] = true
	}
	if len(seen) != mesh.Nodes()-1 {
		t.Errorf("degenerate quadrant covered %d destinations, want %d (uniform fallback)",
			len(seen), mesh.Nodes()-1)
	}
}

// TestNodeRatesLengthValidated: a NodeRates slice whose length does not
// match the node count must be rejected at construction, not surface as
// an index panic cycles later inside Tick.
func TestNodeRatesLengthValidated(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 9})
	bad := make([]float64, net.Nodes()+2)
	wantPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted a %d-entry NodeRates on a %d-node network",
					name, len(bad), net.Nodes())
			}
		}()
		fn()
	}
	wantPanic("NewGenerator", func() {
		NewGenerator(net, Config{NodeRates: bad}, net.RandStream)
	})
	gen := NewGenerator(net, Config{Rate: 0.1}, net.RandStream)
	wantPanic("Reattach", func() {
		gen.Reattach(Config{NodeRates: bad})
	})
	wantPanic("SetNodeRates", func() {
		gen.SetNodeRates(bad)
	})
}
