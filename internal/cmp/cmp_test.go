package cmp

import (
	"math"
	"testing"

	"afcnet/internal/network"
)

func TestPresetsValidate(t *testing.T) {
	for _, p := range AllBenchmarks() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		// Table II invariants shared by all presets.
		if p.MSHRs != 16 || p.L2Latency != 12 || p.MemLatency != 250 {
			t.Errorf("%s deviates from Table II: %+v", p.Name, p)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"apache", "oltp", "specjbb", "barnes", "ocean", "water"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good := Water()
	cases := []func(*Params){
		func(p *Params) { p.IssueProb = 0 },
		func(p *Params) { p.IssueProb = 1.5 },
		func(p *Params) { p.MSHRs = 0 },
		func(p *Params) { p.L2Latency = 0 },
		func(p *Params) { p.MemFraction = -0.1 },
		func(p *Params) { p.WritebackFraction = 1.1 },
		func(p *Params) { p.HomeLocality = 2 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

// TestMSHRBoundRespected: outstanding misses never exceed MSHRs per core.
func TestMSHRBoundRespected(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 3})
	p := Apache() // high demand stresses the bound
	sys := NewSystem(net, p, net.RandStream)
	for c := 0; c < 3000; c++ {
		net.Step()
		for i := range sys.cores {
			if sys.cores[i].outstanding > p.MSHRs {
				t.Fatalf("core %d has %d outstanding misses (MSHRs=%d)",
					i, sys.cores[i].outstanding, p.MSHRs)
			}
			if sys.cores[i].outstanding < 0 {
				t.Fatalf("core %d negative outstanding", i)
			}
		}
	}
	if sys.CompletedTransactions() == 0 {
		t.Fatal("no transactions completed")
	}
}

// TestClosedLoopFeedback: a slower network must yield a longer execution
// time for the same work — the property that turns network latency into
// the paper's performance metric. We emulate a slower network by raising
// the bank latency (same mechanism: responses are delayed).
func TestClosedLoopFeedback(t *testing.T) {
	run := func(l2 int) uint64 {
		net := network.New(network.Config{Kind: network.Backpressured, Seed: 5})
		// With a single MSHR per core, throughput is exactly 1/RTT, so
		// any added response latency must stretch execution. (At full
		// MSHR occupancy and a backlogged injection port, bank latency
		// overlaps with queueing and is hidden — also physically right,
		// and why the feedback is cleanest to observe here.)
		p := Ocean()
		p.MSHRs = 1
		p.IssueProb = 1
		p.L2Latency = l2
		sys := NewSystem(net, p, net.RandStream)
		res, ok := sys.Measure(100, 800, 5_000_000)
		if !ok {
			t.Fatal("timeout")
		}
		return res.Cycles
	}
	fast := run(12)
	slow := run(200)
	if float64(slow) < 1.5*float64(fast) {
		t.Errorf("raising response latency did not stretch execution: %d vs %d cycles", fast, slow)
	}
}

// TestWritebacksFlow: writebacks are emitted at roughly the configured
// fraction and absorbed without responses.
func TestWritebacksFlow(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 9})
	p := Ocean()
	p.WritebackFraction = 0.5
	sys := NewSystem(net, p, net.RandStream)
	if _, ok := sys.Measure(200, 2000, 5_000_000); !ok {
		t.Fatal("timeout")
	}
	got := float64(sys.WritebacksSent()) / float64(sys.CompletedTransactions())
	if math.Abs(got-0.5) > 0.08 {
		t.Errorf("writeback fraction = %.3f, want ~0.5", got)
	}
}

// TestMeasureWindows: Measure discards warmup and reports only the window.
func TestMeasureWindows(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 2})
	sys := NewSystem(net, Water(), net.RandStream)
	res, ok := sys.Measure(500, 1000, 5_000_000)
	if !ok {
		t.Fatal("timeout")
	}
	if res.Transactions < 1000 {
		t.Errorf("measured %d transactions, want >= 1000", res.Transactions)
	}
	if res.Cycles == 0 || res.TransactionsPerCycle <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.InjectionRate <= 0 || res.InjectionRate > 1 {
		t.Errorf("implausible injection rate %g", res.InjectionRate)
	}
	if !ok {
		t.Fatal("measure failed")
	}
}

// TestMeasureTimeout: an impossible goal reports failure rather than
// hanging.
func TestMeasureTimeout(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 2})
	sys := NewSystem(net, Water(), net.RandStream)
	if _, ok := sys.Measure(0, 1<<40, 2000); ok {
		t.Fatal("Measure claimed success on an impossible goal")
	}
}

// TestInjectionRateCalibration pins the Table III calibration: the
// achieved rate of every preset on the backpressured baseline must stay
// within 15% of the paper's reported rate (EXPERIMENTS.md records the
// exact values).
func TestInjectionRateCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	for _, p := range AllBenchmarks() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			net := network.New(network.Config{Kind: network.Backpressured, Seed: 1})
			sys := NewSystem(net, p, net.RandStream)
			res, ok := sys.Measure(1000, 3000, 20_000_000)
			if !ok {
				t.Fatal("timeout")
			}
			paper := PaperInjectionRates[p.Name]
			if rel := math.Abs(res.InjectionRate-paper) / paper; rel > 0.15 {
				t.Errorf("achieved %.3f flits/node/cycle, paper %.2f (off by %.0f%%)",
					res.InjectionRate, paper, rel*100)
			}
		})
	}
}

// TestWritebackPreAllocation exercises the Section II protocol variant:
// writebacks are held until the home bank grants a receive buffer, bank
// occupancy never exceeds the configured entries (the in-code panic is
// the oracle), and every held writeback is eventually released.
func TestWritebackPreAllocation(t *testing.T) {
	net := network.New(network.Config{Kind: network.Backpressured, Seed: 13})
	p := Apache() // high writeback pressure
	p.WritebackPreAlloc = true
	p.WBBufferEntries = 2 // tiny buffers force queuing at the bank
	sys := NewSystem(net, p, net.RandStream)
	if _, ok := sys.Measure(300, 2500, 10_000_000); !ok {
		t.Fatal("timeout")
	}
	if sys.WBPreallocRequests() == 0 {
		t.Fatal("no pre-allocation requests issued")
	}
	if sys.WBMaxHeld() == 0 {
		t.Fatal("no writeback was ever held (protocol not exercised)")
	}
	// Quiesce: stop issuing and let the protocol drain; held counts and
	// bank entries must return to zero.
	sys.StopIssuing()
	for c := 0; c < 200_000; c++ {
		net.Step()
		done := true
		for i := range sys.wbHeld {
			if sys.wbHeld[i] != 0 || sys.wbEntries[i] != 0 || len(sys.wbWaiters[i]) != 0 {
				done = false
				break
			}
		}
		if done && sys.Outstanding() == 0 {
			return
		}
	}
	t.Fatal("writeback protocol did not quiesce")
}

// TestWritebackPreAllocationMatchesPlain: with generous bank buffers the
// pre-allocation variant completes the same work with modestly more
// control traffic and similar throughput.
func TestWritebackPreAllocationMatchesPlain(t *testing.T) {
	run := func(prealloc bool) (float64, uint64) {
		net := network.New(network.Config{Kind: network.Backpressured, Seed: 14})
		p := Ocean()
		p.WritebackPreAlloc = prealloc
		sys := NewSystem(net, p, net.RandStream)
		res, ok := sys.Measure(300, 2000, 10_000_000)
		if !ok {
			t.Fatal("timeout")
		}
		return res.TransactionsPerCycle, sys.WritebacksSent()
	}
	plainPerf, plainWB := run(false)
	prePerf, preWB := run(true)
	if preWB == 0 || plainWB == 0 {
		t.Fatal("no writebacks in either run")
	}
	if prePerf < 0.9*plainPerf {
		t.Errorf("pre-allocation cost too much at low load: %g vs %g tx/cycle", prePerf, plainPerf)
	}
}

// TestWritebackPreAllocationOnAFC: the protocol variant composes with the
// adaptive network (mode switches + held writebacks + grants).
func TestWritebackPreAllocationOnAFC(t *testing.T) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 15})
	p := Apache()
	p.WritebackPreAlloc = true
	sys := NewSystem(net, p, net.RandStream)
	res, ok := sys.Measure(300, 2000, 10_000_000)
	if !ok {
		t.Fatal("timeout")
	}
	if sys.WBPreallocRequests() == 0 {
		t.Fatal("no pre-allocation traffic")
	}
	if res.TransactionsPerCycle <= 0 {
		t.Fatal("no progress")
	}
	if ms := net.ModeStats(); ms.BufferedFraction() < 0.5 {
		t.Errorf("AFC stayed backpressureless under apache+prealloc: %.2f", ms.BufferedFraction())
	}
}
