// Package cmp is the closed-loop chip-multiprocessor substrate standing in
// for the paper's Simics/GEMS full-system stack (see DESIGN.md for the
// substitution argument). Each mesh node hosts a core with private L1
// MSHRs and a shared-L2 bank (Table II: "each node is a core and an L2
// cache bank"). Cores issue cache misses bounded by their MSHR count;
// misses travel the network as 1-flit control requests; the home bank
// answers after its access latency (plus DRAM latency for the off-chip
// fraction) with a 17-flit data packet; completions free MSHRs and
// occasionally emit dirty-writeback data packets.
//
// The substrate supplies the two properties the paper's evaluation hinges
// on: the network load level of each workload, and the feedback of network
// latency into execution time (a slower network holds MSHRs longer, which
// throttles issue and stretches runtime). Execution time for a fixed
// amount of work — the paper's performance metric — falls out directly.
package cmp

import (
	"fmt"
	"math/rand"

	"afcnet/internal/flit"
	"afcnet/internal/network"
	"afcnet/internal/ni"
	"afcnet/internal/topology"
)

// message types carried in packet payloads
const (
	msgRequest uint64 = iota + 1
	msgResponse
	msgWriteback
	msgWBRequest // writeback pre-allocation request (control)
	msgWBAck     // writeback pre-allocation grant (control)

	msgShift = 56
)

func payload(kind, tx uint64) uint64 { return kind<<msgShift | tx }
func payloadKind(p uint64) uint64    { return p >> msgShift }
func payloadTx(p uint64) uint64      { return p & (1<<msgShift - 1) }

// Params defines a workload preset.
type Params struct {
	// Name identifies the workload.
	Name string
	// IssueProb is the per-cycle probability that a core with a free MSHR
	// issues a new miss (geometric think time).
	IssueProb float64
	// MSHRs bounds outstanding misses per core (Table II: 16).
	MSHRs int
	// L2Latency is the bank access latency in cycles (Table II: 12).
	L2Latency int
	// MemLatency is the off-chip access latency added to the MemFraction
	// of misses (Table II: 250).
	MemLatency int
	// MemFraction is the fraction of L2 accesses that miss to memory.
	MemFraction float64
	// WritebackFraction is the probability a completed miss also emits a
	// dirty writeback (an "unexpected" data packet, Section II).
	WritebackFraction float64
	// HomeLocality is the probability the home bank is a mesh neighbor
	// rather than uniformly random; commercial workloads with OS-assisted
	// placement see substantial locality, and it lets the closed loop
	// reach the paper's high injection rates.
	HomeLocality float64
	// WritebackPreAlloc enables the Section II protocol variant for
	// "unexpected" packets: a dirty writeback first requests a receive
	// buffer at the home bank (control message), holds the data until the
	// grant arrives, and only then sends it — bounding receive-side
	// buffering without worst-case provisioning.
	WritebackPreAlloc bool
	// WBBufferEntries is the per-bank writeback receive-buffer capacity
	// used when WritebackPreAlloc is set (default 16, like the MSHRs).
	WBBufferEntries int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.IssueProb <= 0 || p.IssueProb > 1:
		return fmt.Errorf("cmp: issue probability must be in (0,1], got %g", p.IssueProb)
	case p.MSHRs < 1:
		return fmt.Errorf("cmp: MSHRs must be >= 1, got %d", p.MSHRs)
	case p.L2Latency < 1:
		return fmt.Errorf("cmp: L2 latency must be >= 1, got %d", p.L2Latency)
	case p.MemFraction < 0 || p.MemFraction > 1:
		return fmt.Errorf("cmp: memory fraction must be in [0,1], got %g", p.MemFraction)
	case p.WritebackFraction < 0 || p.WritebackFraction > 1:
		return fmt.Errorf("cmp: writeback fraction must be in [0,1], got %g", p.WritebackFraction)
	case p.HomeLocality < 0 || p.HomeLocality > 1:
		return fmt.Errorf("cmp: home locality must be in [0,1], got %g", p.HomeLocality)
	case p.WritebackPreAlloc && p.WBBufferEntries < 0:
		return fmt.Errorf("cmp: writeback buffer entries must be >= 0, got %d", p.WBBufferEntries)
	}
	return nil
}

type coreState struct {
	outstanding int
	completed   uint64
	issued      uint64
	nextTx      uint64
	neighbors   []topology.NodeID
}

type bankJob struct {
	due  uint64
	bank topology.NodeID
	core topology.NodeID
	tx   uint64
}

// jobHeap is a hand-rolled min-heap on due. It mirrors container/heap's
// sift order exactly (so tie-breaking among equal due times is unchanged)
// but avoids the interface{} boxing of heap.Push/Pop, which shows up in
// allocation profiles of closed-loop runs.
type jobHeap []bankJob

func (h *jobHeap) push(j bankJob) {
	*h = append(*h, j)
	hs := *h
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hs[parent].due <= hs[i].due {
			break
		}
		hs[parent], hs[i] = hs[i], hs[parent]
		i = parent
	}
}

func (h *jobHeap) pop() bankJob {
	hs := *h
	n := len(hs) - 1
	hs[0], hs[n] = hs[n], hs[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && hs[r].due < hs[l].due {
			j = r
		}
		if hs[i].due <= hs[j].due {
			break
		}
		hs[i], hs[j] = hs[j], hs[i]
		i = j
	}
	top := hs[n]
	*h = hs[:n]
	return top
}

// System couples a CMP workload to a network. Construct it after the
// network, before running.
type System struct {
	net    *network.Network
	params Params
	cores  []coreState
	jobs   jobHeap
	rngs   []*rand.Rand

	totalCompleted uint64
	writebacksSent uint64
	stopped        bool
	fullCores      int // cores with every MSHR occupied (issue loop is RNG-free for them)

	// writeback pre-allocation state (WritebackPreAlloc variant)
	wbEntries  []int               // per-bank receive-buffer entries in use
	wbWaiters  [][]topology.NodeID // per-bank cores awaiting a grant
	wbHeld     []int               // per-core writebacks held awaiting grant
	wbRequests uint64
	wbMaxHeld  int

	// cells, non-nil exactly when the network runs the sharded tick, is
	// the per-shard staging of onPacket's cross-shard mutations. The
	// handler fires inside the parallel phase (deliveries happen in
	// router ticks), where everything it touches is destination-local
	// except the bank-job heap and the global counters; those stage here
	// and drainStaged merges them shard-ascending — serial node order —
	// via the network's drain hook.
	cells []shardCell
}

// shardCell stages one shard's cross-shard CMP effects for one cycle.
type shardCell struct {
	jobs       []bankJob
	completed  uint64
	writebacks uint64
	wbReqs     uint64
	fullDelta  int
	maxHeld    int
}

// NewSystem attaches a CMP running the given workload to net. seeds mints
// per-core random streams. It panics on invalid parameters (presets are
// validated in tests; custom parameters should be validated by the
// caller).
func NewSystem(net *network.Network, p Params, seeds func() *rand.Rand) *System {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.WritebackPreAlloc && p.WBBufferEntries == 0 {
		p.WBBufferEntries = 16
	}
	s := &System{
		net:       net,
		params:    p,
		cores:     make([]coreState, net.Nodes()),
		rngs:      make([]*rand.Rand, net.Nodes()),
		wbEntries: make([]int, net.Nodes()),
		wbWaiters: make([][]topology.NodeID, net.Nodes()),
		wbHeld:    make([]int, net.Nodes()),
	}
	mesh := net.Mesh()
	for i := range s.cores {
		s.rngs[i] = seeds()
		node := topology.NodeID(i)
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if nb, ok := mesh.Neighbor(node, d); ok {
				s.cores[i].neighbors = append(s.cores[i].neighbors, nb)
			}
		}
		nif := net.NI(node)
		nif.SetHandler(s.onPacket)
	}
	if net.ShardCount() > 1 {
		s.cells = make([]shardCell, net.ShardCount())
		net.AddDrainHook(s.drainStaged)
	}
	net.AddTicker(s)
	return s
}

// Reattach rebinds the system to its (freshly Reset) network as
// NewSystem would: same per-core stream numbering, same handler
// registration, same ticker slot — but reusing every slice, heap and
// generator the previous cell grew. p may change the workload; the
// usual caveats of NewSystem apply.
func (s *System) Reattach(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.WritebackPreAlloc && p.WBBufferEntries == 0 {
		p.WBBufferEntries = 16
	}
	s.params = p
	for i := range s.cores {
		s.cores[i] = coreState{neighbors: s.cores[i].neighbors}
		s.net.ReseedStream(s.rngs[i])
		s.net.NI(topology.NodeID(i)).SetHandler(s.onPacket)
	}
	s.jobs = s.jobs[:0]
	s.totalCompleted = 0
	s.writebacksSent = 0
	s.stopped = false
	s.fullCores = 0
	for i := range s.wbEntries {
		s.wbEntries[i] = 0
		s.wbWaiters[i] = s.wbWaiters[i][:0]
		s.wbHeld[i] = 0
	}
	s.wbRequests = 0
	s.wbMaxHeld = 0
	for i := range s.cells {
		s.cells[i].jobs = s.cells[i].jobs[:0]
		s.cells[i] = shardCell{jobs: s.cells[i].jobs}
	}
	if s.cells != nil {
		// Reset dropped the previous cell's drain hooks along with its
		// tickers; re-register ours exactly as NewSystem did.
		s.net.AddDrainHook(s.drainStaged)
	}
	s.net.AddTicker(s)
}

// cell returns the staging cell of node's shard, nil on a serial
// network (mutate the globals inline).
func (s *System) cell(node topology.NodeID) *shardCell {
	if s.cells == nil {
		return nil
	}
	return &s.cells[s.net.ShardOf(node)]
}

// drainStaged merges the per-shard staging cells into the global state,
// shard-ascending: each cell holds its shard's effects in tick order and
// the bands are ascending node ranges, so the merged order — and hence
// the job heap's layout under equal due times — matches the serial
// kernel exactly.
func (s *System) drainStaged(now uint64) {
	for i := range s.cells {
		c := &s.cells[i]
		for _, j := range c.jobs {
			s.jobs.push(j)
		}
		s.totalCompleted += c.completed
		s.writebacksSent += c.writebacks
		s.wbRequests += c.wbReqs
		s.fullCores += c.fullDelta
		if c.maxHeld > s.wbMaxHeld {
			s.wbMaxHeld = c.maxHeld
		}
		*c = shardCell{jobs: c.jobs[:0]}
	}
}

// Params returns the workload parameters.
func (s *System) Params() Params { return s.params }

// CompletedTransactions returns the total misses completed so far.
func (s *System) CompletedTransactions() uint64 { return s.totalCompleted }

// WritebacksSent returns the number of dirty writebacks emitted.
func (s *System) WritebacksSent() uint64 { return s.writebacksSent }

// Outstanding returns the currently outstanding misses across all cores.
func (s *System) Outstanding() int {
	t := 0
	for i := range s.cores {
		t += s.cores[i].outstanding
	}
	return t
}

// StopIssuing halts new miss generation (drain/quiesce phases); in-flight
// transactions and the writeback protocol continue to completion.
func (s *System) StopIssuing() { s.stopped = true }

// Quiescent implements sim.Quiescer: the issue loop draws randomness only
// for cores with a free MSHR, so Tick is a provable no-op exactly when
// issuing is off (stopped, or every core MSHR-saturated) and no bank job
// is due. Responses arriving through the network update fullCores via the
// NI handler before this entry's slot in the tick order, so the check
// always sees this cycle's state.
func (s *System) Quiescent(now uint64) bool {
	if !s.stopped && s.fullCores != len(s.cores) {
		return false
	}
	return len(s.jobs) == 0 || s.jobs[0].due > now
}

// FastForward implements sim.Quiescer: a quiescent Tick touches no
// per-cycle state (no RNG draws, no heap pops), so there is nothing to
// batch-advance.
func (s *System) FastForward(cycles uint64) {}

// NextWake implements sim.Sleeper: the next bank-job completion. While the
// rest of the system is frozen no new requests arrive, so the heap head is
// the only future state change.
func (s *System) NextWake(now uint64) (uint64, bool) {
	if len(s.jobs) == 0 {
		return 0, false
	}
	return s.jobs[0].due, true
}

// Tick implements sim.Ticker: issue new misses and complete due bank jobs.
func (s *System) Tick(now uint64) {
	if s.stopped {
		s.completeJobs(now)
		return
	}
	for i := range s.cores {
		c := &s.cores[i]
		if c.outstanding >= s.params.MSHRs {
			continue
		}
		rng := s.rngs[i]
		if rng.Float64() >= s.params.IssueProb {
			continue
		}
		node := topology.NodeID(i)
		home := s.pickHome(node, rng)
		c.nextTx++
		tx := uint64(i)<<32 | c.nextTx
		c.outstanding++
		if c.outstanding == s.params.MSHRs {
			s.fullCores++
		}
		c.issued++
		s.net.NI(node).SendPacket(now, home, flit.VNReq,
			flit.ControlPacketFlits, payload(msgRequest, tx))
	}

	s.completeJobs(now)
}

func (s *System) completeJobs(now uint64) {
	for len(s.jobs) > 0 && s.jobs[0].due <= now {
		j := s.jobs.pop()
		s.net.NI(j.bank).SendPacket(now, j.core, flit.VNData,
			flit.DataPacketFlits, payload(msgResponse, j.tx))
	}
}

// pickHome selects the home L2 bank for a miss: a mesh neighbor with
// probability HomeLocality, a uniformly random other node otherwise.
func (s *System) pickHome(node topology.NodeID, rng *rand.Rand) topology.NodeID {
	c := &s.cores[node]
	if len(c.neighbors) > 0 && rng.Float64() < s.params.HomeLocality {
		return c.neighbors[rng.Intn(len(c.neighbors))]
	}
	n := s.net.Nodes()
	d := topology.NodeID(rng.Intn(n - 1))
	if d >= node {
		d++
	}
	return d
}

// onPacket handles packets delivered at any node.
func (s *System) onPacket(now uint64, d ni.Delivered) {
	switch payloadKind(d.Payload) {
	case msgRequest:
		// The local L2 bank services the request; the data response
		// leaves after the access latency (plus DRAM for the off-chip
		// fraction).
		lat := uint64(s.params.L2Latency)
		if s.rngs[d.Dst].Float64() < s.params.MemFraction {
			lat += uint64(s.params.MemLatency)
		}
		j := bankJob{due: now + lat, bank: d.Dst, core: d.Src, tx: payloadTx(d.Payload)}
		if cell := s.cell(d.Dst); cell != nil {
			cell.jobs = append(cell.jobs, j)
		} else {
			s.jobs.push(j)
		}
	case msgResponse:
		// The miss completes: the MSHR frees; occasionally the evicted
		// line is dirty and must be written back to its own home bank.
		cell := s.cell(d.Dst)
		c := &s.cores[d.Dst]
		if c.outstanding == s.params.MSHRs {
			if cell != nil {
				cell.fullDelta--
			} else {
				s.fullCores--
			}
		}
		c.outstanding--
		c.completed++
		if cell != nil {
			cell.completed++
		} else {
			s.totalCompleted++
		}
		if c.outstanding < 0 {
			panic(fmt.Sprintf("cmp: node %d completed more misses than issued", d.Dst))
		}
		rng := s.rngs[d.Dst]
		if rng.Float64() < s.params.WritebackFraction {
			home := s.pickHome(d.Dst, rng)
			if s.params.WritebackPreAlloc {
				// Hold the dirty line; request a receive buffer first.
				// The peak-held maximum stages per shard: a max of maxes
				// over the same observations equals the serial running max.
				s.wbHeld[d.Dst]++
				if cell != nil {
					if s.wbHeld[d.Dst] > cell.maxHeld {
						cell.maxHeld = s.wbHeld[d.Dst]
					}
					cell.wbReqs++
				} else {
					if s.wbHeld[d.Dst] > s.wbMaxHeld {
						s.wbMaxHeld = s.wbHeld[d.Dst]
					}
					s.wbRequests++
				}
				s.net.NI(d.Dst).SendPacket(now, home, flit.VNReq,
					flit.ControlPacketFlits, payload(msgWBRequest, 0))
			} else {
				if cell != nil {
					cell.writebacks++
				} else {
					s.writebacksSent++
				}
				s.net.NI(d.Dst).SendPacket(now, home, flit.VNData,
					flit.DataPacketFlits, payload(msgWriteback, 0))
			}
		}
	case msgWBRequest:
		// The bank grants a receive-buffer entry now or queues the
		// requester until one frees.
		if s.wbEntries[d.Dst] < s.params.WBBufferEntries {
			s.wbEntries[d.Dst]++
			s.net.NI(d.Dst).SendPacket(now, d.Src, flit.VNResp,
				flit.ControlPacketFlits, payload(msgWBAck, 0))
		} else {
			s.wbWaiters[d.Dst] = append(s.wbWaiters[d.Dst], d.Src)
		}
	case msgWBAck:
		// Grant received: release the held line as a data packet.
		s.wbHeld[d.Dst]--
		if s.wbHeld[d.Dst] < 0 {
			panic(fmt.Sprintf("cmp: node %d acked more writebacks than held", d.Dst))
		}
		if cell := s.cell(d.Dst); cell != nil {
			cell.writebacks++
		} else {
			s.writebacksSent++
		}
		s.net.NI(d.Dst).SendPacket(now, d.Src, flit.VNData,
			flit.DataPacketFlits, payload(msgWriteback, 0))
	case msgWriteback:
		// Absorbed by the bank; dirty writebacks need no response. Under
		// pre-allocation, the receive-buffer entry frees and any waiter
		// is granted.
		if s.params.WritebackPreAlloc {
			s.wbEntries[d.Dst]--
			if s.wbEntries[d.Dst] < 0 {
				panic(fmt.Sprintf("cmp: bank %d freed more wb entries than allocated", d.Dst))
			}
			if w := s.wbWaiters[d.Dst]; len(w) > 0 {
				next := w[0]
				copy(w, w[1:])
				s.wbWaiters[d.Dst] = w[:len(w)-1]
				s.wbEntries[d.Dst]++
				s.net.NI(d.Dst).SendPacket(now, next, flit.VNResp,
					flit.ControlPacketFlits, payload(msgWBAck, 0))
			}
		}
	default:
		panic(fmt.Sprintf("cmp: unknown payload kind in %+v", d))
	}
}

// WBPreallocRequests returns the number of writeback pre-allocation
// requests sent (WritebackPreAlloc variant).
func (s *System) WBPreallocRequests() uint64 { return s.wbRequests }

// WBMaxHeld returns the peak number of writebacks held at any single
// core awaiting a grant.
func (s *System) WBMaxHeld() int { return s.wbMaxHeld }

// RunResult summarizes a measured closed-loop window.
type RunResult struct {
	// Cycles is the execution time of the measured transactions.
	Cycles uint64
	// Transactions completed in the window.
	Transactions uint64
	// TransactionsPerCycle is work per time — the performance metric
	// (execution-time ratios invert it).
	TransactionsPerCycle float64
	// InjectionRate is the achieved network load in flits/node/cycle
	// (Table III's per-workload metric).
	InjectionRate float64
	// MeanNetLatency is the mean packet network latency in the window.
	MeanNetLatency float64
}

// Measure runs warmupTx transactions, resets network statistics, then
// measures the execution of measureTx further transactions. It reports
// failure (ok=false) if limit cycles elapse before completion.
func (s *System) Measure(warmupTx, measureTx uint64, limit uint64) (RunResult, bool) {
	if !s.net.RunUntil(func() bool { return s.totalCompleted >= warmupTx }, limit) {
		return RunResult{}, false
	}
	s.net.ResetStats()
	start := s.net.Now()
	base := s.totalCompleted
	if !s.net.RunUntil(func() bool { return s.totalCompleted-base >= measureTx }, limit) {
		return RunResult{}, false
	}
	cycles := s.net.Now() - start
	done := s.totalCompleted - base
	return RunResult{
		Cycles:               cycles,
		Transactions:         done,
		TransactionsPerCycle: float64(done) / float64(cycles),
		InjectionRate:        s.net.InjectionRate(),
		MeanNetLatency:       s.net.MeanNetLatency(),
	}, true
}
