package topology_test

import (
	"fmt"

	"afcnet/internal/topology"
)

func ExampleMesh_DORNext() {
	m := topology.NewMesh(3, 3)
	// Walk the XY route from the top-left corner to the bottom-right.
	cur := m.Node(0, 0)
	dst := m.Node(2, 2)
	for cur != dst {
		d := m.DORNext(cur, dst)
		fmt.Print(d, " ")
		cur, _ = m.Neighbor(cur, d)
	}
	fmt.Println(m.DORNext(dst, dst))
	// Output: E E S S L
}

func ExampleMesh_Position() {
	m := topology.NewMesh(3, 3)
	fmt.Println(m.Position(0), m.Position(1), m.Position(4))
	// Output: corner edge center
}

func ExampleMesh_ProductiveDirs() {
	m := topology.NewMesh(3, 3)
	dirs := m.ProductiveDirs(m.Node(0, 0), m.Node(2, 1), nil)
	fmt.Println(dirs)
	// Output: [E S]
}
