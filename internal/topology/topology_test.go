package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	m := NewMesh(5, 3)
	for n := NodeID(0); n < NodeID(m.Nodes()); n++ {
		x, y := m.Coord(n)
		if got := m.Node(x, y); got != n {
			t.Errorf("Node(Coord(%d)) = %d", n, got)
		}
		if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
			t.Errorf("Coord(%d) = (%d,%d) out of range", n, x, y)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := NewMesh(4, 4)
	for n := NodeID(0); n < NodeID(m.Nodes()); n++ {
		for d := Dir(0); d < NumDirs; d++ {
			nb, ok := m.Neighbor(n, d)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(nb, d.Opposite())
			if !ok2 || back != n {
				t.Errorf("Neighbor(%d,%s)=%d but Neighbor(%d,%s)=%d,%v",
					n, d, nb, nb, d.Opposite(), back, ok2)
			}
		}
	}
}

func TestNeighborBoundaries(t *testing.T) {
	m := NewMesh(3, 3)
	cases := []struct {
		n  NodeID
		d  Dir
		ok bool
	}{
		{0, West, false}, {0, North, false}, {0, East, true}, {0, South, true},
		{8, East, false}, {8, South, false}, {8, West, true}, {8, North, true},
		{4, East, true}, {4, West, true}, {4, North, true}, {4, South, true},
	}
	for _, c := range cases {
		if _, ok := m.Neighbor(c.n, c.d); ok != c.ok {
			t.Errorf("Neighbor(%d, %s) ok = %v, want %v", c.n, c.d, ok, c.ok)
		}
	}
	if _, ok := m.Neighbor(4, Local); ok {
		t.Error("Neighbor(4, Local) should not exist")
	}
}

func TestPositionClasses(t *testing.T) {
	m := NewMesh(3, 3)
	want := map[NodeID]Position{
		0: Corner, 2: Corner, 6: Corner, 8: Corner,
		1: Edge, 3: Edge, 5: Edge, 7: Edge,
		4: Center,
	}
	for n, p := range want {
		if got := m.Position(n); got != p {
			t.Errorf("Position(%d) = %s, want %s", n, got, p)
		}
	}
}

func TestDegreeMatchesPosition(t *testing.T) {
	m := NewMesh(8, 8)
	for n := NodeID(0); n < NodeID(m.Nodes()); n++ {
		deg := m.Degree(n)
		pos := m.Position(n)
		switch pos {
		case Corner:
			if deg != 2 {
				t.Errorf("corner %d degree %d", n, deg)
			}
		case Edge:
			if deg != 3 {
				t.Errorf("edge %d degree %d", n, deg)
			}
		case Center:
			if deg != 4 {
				t.Errorf("center %d degree %d", n, deg)
			}
		}
	}
}

// TestDORReachesDestination follows DORNext hop by hop and checks it
// reaches the destination in exactly Distance() hops, moving X-first.
func TestDORReachesDestination(t *testing.T) {
	m := NewMesh(4, 5)
	for s := NodeID(0); s < NodeID(m.Nodes()); s++ {
		for d := NodeID(0); d < NodeID(m.Nodes()); d++ {
			cur := s
			hops := 0
			movedY := false
			for cur != d {
				dir := m.DORNext(cur, d)
				if dir == Local {
					t.Fatalf("DORNext(%d,%d) = Local before arrival", cur, d)
				}
				if dir == North || dir == South {
					movedY = true
				} else if movedY {
					t.Fatalf("route %d->%d moved X after Y (not DOR)", s, d)
				}
				nxt, ok := m.Neighbor(cur, dir)
				if !ok {
					t.Fatalf("DORNext(%d,%d) = %s walks off mesh", cur, d, dir)
				}
				cur = nxt
				hops++
				if hops > m.Width+m.Height {
					t.Fatalf("route %d->%d does not terminate", s, d)
				}
			}
			if hops != m.Distance(s, d) {
				t.Errorf("route %d->%d took %d hops, Manhattan %d", s, d, hops, m.Distance(s, d))
			}
			if m.DORNext(d, d) != Local {
				t.Errorf("DORNext(%d,%d) != Local", d, d)
			}
		}
	}
}

// TestProductiveDirsReduceDistance is a property test: every direction
// returned by ProductiveDirs strictly reduces the Manhattan distance, and
// the set is empty only at the destination.
func TestProductiveDirsReduceDistance(t *testing.T) {
	m := NewMesh(6, 6)
	f := func(si, di uint8) bool {
		s := NodeID(int(si) % m.Nodes())
		d := NodeID(int(di) % m.Nodes())
		dirs := m.ProductiveDirs(s, d, nil)
		if s == d {
			return len(dirs) == 0
		}
		if len(dirs) == 0 {
			return false
		}
		for _, dir := range dirs {
			nb, ok := m.Neighbor(s, dir)
			if !ok || m.Distance(nb, d) != m.Distance(s, d)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestDistanceProperties(t *testing.T) {
	m := NewMesh(7, 4)
	f := func(ai, bi uint8) bool {
		a := NodeID(int(ai) % m.Nodes())
		b := NodeID(int(bi) % m.Nodes())
		// symmetry, identity, triangle via node 0
		if m.Distance(a, b) != m.Distance(b, a) {
			return false
		}
		if (m.Distance(a, b) == 0) != (a == b) {
			return false
		}
		return m.Distance(a, b) <= m.Distance(a, 0)+m.Distance(0, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]Dir{{East, West}, {North, South}}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Errorf("Opposite broken for %s/%s", p[0], p[1])
		}
	}
	if Local.Opposite() != Local {
		t.Error("Opposite(Local) != Local")
	}
}

func TestNewMeshPanicsOnTinyDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMesh(1, 3) did not panic")
		}
	}()
	NewMesh(1, 3)
}

func TestContains(t *testing.T) {
	m := NewMesh(3, 3)
	if !m.Contains(0) || !m.Contains(8) {
		t.Error("valid nodes rejected")
	}
	if m.Contains(-1) || m.Contains(9) {
		t.Error("invalid nodes accepted")
	}
}

// TestNewMeshValidation is the table-driven guard against degenerate
// meshes: non-positive or sub-minimum dimensions must panic instead of
// silently constructing a mesh whose direction arithmetic is undefined.
func TestNewMeshValidation(t *testing.T) {
	cases := []struct {
		name   string
		w, h   int
		panics bool
	}{
		{"zero both", 0, 0, true},
		{"zero width", 0, 4, true},
		{"zero height", 4, 0, true},
		{"negative width", -3, 4, true},
		{"negative height", 4, -1, true},
		{"one by five", 1, 5, true},
		{"five by one", 5, 1, true},
		{"minimum", 2, 2, false},
		{"paper mesh", 3, 3, false},
		{"large radix", 16, 16, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != c.panics {
					t.Errorf("NewMesh(%d,%d) panic = %v, want panic %v", c.w, c.h, r, c.panics)
				}
			}()
			m := NewMesh(c.w, c.h)
			if !c.panics && m.Nodes() != c.w*c.h {
				t.Errorf("NewMesh(%d,%d).Nodes() = %d", c.w, c.h, m.Nodes())
			}
		})
	}
}

// TestNodeValidation checks Mesh.Node panics on out-of-range coordinates
// instead of aliasing them onto a valid but wrong NodeID.
func TestNodeValidation(t *testing.T) {
	m := NewMesh(4, 3)
	cases := []struct {
		name   string
		x, y   int
		panics bool
	}{
		{"origin", 0, 0, false},
		{"last", 3, 2, false},
		{"x too big", 4, 0, true},
		{"y too big", 0, 3, true},
		{"x negative", -1, 1, true},
		{"y negative", 1, -1, true},
		{"wraps to valid id", 4, 1, true}, // y*W+x = 8 is a valid NodeID of the wrong node
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); (r != nil) != c.panics {
					t.Errorf("Node(%d,%d) panic = %v, want panic %v", c.x, c.y, r, c.panics)
				}
			}()
			n := m.Node(c.x, c.y)
			if !c.panics && !m.Contains(n) {
				t.Errorf("Node(%d,%d) = %d not contained", c.x, c.y, n)
			}
		})
	}
}

// TestRoutesMatchDOR checks the precomputed per-source route tables hold
// exactly what DORNext and ProductiveDirs compute.
func TestRoutesMatchDOR(t *testing.T) {
	m := NewMesh(5, 4)
	for cur := NodeID(0); cur < NodeID(m.Nodes()); cur++ {
		rt := m.Routes(cur)
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
			if rt.DOR[dst] != m.DORNext(cur, dst) {
				t.Fatalf("Routes(%d).DOR[%d] = %s, want %s", cur, dst, rt.DOR[dst], m.DORNext(cur, dst))
			}
			want := m.ProductiveDirs(cur, dst, nil)
			ps := rt.Prod[dst]
			if int(ps.N) != len(want) {
				t.Fatalf("Routes(%d).Prod[%d] has %d dirs, want %d", cur, dst, ps.N, len(want))
			}
			for i, d := range want {
				if ps.D[i] != d {
					t.Fatalf("Routes(%d).Prod[%d][%d] = %s, want %s", cur, dst, i, ps.D[i], d)
				}
			}
		}
	}
}
