// Package topology models the 2D-mesh topology used by the AFC paper:
// node coordinates, port directions, dimension-ordered (XY) routing and the
// corner/edge/center position classes that parameterize AFC's local
// contention thresholds.
package topology

import "fmt"

// NodeID identifies a node (router + network interface) in a mesh.
// Nodes are numbered row-major: id = y*Width + x.
type NodeID int

// Dir is a router port direction. The four mesh directions are followed by
// Local, the port that connects the router to its network interface.
type Dir uint8

// Port directions. NumDirs counts only the mesh directions; NumPorts
// includes Local.
const (
	East Dir = iota
	West
	North
	South
	Local

	NumDirs  = 4
	NumPorts = 5
)

// String returns the conventional single-letter name of the direction.
func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case North:
		return "N"
	case South:
		return "S"
	case Local:
		return "L"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// Opposite returns the direction a flit sent on d arrives from at the
// neighboring router. Opposite(Local) is Local.
func (d Dir) Opposite() Dir {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	return Local
}

// Position classifies a router by its location in the mesh. AFC scales its
// contention thresholds by position because corner and edge routers have
// fewer ports (Section III-B of the paper).
type Position uint8

// Position classes.
const (
	Corner Position = iota
	Edge
	Center
)

// String implements fmt.Stringer.
func (p Position) String() string {
	switch p {
	case Corner:
		return "corner"
	case Edge:
		return "edge"
	case Center:
		return "center"
	}
	return fmt.Sprintf("Position(%d)", uint8(p))
}

// Mesh is a Width x Height 2D mesh.
type Mesh struct {
	Width  int
	Height int
}

// NewMesh returns a mesh of the given dimensions. It panics if either
// dimension is smaller than 2, since a mesh needs at least two nodes per
// dimension for the direction arithmetic to be meaningful.
func NewMesh(width, height int) Mesh {
	if width < 2 || height < 2 {
		panic(fmt.Sprintf("topology: mesh dimensions must be >= 2, got %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// Nodes returns the number of nodes in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the (x, y) coordinate of node n.
func (m Mesh) Coord(n NodeID) (x, y int) {
	return int(n) % m.Width, int(n) / m.Width
}

// Node returns the NodeID at coordinate (x, y). It panics when the
// coordinate lies outside the mesh: the row-major arithmetic would
// otherwise alias an out-of-range coordinate onto a valid but wrong node
// and the error would surface much later as misrouted traffic.
func (m Mesh) Node(x, y int) NodeID {
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		panic(fmt.Sprintf("topology: coordinate (%d,%d) outside %dx%d mesh", x, y, m.Width, m.Height))
	}
	return NodeID(y*m.Width + x)
}

// Contains reports whether n is a valid node of the mesh.
func (m Mesh) Contains(n NodeID) bool {
	return n >= 0 && int(n) < m.Nodes()
}

// Neighbor returns the node adjacent to n in direction d, and whether such a
// neighbor exists (it does not at mesh boundaries, and never for Local).
func (m Mesh) Neighbor(n NodeID, d Dir) (NodeID, bool) {
	x, y := m.Coord(n)
	switch d {
	case East:
		x++
	case West:
		x--
	case North:
		y--
	case South:
		y++
	default:
		return 0, false
	}
	if x < 0 || x >= m.Width || y < 0 || y >= m.Height {
		return 0, false
	}
	return m.Node(x, y), true
}

// Degree returns the number of mesh links at node n (2 for corners, 3 for
// edges, 4 for center nodes).
func (m Mesh) Degree(n NodeID) int {
	deg := 0
	for d := Dir(0); d < NumDirs; d++ {
		if _, ok := m.Neighbor(n, d); ok {
			deg++
		}
	}
	return deg
}

// Position classifies node n as Corner, Edge or Center.
func (m Mesh) Position(n NodeID) Position {
	switch m.Degree(n) {
	case 2:
		return Corner
	case 3:
		return Edge
	default:
		return Center
	}
}

// Distance returns the Manhattan (hop) distance between a and b.
func (m Mesh) Distance(a, b NodeID) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// DORNext returns the next-hop direction under dimension-ordered (XY)
// routing from cur toward dst. It returns Local when cur == dst.
// XY routing fully resolves the X offset before moving in Y, which is
// provably deadlock-free on a mesh.
func (m Mesh) DORNext(cur, dst NodeID) Dir {
	cx, cy := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch {
	case dx > cx:
		return East
	case dx < cx:
		return West
	case dy > cy:
		return South
	case dy < cy:
		return North
	default:
		return Local
	}
}

// ProductiveDirs appends to buf the directions that strictly reduce the
// distance from cur to dst and returns the extended slice. It returns buf
// unchanged when cur == dst (the productive "direction" is then Local,
// which the caller handles as ejection). The order is X-first to bias
// deflection routers toward DOR-like paths.
func (m Mesh) ProductiveDirs(cur, dst NodeID, buf []Dir) []Dir {
	cx, cy := m.Coord(cur)
	dx, dy := m.Coord(dst)
	switch {
	case dx > cx:
		buf = append(buf, East)
	case dx < cx:
		buf = append(buf, West)
	}
	switch {
	case dy > cy:
		buf = append(buf, South)
	case dy < cy:
		buf = append(buf, North)
	}
	return buf
}

// ProdSet is a packed productive-direction set: at most two directions
// exist on a 2D mesh (one per dimension), stored in preference order.
type ProdSet struct {
	N uint8
	D [2]Dir
}

// RouteTable holds one source node's per-destination routing decisions,
// precomputed so router hot paths replace DORNext's division arithmetic
// with a single table load. Both slices are indexed by destination NodeID
// and hold exactly what DORNext / ProductiveDirs return.
type RouteTable struct {
	DOR  []Dir
	Prod []ProdSet
}

// Routes returns cur's precomputed route table.
func (m Mesh) Routes(cur NodeID) RouteTable {
	t := RouteTable{
		DOR:  make([]Dir, m.Nodes()),
		Prod: make([]ProdSet, m.Nodes()),
	}
	var buf [2]Dir
	for n := 0; n < m.Nodes(); n++ {
		dst := NodeID(n)
		t.DOR[n] = m.DORNext(cur, dst)
		dirs := m.ProductiveDirs(cur, dst, buf[:0])
		t.Prod[n].N = uint8(len(dirs))
		copy(t.Prod[n].D[:], dirs)
	}
	return t
}

// Tables holds every node's route table and neighbor-direction list in
// four contiguous backing arrays, built once per network and aliased by
// all routers (and their deflectors). The per-source layout is row-major
// — source n's destinations occupy [n*Nodes, (n+1)*Nodes) — so the
// memory cost is one O(N²) block total instead of one per consumer:
// before Tables, every AFC router built two private copies (its own DOR
// table plus its deflector's full table), which at 64×64 would be
// gigabytes. The slices handed out are three-index subslices of the
// backing, so appends by a buggy caller fail loudly instead of
// corrupting a neighbor's table.
type Tables struct {
	mesh   Mesh
	dor    []Dir
	prod   []ProdSet
	nbr    []Dir
	nbrOff []int32
}

// NewTables precomputes the shared route tables for every node of the
// mesh.
func (m Mesh) NewTables() *Tables {
	nodes := m.Nodes()
	t := &Tables{
		mesh:   m,
		dor:    make([]Dir, nodes*nodes),
		prod:   make([]ProdSet, nodes*nodes),
		nbrOff: make([]int32, nodes+1),
	}
	var buf [2]Dir
	for cur := 0; cur < nodes; cur++ {
		base := cur * nodes
		for n := 0; n < nodes; n++ {
			dst := NodeID(n)
			t.dor[base+n] = m.DORNext(NodeID(cur), dst)
			dirs := m.ProductiveDirs(NodeID(cur), dst, buf[:0])
			t.prod[base+n].N = uint8(len(dirs))
			copy(t.prod[base+n].D[:], dirs)
		}
		for d := Dir(0); d < NumDirs; d++ {
			if _, ok := m.Neighbor(NodeID(cur), d); ok {
				t.nbr = append(t.nbr, d)
			}
		}
		t.nbrOff[cur+1] = int32(len(t.nbr))
	}
	return t
}

// Mesh returns the mesh the tables were built for.
func (t *Tables) Mesh() Mesh { return t.mesh }

// Routes returns cur's route table as views into the shared backing —
// contents identical to Mesh.Routes(cur), storage aliased across every
// caller.
func (t *Tables) Routes(cur NodeID) RouteTable {
	nodes := t.mesh.Nodes()
	lo, hi := int(cur)*nodes, (int(cur)+1)*nodes
	return RouteTable{
		DOR:  t.dor[lo:hi:hi],
		Prod: t.prod[lo:hi:hi],
	}
}

// Neighbors returns the wired mesh directions at cur in ascending Dir
// order — the order every router kind enumerates its ports — as a view
// into the shared backing.
func (t *Tables) Neighbors(cur NodeID) []Dir {
	lo, hi := t.nbrOff[cur], t.nbrOff[cur+1]
	return t.nbr[lo:hi:hi]
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
