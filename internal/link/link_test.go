package link

import (
	"math/rand"
	"testing"

	"afcnet/internal/flit"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPipeDelaysByLatency(t *testing.T) {
	for _, lat := range []int{1, 2, 3, 7} {
		p := NewPipe[int](lat)
		p.Send(10, 42)
		for c := uint64(10); c < 10+uint64(lat); c++ {
			if v, ok := p.Recv(c); ok {
				t.Fatalf("lat=%d: value %d visible at cycle %d (sent at 10)", lat, v, c)
			}
		}
		v, ok := p.Recv(10 + uint64(lat))
		if !ok || v != 42 {
			t.Fatalf("lat=%d: Recv at arrival = (%d,%v), want (42,true)", lat, v, ok)
		}
	}
}

func TestPipeRecvConsumes(t *testing.T) {
	p := NewPipe[int](2)
	p.Send(0, 1)
	if _, ok := p.Recv(2); !ok {
		t.Fatal("no value at arrival")
	}
	if _, ok := p.Recv(2); ok {
		t.Fatal("value not consumed by Recv")
	}
}

func TestPipePeekDoesNotConsume(t *testing.T) {
	p := NewPipe[int](1)
	p.Send(5, 9)
	if v, ok := p.Peek(6); !ok || v != 9 {
		t.Fatalf("Peek = (%d,%v)", v, ok)
	}
	if v, ok := p.Recv(6); !ok || v != 9 {
		t.Fatalf("Recv after Peek = (%d,%v)", v, ok)
	}
}

func TestPipeBackToBackFullBandwidth(t *testing.T) {
	p := NewPipe[uint64](3)
	// one send per cycle for 100 cycles, one receive per cycle 3 later
	for c := uint64(0); c < 103; c++ {
		if c < 100 {
			if !p.CanSend(c) {
				t.Fatalf("cannot send at cycle %d", c)
			}
			p.Send(c, c)
		}
		if c >= 3 {
			v, ok := p.Recv(c)
			if !ok || v != c-3 {
				t.Fatalf("Recv(%d) = (%d,%v), want (%d,true)", c, v, ok, c-3)
			}
		}
	}
	if got := p.Sends(); got != 100 {
		t.Errorf("Sends = %d, want 100", got)
	}
}

func TestPipeDoubleSendPanics(t *testing.T) {
	p := NewPipe[int](2)
	p.Send(4, 1)
	if p.CanSend(4) {
		t.Error("CanSend true after send in same cycle")
	}
	defer func() {
		if recover() == nil {
			t.Error("double send did not panic")
		}
	}()
	p.Send(4, 2)
}

func TestPipeMissedValueIsLost(t *testing.T) {
	p := NewPipe[int](1)
	p.Send(0, 7)
	// Not received at cycle 1; by cycle 2 the slot may be reused and the
	// stale value must not appear at later cycles of the ring.
	if _, ok := p.Recv(2); ok {
		t.Error("stale value visible at wrong cycle")
	}
}

func TestPipeInFlight(t *testing.T) {
	p := NewPipe[int](4)
	if p.InFlight() != 0 {
		t.Fatal("fresh pipe not empty")
	}
	p.Send(0, 1)
	p.Send(1, 2)
	if p.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", p.InFlight())
	}
	p.Recv(4)
	if p.InFlight() != 1 {
		t.Fatalf("InFlight after one Recv = %d, want 1", p.InFlight())
	}
}

func TestZeroLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPipe(0) did not panic")
		}
	}()
	NewPipe[int](0)
}

func TestTypedAliases(t *testing.T) {
	d := NewData(2)
	f := &flit.Flit{PacketID: 3}
	d.Send(0, f)
	got, ok := d.Recv(2)
	if !ok || got.PacketID != 3 {
		t.Fatalf("data link round trip failed: %v %v", got, ok)
	}

	c := NewCredit(1)
	c.Send(0, Credit{VC: 5, VN: flit.VNData})
	cr, ok := c.Recv(1)
	if !ok || cr.VC != 5 || cr.VN != flit.VNData {
		t.Fatalf("credit link round trip failed: %+v %v", cr, ok)
	}

	cl := NewCtrl(1)
	cl.Send(0, CtrlStartCredits)
	msg, ok := cl.Recv(1)
	if !ok || msg != CtrlStartCredits {
		t.Fatalf("ctrl link round trip failed: %v %v", msg, ok)
	}
}

func TestCtrlString(t *testing.T) {
	if CtrlStartCredits.String() != "start-credits" || CtrlStopCredits.String() != "stop-credits" {
		t.Error("Ctrl.String mismatch")
	}
}

// TestPipeModelBased drives a Pipe with random send/receive schedules and
// checks it behaves exactly like a delay line: every value emerges exactly
// latency cycles after its send, in order, with none lost (given a
// receiver that polls every cycle).
func TestPipeModelBased(t *testing.T) {
	type expect struct {
		at uint64
		v  int
	}
	for _, lat := range []int{1, 2, 5} {
		p := NewPipe[int](lat)
		rng := newRand(77 + int64(lat))
		var pending []expect
		next := 1
		for now := uint64(0); now < 5000; now++ {
			if rng.Float64() < 0.6 && p.CanSend(now) {
				p.Send(now, next)
				pending = append(pending, expect{at: now + uint64(lat), v: next})
				next++
			}
			got, ok := p.Recv(now)
			wantOK := len(pending) > 0 && pending[0].at == now
			if ok != wantOK {
				t.Fatalf("lat=%d cycle=%d: recv ok=%v, model says %v", lat, now, ok, wantOK)
			}
			if ok {
				if got != pending[0].v {
					t.Fatalf("lat=%d cycle=%d: got %d, model says %d", lat, now, got, pending[0].v)
				}
				pending = pending[1:]
			}
		}
	}
}
