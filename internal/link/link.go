// Package link provides the latched, fixed-latency channels that connect
// routers: data links carrying flits, credit links carrying credit
// backflow, and control lines carrying AFC's credit-tracking start/stop
// notifications.
//
// A Pipe is a cycle-indexed ring buffer: a value sent at cycle t with
// latency L becomes visible to the receiver exactly at cycle t+L and at no
// other time. Because every inter-router interaction is mediated by a
// Pipe, the order in which routers are ticked within a cycle cannot leak
// information — the simulator stays deterministic and composable.
package link

import (
	"fmt"

	"afcnet/internal/flit"
)

// Pipe is a single-value-per-cycle channel with a fixed latency of at
// least one cycle.
type Pipe[T any] struct {
	lat int
	// mask is len(vals)-1: the ring is sized to the next power of two at
	// or above lat+1, so slot() is a single AND instead of a hardware
	// divide on the hottest call in the simulator. Any ring of at least
	// lat+1 slots is correct — distinct cycles within one latency window
	// always map to distinct slots.
	mask     int
	vals     []T
	occupied []bool
	inflight int
	sends    uint64

	// tally, when non-nil, points at a receiver-owned aggregate
	// in-flight counter shared by every pipe inbound to one router: the
	// network gives all of a node's In/CreditIn/CtrlIn pipes the same
	// slot of a contiguous per-node slab, so the router's quiescence
	// check replaces up to twelve pipe dereferences with a single load.
	// The counter mirrors the sum of those pipes' inflight fields at
	// every observation point, because both move in the same places: a
	// ring commit (send) increments, a successful Recv decrements, and
	// Reset subtracts what the ring still held. Shard-safe by the same
	// argument as the ring itself — send() on a staged boundary pipe
	// runs in CommitStaged on the receiving shard's worker, unstaged
	// pipes connect endpoints of one shard, and Recv is the receiver's
	// own — so every access to a node's slot happens on the shard that
	// owns the node (or in serial phase).
	tally *int32

	// Staged-send mode for pipes that cross a shard boundary (see the
	// sharded tick in internal/network). When staged, Send parks the
	// value in a sender-owned register instead of touching the ring, so
	// the sending and receiving shards never write the same memory
	// within a parallel phase. The registers are double-buffered by
	// cycle parity: the sender parks into slot now&1 and self-registers
	// in its boundary's StagedBucket; the receiving shard commits the
	// opposite slot at the head of its next cycle's parallel pass
	// (CommitStaged), while the sender may already be parking the next
	// cycle's value in the other slot. Parity slots are distinct memory
	// locations and re-use of a slot two cycles later is ordered by the
	// intervening barrier, so no phase of the protocol shares memory
	// across shards. Timing is unchanged: a value parked at cycle t
	// commits at t+1 against its original send cycle, and latency >= 1
	// puts its arrival no earlier than t+1 — after the commit, which
	// runs before the receiving shard ticks its routers.
	staged    bool
	stagedSet [2]bool
	stagedAt  [2]uint64
	stagedVal [2]T
	bucket    *StagedBucket
}

// NewPipe returns a pipe with the given latency. It panics if lat < 1:
// zero-latency pipes would make results depend on tick order.
func NewPipe[T any](lat int) *Pipe[T] {
	if lat < 1 {
		panic(fmt.Sprintf("link: pipe latency must be >= 1, got %d", lat))
	}
	n := 1
	for n < lat+1 {
		n <<= 1
	}
	return &Pipe[T]{
		lat:      lat,
		mask:     n - 1,
		vals:     make([]T, n),
		occupied: make([]bool, n),
	}
}

// Latency returns the pipe's latency in cycles.
func (p *Pipe[T]) Latency() int { return p.lat }

// SetTally attaches (or, with nil, detaches) the receiver's aggregate
// in-flight counter. Build-time wiring owned by the network, like
// staging; Reset keeps it. Must be called while the pipe is empty —
// the counter starts mirroring from zero.
func (p *Pipe[T]) SetTally(t *int32) { p.tally = t }

// Reset empties the pipe and zeroes its counters, restoring the state of
// a freshly constructed pipe of the same latency (the backing arrays are
// kept). Part of the cross-cell network-reuse path.
func (p *Pipe[T]) Reset() {
	if p.tally != nil {
		*p.tally -= int32(p.inflight)
	}
	var zero T
	for i := range p.vals {
		p.vals[i] = zero
		p.occupied[i] = false
	}
	p.inflight = 0
	p.sends = 0
	// Clear any parked sends but keep the staged-mode wiring itself
	// (mode flag and bucket): like the latency, staging is build-time
	// wiring owned by the network, which clears the buckets in its own
	// Reset.
	for par := range p.stagedSet {
		p.stagedVal[par] = zero
		p.stagedSet[par] = false
		p.stagedAt[par] = 0
	}
}

// Sends returns the total number of values sent, for stats and energy
// accounting.
func (p *Pipe[T]) Sends() uint64 { return p.sends }

func (p *Pipe[T]) slot(cycle uint64) int {
	return int(cycle) & p.mask
}

// CanSend reports whether a value may be sent at cycle now (i.e. the
// arrival slot is free; it can only be occupied if the sender violated the
// one-per-cycle discipline).
func (p *Pipe[T]) CanSend(now uint64) bool {
	return p.inflight == 0 || !p.occupied[p.slot(now+uint64(p.lat))]
}

// Send schedules v to arrive at now+Latency(). It panics if a value was
// already sent this cycle, since physical links carry one value per cycle.
// On a staged pipe the send is parked sender-side in the slot of now's
// parity and registered in the boundary's bucket; the receiving shard
// commits it next cycle, before the arrival cycle (see the staged-field
// comment for the full protocol).
func (p *Pipe[T]) Send(now uint64, v T) {
	if p.staged {
		par := int(now) & 1
		if p.stagedSet[par] {
			panic(fmt.Sprintf("link: double send at cycle %d", now))
		}
		p.stagedVal[par] = v
		p.stagedAt[par] = now
		p.stagedSet[par] = true
		p.bucket.add(par, p)
		return
	}
	p.send(now, v)
}

func (p *Pipe[T]) send(now uint64, v T) {
	s := p.slot(now + uint64(p.lat))
	if p.occupied[s] {
		panic(fmt.Sprintf("link: double send at cycle %d", now))
	}
	p.vals[s] = v
	p.occupied[s] = true
	p.inflight++
	p.sends++
	if p.tally != nil {
		*p.tally++
	}
}

// SetStaged switches the pipe into staged-send mode, parking sends for
// the given boundary bucket. The network marks the pipes whose sender
// and receiver land in different shards; all other pipes keep the
// direct path with zero new work. Passing nil switches staging off.
func (p *Pipe[T]) SetStaged(b *StagedBucket) {
	p.staged = b != nil
	p.bucket = b
}

// Staged reports whether the pipe is in staged-send mode.
func (p *Pipe[T]) Staged() bool { return p.staged }

// CommitStaged applies the send parked in the given parity slot, if
// any. Called by the receiving shard's worker at the head of its
// parallel pass — owner-side commit: the committer is the only shard
// reading the pipe's ring, so no serial drain step is needed.
func (p *Pipe[T]) CommitStaged(par int) {
	if !p.stagedSet[par] {
		return
	}
	v, at := p.stagedVal[par], p.stagedAt[par]
	var zero T
	p.stagedVal[par] = zero
	p.stagedSet[par] = false
	p.send(at, v)
}

// Committer is the type-erased handle a StagedBucket keeps per parked
// send so the owning shard can commit data, credit and control pipes
// uniformly.
type Committer interface {
	CommitStaged(par int)
}

// StagedBucket collects the pipes of one directed shard boundary that
// parked a send this cycle, split by cycle parity. Exactly one shard
// writes a bucket (the boundary's sender side registers itself in Send)
// and exactly one other shard drains it (the owner commits the previous
// cycle's parity at the head of its pass), with the kernel barrier
// ordering the two — so neither slice is ever touched by two shards in
// the same phase. A pipe appears at most once per slot per cycle (the
// one-send-per-cycle discipline), and slices keep their capacity across
// cycles, so the steady state allocates nothing.
type StagedBucket struct {
	pend [2][]Committer
}

// add registers a parked send for the owner's next commit pass. Called
// by Pipe.Send on the boundary's sending shard.
func (b *StagedBucket) add(par int, c Committer) {
	b.pend[par] = append(b.pend[par], c)
}

// Commit applies every send parked in the given parity slot, in the
// sender's deterministic tick order, and empties the slot. Returns
// whether anything was committed, so the owner can wake its band.
func (b *StagedBucket) Commit(par int) bool {
	pend := b.pend[par]
	if len(pend) == 0 {
		return false
	}
	for _, c := range pend {
		c.CommitStaged(par)
	}
	b.pend[par] = pend[:0]
	return true
}

// Pending reports whether either parity slot holds uncommitted sends.
// Serial-side read (quiescence and drain checks between cycles).
func (b *StagedBucket) Pending() bool {
	return len(b.pend[0]) > 0 || len(b.pend[1]) > 0
}

// Reset empties both parity slots without committing, for network
// reset: the pipes' own Reset discards the parked values themselves.
func (b *StagedBucket) Reset() {
	b.pend[0] = b.pend[0][:0]
	b.pend[1] = b.pend[1][:0]
}

// Recv returns the value arriving at cycle now, if any, and clears the
// slot. A value not received at its arrival cycle is lost; receivers must
// therefore poll every cycle (all routers do).
func (p *Pipe[T]) Recv(now uint64) (T, bool) {
	// Empty-pipe fast path: every router polls every wired pipe every
	// active cycle, and most polls find nothing. One counter load beats
	// the slot arithmetic plus occupied-array load.
	if p.inflight == 0 {
		var zero T
		return zero, false
	}
	s := p.slot(now)
	if !p.occupied[s] {
		var zero T
		return zero, false
	}
	v := p.vals[s]
	var zero T
	p.vals[s] = zero
	p.occupied[s] = false
	p.inflight--
	if p.tally != nil {
		*p.tally--
	}
	return v, true
}

// Peek returns the value arriving at cycle now without consuming it.
func (p *Pipe[T]) Peek(now uint64) (T, bool) {
	if p.inflight == 0 {
		var zero T
		return zero, false
	}
	s := p.slot(now)
	if !p.occupied[s] {
		var zero T
		return zero, false
	}
	return p.vals[s], true
}

// InFlight counts values currently traveling in the pipe (sent but not
// yet received). O(1): routers consult it every cycle to decide
// quiescence. A value that is never received stays counted — receivers
// must poll every cycle while the pipe is occupied (all routers do; the
// quiescence contract itself guarantees a router with occupied input
// pipes keeps ticking). Parked staged sends are deliberately excluded:
// the receiving shard reads this counter concurrently with the sender's
// parking, so it must only cover the ring the receiver owns. Serial
// observers that need parked sends use PendingStaged or AppendInFlight.
func (p *Pipe[T]) InFlight() int { return p.inflight }

// PendingStaged reports whether a staged-mode send is parked in either
// parity slot, not yet committed into the ring. Serial-side read (the
// network's Drained scan); always false on unstaged pipes.
func (p *Pipe[T]) PendingStaged() bool { return p.stagedSet[0] || p.stagedSet[1] }

// StagedAt returns the value parked by a staged-mode Send at cycle at,
// if any. Serial-side read: the invariant checker uses it to observe a
// boundary pipe's current-cycle send, which Peek cannot see until the
// owner commits it next cycle. Always misses on unstaged pipes.
func (p *Pipe[T]) StagedAt(at uint64) (T, bool) {
	par := int(at) & 1
	if p.stagedSet[par] && p.stagedAt[par] == at {
		return p.stagedVal[par], true
	}
	var zero T
	return zero, false
}

// AppendInFlight appends the values currently traveling in the pipe
// (sent but not yet received) to buf and returns it, including sends
// still parked in staged-mode parity slots — to the serial-side
// observer (the invariant checker's conservation scan) a parked send is
// as in-flight as a committed one. Slot order, not send order; the
// checker only counts, so order is irrelevant.
func (p *Pipe[T]) AppendInFlight(buf []T) []T {
	for i, occ := range p.occupied {
		if occ {
			buf = append(buf, p.vals[i])
		}
	}
	for par, set := range p.stagedSet {
		if set {
			buf = append(buf, p.stagedVal[par])
		}
	}
	return buf
}

// Credit is a unit of credit backflow: the downstream router freed one
// buffer slot. The baseline backpressured router tracks credits per VC;
// AFC's lazy VC allocation tracks them per virtual network, so the message
// carries both identifiers and each receiver reads the one it uses.
type Credit struct {
	VC int
	VN flit.VN
}

// Ctrl is a control-line notification between adjacent AFC routers
// (Section III-A: a special control line indicates when to start/stop
// credit tracking as the sender switches modes).
type Ctrl uint8

// Control notifications.
const (
	// CtrlStartCredits: the sender is switching to backpressured mode;
	// start counting credits (the sender's buffers are empty, so the
	// initial credit count is the full buffer capacity).
	CtrlStartCredits Ctrl = iota + 1
	// CtrlStopCredits: the sender has switched to backpressureless mode;
	// stop credit accounting and treat the sender as always-accepting.
	CtrlStopCredits
)

// String implements fmt.Stringer.
func (c Ctrl) String() string {
	switch c {
	case CtrlStartCredits:
		return "start-credits"
	case CtrlStopCredits:
		return "stop-credits"
	}
	return fmt.Sprintf("Ctrl(%d)", uint8(c))
}

// Data is a flit-carrying link.
type Data = Pipe[*flit.Flit]

// CreditLink carries credit backflow.
type CreditLink = Pipe[Credit]

// CtrlLink carries mode-switch notifications.
type CtrlLink = Pipe[Ctrl]

// NewData returns a flit link with the given latency.
func NewData(lat int) *Data { return NewPipe[*flit.Flit](lat) }

// NewCredit returns a credit link with the given latency.
func NewCredit(lat int) *CreditLink { return NewPipe[Credit](lat) }

// NewCtrl returns a control line with the given latency.
func NewCtrl(lat int) *CtrlLink { return NewPipe[Ctrl](lat) }

// Slab preallocates a fixed number of same-latency pipes as one
// contiguous block: the Pipe structs sit in a single backing array and
// their rings are carved from two shared arrays, in carve order. The
// network carves its links in ascending-node wiring order, which for
// row-banded shards is band-major — a shard's boundary traffic and its
// routers' inbound rings land in one contiguous working set instead of
// thousands of individually heap-allocated rings.
type Slab[T any] struct {
	lat     int
	ringLen int
	pipes   []Pipe[T]
	vals    []T
	occ     []bool
	next    int
}

// NewSlab returns a slab of count pipes with the given latency. Like
// NewPipe it panics on lat < 1.
func NewSlab[T any](count, lat int) *Slab[T] {
	if lat < 1 {
		panic(fmt.Sprintf("link: pipe latency must be >= 1, got %d", lat))
	}
	n := 1
	for n < lat+1 {
		n <<= 1
	}
	return &Slab[T]{
		lat:     lat,
		ringLen: n,
		pipes:   make([]Pipe[T], count),
		vals:    make([]T, count*n),
		occ:     make([]bool, count*n),
	}
}

// New carves the next pipe from the slab. It panics when the slab is
// exhausted — the caller sized it from the same edge enumeration it
// carves with, so running out is a wiring bug, not a resize condition.
func (s *Slab[T]) New() *Pipe[T] {
	if s.next >= len(s.pipes) {
		panic("link: pipe slab exhausted")
	}
	p := &s.pipes[s.next]
	lo, hi := s.next*s.ringLen, (s.next+1)*s.ringLen
	*p = Pipe[T]{
		lat:      s.lat,
		mask:     s.ringLen - 1,
		vals:     s.vals[lo:hi:hi],
		occupied: s.occ[lo:hi:hi],
	}
	s.next++
	return p
}
