// Package link provides the latched, fixed-latency channels that connect
// routers: data links carrying flits, credit links carrying credit
// backflow, and control lines carrying AFC's credit-tracking start/stop
// notifications.
//
// A Pipe is a cycle-indexed ring buffer: a value sent at cycle t with
// latency L becomes visible to the receiver exactly at cycle t+L and at no
// other time. Because every inter-router interaction is mediated by a
// Pipe, the order in which routers are ticked within a cycle cannot leak
// information — the simulator stays deterministic and composable.
package link

import (
	"fmt"

	"afcnet/internal/flit"
)

// Pipe is a single-value-per-cycle channel with a fixed latency of at
// least one cycle.
type Pipe[T any] struct {
	lat int
	// mask is len(vals)-1: the ring is sized to the next power of two at
	// or above lat+1, so slot() is a single AND instead of a hardware
	// divide on the hottest call in the simulator. Any ring of at least
	// lat+1 slots is correct — distinct cycles within one latency window
	// always map to distinct slots.
	mask     int
	vals     []T
	occupied []bool
	inflight int
	sends    uint64

	// Staged-send mode for pipes that cross a shard boundary (see the
	// sharded tick in internal/network). When staged, Send parks the
	// value in a sender-owned register instead of touching the ring, so
	// the sending and receiving shards never write the same memory
	// within a parallel phase; CommitStaged applies the parked send
	// during the serial drain. One register suffices because the
	// one-value-per-cycle discipline already forbids a second Send
	// before the commit.
	staged    bool
	stagedSet bool
	stagedAt  uint64
	stagedVal T
}

// NewPipe returns a pipe with the given latency. It panics if lat < 1:
// zero-latency pipes would make results depend on tick order.
func NewPipe[T any](lat int) *Pipe[T] {
	if lat < 1 {
		panic(fmt.Sprintf("link: pipe latency must be >= 1, got %d", lat))
	}
	n := 1
	for n < lat+1 {
		n <<= 1
	}
	return &Pipe[T]{
		lat:      lat,
		mask:     n - 1,
		vals:     make([]T, n),
		occupied: make([]bool, n),
	}
}

// Latency returns the pipe's latency in cycles.
func (p *Pipe[T]) Latency() int { return p.lat }

// Reset empties the pipe and zeroes its counters, restoring the state of
// a freshly constructed pipe of the same latency (the backing arrays are
// kept). Part of the cross-cell network-reuse path.
func (p *Pipe[T]) Reset() {
	var zero T
	for i := range p.vals {
		p.vals[i] = zero
		p.occupied[i] = false
	}
	p.inflight = 0
	p.sends = 0
	// Clear any parked send but keep the staged-mode flag itself: like
	// the latency, staging is build-time wiring owned by the network.
	p.stagedVal = zero
	p.stagedSet = false
	p.stagedAt = 0
}

// Sends returns the total number of values sent, for stats and energy
// accounting.
func (p *Pipe[T]) Sends() uint64 { return p.sends }

func (p *Pipe[T]) slot(cycle uint64) int {
	return int(cycle) & p.mask
}

// CanSend reports whether a value may be sent at cycle now (i.e. the
// arrival slot is free; it can only be occupied if the sender violated the
// one-per-cycle discipline).
func (p *Pipe[T]) CanSend(now uint64) bool {
	return p.inflight == 0 || !p.occupied[p.slot(now+uint64(p.lat))]
}

// Send schedules v to arrive at now+Latency(). It panics if a value was
// already sent this cycle, since physical links carry one value per cycle.
// On a staged pipe the send is parked sender-side until CommitStaged —
// timing is unchanged because the commit happens within the same cycle.
func (p *Pipe[T]) Send(now uint64, v T) {
	if p.staged {
		if p.stagedSet {
			panic(fmt.Sprintf("link: double send at cycle %d", now))
		}
		p.stagedVal = v
		p.stagedAt = now
		p.stagedSet = true
		return
	}
	p.send(now, v)
}

func (p *Pipe[T]) send(now uint64, v T) {
	s := p.slot(now + uint64(p.lat))
	if p.occupied[s] {
		panic(fmt.Sprintf("link: double send at cycle %d", now))
	}
	p.vals[s] = v
	p.occupied[s] = true
	p.inflight++
	p.sends++
}

// SetStaged switches the pipe into (or out of) staged-send mode. The
// network marks the pipes whose sender and receiver land in different
// shards; all other pipes keep the direct path with zero new work.
func (p *Pipe[T]) SetStaged(on bool) { p.staged = on }

// Staged reports whether the pipe is in staged-send mode.
func (p *Pipe[T]) Staged() bool { return p.staged }

// CommitStaged applies the send parked by a staged-mode Send, if any.
// Called from the serial drain of the sharded tick, in a fixed global
// order, before any other component of the cycle observes the pipe.
func (p *Pipe[T]) CommitStaged() {
	if !p.stagedSet {
		return
	}
	v, at := p.stagedVal, p.stagedAt
	var zero T
	p.stagedVal = zero
	p.stagedSet = false
	p.send(at, v)
}

// Committer is the type-erased handle the network keeps per staged pipe
// so its drain can commit data, credit and control pipes uniformly.
type Committer interface {
	CommitStaged()
}

// Recv returns the value arriving at cycle now, if any, and clears the
// slot. A value not received at its arrival cycle is lost; receivers must
// therefore poll every cycle (all routers do).
func (p *Pipe[T]) Recv(now uint64) (T, bool) {
	// Empty-pipe fast path: every router polls every wired pipe every
	// active cycle, and most polls find nothing. One counter load beats
	// the slot arithmetic plus occupied-array load.
	if p.inflight == 0 {
		var zero T
		return zero, false
	}
	s := p.slot(now)
	if !p.occupied[s] {
		var zero T
		return zero, false
	}
	v := p.vals[s]
	var zero T
	p.vals[s] = zero
	p.occupied[s] = false
	p.inflight--
	return v, true
}

// Peek returns the value arriving at cycle now without consuming it.
func (p *Pipe[T]) Peek(now uint64) (T, bool) {
	if p.inflight == 0 {
		var zero T
		return zero, false
	}
	s := p.slot(now)
	if !p.occupied[s] {
		var zero T
		return zero, false
	}
	return p.vals[s], true
}

// InFlight counts values currently traveling in the pipe (sent but not
// yet received). O(1): routers consult it every cycle to decide
// quiescence. A value that is never received stays counted — receivers
// must poll every cycle while the pipe is occupied (all routers do; the
// quiescence contract itself guarantees a router with occupied input
// pipes keeps ticking).
func (p *Pipe[T]) InFlight() int { return p.inflight }

// AppendInFlight appends the values currently traveling in the pipe
// (sent but not yet received) to buf and returns it. Slot order, not
// send order; the invariant checker only counts, so order is irrelevant.
func (p *Pipe[T]) AppendInFlight(buf []T) []T {
	for i, occ := range p.occupied {
		if occ {
			buf = append(buf, p.vals[i])
		}
	}
	return buf
}

// Credit is a unit of credit backflow: the downstream router freed one
// buffer slot. The baseline backpressured router tracks credits per VC;
// AFC's lazy VC allocation tracks them per virtual network, so the message
// carries both identifiers and each receiver reads the one it uses.
type Credit struct {
	VC int
	VN flit.VN
}

// Ctrl is a control-line notification between adjacent AFC routers
// (Section III-A: a special control line indicates when to start/stop
// credit tracking as the sender switches modes).
type Ctrl uint8

// Control notifications.
const (
	// CtrlStartCredits: the sender is switching to backpressured mode;
	// start counting credits (the sender's buffers are empty, so the
	// initial credit count is the full buffer capacity).
	CtrlStartCredits Ctrl = iota + 1
	// CtrlStopCredits: the sender has switched to backpressureless mode;
	// stop credit accounting and treat the sender as always-accepting.
	CtrlStopCredits
)

// String implements fmt.Stringer.
func (c Ctrl) String() string {
	switch c {
	case CtrlStartCredits:
		return "start-credits"
	case CtrlStopCredits:
		return "stop-credits"
	}
	return fmt.Sprintf("Ctrl(%d)", uint8(c))
}

// Data is a flit-carrying link.
type Data = Pipe[*flit.Flit]

// CreditLink carries credit backflow.
type CreditLink = Pipe[Credit]

// CtrlLink carries mode-switch notifications.
type CtrlLink = Pipe[Ctrl]

// NewData returns a flit link with the given latency.
func NewData(lat int) *Data { return NewPipe[*flit.Flit](lat) }

// NewCredit returns a credit link with the given latency.
func NewCredit(lat int) *CreditLink { return NewPipe[Credit](lat) }

// NewCtrl returns a control line with the given latency.
func NewCtrl(lat int) *CtrlLink { return NewPipe[Ctrl](lat) }
