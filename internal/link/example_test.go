package link_test

import (
	"fmt"

	"afcnet/internal/flit"
	"afcnet/internal/link"
)

func ExamplePipe() {
	// A 2-cycle link: a flit sent at cycle 10 is visible exactly at 12.
	l := link.NewData(2)
	l.Send(10, &flit.Flit{PacketID: 1})
	if _, ok := l.Recv(11); !ok {
		fmt.Println("nothing at cycle 11")
	}
	f, _ := l.Recv(12)
	fmt.Println("arrived:", f.PacketID)
	// Output:
	// nothing at cycle 11
	// arrived: 1
}
