// Package stats provides the measurement utilities used across the
// simulator: the paper's smoothed traffic-intensity monitor (a 4-cycle
// window average further smoothed by an exponentially weighted moving
// average), latency histograms, and across-run aggregation (the paper's
// variance bars come from repeated runs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// IntensityMonitor implements AFC's local traffic-intensity metric
// (Section III-B): the number of network flits traversing the router
// averaged over the previous 4 cycles, smoothed with an EWMA:
//
//	m_new = w*m_old + (1-w)*l
//
// with w = 0.99 in the paper.
type IntensityMonitor struct {
	weight float64
	window [4]int
	// sum is the running total of the window entries, maintained
	// incrementally (integer addition is exact, so it always equals the
	// sum a scan of the window would produce).
	sum    int
	idx    int
	filled int
	ewma   float64
}

// NewIntensityMonitor returns a monitor with EWMA weight w (the paper uses
// 0.99). It panics if w is outside (0, 1).
func NewIntensityMonitor(w float64) *IntensityMonitor {
	m := &IntensityMonitor{}
	m.Init(w)
	return m
}

// Init (re)initializes a monitor in place with the given EWMA weight,
// for monitors embedded by value in slab-resident router state. Panics
// like NewIntensityMonitor on an out-of-range weight.
func (m *IntensityMonitor) Init(w float64) {
	if w <= 0 || w >= 1 {
		panic(fmt.Sprintf("stats: EWMA weight must be in (0,1), got %g", w))
	}
	*m = IntensityMonitor{weight: w}
}

// Observe records the number of flits that traversed the router this cycle
// and updates the smoothed intensity.
func (m *IntensityMonitor) Observe(flits int) {
	m.sum += flits - m.window[m.idx]
	m.window[m.idx] = flits
	m.idx = (m.idx + 1) % len(m.window)
	if m.filled == len(m.window) {
		// Multiplying by the exact reciprocal of a power of two is
		// bit-identical to the division the reference computed.
		l := float64(m.sum) * 0.25
		m.ewma = m.weight*m.ewma + (1-m.weight)*l
		return
	}
	m.filled++
	l := float64(m.sum) / float64(m.filled)
	m.ewma = m.weight*m.ewma + (1-m.weight)*l
}

// ObserveIdle records k consecutive zero-flit cycles, bit-for-bit
// identical to k Observe(0) calls (a literal replay of the window
// rotation and EWMA update, so float rounding matches the dense
// reference kernel exactly). Used by the active-set kernel to
// fast-forward skipped idle cycles. Once the window is clear and full,
// each Observe(0) reduces to ewma = w*ewma + (1-w)*0, and adding a
// positive zero is a float identity — the loop below replays exactly
// that multiply chain without the window bookkeeping.
func (m *IntensityMonitor) ObserveIdle(k uint64) {
	if m.sum == 0 && m.filled == len(m.window) && m.window == [4]int{} {
		for ; k > 0; k-- {
			m.ewma = m.weight * m.ewma
		}
		return
	}
	for ; k > 0; k-- {
		m.Observe(0)
	}
}

// WindowClear reports whether every entry of the 4-cycle window is zero.
// Once true, further Observe(0) calls can only decay the EWMA (the
// window average is 0, so the EWMA moves monotonically toward 0) — the
// condition AFC's quiescence check needs to rule out a threshold
// crossing during skipped idle cycles.
func (m *IntensityMonitor) WindowClear() bool { return m.window == [4]int{} }

// Value returns the current smoothed traffic intensity in flits/cycle.
func (m *IntensityMonitor) Value() float64 { return m.ewma }

// Reset clears the monitor back to zero intensity.
func (m *IntensityMonitor) Reset() {
	*m = IntensityMonitor{weight: m.weight}
}

// Histogram is a simple integer-valued histogram with exact small values
// and power-of-two overflow buckets, adequate for latency distributions.
type Histogram struct {
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
	values []uint64 // retained samples for percentile queries
	sorted []uint64 // cached sort of values; valid while !dirty
	dirty  bool     // values changed since sorted was built
	cap    int
	stride int
	seen   int
}

// NewHistogram returns a histogram that retains up to capacity samples
// (systematically thinned once full) for percentile queries while keeping
// exact count/sum/min/max.
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = 4096
	}
	// Preallocate the full retention buffer: Add's append would otherwise
	// grow it doubling-by-doubling across the first ~capacity samples,
	// which on large meshes spreads construction cost over the measured
	// steady state (the kernel's zero-allocation contract).
	return &Histogram{min: math.MaxUint64, cap: capacity, stride: 1,
		values: make([]uint64, 0, capacity)}
}

// Reset empties the histogram while keeping the retained-sample backing
// arrays, so a reused histogram behaves bit-for-bit like a fresh
// NewHistogram of the same capacity without reallocating.
func (h *Histogram) Reset() {
	h.count = 0
	h.sum = 0
	h.min = math.MaxUint64
	h.max = 0
	h.values = h.values[:0]
	h.sorted = h.sorted[:0]
	h.dirty = false
	h.stride = 1
	h.seen = 0
}

// Add records a sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.seen++
	if h.seen%h.stride != 0 {
		return
	}
	if len(h.values) >= h.cap {
		// Thin: keep every other retained sample and double the
		// stride so memory stays bounded on long runs.
		kept := h.values[:0]
		for i := 0; i < len(h.values); i += 2 {
			kept = append(kept, h.values[i])
		}
		h.values = kept
		h.stride *= 2
		h.dirty = true
		if h.seen%h.stride != 0 {
			// The triggering sample is off the doubled stride's grid;
			// retaining it anyway would over-represent thin boundaries.
			return
		}
	}
	h.values = append(h.values, v)
	h.dirty = true
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean sample value, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns the p-th percentile (0 < p <= 100) of the retained
// samples, or 0 with no samples. It panics when p lies outside (0, 100]:
// the clamped index arithmetic below would otherwise silently map p=0 to
// the minimum and p>100 to the maximum, masking a caller bug.
func (h *Histogram) Percentile(p float64) uint64 {
	if p <= 0 || p > 100 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: percentile %v outside (0, 100]", p))
	}
	if len(h.values) == 0 {
		return 0
	}
	if h.dirty || len(h.sorted) != len(h.values) {
		h.sorted = append(h.sorted[:0], h.values...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
		h.dirty = false
	}
	idx := int(math.Ceil(p/100*float64(len(h.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.sorted) {
		idx = len(h.sorted) - 1
	}
	return h.sorted[idx]
}

// EachRetained calls fn for every retained sample in insertion order.
// Together with Stride it lets a caller merge several histograms into
// one (the scenario engine aggregates per-node phase histograms this
// way): Add each retained sample Stride times to preserve its weight.
func (h *Histogram) EachRetained(fn func(v uint64)) {
	for _, v := range h.values {
		fn(v)
	}
}

// Stride returns the current thinning stride: each retained sample
// stands for Stride recorded samples.
func (h *Histogram) Stride() int { return h.stride }

// Running accumulates mean and standard deviation incrementally
// (Welford's algorithm). It aggregates metrics across repeated runs with
// different seeds, mirroring the paper's variance bars.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add records a sample.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean.
func (r *Running) Mean() float64 { return r.mean }

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func (r *Running) StdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// GeoMean returns the geometric mean of xs; it panics on non-positive
// inputs because normalized performance/energy ratios are always positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean requires positive values, got %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
