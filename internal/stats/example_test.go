package stats_test

import (
	"fmt"

	"afcnet/internal/stats"
)

func ExampleIntensityMonitor() {
	// The paper's traffic-intensity metric: 4-cycle window average
	// smoothed by an EWMA (weight 0.99). A steady load of 3 flits/cycle
	// converges to 3.
	m := stats.NewIntensityMonitor(0.99)
	for i := 0; i < 3000; i++ {
		m.Observe(3)
	}
	fmt.Printf("%.2f\n", m.Value())
	// Output: 3.00
}

func ExampleGeoMean() {
	fmt.Println(stats.GeoMean([]float64{1, 4, 16}))
	// Output: 4
}
