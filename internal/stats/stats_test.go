package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntensityMonitorWindowAverage(t *testing.T) {
	m := NewIntensityMonitor(0.5) // strong response for testability
	// Constant load l: EWMA converges to l.
	for i := 0; i < 200; i++ {
		m.Observe(4)
	}
	if got := m.Value(); math.Abs(got-4) > 1e-9 {
		t.Errorf("EWMA under constant load = %g, want 4", got)
	}
}

func TestIntensityMonitorSmoothsBursts(t *testing.T) {
	// The paper smooths with a 4-cycle window and EWMA 0.99 precisely so
	// a one-cycle burst cannot trigger a mode switch.
	m := NewIntensityMonitor(0.99)
	for i := 0; i < 100; i++ {
		m.Observe(0)
	}
	m.Observe(5) // burst
	if got := m.Value(); got > 0.1 {
		t.Errorf("one-cycle burst moved EWMA to %g; too reactive", got)
	}
}

func TestIntensityMonitorTracksStepLoad(t *testing.T) {
	m := NewIntensityMonitor(0.99)
	for i := 0; i < 2000; i++ {
		m.Observe(3)
	}
	if got := m.Value(); math.Abs(got-3) > 0.01 {
		t.Errorf("EWMA after 2000 cycles of load 3 = %g", got)
	}
	m.Reset()
	if m.Value() != 0 {
		t.Error("Reset did not zero the monitor")
	}
}

func TestIntensityMonitorPanicsOnBadWeight(t *testing.T) {
	for _, w := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight %g did not panic", w)
				}
			}()
			NewIntensityMonitor(w)
		}()
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(100)
	for i := uint64(1); i <= 10; i++ {
		h.Add(i)
	}
	if h.Count() != 10 || h.Min() != 1 || h.Max() != 10 {
		t.Errorf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("mean = %g", got)
	}
	if p := h.Percentile(50); p < 5 || p > 6 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(100); p != 10 {
		t.Errorf("p100 = %d", p)
	}
}

func TestHistogramEmptyIsSafe(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramThinningKeepsExactAggregates(t *testing.T) {
	h := NewHistogram(64)
	var sum uint64
	for i := uint64(0); i < 10_000; i++ {
		h.Add(i)
		sum += i
	}
	if h.Count() != 10_000 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-float64(sum)/10_000) > 1e-9 {
		t.Errorf("mean drifted after thinning: %g", got)
	}
	// Percentiles stay approximately right after thinning.
	if p := h.Percentile(50); p < 3_000 || p > 7_000 {
		t.Errorf("p50 after thinning = %d", p)
	}
}

// TestHistogramThinBoundaryStride: the sample that triggers a thin must
// obey the doubled stride like every other sample. Historically it was
// appended unconditionally, so thin-boundary samples were systematically
// over-represented in the retained set. With capacity 4 and sequential
// input the whole retention schedule is small enough to pin exactly.
func TestHistogramThinBoundaryStride(t *testing.T) {
	h := NewHistogram(4)
	for i := uint64(1); i <= 100; i++ {
		h.Add(i)
	}
	// Thins at seen = 5, 10, 20, 40, 80; each doubles the stride, and the
	// triggers (5, 10, 20, 40, 80) all fall off the doubled grid.
	if h.stride != 32 {
		t.Errorf("stride = %d, want 32", h.stride)
	}
	if want := []uint64{1, 48, 96}; !reflect.DeepEqual(h.values, want) {
		t.Errorf("retained samples = %v, want %v", h.values, want)
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Errorf("exact aggregates drifted: count/min/max = %d/%d/%d",
			h.Count(), h.Min(), h.Max())
	}
}

// TestHistogramThinnedPercentilesUniform: after heavy thinning, the
// retained set still represents a uniform input stream — every decile
// lands near its true value.
func TestHistogramThinnedPercentilesUniform(t *testing.T) {
	h := NewHistogram(64)
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		h.Add(i)
	}
	for _, p := range []float64{10, 25, 50, 75, 90} {
		got := float64(h.Percentile(p))
		want := p / 100 * n
		if math.Abs(got-want) > 0.12*n {
			t.Errorf("p%.0f after thinning = %g, want ~%g", p, got, want)
		}
	}
}

// TestHistogramPercentileCacheInvalidation: Percentile caches its sorted
// slice; the cache must be rebuilt after further Adds (including thins).
func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	h := NewHistogram(1000)
	for i := uint64(1); i <= 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(50); p != 50 {
		t.Errorf("p50 of 1..100 = %d, want 50", p)
	}
	for i := uint64(1000); i < 1100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(50); p != 100 {
		t.Errorf("p50 after second batch = %d, want 100", p)
	}
	if p := h.Percentile(100); p != 1099 {
		t.Errorf("p100 after second batch = %d, want 1099", p)
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		mean := 0.0
		for _, x := range raw {
			// bound magnitudes to keep float comparisons stable
			x = math.Mod(x, 1000)
			if math.IsNaN(x) {
				return true
			}
			r.Add(x)
			mean += x
		}
		mean /= float64(len(raw))
		if math.Abs(r.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		variance := 0.0
		i := 0
		for _, x := range raw {
			x = math.Mod(x, 1000)
			variance += (x - mean) * (x - mean)
			i++
		}
		variance /= float64(len(raw) - 1)
		return math.Abs(r.StdDev()-math.Sqrt(variance)) < 1e-6*(1+math.Sqrt(variance))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestRunningFewSamples(t *testing.T) {
	var r Running
	if r.StdDev() != 0 || r.Mean() != 0 || r.N() != 0 {
		t.Error("zero-value Running should be all zeros")
	}
	r.Add(7)
	if r.Mean() != 7 || r.StdDev() != 0 || r.N() != 1 {
		t.Error("single-sample Running wrong")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %g, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive value did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// TestHistogramPercentileDomain: p outside (0, 100] must panic instead
// of silently clamping (p=0 would quietly return the minimum, p>100 the
// maximum, masking a caller bug). Valid edge queries still work on a
// thinned histogram.
func TestHistogramPercentileDomain(t *testing.T) {
	h := NewHistogram(64)
	for i := uint64(1); i <= 10_000; i++ {
		h.Add(i)
	}
	for _, p := range []float64{0, -1, 100.001, 150, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			h.Percentile(p)
		}()
	}
	// The domain edges are legal, including on a heavily thinned
	// histogram (stride > 1 by now).
	if h.Stride() <= 1 {
		t.Fatalf("stride = %d, expected thinning to have kicked in", h.Stride())
	}
	if p := h.Percentile(100); p != h.Max() && p < 9_000 {
		t.Errorf("p100 = %d, want near max %d", p, h.Max())
	}
	if p := h.Percentile(0.1); p > 1_000 {
		t.Errorf("p0.1 = %d, want near min", p)
	}
	if p := h.Percentile(99.9); p < 9_000 {
		t.Errorf("p99.9 = %d, want in the top tail", p)
	}
}

// TestHistogramEachRetainedMerge: EachRetained+Stride reproduce a
// histogram's distribution in another one — the scenario engine's
// per-node phase merge. Stride-weighted re-adding must keep percentiles
// close to the source's.
func TestHistogramEachRetainedMerge(t *testing.T) {
	src := NewHistogram(64)
	const n = 50_000
	for i := uint64(0); i < n; i++ {
		src.Add(i)
	}
	dst := NewHistogram(4096)
	retained := 0
	src.EachRetained(func(v uint64) {
		retained++
		for i := 0; i < src.Stride(); i++ {
			dst.Add(v)
		}
	})
	if retained == 0 || retained > 64 {
		t.Fatalf("retained = %d, want within capacity", retained)
	}
	if got, want := dst.Count(), uint64(retained*src.Stride()); got != want {
		t.Errorf("merged count = %d, want %d", got, want)
	}
	for _, p := range []float64{25, 50, 75, 99} {
		got := float64(dst.Percentile(p))
		want := p / 100 * n
		if math.Abs(got-want) > 0.15*n {
			t.Errorf("merged p%.0f = %g, want ~%g", p, got, want)
		}
	}
}
