package flit

import "afcnet/internal/topology"

// NoRef marks a flit with no row in the arena's columnar banks: every
// heap-allocated flit (Packet.Flits, over-length fallback) and every flit
// of an arena whose columns are disabled. The zero Flit carries a zero
// ref but also a nil block handle; accessors check both.
const NoRef = ^uint32(0)

// Columns is the struct-of-arrays mirror of the hot per-flit state,
// indexed by arena row references: one parallel slice per field, with
// rows handed out contiguously per block. The immutable routing metadata
// (dest, src, vn, seq, len, packet id, creation cycle, payload and the
// control/data payload class) is written once per Packetize; the two
// fields that mutate in flight (injection age and deflection count) are
// mirrored by the Flit setters, so a columnar read is always bit-equal
// to the struct field it shadows. Rows are reused with their block —
// generation stamps on the block, not the columns, catch stale handles.
type Columns struct {
	dst     []int32
	src     []int32
	vn      []uint8
	class   []uint8
	seq     []uint16
	length  []uint16
	pid     []uint64
	created []uint64
	payload []uint64
	age     []uint64 // InjectedAt mirror
	defl    []uint32 // Deflections mirror

	// elidePayload drops the payload column: the tag is an opaque
	// value the hot datapath never reads (only delivery hands it back),
	// so eliding the column shrinks each row by 8 bytes and FlitPayload
	// reads the struct field instead — which fill always writes, so the
	// answer is bit-identical. Set before the first row is minted.
	elidePayload bool
}

// Payload classes, derivable from the packet length at packetization
// (control packets are single-flit, data packets carry a cache line).
const (
	ClassControl uint8 = iota
	ClassData
)

// grow appends n fresh rows and returns the index of the first.
func (c *Columns) grow(n int) uint32 {
	base := uint32(len(c.dst))
	for i := 0; i < n; i++ {
		c.dst = append(c.dst, 0)
		c.src = append(c.src, 0)
		c.vn = append(c.vn, 0)
		c.class = append(c.class, 0)
		c.seq = append(c.seq, 0)
		c.length = append(c.length, 0)
		c.pid = append(c.pid, 0)
		c.created = append(c.created, 0)
		if !c.elidePayload {
			c.payload = append(c.payload, 0)
		}
		c.age = append(c.age, 0)
		c.defl = append(c.defl, 0)
	}
	return base
}

// fill writes row ref from packet p, flit index i.
func (c *Columns) fill(ref uint32, p Packet, i int) {
	c.dst[ref] = int32(p.Dst)
	c.src[ref] = int32(p.Src)
	c.vn[ref] = uint8(p.VN)
	cls := ClassControl
	if p.Len > ControlPacketFlits {
		cls = ClassData
	}
	c.class[ref] = cls
	c.seq[ref] = uint16(i)
	c.length[ref] = uint16(p.Len)
	c.pid[ref] = p.ID
	c.created[ref] = p.CreatedAt
	if !c.elidePayload {
		c.payload[ref] = p.Payload
	}
	c.age[ref] = 0
	c.defl[ref] = 0
}

// Rows returns the number of rows minted, for tests and telemetry.
func (c *Columns) Rows() int {
	if c == nil {
		return 0
	}
	return len(c.dst)
}

// The accessors below read a flit's hot state through the columnar banks
// when the flit has a row there, falling back to the struct field
// otherwise. They are defined on *Columns (nil-safe) so router datapaths
// hold one columns pointer and read unconditionally: a nil receiver is
// the -nocolumnar reference path.

// FlitDst returns f's destination node.
func (c *Columns) FlitDst(f *Flit) topology.NodeID {
	if c != nil && f.ref != NoRef {
		return topology.NodeID(c.dst[f.ref])
	}
	return f.Dst
}

// FlitSrc returns f's source node.
func (c *Columns) FlitSrc(f *Flit) topology.NodeID {
	if c != nil && f.ref != NoRef {
		return topology.NodeID(c.src[f.ref])
	}
	return f.Src
}

// FlitVN returns f's virtual network.
func (c *Columns) FlitVN(f *Flit) VN {
	if c != nil && f.ref != NoRef {
		return VN(c.vn[f.ref])
	}
	return f.VN
}

// FlitSeq returns f's index within its packet.
func (c *Columns) FlitSeq(f *Flit) int {
	if c != nil && f.ref != NoRef {
		return int(c.seq[f.ref])
	}
	return f.Seq
}

// FlitLen returns f's packet length in flits.
func (c *Columns) FlitLen(f *Flit) int {
	if c != nil && f.ref != NoRef {
		return int(c.length[f.ref])
	}
	return f.Len
}

// FlitPacketID returns the packet f belongs to.
func (c *Columns) FlitPacketID(f *Flit) uint64 {
	if c != nil && f.ref != NoRef {
		return c.pid[f.ref]
	}
	return f.PacketID
}

// FlitCreatedAt returns the cycle f's packet was created.
func (c *Columns) FlitCreatedAt(f *Flit) uint64 {
	if c != nil && f.ref != NoRef {
		return c.created[f.ref]
	}
	return f.CreatedAt
}

// FlitPayload returns f's opaque payload tag. With the payload column
// elided it reads the struct field, which packetization always writes.
func (c *Columns) FlitPayload(f *Flit) uint64 {
	if c != nil && !c.elidePayload && f.ref != NoRef {
		return c.payload[f.ref]
	}
	return f.Payload
}

// PayloadElided reports whether the payload column is elided (tests and
// the bench snapshot record it alongside the numbers).
func (c *Columns) PayloadElided() bool { return c != nil && c.elidePayload }

// FlitAge returns f's injection cycle (the oldest-first deflection
// policy's age key).
func (c *Columns) FlitAge(f *Flit) uint64 {
	if c != nil && f.ref != NoRef {
		return c.age[f.ref]
	}
	return f.InjectedAt
}

// FlitDeflections returns f's misroute count.
func (c *Columns) FlitDeflections(f *Flit) int {
	if c != nil && f.ref != NoRef {
		return int(c.defl[f.ref])
	}
	return f.Deflections
}

// FlitClass returns f's payload class (control or data).
func (c *Columns) FlitClass(f *Flit) uint8 {
	if c != nil && f.ref != NoRef {
		return c.class[f.ref]
	}
	if f.Len > ControlPacketFlits {
		return ClassData
	}
	return ClassControl
}

// Ref returns f's row in its arena's columnar banks, or NoRef.
func (f *Flit) Ref() uint32 { return f.ref }

// SetInjected records f's entry into the router network, keeping the
// columnar age mirror in sync. Every injection-stamp site goes through
// it (directly or via ni.StampInjection).
func (f *Flit) SetInjected(now uint64) {
	f.InjectedAt = now
	if f.blk != nil && f.ref != NoRef {
		f.blk.owner.cols.age[f.ref] = now
	}
}

// BumpDeflections counts one misroute against f, keeping the columnar
// mirror in sync.
func (f *Flit) BumpDeflections() {
	f.Deflections++
	if f.blk != nil && f.ref != NoRef {
		f.blk.owner.cols.defl[f.ref]++
	}
}
