package flit

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// maxPooledLen bounds the packet lengths the arena recycles. Both packet
// classes in the simulated system (1 and 17 flits) fit far below it; a
// longer packet falls back to plain heap allocation, and its flits carry
// nil handles that make Recycle a no-op.
const maxPooledLen = 64

// block is one recyclable flit slab: the backing array and pointer slice
// of a single packet, exactly as Packet.Flits would have allocated them.
// A block is handed out whole and comes back flit by flit; the returned
// bitmask (indexed by Seq, which is why maxPooledLen is 64) catches a
// flit recycled twice in the same generation, and the generation stamp
// catches a handle that outlived the block's reuse.
//
// live and returned are the only fields touched while flits are in the
// wild; the shard-local recycle path mutates them with atomic RMWs (the
// flits of one dropped packet can retire on several shards in the same
// parallel phase). The atomic chain through live also orders everything
// else: the recycler that takes live to zero is, by construction, the
// last holder of any handle, so the plain field writes of the next
// Packetize are ordered after every access of the previous generation.
type block struct {
	backing  []Flit
	ptrs     []*Flit
	owner    *Arena
	gen      uint32
	live     int32
	returned uint64
	// base is the block's first row in the owner's columnar banks, NoRef
	// for blocks minted while columns were disabled.
	base uint32
}

// Arena is a per-network flit allocator: Packetize hands out blocks in
// Packet.Flits form, Recycle returns them at the points a flit is
// consumed (NI delivery, drop retirement). Steady state allocates
// nothing — every packet reuses a block of its length class.
//
// An Arena, like the network owning it, is single-goroutine state. The
// sharded tick gets its own allocation front instead: SetShards mints
// one ArenaShard magazine per shard, and every packetize/recycle of a
// sharded network goes through the magazine of the shard it runs on, so
// the steady state of a parallel phase touches no shared memory at all.
// The shared reserve behind the magazines is touched only on a magazine
// miss (batch refill) or overflow (batch flush), both amortized, and
// minting stays serial-only (Reconcile, between phases): growing the
// columnar banks would move their slice headers under concurrent
// readers.
type Arena struct {
	free [maxPooledLen + 1][]*block
	all  []*block
	live int
	// cols, when non-nil, is the columnar struct-of-arrays mirror of the
	// hot per-flit state; every block minted afterwards gets a contiguous
	// row range in it. Nil is the -nocolumnar reference path.
	cols *Columns

	// mags are the per-shard magazines (nil for serial networks);
	// reserve is the mutex-protected overflow/refill pool behind them.
	mags    []*ArenaShard
	rmu     sync.Mutex
	reserve [maxPooledLen + 1][]*block
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// EnableColumns attaches columnar banks to the arena. Call it before the
// first Packetize: blocks minted earlier carry no rows and their flits
// read through the struct fallback. Idempotent.
func (a *Arena) EnableColumns() {
	if a.cols == nil {
		a.cols = &Columns{}
	}
}

// ElidePayloadColumn drops the payload column from the banks (see
// Columns.elidePayload). Call between EnableColumns and the first
// Packetize — rows minted earlier would desync the column indices.
// No-op without columns.
func (a *Arena) ElidePayloadColumn() {
	if a.cols == nil {
		return
	}
	if len(a.cols.dst) != 0 {
		panic("flit: ElidePayloadColumn after rows were minted")
	}
	a.cols.elidePayload = true
}

// Columns returns the arena's columnar banks, nil when disabled (or for
// a nil arena — the -nopool path implies no columns).
func (a *Arena) Columns() *Columns {
	if a == nil {
		return nil
	}
	return a.cols
}

// refillBatch is how many blocks a magazine steals from the reserve per
// miss; flushHigh/flushBatch bound a magazine's free list when traffic
// is asymmetric (one shard's sources feed another shard's sinks, so
// blocks migrate): past flushHigh blocks of one length the magazine
// flushes flushBatch of them back to the reserve, where starved
// magazines refill before any new block is minted. flushHigh is kept
// low on purpose — with a high threshold the whole stock of a length
// class can sit parked in rich magazines while the reserve runs dry and
// poor magazines starve every cycle (measured on the 16x16 uniform
// bench: the pool grew without bound, a heap packet every few hundred
// cycles, forever).
const (
	refillBatch = 4
	flushHigh   = 16
	flushBatch  = 8
)

// ArenaShard is one shard's allocation magazine: a private free list
// front for Packetize and Recycle that needs no locking in the steady
// state. The network hands one to every NI and drop router of a shard;
// all methods must be called either from that shard's worker during a
// parallel phase or from the serial side between phases.
type ArenaShard struct {
	a    *Arena
	free [maxPooledLen + 1][]*block
	// serial marks a magazine whose Recycle never races another shard's:
	// the network sets it when the shard group dispatches inline (single-P
	// runtimes run all shards on one goroutine), downgrading the block
	// bookkeeping to plain loads and stores.
	serial bool
	// live is this magazine's contribution to the arena-wide live-flit
	// count (handed out minus recycled here; negative when the shard
	// consumes more than it produces).
	live int
	// starved tallies Packetize calls that found both the magazine and
	// the reserve dry; Reconcile mints the replacement stock serially.
	starved    [maxPooledLen + 1]uint32
	starvedAny bool
}

// SetShards mints n per-shard magazines (idempotent for the same n).
// Serial-phase only. No-op on a nil arena or n <= 1: a serial network
// keeps the plain single-goroutine paths.
func (a *Arena) SetShards(n int) {
	if a == nil || n <= 1 || len(a.mags) == n {
		return
	}
	a.mags = make([]*ArenaShard, n)
	for i := range a.mags {
		a.mags[i] = &ArenaShard{a: a}
	}
}

// Shard returns shard i's magazine, nil on a nil arena (the -nopool
// path) so call sites can thread it unconditionally.
func (a *Arena) Shard(i int) *ArenaShard {
	if a == nil {
		return nil
	}
	return a.mags[i]
}

// SetShardsSerial marks every magazine as free of cross-shard
// concurrency (inline shard dispatch), so Recycle skips its atomics.
// No-op on a nil arena; call after SetShards.
func (a *Arena) SetShardsSerial(on bool) {
	if a == nil {
		return
	}
	for _, m := range a.mags {
		m.serial = on
	}
}

// mint allocates a fresh block of the given length, growing the
// columnar banks when enabled. Serial-phase only: growing the banks
// moves their slice headers under every concurrent reader.
func (a *Arena) mint(length int) *block {
	b := &block{
		backing: make([]Flit, length),
		ptrs:    make([]*Flit, length),
		owner:   a,
		base:    NoRef,
	}
	if a.cols != nil {
		b.base = a.cols.grow(length)
	}
	for i := range b.backing {
		b.ptrs[i] = &b.backing[i]
	}
	a.all = append(a.all, b)
	return b
}

// fill stamps block b with packet p's flits, exactly as Packet.Flits
// would have, and returns the pointer slice. Shared by the serial and
// magazine packetize paths; the caller has already made b exclusive.
func (a *Arena) fill(b *block, p Packet) []*Flit {
	b.gen++
	b.live = int32(p.Len)
	b.returned = 0
	for i := range b.backing {
		ref := NoRef
		if b.base != NoRef {
			ref = b.base + uint32(i)
			a.cols.fill(ref, p, i)
		}
		// Field-wise stores instead of a struct literal: the literal would
		// be built in a temporary and block-copied into the slab, which is
		// the hottest copy of a packetize-heavy cycle.
		f := &b.backing[i]
		f.PacketID = p.ID
		f.Seq = i
		f.Len = p.Len
		f.Src = p.Src
		f.Dst = p.Dst
		f.VN = p.VN
		f.VC = NoVC
		f.CreatedAt = p.CreatedAt
		f.InjectedAt = 0
		f.Hops = 0
		f.Deflections = 0
		f.Retransmits = 0
		f.Payload = p.Payload
		f.blk = b
		f.gen = b.gen
		f.ref = ref
	}
	return b.ptrs
}

// Packetize expands p into flits like Packet.Flits, reusing a recycled
// block when one of the right length is free. A nil arena (or an
// out-of-range length) falls back to heap allocation, which is the
// -nopool reference path. Single-goroutine (serial networks); sharded
// networks packetize through their ArenaShard magazines instead.
func (a *Arena) Packetize(p Packet) []*Flit {
	if a == nil || p.Len < 1 || p.Len > maxPooledLen {
		return p.Flits()
	}
	var b *block
	if fl := a.free[p.Len]; len(fl) > 0 {
		b = fl[len(fl)-1]
		a.free[p.Len] = fl[:len(fl)-1]
	} else {
		b = a.mint(p.Len)
	}
	a.live += p.Len
	return a.fill(b, p)
}

// Packetize is the magazine packetize: pop from the shard's own free
// list, batch-refill from the shared reserve on a miss, and fall back
// to heap flits when both are dry (nil handles, Recycle no-op) — the
// replacement stock is minted serially at the next Reconcile, so a
// steady-state workload stops starving (and stops allocating) once the
// magazines have grown to the workload's concurrent footprint.
func (s *ArenaShard) Packetize(p Packet) []*Flit {
	if p.Len < 1 || p.Len > maxPooledLen {
		return p.Flits()
	}
	fl := s.free[p.Len]
	if len(fl) == 0 {
		if n := s.a.refill(p.Len, &s.free[p.Len]); n == 0 {
			s.starved[p.Len]++
			s.starvedAny = true
			return p.Flits()
		}
		fl = s.free[p.Len]
	}
	b := fl[len(fl)-1]
	s.free[p.Len] = fl[:len(fl)-1]
	s.live += p.Len
	return s.a.fill(b, p)
}

// refill steals up to refillBatch blocks of the given length from the
// reserve into dst, returning how many it got. Mutex cost is paid once
// per magazine miss, not per packet.
func (a *Arena) refill(length int, dst *[]*block) int {
	a.rmu.Lock()
	r := a.reserve[length]
	n := len(r)
	if n > refillBatch {
		n = refillBatch
	}
	if n > 0 {
		*dst = append(*dst, r[len(r)-n:]...)
		a.reserve[length] = r[:len(r)-n]
	}
	a.rmu.Unlock()
	return n
}

// Recycle returns a consumed flit through this shard's magazine. Safe
// against the flits of one block retiring on several shards at once:
// the block bookkeeping is atomic, and whichever shard returns the last
// flit takes the whole block into its own magazine.
func (s *ArenaShard) Recycle(f *Flit) {
	b := f.blk
	if b == nil {
		return
	}
	if f.gen != b.gen {
		panic(fmt.Sprintf("flit: use-after-free recycle of %v (handle gen %d, block gen %d)", f, f.gen, b.gen))
	}
	bit := uint64(1) << uint(f.Seq)
	if s.serial {
		// Inline dispatch: every shard runs on one goroutine, so the plain
		// path of the package-level Recycle is safe and ~1 cycle of CAS
		// cheaper per flit.
		if b.returned&bit != 0 {
			panic(fmt.Sprintf("flit: double recycle of %v", f))
		}
		b.returned |= bit
		s.live--
		b.live--
		if b.live != 0 {
			return
		}
	} else {
		for {
			old := atomic.LoadUint64(&b.returned)
			if old&bit != 0 {
				panic(fmt.Sprintf("flit: double recycle of %v", f))
			}
			if atomic.CompareAndSwapUint64(&b.returned, old, old|bit) {
				break
			}
		}
		s.live--
		if atomic.AddInt32(&b.live, -1) != 0 {
			return
		}
	}
	l := len(b.backing)
	s.free[l] = append(s.free[l], b)
	if len(s.free[l]) > flushHigh {
		s.flush(l)
	}
}

// flush moves flushBatch blocks of one length class back to the shared
// reserve — the relief valve for asymmetric traffic, where one shard's
// sinks would otherwise accumulate every block its sources starve for.
func (s *ArenaShard) flush(length int) {
	fl := s.free[length]
	n := flushBatch
	s.a.rmu.Lock()
	s.a.reserve[length] = append(s.a.reserve[length], fl[len(fl)-n:]...)
	s.a.rmu.Unlock()
	s.free[length] = fl[:len(fl)-n]
}

// Reconcile mints replacement stock for every starved Packetize since
// the previous call, preferring blocks already parked in the reserve
// over growing the pool, and tops the reserve of a starved length class
// up with refillBatch fresh blocks of headroom. The headroom is what
// makes starvation terminate: replacing strictly 1:1 chases the
// workload's random-walk excursions asymptotically (the pool keeps
// growing and the heap fallback keeps firing), while a batch of slack
// per event converges to a stock the excursions no longer pierce.
// Serial-phase only (minting grows the columnar banks); the sharded
// tick calls it once per cycle after the barrier. The starved-flag
// check keeps the steady-state cost at one branch per magazine.
func (a *Arena) Reconcile() {
	if a == nil {
		return
	}
	for _, m := range a.mags {
		if !m.starvedAny {
			continue
		}
		m.starvedAny = false
		for l := range m.starved {
			if m.starved[l] == 0 {
				continue
			}
			for ; m.starved[l] > 0; m.starved[l]-- {
				var b *block
				if r := a.reserve[l]; len(r) > 0 {
					b = r[len(r)-1]
					a.reserve[l] = r[:len(r)-1]
				} else {
					b = a.mint(l)
				}
				m.free[l] = append(m.free[l], b)
			}
			for i := 0; i < refillBatch; i++ {
				a.reserve[l] = append(a.reserve[l], a.mint(l))
			}
		}
	}
}

// Recycle returns a consumed flit to its arena. It is a no-op for
// heap-allocated flits (nil handle), so consumption sites need not know
// which path produced the flit. Recycling the same flit twice, or a flit
// whose block has already been reissued, is a lifecycle bug and panics.
// Single-goroutine (serial networks); sharded networks recycle through
// their ArenaShard magazines instead.
func Recycle(f *Flit) {
	b := f.blk
	if b == nil {
		return
	}
	if f.gen != b.gen {
		panic(fmt.Sprintf("flit: use-after-free recycle of %v (handle gen %d, block gen %d)", f, f.gen, b.gen))
	}
	bit := uint64(1) << uint(f.Seq)
	if b.returned&bit != 0 {
		panic(fmt.Sprintf("flit: double recycle of %v", f))
	}
	b.returned |= bit
	b.live--
	b.owner.live--
	if b.live == 0 {
		a := b.owner
		a.free[len(b.backing)] = append(a.free[len(b.backing)], b)
	}
}

// CheckHandle verifies the arena handle of an in-flight flit: a flit
// still traveling the network must belong to the current generation of
// its block and must not be marked returned. Heap-allocated flits always
// pass. The invariant checker calls this during its conservation scan,
// so a double recycle or use-after-free surfaces as a checker violation
// even when the corrupted handle never reaches Recycle again.
func CheckHandle(f *Flit) error {
	b := f.blk
	if b == nil {
		return nil
	}
	if f.gen != b.gen {
		return fmt.Errorf("flit: in-flight %v holds a stale arena handle (handle gen %d, block gen %d) — use after free", f, f.gen, b.gen)
	}
	if b.returned&(uint64(1)<<uint(f.Seq)) != 0 {
		return fmt.Errorf("flit: in-flight %v is marked recycled — double use", f)
	}
	return nil
}

// Live returns the number of flits handed out and not yet recycled — the
// leak oracle: after a network drains, every injected flit has been
// consumed, so Live must be zero. Shard magazines contribute their
// (possibly negative) deltas: a flit packetized on one shard and
// recycled on another cancels across the sum.
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	t := a.live
	for _, m := range a.mags {
		t += m.live
	}
	return t
}

// Reclaim force-returns every outstanding block, invalidating all
// handles still in the wild. Network.Reset calls it when a cell ends
// with flits in flight (closed-loop measurement windows do); any stale
// handle that later reaches Recycle or CheckHandle is caught by the
// generation stamp. With shard magazines configured the blocks land in
// the shared reserve (per-shard locality is meaningless after a reset)
// and the magazines restart empty; serial arenas keep them on the free
// lists, as a fresh build would.
func (a *Arena) Reclaim() {
	if a == nil {
		return
	}
	for i := range a.free {
		a.free[i] = a.free[i][:0]
	}
	for _, m := range a.mags {
		for i := range m.free {
			m.free[i] = m.free[i][:0]
		}
		m.live = 0
		m.starved = [maxPooledLen + 1]uint32{}
		m.starvedAny = false
	}
	if len(a.mags) > 0 {
		for i := range a.reserve {
			a.reserve[i] = a.reserve[i][:0]
		}
		for _, b := range a.all {
			b.gen++
			b.live = 0
			b.returned = 0
			a.reserve[len(b.backing)] = append(a.reserve[len(b.backing)], b)
		}
	} else {
		for _, b := range a.all {
			b.gen++
			b.live = 0
			b.returned = 0
			a.free[len(b.backing)] = append(a.free[len(b.backing)], b)
		}
	}
	a.live = 0
}

// Blocks returns how many blocks the arena has ever minted, for tests
// and telemetry.
func (a *Arena) Blocks() int {
	if a == nil {
		return 0
	}
	return len(a.all)
}
