package flit

import (
	"fmt"
	"sync"
)

// maxPooledLen bounds the packet lengths the arena recycles. Both packet
// classes in the simulated system (1 and 17 flits) fit far below it; a
// longer packet falls back to plain heap allocation, and its flits carry
// nil handles that make Recycle a no-op.
const maxPooledLen = 64

// block is one recyclable flit slab: the backing array and pointer slice
// of a single packet, exactly as Packet.Flits would have allocated them.
// A block is handed out whole and comes back flit by flit; the returned
// bitmask (indexed by Seq, which is why maxPooledLen is 64) catches a
// flit recycled twice in the same generation, and the generation stamp
// catches a handle that outlived the block's reuse.
type block struct {
	backing  []Flit
	ptrs     []*Flit
	owner    *Arena
	gen      uint32
	live     int
	returned uint64
	// base is the block's first row in the owner's columnar banks, NoRef
	// for blocks minted while columns were disabled.
	base uint32
}

// Arena is a per-network flit allocator: Packetize hands out blocks in
// Packet.Flits form, Recycle returns them at the points a flit is
// consumed (NI delivery, drop retirement). Steady state allocates
// nothing — every packet reuses a block of its length class. An Arena,
// like the network owning it, is single-goroutine state — except inside
// a sharded tick's parallel phase, bracketed by BeginParallel and
// EndParallel, where the shared free lists go behind a mutex.
type Arena struct {
	free [maxPooledLen + 1][]*block
	all  []*block
	live int
	// cols, when non-nil, is the columnar struct-of-arrays mirror of the
	// hot per-flit state; every block minted afterwards gets a contiguous
	// row range in it. Nil is the -nocolumnar reference path.
	cols *Columns

	// Parallel-phase state for the sharded tick. While parallel is set,
	// Packetize and Recycle take mu around the shared free lists and the
	// live counter, and Packetize never mints: minting would grow the
	// columnar banks, racing the slice-header reads of every other shard.
	// A starved length falls back to heap flits for that packet and is
	// tallied here; EndParallel mints replacement blocks serially, so a
	// steady-state workload stops starving (and stops allocating) once
	// the pool has grown to the workload's concurrent footprint.
	mu       sync.Mutex
	parallel bool
	starved  [maxPooledLen + 1]uint32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// EnableColumns attaches columnar banks to the arena. Call it before the
// first Packetize: blocks minted earlier carry no rows and their flits
// read through the struct fallback. Idempotent.
func (a *Arena) EnableColumns() {
	if a.cols == nil {
		a.cols = &Columns{}
	}
}

// Columns returns the arena's columnar banks, nil when disabled (or for
// a nil arena — the -nopool path implies no columns).
func (a *Arena) Columns() *Columns {
	if a == nil {
		return nil
	}
	return a.cols
}

// BeginParallel switches the arena into parallel mode for one sharded
// compute phase: shared state goes behind the mutex and minting is
// deferred. No-op on a nil arena. Must be called from the serial side
// of the barrier.
func (a *Arena) BeginParallel() {
	if a == nil {
		return
	}
	a.parallel = true
}

// EndParallel leaves parallel mode and, serially, mints a replacement
// block for every starved Packetize of the phase, topping the free
// lists back up so the pool converges on zero steady-state allocation.
// No-op on a nil arena.
func (a *Arena) EndParallel() {
	if a == nil {
		return
	}
	a.parallel = false
	for l := range a.starved {
		for ; a.starved[l] > 0; a.starved[l]-- {
			a.free[l] = append(a.free[l], a.mint(l))
		}
	}
}

// mint allocates a fresh block of the given length, growing the
// columnar banks when enabled. Serial-phase only: growing the banks
// moves their slice headers under every concurrent reader.
func (a *Arena) mint(length int) *block {
	b := &block{
		backing: make([]Flit, length),
		ptrs:    make([]*Flit, length),
		owner:   a,
		base:    NoRef,
	}
	if a.cols != nil {
		b.base = a.cols.grow(length)
	}
	for i := range b.backing {
		b.ptrs[i] = &b.backing[i]
	}
	a.all = append(a.all, b)
	return b
}

// Packetize expands p into flits like Packet.Flits, reusing a recycled
// block when one of the right length is free. A nil arena (or an
// out-of-range length) falls back to heap allocation, which is the
// -nopool reference path.
func (a *Arena) Packetize(p Packet) []*Flit {
	if a == nil || p.Len < 1 || p.Len > maxPooledLen {
		return p.Flits()
	}
	var b *block
	if a.parallel {
		a.mu.Lock()
		if fl := a.free[p.Len]; len(fl) > 0 {
			b = fl[len(fl)-1]
			a.free[p.Len] = fl[:len(fl)-1]
			a.live += p.Len
		} else {
			a.starved[p.Len]++
		}
		a.mu.Unlock()
		if b == nil {
			// Free list dry mid-phase: heap flits for this packet (nil
			// handles, Recycle no-op), replacement minted at EndParallel.
			return p.Flits()
		}
	} else {
		if fl := a.free[p.Len]; len(fl) > 0 {
			b = fl[len(fl)-1]
			a.free[p.Len] = fl[:len(fl)-1]
		} else {
			b = a.mint(p.Len)
		}
		a.live += p.Len
	}
	b.gen++
	b.live = p.Len
	b.returned = 0
	for i := range b.backing {
		ref := NoRef
		if b.base != NoRef {
			ref = b.base + uint32(i)
			a.cols.fill(ref, p, i)
		}
		// Field-wise stores instead of a struct literal: the literal would
		// be built in a temporary and block-copied into the slab, which is
		// the hottest copy of a packetize-heavy cycle.
		f := &b.backing[i]
		f.PacketID = p.ID
		f.Seq = i
		f.Len = p.Len
		f.Src = p.Src
		f.Dst = p.Dst
		f.VN = p.VN
		f.VC = NoVC
		f.CreatedAt = p.CreatedAt
		f.InjectedAt = 0
		f.Hops = 0
		f.Deflections = 0
		f.Retransmits = 0
		f.Payload = p.Payload
		f.blk = b
		f.gen = b.gen
		f.ref = ref
	}
	return b.ptrs
}

// Recycle returns a consumed flit to its arena. It is a no-op for
// heap-allocated flits (nil handle), so consumption sites need not know
// which path produced the flit. Recycling the same flit twice, or a flit
// whose block has already been reissued, is a lifecycle bug and panics.
func Recycle(f *Flit) {
	b := f.blk
	if b == nil {
		return
	}
	// Flits of one block can be consumed by different shards in the same
	// parallel phase (a dropped packet's flits retire at whichever drop
	// routers hold them), so the block's bookkeeping shares the arena
	// mutex with the free lists while parallel mode is on. The flag only
	// changes on the serial side of the barrier, so this unlocked read is
	// stable for the whole phase.
	if b.owner.parallel {
		b.owner.mu.Lock()
		defer b.owner.mu.Unlock()
	}
	if f.gen != b.gen {
		panic(fmt.Sprintf("flit: use-after-free recycle of %v (handle gen %d, block gen %d)", f, f.gen, b.gen))
	}
	bit := uint64(1) << uint(f.Seq)
	if b.returned&bit != 0 {
		panic(fmt.Sprintf("flit: double recycle of %v", f))
	}
	b.returned |= bit
	b.live--
	b.owner.live--
	if b.live == 0 {
		a := b.owner
		a.free[len(b.backing)] = append(a.free[len(b.backing)], b)
	}
}

// CheckHandle verifies the arena handle of an in-flight flit: a flit
// still traveling the network must belong to the current generation of
// its block and must not be marked returned. Heap-allocated flits always
// pass. The invariant checker calls this during its conservation scan,
// so a double recycle or use-after-free surfaces as a checker violation
// even when the corrupted handle never reaches Recycle again.
func CheckHandle(f *Flit) error {
	b := f.blk
	if b == nil {
		return nil
	}
	if f.gen != b.gen {
		return fmt.Errorf("flit: in-flight %v holds a stale arena handle (handle gen %d, block gen %d) — use after free", f, f.gen, b.gen)
	}
	if b.returned&(uint64(1)<<uint(f.Seq)) != 0 {
		return fmt.Errorf("flit: in-flight %v is marked recycled — double use", f)
	}
	return nil
}

// Live returns the number of flits handed out and not yet recycled — the
// leak oracle: after a network drains, every injected flit has been
// consumed, so Live must be zero.
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	return a.live
}

// Reclaim force-returns every outstanding block, invalidating all
// handles still in the wild. Network.Reset calls it when a cell ends
// with flits in flight (closed-loop measurement windows do); any stale
// handle that later reaches Recycle or CheckHandle is caught by the
// generation stamp.
func (a *Arena) Reclaim() {
	if a == nil {
		return
	}
	for i := range a.free {
		a.free[i] = a.free[i][:0]
	}
	for _, b := range a.all {
		b.gen++
		b.live = 0
		b.returned = 0
		a.free[len(b.backing)] = append(a.free[len(b.backing)], b)
	}
	a.live = 0
}

// Blocks returns how many blocks the arena has ever minted, for tests
// and telemetry.
func (a *Arena) Blocks() int {
	if a == nil {
		return 0
	}
	return len(a.all)
}
