package flit_test

import (
	"fmt"

	"afcnet/internal/flit"
)

func ExamplePacket_Flits() {
	p := flit.Packet{ID: 7, Src: 0, Dst: 8, VN: flit.VNData, Len: 3}
	for _, f := range p.Flits() {
		fmt.Printf("seq=%d head=%v tail=%v vc=%d\n", f.Seq, f.Head(), f.Tail(), f.VC)
	}
	// Output:
	// seq=0 head=true tail=false vc=-1
	// seq=1 head=false tail=false vc=-1
	// seq=2 head=false tail=true vc=-1
}

func ExampleLenForVN() {
	// Control packets are single flits; a 64-byte line over 32-bit flits
	// plus a head flit makes a 17-flit data packet (Table II).
	fmt.Println(flit.LenForVN(flit.VNReq), flit.LenForVN(flit.VNData))
	// Output: 1 17
}
