package flit

import (
	"reflect"
	"testing"
)

func testPacket(length int) Packet {
	return Packet{ID: 7, Src: 1, Dst: 4, VN: VNData, Len: length, CreatedAt: 42, Payload: 99}
}

// stripHandle copies a flit without its arena handle so pooled and heap
// flits can be compared field for field.
func stripHandle(f Flit) Flit {
	f.blk = nil
	f.gen = 0
	return f
}

func TestPacketizeMatchesFlits(t *testing.T) {
	a := NewArena()
	for _, length := range []int{1, 17} {
		p := testPacket(length)
		want := p.Flits()
		got := a.Packetize(p)
		if len(got) != len(want) {
			t.Fatalf("len %d: got %d flits, want %d", length, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(stripHandle(*got[i]), *want[i]) {
				t.Errorf("len %d flit %d: got %+v, want %+v", length, i, stripHandle(*got[i]), *want[i])
			}
			if got[i].blk == nil {
				t.Errorf("len %d flit %d: pooled flit has no arena handle", length, i)
			}
		}
		for _, f := range got {
			Recycle(f)
		}
	}
	if a.Live() != 0 {
		t.Fatalf("live = %d after recycling everything", a.Live())
	}
}

func TestArenaReusesBlocks(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(17))
	first := fs[0]
	for _, f := range fs {
		Recycle(f)
	}
	fs2 := a.Packetize(testPacket(17))
	if fs2[0] != first {
		t.Fatalf("second packetize did not reuse the recycled block")
	}
	if a.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", a.Blocks())
	}
	// A different length class mints its own block.
	a.Packetize(testPacket(1))
	if a.Blocks() != 2 {
		t.Fatalf("blocks = %d after second length class, want 2", a.Blocks())
	}
	if got := a.Live(); got != 17+1 {
		t.Fatalf("live = %d, want 18", got)
	}
}

func TestRecycleHeapFlitIsNoop(t *testing.T) {
	fs := testPacket(2).Flits()
	Recycle(fs[0]) // must not panic
	if err := CheckHandle(fs[0]); err != nil {
		t.Fatalf("heap flit failed handle check: %v", err)
	}
}

func TestDoubleRecyclePanics(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(3))
	Recycle(fs[1])
	defer func() {
		if recover() == nil {
			t.Fatalf("double recycle did not panic")
		}
	}()
	Recycle(fs[1])
}

func TestUseAfterFreePanics(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(1))
	stale := *fs[0] // the held copy keeps the old generation stamp
	Recycle(fs[0])
	a.Packetize(testPacket(1)) // reissues the block, bumping the generation
	defer func() {
		if recover() == nil {
			t.Fatalf("stale-generation recycle did not panic")
		}
	}()
	Recycle(&stale)
}

func TestCheckHandleDetectsCorruption(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(2))
	if err := CheckHandle(fs[0]); err != nil {
		t.Fatalf("fresh handle failed check: %v", err)
	}
	// Deliberately corrupt the lifecycle: recycle a flit that is still
	// "in flight" from the caller's point of view. The conservation scan
	// must now flag the handle.
	Recycle(fs[0])
	if err := CheckHandle(fs[0]); err == nil {
		t.Fatalf("recycled-but-held flit passed the handle check")
	}
	// And a handle that outlives a full block reuse.
	stale := *fs[1]
	Recycle(fs[1])
	a.Packetize(testPacket(2))
	if err := CheckHandle(&stale); err == nil {
		t.Fatalf("stale-generation flit passed the handle check")
	}
}

func TestReclaim(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(17))
	a.Packetize(testPacket(1))
	a.Reclaim()
	if a.Live() != 0 {
		t.Fatalf("live = %d after reclaim", a.Live())
	}
	if err := CheckHandle(fs[0]); err == nil {
		t.Fatalf("handle survived reclaim")
	}
	// Both blocks are reusable again.
	a.Packetize(testPacket(17))
	a.Packetize(testPacket(1))
	if a.Blocks() != 2 {
		t.Fatalf("blocks = %d after reclaim reuse, want 2", a.Blocks())
	}
}

func TestOverlongPacketFallsBack(t *testing.T) {
	a := NewArena()
	fs := a.Packetize(testPacket(maxPooledLen + 1))
	if len(fs) != maxPooledLen+1 {
		t.Fatalf("got %d flits", len(fs))
	}
	if fs[0].blk != nil {
		t.Fatalf("overlong packet got a pooled handle")
	}
	if a.Live() != 0 || a.Blocks() != 0 {
		t.Fatalf("overlong packet touched the arena: live=%d blocks=%d", a.Live(), a.Blocks())
	}
}

func TestNilArena(t *testing.T) {
	var a *Arena
	fs := a.Packetize(testPacket(2))
	if len(fs) != 2 || fs[0].blk != nil {
		t.Fatalf("nil arena must fall back to heap flits")
	}
	if a.Live() != 0 || a.Blocks() != 0 {
		t.Fatalf("nil arena reported state")
	}
	a.Reclaim() // must not panic
}
