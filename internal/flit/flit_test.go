package flit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"afcnet/internal/topology"
)

func TestHeadTail(t *testing.T) {
	p := Packet{ID: 1, Src: 0, Dst: 5, VN: VNData, Len: 4}
	fs := p.Flits()
	if len(fs) != 4 {
		t.Fatalf("len = %d", len(fs))
	}
	if !fs[0].Head() || fs[0].Tail() {
		t.Error("first flit head/tail wrong")
	}
	if fs[3].Head() || !fs[3].Tail() {
		t.Error("last flit head/tail wrong")
	}
	for _, f := range fs[1:3] {
		if f.Head() || f.Tail() {
			t.Errorf("body flit %d classified as head/tail", f.Seq)
		}
	}
}

func TestSingleFlitPacketIsHeadAndTail(t *testing.T) {
	fs := Packet{ID: 2, Dst: 1, VN: VNReq, Len: 1}.Flits()
	if !fs[0].Head() || !fs[0].Tail() {
		t.Error("single-flit packet must be both head and tail")
	}
}

// TestFlitsCarryIndependentRoutingState is the property backpressureless
// routing depends on: every flit of a packet carries the full routing
// metadata and no VC assignment.
func TestFlitsCarryIndependentRoutingState(t *testing.T) {
	f := func(lenByte uint8, src, dst uint8, vnRaw uint8, payload uint64) bool {
		l := int(lenByte)%32 + 1
		vn := VN(vnRaw % uint8(NumVNs))
		p := Packet{ID: 9, Src: int2node(src), Dst: int2node(dst), VN: vn, Len: l, CreatedAt: 123, Payload: payload}
		fs := p.Flits()
		if len(fs) != l {
			return false
		}
		for i, fl := range fs {
			if fl.Seq != i || fl.Len != l || fl.Src != p.Src || fl.Dst != p.Dst ||
				fl.VN != vn || fl.VC != NoVC || fl.CreatedAt != 123 || fl.Payload != payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestWidths(t *testing.T) {
	// Section IV: 41/45/49-bit flits, strictly increasing with the
	// control state each mechanism needs.
	if WidthBackpressured != 41 || WidthBackpressureless != 45 || WidthAFC != 49 {
		t.Errorf("widths = %d/%d/%d, want 41/45/49",
			WidthBackpressured, WidthBackpressureless, WidthAFC)
	}
}

func TestLenForVN(t *testing.T) {
	if LenForVN(VNReq) != 1 || LenForVN(VNResp) != 1 {
		t.Error("control packets must be single-flit")
	}
	// 64-byte line over 32-bit flits plus a head flit
	if LenForVN(VNData) != 17 {
		t.Errorf("data packet = %d flits, want 17", LenForVN(VNData))
	}
}

func TestVNString(t *testing.T) {
	if VNReq.String() != "req" || VNResp.String() != "resp" || VNData.String() != "data" {
		t.Error("VN.String mismatch")
	}
}

func int2node(b uint8) topology.NodeID { return topology.NodeID(b) }
