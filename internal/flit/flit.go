// Package flit defines the unit of network transfer (the flit), packets,
// virtual networks, and the flit-width arithmetic the energy model uses.
//
// Following the paper, message classes travel on three virtual networks
// (two control networks and one data network). A packet is a sequence of
// flits; in backpressureless and AFC routers every flit carries enough
// control state (destination, packet id, sequence number) to be routed
// independently, which is why those routers need wider flits (45 and 49
// bits of total width versus 41 for the backpressured baseline).
package flit

import (
	"fmt"

	"afcnet/internal/topology"
)

// VN identifies a virtual network. The paper's configuration uses two
// virtual control networks (requests and responses) and one data network.
type VN uint8

// Virtual networks.
const (
	VNReq  VN = iota // control: coherence requests
	VNResp           // control: coherence responses/acks
	VNData           // data: cache-line transfers

	NumVNs = 3
)

// String implements fmt.Stringer.
func (v VN) String() string {
	switch v {
	case VNReq:
		return "req"
	case VNResp:
		return "resp"
	case VNData:
		return "data"
	}
	return fmt.Sprintf("VN(%d)", uint8(v))
}

// NoVC marks a flit whose virtual channel has not been assigned. Under
// AFC's lazy VC allocation the upstream router dispatches flits with only
// the virtual-network identifier; the downstream router assigns the VC
// (the buffer slot) at buffer-write time.
const NoVC = -1

// Flit is the atomic unit routed by the network. All router
// implementations share this type; fields that a particular flow-control
// mechanism does not use are simply ignored (but still cost width in the
// energy model, which is the paper's point about wider AFC flits).
type Flit struct {
	// PacketID uniquely identifies the packet this flit belongs to.
	PacketID uint64
	// Seq is this flit's index within its packet, in [0, Len).
	Seq int
	// Len is the total number of flits in the packet.
	Len int
	// Src and Dst are the injecting and destination nodes.
	Src, Dst topology.NodeID
	// VN is the virtual network the flit travels on. It never changes
	// in flight.
	VN VN
	// VC is the virtual channel currently assigned to the flit, or NoVC.
	// In the backpressured baseline the VC is allocated per packet at the
	// upstream router; under AFC's lazy allocation it names the buffer
	// slot chosen by the downstream router.
	VC int
	// CreatedAt is the cycle the packet was handed to the network
	// interface (queueing delay included in total latency).
	CreatedAt uint64
	// InjectedAt is the cycle this flit entered the router network.
	InjectedAt uint64
	// Hops counts link traversals (for stats and the energy model's
	// sanity checks).
	Hops int
	// Deflections counts misroutes suffered by this flit.
	Deflections int
	// Retransmits counts how many times the packet was retransmitted
	// (drop-based backpressureless variant only).
	Retransmits int
	// Payload is an opaque tag for the traffic layer (e.g., a CMP
	// transaction id). The network never interprets it.
	Payload uint64

	// blk and gen tie a pooled flit back to its arena block (arena.go).
	// Both stay zero for heap-allocated flits (Packet.Flits), for which
	// Recycle is a no-op. gen must match the block's current generation;
	// a mismatch means the handle outlived a recycle (use-after-free).
	blk *block
	gen uint32
	// ref is the flit's row in the arena's columnar banks (columns.go),
	// or NoRef for flits outside them (heap fallback, columns disabled).
	ref uint32
}

// Head reports whether f is the head flit of its packet.
func (f *Flit) Head() bool { return f.Seq == 0 }

// Tail reports whether f is the tail flit of its packet. A single-flit
// packet is both head and tail.
func (f *Flit) Tail() bool { return f.Seq == f.Len-1 }

// String implements fmt.Stringer for debugging output.
func (f *Flit) String() string {
	return fmt.Sprintf("flit{pkt=%d %d/%d %d->%d vn=%s vc=%d}",
		f.PacketID, f.Seq+1, f.Len, f.Src, f.Dst, f.VN, f.VC)
}

// Packet describes a packet before packetization into flits.
type Packet struct {
	ID        uint64
	Src, Dst  topology.NodeID
	VN        VN
	Len       int // number of flits
	CreatedAt uint64
	Payload   uint64
}

// Flits expands the packet into its flits. Each flit gets an independent
// copy of the routing metadata so that backpressureless routers may route
// them independently.
func (p Packet) Flits() []*Flit {
	// One backing allocation for the whole packet: flits travel the
	// network as pointers, and a 17-flit data packet would otherwise cost
	// 18 allocations (the dominant allocation site of a closed-loop run).
	backing := make([]Flit, p.Len)
	fs := make([]*Flit, p.Len)
	for i := range fs {
		backing[i] = Flit{
			PacketID:  p.ID,
			Seq:       i,
			Len:       p.Len,
			Src:       p.Src,
			Dst:       p.Dst,
			VN:        p.VN,
			VC:        NoVC,
			CreatedAt: p.CreatedAt,
			Payload:   p.Payload,
			ref:       NoRef,
		}
		fs[i] = &backing[i]
	}
	return fs
}

// Flit widths from Section IV of the paper: 32 data bits plus the control
// bits needed to encode VCs, destination node, flit number and global MSHR
// identifier for each flow-control mechanism.
const (
	DataBits = 32

	// WidthBackpressured is the total flit width (data + control) of the
	// baseline backpressured router: 9 control bits.
	WidthBackpressured = DataBits + 9 // 41
	// WidthBackpressureless is the total flit width of the deflection
	// router: 13 control bits (per-flit destination and sequencing).
	WidthBackpressureless = DataBits + 13 // 45
	// WidthAFC is the total flit width of the AFC router: 17 control bits
	// (both mechanisms' control state).
	WidthAFC = DataBits + 17 // 49
)

// PacketLengths gives the flit counts for the two packet classes in the
// simulated system. With 32-bit data flits and 64-byte cache lines
// (Table II), a data packet is a head flit plus 16 data flits; control
// packets are a single flit.
const (
	ControlPacketFlits = 1
	DataPacketFlits    = 17
)

// LenForVN returns the default packet length for a virtual network.
func LenForVN(vn VN) int {
	if vn == VNData {
		return DataPacketFlits
	}
	return ControlPacketFlits
}
