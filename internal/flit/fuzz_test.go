package flit_test

import (
	"testing"

	"afcnet/internal/flit"
)

// FuzzArenaHandles drives a byte-programmed interleaving of Packetize,
// Recycle, Reclaim and columnar reads against one arena, asserting the
// generation-stamped handle discipline at every step:
//
//   - a live handle always passes CheckHandle, and its columnar
//     accessors agree bit-for-bit with the struct fields (both through
//     the arena's banks and through the nil-Columns reference path);
//   - a recycled handle immediately fails CheckHandle (returned-bit
//     detection) and panics on double Recycle;
//   - after Reclaim every formerly-live handle fails CheckHandle with a
//     stale generation and panics on Recycle.
//
// The stale assertions run before the next Packetize can reuse the
// block: handles are pointers into the slab, so reissue rewrites their
// generation stamp and legitimately revives the pointer as a new flit.
//
// The same program replays at shard counts 0, 2 and 8. The sharded
// replays packetize and recycle through byte-chosen magazines — usually
// different ones, so a block's flits retire away from the shard that
// issued them and the cross-shard return accounting (atomic at 8
// shards, the inline-dispatch plain path at 2) is under the same
// oracle. Magazine packetize may legitimately fall back to the heap
// when both its free list and the reserve are dry; those flits carry
// nil handles with nothing to assert (CheckHandle passes, Recycle is a
// no-op), so the program detects them by the Live() delta and leaves
// them out of the tracked set. Reconcile runs after every sharded
// packetize, standing in for the once-per-cycle serial phase of the
// real barrier, so the starvation-replacement path is fuzzed too.
func FuzzArenaHandles(f *testing.F) {
	f.Add([]byte{0, 4, 8, 1, 2, 3, 0, 12, 5, 6, 7, 3, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 3})
	f.Add([]byte{252, 16, 33, 77, 129, 200, 3, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, shards := range []int{0, 2, 8} {
			fuzzArenaProgram(t, data, shards)
		}
	})
}

func fuzzArenaProgram(t *testing.T, data []byte, shards int) {
	a := flit.NewArena()
	a.EnableColumns()
	var mags []*flit.ArenaShard
	if shards > 0 {
		a.SetShards(shards)
		// 2 shards replays under the inline-dispatch plain recycle
		// path, 8 under the atomic path the spawned workers use.
		a.SetShardsSerial(shards == 2)
		for i := 0; i < shards; i++ {
			mags = append(mags, a.Shard(i))
		}
	}
	cols := a.Columns()
	var nilCols *flit.Columns
	var live []*flit.Flit
	nextID := uint64(1)

	checkStale := func(fl *flit.Flit) {
		t.Helper()
		if err := flit.CheckHandle(fl); err == nil {
			t.Fatalf("shards %d: stale handle %v passes CheckHandle", shards, fl)
		}
		defer func() {
			if recover() == nil {
				t.Fatalf("shards %d: Recycle of stale handle %v did not panic", shards, fl)
			}
		}()
		flit.Recycle(fl)
	}

	for _, op := range data {
		arg := int(op / 4)
		switch op % 4 {
		case 0: // packetize a packet of a byte-chosen length class
			p := flit.Packet{
				ID: nextID, Len: arg%17 + 1, Src: 0, Dst: 1,
				VN:        flit.VN(arg % int(flit.NumVNs)),
				CreatedAt: uint64(arg), Payload: uint64(arg) * 2654435761,
			}
			nextID++
			if shards == 0 {
				live = append(live, a.Packetize(p)...)
				continue
			}
			before := a.Live()
			fs := mags[arg%shards].Packetize(p)
			if a.Live()-before == len(fs) {
				live = append(live, fs...) // pooled; heap fallback has nil handles
			}
			a.Reconcile()
		case 1: // recycle one live flit, then assert its handle is dead
			if len(live) == 0 {
				continue
			}
			i := arg % len(live)
			fl := live[i]
			live = append(live[:i], live[i+1:]...)
			if shards == 0 {
				flit.Recycle(fl)
			} else {
				// usually not the magazine that packetized it
				mags[(arg*5+1)%shards].Recycle(fl)
			}
			checkStale(fl)
		case 2: // columnar read-back of one live flit
			if len(live) == 0 {
				continue
			}
			fl := live[arg%len(live)]
			if err := flit.CheckHandle(fl); err != nil {
				t.Fatalf("shards %d: live handle fails CheckHandle: %v", shards, err)
			}
			if cols.FlitDst(fl) != fl.Dst || cols.FlitSrc(fl) != fl.Src ||
				cols.FlitVN(fl) != fl.VN || cols.FlitSeq(fl) != fl.Seq ||
				cols.FlitLen(fl) != fl.Len || cols.FlitPacketID(fl) != fl.PacketID ||
				cols.FlitCreatedAt(fl) != fl.CreatedAt || cols.FlitPayload(fl) != fl.Payload ||
				cols.FlitAge(fl) != fl.InjectedAt || cols.FlitDeflections(fl) != fl.Deflections {
				t.Fatalf("shards %d: columnar read of %v disagrees with struct fields", shards, fl)
			}
			if nilCols.FlitDst(fl) != fl.Dst || nilCols.FlitVN(fl) != fl.VN {
				t.Fatalf("shards %d: nil-Columns reference read of %v disagrees with struct fields", shards, fl)
			}
		case 3: // reclaim: every outstanding handle goes stale at once
			a.Reclaim()
			if a.Live() != 0 {
				t.Fatalf("shards %d: Live() = %d after Reclaim", shards, a.Live())
			}
			for _, fl := range live {
				checkStale(fl)
			}
			live = live[:0]
		}
	}
	if a.Live() != len(live) {
		t.Fatalf("shards %d: Live() = %d, want %d outstanding", shards, a.Live(), len(live))
	}
}
