package flit_test

import (
	"testing"

	"afcnet/internal/flit"
)

// FuzzArenaHandles drives a byte-programmed interleaving of Packetize,
// Recycle, Reclaim and columnar reads against one arena, asserting the
// generation-stamped handle discipline at every step:
//
//   - a live handle always passes CheckHandle, and its columnar
//     accessors agree bit-for-bit with the struct fields (both through
//     the arena's banks and through the nil-Columns reference path);
//   - a recycled handle immediately fails CheckHandle (returned-bit
//     detection) and panics on double Recycle;
//   - after Reclaim every formerly-live handle fails CheckHandle with a
//     stale generation and panics on Recycle.
//
// The stale assertions run before the next Packetize can reuse the
// block: handles are pointers into the slab, so reissue rewrites their
// generation stamp and legitimately revives the pointer as a new flit.
func FuzzArenaHandles(f *testing.F) {
	f.Add([]byte{0, 4, 8, 1, 2, 3, 0, 12, 5, 6, 7, 3, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 3})
	f.Add([]byte{252, 16, 33, 77, 129, 200, 3, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := flit.NewArena()
		a.EnableColumns()
		cols := a.Columns()
		var nilCols *flit.Columns
		var live []*flit.Flit
		nextID := uint64(1)

		checkStale := func(fl *flit.Flit) {
			t.Helper()
			if err := flit.CheckHandle(fl); err == nil {
				t.Fatalf("stale handle %v passes CheckHandle", fl)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("Recycle of stale handle %v did not panic", fl)
				}
			}()
			flit.Recycle(fl)
		}

		for _, op := range data {
			arg := int(op / 4)
			switch op % 4 {
			case 0: // packetize a packet of a byte-chosen length class
				ln := arg%17 + 1
				fs := a.Packetize(flit.Packet{
					ID: nextID, Len: ln, Src: 0, Dst: 1,
					VN:        flit.VN(arg % int(flit.NumVNs)),
					CreatedAt: uint64(arg), Payload: uint64(arg) * 2654435761,
				})
				nextID++
				live = append(live, fs...)
			case 1: // recycle one live flit, then assert its handle is dead
				if len(live) == 0 {
					continue
				}
				i := arg % len(live)
				fl := live[i]
				live = append(live[:i], live[i+1:]...)
				flit.Recycle(fl)
				checkStale(fl)
			case 2: // columnar read-back of one live flit
				if len(live) == 0 {
					continue
				}
				fl := live[arg%len(live)]
				if err := flit.CheckHandle(fl); err != nil {
					t.Fatalf("live handle fails CheckHandle: %v", err)
				}
				if cols.FlitDst(fl) != fl.Dst || cols.FlitSrc(fl) != fl.Src ||
					cols.FlitVN(fl) != fl.VN || cols.FlitSeq(fl) != fl.Seq ||
					cols.FlitLen(fl) != fl.Len || cols.FlitPacketID(fl) != fl.PacketID ||
					cols.FlitCreatedAt(fl) != fl.CreatedAt || cols.FlitPayload(fl) != fl.Payload ||
					cols.FlitAge(fl) != fl.InjectedAt || cols.FlitDeflections(fl) != fl.Deflections {
					t.Fatalf("columnar read of %v disagrees with struct fields", fl)
				}
				if nilCols.FlitDst(fl) != fl.Dst || nilCols.FlitVN(fl) != fl.VN {
					t.Fatalf("nil-Columns reference read of %v disagrees with struct fields", fl)
				}
			case 3: // reclaim: every outstanding handle goes stale at once
				a.Reclaim()
				if a.Live() != 0 {
					t.Fatalf("Live() = %d after Reclaim", a.Live())
				}
				for _, fl := range live {
					checkStale(fl)
				}
				live = live[:0]
			}
		}
		if a.Live() != len(live) {
			t.Fatalf("Live() = %d, want %d outstanding", a.Live(), len(live))
		}
	})
}
