package runner

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, par := range []int{1, 2, 8, 100} {
		out, err := Map(100, Options{Parallelism: par}, func(i int) (int, error) {
			return i * 3, nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(out) != 100 {
			t.Fatalf("par=%d: len=%d", par, len(out))
		}
		for i, v := range out {
			if v != i*3 {
				t.Errorf("par=%d: out[%d]=%d, want %d", par, i, v, i*3)
			}
		}
	}
}

func TestZeroCells(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

// TestFirstErrorWins: the returned error is the one of the lowest-indexed
// failing cell, deterministically, because cells are claimed in index
// order — the lowest failing cell is always claimed (and hence executed)
// before any later failure can set the drain flag.
func TestFirstErrorWins(t *testing.T) {
	failAt := map[int]bool{10: true, 11: true, 12: true, 40: true}
	for _, par := range []int{1, 2, 7} {
		for trial := 0; trial < 20; trial++ {
			err := Run(64, Options{Parallelism: par}, func(i int) error {
				if failAt[i] {
					return fmt.Errorf("cell %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "cell 10 failed" {
				t.Fatalf("par=%d: err=%v, want cell 10's error", par, err)
			}
		}
	}
}

// TestDrainOnError: every cell below the failing index executes; with
// Parallelism 1 nothing after the failure runs (exact serial behavior).
func TestDrainOnError(t *testing.T) {
	var ran [20]atomic.Bool
	boom := errors.New("boom")
	err := Run(20, Options{Parallelism: 1}, func(i int) error {
		ran[i].Store(true)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	for i := 0; i <= 5; i++ {
		if !ran[i].Load() {
			t.Errorf("cell %d did not run", i)
		}
	}
	for i := 6; i < 20; i++ {
		if ran[i].Load() {
			t.Errorf("cell %d ran after the serial failure", i)
		}
	}

	// Parallel: cells before the failing index always execute.
	for i := range ran {
		ran[i].Store(false)
	}
	err = Run(20, Options{Parallelism: 4}, func(i int) error {
		ran[i].Store(true)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	for i := 0; i <= 5; i++ {
		if !ran[i].Load() {
			t.Errorf("cell %d did not run", i)
		}
	}
}

func TestPanicRecovered(t *testing.T) {
	for _, par := range []int{1, 3} {
		err := Run(8, Options{Parallelism: par}, func(i int) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "cell 3 panicked: kaboom") {
			t.Fatalf("par=%d: err=%v", par, err)
		}
	}
}

// TestOnCellCallback: every executed cell reports exactly once with a
// non-negative duration; calls are serialized (the callback mutates
// shared state without synchronization of its own, which -race
// verifies).
func TestOnCellCallback(t *testing.T) {
	var got []int
	var errs int
	_, err := Map(50, Options{
		Parallelism: 8,
		OnCell: func(i int, err error, elapsed time.Duration) {
			got = append(got, i)
			if err != nil {
				errs++
			}
			if elapsed < 0 {
				t.Errorf("cell %d: negative duration %v", i, elapsed)
			}
		},
	}, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 || errs != 0 {
		t.Fatalf("got %d callbacks, %d errors", len(got), errs)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("callback indices %v", got)
		}
	}
}

// TestBatchAndStartHooks: OnBatch fires once with the cell and worker
// counts before any cell runs; OnCellStart fires once per executed cell,
// serialized with OnCell so start/finish bookkeeping needs no locks of
// its own.
func TestBatchAndStartHooks(t *testing.T) {
	for _, par := range []int{1, 4} {
		var batches, started, finished int
		inflight := map[int]bool{}
		err := Run(30, Options{
			Parallelism: par,
			OnBatch: func(cells, workers int) {
				batches++
				if cells != 30 {
					t.Errorf("par=%d: OnBatch cells=%d, want 30", par, cells)
				}
				if workers != par {
					t.Errorf("par=%d: OnBatch workers=%d", par, workers)
				}
				if started != 0 {
					t.Errorf("par=%d: OnBatch after %d starts", par, started)
				}
			},
			OnCellStart: func(i int) {
				started++
				inflight[i] = true
			},
			OnCell: func(i int, err error, elapsed time.Duration) {
				finished++
				if !inflight[i] {
					t.Errorf("par=%d: cell %d finished without starting", par, i)
				}
				delete(inflight, i)
			},
		}, func(i int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if batches != 1 || started != 30 || finished != 30 || len(inflight) != 0 {
			t.Fatalf("par=%d: batches=%d started=%d finished=%d inflight=%d",
				par, batches, started, finished, len(inflight))
		}
	}
}

func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		par, cells, min, max int
	}{
		{1, 10, 1, 1},
		{4, 2, 2, 2},
		{4, 10, 4, 4},
		{0, 10, 1, 10}, // GOMAXPROCS-dependent, but bounded by cells
		{-3, 1, 1, 1},
	}
	for _, c := range cases {
		w := Options{Parallelism: c.par}.Workers(c.cells)
		if w < c.min || w > c.max {
			t.Errorf("Workers(par=%d, cells=%d) = %d, want in [%d, %d]",
				c.par, c.cells, w, c.min, c.max)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "3")
	if got := FromEnv(); got != 3 {
		t.Errorf("FromEnv() = %d with %s=3", got, EnvVar)
	}
	t.Setenv(EnvVar, "bogus")
	if got := FromEnv(); got < 1 {
		t.Errorf("FromEnv() = %d with bogus env", got)
	}
}

// TestFromEnvWarnsOnBadValue: an unusable AFCSIM_PARALLEL falls back to
// GOMAXPROCS but says so, once, on the warning sink; usable and unset
// values stay silent.
func TestFromEnvWarnsOnBadValue(t *testing.T) {
	for _, bad := range []string{"bogus", "0", "-2", "1.5"} {
		var buf strings.Builder
		if got := fromEnv(bad, &buf); got < 1 {
			t.Errorf("fromEnv(%q) = %d", bad, got)
		}
		warning := buf.String()
		if !strings.Contains(warning, EnvVar) || !strings.Contains(warning, bad) {
			t.Errorf("fromEnv(%q) warning = %q; want it to name the variable and value", bad, warning)
		}
		if strings.Count(warning, "\n") != 1 {
			t.Errorf("fromEnv(%q) warning is not one line: %q", bad, warning)
		}
	}
	for _, ok := range []string{"", "4"} {
		var buf strings.Builder
		fromEnv(ok, &buf)
		if buf.Len() != 0 {
			t.Errorf("fromEnv(%q) warned: %q", ok, buf.String())
		}
	}
}

// TestSerialEqualsParallel: results collected through the pool are
// identical to the serial loop for a deterministic per-cell function.
func TestSerialEqualsParallel(t *testing.T) {
	fn := func(i int) (uint64, error) {
		// Deterministic per-cell state: a tiny PRNG owned by the cell.
		x := uint64(i)*0x9E3779B97F4A7C15 + 1
		for k := 0; k < 1000; k++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		return x, nil
	}
	serial, err := Map(64, Options{Parallelism: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(64, Options{Parallelism: 6}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

// TestConcurrentCellsUnderRace exercises many goroutines mutating
// cell-owned state through the pool with -race enabled.
func TestConcurrentCellsUnderRace(t *testing.T) {
	var mu sync.Mutex
	total := 0
	err := Run(200, Options{Parallelism: 8}, func(i int) error {
		mu.Lock()
		total += i
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 199 * 200 / 2; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}
