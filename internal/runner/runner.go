// Package runner provides the deterministic fan-out engine behind every
// experiment harness: a fixed-size worker pool that executes independent
// (bench, kind, seed) cells and merges their results in submission order.
//
// The engine is deliberately work-stealing-free: cells are claimed from a
// single atomic cursor in index order, so with Parallelism == 1 the
// execution order is exactly the serial loop it replaces. Each cell must
// own all of its mutable state (its own network, its own sim.Source
// substreams); the engine never shares anything between cells except the
// read-only descriptor slice, which is what makes parallel output
// bit-for-bit equal to serial output.
//
// Error semantics: the error returned is always the error of the
// lowest-indexed failing cell, regardless of scheduling. (Cells are
// claimed in index order, so the lowest-indexed failing cell is claimed —
// and therefore executed — before any later failure can be observed.)
// After a failure, in-flight cells run to completion and not-yet-claimed
// cells are skipped, so the pool drains promptly. Panics inside a cell are
// recovered and surfaced as errors carrying the cell index.
package runner

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a fan-out run.
type Options struct {
	// Parallelism is the worker count; <= 0 selects GOMAXPROCS. The pool
	// never uses more workers than there are cells. Parallelism == 1
	// reproduces the serial loop exactly (same execution order, stop at
	// first error).
	Parallelism int

	// OnBatch, if non-nil, is invoked once per Run call, before any cell
	// executes, with the cell count and the effective worker count. The
	// observability layer (internal/obs) uses it to size progress totals.
	OnBatch func(cells, workers int)

	// OnCellStart, if non-nil, is invoked immediately before a cell
	// executes. Calls are serialized with OnCell under one mutex, so a
	// single unsynchronized observer can track in-flight cells.
	OnCellStart func(index int)

	// OnCell, if non-nil, is invoked after each executed cell with its
	// index, error (nil on success) and wall-clock duration. Calls are
	// serialized but arrive in completion order, not index order. Skipped
	// cells (drained after a failure) do not invoke it.
	OnCell func(index int, err error, elapsed time.Duration)
}

// Workers returns the effective worker count for cells cells.
func (o Options) Workers(cells int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// EnvVar is the environment variable the commands consult for a default
// worker count (their -parallel flag overrides it).
const EnvVar = "AFCSIM_PARALLEL"

// FromEnv returns the default worker count: $AFCSIM_PARALLEL when it is a
// positive integer, GOMAXPROCS otherwise. A set-but-unusable value (not
// an integer, or <= 0) is reported on stderr so a typo does not silently
// run at full parallelism.
func FromEnv() int {
	return fromEnv(os.Getenv(EnvVar), os.Stderr)
}

// fromEnv is FromEnv with the environment value and warning sink
// injected for tests.
func fromEnv(s string, warn io.Writer) int {
	def := runtime.GOMAXPROCS(0)
	if s == "" {
		return def
	}
	if v, err := strconv.Atoi(s); err == nil && v > 0 {
		return v
	}
	fmt.Fprintf(warn, "runner: ignoring %s=%q (want a positive integer); using GOMAXPROCS=%d\n",
		EnvVar, s, def)
	return def
}

// Run executes fn(i) for every i in [0, n) on a pool of
// min(Parallelism, n) workers and returns the lowest-indexed error, or
// nil if every cell succeeded.
func Run(n int, opt Options, fn func(i int) error) error {
	return RunWorkers(n, opt, func(_, i int) error { return fn(i) })
}

// RunWorkers is Run with the executing worker's identity exposed: fn is
// called as fn(worker, i) where worker is a stable index in [0, workers).
// A worker executes its cells sequentially, so per-worker state (a
// reused network, scratch buffers) needs no locking; cells must not
// depend on which worker — and hence which prior cell's recycled state —
// they land on. With one worker every cell sees worker 0, in index
// order: the serial loop exactly.
func RunWorkers(n int, opt Options, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opt.Workers(n)
	if opt.OnBatch != nil {
		opt.OnBatch(n, workers)
	}

	var cbMu sync.Mutex
	starting := func(i int) {
		if opt.OnCellStart == nil {
			return
		}
		cbMu.Lock()
		opt.OnCellStart(i)
		cbMu.Unlock()
	}
	report := func(i int, err error, elapsed time.Duration) {
		if opt.OnCell == nil {
			return
		}
		cbMu.Lock()
		opt.OnCell(i, err, elapsed)
		cbMu.Unlock()
	}
	exec := func(worker, i int) error {
		starting(i)
		begin := time.Now()
		err := runCell(worker, i, fn)
		report(i, err, time.Since(begin))
		return err
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := exec(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		cursor atomic.Int64
		failed atomic.Bool
		errMu  sync.Mutex
		first  error
		firstI int
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue // drain: skip cells claimed after a failure
				}
				err := exec(worker, i)
				if err != nil {
					errMu.Lock()
					if first == nil || i < firstI {
						first, firstI = err, i
					}
					errMu.Unlock()
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

// runCell invokes fn(worker, i), converting a panic into an error so one
// bad cell cannot tear down the whole sweep.
func runCell(worker, i int, fn func(worker, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: cell %d panicked: %v", i, r)
		}
	}()
	return fn(worker, i)
}

// Map executes fn over n cells and returns the results in submission
// (index) order, regardless of which worker finished when. On error the
// partial results of the cells that did execute are returned alongside
// the lowest-indexed error.
func Map[T any](n int, opt Options, fn func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, opt, func(_, i int) (T, error) { return fn(i) })
}

// MapWorkers is Map with the executing worker's identity exposed; see
// RunWorkers for the worker contract.
func MapWorkers[T any](n int, opt Options, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunWorkers(n, opt, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
