package scenario

import (
	"math"
	"strings"
	"testing"

	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseValid(t *testing.T) {
	s := mustParse(t, `{
		"name": "ramp",
		"duration": 5000,
		"rate": 0.05,
		"pattern": "uniform",
		"events": [
			{"at": 1000, "label": "mid", "rate": 0.2},
			{"at": 2000, "pattern": "hotspot:4:0.8", "burst": {"period": 100, "on": 30}},
			{"at": 3000, "deadLinks": [{"node": 4, "dir": "E"}], "deadRouters": [8]},
			{"at": 4000, "throttles": [{"node": 0, "dir": "s", "period": 50, "on": 25}]}
		]
	}`)
	if s.Name != "ramp" || s.Duration != 5000 || len(s.Events) != 4 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	mesh := topology.NewMesh(3, 3)
	if err := s.ValidateFor(mesh); err != nil {
		t.Fatalf("ValidateFor: %v", err)
	}
	cfg := s.TrafficConfig(mesh)
	if cfg.Rate != 0.05 || cfg.Pattern.Name() != "uniform" {
		t.Fatalf("TrafficConfig: %+v", cfg)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad json", `{`, "scenario:"},
		{"unknown field", `{"duration": 100, "rate": 0.1, "bogus": 1}`, "bogus"},
		{"zero duration", `{"duration": 0, "rate": 0.1}`, "duration"},
		{"no traffic", `{"duration": 100}`, "no initial traffic"},
		{"negative rate", `{"duration": 100, "rate": -0.1}`, "outside [0, 8]"},
		{"huge rate", `{"duration": 100, "rate": 9}`, "outside [0, 8]"},
		{"bad node rate", `{"duration": 100, "nodeRates": [0.1, 99]}`, "outside [0, 8]"},
		{"event out of order", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 50}, {"at": 50}]}`, "not after"},
		{"event past end", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 100}]}`, "outside run duration"},
		{"event bad rate", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "rate": -1}]}`, "outside [0, 8]"},
		{"burst on > period", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "burst": {"period": 5, "on": 6}}]}`, "burst on"},
		{"burst on without period", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "burst": {"period": 0, "on": 3}}]}`, "period=0"},
		{"bad dir", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "deadLinks": [{"node": 0, "dir": "up"}]}]}`, "unknown direction"},
		{"negative dead node", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "deadRouters": [-1]}]}`, "negative node"},
		{"throttle zero period", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "throttles": [{"node": 0, "dir": "e", "period": 0, "on": 0}]}]}`, "throttle"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("Parse accepted %s", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateForRejects(t *testing.T) {
	mesh := topology.NewMesh(3, 3) // 9 nodes
	cases := []struct {
		name, src, want string
	}{
		{"nodeRates length", `{"duration": 100, "nodeRates": [0.1, 0.1]}`, "9-node"},
		{"event nodeRates length", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "nodeRates": [0.1]}]}`, "9-node"},
		{"dead link out of range", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "deadLinks": [{"node": 9, "dir": "E"}]}]}`, "names node 9"},
		{"dead router out of range", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "deadRouters": [12]}]}`, "names node 12"},
		{"throttle out of range", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "throttles": [{"node": 9, "dir": "E", "period": 4, "on": 2}]}]}`, "names node 9"},
		{"bad pattern", `{"duration": 100, "rate": 0.1, "pattern": "zipzap"}`, "unknown pattern"},
		{"hotspot out of range", `{"duration": 100, "rate": 0.1, "pattern": "hotspot:42"}`, "hotspot node"},
		{"hotspot bad frac", `{"duration": 100, "rate": 0.1, "pattern": "hotspot:1:1.5"}`, "fraction"},
		{"event bad pattern", `{"duration": 100, "rate": 0.1,
			"events": [{"at": 10, "pattern": "nope"}]}`, "unknown pattern"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := mustParse(t, c.src)
			err := s.ValidateFor(mesh)
			if err == nil {
				t.Fatalf("ValidateFor accepted %s", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestTransposeNeedsSquareMesh(t *testing.T) {
	if _, err := ParsePattern("transpose", topology.NewMesh(4, 4)); err != nil {
		t.Errorf("transpose on 4x4: %v", err)
	}
	if _, err := ParsePattern("transpose", topology.NewMesh(4, 2)); err == nil {
		t.Error("transpose on 4x2 accepted; Dest would panic mid-run")
	}
}

func TestParseDir(t *testing.T) {
	for s, want := range map[string]topology.Dir{
		"E": topology.East, "east": topology.East,
		"w": topology.West, "West": topology.West,
		"N": topology.North, "north": topology.North,
		"s": topology.South, "SOUTH": topology.South,
	} {
		got, err := ParseDir(s)
		if err != nil || got != want {
			t.Errorf("ParseDir(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "L", "local", "northeast", "0"} {
		if _, err := ParseDir(s); err == nil {
			t.Errorf("ParseDir(%q) accepted", s)
		}
	}
}

func TestParsePatternHotspot(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	p, err := ParsePattern("hotspot:5", mesh)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := p.(traffic.Hotspot)
	if !ok || h.Hot != 5 || h.Frac != 0.5 {
		t.Errorf("hotspot:5 = %+v", p)
	}
	p, err = ParsePattern("hotspot:15:1", mesh)
	if err != nil {
		t.Fatal(err)
	}
	if h := p.(traffic.Hotspot); h.Hot != 15 || h.Frac != 1 {
		t.Errorf("hotspot:15:1 = %+v", h)
	}
	for _, s := range []string{"hotspot:", "hotspot:x", "hotspot:16", "hotspot:-1", "hotspot:3:0", "hotspot:3:nan"} {
		if _, err := ParsePattern(s, mesh); err == nil {
			t.Errorf("ParsePattern(%q) accepted", s)
		}
	}
}

func TestWindow(t *testing.T) {
	cases := []struct {
		now, start, period, on uint64
		open                   bool
		edge                   uint64
	}{
		{100, 100, 10, 3, true, 103},  // window just opened
		{102, 100, 10, 3, true, 103},  // last on-cycle
		{103, 100, 10, 3, false, 110}, // first off-cycle
		{109, 100, 10, 3, false, 110}, // last off-cycle
		{110, 100, 10, 3, true, 113},  // next window
		{100, 100, 10, 10, true, 110}, // always-on duty cycle
		{250, 100, 10, 3, true, 253},  // many periods later
	}
	for _, c := range cases {
		open, edge := window(c.now, c.start, c.period, c.on)
		if open != c.open || edge != c.edge {
			t.Errorf("window(%d, %d, %d, %d) = %v, %d; want %v, %d",
				c.now, c.start, c.period, c.on, open, edge, c.open, c.edge)
		}
	}
}

func TestNaNRateRejected(t *testing.T) {
	if rateOK(math.NaN()) || rateOK(math.Inf(1)) || rateOK(math.Inf(-1)) {
		t.Error("rateOK accepted a non-finite rate")
	}
}
