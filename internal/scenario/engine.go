package scenario

import (
	"fmt"
	"math"

	"afcnet/internal/network"
	"afcnet/internal/ni"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// phaseCap is the retained-sample capacity of each per-node per-phase
// latency histogram (stride thinning keeps percentiles representative
// beyond it; see stats.Histogram).
const phaseCap = 1024

// noAction marks "no further scheduled cycle".
const noAction = math.MaxUint64

// Engine applies a Spec to a running network. It is a serial end-of-
// cycle ticker: register it with Network.AddTicker *before* the traffic
// generator, so an event at cycle c changes conditions after the router
// bank of cycle c but before the generator injects at c. On sharded
// runs AddTicker clients run serially after the two-phase barrier, so
// the engine's mutations are deterministic at any shard count.
//
// The engine implements the kernel's Quiescer+Sleeper contract — it
// acts only at scheduled cycles (event timestamps, burst edges,
// throttle-window edges) and tells the kernel the next one, so
// active-set coasting never jumps past a scheduled change.
type Engine struct {
	net  *network.Network
	gen  *traffic.Generator
	spec *Spec
	mesh topology.Mesh

	eventIdx int
	// phase is the report bucket delivered packets are attributed to:
	// the index of the last applied event plus one (0 before any). Only
	// the engine's serial Tick writes it; the NI delivered hooks read it
	// (concurrently across nodes on sharded runs — the shard barrier
	// orders those reads after the write).
	phase int

	burst      Burst // Period == 0: no bursting
	burstStart uint64
	burstOn    bool

	throttles      []Throttle
	throttleStart  uint64
	throttleClosed []bool

	// nextAt is the next cycle Tick must act at (noAction when the
	// schedule is exhausted). Quiescent is a single compare against it.
	nextAt uint64

	// Per-node per-phase completion-time samples, written by this
	// node's delivered hook (shard-local: each NI delivers only from
	// its own router's tick) and merged across nodes at report time.
	// Histogram cells start nil and are allocated by the hook on the
	// first sample they see: at kilonode scale most (node, phase) cells
	// of a faulted or hotspot run never complete a packet, and eagerly
	// backing 2*nodes*phases histograms with phaseCap samples each
	// dominates engine memory. netHist and totHist cells are always
	// allocated as a pair, so a nil netHist cell implies both are empty.
	netHist   [][]*stats.Histogram // [node][phase], nil until first sample
	totHist   [][]*stats.Histogram
	delivered [][]uint64
}

// NewEngine builds an engine for spec over net and gen and attaches its
// delivered-packet hooks to every NI. It panics on a spec that fails
// ValidateFor (parse-time callers validate first); construction is
// programmer-facing, like network.New. The caller must still register
// the engine: net.AddTicker(engine) before net.AddTicker(gen).
func NewEngine(net *network.Network, gen *traffic.Generator, spec *Spec) *Engine {
	if err := spec.ValidateFor(net.Mesh()); err != nil {
		panic(err)
	}
	e := &Engine{
		net:  net,
		gen:  gen,
		spec: spec,
		mesh: net.Mesh(),
	}
	nodes := net.Nodes()
	phases := len(spec.Events) + 1
	e.netHist = make([][]*stats.Histogram, nodes)
	e.totHist = make([][]*stats.Histogram, nodes)
	e.delivered = make([][]uint64, nodes)
	for n := 0; n < nodes; n++ {
		e.netHist[n] = make([]*stats.Histogram, phases)
		e.totHist[n] = make([]*stats.Histogram, phases)
		e.delivered[n] = make([]uint64, phases)
		nh, th, dc := e.netHist[n], e.totHist[n], e.delivered[n]
		net.NI(topology.NodeID(n)).SetDeliveredHook(func(now uint64, d ni.Delivered) {
			ph := e.phase
			if nh[ph] == nil {
				nh[ph] = stats.NewHistogram(phaseCap)
				th[ph] = stats.NewHistogram(phaseCap)
			}
			nh[ph].Add(d.NetLatency)
			th[ph].Add(d.TotalLatency)
			dc[ph]++
		})
	}
	e.computeNext(0)
	return e
}

// Quiescent implements sim.Quiescer: ticking the engine is a no-op at
// every cycle before the next scheduled action.
func (e *Engine) Quiescent(now uint64) bool { return now < e.nextAt }

// FastForward implements sim.Quiescer: an idle engine tick has no side
// effects, so skipping k of them needs none either.
func (e *Engine) FastForward(k uint64) {}

// NextWake implements sim.Sleeper: the next scheduled event, burst edge
// or throttle edge, so active-set coasting stops exactly there.
func (e *Engine) NextWake(now uint64) (uint64, bool) {
	return e.nextAt, e.nextAt != noAction
}

// Tick implements sim.Ticker. It acts only at scheduled cycles (the
// dense reference kernel calls it every cycle; the early return keeps
// both kernels bit-identical).
func (e *Engine) Tick(now uint64) {
	if now < e.nextAt {
		return
	}
	for e.eventIdx < len(e.spec.Events) && e.spec.Events[e.eventIdx].At <= now {
		e.apply(now, &e.spec.Events[e.eventIdx])
		e.eventIdx++
		e.phase = e.eventIdx
	}
	e.applyBurst(now)
	e.applyThrottles(now)
	e.computeNext(now)
}

// apply effects one event at cycle now (== ev.At).
func (e *Engine) apply(now uint64, ev *Event) {
	switch {
	case len(ev.NodeRates) > 0:
		e.gen.SetNodeRates(ev.NodeRates)
	case ev.Rate != nil:
		e.gen.SetRate(*ev.Rate)
	}
	if ev.Pattern != "" {
		p, err := ParsePattern(ev.Pattern, e.mesh)
		if err != nil {
			panic(err) // unreachable: ValidateFor vetted every pattern
		}
		e.gen.SetPattern(p)
	}
	if ev.Burst != nil {
		if ev.Burst.Period == 0 {
			e.burst = Burst{}
			if !e.burstOn {
				e.gen.SetScale(1)
			}
			e.burstOn = true
		} else {
			e.burst = *ev.Burst
			e.burstStart = now
			// burstOn reflects the current generator scale; applyBurst
			// right after will open the first window.
		}
	}
	for _, l := range ev.DeadLinks {
		d, _ := ParseDir(l.Dir)
		e.net.KillLink(topology.NodeID(l.Node), d)
	}
	for _, r := range ev.DeadRouters {
		e.net.KillRouter(topology.NodeID(r))
		e.gen.MarkDead(topology.NodeID(r))
	}
	if ev.Throttles != nil {
		// Replacing the set reopens whatever the old set held closed.
		for i, closed := range e.throttleClosed {
			if closed {
				d, _ := ParseDir(e.throttles[i].Dir)
				e.net.SetLinkBlocked(topology.NodeID(e.throttles[i].Node), d, false)
			}
		}
		e.throttles = *ev.Throttles
		e.throttleStart = now
		e.throttleClosed = make([]bool, len(e.throttles))
	}
}

// window reports whether now falls in the on-window of a duty cycle
// anchored at start, and the cycle of the next window edge.
func window(now, start, period, on uint64) (open bool, edge uint64) {
	within := (now - start) % period
	if within < on {
		return true, now + (on - within)
	}
	return false, now + (period - within)
}

func (e *Engine) applyBurst(now uint64) {
	if e.burst.Period == 0 {
		return
	}
	on, _ := window(now, e.burstStart, e.burst.Period, e.burst.On)
	if on != e.burstOn {
		e.burstOn = on
		if on {
			e.gen.SetScale(1)
		} else {
			e.gen.SetScale(0)
		}
	}
}

func (e *Engine) applyThrottles(now uint64) {
	for i := range e.throttles {
		t := &e.throttles[i]
		open, _ := window(now, e.throttleStart, t.Period, t.On)
		if closed := !open; closed != e.throttleClosed[i] {
			e.throttleClosed[i] = closed
			d, _ := ParseDir(t.Dir)
			e.net.SetLinkBlocked(topology.NodeID(t.Node), d, closed)
		}
	}
}

// computeNext recomputes the next scheduled cycle after now.
func (e *Engine) computeNext(now uint64) {
	next := uint64(noAction)
	if e.eventIdx < len(e.spec.Events) {
		if at := e.spec.Events[e.eventIdx].At; at < next {
			next = at
		}
	}
	if e.burst.Period > 0 {
		if _, edge := window(now, e.burstStart, e.burst.Period, e.burst.On); edge < next {
			next = edge
		}
	}
	for i := range e.throttles {
		t := &e.throttles[i]
		if _, edge := window(now, e.throttleStart, t.Period, t.On); edge < next {
			next = edge
		}
	}
	e.nextAt = next
}

// PhaseStats summarizes the packet completions of one scenario phase.
type PhaseStats struct {
	Label      string
	Start, End uint64 // [Start, End) in cycles
	Delivered  uint64 // packets completed while the phase was active
	// Completion-time percentiles over the phase's deliveries, in
	// cycles; Net counts injection to delivery, Total creation to
	// delivery (source queueing included). Zero when nothing delivered.
	NetP50, NetP99, NetP999 uint64
	TotP50, TotP99, TotP999 uint64
	NetMean, TotMean        float64
}

// Phases merges the per-node samples and returns one PhaseStats per
// phase, in order. Deterministic: nodes merge in index order.
func (e *Engine) Phases() []PhaseStats {
	phases := len(e.spec.Events) + 1
	out := make([]PhaseStats, phases)
	mergedNet := stats.NewHistogram(64 * phaseCap)
	mergedTot := stats.NewHistogram(64 * phaseCap)
	for p := 0; p < phases; p++ {
		ps := &out[p]
		if p == 0 {
			ps.Label = "start"
		} else if ev := &e.spec.Events[p-1]; ev.Label != "" {
			ps.Label = ev.Label
		} else {
			ps.Label = fmt.Sprintf("phase%d", p)
		}
		if p > 0 {
			ps.Start = e.spec.Events[p-1].At
		}
		if p < phases-1 {
			ps.End = e.spec.Events[p].At
		} else {
			ps.End = e.spec.Duration
		}
		mergedNet.Reset()
		mergedTot.Reset()
		var netSum, totSum, count float64
		for n := range e.netHist {
			ps.Delivered += e.delivered[n][p]
			h := e.netHist[n][p]
			if h == nil {
				continue // no sample ever reached this node in this phase
			}
			merge(mergedNet, h)
			merge(mergedTot, e.totHist[n][p])
			// Means come from the exact per-node count/sum, not from the
			// stride-weighted merge (which only approximates counts).
			c := float64(h.Count())
			count += c
			netSum += h.Mean() * c
			totSum += e.totHist[n][p].Mean() * c
		}
		if mergedNet.Count() > 0 {
			ps.NetP50 = mergedNet.Percentile(50)
			ps.NetP99 = mergedNet.Percentile(99)
			ps.NetP999 = mergedNet.Percentile(99.9)
			ps.TotP50 = mergedTot.Percentile(50)
			ps.TotP99 = mergedTot.Percentile(99)
			ps.TotP999 = mergedTot.Percentile(99.9)
		}
		if count > 0 {
			ps.NetMean = netSum / count
			ps.TotMean = totSum / count
		}
	}
	return out
}

// merge folds src's retained samples into dst, each weighted by src's
// thinning stride so counts stay proportionate across nodes.
func merge(dst, src *stats.Histogram) {
	st := uint64(src.Stride())
	src.EachRetained(func(v uint64) {
		for i := uint64(0); i < st; i++ {
			dst.Add(v)
		}
	})
}
