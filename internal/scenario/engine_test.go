package scenario

import (
	"reflect"
	"testing"

	"afcnet/internal/network"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

func newTestNet(t *testing.T, kind network.Kind) (*network.Network, *traffic.Generator, func(*Spec) *Engine) {
	t.Helper()
	net := network.New(network.Config{Kind: kind, Seed: 7})
	build := func(spec *Spec) *Engine {
		gen := traffic.NewGenerator(net, spec.TrafficConfig(net.Mesh()), net.RandStream)
		eng := NewEngine(net, gen, spec)
		net.AddTicker(eng)
		net.AddTicker(gen)
		return eng
	}
	return net, nil, build
}

// TestEngineSchedule drives the engine like the dense kernel (a Tick at
// every cycle) and checks that events, burst edges and throttle edges
// act exactly at their scheduled cycles, that faults land in the
// network, and that the Quiescer/Sleeper answers always agree with the
// schedule.
func TestEngineSchedule(t *testing.T) {
	net, _, build := newTestNet(t, network.Bless)
	r3 := 0.3
	spec := &Spec{
		Duration: 1000,
		Rate:     0.1,
		Events: []Event{
			{At: 100, Rate: &r3, Burst: &Burst{Period: 20, On: 5}},
			{At: 200, DeadLinks: []LinkRef{{Node: 1, Dir: "E"}}, DeadRouters: []int{4}},
			{At: 300, Throttles: &[]Throttle{{Node: 0, Dir: "S", Period: 10, On: 5}}},
			{At: 400, Burst: &Burst{}, Throttles: &[]Throttle{}},
		},
	}
	eng := build(spec)

	if got, ok := eng.NextWake(0); got != 100 || !ok {
		t.Fatalf("NextWake(0) = %d, %v; want 100, true", got, ok)
	}
	if !eng.Quiescent(50) || eng.Quiescent(100) {
		t.Fatal("Quiescent disagrees with the first event at 100")
	}

	checks := map[uint64]func(){
		100: func() {
			if eng.phase != 1 {
				t.Errorf("cycle 100: phase = %d, want 1", eng.phase)
			}
			if !eng.burstOn {
				t.Error("cycle 100: burst window should open immediately")
			}
			// Next action is the burst's falling edge, not event 2.
			if eng.nextAt != 105 {
				t.Errorf("cycle 100: nextAt = %d, want burst edge 105", eng.nextAt)
			}
		},
		105: func() {
			if eng.burstOn {
				t.Error("cycle 105: burst window should have closed")
			}
			if eng.nextAt != 120 {
				t.Errorf("cycle 105: nextAt = %d, want next window 120", eng.nextAt)
			}
		},
		200: func() {
			if !net.LinkDead(1, topology.East) || !net.LinkDead(2, topology.West) {
				t.Error("cycle 200: link 1-E should be dead in both directions")
			}
			if !net.RouterDead(4) || !net.FaultsActive() {
				t.Error("cycle 200: router 4 should be dead")
			}
		},
		305: func() {
			if len(eng.throttleClosed) != 1 || !eng.throttleClosed[0] {
				t.Error("cycle 305: throttle window should have closed")
			}
		},
		400: func() {
			if eng.phase != 4 {
				t.Errorf("cycle 400: phase = %d, want 4", eng.phase)
			}
			if eng.burst.Period != 0 || len(eng.throttles) != 0 {
				t.Error("cycle 400: burst and throttles should be cleared")
			}
			if eng.nextAt != noAction {
				t.Errorf("cycle 400: nextAt = %d, want none", eng.nextAt)
			}
			if _, ok := eng.NextWake(400); ok {
				t.Error("cycle 400: NextWake should report no further action")
			}
		},
	}
	for now := uint64(0); now < 500; now++ {
		if q := eng.Quiescent(now); !q {
			if now != eng.nextAt {
				t.Fatalf("cycle %d: not quiescent but nextAt = %d", now, eng.nextAt)
			}
		}
		eng.Tick(now)
		if chk := checks[now]; chk != nil {
			chk()
		}
	}
	if !eng.Quiescent(500) {
		t.Error("schedule exhausted but engine not quiescent")
	}
}

// TestEnginePhases runs a two-phase scenario on a real network and
// checks the per-phase report: boundaries, labels, deliveries in both
// phases, and ordered percentiles.
func TestEnginePhases(t *testing.T) {
	net, _, build := newTestNet(t, network.Bless)
	spec := &Spec{
		Duration: 2000,
		Rate:     0.15,
		Events:   []Event{{At: 1000, Label: "after", Pattern: "hotspot:4:0.6"}},
	}
	eng := build(spec)
	net.Run(spec.Duration)

	ps := eng.Phases()
	if len(ps) != 2 {
		t.Fatalf("got %d phases, want 2", len(ps))
	}
	if ps[0].Label != "start" || ps[0].Start != 0 || ps[0].End != 1000 {
		t.Errorf("phase 0 = %q [%d, %d), want start [0, 1000)", ps[0].Label, ps[0].Start, ps[0].End)
	}
	if ps[1].Label != "after" || ps[1].Start != 1000 || ps[1].End != 2000 {
		t.Errorf("phase 1 = %q [%d, %d), want after [1000, 2000)", ps[1].Label, ps[1].Start, ps[1].End)
	}
	var total uint64
	for i, p := range ps {
		if p.Delivered == 0 {
			t.Errorf("phase %d delivered nothing", i)
			continue
		}
		total += p.Delivered
		if !(p.NetP50 <= p.NetP99 && p.NetP99 <= p.NetP999) {
			t.Errorf("phase %d net percentiles out of order: %d/%d/%d", i, p.NetP50, p.NetP99, p.NetP999)
		}
		if !(p.TotP50 <= p.TotP99 && p.TotP99 <= p.TotP999) {
			t.Errorf("phase %d total percentiles out of order: %d/%d/%d", i, p.TotP50, p.TotP99, p.TotP999)
		}
		if p.TotP50 < p.NetP50 {
			t.Errorf("phase %d total p50 %d below net p50 %d", i, p.TotP50, p.NetP50)
		}
		if p.NetMean <= 0 || p.TotMean < p.NetMean {
			t.Errorf("phase %d means inconsistent: net %.2f total %.2f", i, p.NetMean, p.TotMean)
		}
	}
	if total != net.DeliveredPackets() {
		t.Errorf("phase deliveries sum to %d, network delivered %d", total, net.DeliveredPackets())
	}
}

// TestLazyHistogramsMatchEager pins that allocating the per-node
// per-phase completion histograms on first sample (the production path)
// is invisible in the report: pre-allocating every cell the way the
// engine used to — which the test emulates by filling the tables before
// the run — must yield bit-identical merged phase stats (p50/p99/p999,
// means, delivery counts) on an identical same-seed run. It also pins
// the laziness itself: before any delivery, no cell is allocated.
func TestLazyHistogramsMatchEager(t *testing.T) {
	run := func(eager bool) []PhaseStats {
		net := network.New(network.Config{Kind: network.Bless, Seed: 11})
		spec := &Spec{
			Duration: 1500,
			Rate:     0.12,
			Events:   []Event{{At: 700, Label: "hot", Pattern: "hotspot:4:0.7"}},
		}
		gen := traffic.NewGenerator(net, spec.TrafficConfig(net.Mesh()), net.RandStream)
		eng := NewEngine(net, gen, spec)
		for n := range eng.netHist {
			for p := range eng.netHist[n] {
				if eng.netHist[n][p] != nil || eng.totHist[n][p] != nil {
					t.Fatalf("node %d phase %d histogram allocated before any sample", n, p)
				}
				if eager {
					eng.netHist[n][p] = stats.NewHistogram(phaseCap)
					eng.totHist[n][p] = stats.NewHistogram(phaseCap)
				}
			}
		}
		net.AddTicker(eng)
		net.AddTicker(gen)
		net.Run(spec.Duration)
		return eng.Phases()
	}
	lazy := run(false)
	eager := run(true)
	if !reflect.DeepEqual(lazy, eager) {
		t.Errorf("lazy histogram allocation changed the phase report:\nlazy:  %+v\neager: %+v", lazy, eager)
	}
	var total uint64
	for _, p := range lazy {
		total += p.Delivered
	}
	if total == 0 {
		t.Fatal("scenario delivered nothing; the comparison is vacuous")
	}
}

// TestEngineRejectsInvalidSpec pins the constructor contract: specs are
// validated against the concrete mesh before any hook is installed.
func TestEngineRejectsInvalidSpec(t *testing.T) {
	net, _, _ := newTestNet(t, network.Bless)
	gen := traffic.NewGenerator(net, traffic.Config{Rate: 0.1, Pattern: traffic.Uniform{Mesh: net.Mesh()}}, net.RandStream)
	defer func() {
		if recover() == nil {
			t.Error("NewEngine accepted a spec naming node 99 on a 9-node mesh")
		}
	}()
	NewEngine(net, gen, &Spec{Duration: 100, Rate: 0.1, Events: []Event{{At: 10, DeadRouters: []int{99}}}})
}
