package scenario

import (
	"testing"

	"afcnet/internal/topology"
)

// FuzzParse asserts the parser's no-panic contract on arbitrary bytes,
// and that any spec it accepts survives mesh-bound validation and
// traffic-config construction without panicking either.
func FuzzParse(f *testing.F) {
	f.Add([]byte(`{"duration": 100, "rate": 0.1}`))
	f.Add([]byte(`{"duration": 5000, "rate": 0.05, "pattern": "hotspot:3:0.9",
		"events": [
			{"at": 1000, "rate": 0.3, "burst": {"period": 40, "on": 10}},
			{"at": 2000, "deadLinks": [{"node": 5, "dir": "w"}], "deadRouters": [6]},
			{"at": 3000, "throttles": [{"node": 1, "dir": "n", "period": 16, "on": 8}]}
		]}`))
	f.Add([]byte(`{"duration": 1, "nodeRates": [1, 0, 0.5]}`))
	f.Add([]byte(`not json`))
	mesh := topology.NewMesh(4, 4)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		// A spec that passed structural validation may still fail against
		// a concrete mesh — but never by panicking.
		if err := s.ValidateFor(mesh); err != nil {
			return
		}
		_ = s.TrafficConfig(mesh)
	})
}
