// Package scenario is the declarative schedule layer that mutates run
// conditions mid-simulation at exact cycle boundaries: piecewise
// injection-rate ramps, bursty on/off traffic, hotspot relocation,
// link-capacity throttling, and fault injection (dead links and dead
// routers). A Spec — parsed from JSON — lists timestamped events; an
// Engine applies them deterministically from serial ticker context, so
// serial, experiment-parallel and sharded-tick runs produce bit-for-bit
// identical results.
//
// The events between two consecutive timestamps define a phase; the
// Engine records per-phase packet-completion-time distributions
// (network and total latency) and reports p50/p99/p999 per phase.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

// LinkRef names one mesh link by its source node and direction.
type LinkRef struct {
	Node int    `json:"node"`
	Dir  string `json:"dir"` // E|W|N|S (or east|west|north|south)
}

// Burst describes on/off bursty injection: sources inject for the first
// On cycles of every Period-cycle window, measured from the cycle the
// burst took effect, and are silent for the rest.
type Burst struct {
	Period uint64 `json:"period"`
	On     uint64 `json:"on"`
}

// Throttle describes duty-cycled link-capacity throttling: the named
// link carries data for the first On cycles of every Period-cycle
// window and is closed for the rest. Credits and control traffic keep
// flowing while closed, so backpressured credit ledgers stay intact.
type Throttle struct {
	Node   int    `json:"node"`
	Dir    string `json:"dir"`
	Period uint64 `json:"period"`
	On     uint64 `json:"on"`
}

// Event is one timestamped change of run conditions. Zero-valued /
// absent fields leave the corresponding condition untouched; DeadLinks
// and DeadRouters are cumulative and permanent, Throttles replaces the
// active throttle set (an empty non-nil list clears it).
type Event struct {
	// At is the cycle the event takes effect (applied after the router
	// bank of that cycle, before the traffic generator's tick).
	At uint64 `json:"at"`
	// Label names the phase this event opens (reports default to
	// "phaseN" when empty).
	Label string `json:"label,omitempty"`

	// Rate switches every node to this uniform injection rate
	// (flits/node/cycle). Nil leaves rates untouched.
	Rate *float64 `json:"rate,omitempty"`
	// NodeRates switches to per-node injection rates (len must equal
	// the node count). Overrides Rate when both are set.
	NodeRates []float64 `json:"nodeRates,omitempty"`
	// Pattern switches the destination pattern; see ParsePattern.
	Pattern string `json:"pattern,omitempty"`
	// Burst installs (Period > 0) or clears (Period == 0 with the field
	// present) bursty on/off injection.
	Burst *Burst `json:"burst,omitempty"`

	// DeadLinks permanently kills the named links (both directions).
	DeadLinks []LinkRef `json:"deadLinks,omitempty"`
	// DeadRouters permanently freezes the named routers, kills all
	// their links, and retargets traffic away from them.
	DeadRouters []int `json:"deadRouters,omitempty"`
	// Throttles replaces the set of duty-cycled link throttles.
	Throttles *[]Throttle `json:"throttles,omitempty"`
}

// Spec is a complete scenario: the initial traffic conditions, the
// total run length, and the timestamped events.
type Spec struct {
	Name string `json:"name,omitempty"`
	// Duration is the total cycles to run.
	Duration uint64 `json:"duration"`
	// Rate / NodeRates / Pattern are the phase-0 traffic conditions
	// (defaults: uniform pattern at Rate; Rate 0 with no NodeRates is
	// rejected — a scenario with no traffic measures nothing).
	Rate      float64   `json:"rate,omitempty"`
	NodeRates []float64 `json:"nodeRates,omitempty"`
	Pattern   string    `json:"pattern,omitempty"`
	Events    []Event   `json:"events,omitempty"`
}

// Parse decodes and structurally validates a JSON scenario spec. It
// never panics on malformed input (fuzzed); mesh-dependent range checks
// happen in ValidateFor.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses a JSON scenario spec from path.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// rateOK bounds an injection rate: finite, non-negative, and at most 8
// flits/node/cycle — far past saturation for every router kind, so the
// cap only rejects nonsense (the generator itself would just clamp the
// per-cycle packet probability at 1).
func rateOK(r float64) bool {
	return !math.IsNaN(r) && !math.IsInf(r, 0) && r >= 0 && r <= 8
}

func validBurst(b Burst) error {
	if b.Period == 0 {
		if b.On != 0 {
			return fmt.Errorf("scenario: burst with on=%d but period=0", b.On)
		}
		return nil // explicit clear
	}
	if b.On == 0 || b.On > b.Period {
		return fmt.Errorf("scenario: burst on=%d outside [1, period=%d]", b.On, b.Period)
	}
	return nil
}

// Validate checks everything that does not require a mesh: ordering,
// rate domains, burst/throttle windows, and direction syntax.
func (s *Spec) Validate() error {
	if s.Duration == 0 {
		return fmt.Errorf("scenario: duration must be positive")
	}
	if !rateOK(s.Rate) {
		return fmt.Errorf("scenario: rate %v outside [0, 8]", s.Rate)
	}
	if len(s.NodeRates) == 0 && s.Rate == 0 {
		return fmt.Errorf("scenario: no initial traffic (rate 0 and no nodeRates)")
	}
	for _, r := range s.NodeRates {
		if !rateOK(r) {
			return fmt.Errorf("scenario: node rate %v outside [0, 8]", r)
		}
	}
	var prev uint64
	for i := range s.Events {
		ev := &s.Events[i]
		if i > 0 && ev.At <= prev {
			return fmt.Errorf("scenario: event %d at cycle %d not after its predecessor at %d", i, ev.At, prev)
		}
		prev = ev.At
		if ev.At >= s.Duration {
			return fmt.Errorf("scenario: event %d at cycle %d outside run duration %d", i, ev.At, s.Duration)
		}
		if ev.Rate != nil && !rateOK(*ev.Rate) {
			return fmt.Errorf("scenario: event %d rate %v outside [0, 8]", i, *ev.Rate)
		}
		for _, r := range ev.NodeRates {
			if !rateOK(r) {
				return fmt.Errorf("scenario: event %d node rate %v outside [0, 8]", i, r)
			}
		}
		if ev.Burst != nil {
			if err := validBurst(*ev.Burst); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
		}
		for _, l := range ev.DeadLinks {
			if l.Node < 0 {
				return fmt.Errorf("scenario: event %d dead link at negative node %d", i, l.Node)
			}
			if _, err := ParseDir(l.Dir); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
		}
		for _, n := range ev.DeadRouters {
			if n < 0 {
				return fmt.Errorf("scenario: event %d dead router at negative node %d", i, n)
			}
		}
		if ev.Throttles != nil {
			for _, t := range *ev.Throttles {
				if t.Node < 0 {
					return fmt.Errorf("scenario: event %d throttle at negative node %d", i, t.Node)
				}
				if _, err := ParseDir(t.Dir); err != nil {
					return fmt.Errorf("event %d: %w", i, err)
				}
				if t.Period == 0 || t.On == 0 || t.On > t.Period {
					return fmt.Errorf("scenario: event %d throttle on=%d outside [1, period=%d]", i, t.On, t.Period)
				}
			}
		}
	}
	return nil
}

// ValidateFor completes validation against a concrete mesh: node
// indices in range, NodeRates lengths, and pattern syntax.
func (s *Spec) ValidateFor(mesh topology.Mesh) error {
	if err := s.Validate(); err != nil {
		return err
	}
	nodes := mesh.Nodes()
	checkRates := func(rs []float64, what string) error {
		if len(rs) != 0 && len(rs) != nodes {
			return fmt.Errorf("scenario: %s has %d entries for a %d-node mesh", what, len(rs), nodes)
		}
		return nil
	}
	checkNode := func(n int, what string) error {
		if n >= nodes {
			return fmt.Errorf("scenario: %s names node %d on a %d-node mesh", what, n, nodes)
		}
		return nil
	}
	if err := checkRates(s.NodeRates, "nodeRates"); err != nil {
		return err
	}
	if s.Pattern != "" {
		if _, err := ParsePattern(s.Pattern, mesh); err != nil {
			return err
		}
	}
	for i := range s.Events {
		ev := &s.Events[i]
		what := fmt.Sprintf("event %d", i)
		if err := checkRates(ev.NodeRates, what+" nodeRates"); err != nil {
			return err
		}
		if ev.Pattern != "" {
			if _, err := ParsePattern(ev.Pattern, mesh); err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
		}
		for _, l := range ev.DeadLinks {
			if err := checkNode(l.Node, what+" dead link"); err != nil {
				return err
			}
		}
		for _, n := range ev.DeadRouters {
			if err := checkNode(n, what+" dead router"); err != nil {
				return err
			}
		}
		if ev.Throttles != nil {
			for _, t := range *ev.Throttles {
				if err := checkNode(t.Node, what+" throttle"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TrafficConfig returns the phase-0 traffic configuration of the spec.
// Call ValidateFor first; an invalid pattern falls back to uniform.
func (s *Spec) TrafficConfig(mesh topology.Mesh) traffic.Config {
	cfg := traffic.Config{Rate: s.Rate}
	if len(s.NodeRates) > 0 {
		cfg.NodeRates = s.NodeRates
	}
	if s.Pattern != "" {
		if p, err := ParsePattern(s.Pattern, mesh); err == nil {
			cfg.Pattern = p
		}
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.Uniform{Mesh: mesh}
	}
	return cfg
}

// ParseDir parses a direction name: one of E, W, N, S or their full
// lowercase names.
func ParseDir(s string) (topology.Dir, error) {
	switch strings.ToLower(s) {
	case "e", "east":
		return topology.East, nil
	case "w", "west":
		return topology.West, nil
	case "n", "north":
		return topology.North, nil
	case "s", "south":
		return topology.South, nil
	}
	return 0, fmt.Errorf("scenario: unknown direction %q (want E|W|N|S)", s)
}

// ParsePattern parses a destination-pattern name:
//
//	uniform | transpose | bitcomp | neighbor | quadrant
//	hotspot:<node>[:<frac>]   (frac in (0, 1], default 0.5)
func ParsePattern(name string, mesh topology.Mesh) (traffic.Pattern, error) {
	switch name {
	case "uniform":
		return traffic.Uniform{Mesh: mesh}, nil
	case "transpose":
		// Transpose maps (x, y) to (y, x), which only lands inside a
		// square mesh; reject here rather than panic mid-run.
		if mesh.Width != mesh.Height {
			return nil, fmt.Errorf("scenario: transpose needs a square mesh, got %dx%d", mesh.Width, mesh.Height)
		}
		return traffic.Transpose{Mesh: mesh}, nil
	case "bitcomp":
		return traffic.BitComplement{Mesh: mesh}, nil
	case "neighbor":
		return traffic.NearNeighbor{Mesh: mesh}, nil
	case "quadrant":
		return traffic.Quadrant{Mesh: mesh}, nil
	}
	if rest, ok := strings.CutPrefix(name, "hotspot:"); ok {
		nodeS, fracS, hasFrac := strings.Cut(rest, ":")
		node, err := strconv.Atoi(nodeS)
		if err != nil || node < 0 || node >= mesh.Nodes() {
			return nil, fmt.Errorf("scenario: hotspot node %q outside the %d-node mesh", nodeS, mesh.Nodes())
		}
		frac := 0.5
		if hasFrac {
			frac, err = strconv.ParseFloat(fracS, 64)
			if err != nil || math.IsNaN(frac) || frac <= 0 || frac > 1 {
				return nil, fmt.Errorf("scenario: hotspot fraction %q outside (0, 1]", fracS)
			}
		}
		return traffic.Hotspot{Mesh: mesh, Hot: topology.NodeID(node), Frac: frac}, nil
	}
	return nil, fmt.Errorf("scenario: unknown pattern %q", name)
}
