package core

import (
	"fmt"
	"math/bits"

	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/topology"
)

// bufferedCycle performs one cycle of backpressured operation with lazy VC
// allocation: every occupied single-flit VC is an independent switch
// candidate (flit-by-flit routing), there is no VC-allocation stage, and
// winners depart with no VC assignment — the downstream buffer write picks
// a free slot.
func (r *Router) bufferedCycle(now uint64) {
	// Fast path: with no buffered flit and no escape entry there is no
	// switch candidate, so neither allocation stage can grant — and a
	// grantless RoundRobin.Pick leaves the pointer untouched, so skipping
	// both stages is bit-for-bit identical to scanning every empty slot.
	// This is the dominant cycle for buffered-mode routers at low load
	// (arrivals in flight on the pipes keep them from full quiescence).
	if r.held == 0 {
		r.bufferedInject(now)
		return
	}

	// Input stage of separable switch allocation: one candidate per input
	// port. Escape latches drain with priority (they are the oldest
	// uncredited flits; see the package comment). wantOut records which
	// output ports have at least one requester, so the output stage can
	// skip the rest (their grantless picks would not move the arbiters).
	var wantOut [topology.NumPorts]bool
	for p := 0; p < topology.NumPorts; p++ {
		r.cands[p] = cand{}
		if r.heldAt[p] == 0 && len(r.esc[p]) == 0 {
			continue
		}
		if e := r.esc[p]; len(e) > 0 && e[0].readyAt <= now {
			f := e[0].f
			out := r.dor[r.dstOf(f)]
			if out == topology.Local || r.usableOut(f, out) {
				r.cands[p] = cand{valid: true, escape: true, out: out}
				wantOut[out] = true
				continue
			}
			// Escape head blocked on credits; regular slots may still
			// compete this cycle.
		}
		ok := func(s int) bool {
			sl := &r.in[p][s]
			if sl.f == nil || sl.readyAt > now {
				return false
			}
			out := r.dor[r.dstOf(sl.f)]
			return out == topology.Local || r.usableOut(sl.f, out)
		}
		var pick int
		if r.occValid {
			// Occupied slots only; empty slots fail the predicate anyway,
			// so the masked scan grants identically and moves the pointer
			// identically.
			pick = r.inArb[p].PickMask(r.occ[p], ok)
		} else {
			pick = r.inArb[p].Pick(ok)
		}
		if pick >= 0 {
			f := r.in[p][pick].f
			out := r.dor[r.dstOf(f)]
			r.cands[p] = cand{valid: true, slot: pick, out: out}
			wantOut[out] = true
		}
	}

	// Output stage: one grant per output port (router.EjectWidth for the
	// ejection port, like every router kind).
	for o := 0; o < topology.NumPorts; o++ {
		out := topology.Dir(o)
		if !wantOut[out] {
			continue
		}
		grants := 1
		if out == topology.Local {
			grants = r.ejectWidth
		}
		for g := 0; g < grants; g++ {
			win := r.outArb[o].Pick(func(p int) bool {
				c := r.cands[p]
				return c.valid && c.out == out
			})
			if win < 0 {
				break
			}
			r.sendBuffered(now, topology.Dir(win), out)
		}
	}

	r.bufferedInject(now)
}

func (r *Router) sendBuffered(now uint64, in, out topology.Dir) {
	c := &r.cands[in]
	c.valid = false
	var f *flit.Flit
	if c.escape {
		f = r.esc[in][0].f
		copy(r.esc[in], r.esc[in][1:])
		r.esc[in] = r.esc[in][:len(r.esc[in])-1]
		r.held--
		// Escape entries are outside the credited SRAM: no credit is
		// returned upstream for them.
	} else {
		sl := &r.in[in][c.slot]
		f = sl.f
		sl.f = nil
		r.occ[in] &^= 1 << uint(c.slot)
		r.held--
		r.heldAt[in]--
		if r.meter != nil {
			r.meter.BufRead()
		}
		if in != topology.Local && !r.deadOut[in] {
			if pl := r.wires.Ports[in]; pl.CreditOut != nil {
				pl.CreditOut.Send(now, link.Credit{VC: c.slot, VN: r.vnOf(f)})
				if r.meter != nil {
					r.meter.Credit()
				}
			}
		}
	}
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
	}
	r.routedFlits++
	r.dispatched++

	if out == topology.Local {
		r.ejectedFlits++
		r.sink.Deliver(now, f)
		return
	}
	if ds := &r.down[out]; ds.tracking {
		vn := r.vnOf(f)
		ds.credits[vn]--
		if ds.credits[vn] == r.cfg.GossipFreeSlots-1 {
			r.gossipLow++
		}
		if ds.credits[vn] < 0 {
			panic(fmt.Sprintf("afc %d: negative credits toward %s vn %s", r.node, out, vn))
		}
	}
	// Lazy VC allocation: the flit departs with no VC; the downstream
	// buffer write assigns one.
	f.VC = flit.NoVC
	f.Hops++
	r.wires.Ports[out].Out.Send(now, f)
	if r.meter != nil {
		r.meter.LinkHop()
	}
}

// bufferedInject pulls up to one flit per virtual network per cycle from
// the NI into free local-port slots (the Garnet-style NI model used by
// every router kind).
func (r *Router) bufferedInject(now uint64) {
	// Empty NI: every peek below would return nil.
	if r.srcCount != nil && r.srcCount.QueuedFlits() == 0 {
		return
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		f := r.src.Peek(vn)
		if f == nil {
			continue
		}
		s := r.freeSlot(topology.Local, vn)
		if s < 0 {
			continue
		}
		f = r.src.Pop(vn)
		r.stamp(now, f)
		r.injectedFlits++
		f.VC = s
		r.in[topology.Local][s] = slot{f: f, readyAt: now + 1}
		r.occ[topology.Local] |= 1 << uint(s)
		r.held++
		r.heldAt[topology.Local]++
		if r.meter != nil {
			r.meter.BufWrite()
		}
	}
}

// freeSlot returns a free slot index for vn at port p, or -1. This is the
// lazy VC allocation itself: free slots are pre-discoverable by simple
// daisy-chaining, adding no latency to the critical path (Section III-E).
// Each virtual network's slots are a contiguous ascending range, so the
// trailing-zero count of the free bits inside vnMask is exactly the first
// free slot the reference scan would find.
func (r *Router) freeSlot(p topology.Dir, vn flit.VN) int {
	if r.occValid {
		m := ^r.occ[p] & r.vnMask[vn]
		if m == 0 {
			return -1
		}
		return bits.TrailingZeros64(m)
	}
	for _, s := range r.vnSlots[vn] {
		if r.in[p][s].f == nil {
			return s
		}
	}
	return -1
}
