package core

import (
	"afcnet/internal/link"
	"afcnet/internal/topology"
)

// decideMode evaluates the mode-transition policies at the end of each
// cycle (Figure 1 of the paper).
func (r *Router) decideMode(now uint64) {
	if r.alwaysBuffered {
		return
	}
	switch r.mode {
	case ModeBless:
		if r.misrouteThreshold > 0 {
			// Rejected policy (ablation A7): only misroute observations
			// and gossip can trigger the forward switch.
			if r.misrouteTripped {
				r.misrouteTripped = false
				r.beginForwardSwitch(now, false)
				return
			}
		} else if r.monitor.Value() > r.th.High {
			r.beginForwardSwitch(now, false)
			return
		}
		if r.gossipTriggered() {
			r.beginForwardSwitch(now, true)
		}
	case ModeBuffered:
		if r.monitor.Value() < r.th.Low && r.buffersEmpty() {
			r.beginReverseSwitch(now)
		}
	}
}

// gossipTriggered reports whether a tracked downstream virtual network has
// fewer than X free buffers (Section III-D's "sledgehammer" condition).
// Credits are per-VN under lazy VC allocation, so the watermark applies
// per VN: once one VN's free count falls below X, flits of that VN could
// soon find the port unusable and pile up locally.
//
// The condition is read every cycle by Quiescent (see the "Shard safety"
// notes there), so it is maintained incrementally: gossipLow counts the
// below-watermark (tracked direction, VN) pairs, updated at every credit
// increment/decrement and tracking toggle, making this a register
// compare on the idle path.
func (r *Router) gossipTriggered() bool { return r.gossipLow > 0 }

// gossipLowFull returns how many virtual networks sit below the gossip
// watermark at full credits — nonzero only in the unusual configuration
// where the watermark exceeds a VN's buffer capacity.
func (r *Router) gossipLowFull() int {
	n := 0
	for _, c := range r.cfg.VCsPerVN {
		if c < r.cfg.GossipFreeSlots {
			n++
		}
	}
	return n
}

// gossipLowAt returns how many of direction d's tracked per-VN credit
// counts currently sit below the gossip watermark (0 when untracked).
func (r *Router) gossipLowAt(d topology.Dir) int {
	ds := &r.down[d]
	if !ds.tracking {
		return 0
	}
	n := 0
	for _, c := range ds.credits {
		if c < r.cfg.GossipFreeSlots {
			n++
		}
	}
	return n
}

// beginForwardSwitch starts the 2L-cycle transition to backpressured mode
// (Section III-B): neighbors are notified immediately (the notification
// arrives L cycles later and they start counting credits from then);
// arrivals continue through the backpressureless datapath until
// bufferedFrom = T+2L+1, the first cycle at which a flit sent under credit
// accounting can arrive.
func (r *Router) beginForwardSwitch(now uint64, gossip bool) {
	r.mode = ModeSwitching
	r.bufferedFrom = now + uint64(2*r.linkLat) + 1
	r.forwardSwitches++
	if gossip {
		r.gossipSwitches++
	}
	if r.meter != nil {
		// Wake the buffers immediately (conservative: leakage accrues for
		// the whole switch window).
		r.meter.SetGated(false)
	}
	r.notifyNeighbors(now, link.CtrlStartCredits)
}

// beginReverseSwitch switches to backpressureless mode in the very next
// cycle (Section III-C): legal only with empty buffers, so no flit can be
// trapped. Neighbors keep decrementing credits until the stop
// notification lands; the discrepancy is only unnecessary accounting.
func (r *Router) beginReverseSwitch(now uint64) {
	r.mode = ModeBless
	r.reverseSwitches++
	if r.meter != nil {
		r.meter.SetGated(true)
	}
	r.notifyNeighbors(now, link.CtrlStopCredits)
}

func (r *Router) notifyNeighbors(now uint64, c link.Ctrl) {
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if r.deadOut[d] {
			continue // dead wire: the notification is lost with the link
		}
		if pl := r.wires.Ports[d]; pl.CtrlOut != nil {
			pl.CtrlOut.Send(now, c)
		}
	}
}

// buffersEmpty reports whether every SRAM slot and escape latch is free.
func (r *Router) buffersEmpty() bool { return r.held == 0 }
