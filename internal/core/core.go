// Package core implements the paper's primary contribution: the Adaptive
// Flow Control (AFC) router, which dynamically switches between
// backpressureless (deflection) and backpressured (credit-based) modes of
// operation per router, using the paper's three mechanisms:
//
//   - Local contention thresholds (Section III-B/C): each router smooths
//     its local traffic intensity (4-cycle window + EWMA, weight 0.99) and
//     compares it against position-scaled high/low thresholds with
//     hysteresis. Above the high threshold a backpressureless router
//     forward-switches to backpressured mode over 2L cycles; below the low
//     threshold — and only once its buffers are empty — a backpressured
//     router reverse-switches back.
//
//   - Gossip-induced mode-switch (Section III-D): a backpressureless
//     router tracks credits of backpressured neighbors; if a downstream
//     virtual network's free buffers fall below the watermark X (>= 2L) it
//     force-switches to backpressured mode, expanding the backpressured
//     region before the neighbor's buffers can be overrun.
//
//   - Lazy VC allocation (Section III-E): in backpressured mode AFC routes
//     flit-by-flit, so the input buffer is organized as K single-flit VCs,
//     credits are tracked per virtual network, the upstream router sends
//     flits with no VC assignment, and the downstream buffer write picks
//     any free slot. This removes the VCA pipeline stage and halves total
//     buffering versus the baseline (32 vs. 64 flits/port).
//
// Mode-switch protocol and credit exactness. A forward switch beginning at
// cycle T sends a start-credits notification that reaches each neighbor at
// T+L; flits those neighbors send from T+L onward arrive from T+2L+1
// onward and are buffered, while earlier flits arrive by T+2L and are
// still deflected — so neighbors' credit decrements account for exactly
// the flits that will occupy buffer slots. A reverse switch (buffers
// empty) takes effect immediately; the stale decrements neighbors make
// before the stop-credits notification lands are harmless, exactly as the
// paper argues.
//
// Escape latches. The paper's watermark argument makes buffer exhaustion
// unreachable in the common case, but a flit in backpressureless mode can
// transiently find every usable output either taken or credit-masked
// during the 2L switch window. AFC hardware must do something with such a
// flit; this implementation gives each input port a small escape-latch
// FIFO (capacity 2L+1, outside the credited SRAM so upstream credit
// accounting stays exact). An escape event immediately triggers a forward
// switch and the escape latches drain with priority in backpressured
// mode. The experiments report escape events; they are zero in all
// closed-loop runs.
package core

import (
	"fmt"
	"math/bits"
	"math/rand"

	"afcnet/internal/config"
	"afcnet/internal/energy"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
)

// Mode is the operating mode of an AFC router.
type Mode uint8

// AFC router modes. Switching is the 2L-cycle forward transition window
// during which the router still operates backpressurelessly but neighbors
// are being told to start credit tracking.
const (
	ModeBless Mode = iota
	ModeSwitching
	ModeBuffered

	numModes = 3
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBless:
		return "backpressureless"
	case ModeSwitching:
		return "switching"
	case ModeBuffered:
		return "backpressured"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// slot is one single-flit virtual channel of the lazily-allocated input
// buffer. A nil flit marks a free slot.
type slot struct {
	f       *flit.Flit
	readyAt uint64
}

// escape is an entry of the per-port escape-latch FIFO.
type escape struct {
	f       *flit.Flit
	readyAt uint64
}

// downstream is the locally tracked state of the neighbor on one output
// port: whether it is in backpressured mode (and hence credits matter) and
// the per-virtual-network free-slot counts.
type downstream struct {
	tracking bool
	credits  [flit.NumVNs]int
}

type latched struct {
	f         *flit.Flit
	port      topology.Dir
	arrivedAt uint64
}

// Router is one AFC router.
//
// The field order is a deliberate hot/cold split. The leading "hot
// tick-path core" holds exactly what the per-cycle quiescence probe and
// FastForward touch, so an idle router — the dominant case in the
// kilonode regime — costs the first few cache lines of its slab slot
// and nothing else. The middle section is the active-tick working set,
// and the tail is cold configuration, fault and stats state read only
// inside ticks that do real work. Routers are normally carved from a
// Slab in ascending node order (band-major for the sharded tick's row
// bands), so sweeps over the bank stream through one contiguous array
// instead of chasing a heap object per node.
type Router struct {
	// --- hot tick-path core (Quiescent + FastForward) ---

	// dead freezes the whole router (fault injection): Tick and
	// FastForward become no-ops and Quiescent reports true, so held
	// flits stay parked — and countable — forever.
	dead bool
	// alwaysBuffered pins the router in backpressured mode ("AFC
	// always-backpressured" in Section V), isolating the lazy-VCA
	// mechanism from the adaptivity mechanisms.
	alwaysBuffered bool
	occValid       bool
	// misrouteTripped records that a flit crossed the misroute threshold
	// this cycle (rejected-policy ablation only).
	misrouteTripped bool
	mode            Mode
	// held counts flits currently in SRAM slots and escape latches
	// (maintained at the enqueue/dequeue sites) so quiescence, drain and
	// reverse-switch buffer-empty checks are O(1).
	held int
	// gossipLow counts the (tracked direction, virtual network) pairs
	// whose mirrored credit count sits below the gossip watermark,
	// maintained at every credit/tracking mutation. It makes
	// gossipTriggered — called from Quiescent every cycle since the
	// sharded tick landed — a register compare instead of a per-VN scan
	// over the down array (the BENCH_4 low-load regression).
	gossipLow int
	// misrouteThreshold selects the rejected cumulative-misroute switch
	// policy when positive (see Options.MisrouteThreshold).
	misrouteThreshold int
	// inbox, when non-nil, is this router's slot of the network's
	// per-node aggregate in-flight slab (link.Pipe.SetTally), split by
	// pipe class: [0] data, [1] credit, [2] ctrl. One cache line then
	// replaces Quiescent's twelve-pipe pointer chase, and each receive
	// scan skips outright when its own class shows nothing in flight;
	// nil (standalone construction) falls back to the pipe scans.
	inbox   *[3]int32
	monitor stats.IntensityMonitor
	latches []latched
	meter   *energy.Meter
	// srcCount is src when it can report its queue total in O(1).
	srcCount   router.QueuedCounter
	injArb     router.RoundRobin
	injArmedAt [flit.NumVNs]uint64
	modeCycles [numModes]uint64

	// --- active-tick working set ---

	bufferedFrom uint64 // first cycle arrivals are buffered (forward switch)

	// occ mirrors SRAM slot occupancy per input port as a bitmask (bit s
	// set = slot s holds a flit) and vnMask covers each virtual network's
	// contiguous slot range, so free-slot discovery and the buffered-cycle
	// input arbitration are trailing-zero scans over words instead of
	// pointer walks. Maintained at the same enqueue/dequeue sites as
	// heldAt; meaningful only while occValid (totalSlots <= 64 — any
	// larger configuration falls back to the slot scans).
	occ    [topology.NumPorts]uint64
	vnMask [flit.NumVNs]uint64
	// heldAt counts the occupied SRAM slots per input port, letting the
	// buffered-cycle input stage skip the slot scan of empty ports (a
	// grantless arbitration pick would not have moved the pointer).
	heldAt [topology.NumPorts]int

	in   [topology.NumPorts][]slot
	esc  [topology.NumPorts][]escape
	down [topology.NumDirs]downstream
	// trackedDirs counts the directions with down[d].tracking set,
	// maintained at every tracking toggle, so the gossip checks in
	// decideMode and Quiescent are a register compare in the common
	// (no buffered neighbor) case instead of a scan over the cold
	// down array.
	trackedDirs int
	dispatched  int // flits dispatched this cycle (intensity metric)

	cands  [topology.NumPorts]cand
	inArb  [topology.NumPorts]router.RoundRobin
	outArb [topology.NumPorts]router.RoundRobin

	// blockedOut marks output ports whose data link is fault-blocked
	// (dead, or throttled closed this duty window): usableOut treats
	// them like missing links, so routing steers around the fault.
	blockedOut [topology.NumDirs]bool
	// deadOut marks output ports whose link is permanently dead; unlike
	// a throttle it also suppresses credit and control sends (a dead
	// wire carries nothing — the invariant checker excludes such edges).
	deadOut [topology.NumDirs]bool

	// dor is node's precomputed DOR next-hop table, indexed by
	// destination. With slab construction it is a view into the
	// network's shared topology.Tables — one O(N²) table per mesh, not
	// per router.
	dor []topology.Dir
	// nbr lists the directions with a wired neighbor (data, credit and
	// control pipes all exist exactly there), so the per-cycle receive
	// loops skip the empty ports of edge and corner routers. Shared
	// storage under slab construction, like dor.
	nbr []topology.Dir
	// cols, when non-nil, is the arena's columnar flit bank; the datapath
	// reads hot per-flit state (destination, virtual network, deflection
	// count) through it. Nil is the -nocolumnar struct-field reference
	// path — the accessors fall back themselves.
	cols  *flit.Columns
	wires router.Wires
	src   router.LocalSource
	sink  router.LocalSink
	defl  router.Deflector
	// scratch for bless dispatch
	dflits []*flit.Flit
	dports []topology.Dir

	// --- cold config/fault/stats tail ---

	mesh       topology.Mesh
	node       topology.NodeID
	cfg        config.AFC
	linkLat    int
	ejectWidth int
	th         config.Thresholds
	escCap     int
	vnSlots    [flit.NumVNs][]int
	totalSlots int

	// Stats
	routedFlits     uint64
	deflections     uint64
	ejectedFlits    uint64
	injectedFlits   uint64
	forwardSwitches uint64
	reverseSwitches uint64
	gossipSwitches  uint64
	escapeEvents    uint64
}

type cand struct {
	valid  bool
	escape bool
	slot   int
	out    topology.Dir
}

// Options configures non-paper-parameter aspects of the router.
type Options struct {
	// AlwaysBuffered pins the router in backpressured mode.
	AlwaysBuffered bool
	// Policy selects the deflection arbitration policy (default
	// PolicyRandom, the paper's choice).
	Policy router.DeflectPolicy
	// MisrouteThreshold > 0 replaces the local contention thresholds with
	// the design alternative the paper REJECTS (Section III-B): forward-
	// switch when a passing flit has accumulated that many misroutes.
	// The paper's objection — contention is then detected in the wrong
	// network region, because a deflected flit trips the threshold only
	// after it has left the hot region — is demonstrated by ablation A7.
	MisrouteThreshold int
	// Tables, when non-nil, provides the shared per-mesh route tables
	// and neighbor lists: the router's dor/nbr slices and its
	// deflector's full route table become views into the shared backing
	// instead of private O(N) / O(N²) copies. Nil (standalone
	// construction) builds private tables from the mesh.
	Tables *topology.Tables
}

// Slab is a contiguous bank of AFC routers: the Router structs occupy
// one backing array, and every router's SRAM slot arrays and escape
// FIFOs are carved from two shared slabs in carve order. The network
// carves in ascending node order — band-major for the sharded tick's
// contiguous row bands — so each shard's phase-A sweep walks a private,
// contiguous working set.
type Slab struct {
	routers []Router
	slots   []slot
	escs    []escape
	// vnSlots is the VN -> slot-index mapping, identical for every
	// router of one configuration, built once and aliased (read-only
	// after construction).
	vnSlots    [flit.NumVNs][]int
	totalSlots int
	escCap     int
	next       int
}

// NewSlab returns a slab with room for count routers; cfg fixes the
// SRAM geometry and linkLatency the escape-latch capacity (both must
// match the subsequent New calls).
func NewSlab(count int, cfg config.AFC, linkLatency int) *Slab {
	s := &Slab{escCap: 2*linkLatency + 1}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		for i := 0; i < cfg.VCsPerVN[vn]; i++ {
			s.vnSlots[vn] = append(s.vnSlots[vn], s.totalSlots)
			s.totalSlots++
		}
	}
	s.routers = make([]Router, count)
	s.slots = make([]slot, count*topology.NumPorts*s.totalSlots)
	s.escs = make([]escape, count*topology.NumPorts*s.escCap)
	return s
}

// New returns a standalone AFC router at node (a slab of one). rng
// drives deflection arbitration.
func New(mesh topology.Mesh, node topology.NodeID, cfg config.AFC, linkLatency, ejectWidth int,
	rng *rand.Rand, wires router.Wires, src router.LocalSource, sink router.LocalSink,
	meter *energy.Meter, opts Options) *Router {
	return NewSlab(1, cfg, linkLatency).New(mesh, node, cfg, linkLatency, ejectWidth,
		rng, wires, src, sink, meter, opts)
}

// New carves the next router from the slab and initializes it at node.
// It panics when the slab is exhausted. rng drives deflection
// arbitration.
func (s *Slab) New(mesh topology.Mesh, node topology.NodeID, cfg config.AFC, linkLatency, ejectWidth int,
	rng *rand.Rand, wires router.Wires, src router.LocalSource, sink router.LocalSink,
	meter *energy.Meter, opts Options) *Router {

	if s.next >= len(s.routers) {
		panic("core: router slab exhausted")
	}
	r := &s.routers[s.next]
	r.mesh = mesh
	r.node = node
	r.wires = wires
	r.src = src
	r.sink = sink
	r.meter = meter
	r.cfg = cfg
	r.linkLat = linkLatency
	r.ejectWidth = ejectWidth
	r.th = cfg.ThresholdsByPosition[mesh.Position(node)]
	r.alwaysBuffered = opts.AlwaysBuffered
	r.misrouteThreshold = opts.MisrouteThreshold
	r.monitor.Init(cfg.EWMAWeight)
	r.escCap = s.escCap
	r.vnSlots = s.vnSlots
	r.totalSlots = s.totalSlots

	var routes topology.RouteTable
	if opts.Tables != nil {
		routes = opts.Tables.Routes(node)
	} else {
		routes = mesh.Routes(node)
	}
	// The deflector shares the same table — before the shared-tables
	// layout each AFC router built two private O(N²) copies.
	r.defl.Init(mesh, node, opts.Policy, rng, routes)
	r.dor = routes.DOR

	r.occValid = r.totalSlots <= 64
	if r.occValid {
		for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
			for _, sl := range r.vnSlots[vn] {
				r.vnMask[vn] |= 1 << uint(sl)
			}
		}
	}
	base := s.next * topology.NumPorts
	for p := 0; p < topology.NumPorts; p++ {
		lo := (base + p) * s.totalSlots
		r.in[p] = s.slots[lo : lo+s.totalSlots : lo+s.totalSlots]
		elo := (base + p) * s.escCap
		r.esc[p] = s.escs[elo:elo : elo+s.escCap]
		r.inArb[p].Init(r.totalSlots)
		r.outArb[p].Init(topology.NumPorts)
	}
	r.injArb.Init(flit.NumVNs)
	r.srcCount, _ = src.(router.QueuedCounter)
	if opts.Tables != nil {
		r.nbr = opts.Tables.Neighbors(node)
	} else {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if pl := &wires.Ports[d]; pl.In != nil || pl.CreditIn != nil || pl.CtrlIn != nil {
				r.nbr = append(r.nbr, d)
			}
		}
	}

	if opts.AlwaysBuffered {
		r.mode = ModeBuffered
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if wires.Ports[d].Exists() {
				r.down[d] = downstream{tracking: true, credits: cfg.VCsPerVN}
				r.trackedDirs++
				r.gossipLow += r.gossipLowFull()
			}
		}
	} else {
		r.mode = ModeBless
		if meter != nil {
			meter.SetGated(true)
		}
	}
	s.next++
	return r
}

// SetInbox attaches the router's slot of the network's per-node
// aggregate in-flight slab (see link.Pipe.SetTally); Quiescent then
// reads one int32 instead of scanning every inbound pipe. Build-time
// wiring, kept across Reset.
func (r *Router) SetInbox(t *[3]int32) { r.inbox = t }

// DORTable exposes the router's per-destination DOR table and
// NeighborDirs its wired-direction list (aliasing tests assert they
// share the network's topology.Tables backing rather than holding
// private copies).
func (r *Router) DORTable() []topology.Dir { return r.dor }

// NeighborDirs reports the router's wired mesh directions.
func (r *Router) NeighborDirs() []topology.Dir { return r.nbr }

// DeflectorDORTable exposes the deflector's DOR table (see DORTable).
func (r *Router) DeflectorDORTable() []topology.Dir { return r.defl.DORTable() }

// Node implements router.Router.
func (r *Router) Node() topology.NodeID { return r.node }

// Reset rewinds the router to its freshly constructed state, keeping
// the SRAM slot arrays, escape FIFOs and scratch buffers, and reseeding
// the deflection randomness with seed (the root of the stream number a
// fresh construction would have consumed). The meter's gating is
// re-established to the constructor's choice for the router's starting
// mode. Part of the cross-cell network-reuse path.
func (r *Router) Reset(seed int64) {
	r.defl.Reseed(seed)
	r.monitor.Reset()
	for p := 0; p < topology.NumPorts; p++ {
		for s := range r.in[p] {
			r.in[p][s] = slot{}
		}
		r.esc[p] = r.esc[p][:0]
		r.inArb[p].Reset()
		r.outArb[p].Reset()
		r.cands[p] = cand{}
		r.heldAt[p] = 0
		r.occ[p] = 0
	}
	r.injArb.Reset()
	r.injArmedAt = [flit.NumVNs]uint64{}
	r.latches = r.latches[:0]
	r.dflits = r.dflits[:0]
	r.dports = r.dports[:0]
	r.bufferedFrom = 0
	r.held = 0
	r.dispatched = 0
	r.misrouteTripped = false
	r.routedFlits = 0
	r.deflections = 0
	r.ejectedFlits = 0
	r.injectedFlits = 0
	r.modeCycles = [numModes]uint64{}
	r.forwardSwitches = 0
	r.reverseSwitches = 0
	r.gossipSwitches = 0
	r.escapeEvents = 0
	r.blockedOut = [topology.NumDirs]bool{}
	r.deadOut = [topology.NumDirs]bool{}
	r.dead = false
	if r.alwaysBuffered {
		r.mode = ModeBuffered
		r.trackedDirs = 0
		r.gossipLow = 0
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if r.wires.Ports[d].Exists() {
				r.down[d] = downstream{tracking: true, credits: r.cfg.VCsPerVN}
				r.trackedDirs++
				r.gossipLow += r.gossipLowFull()
			} else {
				r.down[d] = downstream{}
			}
		}
		if r.meter != nil {
			r.meter.SetGated(false)
		}
	} else {
		r.mode = ModeBless
		r.trackedDirs = 0
		r.gossipLow = 0
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			r.down[d] = downstream{}
		}
		if r.meter != nil {
			r.meter.SetGated(true)
		}
	}
}

// SetPortBlocked marks (or clears) output d as fault-blocked for data:
// usableOut then treats the link as missing, so flits route around it.
// Scenario link throttling toggles this at duty-window boundaries.
func (r *Router) SetPortBlocked(d topology.Dir, blocked bool) { r.blockedOut[d] = blocked }

// SetPortDead marks output d permanently dead: data is blocked and
// credit/control notifications stop flowing on the wire.
func (r *Router) SetPortDead(d topology.Dir) {
	r.blockedOut[d] = true
	r.deadOut[d] = true
}

// SetDead freezes the router entirely (scenario dead-router fault): Tick
// and FastForward become no-ops, Quiescent reports true, and any held
// flits stay parked — still visible to ForEachFlit, so the checker's
// conservation ledger keeps balancing.
func (r *Router) SetDead() { r.dead = true }

// Mode returns the router's current operating mode.
func (r *Router) Mode() Mode { return r.mode }

// ModeCycles returns the cycles spent in each mode (Switching counts
// separately; the duty-cycle experiment folds it into backpressureless,
// since the datapath still deflects during the window).
func (r *Router) ModeCycles() [3]uint64 { return r.modeCycles }

// ForwardSwitches returns the number of bless->buffered transitions.
func (r *Router) ForwardSwitches() uint64 { return r.forwardSwitches }

// ReverseSwitches returns the number of buffered->bless transitions.
func (r *Router) ReverseSwitches() uint64 { return r.reverseSwitches }

// GossipSwitches returns how many forward switches were gossip-induced.
func (r *Router) GossipSwitches() uint64 { return r.gossipSwitches }

// EscapeEvents returns how many flits used the escape latches.
func (r *Router) EscapeEvents() uint64 { return r.escapeEvents }

// Deflections returns the misroutes issued by this router.
func (r *Router) Deflections() uint64 { return r.deflections }

// RoutedFlits returns the flits dispatched (sent or ejected).
func (r *Router) RoutedFlits() uint64 { return r.routedFlits }

// Intensity returns the current smoothed local traffic intensity.
func (r *Router) Intensity() float64 { return r.monitor.Value() }

// BufferedFlits returns flits currently in SRAM slots and escape latches.
func (r *Router) BufferedFlits() int { return r.held }

// LatchedFlits returns flits currently in bless-mode pipeline latches.
func (r *Router) LatchedFlits() int { return len(r.latches) }

// Quiescent implements the kernel's active-set contract (sim.Quiescer).
// An AFC router may be skipped only when ticking is a provable no-op
// beyond the per-cycle bookkeeping FastForward replays:
//
//   - No flit is held (SRAM, escape latches, pipeline latches), in
//     flight toward this router, or awaiting injection, and no credit or
//     control notification is in flight either — any of those is a wake
//     edge the pipe counters expose.
//   - The mode cannot change on its own. ModeSwitching always ticks (a
//     transition is completing). An adaptive ModeBuffered router always
//     ticks too: its EWMA decay is what triggers the reverse switch.
//   - An adaptive ModeBless router additionally requires its 4-cycle
//     window to be all-zero: Observe(0) moves the EWMA toward the window
//     average, so with stale nonzero window entries the EWMA could still
//     climb across the forward-switch threshold during idle cycles. With
//     a clear window the EWMA decays monotonically, and the last
//     decideMode already proved it at or below the threshold (under the
//     misroute-threshold ablation policy the EWMA is not consulted at
//     all, and the misroute trip cannot fire without traffic).
//   - A ModeBless router whose gossip condition currently holds must
//     tick: decideMode would begin a forward switch. The condition can be
//     true while everything else is idle — a reverse switch lands the
//     router in ModeBless without re-evaluating gossip that same cycle,
//     and a tracked downstream may still be below the watermark — so it
//     is checked here rather than argued frozen-false. While no credits
//     or control notifications arrive the credit mirrors cannot change,
//     so once the condition is false it stays false across skipped
//     cycles.
//
// This is exactly the contract the sharded tick (internal/network)
// leans on: whenever Quiescent is true, Tick is bit-for-bit equivalent
// to FastForward(1), so a skip decision made from a start-of-cycle view
// of the pipe counters (which cannot see same-cycle sends parked in
// staged boundary registers) still produces serial-identical state.
func (r *Router) Quiescent(now uint64) bool {
	if r.dead {
		return true
	}
	if r.held != 0 || len(r.latches) != 0 {
		return false
	}
	switch r.mode {
	case ModeSwitching:
		return false
	case ModeBuffered:
		if !r.alwaysBuffered {
			return false
		}
	case ModeBless:
		if r.misrouteThreshold == 0 && !r.monitor.WindowClear() {
			return false
		}
		if r.gossipTriggered() {
			return false
		}
	}
	// The inbox tallies mirror the summed InFlight of every inbound
	// pipe at all times (see link.Pipe.SetTally), so one cache line of
	// loads decides exactly what the pipe scan would.
	if r.inbox != nil {
		if r.inbox[0]|r.inbox[1]|r.inbox[2] != 0 {
			return false
		}
	} else {
		for _, d := range r.nbr {
			pl := &r.wires.Ports[d]
			if pl.In != nil && pl.In.InFlight() != 0 {
				return false
			}
			if pl.CreditIn != nil && pl.CreditIn.InFlight() != 0 {
				return false
			}
			if pl.CtrlIn != nil && pl.CtrlIn.InFlight() != 0 {
				return false
			}
		}
	}
	if r.srcCount != nil {
		return r.srcCount.QueuedFlits() == 0
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		if r.src.Peek(vn) != nil {
			return false
		}
	}
	return true
}

// FastForward applies k skipped idle cycles (sim.Quiescer): static
// energy, mode duty-cycle accounting, and the intensity monitor's
// Observe(0) sequence, replayed bit-for-bit. On the backpressureless
// datapath each idle tick also rotates the injection arbiter by one (its
// Pick predicate is always true) and zeroes the idle injection registers
// via armInjection's empty-queue branch; the buffered datapath's
// injection touches neither.
func (r *Router) FastForward(k uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTicks(k)
	}
	r.modeCycles[r.mode] += k
	r.monitor.ObserveIdle(k)
	if r.mode != ModeBuffered {
		r.injArb.Advance(k)
		r.injArmedAt = [flit.NumVNs]uint64{}
	}
}

// Credits exposes the tracked free-slot count of the neighbor on d for vn
// (invariant tests).
func (r *Router) Credits(d topology.Dir, vn flit.VN) (int, bool) {
	return r.down[d].credits[vn], r.down[d].tracking
}

// Occupancy returns the occupied SRAM slots of vn at input port p.
// Escape latches are outside the credited SRAM pool and not counted;
// the invariant checker reconciles this against the upstream router's
// tracked credits.
func (r *Router) Occupancy(p topology.Dir, vn flit.VN) int {
	if r.occValid {
		return bits.OnesCount64(r.occ[p] & r.vnMask[vn])
	}
	n := 0
	for _, s := range r.vnSlots[vn] {
		if r.in[p][s].f != nil {
			n++
		}
	}
	return n
}

// ForEachFlit calls fn for every flit currently held in this router:
// SRAM slots, escape latches, and bless-mode pipeline latches
// (invariant checker's conservation and age scans).
func (r *Router) ForEachFlit(fn func(*flit.Flit)) {
	for p := range r.in {
		for s := range r.in[p] {
			if f := r.in[p][s].f; f != nil {
				fn(f)
			}
		}
		for _, e := range r.esc[p] {
			fn(e.f)
		}
	}
	for _, l := range r.latches {
		fn(l.f)
	}
}

// Tick implements one cycle of AFC operation.
func (r *Router) Tick(now uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTick()
	}
	r.modeCycles[r.mode]++
	r.dispatched = 0

	r.receiveCtrl(now)
	r.receiveCredits(now)

	// Complete a pending forward switch: once the last
	// backpressureless-window arrivals (latched at bufferedFrom-1) have
	// been dispatched, the router operates in backpressured mode.
	if r.mode == ModeSwitching && now >= r.bufferedFrom && len(r.latches) == 0 {
		r.mode = ModeBuffered
	}

	switch r.mode {
	case ModeBuffered:
		r.bufferedCycle(now)
	default:
		r.blessCycle(now)
	}

	r.receive(now)
	r.monitor.Observe(r.dispatched)
	r.decideMode(now)
}

// receiveCtrl applies neighbors' mode notifications.
func (r *Router) receiveCtrl(now uint64) {
	// inbox[2] counts ctrl values in flight toward this node: zero
	// means every Recv below would miss, so the scan is skipped
	// outright. In bless-mode steady state no ctrl traffic exists at
	// all, so this turns the per-cycle ctrl poll into one load.
	// (Nonzero does not imply an arrival now — the scan still polls.)
	if r.inbox != nil && r.inbox[2] == 0 {
		return
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if pl.CtrlIn == nil {
			continue
		}
		c, ok := pl.CtrlIn.Recv(now)
		if !ok {
			continue
		}
		switch c {
		case link.CtrlStartCredits:
			// The neighbor's buffers are empty at the announcement, so
			// the initial credit count is the full per-VN capacity.
			if !r.down[d].tracking {
				r.trackedDirs++
			}
			r.gossipLow -= r.gossipLowAt(d)
			r.down[d] = downstream{tracking: true, credits: r.cfg.VCsPerVN}
			r.gossipLow += r.gossipLowFull()
		case link.CtrlStopCredits:
			// Per the paper, occupancy is considered empty immediately;
			// in-flight credits for the stopped neighbor are ignored.
			if r.down[d].tracking {
				r.trackedDirs--
			}
			r.gossipLow -= r.gossipLowAt(d)
			r.down[d] = downstream{}
		}
	}
}

// receiveCredits applies credit backflow from tracked neighbors.
func (r *Router) receiveCredits(now uint64) {
	if r.inbox != nil && r.inbox[1] == 0 {
		return // see receiveCtrl: no credits in flight toward this node
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if pl.CreditIn == nil {
			continue
		}
		c, ok := pl.CreditIn.Recv(now)
		if !ok {
			continue
		}
		ds := &r.down[d]
		if !ds.tracking {
			continue // stale credit after a stop notification
		}
		ds.credits[c.VN]++
		if ds.credits[c.VN] == r.cfg.GossipFreeSlots {
			r.gossipLow--
		}
		if ds.credits[c.VN] > r.cfg.VCsPerVN[c.VN] {
			panic(fmt.Sprintf("afc %d: credit overflow toward %s vn %s", r.node, d, c.VN))
		}
	}
}

// SetColumns attaches the columnar flit banks the router reads hot
// per-flit state through. Nil selects the struct-field reference path.
func (r *Router) SetColumns(c *flit.Columns) {
	r.cols = c
	r.defl.SetColumns(c)
}

func (r *Router) dstOf(f *flit.Flit) topology.NodeID { return r.cols.FlitDst(f) }
func (r *Router) vnOf(f *flit.Flit) flit.VN          { return r.cols.FlitVN(f) }

// usableOut reports whether output d can carry f this cycle, ignoring
// same-cycle port contention (the caller masks taken ports).
func (r *Router) usableOut(f *flit.Flit, d topology.Dir) bool {
	if !r.wires.Ports[d].Exists() || r.blockedOut[d] {
		return false
	}
	ds := &r.down[d]
	return !ds.tracking || ds.credits[r.vnOf(f)] > 0
}

// receive accepts this cycle's link arrivals: into buffer slots when the
// backpressured datapath is (or is about to be) active, into pipeline
// latches otherwise. The boundary is exact: flits sent by neighbors under
// credit accounting arrive at or after bufferedFrom (see the package
// comment), so buffering them can never overflow.
func (r *Router) receive(now uint64) {
	if r.inbox != nil && r.inbox[0] == 0 {
		return // see receiveCtrl: no flits in flight toward this node
	}
	buffered := r.mode == ModeBuffered ||
		(r.mode == ModeSwitching && now >= r.bufferedFrom)
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if pl.In == nil {
			continue
		}
		f, ok := pl.In.Recv(now)
		if !ok {
			continue
		}
		if buffered {
			s := r.freeSlot(d, r.vnOf(f))
			if s < 0 {
				panic(fmt.Sprintf("afc %d: buffer overflow on %s vn %s (flit %v)", r.node, d, f.VN, f))
			}
			// Lazy VC allocation: the buffer write assigns the VC.
			f.VC = s
			r.in[d][s] = slot{f: f, readyAt: now + 1}
			r.occ[d] |= 1 << uint(s)
			r.held++
			r.heldAt[d]++
			if r.meter != nil {
				r.meter.BufWrite()
			}
		} else {
			r.latches = append(r.latches, latched{f: f, port: d, arrivedAt: now})
			if r.meter != nil {
				r.meter.Latch()
			}
		}
	}
}

func (r *Router) stamp(now uint64, f *flit.Flit) {
	if st, ok := r.src.(interface {
		StampInjection(uint64, *flit.Flit)
	}); ok {
		st.StampInjection(now, f)
	} else {
		f.SetInjected(now)
	}
}
