package core

import (
	"fmt"

	"afcnet/internal/flit"
	"afcnet/internal/topology"
)

// blessCycle performs one cycle of backpressureless (deflection)
// operation. It differs from a plain deflection router in exactly two
// ways (Section III): outputs toward tracked (backpressured-mode)
// neighbors are masked per virtual network when credits run out, and a
// flit left with no usable output is parked in its port's escape latches
// and forces a forward mode-switch.
func (r *Router) blessCycle(now uint64) {
	r.dflits = r.dflits[:0]
	r.dports = r.dports[:0]
	for _, l := range r.latches {
		if l.arrivedAt >= now {
			panic(fmt.Sprintf("afc %d: latch holds current-cycle flit", r.node))
		}
		r.dflits = append(r.dflits, l.f)
		r.dports = append(r.dports, l.port)
	}
	r.latches = r.latches[:0]

	assignments := r.defl.Assign(r.dflits, r.usableOut, r.ejectWidth)
	var taken [topology.NumDirs]bool
	for i, a := range assignments {
		f := r.dflits[i]
		if !a.OK {
			r.escapeBuffer(now, r.dports[i], f)
			continue
		}
		if a.Dir == topology.Local {
			r.eject(now, f)
			continue
		}
		taken[a.Dir] = true
		if a.Deflected {
			f.BumpDeflections()
			r.deflections++
		}
		if r.misrouteThreshold > 0 && r.cols.FlitDeflections(f) >= r.misrouteThreshold {
			r.misrouteTripped = true
		}
		r.blessSend(now, a.Dir, f)
	}

	r.blessInject(now, &taken)
}

func (r *Router) eject(now uint64, f *flit.Flit) {
	r.routedFlits++
	r.ejectedFlits++
	r.dispatched++
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
	}
	r.sink.Deliver(now, f)
}

func (r *Router) blessSend(now uint64, d topology.Dir, f *flit.Flit) {
	if ds := &r.down[d]; ds.tracking {
		vn := r.vnOf(f)
		ds.credits[vn]--
		if ds.credits[vn] == r.cfg.GossipFreeSlots-1 {
			r.gossipLow++
		}
		if ds.credits[vn] < 0 {
			panic(fmt.Sprintf("afc %d: negative credits toward %s vn %s", r.node, d, vn))
		}
	}
	r.routedFlits++
	r.dispatched++
	f.Hops++
	r.wires.Ports[d].Out.Send(now, f)
	if r.meter != nil {
		r.meter.SwArb()
		r.meter.Xbar()
		r.meter.LinkHop()
	}
}

// armInjection advances vn's injection-stage register (see
// deflect.Router.armInjection; injected flits must see the same 2-cycle
// pipeline as network flits).
func (r *Router) armInjection(now uint64, vn flit.VN) bool {
	if r.src.Peek(vn) == nil {
		r.injArmedAt[vn] = 0
		return false
	}
	if r.injArmedAt[vn] == 0 {
		r.injArmedAt[vn] = now + 1
	}
	return now >= r.injArmedAt[vn]
}

// blessInject admits up to one new flit per virtual network, each needing
// an output port that is both free and usable for it (injection-port
// backpressure).
func (r *Router) blessInject(now uint64, taken *[topology.NumDirs]bool) {
	start := r.injArb.Next()
	// Empty NI: every armInjection would peek nil, zero its register and
	// decline, so zeroing them all and returning is bit-for-bit identical.
	if r.srcCount != nil && r.srcCount.QueuedFlits() == 0 {
		r.injArmedAt = [flit.NumVNs]uint64{}
		return
	}
	for i := 0; i < flit.NumVNs; i++ {
		vn := flit.VN((start + i) % flit.NumVNs)
		if !r.armInjection(now, vn) {
			continue
		}
		f := r.src.Peek(vn)
		canRoute := false
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if !taken[d] && r.usableOut(f, d) {
				canRoute = true
				break
			}
		}
		if !canRoute {
			continue
		}
		f = r.src.Pop(vn)
		// Latency accounting starts at injection-register entry, like the
		// buffer write of the backpressured datapath.
		entered := r.injArmedAt[vn] - 1
		r.injArmedAt[vn] = now + 1
		r.stamp(entered, f)
		r.injectedFlits++

		one := []*flit.Flit{f}
		a := r.defl.Assign(one, func(ff *flit.Flit, d topology.Dir) bool {
			return !taken[d] && r.usableOut(ff, d)
		}, 0)[0]
		if !a.OK {
			panic(fmt.Sprintf("afc %d: injection with no usable port", r.node))
		}
		taken[a.Dir] = true
		if a.Deflected {
			f.BumpDeflections()
			r.deflections++
		}
		r.blessSend(now, a.Dir, f)
	}
}

// escapeBuffer parks a flit that found every usable output taken or
// credit-masked (only possible around mode-switch windows) and forces a
// forward switch so the backpressured datapath will drain it.
func (r *Router) escapeBuffer(now uint64, port topology.Dir, f *flit.Flit) {
	if len(r.esc[port]) >= r.escCap {
		panic(fmt.Sprintf("afc %d: escape latch overflow on port %s", r.node, port))
	}
	r.esc[port] = append(r.esc[port], escape{f: f, readyAt: now + 1})
	r.held++
	r.escapeEvents++
	if r.meter != nil {
		r.meter.Latch()
	}
	if r.mode == ModeBless {
		r.beginForwardSwitch(now, false)
	}
}
