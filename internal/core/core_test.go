package core

import (
	"math/rand"
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

type fakeNI struct {
	queues    [flit.NumVNs][]*flit.Flit
	delivered []*flit.Flit
}

func (f *fakeNI) Peek(vn flit.VN) *flit.Flit {
	if len(f.queues[vn]) == 0 {
		return nil
	}
	return f.queues[vn][0]
}

func (f *fakeNI) Pop(vn flit.VN) *flit.Flit {
	fl := f.Peek(vn)
	if fl != nil {
		f.queues[vn] = f.queues[vn][1:]
	}
	return fl
}

func (f *fakeNI) Deliver(_ uint64, fl *flit.Flit) { f.delivered = append(f.delivered, fl) }

const testLinkLat = 2 // L; data links are L+1

type harness struct {
	r     *Router
	ni    *fakeNI
	now   uint64
	wires router.Wires
	mesh  topology.Mesh
	node  topology.NodeID

	// ctrlSeen logs mode notifications the router emitted (drained every
	// cycle: pipes require per-cycle polling like real latched wires).
	ctrlSeen []link.Ctrl
	// creditsSeen counts per-port credits the router returned upstream.
	creditsSeen [topology.NumDirs]int
	// up models the upstream neighbors' credit tracking, exactly as an
	// adjacent AFC router would behave (Sections III-B/III-D).
	up     [topology.NumDirs]upstream
	synced bool
}

type upstream struct {
	tracking bool
	credits  [flit.NumVNs]int
}

func newHarness(t *testing.T, node topology.NodeID, opts Options) *harness {
	t.Helper()
	mesh := topology.NewMesh(3, 3)
	h := &harness{ni: &fakeNI{}, mesh: mesh, node: node}
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if _, ok := mesh.Neighbor(node, d); !ok {
			continue
		}
		h.wires.Ports[d] = router.PortLinks{
			Out:       link.NewData(testLinkLat + 1),
			In:        link.NewData(testLinkLat + 1),
			CreditOut: link.NewCredit(testLinkLat),
			CreditIn:  link.NewCredit(testLinkLat),
			CtrlOut:   link.NewCtrl(testLinkLat),
			CtrlIn:    link.NewCtrl(testLinkLat),
		}
	}
	cfg := config.Default()
	h.r = New(mesh, node, cfg.AFC, cfg.LinkLatency, cfg.EjectWidth,
		rand.New(rand.NewSource(13)), h.wires, h.ni, h.ni, nil, opts)
	return h
}

// syncIncoming applies this cycle's arriving credit backflow and mode
// notifications to the upstream model. A real neighbor router processes
// them at the start of its cycle, before it sends — so the harness must
// too, or it would send one uncredited flit in the announcement cycle.
func (h *harness) syncIncoming() {
	if h.synced {
		return
	}
	h.synced = true
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if h.wires.Ports[d].CtrlOut != nil {
			if c, ok := h.wires.Ports[d].CtrlOut.Recv(h.now); ok {
				h.ctrlSeen = append(h.ctrlSeen, c)
				switch c {
				case link.CtrlStartCredits:
					h.up[d] = upstream{tracking: true, credits: config.Default().AFC.VCsPerVN}
				case link.CtrlStopCredits:
					h.up[d] = upstream{}
				}
			}
		}
		if h.wires.Ports[d].CreditOut != nil {
			if c, ok := h.wires.Ports[d].CreditOut.Recv(h.now); ok {
				h.creditsSeen[d]++
				if h.up[d].tracking {
					h.up[d].credits[c.VN]++
				}
			}
		}
	}
}

func (h *harness) tick() {
	h.syncIncoming()
	h.r.Tick(h.now)
	h.now++
	h.synced = false
}

// trySend delivers f into the router on port d, honoring the upstream
// credit protocol. It reports whether the flit was sent.
func (h *harness) trySend(d topology.Dir, f *flit.Flit) bool {
	h.syncIncoming()
	pl := h.wires.Ports[d]
	if pl.In == nil || !pl.In.CanSend(h.now) {
		return false
	}
	if h.up[d].tracking {
		if h.up[d].credits[f.VN] <= 0 {
			return false
		}
		h.up[d].credits[f.VN]--
	}
	pl.In.Send(h.now, f)
	return true
}

func (h *harness) recvAll() []*flit.Flit {
	var out []*flit.Flit
	for d := topology.Dir(0); d < topology.NumDirs; d++ {
		if h.wires.Ports[d].Out == nil {
			continue
		}
		if f, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
			out = append(out, f)
		}
	}
	return out
}

// takeCtrl returns and clears the logged mode notifications.
func (h *harness) takeCtrl() []link.Ctrl {
	out := h.ctrlSeen
	h.ctrlSeen = nil
	return out
}

func mk(id uint64, src, dst topology.NodeID, vn flit.VN) *flit.Flit {
	return &flit.Flit{PacketID: id, Len: 1, Src: src, Dst: dst, VN: vn, VC: flit.NoVC}
}

func TestStartsInBlessMode(t *testing.T) {
	h := newHarness(t, 4, Options{})
	if h.r.Mode() != ModeBless {
		t.Fatalf("initial mode = %s", h.r.Mode())
	}
	a := newHarness(t, 4, Options{AlwaysBuffered: true})
	if a.r.Mode() != ModeBuffered {
		t.Fatalf("always-buffered initial mode = %s", a.r.Mode())
	}
}

// feedLoad pumps one flit into every input port per cycle, collecting and
// discarding output, to drive the traffic-intensity monitor up.
func (h *harness) feedLoad(cycles int, dst topology.NodeID) {
	for c := 0; c < cycles; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			h.trySend(d, mk(uint64(h.now)*8+uint64(d), 0, dst, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
}

// TestForwardSwitchOnThreshold: sustained high load drives the EWMA over
// the high threshold and the router switches to backpressured mode,
// notifying neighbors to start counting credits.
func TestForwardSwitchOnThreshold(t *testing.T) {
	h := newHarness(t, 4, Options{})
	sawStart := false
	for c := 0; c < 3000 && h.r.Mode() != ModeBuffered; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			h.trySend(d, mk(uint64(h.now)*8+uint64(d), 0, 0, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
	for _, ctrl := range h.takeCtrl() {
		if ctrl == link.CtrlStartCredits {
			sawStart = true
		}
	}
	if h.r.Mode() != ModeBuffered {
		t.Fatalf("router never switched (intensity %.2f)", h.r.Intensity())
	}
	if !sawStart {
		t.Fatal("no start-credits notification observed")
	}
	if h.r.ForwardSwitches() != 1 {
		t.Fatalf("forward switches = %d", h.r.ForwardSwitches())
	}
	if h.r.Intensity() <= config.Default().AFC.ThresholdsByPosition[topology.Center].High {
		t.Errorf("switched below the high threshold: %.2f", h.r.Intensity())
	}
}

// TestForwardSwitchWindowTiming: flits arriving during the 2L switch
// window are still deflected; arrivals from T+2L+1 are buffered.
func TestForwardSwitchWindowTiming(t *testing.T) {
	h := newHarness(t, 4, Options{})
	// Drive to switching.
	for c := 0; c < 3000 && h.r.Mode() == ModeBless; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			h.trySend(d, mk(uint64(h.now)*8+uint64(d), 0, 0, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
	if h.r.Mode() != ModeSwitching {
		t.Fatalf("mode = %s, want switching", h.r.Mode())
	}
	// During the window the router must still dispatch every arrival
	// (backpressureless operation) — its SRAM buffers stay empty of
	// network flits that arrived before the boundary.
	bufferedAtBoundary := -1
	for c := 0; c < 2*testLinkLat+2; c++ {
		if h.r.Mode() == ModeSwitching && h.r.BufferedFlits() > int(h.r.EscapeEvents()) {
			t.Fatalf("SRAM buffered %d flits during the switch window", h.r.BufferedFlits())
		}
		h.tick()
		h.recvAll()
		if h.r.Mode() == ModeBuffered && bufferedAtBoundary < 0 {
			bufferedAtBoundary = c
		}
	}
	if h.r.Mode() != ModeBuffered {
		t.Fatal("switch window did not complete")
	}
}

// TestReverseSwitchWhenIdle: after load stops, the EWMA decays below the
// low threshold, buffers drain, and the router returns to
// backpressureless mode with a stop-credits notification.
func TestReverseSwitchWhenIdle(t *testing.T) {
	h := newHarness(t, 4, Options{})
	// Force buffered mode first.
	for c := 0; c < 3000 && h.r.Mode() != ModeBuffered; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			h.trySend(d, mk(uint64(h.now)*8+uint64(d), 0, 0, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
	if h.r.Mode() != ModeBuffered {
		t.Fatal("precondition failed: not buffered")
	}
	// Idle: no arrivals. EWMA (0.99) needs a few hundred cycles to decay.
	sawStop := false
	for c := 0; c < 3000 && h.r.Mode() != ModeBless; c++ {
		h.tick()
		h.recvAll()
	}
	for c := 0; c < 2*testLinkLat; c++ {
		h.tick() // let the in-flight notifications land
	}
	for _, ctrl := range h.takeCtrl() {
		if ctrl == link.CtrlStopCredits {
			sawStop = true
		}
	}
	if h.r.Mode() != ModeBless {
		t.Fatalf("router never reverted (intensity %.3f, buffered %d)",
			h.r.Intensity(), h.r.BufferedFlits())
	}
	if !sawStop {
		t.Fatal("no stop-credits notification observed")
	}
	if h.r.BufferedFlits() != 0 {
		t.Fatal("reverse switch with non-empty buffers")
	}
	if h.r.ReverseSwitches() != 1 {
		t.Fatalf("reverse switches = %d", h.r.ReverseSwitches())
	}
}

// TestHysteresis: between the low and high thresholds the router holds
// its mode. We verify the monitor must fall below Low (not merely below
// High) before the reverse switch happens.
func TestHysteresis(t *testing.T) {
	h := newHarness(t, 4, Options{})
	for c := 0; c < 3000 && h.r.Mode() != ModeBuffered; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			h.trySend(d, mk(uint64(h.now)*8+uint64(d), 0, 0, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
	th := config.Default().AFC.ThresholdsByPosition[topology.Center]
	// Hold the load at ~2 flits/cycle with crossing streams (East->West
	// and West->East, distinct output ports): below High (2.2), above
	// Low (1.7).
	for c := 0; c < 2000; c++ {
		h.trySend(topology.East, mk(uint64(h.now)*8, 5, 3, flit.VNReq))
		h.trySend(topology.West, mk(uint64(h.now)*8+1, 3, 5, flit.VNReq))
		h.tick()
		h.recvAll()
	}
	if got := h.r.Intensity(); got >= th.High || got <= th.Low {
		t.Fatalf("test load %.2f not inside hysteresis band (%.1f, %.1f)", got, th.Low, th.High)
	}
	if h.r.Mode() != ModeBuffered {
		t.Fatalf("router left buffered mode inside the hysteresis band (mode %s)", h.r.Mode())
	}
}

// TestLazyVCAllocation: in buffered mode, departing flits carry no VC
// (downstream assigns) and arriving flits receive a slot in their VN
// segment.
func TestLazyVCAllocation(t *testing.T) {
	h := newHarness(t, 4, Options{AlwaysBuffered: true})
	// Two data flits and a control flit arriving on West, routed East.
	// The always-buffered router announces tracking at construction;
	// prime the harness model to match.
	h.up[topology.West] = upstream{tracking: true, credits: config.Default().AFC.VCsPerVN}
	fs := []*flit.Flit{
		mk(1, 3, 5, flit.VNData), mk(2, 3, 5, flit.VNData), mk(3, 3, 5, flit.VNReq),
	}
	sent := 0
	var got []*flit.Flit
	for c := 0; c < 30; c++ {
		if sent < len(fs) && h.trySend(topology.West, fs[sent]) {
			sent++
		}
		h.tick()
		got = append(got, h.recvAll()...)
	}
	if len(got) != 3 {
		t.Fatalf("forwarded %d flits, want 3", len(got))
	}
	for _, f := range got {
		if f.VC != flit.NoVC {
			t.Errorf("flit %d departed with VC %d; lazy allocation sends NoVC", f.PacketID, f.VC)
		}
	}
}

// TestPerVNCreditStall: with a tracked downstream whose data VN is
// exhausted, data flits stall but control flits keep flowing.
func TestPerVNCreditStall(t *testing.T) {
	h := newHarness(t, 4, Options{AlwaysBuffered: true})
	cfg := config.Default().AFC
	// Exhaust East's data credits: feed data flits routed East and never
	// return credits.
	h.up[topology.West] = upstream{tracking: true, credits: config.Default().AFC.VCsPerVN}
	dataSent := 0
	for c := 0; c < 200; c++ {
		if h.trySend(topology.West, mk(uint64(100+c), 3, 5, flit.VNData)) {
			_ = c
		}
		h.tick()
		for _, f := range h.recvAll() {
			if f.VN == flit.VNData {
				dataSent++
			}
		}
	}
	if dataSent != cfg.VCsPerVN[flit.VNData] {
		t.Fatalf("sent %d data flits without credits, want %d", dataSent, cfg.VCsPerVN[flit.VNData])
	}
	// Control flits must still flow East.
	ctrlGot := 0
	for c := 0; c < 30; c++ {
		if h.trySend(topology.West, mk(uint64(500+c), 3, 5, flit.VNReq)) {
			_ = c
		}
		h.tick()
		for _, f := range h.recvAll() {
			if f.VN == flit.VNReq {
				ctrlGot++
			}
		}
	}
	if ctrlGot == 0 {
		t.Fatal("control traffic blocked by exhausted data VN (per-VN credits broken)")
	}
}

// TestGossipInducedSwitch: a backpressureless router tracking a
// backpressured neighbor must force-switch once that neighbor's free
// buffers fall below the watermark X.
func TestGossipInducedSwitch(t *testing.T) {
	h := newHarness(t, 4, Options{})
	if h.r.Mode() != ModeBless {
		t.Fatal("not bless")
	}
	// The East neighbor announces backpressured mode.
	h.wires.Ports[topology.East].CtrlIn.Send(h.now, link.CtrlStartCredits)
	for c := 0; c < testLinkLat+1; c++ {
		h.tick()
		h.recvAll()
	}
	if _, tracking := h.r.Credits(topology.East, flit.VNReq); !tracking {
		t.Fatal("router did not start tracking the announced neighbor")
	}
	// Feed a trickle of East-bound control flits (low intensity so the
	// threshold path cannot fire first); never return credits.
	cfg := config.Default().AFC
	for c := 0; c < 200 && h.r.Mode() == ModeBless; c++ {
		if c%4 == 0 {
			h.trySend(topology.West, mk(uint64(c), 3, 5, flit.VNReq))
		}
		h.tick()
		h.recvAll()
	}
	if h.r.GossipSwitches() != 1 {
		t.Fatalf("gossip switches = %d (mode %s)", h.r.GossipSwitches(), h.r.Mode())
	}
	cr, _ := h.r.Credits(topology.East, flit.VNReq)
	if cr >= cfg.GossipFreeSlots {
		t.Errorf("switched with %d free credits, watermark %d", cr, cfg.GossipFreeSlots)
	}
	if h.r.Intensity() > cfg.ThresholdsByPosition[topology.Center].High {
		t.Error("intensity crossed the high threshold; gossip not isolated")
	}
}

// TestBlessDeflectsAwayFromCreditlessNeighbor: in bless mode, an output
// masked by zero credits is avoided by deflection, not overrun.
func TestBlessDeflectsAwayFromCreditlessNeighbor(t *testing.T) {
	h := newHarness(t, 4, Options{})
	h.wires.Ports[topology.East].CtrlIn.Send(h.now, link.CtrlStartCredits)
	for c := 0; c < testLinkLat+1; c++ {
		h.tick()
	}
	// Exhaust East's control-VN credits.
	cfg := config.Default().AFC
	eastSent := 0
	elsewhere := 0
	for c := 0; c < 400; c++ {
		if c%3 == 0 {
			h.trySend(topology.West, mk(uint64(c), 3, 5, flit.VNReq))
		}
		h.tick()
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].Out == nil {
				continue
			}
			if f, ok := h.wires.Ports[d].Out.Recv(h.now); ok && f != nil {
				if d == topology.East {
					eastSent++
				} else {
					elsewhere++
				}
			}
		}
	}
	if eastSent > cfg.VCsPerVN[flit.VNReq] {
		t.Fatalf("sent %d flits into a creditless neighbor (capacity %d)",
			eastSent, cfg.VCsPerVN[flit.VNReq])
	}
	if elsewhere == 0 {
		t.Fatal("no flits deflected away from the masked output")
	}
}

// TestAlwaysBufferedNeverSwitches: the AFC-always-backpressured
// configuration must stay buffered under any load.
func TestAlwaysBufferedNeverSwitches(t *testing.T) {
	h := newHarness(t, 4, Options{AlwaysBuffered: true})
	for c := 0; c < 500; c++ {
		h.tick()
		h.recvAll()
	}
	if h.r.Mode() != ModeBuffered || h.r.ReverseSwitches() != 0 {
		t.Fatalf("always-buffered router switched: mode %s", h.r.Mode())
	}
	if ctrl := h.takeCtrl(); len(ctrl) != 0 {
		t.Fatal("always-buffered router sent mode notifications")
	}
}

// TestNoFlitLossAcrossModeSwitches subjects a router to bursts and idle
// periods (forcing both switch directions) and checks conservation.
func TestNoFlitLossAcrossModeSwitches(t *testing.T) {
	h := newHarness(t, 4, Options{})
	rng := rand.New(rand.NewSource(21))
	sent, received := 0, 0
	burst := true
	for phase := 0; phase < 6; phase++ {
		cycles := 400
		for c := 0; c < cycles; c++ {
			if burst {
				for d := topology.Dir(0); d < topology.NumDirs; d++ {
					if rng.Float64() < 0.9 {
						dst := topology.NodeID(rng.Intn(9))
						if dst == 4 {
							dst = 0
						}
						if h.trySend(d, mk(uint64(sent), 0, dst, flit.VNReq)) {
							sent++
						}
					}
				}
			}
			h.tick()
			received += len(h.recvAll())
		}
		burst = !burst
	}
	// Drain.
	for c := 0; c < 200; c++ {
		h.tick()
		received += len(h.recvAll())
	}
	received += len(h.ni.delivered)
	if received != sent {
		t.Fatalf("flit loss across mode switches: in %d, out %d (mode %s, buffered %d, latched %d)",
			sent, received, h.r.Mode(), h.r.BufferedFlits(), h.r.LatchedFlits())
	}
	if h.r.ForwardSwitches() == 0 || h.r.ReverseSwitches() == 0 {
		t.Errorf("burst/idle pattern did not exercise both switches: fwd=%d rev=%d",
			h.r.ForwardSwitches(), h.r.ReverseSwitches())
	}
}

// TestPositionScaledThresholds: corner routers have lower thresholds than
// center routers (Section III-B: thresholds scale with port count), so
// under the same absolute load a corner router switches while a center
// router may not. We verify the corner router's forward switch happens at
// an intensity at or below the corner threshold band.
func TestPositionScaledThresholds(t *testing.T) {
	cfg := config.Default().AFC
	corner := cfg.ThresholdsByPosition[topology.Corner]
	center := cfg.ThresholdsByPosition[topology.Center]
	if corner.High >= center.High || corner.Low >= center.Low {
		t.Fatalf("corner thresholds %+v not below center %+v", corner, center)
	}
	// Drive a corner router (node 0: East+South ports only) with a load
	// between the corner and center high thresholds (~2.0): it must
	// switch even though a center router would not.
	h := newHarness(t, 0, Options{})
	for c := 0; c < 3000 && h.r.Mode() == ModeBless; c++ {
		h.trySend(topology.East, mk(uint64(c)*2, 8, 8, flit.VNReq))
		h.trySend(topology.South, mk(uint64(c)*2+1, 8, 8, flit.VNReq))
		h.tick()
		h.recvAll()
	}
	if h.r.Mode() == ModeBless {
		t.Fatalf("corner router never switched at intensity %.2f (threshold %.2f)",
			h.r.Intensity(), corner.High)
	}
}

// TestEscapeLatchDrainPriority: escape-latch flits drain ahead of regular
// slots in backpressured mode and are not lost.
func TestEscapeLatchDrainPriority(t *testing.T) {
	h := newHarness(t, 4, Options{})
	// Make East's control VN creditless so a West->East flit has only
	// masked/taken outputs left when the others are occupied.
	h.wires.Ports[topology.East].CtrlIn.Send(h.now, link.CtrlStartCredits)
	h.wires.Ports[topology.North].CtrlIn.Send(h.now, link.CtrlStartCredits)
	h.wires.Ports[topology.South].CtrlIn.Send(h.now, link.CtrlStartCredits)
	h.wires.Ports[topology.West].CtrlIn.Send(h.now, link.CtrlStartCredits)
	for c := 0; c < testLinkLat+1; c++ {
		h.tick()
	}
	// The downstream neighbors we emulate hold received flits and return
	// credits only when they "consume" them — first never (exhaust
	// phase), then one per cycle (drain phase).
	var owed [topology.NumDirs][flit.NumVNs]int
	recvTracked := func() {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if h.wires.Ports[d].Out == nil {
				continue
			}
			if f, ok := h.wires.Ports[d].Out.Recv(h.now); ok {
				owed[d][f.VN]++
			}
		}
	}
	for c := 0; c < 600; c++ {
		h.trySend(topology.West, mk(uint64(9000+c), 3, 5, flit.VNReq))  // East-bound
		h.trySend(topology.East, mk(uint64(12000+c), 5, 3, flit.VNReq)) // West-bound
		h.trySend(topology.North, mk(uint64(15000+c), 1, 7, flit.VNReq))
		h.trySend(topology.South, mk(uint64(18000+c), 7, 1, flit.VNReq))
		h.tick()
		recvTracked()
	}
	// Whatever path the router took (escape or threshold switch), all
	// accepted flits must eventually depart once the downstream consumes.
	escBefore := h.r.EscapeEvents()
	for c := 0; c < 4000; c++ {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
				if owed[d][vn] > 0 && h.wires.Ports[d].CreditIn.CanSend(h.now) {
					h.wires.Ports[d].CreditIn.Send(h.now, link.Credit{VN: vn})
					owed[d][vn]--
					break
				}
			}
		}
		h.tick()
		recvTracked()
	}
	if h.r.BufferedFlits() != 0 {
		t.Fatalf("flits stuck after credits returned: %d (escape events %d)",
			h.r.BufferedFlits(), escBefore)
	}
}
