package vcrouter

import (
	"math/rand"
	"testing"

	"afcnet/internal/config"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

// fakeNI is a minimal LocalSource/LocalSink for driving one router.
type fakeNI struct {
	queues    [flit.NumVNs][]*flit.Flit
	delivered []*flit.Flit
}

func (f *fakeNI) Peek(vn flit.VN) *flit.Flit {
	if len(f.queues[vn]) == 0 {
		return nil
	}
	return f.queues[vn][0]
}

func (f *fakeNI) Pop(vn flit.VN) *flit.Flit {
	fl := f.Peek(vn)
	if fl != nil {
		f.queues[vn] = f.queues[vn][1:]
	}
	return fl
}

func (f *fakeNI) Deliver(_ uint64, fl *flit.Flit) { f.delivered = append(f.delivered, fl) }

func (f *fakeNI) enqueuePacket(dst topology.NodeID, vn flit.VN, length int, id uint64) {
	p := flit.Packet{ID: id, Src: 0, Dst: dst, VN: vn, Len: length}
	f.queues[vn] = append(f.queues[vn], p.Flits()...)
}

// harness wires one router at node 0 of a 2x2 mesh, holding the far ends
// of its East and South links by hand.
type harness struct {
	mesh  topology.Mesh
	r     *Router
	ni    *fakeNI
	now   uint64
	wires router.Wires
}

const testLinkLat = 2

func newHarness(t *testing.T) *harness {
	t.Helper()
	mesh := topology.NewMesh(2, 2)
	h := &harness{mesh: mesh, ni: &fakeNI{}}
	for _, d := range []topology.Dir{topology.East, topology.South} {
		h.wires.Ports[d] = router.PortLinks{
			Out:       link.NewData(testLinkLat + 1),
			In:        link.NewData(testLinkLat + 1),
			CreditOut: link.NewCredit(testLinkLat),
			CreditIn:  link.NewCredit(testLinkLat),
			CtrlOut:   link.NewCtrl(testLinkLat),
			CtrlIn:    link.NewCtrl(testLinkLat),
		}
	}
	h.r = New(mesh, 0, config.Default().Baseline, 1, h.wires, h.ni, h.ni, nil)
	return h
}

func (h *harness) tick() {
	h.r.Tick(h.now)
	h.now++
}

// recvOut drains the router's output link on d at the current cycle
// (call after tick; arrivals are those sent lat+1 cycles ago).
func (h *harness) recvOut(d topology.Dir) *flit.Flit {
	f, _ := h.wires.Ports[d].Out.Recv(h.now)
	return f
}

func TestWormholeOrderAndSingleVC(t *testing.T) {
	h := newHarness(t)
	h.ni.enqueuePacket(1, flit.VNData, 5, 1) // East
	var got []*flit.Flit
	for c := 0; c < 40 && len(got) < 5; c++ {
		h.tick()
		if f := h.recvOut(topology.East); f != nil {
			got = append(got, f)
			// downstream consumes immediately: return the credit
			h.wires.Ports[topology.East].CreditIn.Send(h.now, link.Credit{VC: f.VC, VN: f.VN})
		}
	}
	if len(got) != 5 {
		t.Fatalf("received %d flits, want 5", len(got))
	}
	vc := got[0].VC
	for i, f := range got {
		if f.Seq != i {
			t.Errorf("flit %d out of order (seq %d)", i, f.Seq)
		}
		if f.VC != vc {
			t.Errorf("flit %d changed VC %d -> %d (wormhole violation)", i, vc, f.VC)
		}
	}
	// Back-to-back body flits: one per cycle once streaming.
}

func TestEjectionAtLocalPort(t *testing.T) {
	h := newHarness(t)
	// A packet arriving on East destined for node 0 must be delivered.
	p := flit.Packet{ID: 9, Src: 1, Dst: 0, VN: flit.VNReq, Len: 1}
	fl := p.Flits()[0]
	fl.VC = 0
	h.wires.Ports[topology.East].In.Send(h.now, fl)
	for c := 0; c < 10 && len(h.ni.delivered) == 0; c++ {
		h.tick()
	}
	if len(h.ni.delivered) != 1 || h.ni.delivered[0].PacketID != 9 {
		t.Fatalf("delivered = %v", h.ni.delivered)
	}
}

// TestCreditStall: with no credits returned, at most BufDepth flits of a
// packet may be sent on one VC; the stream resumes when credits return.
func TestCreditStall(t *testing.T) {
	h := newHarness(t)
	depth := config.Default().Baseline.BufDepth
	h.ni.enqueuePacket(1, flit.VNData, flit.DataPacketFlits, 1)
	sent := 0
	dataVC := -1
	for c := 0; c < 100; c++ {
		h.tick()
		if f := h.recvOut(topology.East); f != nil {
			sent++
			dataVC = f.VC
		}
	}
	if sent != depth {
		t.Fatalf("sent %d flits with no credits, want exactly buffer depth %d", sent, depth)
	}
	// Return one credit on the packet's VC: exactly one more flit flows.
	h.wires.Ports[topology.East].CreditIn.Send(h.now, link.Credit{VC: dataVC, VN: flit.VNData})
	more := 0
	for c := 0; c < 20; c++ {
		h.tick()
		if f := h.recvOut(topology.East); f != nil {
			more++
			_ = f
		}
	}
	if more > 1 {
		t.Fatalf("one credit released %d flits", more)
	}
}

// TestVCsAllowBypass: a packet blocked in one input VC (its output is out
// of credits) must not prevent a packet in another VC of the same input
// port from proceeding — VCs exist precisely to cut this HOL blocking.
func TestVCsAllowBypass(t *testing.T) {
	h := newHarness(t)
	// Packet A: data flits arriving on East input VC 4, routed South,
	// where we never return credits, so it stalls after BufDepth flits.
	mkA := func(seq int) *flit.Flit {
		f := &flit.Flit{PacketID: 1, Seq: seq, Len: flit.DataPacketFlits,
			Src: 1, Dst: 2, VN: flit.VNData, VC: 4}
		return f
	}
	sentA := 0
	creditsA := config.Default().Baseline.BufDepth // our input VC's capacity
	for c := 0; c < 60; c++ {
		if sentA < flit.DataPacketFlits && creditsA > 0 &&
			h.wires.Ports[topology.East].In.CanSend(h.now) {
			h.wires.Ports[topology.East].In.Send(h.now, mkA(sentA))
			sentA++
			creditsA--
		}
		h.tick()
		if _, ok := h.wires.Ports[topology.East].CreditOut.Recv(h.now); ok {
			creditsA++
		}
		h.recvOut(topology.South)
	}
	if h.r.BufferedFlits() == 0 {
		t.Fatal("packet A did not stall in the input buffer")
	}
	// Packet B: a single-flit data packet on East input VC 5, destined
	// locally; it must eject despite A's stall on the same input port.
	fb := &flit.Flit{PacketID: 2, Seq: 0, Len: 1, Src: 1, Dst: 0, VN: flit.VNData, VC: 5}
	h.wires.Ports[topology.East].In.Send(h.now, fb)
	for c := 0; c < 10 && len(h.ni.delivered) == 0; c++ {
		h.tick()
	}
	if len(h.ni.delivered) != 1 || h.ni.delivered[0].PacketID != 2 {
		t.Fatalf("packet B blocked behind stalled packet A: delivered %v", h.ni.delivered)
	}
}

// TestDistinctPacketsDistinctVCs: two concurrently injected data packets
// must not share an output VC while the first is unfinished (rule R1).
func TestDistinctPacketsDistinctVCs(t *testing.T) {
	h := newHarness(t)
	h.ni.enqueuePacket(1, flit.VNData, 4, 1)
	h.ni.enqueuePacket(1, flit.VNData, 4, 2)
	vcOf := map[uint64]int{}
	countByPkt := map[uint64]int{}
	for c := 0; c < 80 && (countByPkt[1] < 4 || countByPkt[2] < 4); c++ {
		h.tick()
		if f := h.recvOut(topology.East); f != nil {
			if prev, ok := vcOf[f.PacketID]; ok && prev != f.VC {
				t.Fatalf("packet %d switched VC %d -> %d", f.PacketID, prev, f.VC)
			}
			vcOf[f.PacketID] = f.VC
			countByPkt[f.PacketID]++
			h.wires.Ports[topology.East].CreditIn.Send(h.now, link.Credit{VC: f.VC, VN: f.VN})
			// While both packets are in flight they must use different VCs.
			if countByPkt[1] > 0 && countByPkt[1] < 4 && countByPkt[2] > 0 && countByPkt[2] < 4 {
				if vcOf[1] == vcOf[2] {
					t.Fatalf("concurrent packets share VC %d", vcOf[1])
				}
			}
		}
	}
	if countByPkt[1] != 4 || countByPkt[2] != 4 {
		t.Fatalf("flit counts: %v", countByPkt)
	}
}

// TestCreditConservationUnderRandomTraffic stresses a single router with
// random arrivals and random downstream credit returns, relying on the
// router's internal panics (overflow, negative credits) as the invariant
// oracle, and then checks end-to-end flit conservation.
func TestCreditConservationUnderRandomTraffic(t *testing.T) {
	h := newHarness(t)
	rng := rand.New(rand.NewSource(11))
	depth := config.Default().Baseline.BufDepth

	type down struct {
		held []link.Credit
	}
	downs := map[topology.Dir]*down{topology.East: {}, topology.South: {}}

	injected, received := 0, 0
	pid := uint64(100)
	upVC := 0 // upstream-assigned input VC for arrivals on East (control vn0: VCs 0..1)
	inFlightIn := 0
	for c := 0; c < 3000; c++ {
		// Random injection of packets.
		if rng.Float64() < 0.15 {
			dst := topology.NodeID(1)
			if rng.Intn(2) == 1 {
				dst = 2
			}
			vn := flit.VN(rng.Intn(int(flit.NumVNs)))
			l := flit.LenForVN(vn)
			h.ni.enqueuePacket(dst, vn, l, pid)
			pid++
			injected += l
		}
		// Random arrival on East destined for local (uses upstream VC 0/1
		// alternately; real upstreams guarantee non-interleaving, and
		// single-flit packets cannot interleave).
		if rng.Float64() < 0.2 && inFlightIn < depth {
			p := flit.Packet{ID: pid, Src: 1, Dst: 0, VN: flit.VNReq, Len: 1}
			pid++
			fl := p.Flits()[0]
			fl.VC = upVC
			upVC = 1 - upVC
			if h.wires.Ports[topology.East].In.CanSend(h.now) {
				h.wires.Ports[topology.East].In.Send(h.now, fl)
				inFlightIn++
			}
		}
		h.tick()
		// Credits returned by our router for consumed arrivals.
		if _, ok := h.wires.Ports[topology.East].CreditOut.Recv(h.now); ok {
			inFlightIn--
		}
		h.wires.Ports[topology.South].CreditOut.Recv(h.now)
		// Downstream consumption with random delays.
		for _, d := range []topology.Dir{topology.East, topology.South} {
			if f := h.recvOut(d); f != nil {
				received++
				downs[d].held = append(downs[d].held, link.Credit{VC: f.VC, VN: f.VN})
			}
			dw := downs[d]
			if len(dw.held) > 0 && rng.Float64() < 0.3 && h.wires.Ports[d].CreditIn.CanSend(h.now) {
				h.wires.Ports[d].CreditIn.Send(h.now, dw.held[0])
				dw.held = dw.held[1:]
			}
		}
	}
	if received == 0 || len(h.ni.delivered) == 0 {
		t.Fatal("stress test moved no traffic")
	}
	if h.r.BufferedFlits() > 3*depth {
		t.Errorf("suspiciously high buffer occupancy: %d", h.r.BufferedFlits())
	}
}

// TestSingleFlitPacketsHoldTheirVC (rule R2): a single-flit packet that
// has allocated an output VC but not yet won the switch must keep the VC
// busy, so no concurrent packet can be handed the same VC.
func TestSingleFlitPacketsHoldTheirVC(t *testing.T) {
	h := newHarness(t)
	// Exhaust East data credits so an allocated single-flit packet stalls.
	h.ni.enqueuePacket(1, flit.VNData, 1, 1)
	busyCount := func() int {
		n := 0
		for v := 0; v < 8; v++ {
			if h.r.out[topology.East][v].busy {
				n++
			}
		}
		return n
	}
	// Starve: never return credits; after a few cycles the packet has
	// allocated a VC and is waiting — the VC must read busy.
	for c := 0; c < 6; c++ {
		h.tick()
		h.recvOut(topology.East)
	}
	// The flit was sent immediately (credits start full), so instead test
	// the stall case with a second packet after credits are gone.
	for i := uint64(2); i < 12; i++ {
		h.ni.enqueuePacket(1, flit.VNData, 1, i)
	}
	for c := 0; c < 60; c++ {
		h.tick()
		h.recvOut(topology.East)
	}
	// Credits exhausted (8 sent, 2 allocated-but-stalled at most). At
	// least one VC must be held busy by a stalled single-flit packet.
	if busyCount() == 0 && h.r.BufferedFlits() > 0 {
		t.Fatal("stalled single-flit packet does not hold its output VC busy")
	}
}

// TestRealisticVCAAddsOneStage: with RealisticVCA, the per-hop latency of
// a head flit grows by exactly one cycle (the 3-stage pipeline of
// Section II's realistic backpressured router).
func TestRealisticVCAAddsOneStage(t *testing.T) {
	mk := func(realistic bool) uint64 {
		mesh := topology.NewMesh(2, 2)
		h := &harness{mesh: mesh, ni: &fakeNI{}}
		for _, d := range []topology.Dir{topology.East, topology.South} {
			h.wires.Ports[d] = router.PortLinks{
				Out:       link.NewData(testLinkLat + 1),
				In:        link.NewData(testLinkLat + 1),
				CreditOut: link.NewCredit(testLinkLat),
				CreditIn:  link.NewCredit(testLinkLat),
			}
		}
		cfg := config.Default().Baseline
		cfg.RealisticVCA = realistic
		h.r = New(mesh, 0, cfg, 1, h.wires, h.ni, h.ni, nil)
		h.ni.enqueuePacket(1, flit.VNReq, 1, 1)
		for c := uint64(0); c < 30; c++ {
			h.tick()
			if f := h.recvOut(topology.East); f != nil {
				return h.now // cycle after the arrival at the link tail
			}
		}
		t.Fatal("flit never emerged")
		return 0
	}
	ideal := mk(false)
	realistic := mk(true)
	if realistic != ideal+1 {
		t.Fatalf("realistic VCA adds %d cycles, want exactly 1 (ideal %d, realistic %d)",
			realistic-ideal, ideal, realistic)
	}
}
