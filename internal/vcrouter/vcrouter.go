// Package vcrouter implements the baseline backpressured router of the
// paper: an input-queued virtual-channel router with credit-based flow
// control, dimension-ordered lookahead routing, per-packet VC allocation
// and separable (input-first) switch allocation.
//
// Pipeline (Table I): the paper charitably assumes a 2-stage router with
// 0-cycle VC allocation — stage 1 performs switch allocation (with
// lookahead routing in parallel and free VC allocation folded in), stage 2
// is switch traversal plus link traversal, with the buffer write absorbed
// into link traversal. The simulator models this as: a flit buffered at
// cycle t is eligible for switch allocation at t+1, and switch+link
// traversal deliver it to the next router's buffers L+1 cycles later
// (per-hop latency 2+L).
package vcrouter

import (
	"fmt"

	"afcnet/internal/config"
	"afcnet/internal/energy"
	"afcnet/internal/flit"
	"afcnet/internal/link"
	"afcnet/internal/router"
	"afcnet/internal/topology"
)

type entry struct {
	f       *flit.Flit
	readyAt uint64
}

// inVC is one input virtual channel: a flit FIFO plus the state of the
// packet currently occupying it. While pktOpen, route and ovc apply to
// every flit of the in-flight packet (wormhole: flits of a packet follow
// the head's VC and route).
type inVC struct {
	q       []entry
	pktOpen bool
	route   topology.Dir
	ovc     int
	// vcaDoneAt is the cycle the packet's VC allocation completes; under
	// the RealisticVCA option the head flit may not request the switch
	// before it (0 = no pending VCA stage).
	vcaDoneAt uint64
}

// outVC is one output virtual channel's downstream state: whether it is
// allocated to a packet (rule R1) and the credit count for its downstream
// buffer slots.
type outVC struct {
	busy    bool
	credits int
}

// candidate is an input port's switch-allocation request for this cycle.
type candidate struct {
	valid bool
	vc    int
	out   topology.Dir
	ovc   int
}

// Router is the baseline backpressured VC router for one node.
//
// The field order is a deliberate hot/cold split (see core.Router): the
// leading fields are what the quiescence probe and FastForward touch
// every cycle, the middle is the active-tick working set, the tail is
// cold configuration/fault/stats state. Routers are normally carved
// from a Slab in ascending node order — band-major for the sharded
// tick's row bands.
type Router struct {
	// --- hot tick-path core (Quiescent + FastForward) ---

	// dead freezes the whole router (fault injection): Tick and
	// FastForward become no-ops and Quiescent reports true; buffered
	// flits stay parked and countable.
	dead bool
	// held counts flits currently in the input buffers (maintained at the
	// enqueue/dequeue sites) so quiescence and drain checks are O(1).
	held int
	// inbox, when non-nil, is this router's slot of the network's
	// per-node aggregate in-flight slab (link.Pipe.SetTally), split by
	// pipe class: [0] data, [1] credit, [2] ctrl (always zero here —
	// nothing sends on the control line in a backpressured network).
	// One cache line replaces Quiescent's pipe scan, and each receive
	// scan skips when its own class is idle. Nil falls back to scans.
	inbox *[3]int32
	meter *energy.Meter
	// srcCount is src when it can report its queue total in O(1).
	srcCount router.QueuedCounter

	// --- active-tick working set ---

	// heldAt counts the buffered flits per input port, letting allocate
	// skip the VC scan on empty ports (a grantless Pick would not move
	// the arbiter).
	heldAt  [topology.NumPorts]int
	in      [topology.NumPorts][]inVC
	out     [topology.NumPorts][]outVC // Local entries unused (infinite)
	inArb   [topology.NumPorts]router.RoundRobin
	outArb  [topology.NumPorts]router.RoundRobin
	vcaArb  [topology.NumPorts][flit.NumVNs]router.RoundRobin
	injArb  router.RoundRobin // over VNs
	injVC   [flit.NumVNs]int
	injOpen [flit.NumVNs]bool

	cands [topology.NumPorts]candidate

	// cols, when non-nil, is the arena's columnar flit bank; route
	// computation and credit bookkeeping read destination and virtual
	// network through it (nil = -nocolumnar struct reference path).
	cols *flit.Columns

	// nbr lists the directions with a wired neighbor, so the per-cycle
	// receive loops skip the empty ports of edge and corner routers.
	// A view into the network's shared topology.Tables under slab
	// construction.
	nbr []topology.Dir

	// dor is node's precomputed DOR next-hop table, indexed by
	// destination — shared topology.Tables storage under slab
	// construction, a private copy otherwise.
	dor []topology.Dir

	// blockedOut marks output ports whose data link is fault-blocked
	// (dead, or throttled closed this duty window): eligibility treats
	// the port as creditless, so affected packets wait in place — the
	// buffered kinds' graceful degradation under faults.
	blockedOut [topology.NumDirs]bool
	// deadOut additionally suppresses the upstream credit return on a
	// permanently dead wire (the invariant checker excludes such edges).
	deadOut [topology.NumDirs]bool

	wires router.Wires
	src   router.LocalSource
	sink  router.LocalSink

	// --- cold config/stats tail ---

	mesh         topology.Mesh
	node         topology.NodeID
	depth        int
	ejectWidth   int
	realisticVCA bool
	numVCs       int
	vnVCs        [flit.NumVNs][]int // virtual network -> VC indices

	// Stats
	routedFlits   uint64
	injectedFlits uint64
	ejectedFlits  uint64
}

// Slab is a contiguous bank of baseline routers: the Router structs,
// their input/output VC arrays and the VC FIFO backing all live in
// shared slabs, carved in ascending node order (band-major for the
// sharded tick's row bands).
type Slab struct {
	routers []Router
	ins     []inVC
	outs    []outVC
	entries []entry
	// vnVCs is the VN -> VC-index mapping, identical for every router
	// of one configuration, built once and aliased (read-only).
	vnVCs  [flit.NumVNs][]int
	numVCs int
	depth  int
	next   int
}

// NewSlab returns a slab with room for count routers; cfg fixes the VC
// geometry and buffer depth (and must match the subsequent New calls).
func NewSlab(count int, cfg config.Baseline) *Slab {
	s := &Slab{depth: cfg.BufDepth}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		for i := 0; i < cfg.VCsPerVN[vn]; i++ {
			s.vnVCs[vn] = append(s.vnVCs[vn], s.numVCs)
			s.numVCs++
		}
	}
	s.routers = make([]Router, count)
	s.ins = make([]inVC, count*topology.NumPorts*s.numVCs)
	s.outs = make([]outVC, count*topology.NumPorts*s.numVCs)
	s.entries = make([]entry, count*topology.NumPorts*s.numVCs*s.depth)
	return s
}

// New returns a standalone baseline router at node (a slab of one) with
// the given configuration, wired to its neighbors and its network
// interface. The meter may be nil (no energy accounting).
func New(mesh topology.Mesh, node topology.NodeID, cfg config.Baseline,
	ejectWidth int, wires router.Wires, src router.LocalSource,
	sink router.LocalSink, meter *energy.Meter) *Router {
	return NewSlab(1, cfg).New(mesh, node, cfg, ejectWidth, wires, src, sink, meter, nil)
}

// New carves the next router from the slab and initializes it at node.
// tables, when non-nil, provides the shared route tables and neighbor
// lists; nil builds private copies from the mesh.
func (s *Slab) New(mesh topology.Mesh, node topology.NodeID, cfg config.Baseline,
	ejectWidth int, wires router.Wires, src router.LocalSource,
	sink router.LocalSink, meter *energy.Meter, tables *topology.Tables) *Router {

	if s.next >= len(s.routers) {
		panic("vcrouter: router slab exhausted")
	}
	r := &s.routers[s.next]
	r.mesh = mesh
	r.node = node
	r.wires = wires
	r.src = src
	r.sink = sink
	r.meter = meter
	r.depth = cfg.BufDepth
	r.ejectWidth = ejectWidth
	r.realisticVCA = cfg.RealisticVCA
	r.vnVCs = s.vnVCs
	r.numVCs = s.numVCs
	base := s.next * topology.NumPorts
	for p := 0; p < topology.NumPorts; p++ {
		lo := (base + p) * s.numVCs
		r.in[p] = s.ins[lo : lo+s.numVCs : lo+s.numVCs]
		r.out[p] = s.outs[lo : lo+s.numVCs : lo+s.numVCs]
		for v := range r.in[p] {
			// Each VC's FIFO gets a full-depth carve: appends stay within
			// capacity, so the steady state allocates nothing.
			elo := (lo + v) * s.depth
			r.in[p][v].q = s.entries[elo:elo : elo+s.depth]
		}
		for v := range r.out[p] {
			r.out[p][v].credits = cfg.BufDepth
		}
		r.inArb[p].Init(s.numVCs)
		r.outArb[p].Init(topology.NumPorts)
		for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
			r.vcaArb[p][vn].Init(len(r.vnVCs[vn]))
		}
	}
	for vn := range r.injVC {
		r.injVC[vn] = flit.NoVC
	}
	r.srcCount, _ = src.(router.QueuedCounter)
	if tables != nil {
		r.nbr = tables.Neighbors(node)
		r.dor = tables.Routes(node).DOR
	} else {
		for d := topology.Dir(0); d < topology.NumDirs; d++ {
			if pl := &wires.Ports[d]; pl.In != nil || pl.CreditIn != nil {
				r.nbr = append(r.nbr, d)
			}
		}
		r.dor = mesh.Routes(node).DOR
	}
	s.next++
	return r
}

// SetInbox attaches the router's slot of the network's per-node
// aggregate in-flight slab (see link.Pipe.SetTally). Build-time wiring,
// kept across Reset.
func (r *Router) SetInbox(t *[3]int32) { r.inbox = t }

// DORTable exposes the router's per-destination DOR table and
// NeighborDirs its wired-direction list (aliasing tests assert they
// share the network's topology.Tables backing).
func (r *Router) DORTable() []topology.Dir { return r.dor }

// NeighborDirs reports the router's wired mesh directions.
func (r *Router) NeighborDirs() []topology.Dir { return r.nbr }

// Node implements router.Router.
func (r *Router) Node() topology.NodeID { return r.node }

// SetColumns attaches the columnar flit banks the router reads hot
// per-flit state through. Nil selects the struct-field reference path.
func (r *Router) SetColumns(c *flit.Columns) { r.cols = c }

// Reset rewinds the router to its freshly constructed state, keeping
// every buffer's backing array: VC queues empty, packet state closed,
// full credits, arbiters at slot 0, stats zeroed. Part of the cross-cell
// network-reuse path; this router draws no randomness, so no reseeding
// is involved.
func (r *Router) Reset() {
	for p := 0; p < topology.NumPorts; p++ {
		for v := range r.in[p] {
			vc := &r.in[p][v]
			vc.q = vc.q[:0]
			vc.pktOpen = false
			vc.route = 0
			vc.ovc = 0
			vc.vcaDoneAt = 0
		}
		for v := range r.out[p] {
			r.out[p][v] = outVC{credits: r.depth}
		}
		r.inArb[p].Reset()
		r.outArb[p].Reset()
		for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
			r.vcaArb[p][vn].Reset()
		}
		r.cands[p] = candidate{}
		r.heldAt[p] = 0
	}
	for vn := range r.injVC {
		r.injVC[vn] = flit.NoVC
		r.injOpen[vn] = false
	}
	r.held = 0
	r.blockedOut = [topology.NumDirs]bool{}
	r.deadOut = [topology.NumDirs]bool{}
	r.dead = false
	r.routedFlits = 0
	r.injectedFlits = 0
	r.ejectedFlits = 0
}

// SetPortBlocked marks (or clears) output d as fault-blocked for data:
// packets routed toward it wait in their buffers until it reopens (or
// forever, for a dead link). Scenario link throttling toggles this at
// duty-window boundaries.
func (r *Router) SetPortBlocked(d topology.Dir, blocked bool) { r.blockedOut[d] = blocked }

// SetPortDead marks output d permanently dead: data is blocked and the
// upstream credit return on the same wire stops.
func (r *Router) SetPortDead(d topology.Dir) {
	r.blockedOut[d] = true
	r.deadOut[d] = true
}

// SetDead freezes the router entirely (scenario dead-router fault): Tick
// and FastForward become no-ops and Quiescent reports true, so buffered
// flits stay parked — still visible to ForEachFlit, keeping the
// checker's conservation ledger balanced.
func (r *Router) SetDead() { r.dead = true }

// RoutedFlits returns the number of flits this router has moved through
// its crossbar (switch traversals).
func (r *Router) RoutedFlits() uint64 { return r.routedFlits }

// Tick implements one cycle (see the package comment for the pipeline
// correspondence).
func (r *Router) Tick(now uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTick()
	}
	r.receiveCredits(now)
	// With no buffered flit there is no switch candidate: eligible() is
	// false for every VC, so allocate/transmit could only run grantless
	// arbitration picks, which leave the round-robin pointers untouched.
	// Skipping both stages is therefore bit-for-bit identical and removes
	// the dominant cost of near-idle cycles (arrivals still in flight on
	// the pipes keep the router from full quiescence).
	if r.held != 0 {
		r.allocate(now)
		r.transmit(now)
	}
	r.inject(now)
	r.receive(now)
}

// receiveCredits consumes credit backflow from downstream routers.
func (r *Router) receiveCredits(now uint64) {
	// inbox[1] counts credits in flight toward this node: zero means
	// every Recv below would miss, so the scan is skipped outright.
	if r.inbox != nil && r.inbox[1] == 0 {
		return
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if pl.CreditIn == nil {
			continue
		}
		if c, ok := pl.CreditIn.Recv(now); ok {
			ov := &r.out[d][c.VC]
			ov.credits++
			if ov.credits > r.depth {
				panic(fmt.Sprintf("vcrouter %d: credit overflow on %s vc %d", r.node, d, c.VC))
			}
		}
	}
}

// allocate runs lookahead routing, 0-cycle VC allocation and the
// input-first stage of separable switch allocation, filling r.cands.
func (r *Router) allocate(now uint64) {
	for p := 0; p < topology.NumPorts; p++ {
		r.cands[p] = candidate{}
		if r.heldAt[p] == 0 {
			// Every VC queue at this port is empty, so eligible() is false
			// for all of them and the Pick would be grantless: skipping it
			// is exact.
			continue
		}
		vcs := r.in[p]
		pick := r.inArb[p].Pick(func(v int) bool {
			return r.eligible(now, topology.Dir(p), v)
		})
		if pick < 0 {
			continue
		}
		vc := &vcs[pick]
		r.cands[p] = candidate{valid: true, vc: pick, out: vc.route, ovc: vc.ovc}
	}
}

// eligible reports whether input VC v at port p can request the switch
// this cycle, performing route computation and VC allocation for head
// flits as a side effect (the paper's 0-cycle VCA).
func (r *Router) eligible(now uint64, p topology.Dir, v int) bool {
	vc := &r.in[p][v]
	if len(vc.q) == 0 || vc.q[0].readyAt > now {
		return false
	}
	f := vc.q[0].f
	if f.Head() {
		if vc.pktOpen {
			// Route and VC were allocated on an earlier attempt; the flit
			// is waiting on VCA completion, credits or switch allocation.
			if now < vc.vcaDoneAt {
				return false
			}
			if vc.route == topology.Local {
				return true
			}
			return !r.blockedOut[vc.route] && r.out[vc.route][vc.ovc].credits > 0
		}
		route := r.dor[r.cols.FlitDst(f)]
		if route == topology.Local {
			vc.route = route
			vc.ovc = flit.NoVC
			vc.pktOpen = r.cols.FlitLen(f) > 1
			return true
		}
		if r.blockedOut[route] {
			// Fault-blocked output: the packet waits in place before even
			// allocating an output VC (graceful degradation — the flits
			// remain buffered and countable).
			return false
		}
		ovc := r.allocVC(route, r.cols.FlitVN(f))
		if ovc == flit.NoVC {
			return false
		}
		vc.route = route
		vc.ovc = ovc
		// Hold the output VC until the tail departs — for single-flit
		// packets too: the VC must read busy while allocated-but-unsent,
		// or a concurrent allocation could hand the same VC to another
		// packet (rule R2) and interleave flits downstream.
		vc.pktOpen = true
		r.out[route][ovc].busy = true
		if r.meter != nil {
			r.meter.VCArb()
		}
		if r.realisticVCA {
			// Non-speculative VCA occupies this cycle; the switch request
			// happens next cycle (3-stage pipeline).
			vc.vcaDoneAt = now + 1
			return false
		}
		return r.out[route][ovc].credits > 0
	}
	// Body/tail flit: the packet must already hold a route and VC.
	if !vc.pktOpen {
		panic(fmt.Sprintf("vcrouter %d: body flit %v without open packet at %s/%d", r.node, f, p, v))
	}
	if vc.route == topology.Local {
		return true
	}
	return !r.blockedOut[vc.route] && r.out[vc.route][vc.ovc].credits > 0
}

// allocVC picks a free output VC on port out within vn (round-robin), or
// NoVC. Rule R2 is preserved because the VC is marked busy as soon as a
// multi-flit packet claims it.
func (r *Router) allocVC(out topology.Dir, vn flit.VN) int {
	ids := r.vnVCs[vn]
	i := r.vcaArb[out][vn].Pick(func(i int) bool {
		return !r.out[out][ids[i]].busy
	})
	if i < 0 {
		return flit.NoVC
	}
	return ids[i]
}

// transmit runs the output stage of switch allocation and moves winners
// through the crossbar onto links (or ejects them). The ejection (local
// output) port is EjectWidth flits wide: short NI-side wiring makes a
// wider ejection path cheap, and receive-side buffering always accepts.
func (r *Router) transmit(now uint64) {
	// Output ports that no candidate requests can only run grantless picks,
	// which leave the round-robin pointers untouched; skip them.
	var wantOut [topology.NumPorts]bool
	for p := 0; p < topology.NumPorts; p++ {
		if c := r.cands[p]; c.valid {
			wantOut[c.out] = true
		}
	}
	for o := 0; o < topology.NumPorts; o++ {
		out := topology.Dir(o)
		if !wantOut[out] {
			continue
		}
		grants := 1
		if out == topology.Local {
			grants = r.ejectWidth
		}
		for g := 0; g < grants; g++ {
			win := r.outArb[o].Pick(func(p int) bool {
				c := r.cands[p]
				return c.valid && c.out == out
			})
			if win < 0 {
				break
			}
			r.sendWinner(now, topology.Dir(win), out)
		}
	}
}

func (r *Router) sendWinner(now uint64, in, out topology.Dir) {
	c := &r.cands[in]
	vc := &r.in[in][c.vc]
	f := vc.q[0].f
	copy(vc.q, vc.q[1:])
	vc.q = vc.q[:len(vc.q)-1]
	r.held--
	r.heldAt[in]--
	c.valid = false
	r.routedFlits++
	if r.meter != nil {
		r.meter.BufRead()
		r.meter.SwArb()
		r.meter.Xbar()
	}

	// Return a credit upstream for the freed buffer slot (unless the
	// wire died: a dead link carries no credits either).
	if in != topology.Local && !r.deadOut[in] {
		if pl := r.wires.Ports[in]; pl.CreditOut != nil {
			pl.CreditOut.Send(now, link.Credit{VC: c.vc, VN: r.cols.FlitVN(f)})
			if r.meter != nil {
				r.meter.Credit()
			}
		}
	}

	if f.Tail() {
		if vc.pktOpen {
			vc.pktOpen = false
			if vc.route != topology.Local {
				r.out[vc.route][vc.ovc].busy = false
			}
		}
		vc.ovc = flit.NoVC
	}

	if out == topology.Local {
		r.ejectedFlits++
		r.sink.Deliver(now, f)
		return
	}

	ov := &r.out[out][c.ovc]
	ov.credits--
	if ov.credits < 0 {
		panic(fmt.Sprintf("vcrouter %d: negative credits on %s vc %d", r.node, out, c.ovc))
	}
	f.VC = c.ovc
	f.Hops++
	r.wires.Ports[out].Out.Send(now, f)
	if r.meter != nil {
		r.meter.LinkHop()
	}
}

// inject pulls up to one flit per virtual network per cycle from the
// network interface into the local input port — the Garnet-style NI model
// where each virtual network has its own injection path.
func (r *Router) inject(now uint64) {
	// Empty NI: every peek below would return nil.
	if r.srcCount != nil && r.srcCount.QueuedFlits() == 0 {
		return
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		f := r.src.Peek(vn)
		if f == nil {
			continue
		}
		v := r.injectionVC(vn, f)
		if v == flit.NoVC {
			continue
		}
		f = r.src.Pop(vn)
		vc := &r.in[topology.Local][v]
		if len(vc.q) >= r.depth {
			panic(fmt.Sprintf("vcrouter %d: injection overflow on local vc %d", r.node, v))
		}
		if f.Head() {
			r.injVC[vn] = v
			r.injOpen[vn] = true
		}
		if f.Tail() {
			r.injOpen[vn] = false
		}
		f.VC = v
		if st, ok := r.src.(interface {
			StampInjection(uint64, *flit.Flit)
		}); ok {
			st.StampInjection(now, f)
		} else {
			f.SetInjected(now)
		}
		vc.q = append(vc.q, entry{f: f, readyAt: now + 1})
		r.held++
		r.heldAt[topology.Local]++
		r.injectedFlits++
		if r.meter != nil {
			r.meter.BufWrite()
		}
	}
}

// injectionVC returns the local input VC the next flit of vn should enter,
// or NoVC if none is available. Heads claim an idle VC; bodies continue in
// the packet's VC if it has space.
func (r *Router) injectionVC(vn flit.VN, f *flit.Flit) int {
	if !f.Head() {
		v := r.injVC[vn]
		if v == flit.NoVC || len(r.in[topology.Local][v].q) >= r.depth {
			return flit.NoVC
		}
		return v
	}
	if r.injOpen[vn] {
		// Previous packet on this VN still mid-injection; its flits come
		// first in FIFO order so a head here means a logic error.
		panic(fmt.Sprintf("vcrouter %d: head flit while injection open on vn %s", r.node, vn))
	}
	for _, v := range r.vnVCs[vn] {
		vc := &r.in[topology.Local][v]
		if len(vc.q) == 0 && !vc.pktOpen {
			return v
		}
	}
	return flit.NoVC
}

// receive buffers this cycle's link arrivals. Credits guarantee space; an
// overflow is an invariant violation.
func (r *Router) receive(now uint64) {
	if r.inbox != nil && r.inbox[0] == 0 {
		return // see receiveCredits: no flits in flight toward this node
	}
	for _, d := range r.nbr {
		pl := &r.wires.Ports[d]
		if pl.In == nil {
			continue
		}
		f, ok := pl.In.Recv(now)
		if !ok {
			continue
		}
		vc := &r.in[d][f.VC]
		if len(vc.q) >= r.depth {
			panic(fmt.Sprintf("vcrouter %d: buffer overflow on %s vc %d (flit %v)", r.node, d, f.VC, f))
		}
		vc.q = append(vc.q, entry{f: f, readyAt: now + 1})
		r.held++
		r.heldAt[d]++
		if r.meter != nil {
			r.meter.BufWrite()
		}
	}
}

// Quiescent implements the kernel's active-set contract (sim.Quiescer):
// ticking is a provable no-op when the router buffers no flits, no flit
// or credit is in flight toward it, and its NI offers nothing to
// inject. An idle tick's only side effect is the static-energy accrual
// FastForward reproduces — arbitration picks without an eligible
// candidate do not advance any round-robin pointer. (The control line
// is not part of the check because this router never reads it.) The
// sharded tick (internal/network/shard.go) depends on this
// Tick == FastForward(1) equivalence being exact: its skip decision
// cannot see same-cycle sends parked in staged boundary registers,
// which is only sound because skipping such a router changes nothing.
func (r *Router) Quiescent(now uint64) bool {
	if r.dead {
		return true
	}
	if r.held != 0 {
		return false
	}
	// The inbox tallies mirror the summed InFlight of every inbound
	// pipe (the ctrl column included, but nothing sends on the control
	// line in a backpressured network), so one cache line of loads
	// decides exactly what the pipe scan would.
	if r.inbox != nil {
		if r.inbox[0]|r.inbox[1]|r.inbox[2] != 0 {
			return false
		}
	} else {
		for _, d := range r.nbr {
			pl := &r.wires.Ports[d]
			if pl.In != nil && pl.In.InFlight() != 0 {
				return false
			}
			if pl.CreditIn != nil && pl.CreditIn.InFlight() != 0 {
				return false
			}
		}
	}
	if r.srcCount != nil {
		return r.srcCount.QueuedFlits() == 0
	}
	for vn := flit.VN(0); vn < flit.NumVNs; vn++ {
		if r.src.Peek(vn) != nil {
			return false
		}
	}
	return true
}

// FastForward applies k skipped idle cycles (sim.Quiescer): an idle tick
// mutates nothing but the static-energy meter.
func (r *Router) FastForward(k uint64) {
	if r.dead {
		return
	}
	if r.meter != nil {
		r.meter.StaticTicks(k)
	}
}

// BufferedFlits returns the number of flits currently held in this
// router's input buffers (drain checks and credit-conservation tests).
func (r *Router) BufferedFlits() int { return r.held }

// Credits returns the current credit count for output port d, VC v
// (exposed for invariant tests).
func (r *Router) Credits(d topology.Dir, v int) int { return r.out[d][v].credits }

// Occupancy returns the number of flits queued at input port p, VC v —
// the downstream side of the credit ledger the invariant checker
// reconciles against the upstream Credits count.
func (r *Router) Occupancy(p topology.Dir, v int) int { return len(r.in[p][v].q) }

// ForEachFlit calls fn for every flit currently held in this router
// (invariant checker's conservation and age scans).
func (r *Router) ForEachFlit(fn func(*flit.Flit)) {
	for p := range r.in {
		for v := range r.in[p] {
			for _, e := range r.in[p][v].q {
				fn(e.f)
			}
		}
	}
}
