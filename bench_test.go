// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md maps experiment IDs to these benches; recorded
// results live in EXPERIMENTS.md). Each bench runs the same harness as
// cmd/figures at reduced length and reports the headline numbers as
// custom metrics, so `go test -bench=.` reproduces the paper's shape in
// one command:
//
//	go test -bench=Fig2c -benchmem .
package afcnet_test

import (
	"sort"
	"strings"
	"testing"

	"afcnet/internal/check"
	"afcnet/internal/cmp"
	"afcnet/internal/config"
	"afcnet/internal/experiments"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

func quick() experiments.Options { return experiments.Quick() }

// reportKind attaches a per-kind metric, e.g. perf/afc.
func reportKind(b *testing.B, ms []experiments.Measurement, metric string, get func(experiments.Measurement) float64) {
	b.Helper()
	agg := map[network.Kind]*struct {
		sum float64
		n   int
	}{}
	for _, m := range ms {
		a := agg[m.Kind]
		if a == nil {
			a = &struct {
				sum float64
				n   int
			}{}
			agg[m.Kind] = a
		}
		a.sum += get(m)
		a.n++
	}
	// Report in a fixed order: map iteration order would otherwise shuffle
	// the metric lines between runs, which breaks diffing benchstat output.
	kinds := make([]network.Kind, 0, len(agg))
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	for _, k := range kinds {
		a := agg[k]
		b.ReportMetric(a.sum/float64(a.n), metric+"/"+k.String())
	}
}

// BenchmarkKernelStep measures the per-cycle cost of the simulation
// kernel itself: one AFC network under moderate uniform open-loop load,
// stepped cycle by cycle. This is the inner loop every harness above
// amplifies; run it with -benchmem to track hot-path allocation cost.
func BenchmarkKernelStep(b *testing.B) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 1, MeterEnergy: true})
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.3,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(1000) // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStep16x16 is BenchmarkKernelStep on a 16x16 mesh — the
// large-radix regime the columnar flit banks target (the paper's own
// evaluation stops at 3x3; the deflection literature it builds on lives
// at 64-1024 nodes). The per-cycle cost scales with the router count, so
// expect roughly 256/9 of the 3x3 number; what this bench tracks is that
// the per-router cost does not degrade with radix and that the steady
// state stays allocation-free at scale. The injection rate is scaled
// down: uniform traffic on a 16x16 mesh saturates near 0.12
// flits/node/cycle (bisection-limited, ~10.7 average hops), so the 3x3
// bench's 0.3 would sit past saturation where queues — and allocations —
// grow without bound and no steady state exists.
func BenchmarkKernelStep16x16(b *testing.B) {
	net := network.New(network.Config{
		Kind: network.AFC, Seed: 1, MeterEnergy: true,
		System: config.DefaultWithMesh(topology.NewMesh(16, 16)),
	})
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.08,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(5000) // reach steady state before measuring (large mesh: longer fill)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStep16x16Sharded is BenchmarkKernelStep16x16 through
// the sharded tick at 8 shards (two rows per band) — the regime the
// two-phase barrier targets: one large network whose cycle is wide
// enough to split across cores. Results are bit-identical to the serial
// bench's network (TestShardedEqualsSerial); what this bench tracks is
// the wall-clock ratio against BenchmarkKernelStep16x16 (reported by
// cmd/benchjson as a speedup on multi-core hosts; on a single-core host
// the barrier is pure overhead and the ratio inverts) and that the
// parallel arena keeps the steady state allocation-free.
func BenchmarkKernelStep16x16Sharded(b *testing.B) {
	net := network.New(network.Config{
		Kind: network.AFC, Seed: 1, MeterEnergy: true, Shards: 8,
		System: config.DefaultWithMesh(topology.NewMesh(16, 16)),
	})
	defer net.Close()
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.08,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(5000) // reach steady state before measuring (large mesh: longer fill)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStep32x32 scales the large-radix cell to a 32x32 mesh
// (1024 nodes) — the first record at this size. The injection rate
// halves again from the 16x16 cell's: uniform traffic on a k x k mesh
// is bisection-limited at ~2/k flits/node/cycle, so 32x32 saturates
// near 0.06 and 0.04 keeps the cell sub-saturation with a real steady
// state. The warmup stretches to 8000 cycles because the bigger mesh
// takes proportionally longer to fill (~21 average hops).
func BenchmarkKernelStep32x32(b *testing.B) {
	benchKernelStep32x32(b, 0)
}

// BenchmarkKernelStep32x32Sharded is BenchmarkKernelStep32x32 through
// the sharded tick at 8 shards (four rows per band). At this width each
// band is ~4x the 16x16 bench's, so the per-cycle parallel grain is
// coarser and the fixed dispatch cost proportionally smaller — the
// regime where the sharded tick should scale best.
func BenchmarkKernelStep32x32Sharded(b *testing.B) {
	benchKernelStep32x32(b, 8)
}

func benchKernelStep32x32(b *testing.B, shards int) {
	net := network.New(network.Config{
		Kind: network.AFC, Seed: 1, MeterEnergy: true, Shards: shards,
		System: config.DefaultWithMesh(topology.NewMesh(32, 32)),
	})
	defer net.Close()
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.04,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(8000) // reach steady state before measuring (1024 nodes: long fill)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStep64x64 scales the large-radix cell to a 64x64 mesh
// (4096 nodes) — the kilonode record, and the regime the slab-resident
// router state targets: at this size the per-router hot structs alone
// outgrow every cache level, so band-major slab locality is what keeps
// the per-cycle cost near 4x the 32x32 cell's instead of far above it.
// The injection rate halves again (bisection-limited near 0.03) and the
// warmup doubles to 16000 cycles (~42 average hops to fill).
func BenchmarkKernelStep64x64(b *testing.B) {
	benchKernelStep64x64(b, 0)
}

// BenchmarkKernelStep64x64Sharded is BenchmarkKernelStep64x64 through
// the sharded tick at 8 shards (eight rows per band): the coarsest
// parallel grain the repo records, where each band's 512-router working
// set makes the fixed barrier cost smallest relative to useful work.
func BenchmarkKernelStep64x64Sharded(b *testing.B) {
	benchKernelStep64x64(b, 8)
}

func benchKernelStep64x64(b *testing.B, shards int) {
	net := network.New(network.Config{
		Kind: network.AFC, Seed: 1, MeterEnergy: true, Shards: shards,
		System: config.DefaultWithMesh(topology.NewMesh(64, 64)),
	})
	defer net.Close()
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.02,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(16000) // reach steady state before measuring (4096 nodes: longest fill)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStepLowLoad is BenchmarkKernelStep at a near-idle
// injection rate — the regime where active-set scheduling pays: most
// routers are quiescent most cycles, so the per-cycle cost should be a
// small fraction of the dense kernel's (compare against
// BenchmarkKernelStepLowLoadDense).
func BenchmarkKernelStepLowLoad(b *testing.B) {
	benchKernelStepLowLoad(b, false)
}

// BenchmarkKernelStepLowLoadDense is the same workload on the dense
// reference kernel (every ticker every cycle) — the baseline the
// active-set speedup is measured against.
func BenchmarkKernelStepLowLoadDense(b *testing.B) {
	benchKernelStepLowLoad(b, true)
}

func benchKernelStepLowLoad(b *testing.B, dense bool) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 1, MeterEnergy: true, DenseKernel: dense})
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.02,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(1000) // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkKernelStepChecked is BenchmarkKernelStep with the
// internal/check invariant checker attached. The checker is a plain
// AddTicker client, so the default path (checks off) is untouched;
// comparing the two benches measures the -check overhead reported in
// EXPERIMENTS.md.
func BenchmarkKernelStepChecked(b *testing.B) {
	net := network.New(network.Config{Kind: network.AFC, Seed: 1, MeterEnergy: true})
	check.Attach(net)
	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Uniform{Mesh: net.Mesh()},
		Rate:    0.3,
	}, net.RandStream)
	net.AddTicker(gen)
	net.Run(1000) // reach steady state before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkFig2aLowLoadPerformance regenerates Figure 2(a): normalized
// performance of the low-load (SPLASH-2) benchmarks. Paper shape: flow
// control has no meaningful performance impact at low load.
func BenchmarkFig2aLowLoadPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.LowLoad(), experiments.Fig2Kinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "perf", func(m experiments.Measurement) float64 { return m.Perf })
		}
	}
}

// BenchmarkFig2bLowLoadEnergy regenerates Figure 2(b): normalized energy
// at low load. Paper shape: backpressureless lowest; backpressured 42%
// above it; ideal-bypass 32% above it; AFC within ~9% of backpressureless.
func BenchmarkFig2bLowLoadEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.LowLoad(), experiments.Fig2EnergyKinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "energy", func(m experiments.Measurement) float64 { return m.Energy })
		}
	}
}

// BenchmarkFig2cHighLoadPerformance regenerates Figure 2(c): normalized
// performance at high load. Paper shape: backpressureless degrades ~19%;
// AFC within ~2% of backpressured.
func BenchmarkFig2cHighLoadPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.HighLoad(), experiments.Fig2Kinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "perf", func(m experiments.Measurement) float64 { return m.Perf })
		}
	}
}

// BenchmarkFig2dHighLoadEnergy regenerates Figure 2(d): normalized energy
// at high load. Paper shape: backpressureless ~35% above backpressured;
// AFC within ~2-3%.
func BenchmarkFig2dHighLoadEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.HighLoad(), experiments.Fig2Kinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "energy", func(m experiments.Measurement) float64 { return m.Energy })
		}
	}
}

// BenchmarkFig3aEnergyBreakdownLow regenerates Figure 3(a): buffer/link/
// rest energy partition at low load.
func BenchmarkFig3aEnergyBreakdownLow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.LowLoad(), experiments.Fig2Kinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "bufferE", func(m experiments.Measurement) float64 { return m.BufferE })
			reportKind(b, ms, "linkE", func(m experiments.Measurement) float64 { return m.LinkE })
		}
	}
}

// BenchmarkFig3bEnergyBreakdownHigh regenerates Figure 3(b).
func BenchmarkFig3bEnergyBreakdownHigh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.HighLoad(), experiments.Fig2Kinds, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportKind(b, ms, "bufferE", func(m experiments.Measurement) float64 { return m.BufferE })
			reportKind(b, ms, "linkE", func(m experiments.Measurement) float64 { return m.LinkE })
		}
	}
}

// BenchmarkModeDutyCycle regenerates the Section V-A duty-cycle numbers
// (water/barnes ~0% backpressured; apache/specjbb ~100%).
func BenchmarkModeDutyCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.ClosedLoop(cmp.AllBenchmarks(), []network.Kind{network.AFC}, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, m := range ms {
				b.ReportMetric(m.BufferedFraction, "bufmode/"+m.Bench)
			}
		}
	}
}

// BenchmarkTable3InjectionRates regenerates the Table III calibration
// (achieved flits/node/cycle per workload on the baseline network).
func BenchmarkTable3InjectionRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Measured, "inj/"+r.Bench)
			}
		}
	}
}

// BenchmarkFig4LatencyThroughput regenerates the open-loop
// latency-throughput comparison ("Other results": similar low-load
// latencies; AFC and backpressured reach near-identical saturation
// throughput; backpressureless saturates earlier).
func BenchmarkFig4LatencyThroughput(b *testing.B) {
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	kinds := []network.Kind{network.Backpressured, network.Bless, network.BlessDrop, network.AFC}
	for i := 0; i < b.N; i++ {
		pts := experiments.LatencySweep(kinds, rates, quick())
		if i == b.N-1 {
			for k, v := range experiments.SaturationThroughput(pts) {
				b.ReportMetric(v, "satThroughput/"+k.String())
			}
		}
	}
}

// BenchmarkFig5SpatialVariation regenerates the Section V-B consolidation
// experiment (AFC is the best energy configuration under spatial load
// variation; paper: backpressured +9%, backpressureless +30%).
func BenchmarkFig5SpatialVariation(b *testing.B) {
	kinds := []network.Kind{network.Backpressured, network.Bless, network.AFC}
	for i := 0; i < b.N; i++ {
		rs := experiments.Quadrant(kinds, 0.9, 0.1, quick())
		if i == b.N-1 {
			var afc float64
			for _, r := range rs {
				if r.Kind == network.AFC {
					afc = r.Energy
				}
			}
			for _, r := range rs {
				b.ReportMetric(r.Energy/afc, "energyOverAFC/"+r.Kind.String())
				b.ReportMetric(r.HotLatency, "hotLatency/"+r.Kind.String())
			}
		}
	}
}

// BenchmarkGossipHotspot regenerates the gossip-induced mode-switch
// demonstration (Section V-A: required for correctness; exercised by an
// open-loop hotspot).
func BenchmarkGossipHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.GossipHotspot(int64(i)+1, quick())
		if !r.Drained || r.Delivered != r.Created {
			b.Fatalf("hotspot run lost packets: %+v", r)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.GossipSwitches), "gossipSwitches")
			b.ReportMetric(float64(r.EscapeEvents), "escapeEvents")
		}
	}
}

// BenchmarkAblationLazyVCA regenerates ablation A1: lazy VC allocation
// halves buffering while matching baseline performance.
func BenchmarkAblationLazyVCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLazyVCA(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.PerfRatio, "perfRatio/"+r.Bench)
				b.ReportMetric(r.BufferEnergyCut, "bufferCut/"+r.Bench)
			}
		}
	}
}

// BenchmarkAblationThresholds regenerates ablation A2: sensitivity of
// AFC's robustness to the contention-threshold setting.
func BenchmarkAblationThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationThresholds([]float64{0.5, 1.0, 2.0}, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.HighLoadPerf, "apachePerf/scale")
				b.ReportMetric(r.LowLoadEnergy, "waterEnergy/scale")
			}
		}
	}
}

// BenchmarkAblationDropVsDeflect regenerates the Section II claim that
// the drop-based backpressureless variant saturates at lower loads than
// deflection.
func BenchmarkAblationDropVsDeflect(b *testing.B) {
	rates := []float64{0.15, 0.25, 0.35, 0.45, 0.55}
	for i := 0; i < b.N; i++ {
		pts := experiments.LatencySweep(
			[]network.Kind{network.Bless, network.BlessDrop}, rates, quick())
		if i == b.N-1 {
			sat := experiments.SaturationThroughput(pts)
			b.ReportMetric(sat[network.Bless], "satThroughput/deflect")
			b.ReportMetric(sat[network.BlessDrop], "satThroughput/drop")
		}
	}
}

// BenchmarkAblationEjectWidth regenerates ablation A4: the ejection-path
// width governs how much the deflection router loses at high load.
func BenchmarkAblationEjectWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationEjectWidth([]int{1, 2}, quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.BlessPerf, "blessPerf/width")
			}
		}
	}
}

// BenchmarkAblationBaselineSizing regenerates ablation A5: the paper's
// baseline buffer configuration is energy-optimized — doubling VCs or
// buffer depth buys no performance but costs energy.
func BenchmarkAblationBaselineSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBaselineSizing(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for j, r := range rows {
				if j == 0 {
					continue
				}
				b.ReportMetric(r.Perf, "perfVsPaperCfg")
				b.ReportMetric(r.Energy, "energyVsPaperCfg")
			}
		}
	}
}

// BenchmarkAblationPipeline regenerates ablation A6: the cost of a
// realistic (non-speculative, 3-stage) backpressured pipeline versus the
// paper's charitable 2-stage baseline, and AFC against both.
func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPipeline(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.RealisticPerf, "realisticPerf/"+r.Bench)
				b.ReportMetric(r.AFCvsRealistic, "afcVsRealistic/"+r.Bench)
			}
		}
	}
}

// BenchmarkAblationContentionMetric regenerates ablation A7: the paper's
// local-contention-threshold metric localizes forward switches to the hot
// region, while the rejected cumulative-misroute metric fires diffusely
// (Section III-B's argument for local measures of contention).
func BenchmarkAblationContentionMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationContentionMetric(quick())
		if i == b.N-1 {
			for _, r := range rows {
				name := "nearFrac/thresholds"
				if strings.Contains(r.Policy, "rejected") {
					name = "nearFrac/misroutes"
				}
				b.ReportMetric(r.NearFraction, name)
			}
		}
	}
}
