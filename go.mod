module afcnet

go 1.22
