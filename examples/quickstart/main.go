// Quickstart: build a 3x3 AFC network, run a closed-loop workload on it,
// and print performance, energy, and mode statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

func main() {
	log.SetFlags(0)

	// 1. Build a network. network.Config zero-values give the paper's
	// Table II system (3x3 mesh, 2-cycle links, 2+2+4x8 baseline buffers,
	// 8+8+16 single-flit AFC VCs). Kind selects the flow control.
	net := network.New(network.Config{
		Kind:        network.AFC,
		Seed:        1,
		MeterEnergy: true,
	})

	// 2. Attach a workload. cmp presets model the paper's benchmarks;
	// Ocean is a low-load SPLASH-2 workload (~0.19 flits/node/cycle).
	sys := cmp.NewSystem(net, cmp.Ocean(), net.RandStream)

	// 3. Run: warm up 1000 transactions, then measure 5000.
	res, ok := sys.Measure(1000, 5000, 10_000_000)
	if !ok {
		log.Fatal("run exceeded the cycle limit")
	}

	// 4. Inspect the results.
	e := net.TotalEnergy()
	ms := net.ModeStats()
	fmt.Printf("workload:           %s\n", sys.Params().Name)
	fmt.Printf("execution time:     %d cycles for %d transactions\n", res.Cycles, res.Transactions)
	fmt.Printf("performance:        %.4f transactions/cycle\n", res.TransactionsPerCycle)
	fmt.Printf("injection rate:     %.3f flits/node/cycle\n", res.InjectionRate)
	fmt.Printf("mean net latency:   %.1f cycles\n", res.MeanNetLatency)
	fmt.Printf("network energy:     %.0f pJ (buffer %.1f%%, link %.1f%%, rest %.1f%%)\n",
		e.Total(), 100*e.Buffer()/e.Total(), 100*e.Link/e.Total(), 100*e.Rest()/e.Total())
	fmt.Printf("mode duty cycle:    %.1f%% backpressured (low load: AFC stays backpressureless,\n",
		100*ms.BufferedFraction())
	fmt.Printf("                    buffers power-gated, saving static energy)\n")
	fmt.Printf("mode switches:      %d forward (%d gossip-induced), %d reverse\n",
		ms.ForwardSwitches, ms.GossipSwitches, ms.ReverseSwitches)
}
