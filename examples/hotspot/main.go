// Hotspot: demonstrate AFC's gossip-induced mode switch (Section III-D).
//
// A 3x3 AFC network receives hotspot traffic toward one node. Routers
// around the hotspot fill their buffers; their backpressureless upstream
// neighbors observe the credit drain and are gossip-switched to
// backpressured mode even though their own local contention never crosses
// the threshold — the "sledgehammer" that guarantees correctness. When
// traffic stops, every router reverse-switches and the network drains with
// no flit lost.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"afcnet/internal/core"
	"afcnet/internal/network"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

func main() {
	log.SetFlags(0)
	net := network.New(network.Config{Kind: network.AFC, Seed: 11, MeterEnergy: false})
	mesh := net.Mesh()
	hot := mesh.Node(1, 1)

	gen := traffic.NewGenerator(net, traffic.Config{
		Pattern: traffic.Hotspot{Mesh: mesh, Hot: hot, Frac: 0.5},
		Rate:    0.28,
	}, net.RandStream)
	net.AddTicker(gen)

	fmt.Printf("hotspot at node %d; per-router mode over time (b=backpressureless, S=switching, B=backpressured):\n\n", hot)
	for step := 0; step < 10; step++ {
		net.Run(1_500)
		fmt.Printf("cycle %6d:  ", net.Now())
		for y := 0; y < mesh.Height; y++ {
			for x := 0; x < mesh.Width; x++ {
				r := net.Router(mesh.Node(x, y)).(*core.Router)
				switch r.Mode() {
				case core.ModeBless:
					fmt.Print("b")
				case core.ModeSwitching:
					fmt.Print("S")
				default:
					fmt.Print("B")
				}
			}
			fmt.Print(" ")
		}
		fmt.Println()
	}

	gen.Stop()
	drained := net.RunUntil(net.Drained, 100_000)
	ms := net.ModeStats()
	fmt.Println()
	fmt.Printf("forward switches: %d, of which gossip-induced: %d\n", ms.ForwardSwitches, ms.GossipSwitches)
	fmt.Printf("reverse switches: %d, escape-latch events: %d\n", ms.ReverseSwitches, ms.EscapeEvents)
	fmt.Printf("delivered %d/%d packets; drained cleanly: %v\n",
		net.DeliveredPackets(), net.CreatedPackets(), drained)

	// After draining, the idle network settles backpressureless again.
	net.Run(3_000)
	bless := 0
	for n := 0; n < net.Nodes(); n++ {
		if net.Router(topology.NodeID(n)).(*core.Router).Mode() == core.ModeBless {
			bless++
		}
	}
	fmt.Printf("routers backpressureless after idling: %d/%d\n", bless, net.Nodes())
}
