// Tracereplay: demonstrate the paper's methodology argument for
// execution-driven evaluation (Section IV): "trace-driven evaluations do
// not include the feedback effect of the network on execution time."
//
// We record the packet trace of a high-load workload running closed-loop
// on the fast (backpressured) network, then replay the same trace
// open-loop into the slower (backpressureless) network. Without MSHR
// feedback throttling the cores, the replayed load exceeds what the
// deflection network can carry and backlog explodes — while the closed
// loop on the same network stays bounded.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
	"afcnet/internal/trace"
)

func main() {
	log.SetFlags(0)

	// 1. Record apache on the backpressured network.
	src := network.New(network.Config{Kind: network.Backpressured, Seed: 1})
	tr := trace.Record(src)
	sys := cmp.NewSystem(src, cmp.Apache(), src.RandStream)
	if _, ok := sys.Measure(500, 5000, 10_000_000); !ok {
		log.Fatal("recording run exceeded the cycle limit")
	}
	trace.StopRecording(src)
	tr.Sort()
	win := tr.Window(tr.Events[0].At, tr.Events[0].At+10_000)
	fmt.Printf("recorded window: %d packets, %d flits over %d cycles (backpressured network)\n",
		len(win.Events), win.Flits(), win.Duration())

	// 2. Replay it open-loop into the backpressureless network.
	dst := network.New(network.Config{Kind: network.Bless, Seed: 2})
	rp := trace.NewReplayer(dst, win)
	dst.AddTicker(rp)
	dst.RunUntil(rp.Done, 200_000)
	openBacklog := dst.CreatedPackets() - dst.DeliveredPackets()
	fmt.Printf("trace-driven (no feedback):  backlog after replay = %d packets\n", openBacklog)

	// 3. Compare with the closed loop on the same network, where MSHRs
	// throttle issue to what the network sustains.
	closed := network.New(network.Config{Kind: network.Bless, Seed: 2})
	csys := cmp.NewSystem(closed, cmp.Apache(), closed.RandStream)
	if _, ok := csys.Measure(500, 5000, 10_000_000); !ok {
		log.Fatal("closed-loop run exceeded the cycle limit")
	}
	closedBacklog := closed.CreatedPackets() - closed.DeliveredPackets()
	fmt.Printf("execution-driven (feedback): in-flight packets = %d\n", closedBacklog)

	fmt.Println()
	fmt.Println("the trace over-drives the slower network because nothing throttles the")
	fmt.Println("sources — the feedback effect the paper cites for rejecting trace-driven")
	fmt.Println("evaluation of flow control.")
}
