// Consolidation: the paper's Section V-B spatial-variation experiment.
//
// An 8x8 mesh models a consolidation machine running a different
// application per quadrant: quadrant 0 injects 0.9 flits/node/cycle, the
// other three 0.1, and destinations stay inside the source quadrant. With
// this spatial variation neither fixed flow control is robust — AFC beats
// both by running the hot quadrant backpressured and the cold quadrants
// backpressureless.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"afcnet/internal/config"
	"afcnet/internal/network"
	"afcnet/internal/stats"
	"afcnet/internal/topology"
	"afcnet/internal/traffic"
)

const (
	hotRate  = 0.9
	coldRate = 0.1
	warmup   = 10_000
	measure  = 30_000
)

func main() {
	log.SetFlags(0)
	mesh := topology.NewMesh(8, 8)
	sys := config.DefaultWithMesh(mesh)

	fmt.Println("8x8 consolidation: quadrant 0 @0.9 flits/node/cycle, others @0.1")
	fmt.Printf("%-28s %12s %10s %10s %10s\n", "kind", "energy (pJ)", "hot lat", "cold lat", "buffered%")

	type row struct {
		kind   network.Kind
		energy float64
	}
	var rows []row
	for _, kind := range []network.Kind{network.Backpressured, network.Bless, network.AFC} {
		net := network.New(network.Config{System: sys, Kind: kind, Seed: 7, MeterEnergy: true})
		rates := make([]float64, net.Nodes())
		for i := range rates {
			if traffic.QuadrantIndex(mesh, topology.NodeID(i)) == 0 {
				rates[i] = hotRate
			} else {
				rates[i] = coldRate
			}
		}
		gen := traffic.NewGenerator(net, traffic.Config{
			Pattern:   traffic.Quadrant{Mesh: mesh},
			NodeRates: rates,
		}, net.RandStream)
		net.AddTicker(gen)
		net.Run(warmup)
		net.ResetStats()
		net.Run(measure)

		var hot, cold stats.Running
		for i := 0; i < net.Nodes(); i++ {
			h := net.NI(topology.NodeID(i)).NetLatency()
			if h.Count() == 0 {
				continue
			}
			if traffic.QuadrantIndex(mesh, topology.NodeID(i)) == 0 {
				hot.Add(h.Mean())
			} else {
				cold.Add(h.Mean())
			}
		}
		e := net.TotalEnergy().Total()
		ms := net.ModeStats()
		rows = append(rows, row{kind, e})
		fmt.Printf("%-28s %12.0f %10.1f %10.1f %9.1f%%\n",
			kind, e, hot.Mean(), cold.Mean(), 100*ms.BufferedFraction())
	}

	afc := rows[len(rows)-1].energy
	fmt.Println()
	for _, r := range rows[:len(rows)-1] {
		fmt.Printf("%s consumes %.1f%% more energy than AFC\n",
			r.kind, 100*(r.energy/afc-1))
	}
	fmt.Println("(the paper reports +9% for backpressured and +30% for backpressureless)")
}
