// Benchsuite: run all six workload presets (the paper's Table III
// benchmarks) on backpressured, backpressureless and AFC networks,
// printing the robustness picture of Figure 2 — AFC tracks the better of
// the two fixed mechanisms at both load levels.
//
//	go run ./examples/benchsuite
package main

import (
	"fmt"
	"log"

	"afcnet/internal/cmp"
	"afcnet/internal/network"
)

func main() {
	log.SetFlags(0)
	kinds := []network.Kind{network.Backpressured, network.Bless, network.AFC}

	fmt.Printf("%-9s", "bench")
	for _, k := range kinds {
		fmt.Printf(" | %-24s", k)
	}
	fmt.Println()
	fmt.Printf("%-9s", "")
	for range kinds {
		fmt.Printf(" | %7s %8s %7s", "perf", "energy", "bufM%")
	}
	fmt.Println()

	for _, p := range cmp.AllBenchmarks() {
		type cell struct {
			perf, energy, buf float64
		}
		var cells []cell
		var base cell
		for i, k := range kinds {
			net := network.New(network.Config{Kind: k, Seed: 3, MeterEnergy: true})
			sys := cmp.NewSystem(net, p, net.RandStream)
			res, ok := sys.Measure(1500, 4000, 20_000_000)
			if !ok {
				log.Fatalf("%s on %s exceeded the cycle limit", p.Name, k)
			}
			c := cell{
				perf:   res.TransactionsPerCycle,
				energy: net.TotalEnergy().Total(),
				buf:    net.ModeStats().BufferedFraction(),
			}
			if i == 0 {
				base = c
			}
			cells = append(cells, c)
		}
		fmt.Printf("%-9s", p.Name)
		for _, c := range cells {
			fmt.Printf(" | %7.3f %8.3f %6.1f%%", c.perf/base.perf, c.energy/base.energy, 100*c.buf)
		}
		fmt.Println()
	}
	fmt.Println("\nperf and energy are normalized to the backpressured baseline;")
	fmt.Println("bufM% is the fraction of router-cycles AFC spent in backpressured mode.")
}
