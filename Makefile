GO ?= go

.PHONY: build vet test race bench-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration pass over a closed-loop benchmark: catches harness
# regressions without paying for a full measurement run.
bench-smoke:
	$(GO) test -run='^$$' -bench=Fig2a -benchtime=1x .

ci: build vet race bench-smoke
