GO ?= go

.PHONY: build vet test race race-equality smoke-16x16 smoke-32x32 smoke-64x64 bench-json bench-smoke fuzz-smoke obs-smoke scenario-smoke cover ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The four bit-for-bit equivalence gates under the race detector: the
# active-set kernel against the dense reference, the pooled memory
# engine (arena recycling + cross-cell network reuse) against the
# no-pool reference, the columnar flit banks against the struct-field
# reference, and the sharded two-phase tick against the serial kernel —
# each with the invariant checker attached. The sharded gate is the one
# the race detector bites hardest: any unsynchronized cross-shard access
# in the barrier is a hard failure there, not a flaky diff. `race`
# already covers them via ./...; this target exists so CI names them
# explicitly and a -short or cached run cannot skip them. The explicit
# -timeout overrides go test's 600s default: on a single-core machine
# the sharded gate alone can exceed it under the race detector.
race-equality:
	$(GO) test -race -count=1 -timeout 45m -run='^(TestActiveSetEqualsDense|TestPoolEqualsNoPool|TestColumnarEqualsReference|TestShardedEqualsSerial)$$' ./internal/experiments

# The large-radix smoke cells: a short 16x16 AFC run with the invariant
# checker attached, serial and through the sharded tick at 8 shards (see
# TestLargeMesh16x16Smoke / TestLargeMesh16x16ShardedSmoke), so the
# regime the columnar banks and the sharded barrier target is exercised
# on every CI run even though the paper's own experiments stop at 3x3.
smoke-16x16:
	$(GO) test -short -count=1 -run='^TestLargeMesh16x16(Sharded)?Smoke$$' ./internal/network

# The 1024-node record: the 32x32 cell serial and through the sharded
# tick at 8 shards, checker attached (see TestLargeMesh32x32Smoke).
# On demand rather than in `ci` — the cell is ~50x the 16x16 smoke.
smoke-32x32:
	$(GO) test -count=1 -run='^TestLargeMesh32x32(Sharded)?Smoke$$' ./internal/network

# The kilonode record: the 64x64 cell (4096 nodes — the slab-resident
# router state's target regime) serial and through the sharded tick at
# 8 shards, checker attached (see TestLargeMesh64x64Smoke). Short cycle
# count keeps it cheap enough for `ci`.
smoke-64x64:
	$(GO) test -short -count=1 -run='^TestLargeMesh64x64(Sharded)?Smoke$$' ./internal/network

# Record a numbered BENCH_<n>.json performance snapshot: kernel ns/op
# and allocs/op plus low-load vs saturation cell wall times (minimum of
# -runs repetitions). The checked-in snapshots are the repo's perf
# trajectory; bench-smoke compares against the newest one.
bench-json:
	$(GO) run ./cmd/benchjson

# One-iteration pass over a closed-loop benchmark (catches harness
# regressions without paying for a full measurement run), then a
# reduced benchjson measurement compared against the newest recorded
# BENCH_<n>.json snapshot: wall-clock deltas warn, allocation
# regressions fail the target.
bench-smoke:
	$(GO) test -run='^$$' -bench=Fig2a -benchtime=1x .
	$(GO) run ./cmd/benchjson -smoke

# Short run of every native fuzz target (~10s each). The corpora under
# testdata/fuzz (checked in as they grow) replay first, so previously
# found inputs regress loudly.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzKindJSON$$' -fuzztime=10s ./internal/network
	$(GO) test -run='^$$' -fuzz='^FuzzConfig$$' -fuzztime=10s ./internal/check
	$(GO) test -run='^$$' -fuzz='^FuzzNetworkStep$$' -fuzztime=10s ./internal/check
	$(GO) test -run='^$$' -fuzz='^FuzzArenaHandles$$' -fuzztime=10s ./internal/flit
	$(GO) test -run='^$$' -fuzz='^FuzzShardBarrier$$' -fuzztime=10s ./internal/network
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/scenario

# One tiny sweep with every observability flag on: the run must succeed,
# leave a heap profile behind, and produce a manifest that records the
# single executed cell.
obs-smoke:
	$(GO) run ./cmd/sweep -kinds afc -min 0.1 -max 0.1 -seeds 1 \
		-warmup 200 -measure 400 -progress \
		-manifest obs-manifest.json -memprofile obs-mem.pprof > /dev/null
	@grep -q '"command": "sweep"' obs-manifest.json
	@grep -q '"cellsTotal": 1' obs-manifest.json
	@grep -q '"cellsDone": 1' obs-manifest.json
	@test -s obs-mem.pprof
	@rm -f obs-manifest.json obs-mem.pprof
	@echo "obs smoke ok"

# The scenario-layer gates under the race detector: the determinism
# test (same spec bit-for-bit identical across experiment parallelism
# and shard counts, checker attached — covers deflective and buffered
# kinds with a ramp, burst, hotspot move, dead link, dead router and a
# duty-cycled throttle) plus the mid-run dead-link fault test (deflective
# kinds reroute, buffered kinds degrade gracefully, conservation holds)
# plus the 16x16 scenario x shards x faults gate (dead links, a dead
# router and a throttle under -shards 8, bit-identical to serial).
scenario-smoke:
	$(GO) test -race -count=1 -timeout 45m -run='^(TestScenarioEqualsSerial|TestScenarioFaultCompletion|TestScenarioFaultShards16x16|TestScenarioDenseEqualsActiveSet)$$' ./internal/experiments

# Whole-repo statement coverage, compared against the checked-in
# baseline (coverage-baseline.txt) with half a point of slack so
# refactors can't silently shed tests.
cover:
	$(GO) test -short -coverprofile=coverage.out -coverpkg=./... ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	base=$$(cat coverage-baseline.txt); \
	awk -v t="$$total" -v b="$$base" 'BEGIN { if (t + 0.5 < b) { printf "coverage regressed: %.1f%% < baseline %.1f%%\n", t, b; exit 1 } else { printf "coverage ok: %.1f%% (baseline %.1f%%)\n", t, b } }'

ci: build vet race race-equality smoke-16x16 smoke-64x64 bench-smoke fuzz-smoke obs-smoke scenario-smoke cover
